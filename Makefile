GO ?= go

.PHONY: all build vet test race chaos check bench fmt

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fast suite (skips the chaos soak via -short).
test:
	$(GO) test -short ./...

# Full suite under the race detector, chaos soak included.
race:
	$(GO) test -race ./...

# Just the fault-injection soak: seeded chaos on every link, aggregates
# must be byte-identical to a fault-free run.
chaos:
	$(GO) test ./internal/cluster/ -run 'TestChaosSoak|TestClusterWorkerReconnects' -race -count=1 -v

# The pre-PR gate: everything that must be green before a change ships.
check: vet build race
	gofmt -l . | tee /dev/stderr | wc -l | grep -qx 0

bench:
	$(GO) test -bench=. -benchmem ./...

fmt:
	gofmt -w .
