GO ?= go

.PHONY: all build vet lint lint-json test race chaos wal-crash ckpt-chaos churn-storm failover byzantine obs-chaos check bench bench-json fmt

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-invariant static analysis: the nine-analyzer suite on the
# shared dataflow substrate (guarded fields, lock ordering, goroutine
# cancellation, frame/WAL dispatch, epoch fencing, metric hygiene,
# leveled logging, shutdown evidence). Gated on the committed baseline:
# only findings not recorded in lint-baseline.json fail the build. See
# docs/static-analysis.md.
lint:
	$(GO) run ./cmd/cwc-vet -timings -budget 30s -baseline lint-baseline.json ./...

# Machine-readable findings snapshot (baseline-filtered) for the CI
# artifact; never fails so the artifact exists even on red runs.
lint-json:
	$(GO) run ./cmd/cwc-vet -json -baseline lint-baseline.json ./... > cwc-vet-findings.json || true

# Fast suite (skips the chaos soak via -short).
test:
	$(GO) test -short ./...

# Full suite under the race detector, chaos soak included.
race:
	$(GO) test -race ./...

# Just the fault-injection soak: seeded chaos on every link, aggregates
# must be byte-identical to a fault-free run.
chaos:
	$(GO) test ./internal/cluster/ -run 'TestChaosSoak|TestClusterWorkerReconnects' -race -count=1 -v

# Master-durability harness: replay every truncation of a recorded WAL
# (a SIGKILL at any byte) plus the flaky-disk and fuzz-seed cases;
# recovery must never fail and aggregates must match the uncrashed run.
wal-crash:
	$(GO) test ./internal/wal/ ./internal/server/ -run 'TestWAL|TestEveryByteTruncation|TestCorrupt|TestFaultyWriter|Fuzz' -race -count=1 -v

# Checkpoint-streaming chaos: workers killed silently at streamed-
# checkpoint thresholds (and the master killed mid-round) must cost at
# most one interval + one flush of recomputed input per failure, with
# aggregates byte-identical to a fault-free run.
ckpt-chaos:
	$(GO) test ./internal/cluster/ -run 'TestCkptChaos' -race -count=1 -v
	$(GO) test ./internal/server/ -run 'TestOfflineFailureEndToEnd' -race -count=1 -v

# Churn storm: the morning unplug wave (half the fleet unplugging in a
# narrow band with flapping replugs). Plug-aware placement must requeue
# fewer attempts and re-ship fewer bytes than a prediction-disabled
# baseline, with byte-identical aggregates.
churn-storm:
	$(GO) test ./internal/cluster/ -run 'TestChurnStorm' -race -count=1 -v
	$(GO) test ./internal/faults/ -run 'TestParseScenarioWave|TestWaveSchedule' -race -count=1 -v
	$(GO) test ./internal/server/ -run 'TestProactiveDrain|TestWALDrainLedger|TestRecordFailureDedupes' -race -count=1 -v

# Failover cluster e2e: kill the primary mid-round — the hot standby
# must promote within its lease, workers must rotate and finish with
# byte-identical aggregates, and a resurrected old primary (or the
# losing side of a partition) must be epoch-fenced, never double-
# accepting a result. Plus the replication-stream torn-cut harness.
failover:
	$(GO) test ./internal/cluster/ -run 'TestFailover' -race -count=1 -v
	$(GO) test ./internal/replica/ -run 'TestStandbyTornStream' -race -count=1 -v
	$(GO) test ./internal/wal/ -run 'TestStreamReader|TestEncodeRecord' -race -count=1 -v
	$(GO) test ./internal/faults/ -run 'TestParseScenarioKillPrimary|TestParseScenarioPartition|TestParseScenarioFailoverErrors' -race -count=1 -v
	$(GO) test ./internal/protocol/ -run 'TestSendIsOneWrite|TestRecvHostileLength|TestRecvChunkedBodyGrowth|TestEpochRoundTrip' -race -count=1 -v

# Result-integrity e2e: a fleet seeded with 20% liars (faults DSL) under
# replicated voting (k=2) must finish with byte-identical aggregates,
# every liar reputation-quarantined, no honest phone harmed, and the
# quarantine must survive an abrupt mid-run master kill via WAL record
# replay. Plus the voting/audit/tie-break unit suite and the DSL parser.
byzantine:
	$(GO) test ./internal/cluster/ -run 'TestByzantine|TestClusterCorruptResult' -race -count=1 -v
	$(GO) test ./internal/server/ -run 'TestVoting|TestAudit|TestQuarantine|TestClaimedDigest|TestReputation' -race -count=1 -v
	$(GO) test ./internal/faults/ -run 'TestParseScenarioByzantine|TestByzantineFor' -race -count=1 -v
	$(GO) test ./internal/tasks/ -run 'TestDigest' -race -count=1 -v

# Observability chaos: a seeded failover where every partition's merged
# master+worker timeline must stay causally ordered across the standby
# promotion (no orphan spans), a SIGQUIT'd master must leave a parseable
# black-box dump, and an obs-disabled run must ship zero telemetry
# frames with byte-identical aggregates. Failing runs save their trace
# JSONL and timeline under $$CWC_ARTIFACT_DIR when it is set.
obs-chaos:
	$(GO) test ./internal/cluster/ -run 'TestObsChaos|TestObsDisabledNeutrality' -race -count=1 -v
	$(GO) test ./internal/server/ -run 'TestFoldTelemetry|TestIngestWorkerStats|TestTimeline' -race -count=1 -v
	$(GO) test ./internal/obs/ -race -count=1

# The pre-PR gate: everything that must be green before a change ships.
check: vet lint build race chaos wal-crash ckpt-chaos churn-storm failover byzantine obs-chaos
	gofmt -l . | tee /dev/stderr | wc -l | grep -qx 0

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable perf snapshot: scheduler-vs-LP ratio, WAL append
# cost, checkpoint-streaming overhead. Diff it across versions.
bench-json:
	$(GO) run ./cmd/cwc-bench -bench-json BENCH_PR4.json

fmt:
	gofmt -w .
