package protocol

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// countingConn counts Write calls; the fault layer treats one Write as
// one frame, so Send must emit header and body in a single call.
type countingConn struct {
	net.Conn
	writes int
	buf    bytes.Buffer
}

func (c *countingConn) Write(b []byte) (int, error) {
	c.writes++
	return c.buf.Write(b)
}

func (c *countingConn) Close() error                       { return nil }
func (c *countingConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *countingConn) SetWriteDeadline(t time.Time) error { return nil }

func TestSendIsOneWrite(t *testing.T) {
	cc := &countingConn{}
	c := NewConn(cc)
	if err := c.Send(&Message{Type: TypePing, Seq: 3}); err != nil {
		t.Fatal(err)
	}
	if cc.writes != 1 {
		t.Fatalf("Send issued %d writes, want 1 (header and body coalesced)", cc.writes)
	}
	// The single write must still be a well-formed frame.
	raw := cc.buf.Bytes()
	if len(raw) < 4 {
		t.Fatalf("frame too short: %d bytes", len(raw))
	}
	if n := binary.BigEndian.Uint32(raw); int(n) != len(raw)-4 {
		t.Fatalf("length prefix %d, want %d", n, len(raw)-4)
	}
}

// TestRecvHostileLength sends a frame whose length prefix claims far
// more data than will ever arrive: the reader must not allocate the
// claimed size up front, and must fail with a truncation error once the
// stream dries up.
func TestRecvHostileLength(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	conn := NewConn(b)
	go func() {
		// Claim just under the frame cap, deliver a handful of bytes.
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], MaxFrameSize-1)
		a.Write(hdr[:])
		a.Write([]byte("only-this"))
		a.Close()
	}()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, err := conn.Recv()
	if err == nil {
		t.Fatal("hostile length prefix decoded")
	}
	if !strings.Contains(err.Error(), io.ErrUnexpectedEOF.Error()) && !strings.Contains(err.Error(), io.EOF.Error()) {
		t.Fatalf("err %v, want a truncation error", err)
	}
}

// TestRecvChunkedBodyGrowth drives a body larger than the initial read
// chunk through Recv to cover the incremental-growth path.
func TestRecvChunkedBodyGrowth(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	big := bytes.Repeat([]byte("z"), recvChunk+recvChunk/2)
	done := make(chan error, 1)
	go func() { done <- a.Send(&Message{Type: TypeAssign, JobID: 1, Input: big}) }()
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Input, big) {
		t.Fatalf("large body mangled: %d bytes, want %d", len(got.Input), len(big))
	}
}

func TestEpochRoundTrip(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() { done <- a.Send(&Message{Type: TypeResult, JobID: 2, Epoch: 7}) }()
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 7 {
		t.Fatalf("epoch = %d, want 7", got.Epoch)
	}

	// Omitted epoch stays zero ("no epoch tracking") on the wire.
	go func() { done <- a.Send(&Message{Type: TypeResult, JobID: 3}) }()
	got, err = b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 0 {
		t.Fatalf("epoch = %d, want 0", got.Epoch)
	}
}
