// Package protocol defines the wire protocol between the CWC central
// server and the phone workers: length-prefixed JSON frames over a
// persistent TCP connection (the prototype's Java NIO server spoke an
// equivalent custom protocol).
//
// The connection carries registration, iperf-style bandwidth probes, task
// assignment (executable name + parameters + input partition, optionally a
// migrated checkpoint), completion and failure reports, and application-
// level keepalives — the paper's offline-failure detector (30 s period,
// 3 tolerated misses).
package protocol

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"cwc/internal/tasks"
)

// Type discriminates protocol messages.
type Type string

// Message types.
const (
	// Worker -> server on connect: model, CPU clock, RAM.
	TypeHello Type = "hello"
	// Server -> worker: assigned phone ID and keepalive parameters.
	TypeWelcome Type = "welcome"
	// Server -> worker: timed bulk payload for bandwidth estimation.
	TypeProbe Type = "probe"
	// Worker -> server: probe acknowledgement.
	TypeProbeAck Type = "probe_ack"
	// Server -> worker: run a task on an input partition. Large inputs
	// are streamed: the assign frame carries the first chunk and the
	// total length, followed by assign_chunk frames until complete.
	TypeAssign Type = "assign"
	// Server -> worker: continuation bytes of a chunked assignment.
	TypeAssignChunk Type = "assign_chunk"
	// Worker -> server: completed partition with result and timing.
	TypeResult Type = "result"
	// Worker -> server: partition failed (unplug); carries the
	// checkpoint for migration.
	TypeFailure Type = "failure"
	// Server -> worker keepalive, and its response.
	TypePing Type = "ping"
	TypePong Type = "pong"
	// Server -> worker: orderly shutdown.
	TypeBye Type = "bye"
	// Worker -> server: a mid-execution checkpoint snapshot (checkpoint
	// streaming). Where a failure report's checkpoint only survives an
	// *online* failure, these bound the work lost to a silent death.
	TypeCheckpoint Type = "checkpoint"
	// Server -> worker: flow-control acknowledgement of a streamed
	// checkpoint (the worker caps unacknowledged checkpoint frames).
	TypeCheckpointAck Type = "checkpoint_ack"
	// Server -> worker: proactive drain. The phone's predicted charge
	// window is closing; the worker must flush a checkpoint at its next
	// progress point and interrupt any in-flight task, reporting it as a
	// failure (with the checkpoint) so the server can requeue cleanly
	// before the expected disconnect. The connection stays open.
	TypeDrain Type = "drain"
	// Worker -> server: a batch of worker-side span events (see
	// WorkerEvent), shipped opportunistically after pong and result
	// frames. Sent only when the welcome announced Telemetry — with the
	// master's admin plane off, zero telemetry frames cross the wire.
	// Purely observational: the master folds the events into its trace
	// ring and never acts on them.
	TypeTelemetry Type = "telemetry"
)

// EventKind discriminates worker-side span events carried in telemetry
// frames. The master's fold switches over these; the cwc-vet frames
// analyzer requires that switch to stay exhaustive-or-default.
type EventKind string

// Worker-side event kinds.
const (
	// EventAssignRecv: an assignment was received and queued (after
	// chunked assembly completed, for streamed inputs).
	EventAssignRecv EventKind = "assign_recv"
	// EventExecStart / EventExecFinish bracket task execution; finish
	// carries the wall ms and the outcome in Detail ("ok", "failed",
	// "drained", "unplugged").
	EventExecStart  EventKind = "exec_start"
	EventExecFinish EventKind = "exec_finish"
	// EventThrottlePause: the MIMD charging throttle held execution.
	EventThrottlePause EventKind = "throttle_pause"
	// EventCkptFlush / EventCkptAck bracket a streamed checkpoint's
	// round trip as the worker sees it.
	EventCkptFlush EventKind = "ckpt_flush"
	EventCkptAck   EventKind = "ckpt_ack"
	// EventDrainHandback: a proactive drain interrupted the running
	// task and the partition was handed back with its checkpoint.
	EventDrainHandback EventKind = "drain_handback"
	// EventDial: a dial attempt in the reconnect/failover loop; Detail
	// carries the address and outcome.
	EventDial EventKind = "dial"
)

// WorkerEvent is one worker-side span event. TSMs is the worker's own
// clock (unix milliseconds) — the master keeps it in Ms-resolution
// order but never compares it against its own clock for correctness.
// Span is the parent trace span carried on the assign frame (empty for
// events outside any assignment, e.g. dials); Epoch is the fencing
// epoch the worker held when the event was minted, so a timeline
// assembled across a failover shows which regime each event belongs to.
type WorkerEvent struct {
	TSMs      int64     `json:"ts_ms"`
	Kind      EventKind `json:"kind"`
	Span      string    `json:"span,omitempty"`
	Job       int       `json:"job,omitempty"`
	Partition int       `json:"partition,omitempty"`
	Bytes     int64     `json:"bytes,omitempty"`
	Ms        float64   `json:"ms,omitempty"`
	Detail    string    `json:"detail,omitempty"`
	Epoch     int64     `json:"epoch,omitempty"`
}

// Message is the single frame shape; fields are populated per Type.
// A union keeps the framing trivial and the protocol self-describing.
type Message struct {
	Type Type `json:"type"`

	// Hello / Welcome.
	// Token authenticates the phone to the server when the deployment
	// configures a shared enrolment secret.
	Token   string  `json:"token,omitempty"`
	Model   string  `json:"model,omitempty"`
	CPUMHz  float64 `json:"cpu_mhz,omitempty"`
	RAMMB   int     `json:"ram_mb,omitempty"`
	PhoneID int     `json:"phone_id,omitempty"`
	// Rejoin marks a hello as a reconnection: the phone previously held
	// PhoneID and asks to resume that identity (checkpointed work and
	// bandwidth estimates survive the reconnect).
	Rejoin bool `json:"rejoin,omitempty"`
	// Welcome: keepalive parameters the worker should expect.
	KeepaliveMs int `json:"keepalive_ms,omitempty"`
	// Welcome: the checkpoint-streaming policy the server asks workers to
	// follow — stream a checkpoint every CkptEveryKB of processed input
	// and/or every CkptEveryMs of wall time (zero disables that trigger;
	// worker-side configuration may override).
	CkptEveryKB int `json:"ckpt_every_kb,omitempty"`
	CkptEveryMs int `json:"ckpt_every_ms,omitempty"`
	// Welcome: the master wants worker-side telemetry (its admin plane
	// is bound). Workers buffer and ship span events only after seeing
	// this; an unobserved master costs workers nothing.
	Telemetry bool `json:"telemetry,omitempty"`

	// Probe.
	Payload []byte `json:"payload,omitempty"`

	// Assign / Result / Failure.
	JobID     int `json:"job_id,omitempty"`
	Partition int `json:"partition,omitempty"`
	// Attempt is the server-issued dispatch attempt ID. The worker echoes
	// it in the matching result/failure so the server can pair late or
	// replayed reports with the exact dispatch that caused them
	// (first-result-wins for speculative re-dispatch). Zero means "no
	// attempt tracking" (legacy peers).
	Attempt int64 `json:"attempt,omitempty"`
	// Span is the task-lifecycle trace ID minted when the job was
	// submitted. It rides every assign frame and is echoed in the
	// matching result/failure/checkpoint frames so any partition's full
	// history (assign → transfer → exec → checkpoint → report, plus
	// failure/requeue/migration edges) can be reconstructed from the
	// master's trace ring or JSONL sink. Empty means "untraced" (legacy
	// peers); tracing is observability only, never correctness.
	Span   string `json:"span,omitempty"`
	Task   string `json:"task,omitempty"`
	Params []byte `json:"params,omitempty"`
	Input  []byte `json:"input,omitempty"`
	// TotalLen, when larger than len(Input) on an assign frame, announces
	// a chunked transfer: assign_chunk frames follow until the assembled
	// input reaches TotalLen.
	TotalLen int64             `json:"total_len,omitempty"`
	Resume   *tasks.Checkpoint `json:"resume,omitempty"`

	Result      []byte            `json:"result,omitempty"`
	ExecMs      float64           `json:"exec_ms,omitempty"`
	ProcessedKB float64           `json:"processed_kb,omitempty"`
	Checkpoint  *tasks.Checkpoint `json:"checkpoint,omitempty"`
	Error       string            `json:"error,omitempty"`
	// Digest is the worker-computed canonical SHA-256 digest of the
	// frame's payload (tasks.Digest of Result on result frames,
	// Checkpoint.Digest on checkpoint frames). The master recomputes the
	// digest from the received bytes; a mismatch with the claimed value
	// proves the payload was damaged between task output and fold, and
	// the digest — not the payload — is what replica votes compare.
	// Empty means "no digest" (legacy peers); the master then falls back
	// to its own recomputation.
	Digest string `json:"digest,omitempty"`

	// Ping / Pong.
	Seq uint64 `json:"seq,omitempty"`

	// Epoch is the master's fencing epoch. A welcome announces it; the
	// worker echoes it on every result/failure/checkpoint frame it
	// creates from then on. The master rejects report frames stamped
	// with a different non-zero epoch: after a standby promotion they
	// belong to the previous regime (whose attempt numbering the new
	// master cannot trust), and at a resurrected old primary they prove
	// the frame's author has moved on. Zero means "no epoch tracking"
	// (replication disabled, or a legacy peer).
	Epoch int64 `json:"epoch,omitempty"`

	// Stats is the worker's cumulative self-metering, piggybacked on
	// pong and result frames so the master can aggregate fleet-wide
	// metrics without any extra connections or frames. Absent from
	// legacy peers; purely observational.
	Stats *WorkerStats `json:"stats,omitempty"`

	// Telemetry frames: the batched worker-side span events, and how
	// many events the worker's bounded buffer dropped (cumulative) —
	// backpressure is visible, never silent.
	Events  []WorkerEvent `json:"events,omitempty"`
	Dropped int64         `json:"dropped,omitempty"`
}

// WorkerStats is a worker's cumulative (monotonic) self-metering,
// snapshotted onto outgoing pong/result frames. All fields count since
// the worker process started. A frame therefore supersedes every
// earlier frame from the same process — but NOT frames from a previous
// process that held the same phone ID: after a reconnect identity
// takeover by a restarted worker, counters restart from zero. The
// master handles that by monotone folding (see server.ingestWorkerStats):
// when a snapshot regresses, the previous totals are folded into a
// per-phone base, so the published per-phone series never move
// backwards and nothing is lost across restarts. Overflow is not a
// practical concern (float64 ms and int counters at phone-scale rates),
// and the fold would absorb a wrapped counter the same way.
type WorkerStats struct {
	// ExecMs is total task execution wall time.
	ExecMs float64 `json:"exec_ms,omitempty"`
	// TransferKB is total assignment input received (assign + chunks).
	TransferKB float64 `json:"transfer_kb,omitempty"`
	// ThrottlePauses counts MIMD charging-throttle holds.
	ThrottlePauses int `json:"throttle_pauses,omitempty"`
	// Reconnects counts successful re-registrations after a lost
	// connection.
	Reconnects int `json:"reconnects,omitempty"`
	// CkptFrames / CkptKB count streamed mid-execution checkpoints.
	CkptFrames int     `json:"ckpt_frames,omitempty"`
	CkptKB     float64 `json:"ckpt_kb,omitempty"`
	// Assignments counts partitions accepted for execution.
	Assignments int `json:"assignments,omitempty"`
}

// MaxFrameSize bounds a single frame; larger frames indicate a corrupt
// stream or an abusive peer.
const MaxFrameSize = 256 << 20 // 256 MiB

// recvChunk caps how much Recv allocates per step while a frame body
// arrives, so the declared length alone never commits real memory.
const recvChunk = 1 << 20 // 1 MiB

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ErrCorrupt marks a received frame as undecodable: an impossible length
// prefix, a body that is not valid JSON, or a frame without a type. The
// stream is unrecoverable past such a frame (framing is lost), so the
// peer should be treated exactly like an offline failure. Distinguish it
// from plain I/O errors (connection cut), which are NOT wrapped in it.
var ErrCorrupt = errors.New("protocol: corrupt frame")

// Conn wraps a net.Conn with frame encoding. Sends are serialized by a
// mutex so multiple goroutines (dispatcher, keepaliver) can share it;
// Recv must be called from a single reader goroutine.
type Conn struct {
	c  net.Conn
	r  *bufio.Reader
	wm sync.Mutex
}

// NewConn wraps an established connection. For TCP connections it enables
// OS-level SO_KEEPALIVE, as the prototype does, in addition to the
// application-level keepalives.
func NewConn(c net.Conn) *Conn {
	if tc, ok := c.(*net.TCPConn); ok {
		// Best effort — the app-level keepalive is the real detector.
		_ = tc.SetKeepAlive(true)
		_ = tc.SetKeepAlivePeriod(30 * time.Second)
	}
	return &Conn{c: c, r: bufio.NewReaderSize(c, 64<<10)}
}

// Send writes one frame: 4-byte big-endian length followed by the JSON
// body.
func (c *Conn) Send(m *Message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("protocol: encoding %s frame: %w", m.Type, err)
	}
	if len(body) > MaxFrameSize {
		return fmt.Errorf("protocol: %s frame of %d bytes exceeds limit", m.Type, len(body))
	}
	// One frame, one Write: a crash or fault-injected cut can never land
	// between the header and the body, and each frame costs one syscall.
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame, uint32(len(body)))
	copy(frame[4:], body)
	c.wm.Lock()
	defer c.wm.Unlock()
	if _, err := c.c.Write(frame); err != nil {
		return fmt.Errorf("protocol: writing frame: %w", err)
	}
	return nil
}

// Recv reads one frame.
func (c *Conn) Recv() (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("protocol: reading frame header: %w", err)
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > MaxFrameSize {
		return nil, fmt.Errorf("frame of %d bytes exceeds limit: %w", n, ErrCorrupt)
	}
	// A corrupt or hostile length prefix must not cost MaxFrameSize
	// (256 MiB) up front: allocate at most recvChunk before any body byte
	// has arrived and grow only as bytes actually land.
	body := make([]byte, minInt(n, recvChunk))
	off := 0
	for {
		if _, err := io.ReadFull(c.r, body[off:]); err != nil {
			return nil, fmt.Errorf("protocol: reading frame body: %w", err)
		}
		off = len(body)
		if off == n {
			break
		}
		body = append(body, make([]byte, minInt(n-off, recvChunk))...)
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("decoding frame (%v): %w", err, ErrCorrupt)
	}
	if m.Type == "" {
		return nil, fmt.Errorf("frame missing type: %w", ErrCorrupt)
	}
	return &m, nil
}

// SetReadDeadline bounds the next Recv.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.c.SetReadDeadline(t) }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr exposes the peer address for logging.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }
