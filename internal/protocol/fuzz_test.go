package protocol

import (
	"encoding/binary"
	"net"
	"testing"
	"time"
)

// FuzzRecv feeds arbitrary bytes into the frame decoder; it must reject or
// accept without panics, hangs or unbounded allocation.
func FuzzRecv(f *testing.F) {
	valid := func(body string) []byte {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
		return append(hdr[:], body...)
	}
	f.Add(valid(`{"type":"ping","seq":1}`))
	f.Add(valid(`{"type":""}`))
	f.Add(valid(`{`))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		client, server := net.Pipe()
		defer client.Close()
		c := NewConn(server)
		defer c.Close()
		go func() {
			client.Write(data)
			client.Close()
		}()
		if err := c.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
			t.Fatal(err)
		}
		m, err := c.Recv()
		if err == nil && m.Type == "" {
			t.Fatal("decoder accepted a frame without a type")
		}
	})
}
