package protocol

import (
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"cwc/internal/tasks"
)

// pipePair returns two framed conns talking to each other.
func pipePair() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

func TestSendRecvRoundTrip(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()

	want := &Message{
		Type:   TypeAssign,
		JobID:  7,
		Task:   "primecount",
		Input:  []byte("2\n3\n4\n"),
		Resume: &tasks.Checkpoint{Offset: 2, State: []byte(`{"count":1}`)},
	}
	done := make(chan error, 1)
	go func() { done <- a.Send(want) }()
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeAssign || got.JobID != 7 || got.Task != "primecount" {
		t.Errorf("got %+v", got)
	}
	if string(got.Input) != "2\n3\n4\n" {
		t.Errorf("input = %q", got.Input)
	}
	if got.Resume == nil || got.Resume.Offset != 2 || string(got.Resume.State) != `{"count":1}` {
		t.Errorf("resume = %+v", got.Resume)
	}
}

func TestAllMessageTypesRoundTrip(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()

	msgs := []*Message{
		{Type: TypeHello, Model: "HTC G2", CPUMHz: 806, RAMMB: 512},
		{Type: TypeWelcome, PhoneID: 3, KeepaliveMs: 30000},
		{Type: TypeProbe, Payload: make([]byte, 4096)},
		{Type: TypeProbeAck},
		{Type: TypeResult, JobID: 1, Partition: 2, Result: []byte("42"), ExecMs: 17.5, ProcessedKB: 12},
		{Type: TypeFailure, JobID: 1, Checkpoint: &tasks.Checkpoint{Offset: 5}, Error: "unplugged"},
		{Type: TypePing, Seq: 9},
		{Type: TypePong, Seq: 9},
		{Type: TypeBye},
	}
	go func() {
		for _, m := range msgs {
			if err := a.Send(m); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for _, want := range msgs {
		got, err := b.Recv()
		if err != nil {
			t.Fatalf("recv %s: %v", want.Type, err)
		}
		if got.Type != want.Type {
			t.Fatalf("type %s, want %s", got.Type, want.Type)
		}
		if got.Seq != want.Seq || got.ExecMs != want.ExecMs || got.PhoneID != want.PhoneID {
			t.Errorf("%s fields mangled: %+v", want.Type, got)
		}
	}
}

func TestRecvRejectsOversizedFrame(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	c := NewConn(server)
	defer c.Close()
	go func() {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
		client.Write(hdr[:])
	}()
	if _, err := c.Recv(); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("err = %v, want frame-limit error", err)
	}
}

func TestRecvRejectsGarbage(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	c := NewConn(server)
	defer c.Close()
	go func() {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 3)
		client.Write(hdr[:])
		client.Write([]byte("{{{"))
	}()
	if _, err := c.Recv(); err == nil {
		t.Error("garbage body should fail to decode")
	}
}

func TestRecvRejectsMissingType(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	go a.Send(&Message{})
	if _, err := b.Recv(); err == nil || !strings.Contains(err.Error(), "missing type") {
		t.Errorf("err = %v, want missing-type error", err)
	}
}

func TestRecvEOF(t *testing.T) {
	a, b := pipePair()
	a.Close()
	if _, err := b.Recv(); err == nil {
		t.Error("recv on closed peer should error")
	}
}

func TestConcurrentSenders(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	const n = 50
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := a.Send(&Message{Type: TypePing, Seq: uint64(g*n + i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 4*n; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Type != TypePing {
			t.Fatalf("frame %d has type %s (interleaved write corruption?)", i, m.Type)
		}
		if seen[m.Seq] {
			t.Fatalf("duplicate seq %d", m.Seq)
		}
		seen[m.Seq] = true
	}
	wg.Wait()
}

func TestReadDeadline(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	if err := b.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := b.Recv(); err == nil {
		t.Error("expected deadline error")
	}
	if time.Since(start) > time.Second {
		t.Error("deadline not honoured")
	}
}

func TestOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan *Message, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		c := NewConn(conn) // exercises the TCP keepalive path
		defer c.Close()
		m, err := c.Recv()
		if err != nil {
			return
		}
		done <- m
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewConn(raw)
	defer c.Close()
	if err := c.Send(&Message{Type: TypeHello, Model: "Nexus S", CPUMHz: 1000}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-done:
		if m.Model != "Nexus S" {
			t.Errorf("model = %q", m.Model)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timed out")
	}
	if c.RemoteAddr() == nil {
		t.Error("remote addr should be set")
	}
}

// Corrupt-stream classification: frames that are structurally broken
// (impossible length, undecodable JSON, missing type) wrap ErrCorrupt so
// the server can convert them into structured offline failures, while a
// cleanly cut stream surfaces as a plain I/O error.
func TestRecvCorruptClassification(t *testing.T) {
	// Garbage header: four random bytes that decode to a plausible length
	// followed by non-JSON body bytes.
	t.Run("garbage header and body", func(t *testing.T) {
		client, server := net.Pipe()
		defer client.Close()
		c := NewConn(server)
		defer c.Close()
		go client.Write([]byte{0x00, 0x00, 0x00, 0x05, 0xde, 0xad, 0xbe, 0xef, 0x01})
		_, err := c.Recv()
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("oversized length prefix", func(t *testing.T) {
		client, server := net.Pipe()
		defer client.Close()
		c := NewConn(server)
		defer c.Close()
		go client.Write([]byte{0xff, 0xff, 0xff, 0xff})
		_, err := c.Recv()
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("missing type", func(t *testing.T) {
		a, b := pipePair()
		defer a.Close()
		defer b.Close()
		go a.Send(&Message{})
		_, err := b.Recv()
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	// A truncated body (peer dies mid-frame) is a connection failure, not
	// a corrupt frame: framing was intact as far as it got.
	t.Run("truncated body is not corrupt", func(t *testing.T) {
		client, server := net.Pipe()
		c := NewConn(server)
		defer c.Close()
		go func() {
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], 100)
			client.Write(hdr[:])
			client.Write([]byte("{\"type\":")) // 8 of 100 bytes, then gone
			client.Close()
		}()
		_, err := c.Recv()
		if err == nil {
			t.Fatal("truncated body should error")
		}
		if errors.Is(err, ErrCorrupt) {
			t.Errorf("err = %v, should NOT be ErrCorrupt", err)
		}
	})
}

// Attempt IDs and the rejoin flag survive the wire round trip.
func TestAttemptAndRejoinRoundTrip(t *testing.T) {
	a, b := pipePair()
	defer a.Close()
	defer b.Close()
	msgs := []*Message{
		{Type: TypeHello, Model: "HTC G2", CPUMHz: 806, PhoneID: 4, Rejoin: true},
		{Type: TypeAssign, JobID: 1, Partition: 0, Attempt: 77, Task: "primecount", Input: []byte("2\n")},
		{Type: TypeResult, JobID: 1, Partition: 0, Attempt: 77, Result: []byte("1")},
	}
	go func() {
		for _, m := range msgs {
			if err := a.Send(m); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	hello, err := b.Recv()
	if err != nil || !hello.Rejoin || hello.PhoneID != 4 {
		t.Fatalf("rejoin hello = %+v, %v", hello, err)
	}
	asg, err := b.Recv()
	if err != nil || asg.Attempt != 77 {
		t.Fatalf("assign attempt = %+v, %v", asg, err)
	}
	res, err := b.Recv()
	if err != nil || res.Attempt != 77 {
		t.Fatalf("result attempt = %+v, %v", res, err)
	}
}
