package protocol

import (
	"net"
	"testing"
)

func benchConnPair(b *testing.B) (*Conn, *Conn) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	server := <-accepted
	a, c := NewConn(client), NewConn(server)
	b.Cleanup(func() { a.Close(); c.Close() })
	return a, c
}

func BenchmarkFrameRoundTripSmall(b *testing.B) {
	a, c := benchConnPair(b)
	go func() {
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			if err := c.Send(m); err != nil {
				return
			}
		}
	}()
	msg := &Message{Type: TypePing, Seq: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := a.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameThroughput64KB(b *testing.B) {
	a, c := benchConnPair(b)
	go func() {
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	}()
	msg := &Message{Type: TypeAssign, Task: "primecount", Input: make([]byte, 64<<10)}
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(msg); err != nil {
			b.Fatal(err)
		}
	}
}
