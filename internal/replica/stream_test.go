package replica

import (
	"context"
	"errors"
	"io"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cwc/internal/server"
	"cwc/internal/tasks"
	"cwc/internal/wal"
)

// captureSink records every record a primary ships.
type captureSink struct {
	mu   sync.Mutex
	typs []uint8
	recs [][]byte
}

func (c *captureSink) Ship(typ uint8, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.typs = append(c.typs, typ)
	c.recs = append(c.recs, append([]byte(nil), payload...))
}

func (c *captureSink) Lag() int64 { return 0 }

// TestStandbyTornStreamEveryCut feeds a standby a real replication
// stream (snapshot frame + records captured from a live primary)
// truncated at every byte offset, and asserts the standby applies
// exactly the records whose frames arrived whole — a torn record is
// never folded and never reaches the standby's log — with the follow
// loop ending in a resync-able error, never a false success.
func TestStandbyTornStreamEveryCut(t *testing.T) {
	// A real primary generates the stream: bump the epoch, cut a
	// snapshot, then submit jobs so records ship after the cut.
	sink := &captureSink{}
	pwl, err := wal.Open(filepath.Join(t.TempDir(), "primary"), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer pwl.Close()
	m := server.New(server.Config{WAL: pwl, ReplicaSink: sink})
	if err := m.RecoverWAL(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.BumpEpoch(); err != nil {
		t.Fatal(err)
	}
	var snap []byte
	if err := m.ReplicaSnapshot(func(b []byte) { snap = append([]byte(nil), b...) }); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	cutIdx := len(sink.recs)
	sink.mu.Unlock()
	task, err := tasks.New("primecount", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(task, []byte("2 3 5 7 11"), false); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(task, []byte("13 17 19"), true); err != nil {
		t.Fatal(err)
	}

	stream := wal.EncodeRecord(recSnapshot, snap)
	boundaries := []int{len(stream)} // offsets at which a whole frame ends
	sink.mu.Lock()
	for i := cutIdx; i < len(sink.recs); i++ {
		stream = append(stream, wal.EncodeRecord(sink.typs[i], sink.recs[i])...)
		boundaries = append(boundaries, len(stream))
	}
	sink.mu.Unlock()
	if len(boundaries) < 3 {
		t.Fatalf("stream has %d frames, want snapshot + 2 submits", len(boundaries))
	}

	ctx := context.Background()
	for cut := 0; cut <= len(stream); cut++ {
		whole := 0
		for _, b := range boundaries {
			if b <= cut {
				whole++
			}
		}
		wantApplied := int64(0)
		if whole > 0 {
			wantApplied = int64(whole - 1) // minus the snapshot frame
		}

		dir := filepath.Join(t.TempDir(), "standby")
		wl, err := wal.Open(dir, wal.Options{Sync: wal.SyncNone})
		if err != nil {
			t.Fatal(err)
		}
		fold := server.NewWALFold()
		s := New(StandbyOptions{Lease: time.Minute})
		us, them := net.Pipe()
		go func() {
			them.Write(stream[:cut])
			them.Close()
		}()
		lastHeard := time.Now()
		err = s.follow(ctx, us, wl, fold, &lastHeard)
		us.Close()

		if fold.Applied() != wantApplied {
			t.Fatalf("cut %d: folded %d records, want %d", cut, fold.Applied(), wantApplied)
		}
		atBoundary := cut == 0
		for _, b := range boundaries {
			if cut == b {
				atBoundary = true
			}
		}
		switch {
		case errors.Is(err, errStandbyWAL):
			t.Fatalf("cut %d: local log failure from a torn stream: %v", cut, err)
		case atBoundary && !errors.Is(err, io.EOF):
			t.Fatalf("cut %d (frame boundary): err %v, want io.EOF", cut, err)
		case !atBoundary && !errors.Is(err, io.ErrUnexpectedEOF):
			t.Fatalf("cut %d (mid-frame): err %v, want ErrUnexpectedEOF", cut, err)
		}
		if whole > 0 && fold.Epoch() != 1 {
			t.Fatalf("cut %d: fold epoch %d, want 1 from snapshot", cut, fold.Epoch())
		}

		// The standby's own log must hold exactly the applied records:
		// reopen it the way promotion would and count what recovery sees.
		if err := wl.Close(); err != nil {
			t.Fatal(err)
		}
		wl2, err := wal.Open(dir, wal.Options{Sync: wal.SyncNone})
		if err != nil {
			t.Fatalf("cut %d: reopening standby log: %v", cut, err)
		}
		if got := int64(len(wl2.Recovered())); got != wantApplied {
			t.Fatalf("cut %d: standby log holds %d records, want %d", cut, got, wantApplied)
		}
		if (wl2.Snapshot() != nil) != (whole > 0) {
			t.Fatalf("cut %d: standby log snapshot presence %v, want %v", cut, wl2.Snapshot() != nil, whole > 0)
		}
		wl2.Close()
	}
}
