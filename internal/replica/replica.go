// Package replica is the hot-standby layer for the CWC master: a
// primary streams every WAL record live to standbys over a TCP stream
// carrying the exact CRC framing internal/wal puts on disk, each
// standby persists and folds the stream so its state tracks the
// primary, and a lease protocol promotes a standby when the primary
// goes silent.
//
// Correctness across a failover rests on epoch fencing: a monotone
// epoch is persisted as WAL record type 11 and bumped on every
// promotion (and once when replication is first enabled). The welcome
// frame announces the epoch, workers echo it on every report frame, and
// a master rejects frames stamped with any other regime's epoch — so a
// resurrected old primary, or the losing side of a partition, can never
// double-accept results or mis-pair a stale report with a fresh attempt.
//
// The stream is one-directional and unacknowledged: the primary never
// waits for a standby (a standby that falls behind its bounded queue is
// dropped and resyncs from a fresh snapshot), so replication can slow a
// round down only by the cost of an in-memory enqueue.
package replica

import (
	"encoding/json"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cwc/internal/obs"
	"cwc/internal/server"
	"cwc/internal/wal"
)

// Stream frame types, deliberately outside the server's WAL record
// range so a misrouted frame can never be mistaken for a log record.
const (
	// recSnapshot opens (or reopens) a stream: the payload is the
	// primary's serialized walState snapshot — the exact cut after which
	// every appended record is shipped.
	recSnapshot uint8 = 0xF0
	// recHeartbeat keeps the lease alive through idle stretches; the
	// payload carries the primary's epoch and how many records this
	// connection has shipped, for standby-side lag accounting.
	recHeartbeat uint8 = 0xF1
)

// heartbeat is recHeartbeat's JSON payload.
type heartbeat struct {
	Epoch   int64 `json:"epoch"`
	Shipped int64 `json:"shipped"`
}

// ShipperOptions tunes a primary-side Shipper.
type ShipperOptions struct {
	// HeartbeatPeriod paces heartbeat frames (and therefore how quickly
	// a standby notices silence relative to its lease). Default 100 ms.
	HeartbeatPeriod time.Duration
	// QueueLen bounds each standby's in-flight record queue; a standby
	// that falls further behind is dropped and must resync from a fresh
	// snapshot. Default 4096.
	QueueLen int
	// Logger receives shipper events; nil discards.
	Logger *obs.Logger
}

// Shipper is the primary side of replication: it implements
// server.ReplicaSink (wire it into server.Config.ReplicaSink before
// server.New) and serves the replication listen address, handing every
// connecting standby a snapshot cut followed by the live record stream.
type Shipper struct {
	opts   ShipperOptions
	source func(activate func(snapshot []byte)) error
	epoch  func() int64

	mu      sync.Mutex
	subs    map[*subscriber]struct{} // guarded by mu
	shipped int64                    // guarded by mu; records shipped since start
	closed  bool                     // guarded by mu
	ln      net.Listener             // guarded by mu until Serve; read-only after

	wg    sync.WaitGroup
	stopc chan struct{}
}

// subscriber is one attached standby's queue.
type subscriber struct {
	ch     chan []byte
	gone   chan struct{} // closed exactly once when the standby is dropped
	conn   net.Conn
	sent   atomic.Int64 // records enqueued on this connection
	queued atomic.Int64 // records enqueued but not yet written
	isGone bool         // owned by the Shipper; only touched under its mu
}

// NewShipper creates a shipper; call BindMaster, then Serve.
func NewShipper(opts ShipperOptions) *Shipper {
	if opts.HeartbeatPeriod <= 0 {
		opts.HeartbeatPeriod = 100 * time.Millisecond
	}
	if opts.QueueLen <= 0 {
		opts.QueueLen = 4096
	}
	if opts.Logger == nil {
		opts.Logger = obs.Discard()
	}
	return &Shipper{
		opts:  opts,
		subs:  map[*subscriber]struct{}{},
		stopc: make(chan struct{}),
	}
}

// BindMaster wires the shipper to its primary: the snapshot source for
// standby attaches and the epoch for heartbeats. Must be called before
// Serve (the master is constructed with the shipper already in its
// Config, so the two are created in that order).
func (s *Shipper) BindMaster(m *server.Master) {
	s.source = m.ReplicaSnapshot
	s.epoch = m.Epoch
}

// Ship implements server.ReplicaSink: enqueue one appended record to
// every attached standby. Called with the master's state lock held, so
// it must never block — a standby whose queue is full is cut loose and
// reconnects for a fresh snapshot.
func (s *Shipper) Ship(typ uint8, payload []byte) {
	frame := wal.EncodeRecord(typ, payload)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shipped++
	for sub := range s.subs {
		select {
		case sub.ch <- frame:
			sub.sent.Add(1)
			sub.queued.Add(1)
		default:
			s.opts.Logger.Warnf("standby %s dropped: %d-record queue full", sub.conn.RemoteAddr(), cap(sub.ch))
			s.dropLocked(sub)
		}
	}
}

// Lag implements server.ReplicaSink: the slowest attached standby's
// backlog of enqueued-but-unwritten records.
func (s *Shipper) Lag() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var lag int64
	for sub := range s.subs {
		if q := sub.queued.Load(); q > lag {
			lag = q
		}
	}
	return lag
}

// dropLocked detaches one subscriber. Caller holds s.mu.
func (s *Shipper) dropLocked(sub *subscriber) {
	if sub.isGone {
		return
	}
	sub.isGone = true
	delete(s.subs, sub)
	close(sub.gone)
}

// Serve starts accepting standbys on ln; it returns immediately. The
// listener dies with Close.
func (s *Shipper) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
}

func (s *Shipper) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveStandby(conn)
		}()
	}
}

// serveStandby attaches one standby: snapshot first (registered under
// the master's state lock so the cut is exact), then the live stream
// interleaved with heartbeats until the connection, the subscriber, or
// the shipper dies.
func (s *Shipper) serveStandby(conn net.Conn) {
	defer conn.Close()
	sub := &subscriber{
		ch:   make(chan []byte, s.opts.QueueLen),
		gone: make(chan struct{}),
		conn: conn,
	}
	var snap []byte
	err := s.source(func(b []byte) {
		snap = b
		s.mu.Lock()
		if s.closed {
			sub.isGone = true
			close(sub.gone)
		} else {
			s.subs[sub] = struct{}{}
		}
		s.mu.Unlock()
	})
	if err != nil {
		s.opts.Logger.Errorf("standby %s: snapshot cut failed: %v", conn.RemoteAddr(), err)
		return
	}
	defer func() {
		s.mu.Lock()
		s.dropLocked(sub)
		s.mu.Unlock()
	}()
	s.opts.Logger.Infof("standby attached from %s (snapshot %d bytes)", conn.RemoteAddr(), len(snap))
	if _, err := conn.Write(wal.EncodeRecord(recSnapshot, snap)); err != nil {
		s.opts.Logger.Warnf("standby %s: writing snapshot: %v", conn.RemoteAddr(), err)
		return
	}
	hb := time.NewTicker(s.opts.HeartbeatPeriod)
	defer hb.Stop()
	for {
		select {
		case frame := <-sub.ch:
			if _, err := conn.Write(frame); err != nil {
				s.opts.Logger.Warnf("standby %s: stream write: %v", conn.RemoteAddr(), err)
				return
			}
			sub.queued.Add(-1)
		case <-hb.C:
			b, err := json.Marshal(heartbeat{Epoch: s.epoch(), Shipped: sub.sent.Load()})
			if err != nil {
				return
			}
			if _, err := conn.Write(wal.EncodeRecord(recHeartbeat, b)); err != nil {
				s.opts.Logger.Warnf("standby %s: heartbeat write: %v", conn.RemoteAddr(), err)
				return
			}
		case <-sub.gone:
			return
		case <-s.stopc:
			return
		}
	}
}

// DropAll severs every attached standby's live stream while the shipper
// keeps accepting — the harness hook for injecting a replication
// partition (a router-level cut kills established connections, not just
// future dials).
func (s *Shipper) DropAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for sub := range s.subs {
		sub.conn.Close() // unblock any in-progress Write
		s.dropLocked(sub)
	}
}

// Close stops accepting, drops every standby, and waits for the
// shipper's goroutines. Ship calls after Close are no-ops (the
// subscriber set is already empty).
func (s *Shipper) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	for sub := range s.subs {
		sub.conn.Close() // unblock any in-progress Write
		s.dropLocked(sub)
	}
	s.mu.Unlock()
	close(s.stopc)
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}
