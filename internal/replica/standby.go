package replica

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"cwc/internal/obs"
	"cwc/internal/server"
	"cwc/internal/wal"
)

// errStandbyWAL marks a local-durability failure (the standby's own log
// rejected a write): the one fault a resync cannot repair, so Run stops
// instead of retrying.
var errStandbyWAL = errors.New("replica: standby log failure")

// StandbyOptions tunes a hot standby.
type StandbyOptions struct {
	// PrimaryAddr is the primary's replication listen address.
	PrimaryAddr string
	// Dial overrides the transport (tests, fault injection); the default
	// dials PrimaryAddr over TCP.
	Dial func(ctx context.Context) (net.Conn, error)
	// WALDir is the standby's own log directory: every shipped record is
	// persisted here before it is folded, so promotion recovers from
	// disk exactly like any master restart — the shipped stream is never
	// trusted beyond what the local log took.
	WALDir string
	// WALOptions tune the standby's log (sync policy, compaction).
	WALOptions wal.Options
	// Lease is how long replication may stay silent (no records, no
	// heartbeats, no successful dial) before the standby declares the
	// primary dead and promotes itself. Default 2 s; it should comfortably
	// exceed the primary's heartbeat period.
	Lease time.Duration
	// RetryEvery paces redials while the primary is unreachable.
	// Default Lease/8.
	RetryEvery time.Duration
	// MasterConfig is the server configuration the promoted master runs
	// with. Set Listener to a pre-bound takeover listener (workers that
	// dial it before promotion get an immediate close, so their failover
	// rotation moves on quickly); otherwise Addr is bound at promotion.
	// The WAL field is owned by the standby and overwritten.
	MasterConfig server.Config
	// Logger receives standby lifecycle events; nil discards. Metrics,
	// when set, exposes cwc_replica_lag_records from the standby's side
	// (heartbeat-shipped minus locally applied).
	Logger  *obs.Logger
	Metrics *obs.Registry
}

// Standby follows a primary's replication stream and promotes itself to
// a full master when the lease runs out. One Standby is single-use:
// Run → (stream, possibly across many reconnects) → promotion.
type Standby struct {
	opts StandbyOptions

	promoted chan struct{} // closed once the promoted master is serving
	handover chan struct{} // closed to reclaim the takeover listener

	mu     sync.Mutex
	master *server.Master // guarded by mu until promoted closes
	wlog   *wal.Log       // guarded by mu until promoted closes

	wg sync.WaitGroup
}

// New creates a standby; call Run to start following.
func New(opts StandbyOptions) *Standby {
	if opts.Lease <= 0 {
		opts.Lease = 2 * time.Second
	}
	if opts.RetryEvery <= 0 {
		opts.RetryEvery = opts.Lease / 8
	}
	if opts.Logger == nil {
		opts.Logger = obs.Discard()
	}
	if opts.Dial == nil {
		addr := opts.PrimaryAddr
		var d net.Dialer
		opts.Dial = func(ctx context.Context) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	return &Standby{
		opts:     opts,
		promoted: make(chan struct{}),
		handover: make(chan struct{}),
	}
}

// Promoted is closed once the standby has promoted itself and its
// master is serving.
func (s *Standby) Promoted() <-chan struct{} { return s.promoted }

// Master returns the promoted master (nil before Promoted closes).
func (s *Standby) Master() *server.Master {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.master
}

// Log returns the standby's WAL (after promotion: the promoted
// master's log, which the caller closes after Master().Close()).
func (s *Standby) Log() *wal.Log {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wlog
}

// Run follows the primary until the lease expires, then promotes, and
// returns nil with the promoted master serving. It returns early on
// context cancellation or an unrecoverable local fault (a wedged
// standby log). The lease clock starts now: a primary that is already
// dead costs exactly one lease of patience.
func (s *Standby) Run(ctx context.Context) error {
	wl, err := wal.Open(s.opts.WALDir, s.opts.WALOptions)
	if err != nil {
		return fmt.Errorf("replica: opening standby wal: %w", err)
	}
	if ln := s.opts.MasterConfig.Listener; ln != nil {
		s.wg.Add(1)
		go s.refuseUntilPromoted(ln)
	}
	fold := server.NewWALFold()
	lastHeard := time.Now()
	for {
		if ctx.Err() != nil {
			wl.Close()
			return ctx.Err()
		}
		if time.Since(lastHeard) > s.opts.Lease {
			s.opts.Logger.Warnf("lease expired after %v of silence: promoting", s.opts.Lease)
			return s.promote(wl, fold)
		}
		conn, err := s.opts.Dial(ctx)
		if err != nil {
			// Dial failures count as silence: the lease keeps draining.
			s.opts.Logger.Debugf("primary unreachable: %v", err)
			select {
			case <-time.After(s.opts.RetryEvery):
			case <-ctx.Done():
			}
			continue
		}
		err = s.follow(ctx, conn, wl, fold, &lastHeard)
		conn.Close()
		if err != nil {
			if errors.Is(err, errStandbyWAL) {
				wl.Close()
				return err
			}
			s.opts.Logger.Warnf("stream lost: %v", err)
		}
	}
}

// follow consumes one replication connection: the snapshot frame, then
// records (persist → fold) and heartbeats, refreshing lastHeard on
// every frame. Returns when the connection breaks, the stream stalls a
// full lease, or a record fails to persist or fold.
func (s *Standby) follow(ctx context.Context, conn net.Conn, wl *wal.Log, fold *server.WALFold, lastHeard *time.Time) error {
	sr := wal.NewStreamReader(bufio.NewReaderSize(conn, 64<<10))
	var connApplied int64
	sawSnapshot := false
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// A silent-but-open connection must not outlive the lease. A conn
		// that refuses a deadline is already dead — keep reading so any
		// buffered complete frames still apply; the read reports the end.
		_ = conn.SetReadDeadline(time.Now().Add(s.opts.Lease))
		rec, err := sr.Next()
		if err != nil {
			// Clean cut, torn record, corruption, timeout: all end this
			// connection; the torn record was never applied (StreamReader
			// yields only complete, checksummed records) and a reconnect
			// resyncs from a fresh snapshot.
			return err
		}
		*lastHeard = time.Now()
		switch rec.Type {
		case recSnapshot:
			if sawSnapshot {
				return fmt.Errorf("replica: unexpected mid-stream snapshot")
			}
			sawSnapshot = true
			// The snapshot supersedes everything the standby's log holds:
			// rotate it in verbatim so disk and fold agree on the cut.
			if err := wl.Compact(func(w io.Writer) error {
				_, werr := w.Write(rec.Payload)
				return werr
			}); err != nil {
				return fmt.Errorf("%w: installing snapshot: %v", errStandbyWAL, err)
			}
			if err := fold.LoadSnapshot(rec.Payload); err != nil {
				return fmt.Errorf("replica: folding snapshot: %w", err)
			}
			s.opts.Logger.Infof("synced snapshot from primary (%d bytes, epoch %d)", len(rec.Payload), fold.Epoch())
		case recHeartbeat:
			hb, err := decodeHeartbeat(rec.Payload)
			if err != nil {
				return err
			}
			s.setLag(hb.Shipped - connApplied)
		default:
			if !sawSnapshot {
				return fmt.Errorf("replica: record before snapshot frame")
			}
			// Persist before fold: promotion trusts only the local log.
			if err := wl.Append(rec.Type, rec.Payload); err != nil {
				return fmt.Errorf("%w: persisting shipped record: %v", errStandbyWAL, err)
			}
			if err := fold.Apply(rec); err != nil {
				// An inconsistent record: drop the stream and resync. The
				// reconnect's snapshot Compact also rotates the bad record
				// out of the local log, so disk and fold re-converge.
				return fmt.Errorf("replica: folding shipped record: %w", err)
			}
			connApplied++
			if wl.CompactDue() {
				if err := wl.Compact(fold.Snapshot); err != nil {
					return fmt.Errorf("%w: compacting standby log: %v", errStandbyWAL, err)
				}
			}
		}
	}
}

func decodeHeartbeat(b []byte) (heartbeat, error) {
	var hb heartbeat
	if err := json.Unmarshal(b, &hb); err != nil {
		return hb, fmt.Errorf("replica: decoding heartbeat: %w", err)
	}
	return hb, nil
}

func (s *Standby) setLag(lag int64) {
	if s.opts.Metrics == nil {
		return
	}
	if lag < 0 {
		lag = 0
	}
	s.opts.Metrics.Gauge("cwc_replica_lag_records").Set(float64(lag))
}

// refuseUntilPromoted owns the pre-bound takeover listener before
// promotion: workers trying the standby's address early get an
// immediate close — a fast, deterministic "not yet" that sends their
// failover rotation back to the primary — instead of a hung handshake.
// Accept is deadline-paced so promotion can reclaim the listener
// without closing it (the port must survive into the promoted master).
func (s *Standby) refuseUntilPromoted(ln net.Listener) {
	defer s.wg.Done()
	type deadliner interface{ SetDeadline(time.Time) error }
	dl, _ := ln.(deadliner)
	for {
		select {
		case <-s.handover:
			return
		default:
		}
		if dl != nil {
			_ = dl.SetDeadline(time.Now().Add(50 * time.Millisecond))
		}
		c, err := ln.Accept()
		if err == nil {
			c.Close()
			continue
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			continue
		}
		return // listener closed underneath us
	}
}

// promote turns the standby into a serving master: reclaim the takeover
// listener, reopen the log so recovery sees everything the stream
// persisted, replay it with the standard RecoverWAL machinery, bump the
// fencing epoch (durably, before the first worker is welcomed), and
// start serving.
func (s *Standby) promote(wl *wal.Log, fold *server.WALFold) error {
	close(s.handover)
	s.wg.Wait()
	if ln := s.opts.MasterConfig.Listener; ln != nil {
		if dl, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
			_ = dl.SetDeadline(time.Time{})
		}
	}
	streamEpoch := fold.Epoch()
	if err := wl.Close(); err != nil {
		return fmt.Errorf("replica: closing standby log for promotion: %w", err)
	}
	// Reopen: wal.Open is what populates Snapshot()/Recovered(), so the
	// promoted master recovers from disk exactly like a restarted one.
	wl2, err := wal.Open(s.opts.WALDir, s.opts.WALOptions)
	if err != nil {
		return fmt.Errorf("replica: reopening standby log: %w", err)
	}
	cfg := s.opts.MasterConfig
	cfg.WAL = wl2
	if cfg.Role == "" {
		cfg.Role = "promoted-primary"
	}
	if cfg.Logger == nil {
		cfg.Logger = s.opts.Logger
	}
	m := server.New(cfg)
	if err := m.RecoverWAL(); err != nil {
		wl2.Close()
		return fmt.Errorf("replica: recovering replicated state: %w", err)
	}
	epoch, err := m.BumpEpoch()
	if err != nil {
		wl2.Close()
		return fmt.Errorf("replica: fencing promotion: %w", err)
	}
	// Annotate the trace with the regime boundary: a timeline read off
	// the promoted master shows where the standby took over and which
	// epoch the replication stream had caught up to.
	cfg.Tracer.Record(obs.SpanEvent{
		Kind: obs.KindPromote, Job: -1, Partition: -1, Phone: -1, Epoch: epoch,
		Detail: fmt.Sprintf("standby promotion: stream epoch %d, serving epoch %d", streamEpoch, epoch),
	})
	if err := m.Start(); err != nil {
		wl2.Close()
		return fmt.Errorf("replica: starting promoted master: %w", err)
	}
	s.mu.Lock()
	s.master = m
	s.wlog = wl2
	s.mu.Unlock()
	close(s.promoted)
	s.opts.Logger.Infof("promoted: serving on %s at epoch %d (stream epoch was %d)", m.Addr(), epoch, streamEpoch)
	return nil
}
