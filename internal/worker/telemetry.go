package worker

import (
	"time"

	"cwc/internal/obs"
	"cwc/internal/protocol"
)

// maxTelemetryEvents bounds the buffer of span events awaiting a
// shipping opportunity; beyond it new events are counted as dropped
// rather than growing without bound on a phone that cannot reach the
// master. The cumulative drop count rides every telemetry frame, so
// backpressure is visible on the master, never silent.
const maxTelemetryEvents = 256

// event mints one worker-side span event. Events land in the bounded
// telemetry buffer only when the master asked for them (the welcome's
// Telemetry flag — an unobserved master costs zero buffering and zero
// frames); independently, they feed this worker's own registry and
// black-box recorder when the embedder configured those. With neither
// a telemetry-enabled master nor local sinks the call is a mutex
// round-trip and nothing more.
func (p *Phone) event(kind protocol.EventKind, span string, job, part int, bytes int64, ms float64, detail string) {
	localSinks := p.cfg.Metrics != nil || p.cfg.Blackbox != nil
	p.mu.Lock()
	if !p.telemetry && !localSinks {
		p.mu.Unlock()
		return
	}
	ev := protocol.WorkerEvent{
		TSMs: time.Now().UnixMilli(), Kind: kind, Span: span, Job: job,
		Partition: part, Bytes: bytes, Ms: ms, Detail: detail, Epoch: p.epoch,
	}
	id := p.id
	if p.telemetry {
		if len(p.telEvents) >= maxTelemetryEvents {
			p.telDropped++
		} else {
			p.telEvents = append(p.telEvents, ev)
		}
	}
	p.mu.Unlock()
	if p.cfg.Metrics != nil {
		p.cfg.Metrics.Counter("cwc_worker_events_total", "kind", string(kind)).Inc()
	}
	p.cfg.Blackbox.AddEvent(obs.SpanEvent{
		TS: time.UnixMilli(ev.TSMs), Span: span, Kind: string(kind), Job: job,
		Partition: part, Phone: id, Bytes: bytes, Ms: ms, Detail: detail,
		Src: "worker", Epoch: ev.Epoch,
	})
}

// shipTelemetry flushes the buffered span events as one telemetry frame
// on conn, called opportunistically after a pong or a report so
// telemetry never costs its own connection or wakeup. A failed send
// re-buffers the batch (the connection is dying; the events will ride
// the next regime's first opportunity), evicting oldest-first against
// the bound. The frame carries no fencing epoch on purpose: telemetry
// must survive a failover — each event carries the epoch it was minted
// under instead.
func (p *Phone) shipTelemetry(conn *protocol.Conn) {
	p.mu.Lock()
	if !p.telemetry || len(p.telEvents) == 0 {
		p.mu.Unlock()
		return
	}
	batch := p.telEvents
	dropped := p.telDropped
	p.telEvents = nil
	p.mu.Unlock()
	err := conn.Send(&protocol.Message{
		Type: protocol.TypeTelemetry, Events: batch, Dropped: dropped,
	})
	if err == nil {
		return
	}
	p.mu.Lock()
	combined := append(batch, p.telEvents...)
	if over := len(combined) - maxTelemetryEvents; over > 0 {
		combined = combined[over:]
		p.telDropped += int64(over)
	}
	p.telEvents = combined
	p.mu.Unlock()
}
