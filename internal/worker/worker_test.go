package worker

import (
	"context"
	"net"
	"testing"
	"time"

	"cwc/internal/protocol"
	"cwc/internal/tasks"
)

// fakeServer accepts exactly one worker over an in-memory pipe and lets
// the test drive the server side of the protocol by hand.
type fakeServer struct {
	t    *testing.T
	conn *protocol.Conn
}

// startWorker wires a worker to a fake server over net.Pipe and runs it.
func startWorker(t *testing.T, cfg Config) (*Phone, *fakeServer, context.CancelFunc) {
	t.Helper()
	serverSide, workerSide := net.Pipe()
	cfg.Dial = func(context.Context) (net.Conn, error) { return workerSide, nil }
	if cfg.CPUMHz == 0 {
		cfg.CPUMHz = 1000
	}
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		if err := w.Run(ctx); err != nil {
			t.Logf("worker exited: %v", err)
		}
	}()
	fs := &fakeServer{t: t, conn: protocol.NewConn(serverSide)}
	t.Cleanup(func() {
		cancel()
		fs.conn.Close()
	})
	return w, fs, cancel
}

func (fs *fakeServer) recv() *protocol.Message {
	fs.t.Helper()
	if err := fs.conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		fs.t.Fatal(err)
	}
	m, err := fs.conn.Recv()
	if err != nil {
		fs.t.Fatal(err)
	}
	return m
}

func (fs *fakeServer) send(m *protocol.Message) {
	fs.t.Helper()
	if err := fs.conn.Send(m); err != nil {
		fs.t.Fatal(err)
	}
}

// welcome consumes the hello and welcomes the worker with the given ID.
func (fs *fakeServer) welcome(id int) *protocol.Message {
	fs.t.Helper()
	hello := fs.recv()
	if hello.Type != protocol.TypeHello {
		fs.t.Fatalf("first frame = %s, want hello", hello.Type)
	}
	fs.send(&protocol.Message{Type: protocol.TypeWelcome, PhoneID: id, KeepaliveMs: 30000})
	return hello
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{ServerAddr: "x", CPUMHz: 0}); err == nil {
		t.Error("zero clock should error")
	}
	if _, err := New(Config{CPUMHz: 1000}); err == nil {
		t.Error("no address and no dialer should error")
	}
}

func TestRegistration(t *testing.T) {
	w, fs, _ := startWorker(t, Config{Model: "HTC G2", CPUMHz: 806, RAMMB: 512})
	hello := fs.welcome(7)
	if hello.Model != "HTC G2" || hello.CPUMHz != 806 || hello.RAMMB != 512 {
		t.Errorf("hello = %+v", hello)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := w.WaitRegistered(ctx); err != nil {
		t.Fatal(err)
	}
	if w.ID() != 7 {
		t.Errorf("ID = %d, want 7", w.ID())
	}
}

func TestWaitRegisteredTimeout(t *testing.T) {
	serverSide, workerSide := net.Pipe()
	defer serverSide.Close()
	w, err := New(Config{
		CPUMHz: 1000,
		Dial:   func(context.Context) (net.Conn, error) { return workerSide, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	go w.Run(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := w.WaitRegistered(ctx); err == nil {
		t.Error("expected registration timeout")
	}
}

func TestPingPong(t *testing.T) {
	_, fs, _ := startWorker(t, Config{})
	fs.welcome(1)
	fs.send(&protocol.Message{Type: protocol.TypePing, Seq: 42})
	pong := fs.recv()
	if pong.Type != protocol.TypePong || pong.Seq != 42 {
		t.Errorf("pong = %+v", pong)
	}
}

func TestProbeAck(t *testing.T) {
	_, fs, _ := startWorker(t, Config{})
	fs.welcome(1)
	fs.send(&protocol.Message{Type: protocol.TypeProbe, Payload: make([]byte, 2048), Seq: 3})
	ack := fs.recv()
	if ack.Type != protocol.TypeProbeAck {
		t.Errorf("ack = %+v", ack)
	}
}

func TestAssignExecutesAndReports(t *testing.T) {
	_, fs, _ := startWorker(t, Config{})
	fs.welcome(1)
	fs.send(&protocol.Message{
		Type:  protocol.TypeAssign,
		JobID: 5, Partition: 2,
		Task:  "primecount",
		Input: []byte("2\n3\n4\n"),
	})
	res := fs.recv()
	if res.Type != protocol.TypeResult {
		t.Fatalf("got %s: %s", res.Type, res.Error)
	}
	if res.JobID != 5 || res.Partition != 2 {
		t.Errorf("result routing = %+v", res)
	}
	if string(res.Result) != "2" {
		t.Errorf("result = %s, want 2", res.Result)
	}
	if res.ProcessedKB <= 0 {
		t.Error("processed KB missing")
	}
}

func TestAssignWithResume(t *testing.T) {
	_, fs, _ := startWorker(t, Config{})
	fs.welcome(1)
	// Resume after the first two lines with one prime already counted.
	fs.send(&protocol.Message{
		Type:  protocol.TypeAssign,
		JobID: 1,
		Task:  "primecount",
		Input: []byte("2\n4\n5\n7\n"),
		Resume: &tasks.Checkpoint{
			Offset: 4, // past "2\n4\n"
			State:  []byte(`{"count":1}`),
		},
	})
	res := fs.recv()
	if res.Type != protocol.TypeResult {
		t.Fatalf("got %s: %s", res.Type, res.Error)
	}
	if string(res.Result) != "3" { // 1 carried + 5, 7
		t.Errorf("resumed result = %s, want 3", res.Result)
	}
}

func TestAssignUnknownTaskFails(t *testing.T) {
	_, fs, _ := startWorker(t, Config{})
	fs.welcome(1)
	fs.send(&protocol.Message{Type: protocol.TypeAssign, JobID: 9, Task: "nope"})
	res := fs.recv()
	if res.Type != protocol.TypeFailure || res.JobID != 9 {
		t.Errorf("expected failure for unknown task, got %+v", res)
	}
}

func TestAssignBadInputFails(t *testing.T) {
	_, fs, _ := startWorker(t, Config{})
	fs.welcome(1)
	fs.send(&protocol.Message{Type: protocol.TypeAssign, JobID: 3, Task: "blur",
		Input: []byte("not an image")})
	res := fs.recv()
	if res.Type != protocol.TypeFailure {
		t.Errorf("expected failure for bad image, got %+v", res)
	}
}

func TestUnplugDuringExecution(t *testing.T) {
	w, fs, _ := startWorker(t, Config{DelayPerKB: 50 * time.Millisecond})
	fs.welcome(1)
	input := make([]byte, 0, 64*1024)
	for len(input) < 60*1024 {
		input = append(input, []byte("104729\n")...)
	}
	fs.send(&protocol.Message{Type: protocol.TypeAssign, JobID: 2,
		Task: "primecount", Input: input})
	time.Sleep(100 * time.Millisecond)
	w.Unplug()
	res := fs.recv()
	if res.Type != protocol.TypeFailure {
		t.Fatalf("expected failure report, got %s", res.Type)
	}
	if res.Checkpoint == nil {
		t.Fatal("failure must carry the checkpoint for migration")
	}
	if res.Error != "unplugged" {
		t.Errorf("error = %q", res.Error)
	}
	// The connection closes after the report.
	if err := fs.conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.conn.Recv(); err == nil {
		t.Error("worker should disconnect after unplugging")
	}
}

func TestUnplugWhileIdleSendsBye(t *testing.T) {
	w, fs, _ := startWorker(t, Config{})
	fs.welcome(1)
	// Give the worker a beat to be idle, then unplug. net.Pipe is
	// unbuffered, so the Bye send blocks until we read it: unplug from a
	// goroutine.
	time.Sleep(20 * time.Millisecond)
	go w.Unplug()
	msg := fs.recv()
	if msg.Type != protocol.TypeBye {
		t.Errorf("idle unplug sent %s, want bye", msg.Type)
	}
}

func TestVanishClosesSilently(t *testing.T) {
	w, fs, _ := startWorker(t, Config{})
	fs.welcome(1)
	time.Sleep(20 * time.Millisecond)
	w.Vanish()
	// The pipe may already be closed, making SetReadDeadline itself fail;
	// either way the next Recv must error without delivering a frame.
	_ = fs.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := fs.conn.Recv(); err == nil {
		t.Error("vanish should close without any frame")
	}
}

func TestByeExitsCleanly(t *testing.T) {
	serverSide, workerSide := net.Pipe()
	w, err := New(Config{
		CPUMHz: 1000,
		Dial:   func(context.Context) (net.Conn, error) { return workerSide, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- w.Run(context.Background()) }()
	fs := &fakeServer{t: t, conn: protocol.NewConn(serverSide)}
	fs.welcome(1)
	fs.send(&protocol.Message{Type: protocol.TypeBye})
	select {
	case err := <-errCh:
		if err != nil {
			t.Errorf("Run returned %v after bye", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not exit after bye")
	}
}

func TestContextCancelStopsWorker(t *testing.T) {
	_, fs, cancel := startWorker(t, Config{})
	fs.welcome(1)
	cancel()
	if err := fs.conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.conn.Recv(); err == nil {
		t.Error("canceled worker should drop the connection")
	}
}

func TestDialFailure(t *testing.T) {
	w, err := New(Config{ServerAddr: "127.0.0.1:1", CPUMHz: 1000}) // nothing listens there
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelT := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelT()
	if err := w.Run(ctx); err == nil {
		t.Error("dialing a dead address should error")
	}
}

func TestWorkerSendsAuthToken(t *testing.T) {
	_, fs, _ := startWorker(t, Config{AuthToken: "sekrit"})
	hello := fs.recv()
	if hello.Type != protocol.TypeHello || hello.Token != "sekrit" {
		t.Errorf("hello = %+v", hello)
	}
}

func TestAssignmentsExecuteSerially(t *testing.T) {
	_, fs, _ := startWorker(t, Config{DelayPerKB: 2 * time.Millisecond})
	fs.welcome(1)
	// Fire three assignments back to back; results must come back in
	// order because execution is strictly serial.
	input := make([]byte, 0, 8*1024)
	for len(input) < 8*1024 {
		input = append(input, []byte("11\n")...)
	}
	for k := 0; k < 3; k++ {
		fs.send(&protocol.Message{Type: protocol.TypeAssign, JobID: k + 1,
			Partition: k, Task: "primecount", Input: input})
	}
	for k := 0; k < 3; k++ {
		res := fs.recv()
		if res.Type != protocol.TypeResult {
			t.Fatalf("assignment %d: %s (%s)", k, res.Type, res.Error)
		}
		if res.JobID != k+1 {
			t.Fatalf("results out of order: got job %d, want %d", res.JobID, k+1)
		}
	}
}

func TestChunkedAssignmentAssembly(t *testing.T) {
	_, fs, _ := startWorker(t, Config{})
	fs.welcome(1)
	input := []byte("2\n3\n4\n5\n7\n9\n11\n")
	// Stream in three pieces.
	fs.send(&protocol.Message{
		Type: protocol.TypeAssign, JobID: 4, Partition: 1,
		Task: "primecount", Input: input[:5], TotalLen: int64(len(input)),
	})
	fs.send(&protocol.Message{
		Type: protocol.TypeAssignChunk, JobID: 4, Partition: 1, Input: input[5:9],
	})
	fs.send(&protocol.Message{
		Type: protocol.TypeAssignChunk, JobID: 4, Partition: 1, Input: input[9:],
	})
	res := fs.recv()
	if res.Type != protocol.TypeResult {
		t.Fatalf("got %s: %s", res.Type, res.Error)
	}
	if string(res.Result) != "5" { // 2 3 5 7 11
		t.Errorf("chunked result = %s, want 5", res.Result)
	}
}

func TestUnexpectedChunkRejected(t *testing.T) {
	_, fs, _ := startWorker(t, Config{})
	fs.welcome(1)
	fs.send(&protocol.Message{Type: protocol.TypeAssignChunk, JobID: 9, Partition: 0,
		Input: []byte("x")})
	res := fs.recv()
	if res.Type != protocol.TypeFailure {
		t.Errorf("stray chunk got %s", res.Type)
	}
}

func TestChunkOverflowRejected(t *testing.T) {
	_, fs, _ := startWorker(t, Config{})
	fs.welcome(1)
	fs.send(&protocol.Message{
		Type: protocol.TypeAssign, JobID: 5, Partition: 0,
		Task: "primecount", Input: []byte("123"), TotalLen: 5,
	})
	fs.send(&protocol.Message{
		Type: protocol.TypeAssignChunk, JobID: 5, Partition: 0,
		Input: []byte("4567890"), // 3 + 7 > 5
	})
	res := fs.recv()
	if res.Type != protocol.TypeFailure {
		t.Errorf("overflowing chunk got %s", res.Type)
	}
}
