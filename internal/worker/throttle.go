package worker

import (
	"context"
	"sync"
	"time"

	"cwc/internal/battery"
	"cwc/internal/device"
	"cwc/internal/tasks"
)

// Charging emulates the phone's battery while the worker runs and applies
// the paper's MIMD duty-cycle throttler to task execution: the task is
// periodically paused (through the tasks.Pacer hook) so computing does
// not delay the battery's charge (§4.3).
type Charging struct {
	// Battery is the device's charging characteristics.
	Battery device.Battery
	// StartPercent is the initial charge level (default 0).
	StartPercent float64
	// TimeScale accelerates battery time relative to wall time: 60 means
	// one wall second charges like one battery minute. Tests use large
	// scales so a "full night" of charging passes in milliseconds.
	// Default 1 (real time).
	TimeScale float64
}

// throttleRunner steps a battery plant in (scaled) wall time and gates
// task execution through the MIMD controller. It implements tasks.Pacer.
type throttleRunner struct {
	plant     *battery.Plant
	throttler *battery.Throttler
	scale     float64

	mu      sync.Mutex
	lastNow time.Time
	simNow  float64 // battery-time seconds since start
	running bool    // current duty-cycle phase

	pauses int // Pause calls that actually slept

	// onPause, when set, is invoked (outside r.mu) after each counted
	// pause — the worker's telemetry hook.
	onPause func()
}

// newThrottleRunner builds the runtime throttler.
func newThrottleRunner(cfg *Charging) *throttleRunner {
	scale := cfg.TimeScale
	if scale <= 0 {
		scale = 1
	}
	plant := battery.NewPlant(cfg.Battery)
	plant.SetPercent(cfg.StartPercent)
	return &throttleRunner{
		plant:     plant,
		throttler: battery.NewThrottler(),
		scale:     scale,
		lastNow:   time.Now(),
	}
}

// advance steps the plant and controller up to the present wall time.
// It returns whether the task may currently run.
func (r *throttleRunner) advance() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	elapsed := now.Sub(r.lastNow).Seconds() * r.scale
	r.lastNow = now
	// Step in bounded slices so the controller sees percent ticks.
	const maxStep = 0.5 // battery seconds
	for elapsed > 0 {
		dt := elapsed
		if dt > maxStep {
			dt = maxStep
		}
		elapsed -= dt
		util := r.throttler.Util(r.simNow, r.plant.ReportedPercent())
		r.plant.Step(dt, util)
		r.throttler.Tick(dt, util)
		r.simNow += dt
		r.running = util > 0
	}
	if r.plant.Full() {
		// Fully charged: energy goes straight to the CPU, no throttling
		// needed (paper: "if the tasks are only scheduled after the phone
		// is fully charged, there is no penalty").
		r.running = true
	}
	return r.running
}

// Pause implements tasks.Pacer: it blocks while the duty cycle is in a
// sleep phase, polling the plant at a small wall interval.
func (r *throttleRunner) Pause(ctx context.Context) {
	slept := false
	for !r.advance() {
		if ctx.Err() != nil {
			return
		}
		slept = true
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Millisecond):
		}
	}
	if slept {
		r.mu.Lock()
		r.pauses++
		hook := r.onPause
		r.mu.Unlock()
		if hook != nil {
			hook()
		}
	}
}

// Pauses reports how many times execution was actually held back.
func (r *throttleRunner) Pauses() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pauses
}

// Percent exposes the emulated battery level, advancing the plant to the
// present first so an idle phone still charges in wall time.
func (r *throttleRunner) Percent() float64 {
	r.advance()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.plant.Percent()
}

var _ tasks.Pacer = (*throttleRunner)(nil)
