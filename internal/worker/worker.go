// Package worker implements the phone-side CWC runtime: the software the
// prototype installs on each Android phone. It maintains a persistent TCP
// connection to the central server, registers the phone's capabilities,
// answers bandwidth probes and keepalives, and executes whatever task
// executables the server assigns — the automated-execution property of
// §4.2 (no human in the loop).
//
// A worker emulates the paper's failure modes on demand: Unplug() is the
// online failure (the running task checkpoints and the failure report with
// migration state reaches the server before the phone leaves); Vanish()
// is the offline failure (the connection just dies and the server must
// notice via missed keepalives).
package worker

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"cwc/internal/protocol"
	"cwc/internal/tasks"
)

// Config describes the phone this worker emulates.
type Config struct {
	ServerAddr string
	Model      string
	CPUMHz     float64
	RAMMB      int
	// DelayPerKB emulates a slower CPU by sleeping this long per KB of
	// input before real processing; zero for full speed. The sleep is
	// interruptible so unplugging still checkpoints promptly.
	DelayPerKB time.Duration
	// Dial overrides the transport (tests and in-process clusters);
	// defaults to TCP to ServerAddr.
	Dial func(ctx context.Context) (net.Conn, error)
	// Charging, when set, emulates the phone's battery and throttles
	// task execution with the MIMD duty-cycle controller so computing
	// does not delay the charge (§4.3).
	Charging *Charging
	// AuthToken is presented to the server at registration when the
	// deployment uses a shared enrolment secret.
	AuthToken string
}

// Phone is a running worker.
type Phone struct {
	cfg Config

	mu       sync.Mutex
	conn     *protocol.Conn
	id       int
	unplug   context.CancelFunc // cancels the in-flight task
	leaving  bool               // Unplug called: report failure then close
	vanished bool               // Vanish called: die silently

	registered chan struct{} // closed once Welcome arrives
	regOnce    sync.Once

	throttle *throttleRunner // nil unless cfg.Charging is set
}

// New creates a worker; call Run to connect and serve.
func New(cfg Config) (*Phone, error) {
	if cfg.CPUMHz <= 0 {
		return nil, fmt.Errorf("worker: non-positive CPU clock %v", cfg.CPUMHz)
	}
	if cfg.Dial == nil && cfg.ServerAddr == "" {
		return nil, errors.New("worker: no server address and no dialer")
	}
	p := &Phone{cfg: cfg, registered: make(chan struct{})}
	if cfg.Charging != nil {
		p.throttle = newThrottleRunner(cfg.Charging)
	}
	return p, nil
}

// BatteryPercent returns the emulated battery level, or -1 when charging
// emulation is off.
func (p *Phone) BatteryPercent() float64 {
	if p.throttle == nil {
		return -1
	}
	return p.throttle.Percent()
}

// ThrottlePauses reports how many times the MIMD controller held task
// execution back (0 when charging emulation is off).
func (p *Phone) ThrottlePauses() int {
	if p.throttle == nil {
		return 0
	}
	return p.throttle.Pauses()
}

// ID returns the server-assigned phone ID (valid after WaitRegistered).
func (p *Phone) ID() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.id
}

// WaitRegistered blocks until the server has welcomed this phone.
func (p *Phone) WaitRegistered(ctx context.Context) error {
	select {
	case <-p.registered:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("worker: registration: %w", ctx.Err())
	}
}

// Run connects, registers and serves assignments until the context is
// canceled, the server says goodbye, or the phone is unplugged. A nil
// error means an orderly exit.
func (p *Phone) Run(ctx context.Context) error {
	dial := p.cfg.Dial
	if dial == nil {
		dial = func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", p.cfg.ServerAddr)
		}
	}
	raw, err := dial(ctx)
	if err != nil {
		return fmt.Errorf("worker: dialing server: %w", err)
	}
	conn := protocol.NewConn(raw)
	p.mu.Lock()
	p.conn = conn
	p.mu.Unlock()
	defer conn.Close()

	// Assignments execute strictly serially — a phone runs one task at a
	// time (the server also dispatches that way; this guards against a
	// misbehaving server). The executor drains the queue while the read
	// loop keeps answering keepalives.
	assignQ := make(chan *protocol.Message, 16)
	defer close(assignQ)
	go func() {
		for m := range assignQ {
			p.execute(ctx, conn, m)
		}
	}()
	// In-progress chunked transfers, keyed by (job, partition).
	type partKey struct{ job, part int }
	assembling := map[partKey]*protocol.Message{}
	enqueue := func(m *protocol.Message) {
		select {
		case assignQ <- m:
		default:
			// Queue overflow: a runaway server; refuse the work rather
			// than buffer unboundedly.
			_ = conn.Send(&protocol.Message{
				Type: protocol.TypeFailure, JobID: m.JobID,
				Partition: m.Partition, Error: "worker assignment queue full",
			})
		}
	}

	// Kill the connection when the context dies so Recv unblocks.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()

	if err := conn.Send(&protocol.Message{
		Type:   protocol.TypeHello,
		Token:  p.cfg.AuthToken,
		Model:  p.cfg.Model,
		CPUMHz: p.cfg.CPUMHz,
		RAMMB:  p.cfg.RAMMB,
	}); err != nil {
		return err
	}

	for {
		m, err := conn.Recv()
		if err != nil {
			p.mu.Lock()
			leaving, vanished := p.leaving, p.vanished
			p.mu.Unlock()
			if ctx.Err() != nil || leaving || vanished || errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		switch m.Type {
		case protocol.TypeWelcome:
			p.mu.Lock()
			p.id = m.PhoneID
			p.mu.Unlock()
			p.regOnce.Do(func() { close(p.registered) })
		case protocol.TypePing:
			if err := conn.Send(&protocol.Message{Type: protocol.TypePong, Seq: m.Seq}); err != nil {
				return err
			}
		case protocol.TypeProbe:
			if err := conn.Send(&protocol.Message{Type: protocol.TypeProbeAck, Seq: m.Seq}); err != nil {
				return err
			}
		case protocol.TypeAssign:
			if m.TotalLen > int64(len(m.Input)) {
				// First frame of a chunked transfer.
				buf := make([]byte, 0, m.TotalLen)
				m.Input = append(buf, m.Input...)
				assembling[partKey{m.JobID, m.Partition}] = m
				continue
			}
			enqueue(m)
		case protocol.TypeAssignChunk:
			key := partKey{m.JobID, m.Partition}
			pend, ok := assembling[key]
			if !ok {
				_ = conn.Send(&protocol.Message{
					Type: protocol.TypeFailure, JobID: m.JobID,
					Partition: m.Partition, Error: "unexpected assignment chunk",
				})
				continue
			}
			pend.Input = append(pend.Input, m.Input...)
			if int64(len(pend.Input)) > pend.TotalLen {
				delete(assembling, key)
				_ = conn.Send(&protocol.Message{
					Type: protocol.TypeFailure, JobID: m.JobID,
					Partition: m.Partition, Error: "assignment chunk overflow",
				})
				continue
			}
			if int64(len(pend.Input)) == pend.TotalLen {
				delete(assembling, key)
				enqueue(pend)
			}
		case protocol.TypeBye:
			return nil
		default:
			// Unknown frames are ignored for forward compatibility.
		}
	}
}

// execute runs one assigned partition and reports the outcome.
func (p *Phone) execute(ctx context.Context, conn *protocol.Conn, m *protocol.Message) {
	taskCtx, cancel := context.WithCancel(ctx)
	p.mu.Lock()
	p.unplug = cancel
	p.mu.Unlock()
	defer func() {
		cancel()
		p.mu.Lock()
		p.unplug = nil
		p.mu.Unlock()
	}()

	fail := func(ck *tasks.Checkpoint, msg string) {
		_ = conn.Send(&protocol.Message{
			Type:       protocol.TypeFailure,
			JobID:      m.JobID,
			Partition:  m.Partition,
			Checkpoint: ck,
			Error:      msg,
		})
		p.maybeLeave(conn)
	}

	task, err := tasks.New(m.Task, m.Params)
	if err != nil {
		fail(nil, fmt.Sprintf("instantiating executable: %v", err))
		return
	}
	ck := &tasks.Checkpoint{}
	if m.Resume != nil {
		*ck = *m.Resume
	}

	// Emulated CPU slowness: pay the remaining input's worth of delay.
	if p.cfg.DelayPerKB > 0 {
		remainingKB := float64(int64(len(m.Input))-ck.Offset) / 1024
		if remainingKB > 0 {
			t := time.NewTimer(time.Duration(remainingKB * float64(p.cfg.DelayPerKB)))
			select {
			case <-t.C:
			case <-taskCtx.Done():
				t.Stop()
				fail(ck, "unplugged")
				return
			}
		}
	}

	execCtx := taskCtx
	if p.throttle != nil {
		execCtx = tasks.WithPacer(taskCtx, p.throttle)
	}
	start := time.Now()
	result, err := task.Process(execCtx, m.Input, ck)
	elapsed := time.Since(start)
	switch {
	case err == nil:
		_ = conn.Send(&protocol.Message{
			Type:        protocol.TypeResult,
			JobID:       m.JobID,
			Partition:   m.Partition,
			Result:      result,
			ExecMs:      float64(elapsed) / float64(time.Millisecond),
			ProcessedKB: float64(len(m.Input)) / 1024,
		})
		p.maybeLeave(conn)
	case errors.Is(err, tasks.ErrInterrupted):
		fail(ck, "unplugged")
	default:
		fail(nil, err.Error())
	}
}

// maybeLeave closes the connection after the pending report when the
// phone was unplugged mid-task.
func (p *Phone) maybeLeave(conn *protocol.Conn) {
	p.mu.Lock()
	leaving := p.leaving
	p.mu.Unlock()
	if leaving {
		conn.Close()
	}
}

// Unplug emulates the user detaching the charger: the online failure. Any
// in-flight task is interrupted, its checkpoint reported, and the phone
// leaves the pool. An idle phone says goodbye immediately.
func (p *Phone) Unplug() {
	p.mu.Lock()
	p.leaving = true
	cancel := p.unplug
	conn := p.conn
	p.mu.Unlock()
	if cancel != nil {
		cancel() // execute() will report the failure and close
		return
	}
	if conn != nil {
		_ = conn.Send(&protocol.Message{Type: protocol.TypeBye})
		conn.Close()
	}
}

// Vanish emulates the offline failure: the connection dies with no report
// (wireless driver crash). The server must detect it via keepalives.
func (p *Phone) Vanish() {
	p.mu.Lock()
	p.vanished = true
	conn := p.conn
	cancel := p.unplug
	p.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	if cancel != nil {
		cancel()
	}
}

// Replug resets an unplugged or vanished phone so Run can be called again
// — the paper's phones re-entering the pool "after a short period of
// unavailability (e.g., the user plugs her phone to the charger after a
// few minutes)". The server sees a fresh registration (new phone ID).
func (p *Phone) Replug() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.leaving = false
	p.vanished = false
	p.conn = nil
	p.id = 0
}
