// Package worker implements the phone-side CWC runtime: the software the
// prototype installs on each Android phone. It maintains a persistent TCP
// connection to the central server, registers the phone's capabilities,
// answers bandwidth probes and keepalives, and executes whatever task
// executables the server assigns — the automated-execution property of
// §4.2 (no human in the loop).
//
// A worker emulates the paper's failure modes on demand: Unplug() is the
// online failure (the running task checkpoints and the failure report with
// migration state reaches the server before the phone leaves); Vanish()
// is the offline failure (the connection just dies and the server must
// notice via missed keepalives).
package worker

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"cwc/internal/obs"
	"cwc/internal/protocol"
	"cwc/internal/tasks"
)

// Config describes the phone this worker emulates.
type Config struct {
	// ServerAddr is the master's address, or a comma-separated failover
	// list ("primary:9128,standby:9128"): the worker dials the addresses
	// in order, rotating to the next on every failed attempt, so a fleet
	// survives a master failover without reconfiguration.
	ServerAddr string
	Model      string
	CPUMHz     float64
	RAMMB      int
	// DelayPerKB emulates a slower CPU by sleeping this long per KB of
	// input before real processing; zero for full speed. The sleep is
	// interruptible so unplugging still checkpoints promptly.
	DelayPerKB time.Duration
	// Dial overrides the transport (tests and in-process clusters);
	// defaults to TCP to ServerAddr.
	Dial func(ctx context.Context) (net.Conn, error)
	// Charging, when set, emulates the phone's battery and throttles
	// task execution with the MIMD duty-cycle controller so computing
	// does not delay the charge (§4.3).
	Charging *Charging
	// AuthToken is presented to the server at registration when the
	// deployment uses a shared enrolment secret.
	AuthToken string
	// CheckpointEveryKB and CheckpointEvery tune checkpoint streaming:
	// while executing, the worker serializes its checkpoint after this
	// many KB of input processed and/or this much wall time, and streams
	// it to the master so even a silent death loses at most one interval
	// of work. Zero adopts the server-announced policy from the welcome;
	// a negative value disables that trigger regardless of the server.
	CheckpointEveryKB int
	CheckpointEvery   time.Duration
	// Reconnect tunes how the phone retries the server after a dial or
	// I/O failure. Zero values get defaults; see ReconnectPolicy.
	Reconnect ReconnectPolicy
	// Byzantine makes this worker deliberately misbehave — lie, slack, or
	// corrupt its reports — for result-integrity testing. The zero value
	// is an honest worker.
	Byzantine Byzantine
	// Metrics, when set, is this worker's own obs registry: every minted
	// telemetry span event is counted into cwc_worker_events_total{kind}
	// regardless of whether the master asked for telemetry. Nil skips
	// the counting entirely.
	Metrics *obs.Registry
	// Blackbox, when set, shadows every minted span event into the
	// worker's black-box flight recorder (dumped by the daemon on panic
	// or SIGQUIT). Independent of the master's telemetry opt-in.
	Blackbox *obs.Blackbox
}

// Byzantine configures deliberate worker misbehaviour, the adversary the
// result-integrity layer (digests, replicated voting, audits,
// reputation quarantine) exists to defeat. All decisions are drawn from
// a seeded source, so a byzantine fleet misbehaves reproducibly.
type Byzantine struct {
	// LiarProb is the per-result probability that a correctly computed
	// result is replaced with a wrong-but-well-formed value *before* the
	// digest is computed: the frame is internally consistent and only
	// replicated voting or an audit can catch it.
	LiarProb float64
	// LazyProb is the per-assignment probability that the worker skips
	// execution entirely and fabricates a result without reading the
	// input — the freeloader that banks reputation while doing no work.
	LazyProb float64
	// CorruptProb is the per-result probability that one byte of the
	// result is flipped *after* the digest is computed: the claimed
	// digest no longer matches the payload, so the master can catch it
	// from the single frame (flaky flash, not an adversary).
	CorruptProb float64
	// Seed drives the misbehaviour decisions; zero derives one from the
	// phone's CPU clock so distinct phones still diverge.
	Seed int64
}

// zero reports whether the spec configures no misbehaviour.
func (b Byzantine) zero() bool {
	return b.LiarProb == 0 && b.LazyProb == 0 && b.CorruptProb == 0
}

// ReconnectPolicy is capped exponential backoff with jitter for the
// worker's connection to the master. A phone on a flaky charger-side WiFi
// link must rejoin on its own rather than die on the first I/O error.
type ReconnectPolicy struct {
	// Disabled turns reconnection off: Run returns on the first failure
	// (the pre-reconnect behavior, still used by single-shot tests).
	Disabled bool
	// BaseDelay is the first retry delay (default 100 ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 5 s).
	MaxDelay time.Duration
	// Multiplier grows the delay per consecutive failure (default 2).
	Multiplier float64
	// JitterFrac spreads each delay uniformly over ±frac (default 0.2) so
	// a fleet disconnected by one event does not redial in lockstep.
	JitterFrac float64
	// MaxAttempts bounds consecutive failed connection attempts before
	// Run gives up (default 10; negative means retry forever). The
	// counter resets whenever a connection reaches registration.
	MaxAttempts int
	// HandshakeTimeout bounds how long a fresh connection may wait for
	// the server's welcome (default 10 s). Without it a hello mangled in
	// transit wedges the worker forever: the server is waiting for bytes
	// that never come and the worker is waiting for a welcome that never
	// comes. On expiry the attempt counts as a connection failure and is
	// retried with backoff.
	HandshakeTimeout time.Duration
	// Seed drives the jitter; zero uses an unseeded source.
	Seed int64
}

func (r ReconnectPolicy) fill() ReconnectPolicy {
	if r.BaseDelay == 0 {
		r.BaseDelay = 100 * time.Millisecond
	}
	if r.MaxDelay == 0 {
		r.MaxDelay = 5 * time.Second
	}
	if r.Multiplier == 0 {
		r.Multiplier = 2
	}
	if r.JitterFrac == 0 {
		r.JitterFrac = 0.2
	}
	if r.MaxAttempts == 0 {
		r.MaxAttempts = 10
	}
	if r.HandshakeTimeout == 0 {
		r.HandshakeTimeout = 10 * time.Second
	}
	return r
}

// delay computes the backoff before the attempt-th consecutive retry
// (attempt counts from 1).
func (r ReconnectPolicy) delay(attempt int, rng *rand.Rand) time.Duration {
	d := float64(r.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= r.Multiplier
		if d >= float64(r.MaxDelay) {
			d = float64(r.MaxDelay)
			break
		}
	}
	d *= 1 + r.JitterFrac*(2*rng.Float64()-1)
	return time.Duration(d)
}

// maxUnsent bounds the buffer of reports awaiting a reconnect; beyond it
// the oldest information is simply lost (the server re-queues the work).
const maxUnsent = 32

// Phone is a running worker.
type Phone struct {
	cfg Config

	mu             sync.Mutex
	conn           *protocol.Conn         // guarded by mu
	id             int                    // guarded by mu
	everRegistered bool                   // guarded by mu; a Welcome was received at least once
	unplug         context.CancelFunc     // guarded by mu; cancels the in-flight task
	leaving        bool                   // guarded by mu; Unplug called: report failure then close
	vanished       bool                   // guarded by mu; Vanish called: die silently
	draining       bool                   // guarded by mu; server drain: interrupt reports "drained", stay connected
	sink           *tasks.CheckpointSink  // guarded by mu; streaming sink of the in-flight execution
	unsent         []*protocol.Message    // guarded by mu
	ckptKB         int                    // guarded by mu; server-announced checkpoint-streaming policy
	ckptMs         int                    // guarded by mu
	ckptUnacked    int                    // guarded by mu; streamed checkpoints awaiting a checkpoint_ack
	epoch          int64                  // guarded by mu; master regime from the last welcome (0 = untracked)
	telemetry      bool                   // guarded by mu; the last welcome asked for worker telemetry
	telEvents      []protocol.WorkerEvent // guarded by mu; span events awaiting a shipping opportunity
	telDropped     int64                  // guarded by mu; cumulative events dropped to the buffer bound

	registered chan struct{} // closed once Welcome arrives
	regOnce    sync.Once

	throttle *throttleRunner // nil unless cfg.Charging is set

	// byzRng drives Byzantine misbehaviour decisions. It is touched only
	// by the single executor goroutine, so it needs no lock.
	byzRng *rand.Rand

	// Cumulative self-metering, snapshotted onto outgoing pong/result
	// frames so the master aggregates fleet-wide metrics without extra
	// connections.
	statExecMs      float64 // guarded by mu
	statTransferKB  float64 // guarded by mu
	statReconnects  int     // guarded by mu
	statCkptFrames  int     // guarded by mu
	statCkptKB      float64 // guarded by mu
	statAssignments int     // guarded by mu
}

// addTransfer meters received assignment input bytes.
func (p *Phone) addTransfer(n int) {
	p.mu.Lock()
	p.statTransferKB += float64(n) / 1024
	p.mu.Unlock()
}

// statsSnapshot builds the piggyback stats frame field.
func (p *Phone) statsSnapshot() *protocol.WorkerStats {
	p.mu.Lock()
	s := &protocol.WorkerStats{
		ExecMs:      p.statExecMs,
		TransferKB:  p.statTransferKB,
		Reconnects:  p.statReconnects,
		CkptFrames:  p.statCkptFrames,
		CkptKB:      p.statCkptKB,
		Assignments: p.statAssignments,
	}
	p.mu.Unlock()
	if p.throttle != nil {
		s.ThrottlePauses = p.throttle.Pauses()
	}
	return s
}

// Stats returns the worker's cumulative self-metering (what the last
// piggybacked frame would carry).
func (p *Phone) Stats() protocol.WorkerStats { return *p.statsSnapshot() }

// New creates a worker; call Run to connect and serve.
func New(cfg Config) (*Phone, error) {
	if cfg.CPUMHz <= 0 {
		return nil, fmt.Errorf("worker: non-positive CPU clock %v", cfg.CPUMHz)
	}
	if cfg.Dial == nil && cfg.ServerAddr == "" {
		return nil, errors.New("worker: no server address and no dialer")
	}
	p := &Phone{cfg: cfg, registered: make(chan struct{})}
	if cfg.Charging != nil {
		p.throttle = newThrottleRunner(cfg.Charging)
		p.throttle.onPause = func() {
			p.event(protocol.EventThrottlePause, "", 0, 0, 0, 0, "")
		}
	}
	if !cfg.Byzantine.zero() {
		seed := cfg.Byzantine.Seed
		if seed == 0 {
			seed = int64(cfg.CPUMHz*1000) + 41
		}
		p.byzRng = rand.New(rand.NewSource(seed))
	}
	return p, nil
}

// BatteryPercent returns the emulated battery level, or -1 when charging
// emulation is off.
func (p *Phone) BatteryPercent() float64 {
	if p.throttle == nil {
		return -1
	}
	return p.throttle.Percent()
}

// ThrottlePauses reports how many times the MIMD controller held task
// execution back (0 when charging emulation is off).
func (p *Phone) ThrottlePauses() int {
	if p.throttle == nil {
		return 0
	}
	return p.throttle.Pauses()
}

// ID returns the server-assigned phone ID (valid after WaitRegistered).
func (p *Phone) ID() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.id
}

// WaitRegistered blocks until the server has welcomed this phone.
func (p *Phone) WaitRegistered(ctx context.Context) error {
	select {
	case <-p.registered:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("worker: registration: %w", ctx.Err())
	}
}

// Run connects, registers and serves assignments until the context is
// canceled, the server says goodbye, or the phone is unplugged. A nil
// error means an orderly exit. Unless reconnection is disabled, a dial or
// I/O failure is retried with capped exponential backoff + jitter; after
// a successful registration the phone rejoins under its prior identity
// and replays any reports the dead connection swallowed.
func (p *Phone) Run(ctx context.Context) error {
	pol := p.cfg.Reconnect.fill()
	src := rand.NewSource(pol.Seed)
	if pol.Seed == 0 {
		src = rand.NewSource(int64(p.cfg.CPUMHz*1000) + 17)
	}
	rng := rand.New(src)

	dial := p.cfg.Dial
	rotate := func() {}
	if dial == nil {
		// Failover dialing: ServerAddr may list several masters; each
		// failed attempt rotates to the next address, so a worker cut off
		// from a dead primary finds the promoted standby on its own,
		// paced by the same backoff as any reconnect. The rotation starts
		// at a per-worker random offset so a large fleet spreads its
		// first attempts across the list instead of synchronously
		// hammering the first (possibly dead) address after a primary
		// kill; a standby's pre-bound takeover listener fast-refuses
		// pre-promotion dialers, so landing there first costs one
		// rotation, not a timeout.
		addrs := splitAddrs(p.cfg.ServerAddr)
		addrIdx := rng.Intn(len(addrs))
		dial = func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addrs[addrIdx%len(addrs)])
		}
		rotate = func() { addrIdx++ }
	}

	// Assignments execute strictly serially — a phone runs one task at a
	// time (the server also dispatches that way; this guards against a
	// misbehaving server). The executor outlives individual connections so
	// a task running through a disconnect still finishes and its result is
	// replayed after the rejoin.
	assignQ := make(chan *protocol.Message, 16)
	defer close(assignQ)
	go func() {
		for m := range assignQ {
			p.execute(ctx, m)
		}
	}()

	failures := 0
	for {
		registered, err := p.runConn(ctx, dial, assignQ, pol.HandshakeTimeout)
		if err == nil {
			return nil // orderly exit: bye, unplug, vanish, or context end
		}
		p.mu.Lock()
		leaving, vanished, ever := p.leaving, p.vanished, p.everRegistered
		p.mu.Unlock()
		if leaving || vanished {
			return nil
		}
		if ctx.Err() != nil {
			// Cancellation after a successful registration is an orderly
			// exit; before one, the connection failure is the real story.
			if ever {
				return nil
			}
			return err
		}
		if pol.Disabled {
			return err
		}
		if registered {
			failures = 0
		}
		failures++
		rotate() // next attempt tries the next address in the failover list
		if pol.MaxAttempts >= 0 && failures > pol.MaxAttempts {
			return fmt.Errorf("worker: giving up after %d consecutive connection failures: %w",
				failures-1, err)
		}
		select {
		case <-time.After(pol.delay(failures, rng)):
		case <-ctx.Done():
			if ever {
				return nil
			}
			return err
		}
	}
}

// splitAddrs parses a comma-separated failover address list; it always
// returns at least one entry (an empty ServerAddr is rejected by New
// unless a custom dialer is supplied).
func splitAddrs(s string) []string {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		addrs = []string{s}
	}
	return addrs
}

// currentEpoch reads the master regime this worker last registered with;
// report frames are stamped at creation time, so a report built under an
// old regime keeps the old epoch and is fenced after a failover instead
// of being mis-accepted by the new master.
func (p *Phone) currentEpoch() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// runConn serves one connection to the master: dial, hello (a rejoin
// hello when the phone held an identity before), then the frame loop.
// registered reports whether a Welcome arrived on this connection.
func (p *Phone) runConn(ctx context.Context, dial func(ctx context.Context) (net.Conn, error), assignQ chan *protocol.Message, handshake time.Duration) (registered bool, err error) {
	raw, err := dial(ctx)
	if err != nil {
		p.event(protocol.EventDial, "", 0, 0, 0, 0, "fail: "+err.Error())
		return false, fmt.Errorf("worker: dialing server: %w", err)
	}
	p.event(protocol.EventDial, "", 0, 0, 0, 0, "ok")
	conn := protocol.NewConn(raw)
	p.mu.Lock()
	p.conn = conn
	rejoin := p.everRegistered
	priorID := p.id
	p.mu.Unlock()
	defer func() {
		conn.Close()
		p.mu.Lock()
		if p.conn == conn {
			p.conn = nil
		}
		p.mu.Unlock()
	}()

	// Kill the connection when the context dies so Recv unblocks.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()

	hello := &protocol.Message{
		Type:   protocol.TypeHello,
		Token:  p.cfg.AuthToken,
		Model:  p.cfg.Model,
		CPUMHz: p.cfg.CPUMHz,
		RAMMB:  p.cfg.RAMMB,
	}
	if rejoin {
		hello.Rejoin = true
		hello.PhoneID = priorID
	}
	if err := conn.Send(hello); err != nil {
		return false, err
	}
	if handshake > 0 {
		// The welcome must arrive within the handshake window; the
		// deadline is lifted once registration completes.
		_ = conn.SetReadDeadline(time.Now().Add(handshake))
	}

	// In-progress chunked transfers, keyed by (job, partition). They die
	// with the connection: the server re-dispatches lost partitions.
	type partKey struct{ job, part int }
	assembling := map[partKey]*protocol.Message{}
	enqueue := func(m *protocol.Message) {
		select {
		case assignQ <- m:
			p.mu.Lock()
			p.statAssignments++
			p.mu.Unlock()
			p.event(protocol.EventAssignRecv, m.Span, m.JobID, m.Partition,
				int64(len(m.Input)), 0, "")
		default:
			// Queue overflow: a runaway server; refuse the work rather
			// than buffer unboundedly.
			_ = conn.Send(&protocol.Message{
				Type: protocol.TypeFailure, JobID: m.JobID,
				Partition: m.Partition, Attempt: m.Attempt,
				Epoch: p.currentEpoch(),
				Error: "worker assignment queue full",
			})
		}
	}

	for {
		m, err := conn.Recv()
		if err != nil {
			p.mu.Lock()
			leaving, vanished := p.leaving, p.vanished
			p.mu.Unlock()
			if ctx.Err() != nil || leaving || vanished {
				return registered, nil
			}
			return registered, err
		}
		switch m.Type {
		case protocol.TypeWelcome:
			_ = conn.SetReadDeadline(time.Time{})
			p.mu.Lock()
			if m.Epoch != 0 && p.epoch != 0 && m.Epoch < p.epoch {
				// A master announcing an older epoch is a resurrected
				// primary that lost a failover; refuse it and let the
				// failover rotation find the current regime.
				old := p.epoch
				p.mu.Unlock()
				return registered, fmt.Errorf("worker: welcome from superseded master (epoch %d < %d)", m.Epoch, old)
			}
			if m.Epoch != 0 {
				p.epoch = m.Epoch
			}
			p.id = m.PhoneID
			p.everRegistered = true
			p.ckptKB, p.ckptMs = m.CkptEveryKB, m.CkptEveryMs
			// Telemetry is master-driven: buffer span events only for a
			// master that will look at them. A master that stopped asking
			// (obs plane unbound) also stops the buffering, and whatever
			// was queued for the old regime is discarded with it.
			p.telemetry = m.Telemetry
			if !m.Telemetry {
				p.telEvents, p.telDropped = nil, 0
			}
			// Acks are per-connection; frames in flight on the old one
			// are gone either way.
			p.ckptUnacked = 0
			if rejoin {
				p.statReconnects++
			}
			p.mu.Unlock()
			registered = true
			p.regOnce.Do(func() { close(p.registered) })
			// Replay reports a dead connection swallowed; the server pairs
			// them with their dispatch attempts.
			p.flushUnsent(conn)
		case protocol.TypePing:
			// Pongs piggyback the worker's cumulative self-metering so the
			// master's metrics stay fresh even between reports.
			pong := &protocol.Message{
				Type: protocol.TypePong, Seq: m.Seq, Stats: p.statsSnapshot(),
			}
			if err := conn.Send(pong); err != nil {
				return registered, err
			}
			// Piggyback buffered span events on the keepalive cadence.
			p.shipTelemetry(conn)
		case protocol.TypeProbe:
			if err := conn.Send(&protocol.Message{Type: protocol.TypeProbeAck, Seq: m.Seq}); err != nil {
				return registered, err
			}
		case protocol.TypeAssign:
			p.addTransfer(len(m.Input))
			if m.TotalLen > int64(len(m.Input)) {
				// First frame of a chunked transfer.
				buf := make([]byte, 0, m.TotalLen)
				m.Input = append(buf, m.Input...)
				assembling[partKey{m.JobID, m.Partition}] = m
				continue
			}
			enqueue(m)
		case protocol.TypeAssignChunk:
			p.addTransfer(len(m.Input))
			key := partKey{m.JobID, m.Partition}
			pend, ok := assembling[key]
			if !ok {
				_ = conn.Send(&protocol.Message{
					Type: protocol.TypeFailure, JobID: m.JobID,
					Partition: m.Partition, Epoch: p.currentEpoch(),
					Error: "unexpected assignment chunk",
				})
				continue
			}
			pend.Input = append(pend.Input, m.Input...)
			if int64(len(pend.Input)) > pend.TotalLen {
				delete(assembling, key)
				_ = conn.Send(&protocol.Message{
					Type: protocol.TypeFailure, JobID: m.JobID,
					Partition: m.Partition, Epoch: p.currentEpoch(),
					Error: "assignment chunk overflow",
				})
				continue
			}
			if int64(len(pend.Input)) == pend.TotalLen {
				delete(assembling, key)
				enqueue(pend)
			}
		case protocol.TypeCheckpointAck:
			p.mu.Lock()
			if p.ckptUnacked > 0 {
				p.ckptUnacked--
			}
			p.mu.Unlock()
			p.event(protocol.EventCkptAck, m.Span, m.JobID, m.Partition, 0, 0, "")
		case protocol.TypeDrain:
			// Proactive drain: the server predicts this phone's charge
			// window is closing. Flush the freshest checkpoint and
			// interrupt the in-flight task so it reports a "drained"
			// failure (carrying the checkpoint) while the connection is
			// still healthy. An idle phone has nothing to hand back.
			p.mu.Lock()
			cancel := p.unplug
			sink := p.sink
			if cancel != nil {
				p.draining = true
			}
			p.mu.Unlock()
			if sink != nil {
				sink.Force()
			}
			if cancel != nil {
				cancel()
			}
		case protocol.TypeBye:
			return registered, nil
		default:
			// Unknown frames are ignored for forward compatibility.
		}
	}
}

// report delivers a result/failure frame on the current connection, or
// buffers it for replay after the next successful registration.
func (p *Phone) report(m *protocol.Message) {
	p.mu.Lock()
	conn := p.conn
	p.mu.Unlock()
	if conn != nil && conn.Send(m) == nil {
		// A delivered report is a shipping opportunity for buffered span
		// events (the exec_finish for this very report is among them).
		p.shipTelemetry(conn)
		return
	}
	p.mu.Lock()
	if len(p.unsent) < maxUnsent {
		p.unsent = append(p.unsent, m)
	}
	p.mu.Unlock()
}

// flushUnsent replays buffered reports on a fresh connection, keeping
// whatever a mid-flush failure leaves undelivered.
func (p *Phone) flushUnsent(conn *protocol.Conn) {
	p.mu.Lock()
	pending := p.unsent
	p.unsent = nil
	p.mu.Unlock()
	for i, m := range pending {
		if err := conn.Send(m); err != nil {
			p.mu.Lock()
			p.unsent = append(pending[i:], p.unsent...)
			p.mu.Unlock()
			return
		}
	}
}

// execute runs one assigned partition and reports the outcome. Reports go
// through the reconnect-aware path: if the connection died while the task
// ran, the report is buffered and replayed after the rejoin.
func (p *Phone) execute(ctx context.Context, m *protocol.Message) {
	taskCtx, cancel := context.WithCancel(ctx)
	sink := p.checkpointSink(m)
	p.mu.Lock()
	p.unplug = cancel
	p.sink = sink
	p.mu.Unlock()
	defer func() {
		cancel()
		p.mu.Lock()
		p.unplug = nil
		p.sink = nil
		p.mu.Unlock()
	}()

	fail := func(ck *tasks.Checkpoint, msg string) {
		p.report(&protocol.Message{
			Type:       protocol.TypeFailure,
			JobID:      m.JobID,
			Partition:  m.Partition,
			Attempt:    m.Attempt,
			Epoch:      p.currentEpoch(),
			Span:       m.Span,
			Checkpoint: ck,
			Error:      msg,
		})
		p.maybeLeave()
	}

	task, err := tasks.New(m.Task, m.Params)
	if err != nil {
		fail(nil, fmt.Sprintf("instantiating executable: %v", err))
		return
	}
	ck := m.Resume.Clone()
	if ck == nil {
		ck = &tasks.Checkpoint{}
	}
	p.event(protocol.EventExecStart, m.Span, m.JobID, m.Partition, int64(len(m.Input)), 0, m.Task)

	// finish mints the exec_finish span event and, for a proactive-drain
	// handback, the drain_handback edge the master's timeline pairs with
	// its own completeDrain.
	finish := func(elapsed time.Duration, outcome string) {
		p.event(protocol.EventExecFinish, m.Span, m.JobID, m.Partition,
			int64(len(m.Input)), float64(elapsed)/float64(time.Millisecond), outcome)
		if outcome == drainedReason {
			p.event(protocol.EventDrainHandback, m.Span, m.JobID, m.Partition, 0, 0, "")
		}
	}

	// Byzantine laziness: skip execution entirely and fabricate a
	// plausible result without reading the input.
	if p.byzRng != nil && p.cfg.Byzantine.LazyProb > 0 && p.byzRng.Float64() < p.cfg.Byzantine.LazyProb {
		payload, digest := p.mutateResult([]byte("0"))
		finish(0, "ok")
		p.report(&protocol.Message{
			Type:        protocol.TypeResult,
			JobID:       m.JobID,
			Partition:   m.Partition,
			Attempt:     m.Attempt,
			Epoch:       p.currentEpoch(),
			Span:        m.Span,
			Result:      payload,
			Digest:      digest,
			ProcessedKB: float64(len(m.Input)) / 1024,
			Stats:       p.statsSnapshot(),
		})
		p.maybeLeave()
		return
	}

	// Emulated CPU slowness: pay the remaining input's worth of delay.
	if p.cfg.DelayPerKB > 0 {
		remainingKB := float64(int64(len(m.Input))-ck.Offset) / 1024
		if remainingKB > 0 {
			t := time.NewTimer(time.Duration(remainingKB * float64(p.cfg.DelayPerKB)))
			select {
			case <-t.C:
			case <-taskCtx.Done():
				t.Stop()
				reason := p.interruptReason()
				finish(0, reason)
				fail(ck, reason)
				return
			}
		}
	}

	execCtx := taskCtx
	if p.throttle != nil {
		execCtx = tasks.WithPacer(taskCtx, p.throttle)
	}
	execCtx = tasks.WithCheckpointSink(execCtx, sink)
	start := time.Now()
	result, err := task.Process(execCtx, m.Input, ck)
	elapsed := time.Since(start)
	p.mu.Lock()
	p.statExecMs += float64(elapsed) / float64(time.Millisecond)
	p.mu.Unlock()
	switch {
	case err == nil:
		finish(elapsed, "ok")
		payload, digest := p.mutateResult(result)
		p.report(&protocol.Message{
			Type:        protocol.TypeResult,
			JobID:       m.JobID,
			Partition:   m.Partition,
			Attempt:     m.Attempt,
			Epoch:       p.currentEpoch(),
			Span:        m.Span,
			Result:      payload,
			Digest:      digest,
			ExecMs:      float64(elapsed) / float64(time.Millisecond),
			ProcessedKB: float64(len(m.Input)) / 1024,
			Stats:       p.statsSnapshot(),
		})
		p.maybeLeave()
	case errors.Is(err, tasks.ErrInterrupted):
		reason := p.interruptReason()
		finish(elapsed, reason)
		fail(ck, reason)
	default:
		finish(elapsed, "failed")
		fail(nil, err.Error())
	}
}

// mutateResult applies the worker's Byzantine misbehaviour to a
// computed result and returns the payload to ship plus its claimed
// digest. An honest worker returns the result untouched with its true
// digest. A lie is applied BEFORE the digest (the frame stays
// internally consistent — only voting or an audit can catch it);
// corruption is applied AFTER (the claimed digest no longer matches the
// payload, so the master catches it from the single frame).
func (p *Phone) mutateResult(result []byte) ([]byte, string) {
	b := p.cfg.Byzantine
	if p.byzRng != nil && b.LiarProb > 0 && p.byzRng.Float64() < b.LiarProb {
		// The offset is drawn per result from this phone's own rng so two
		// liars given the same partition (dis)agree like independent
		// adversaries — a deterministic lie would let them accidentally
		// collude and outvote the honest replica.
		result = lieAbout(result, byte(1+p.byzRng.Intn(9)))
	}
	digest := tasks.Digest(result)
	if p.byzRng != nil && b.CorruptProb > 0 && len(result) > 0 && p.byzRng.Float64() < b.CorruptProb {
		mangled := append([]byte(nil), result...)
		mangled[p.byzRng.Intn(len(mangled))] ^= 0xff
		result = mangled
	}
	return result, digest
}

// lieAbout produces a wrong-but-well-formed variant of a result: every
// ASCII digit is shifted by off (1..9) mod 10, so a counting task's
// decimal result stays parseable but wrong. A result with no digits
// gets a byte appended instead, so the lie is never a no-op.
func lieAbout(result []byte, off byte) []byte {
	out := append([]byte(nil), result...)
	changed := false
	for i, c := range out {
		if c >= '0' && c <= '9' {
			out[i] = '0' + (c-'0'+off)%10
			changed = true
		}
	}
	if !changed {
		out = append(out, '!'+off)
	}
	return out
}

// drainedReason is the failure-report error for a proactive-drain
// handback; the server's dispatch path matches it exactly.
const drainedReason = "drained"

// interruptReason resolves what an interrupted execution should report:
// "drained" when the server's proactive drain canceled the task (the
// connection stays up and the phone remains in the pool), "unplugged"
// when the user really detached the charger. A real unplug or vanish
// racing a drain wins: the phone is actually leaving.
func (p *Phone) interruptReason() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	drained := p.draining && !p.leaving && !p.vanished
	p.draining = false
	if drained {
		return drainedReason
	}
	return "unplugged"
}

// maxUnackedCkpts bounds streamed checkpoints in flight without a
// checkpoint_ack; past it flushes are dropped rather than letting a slow
// master back the link up (the next flush supersedes them anyway).
const maxUnackedCkpts = 4

// checkpointSink builds the streaming sink for one assignment, or nil
// when streaming is off. The worker's own config wins over the policy
// the server announced in the welcome; a negative config value disables
// its trigger. Streamed frames are best-effort: they go only to the live
// connection and are never buffered for replay — after a reconnect the
// range has been re-queued and an old checkpoint is worthless.
func (p *Phone) checkpointSink(m *protocol.Message) *tasks.CheckpointSink {
	p.mu.Lock()
	kb, every := p.ckptKB, time.Duration(p.ckptMs)*time.Millisecond
	p.mu.Unlock()
	if p.cfg.CheckpointEveryKB != 0 {
		kb = p.cfg.CheckpointEveryKB
	}
	if p.cfg.CheckpointEvery != 0 {
		every = p.cfg.CheckpointEvery
	}
	if kb < 0 {
		kb = 0
	}
	if every < 0 {
		every = 0
	}
	if kb == 0 && every == 0 {
		return nil
	}
	var seq uint64
	return &tasks.CheckpointSink{
		EveryBytes: int64(kb) * 1024,
		Every:      every,
		Flush: func(ck *tasks.Checkpoint) {
			p.mu.Lock()
			conn := p.conn
			if conn == nil || p.vanished || p.ckptUnacked >= maxUnackedCkpts {
				p.mu.Unlock()
				return
			}
			p.ckptUnacked++
			epoch := p.epoch
			p.mu.Unlock()
			seq++
			err := conn.Send(&protocol.Message{
				Type:       protocol.TypeCheckpoint,
				JobID:      m.JobID,
				Partition:  m.Partition,
				Attempt:    m.Attempt,
				Epoch:      epoch,
				Span:       m.Span,
				Seq:        seq,
				Checkpoint: ck,
				Digest:     ck.Digest(),
			})
			p.mu.Lock()
			if err != nil {
				if p.ckptUnacked > 0 {
					p.ckptUnacked--
				}
			} else {
				p.statCkptFrames++
				p.statCkptKB += float64(len(ck.State)+8) / 1024
			}
			p.mu.Unlock()
			if err == nil {
				p.event(protocol.EventCkptFlush, m.Span, m.JobID, m.Partition,
					int64(len(ck.State)), 0, "")
			}
		},
	}
}

// maybeLeave closes the connection after the pending report when the
// phone was unplugged mid-task.
func (p *Phone) maybeLeave() {
	p.mu.Lock()
	leaving := p.leaving
	conn := p.conn
	p.mu.Unlock()
	if leaving && conn != nil {
		conn.Close()
	}
}

// Unplug emulates the user detaching the charger: the online failure. Any
// in-flight task is interrupted, its checkpoint reported, and the phone
// leaves the pool. An idle phone says goodbye immediately.
func (p *Phone) Unplug() {
	p.mu.Lock()
	p.leaving = true
	cancel := p.unplug
	conn := p.conn
	p.mu.Unlock()
	if cancel != nil {
		cancel() // execute() will report the failure and close
		return
	}
	if conn != nil {
		_ = conn.Send(&protocol.Message{Type: protocol.TypeBye})
		conn.Close()
	}
}

// Vanish emulates the offline failure: the connection dies with no report
// (wireless driver crash). The server must detect it via keepalives.
func (p *Phone) Vanish() {
	p.mu.Lock()
	p.vanished = true
	conn := p.conn
	cancel := p.unplug
	p.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	if cancel != nil {
		cancel()
	}
}

// Replug resets an unplugged or vanished phone so Run can be called again
// — the paper's phones re-entering the pool "after a short period of
// unavailability (e.g., the user plugs her phone to the charger after a
// few minutes)". The server sees a fresh registration (new phone ID).
func (p *Phone) Replug() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.leaving = false
	p.vanished = false
	p.draining = false
	p.conn = nil
	p.id = 0
	p.everRegistered = false
	p.unsent = nil
}

// ReplugRejoin resets an unplugged or vanished phone like Replug but
// keeps its identity: the next Run sends a rejoin hello under the prior
// phone ID, so the server folds the new session into the same phone —
// its charge-window history, bandwidth estimates and buffered reports
// all survive. This is the flapping-replug shape of a churn storm: the
// same physical phone bouncing off and back onto the charger.
func (p *Phone) ReplugRejoin() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.leaving = false
	p.vanished = false
	p.draining = false
	p.conn = nil
}
