package worker

import (
	"context"
	"testing"
	"time"

	"cwc/internal/device"
	"cwc/internal/protocol"
)

func TestThrottleRunnerPausesExecution(t *testing.T) {
	// Huge time scale: the battery charges ~2400 battery-seconds per wall
	// second, so δ measurement (~60 battery-seconds) and several duty
	// cycles pass within the test.
	r := newThrottleRunner(&Charging{
		Battery:      device.HTCSensation.Battery,
		StartPercent: 10,
		TimeScale:    2400,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Drive the pacer like a task would for a while.
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		r.Pause(ctx)
	}
	if r.Pauses() == 0 {
		t.Error("throttler never paused execution (no sleep phases hit)")
	}
	if r.Percent() <= 10 {
		t.Errorf("battery did not charge: %.1f%%", r.Percent())
	}
}

func TestThrottleRunnerFullBatteryRunsFree(t *testing.T) {
	r := newThrottleRunner(&Charging{
		Battery:      device.HTCSensation.Battery,
		StartPercent: 100,
		TimeScale:    1000,
	})
	ctx := context.Background()
	time.Sleep(5 * time.Millisecond)
	start := time.Now()
	for i := 0; i < 100; i++ {
		r.Pause(ctx)
	}
	// A full battery never throttles (the paper: no penalty once fully
	// charged), so 100 Pause calls are nearly instantaneous.
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Errorf("full-battery pauses took %v", elapsed)
	}
	if r.Pauses() != 0 {
		t.Errorf("full battery recorded %d pauses", r.Pauses())
	}
}

func TestThrottleRunnerCanceledContext(t *testing.T) {
	r := newThrottleRunner(&Charging{
		Battery:      device.HTCSensation.Battery,
		StartPercent: 10,
		TimeScale:    2400,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			r.Pause(ctx)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Pause did not respect context cancellation")
	}
}

func TestWorkerWithChargingEmulationCompletesTasks(t *testing.T) {
	w, fs, _ := startWorker(t, Config{
		Charging: &Charging{
			Battery:      device.HTCSensation.Battery,
			StartPercent: 20,
			TimeScale:    2400,
		},
	})
	fs.welcome(1)
	// A large line-based input so the task crosses many pacer
	// checkpoints (every 256 lines).
	input := make([]byte, 0, 512*1024)
	for len(input) < 500*1024 {
		input = append(input, []byte("104729\n")...)
	}
	fs.send(&protocol.Message{Type: protocol.TypeAssign, JobID: 1,
		Task: "primecount", Input: input})
	res := fs.recv()
	if res.Type != protocol.TypeResult {
		t.Fatalf("got %s: %s", res.Type, res.Error)
	}
	if w.BatteryPercent() <= 20 {
		t.Errorf("battery at %.1f%%, should have charged during execution",
			w.BatteryPercent())
	}
	// The throttler should have held the task back at least once while
	// the battery was below full.
	if w.ThrottlePauses() == 0 {
		t.Error("task ran with no throttling pauses")
	}
}

func TestWorkerWithoutChargingReportsDefaults(t *testing.T) {
	w, err := New(Config{ServerAddr: "x", CPUMHz: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if w.BatteryPercent() != -1 {
		t.Errorf("BatteryPercent = %v without emulation", w.BatteryPercent())
	}
	if w.ThrottlePauses() != 0 {
		t.Errorf("ThrottlePauses = %d without emulation", w.ThrottlePauses())
	}
}

// The headline §4.3 property, live in the runtime: with throttling the
// battery charges essentially as fast as an idle phone, while the task
// still makes progress.
func TestWorkerThrottlingPreservesChargeRate(t *testing.T) {
	const scale = 3600 // one wall second = one battery hour
	run := func(withTask bool) (ratePctPerSec float64, taskDone bool) {
		w, fs, _ := startWorker(t, Config{
			Charging: &Charging{
				Battery:      device.HTCSensation.Battery,
				StartPercent: 30,
				TimeScale:    scale,
			},
		})
		fs.welcome(1)
		start := w.BatteryPercent()
		t0 := time.Now()
		if withTask {
			input := make([]byte, 0, 256*1024)
			for len(input) < 250*1024 {
				input = append(input, []byte("999983\n")...)
			}
			fs.send(&protocol.Message{Type: protocol.TypeAssign, JobID: 1,
				Task: "primecount", Input: input})
			res := fs.recv()
			taskDone = res.Type == protocol.TypeResult
		} else {
			time.Sleep(300 * time.Millisecond)
		}
		gain := w.BatteryPercent() - start
		return gain / time.Since(t0).Seconds(), taskDone
	}
	idleRate, _ := run(false)
	busyRate, done := run(true)
	if !done {
		t.Fatal("throttled task did not complete")
	}
	if idleRate <= 0 || busyRate <= 0 {
		t.Fatalf("rates: idle %.2f, busy %.2f %%/s", idleRate, busyRate)
	}
	// The throttled run charges at (nearly) the idle rate — the §4.3
	// property; without throttling it would charge ~26% slower. Allow
	// generous slack for wall-clock noise.
	if busyRate < idleRate*0.65 {
		t.Errorf("throttled charge rate %.2f %%/s fell badly behind idle %.2f %%/s",
			busyRate, idleRate)
	}
}
