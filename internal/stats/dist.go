package stats

import (
	"math"
	"math/rand"
)

// Dist is a one-dimensional random distribution sampled with an explicit
// random source, keeping every experiment reproducible from a seed.
type Dist interface {
	// Sample draws one value from the distribution using rng.
	Sample(rng *rand.Rand) float64
}

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample implements Dist.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.Lo + rng.Float64()*(u.Hi-u.Lo)
}

// Normal is the Gaussian distribution with the given mean and standard
// deviation.
type Normal struct {
	Mean, Sigma float64
}

// Sample implements Dist.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mean + rng.NormFloat64()*n.Sigma
}

// TruncNormal is a Gaussian clamped to [Lo, Hi]. Samples falling outside
// the interval are redrawn (up to a bounded number of attempts, then
// clamped) so the result is always within bounds.
type TruncNormal struct {
	Mean, Sigma float64
	Lo, Hi      float64
}

// Sample implements Dist.
func (t TruncNormal) Sample(rng *rand.Rand) float64 {
	for i := 0; i < 64; i++ {
		x := t.Mean + rng.NormFloat64()*t.Sigma
		if x >= t.Lo && x <= t.Hi {
			return x
		}
	}
	return math.Min(math.Max(t.Mean, t.Lo), t.Hi)
}

// LogNormal is the log-normal distribution: exp(N(Mu, Sigma)).
// Mu and Sigma are the parameters of the underlying normal in log space.
type LogNormal struct {
	Mu, Sigma float64
}

// Sample implements Dist.
func (l LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + rng.NormFloat64()*l.Sigma)
}

// LogNormalFromMedian constructs a LogNormal whose median is median and
// whose underlying normal has standard deviation sigma in log space.
func LogNormalFromMedian(median, sigma float64) LogNormal {
	return LogNormal{Mu: math.Log(median), Sigma: sigma}
}

// Exponential is the exponential distribution with the given mean.
type Exponential struct {
	Mean float64
}

// Sample implements Dist.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64() * e.Mean
}

// Constant always returns Value; useful to disable randomness in tests.
type Constant struct {
	Value float64
}

// Sample implements Dist.
func (c Constant) Sample(rng *rand.Rand) float64 { return c.Value }

// Bernoulli returns true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool {
	return rng.Float64() < p
}
