// Package stats provides the small statistical toolkit used throughout the
// CWC reproduction: summary statistics, empirical CDFs, percentile
// computation, hourly histograms and deterministic random distributions.
//
// Everything in this package is pure computation: no clocks, no I/O, no
// global state. All randomness is driven by an explicit *rand.Rand so that
// every experiment in the repository is reproducible from a seed.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n, not n-1).
// It returns 0 for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CoV returns the coefficient of variation (stddev/mean) of xs. It returns
// 0 when the mean is zero.
func CoV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Min returns the smallest value in xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks, matching the behaviour of numpy's
// default. It returns an error for an empty slice or out-of-range p.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// CDF is an empirical cumulative distribution function built from samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the given samples. The input slice is
// copied and may be reused by the caller.
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of samples backing the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of samples less than or equal to x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// sort.SearchFloat64s returns the first index with sorted[i] >= x; we
	// want the count of samples <= x, so search for the first index > x.
	n := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(n) / float64(len(c.sorted))
}

// Quantile returns the smallest sample x such that At(x) >= q, for
// q in (0, 1]. Quantile(0) returns the smallest sample.
func (c *CDF) Quantile(q float64) (float64, error) {
	if len(c.sorted) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of range [0,1]", q)
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c.sorted[idx], nil
}

// Points returns up to n evenly spaced (x, P(X<=x)) points suitable for
// plotting the CDF as a stepwise series. If the CDF has fewer than n
// samples, one point per sample is returned.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	pts := make([]Point, 0, n)
	for k := 1; k <= n; k++ {
		idx := k*len(c.sorted)/n - 1
		pts = append(pts, Point{
			X: c.sorted[idx],
			Y: float64(idx+1) / float64(len(c.sorted)),
		})
	}
	return pts
}

// Point is a single (x, y) sample of a plotted series.
type Point struct {
	X, Y float64
}

// HourHistogram counts events per hour of day (0..23). It is used to
// reproduce the paper's unplugged-likelihood-by-hour figures.
type HourHistogram struct {
	Counts [24]int
}

// Add records an event at the given hour of day. Hours outside [0,24) are
// wrapped modulo 24 so callers can pass raw offsets.
func (h *HourHistogram) Add(hour int) {
	hour %= 24
	if hour < 0 {
		hour += 24
	}
	h.Counts[hour]++
}

// Total returns the total number of recorded events.
func (h *HourHistogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Fractions returns the fraction of events per hour. All zeros when empty.
func (h *HourHistogram) Fractions() [24]float64 {
	var out [24]float64
	t := h.Total()
	if t == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(t)
	}
	return out
}

// CumulativeByHour returns the cumulative fraction of events that occurred
// at or before each hour, starting the day at startHour. This mirrors the
// paper's Figure 3(a): "the likelihood of failure between 12 AM and 8 AM is
// less than 30%" is CumulativeByHour(0)[7] < 0.30.
func (h *HourHistogram) CumulativeByHour(startHour int) [24]float64 {
	var out [24]float64
	t := h.Total()
	if t == 0 {
		return out
	}
	cum := 0
	for i := 0; i < 24; i++ {
		cum += h.Counts[(startHour+i)%24]
		out[i] = float64(cum) / float64(t)
	}
	return out
}
