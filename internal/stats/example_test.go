package stats_test

import (
	"fmt"

	"cwc/internal/stats"
)

// ExampleCDF builds an empirical CDF of task completion times and reads
// the median and the 90th percentile.
func ExampleCDF() {
	cdf := stats.NewCDF([]float64{120, 450, 300, 900, 150, 600, 210, 330, 480, 700})
	p50, _ := cdf.Quantile(0.5)
	p90, _ := cdf.Quantile(0.9)
	fmt.Printf("P(x <= 500 ms) = %.1f\n", cdf.At(500))
	fmt.Printf("p50 = %.0f ms, p90 = %.0f ms\n", p50, p90)
	// Output:
	// P(x <= 500 ms) = 0.7
	// p50 = 330 ms, p90 = 700 ms
}
