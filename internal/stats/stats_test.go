package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Mean(tc.in); got != tc.want {
				t.Errorf("Mean(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{42}); got != 0 {
		t.Errorf("Variance of single sample = %v, want 0", got)
	}
}

func TestCoV(t *testing.T) {
	xs := []float64{10, 10, 10}
	if got := CoV(xs); got != 0 {
		t.Errorf("CoV of constant = %v, want 0", got)
	}
	if got := CoV([]float64{0, 0}); got != 0 {
		t.Errorf("CoV of zero-mean = %v, want 0", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v", got)
	}
	if got := Sum(xs); got != 11 {
		t.Errorf("Sum = %v", got)
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("Min/Max of empty should be +Inf/-Inf")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
	}
	for _, tc := range cases {
		got, err := Percentile(xs, tc.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tc.p, err)
		}
		if !almostEqual(got, tc.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("empty percentile error = %v, want ErrEmpty", err)
	}
	if _, err := Percentile([]float64{1}, -5); err == nil {
		t.Error("negative percentile should error")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("percentile > 100 should error")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMedianSingle(t *testing.T) {
	got, err := Median([]float64{7})
	if err != nil || got != 7 {
		t.Errorf("Median single = %v, %v", got, err)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x, want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{2, 0.75},
		{2.5, 0.75},
		{3, 1},
		{10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	for _, tc := range []struct {
		q, want float64
	}{{0.25, 10}, {0.5, 20}, {0.75, 30}, {1, 40}, {0, 10}} {
		got, err := c.Quantile(tc.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tc.q, err)
		}
		if got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if _, err := c.Quantile(1.5); err == nil {
		t.Error("Quantile(1.5) should error")
	}
	empty := NewCDF(nil)
	if _, err := empty.Quantile(0.5); err != ErrEmpty {
		t.Errorf("empty quantile error = %v", err)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	pts := c.Points(2)
	if len(pts) != 2 {
		t.Fatalf("Points(2) returned %d points", len(pts))
	}
	if pts[1].X != 4 || pts[1].Y != 1 {
		t.Errorf("last point = %+v, want {4 1}", pts[1])
	}
	if got := c.Points(100); len(got) != 4 {
		t.Errorf("Points capped at sample count: got %d", len(got))
	}
	if NewCDF(nil).Points(5) != nil {
		t.Error("empty CDF should yield nil points")
	}
}

// Property: CDF.At is monotonically non-decreasing and bounded in [0,1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, probesRaw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		c := NewCDF(raw)
		probes := append([]float64(nil), probesRaw...)
		sort.Float64s(probes)
		prev := 0.0
		for _, p := range probes {
			v := c.At(p)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Quantile and At are approximate inverses: At(Quantile(q)) >= q.
func TestCDFQuantileInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint8) bool {
		count := int(n%50) + 1
		xs := make([]float64, count)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		c := NewCDF(xs)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 1.0} {
			x, err := c.Quantile(q)
			if err != nil {
				return false
			}
			if c.At(x) < q-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHourHistogram(t *testing.T) {
	var h HourHistogram
	h.Add(0)
	h.Add(0)
	h.Add(23)
	h.Add(24) // wraps to 0
	h.Add(-1) // wraps to 23
	if h.Total() != 5 {
		t.Fatalf("Total = %d, want 5", h.Total())
	}
	if h.Counts[0] != 3 || h.Counts[23] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	fr := h.Fractions()
	if !almostEqual(fr[0], 0.6, 1e-12) {
		t.Errorf("fraction[0] = %v", fr[0])
	}
}

func TestHourHistogramCumulative(t *testing.T) {
	var h HourHistogram
	for hr := 0; hr < 24; hr++ {
		h.Add(hr)
	}
	cum := h.CumulativeByHour(0)
	if !almostEqual(cum[23], 1, 1e-12) {
		t.Errorf("cumulative end = %v, want 1", cum[23])
	}
	if !almostEqual(cum[11], 0.5, 1e-12) {
		t.Errorf("cumulative at noon = %v, want 0.5", cum[11])
	}
	// Start at a different hour: still ends at 1.
	cum = h.CumulativeByHour(12)
	if !almostEqual(cum[23], 1, 1e-12) {
		t.Errorf("offset cumulative end = %v", cum[23])
	}
	var empty HourHistogram
	if empty.CumulativeByHour(0)[23] != 0 {
		t.Error("empty histogram should be all zeros")
	}
}

func TestDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 20000

	t.Run("uniform", func(t *testing.T) {
		d := Uniform{Lo: 2, Hi: 4}
		var xs []float64
		for i := 0; i < n; i++ {
			x := d.Sample(rng)
			if x < 2 || x >= 4 {
				t.Fatalf("uniform sample %v out of [2,4)", x)
			}
			xs = append(xs, x)
		}
		if m := Mean(xs); !almostEqual(m, 3, 0.05) {
			t.Errorf("uniform mean = %v", m)
		}
	})

	t.Run("normal", func(t *testing.T) {
		d := Normal{Mean: 10, Sigma: 2}
		var xs []float64
		for i := 0; i < n; i++ {
			xs = append(xs, d.Sample(rng))
		}
		if m := Mean(xs); !almostEqual(m, 10, 0.1) {
			t.Errorf("normal mean = %v", m)
		}
		if s := StdDev(xs); !almostEqual(s, 2, 0.1) {
			t.Errorf("normal sigma = %v", s)
		}
	})

	t.Run("truncnormal", func(t *testing.T) {
		d := TruncNormal{Mean: 0, Sigma: 5, Lo: -1, Hi: 1}
		for i := 0; i < n; i++ {
			x := d.Sample(rng)
			if x < -1 || x > 1 {
				t.Fatalf("truncated sample %v escaped bounds", x)
			}
		}
	})

	t.Run("truncnormal-impossible", func(t *testing.T) {
		// Mean far outside bounds: sampling nearly always fails, the
		// clamp path must still return an in-bounds value.
		d := TruncNormal{Mean: 100, Sigma: 0.001, Lo: -1, Hi: 1}
		if x := d.Sample(rng); x != 1 {
			t.Errorf("clamped sample = %v, want 1", x)
		}
	})

	t.Run("lognormal", func(t *testing.T) {
		d := LogNormalFromMedian(5, 0.5)
		var xs []float64
		for i := 0; i < n; i++ {
			x := d.Sample(rng)
			if x <= 0 {
				t.Fatalf("lognormal sample %v <= 0", x)
			}
			xs = append(xs, x)
		}
		med, _ := Median(xs)
		if !almostEqual(med, 5, 0.25) {
			t.Errorf("lognormal median = %v, want ~5", med)
		}
	})

	t.Run("exponential", func(t *testing.T) {
		d := Exponential{Mean: 3}
		var xs []float64
		for i := 0; i < n; i++ {
			xs = append(xs, d.Sample(rng))
		}
		if m := Mean(xs); !almostEqual(m, 3, 0.15) {
			t.Errorf("exponential mean = %v", m)
		}
	})

	t.Run("constant", func(t *testing.T) {
		d := Constant{Value: 42}
		if d.Sample(rng) != 42 {
			t.Error("constant should return its value")
		}
	})

	t.Run("bernoulli", func(t *testing.T) {
		hits := 0
		for i := 0; i < n; i++ {
			if Bernoulli(rng, 0.3) {
				hits++
			}
		}
		frac := float64(hits) / n
		if !almostEqual(frac, 0.3, 0.02) {
			t.Errorf("bernoulli(0.3) hit rate = %v", frac)
		}
	})
}

func TestDistributionsDeterministic(t *testing.T) {
	a := rand.New(rand.NewSource(99))
	b := rand.New(rand.NewSource(99))
	d := LogNormal{Mu: 1, Sigma: 0.7}
	for i := 0; i < 100; i++ {
		if d.Sample(a) != d.Sample(b) {
			t.Fatal("same seed must produce the same stream")
		}
	}
}

func TestCDFLen(t *testing.T) {
	if NewCDF([]float64{1, 2, 3}).Len() != 3 {
		t.Error("Len wrong")
	}
	if NewCDF(nil).Len() != 0 {
		t.Error("empty Len wrong")
	}
}
