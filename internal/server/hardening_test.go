package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"cwc/internal/protocol"
	"cwc/internal/tasks"
)

// The keepalive detector keeps the paper's 30 s / 3-miss defaults but
// spreads each wait over ±10% so a burst-registered fleet does not ping
// in lockstep forever.
func TestKeepaliveJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	period := 30 * time.Second
	lo := time.Duration(float64(period) * 0.9)
	hi := time.Duration(float64(period) * 1.1)
	distinct := map[time.Duration]bool{}
	for i := 0; i < 1000; i++ {
		d := keepaliveJitter(period, rng)
		if d < lo || d > hi {
			t.Fatalf("jitter draw %v outside [%v, %v]", d, lo, hi)
		}
		distinct[d] = true
	}
	if len(distinct) < 2 {
		t.Error("keepalive jitter never varies")
	}
}

// A phone that sends a structurally corrupt frame mid-round is declared
// an offline failure with its own structured reason, and its in-flight
// partition re-enters the pending pool for the next scheduling instant.
func TestCorruptFrameMidRoundRequeuesPartition(t *testing.T) {
	m := startMaster(t, Config{})
	f1 := dialFake(t, m, "HTC G2", 806)
	id, err := m.Submit(tasks.PrimeCount{}, []byte("2\n3\n5\n"), true)
	if err != nil {
		t.Fatal(err)
	}

	round1 := make(chan *RoundReport, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		r, err := m.RunRound(ctx)
		if err != nil {
			t.Error(err)
		}
		round1 <- r
	}()
	prof := f1.recv()
	if prof.Type != protocol.TypeAssign || prof.Partition != -1 {
		t.Fatalf("expected profiling assign, got %+v", prof)
	}
	f1.send(&protocol.Message{Type: protocol.TypeResult, JobID: 0, Partition: -1,
		Result: []byte("x"), ExecMs: 1, ProcessedKB: 0.01})
	asg := f1.recv()
	if asg.Type != protocol.TypeAssign || asg.JobID != id {
		t.Fatalf("expected real assign, got %+v", asg)
	}
	// A plausible length prefix followed by bytes that cannot decode: the
	// framing is lost on an otherwise-open connection.
	if _, err := f1.raw.Write([]byte{0, 0, 0, 5, 0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	report := <-round1
	if report == nil {
		t.Fatal("no round report")
	}
	if got := m.PendingItems(); got != 1 {
		t.Fatalf("pending after corrupt frame = %d, want the partition back", got)
	}
	found := false
	for _, of := range m.OfflineFailures() {
		if of.PhoneID == 0 && of.Reason == "corrupt-frame" {
			found = true
		}
	}
	if !found {
		t.Errorf("no structured corrupt-frame event; got %+v", m.OfflineFailures())
	}

	// The survivor fleet finishes the job next round.
	f2 := dialFake(t, m, "Nexus S", 1000)
	go func() {
		asg2 := f2.recv()
		f2.send(&protocol.Message{Type: protocol.TypeResult, JobID: asg2.JobID,
			Partition: asg2.Partition, Attempt: asg2.Attempt,
			Result: []byte("3"), ExecMs: 1, ProcessedKB: 0.01})
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := m.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	if got, ok := m.Result(id); !ok || string(got) != "3" {
		t.Fatalf("result after corrupt-frame recovery = %q %v", got, ok)
	}
}

// A phone that blows its assignment deadline is marked a straggler and
// its partition speculatively re-dispatched; the first result to arrive
// for the byte range wins and the duplicate is dropped.
func TestStragglerSpeculationFirstResultWins(t *testing.T) {
	m := startMaster(t, Config{DeadlineFloor: 200 * time.Millisecond})
	var realAssigns int32
	respond := func(f *fakePhone) {
		go func() {
			for {
				if err := f.conn.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
					return
				}
				msg, err := f.conn.Recv()
				if err != nil {
					return
				}
				switch msg.Type {
				case protocol.TypePing:
					_ = f.conn.Send(&protocol.Message{Type: protocol.TypePong, Seq: msg.Seq})
				case protocol.TypeAssign:
					if msg.Partition == -1 {
						_ = f.conn.Send(&protocol.Message{Type: protocol.TypeResult,
							JobID: 0, Partition: -1, Result: []byte("x"),
							ExecMs: 1, ProcessedKB: 0.01})
						continue
					}
					if atomic.AddInt32(&realAssigns, 1) == 1 {
						continue // straggle: never answer the first dispatch
					}
					_ = f.conn.Send(&protocol.Message{Type: protocol.TypeResult,
						JobID: msg.JobID, Partition: msg.Partition, Attempt: msg.Attempt,
						Result: []byte("2"), ExecMs: 1, ProcessedKB: 0.01})
				}
			}
		}()
	}
	respond(dialFake(t, m, "HTC G2", 806))
	respond(dialFake(t, m, "Nexus S", 1000))

	id, err := m.Submit(tasks.PrimeCount{}, []byte("2\n3\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	report1, err := m.RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(report1.Stragglers) == 0 {
		t.Fatalf("no stragglers reported: %+v", report1)
	}
	if m.PendingItems() != 1 {
		t.Fatalf("pending = %d, want the speculative copy", m.PendingItems())
	}
	if _, ok := m.Result(id); ok {
		t.Fatal("job completed without any result")
	}

	report2, err := m.RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := m.Result(id); !ok || string(got) != "2" {
		t.Fatalf("result after speculation = %q %v (round 2: %+v)", got, ok, report2)
	}
	// First-result-wins: exactly one partial credited for the byte range.
	m.mu.Lock()
	partials := len(m.jobs[id].partials)
	covered, total := m.jobs[id].covered, m.jobs[id].totalBytes
	m.mu.Unlock()
	if partials != 1 {
		t.Errorf("%d partials recorded for one byte range", partials)
	}
	if covered != total {
		t.Errorf("covered %d bytes of %d (duplicate or lost coverage)", covered, total)
	}
}

// A work item whose every dispatch fails is re-queued only until its
// retry budget runs out, then surfaced as a dead letter instead of
// poisoning every future round.
func TestDeadLetterAfterRetryBudget(t *testing.T) {
	m := startMaster(t, Config{MaxItemRetries: 1})
	failEverything := func(f *fakePhone) {
		go func() {
			for {
				if err := f.conn.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
					return
				}
				msg, err := f.conn.Recv()
				if err != nil {
					return
				}
				if msg.Type != protocol.TypeAssign {
					continue
				}
				if msg.Partition == -1 {
					_ = f.conn.Send(&protocol.Message{Type: protocol.TypeResult,
						JobID: 0, Partition: -1, Result: []byte("x"),
						ExecMs: 1, ProcessedKB: 0.01})
					continue
				}
				_ = f.conn.Send(&protocol.Message{Type: protocol.TypeFailure,
					JobID: msg.JobID, Partition: msg.Partition, Attempt: msg.Attempt,
					Error: "persistent crash"})
			}
		}()
	}
	failEverything(dialFake(t, m, "HTC G2", 806))
	id, err := m.Submit(tasks.PrimeCount{}, []byte("2\n3\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := m.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(m.DeadLetters()); got != 0 {
		t.Fatalf("dead-lettered after first failure (budget 1): %+v", m.DeadLetters())
	}
	if m.PendingItems() != 1 {
		t.Fatalf("pending = %d, want 1 re-queued item", m.PendingItems())
	}

	// The failure report killed the first phone; a fresh one fails again
	// and the item's budget is spent.
	failEverything(dialFake(t, m, "Nexus S", 1000))
	if _, err := m.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	dls := m.DeadLetters()
	if len(dls) != 1 {
		t.Fatalf("dead letters = %+v, want exactly one", dls)
	}
	if dls[0].JobID != id || dls[0].Task != "primecount" || dls[0].Retries != 1 {
		t.Errorf("dead letter = %+v", dls[0])
	}
	if m.PendingItems() != 0 {
		t.Errorf("pending = %d after dead-lettering", m.PendingItems())
	}
	if _, ok := m.Result(id); ok {
		t.Error("dead-lettered job should not have completed")
	}
}

// A reconnecting phone presenting its prior identity takes it over: same
// ID, old connection retired, no ghost entry left behind. An unknown
// prior identity falls back to a fresh registration.
func TestRejoinTakeoverReusesIdentity(t *testing.T) {
	m := startMaster(t, Config{})
	f1 := dialFake(t, m, "HTC G2", 806)

	raw, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := protocol.NewConn(raw)
	defer c.Close()
	if err := c.Send(&protocol.Message{Type: protocol.TypeHello, Model: "HTC G2",
		CPUMHz: 806, RAMMB: 512, Rejoin: true, PhoneID: 0}); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(10 * time.Second))
	w, err := c.Recv()
	if err != nil || w.Type != protocol.TypeWelcome {
		t.Fatalf("rejoin welcome = %+v, %v", w, err)
	}
	if w.PhoneID != 0 {
		t.Fatalf("rejoin assigned ID %d, want the prior identity 0", w.PhoneID)
	}
	phones := m.Phones()
	if len(phones) != 1 || phones[0].ID != 0 || !phones[0].Alive {
		t.Fatalf("fleet after rejoin = %+v", phones)
	}
	found := false
	for _, of := range m.OfflineFailures() {
		if of.PhoneID == 0 && of.Reason == "rejoined" {
			found = true
		}
	}
	if !found {
		t.Errorf("no rejoined event; got %+v", m.OfflineFailures())
	}
	// The superseded connection was closed by the server.
	_ = f1.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := f1.conn.Recv(); err == nil {
		t.Error("old connection still open after takeover")
	}

	// Unknown prior identity: fresh registration.
	raw2, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c2 := protocol.NewConn(raw2)
	defer c2.Close()
	if err := c2.Send(&protocol.Message{Type: protocol.TypeHello, Model: "Nexus S",
		CPUMHz: 1000, RAMMB: 512, Rejoin: true, PhoneID: 99}); err != nil {
		t.Fatal(err)
	}
	_ = c2.SetReadDeadline(time.Now().Add(10 * time.Second))
	w2, err := c2.Recv()
	if err != nil || w2.Type != protocol.TypeWelcome {
		t.Fatalf("fallback welcome = %+v, %v", w2, err)
	}
	if w2.PhoneID == 99 {
		t.Error("unknown prior identity should not be honoured")
	}
}

// A state snapshot taken mid-round captures dispatched-but-unreported
// partitions as pending items with their checkpoints, so a restored
// master re-queues them at its first scheduling instant.
func TestSaveStateMidRoundCapturesInFlightCheckpoint(t *testing.T) {
	m := startMaster(t, Config{})
	f1 := dialFake(t, m, "HTC G2", 806)
	img, err := tasks.GenImageKB(4, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	id, err := m.Submit(tasks.Blur{}, img, true)
	if err != nil {
		t.Fatal(err)
	}

	// Round 1: the phone fails mid-task with a checkpoint; the partition
	// migrates (input + checkpoint) to the pending pool.
	round1 := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_, err := m.RunRound(ctx)
		round1 <- err
	}()
	prof := f1.recv()
	if prof.Type != protocol.TypeAssign || prof.Partition != -1 {
		t.Fatalf("expected profiling assign, got %+v", prof)
	}
	f1.send(&protocol.Message{Type: protocol.TypeResult, JobID: 0, Partition: -1,
		Result: []byte("x"), ExecMs: 2, ProcessedKB: 4})
	asg := f1.recv()
	f1.send(&protocol.Message{Type: protocol.TypeFailure, JobID: id,
		Partition: asg.Partition, Attempt: asg.Attempt,
		Checkpoint: &tasks.Checkpoint{Offset: 100, State: []byte(`{"row":0,"out":[]}`)},
		Error:      "unplugged"})
	if err := <-round1; err != nil {
		t.Fatal(err)
	}

	// Round 2: a fresh phone holds the resumed partition in flight while
	// the snapshot is taken.
	f2 := dialFake(t, m, "Nexus S", 1000)
	round2 := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_, err := m.RunRound(ctx)
		round2 <- err
	}()
	resumed := f2.recv()
	if resumed.Type != protocol.TypeAssign || resumed.Resume == nil || resumed.Resume.Offset != 100 {
		t.Fatalf("expected resumed assign, got %+v", resumed)
	}

	var snap bytes.Buffer
	if err := m.SaveState(&snap); err != nil {
		t.Fatal(err)
	}
	var st stateJSON
	if err := json.Unmarshal(snap.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Pending) != 1 {
		t.Fatalf("snapshot pending = %+v, want the in-flight partition", st.Pending)
	}
	got := st.Pending[0]
	if got.JobID != id || !got.Atomic || got.Resume == nil || got.Resume.Offset != 100 {
		t.Fatalf("snapshotted in-flight item = %+v", got)
	}

	// The snapshot must not disturb the live round.
	f2.send(&protocol.Message{Type: protocol.TypeResult, JobID: id,
		Partition: resumed.Partition, Attempt: resumed.Attempt,
		Result: []byte("blurred"), ExecMs: 2, ProcessedKB: 4})
	if err := <-round2; err != nil {
		t.Fatal(err)
	}
	if got, ok := m.Result(id); !ok || string(got) != "blurred" {
		t.Fatalf("live master result = %q %v", got, ok)
	}

	// A restored master re-queues the in-flight partition and completes
	// the job from the checkpoint.
	m2 := startMaster(t, Config{})
	if err := m2.LoadState(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	if m2.PendingItems() != 1 {
		t.Fatalf("restored pending = %d", m2.PendingItems())
	}
	f3 := dialFake(t, m2, "HTC G2", 806)
	go func() {
		for {
			if err := f3.conn.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
				return
			}
			msg, err := f3.conn.Recv()
			if err != nil {
				return
			}
			if msg.Type != protocol.TypeAssign {
				continue
			}
			if msg.Partition != -1 && (msg.Resume == nil || msg.Resume.Offset != 100) {
				t.Errorf("restored assign lost its checkpoint: %+v", msg)
			}
			_ = f3.conn.Send(&protocol.Message{Type: protocol.TypeResult,
				JobID: msg.JobID, Partition: msg.Partition, Attempt: msg.Attempt,
				Result: []byte("blurred-after-restart"), ExecMs: 2, ProcessedKB: 4})
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := m2.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	if got, ok := m2.Result(id); !ok || string(got) != "blurred-after-restart" {
		t.Fatalf("restored master result = %q %v", got, ok)
	}
}
