package server

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"cwc/internal/core"
	"cwc/internal/protocol"
	"cwc/internal/tasks"
)

func TestWorkItemRemainingKB(t *testing.T) {
	it := &workItem{input: make([]byte, 2048)}
	if got := it.remainingKB(); got != 2 {
		t.Errorf("remaining = %v, want 2", got)
	}
	it.resume = &tasks.Checkpoint{Offset: 1024}
	if got := it.remainingKB(); got != 1 {
		t.Errorf("remaining with resume = %v, want 1", got)
	}
	// Nearly-done items stay schedulable.
	it.resume = &tasks.Checkpoint{Offset: 2048}
	if got := it.remainingKB(); got <= 0 {
		t.Errorf("fully-consumed remaining = %v, want small positive", got)
	}
}

func TestProfileSampleBreakable(t *testing.T) {
	input := make([]byte, 0, 8192)
	for len(input) < 8000 {
		input = append(input, []byte("12345\n")...)
	}
	it := &workItem{task: tasks.PrimeCount{}, input: input}
	sample := profileSample(it)
	if len(sample) < 512 || len(sample) > 2048 {
		t.Errorf("sample = %d bytes, want ~1KB", len(sample))
	}
	if sample[len(sample)-1] != '\n' {
		t.Error("sample should end at a record boundary")
	}
}

func TestProfileSampleAtomicUsesWholeInput(t *testing.T) {
	img := []byte("2 2\n1 2 3\n4 5 6\n7 8 9\n10 11 12\n")
	it := &workItem{task: tasks.Blur{}, input: img, atomic: true}
	if got := profileSample(it); len(got) != len(img) {
		t.Errorf("atomic sample truncated: %d of %d bytes", len(got), len(img))
	}
}

func TestProfileSampleSmallInput(t *testing.T) {
	it := &workItem{task: tasks.PrimeCount{}, input: []byte("2\n3\n")}
	if got := profileSample(it); len(got) != 4 {
		t.Errorf("small input sample = %d bytes", len(got))
	}
}

func TestAggregateSingle(t *testing.T) {
	js := &jobState{id: 1, task: tasks.Blur{}, partials: [][]byte{[]byte("img")}}
	got, err := aggregate(js)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "img" {
		t.Errorf("single partial aggregate = %s", got)
	}
}

func TestAggregateMultipleCounts(t *testing.T) {
	js := &jobState{id: 1, task: tasks.PrimeCount{},
		partials: [][]byte{[]byte("3"), []byte("4")}}
	got, err := aggregate(js)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "7" {
		t.Errorf("aggregate = %s, want 7", got)
	}
}

func TestAggregateErrors(t *testing.T) {
	if _, err := aggregate(&jobState{id: 1, task: tasks.PrimeCount{}}); err == nil {
		t.Error("no partials should error")
	}
	js := &jobState{id: 1, task: tasks.Blur{},
		partials: [][]byte{[]byte("a"), []byte("b")}}
	if _, err := aggregate(js); err == nil ||
		!strings.Contains(err.Error(), "not breakable") {
		t.Errorf("multi-partial non-breakable err = %v", err)
	}
}

func TestSlicePartitionsWholeAndSplit(t *testing.T) {
	input := make([]byte, 0, 12*1024)
	for len(input) < 10*1024 {
		input = append(input, []byte("123456\n")...)
	}
	items := []*workItem{
		{jobID: 1, task: tasks.PrimeCount{}, input: input},
		{jobID: 2, task: tasks.Blur{}, input: []byte("1 1\n1 2 3\n"), atomic: true},
	}
	sched := &core.Schedule{PerPhone: [][]core.Assignment{
		{
			{Phone: 0, Job: 0, SizeKB: 4},
			{Phone: 0, Job: 1, SizeKB: 0.01},
		},
		{
			{Phone: 1, Job: 0, SizeKB: float64(len(input))/1024 - 4},
		},
	}}
	plans, err := slicePartitions(items, sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("%d plans", len(plans))
	}
	// Phone 0: a slice of job 1 and the whole blur.
	if len(plans[0]) != 2 || len(plans[1]) != 1 {
		t.Fatalf("plan shapes: %d, %d", len(plans[0]), len(plans[1]))
	}
	if plans[0][1].item.jobID != 2 || string(plans[0][1].input) != "1 1\n1 2 3\n" {
		t.Error("atomic item not shipped whole")
	}
	// The two pieces of job 1 must concatenate to the input.
	rejoined := append(append([]byte(nil), plans[0][0].input...), plans[1][0].input...)
	if string(rejoined) != string(input) {
		t.Error("split pieces do not reassemble the input")
	}
}

func TestSlicePartitionsRejectsSplitAtomic(t *testing.T) {
	items := []*workItem{
		{jobID: 1, task: tasks.Blur{}, input: []byte("1 1\n1 2 3\n"), atomic: true},
	}
	sched := &core.Schedule{PerPhone: [][]core.Assignment{
		{{Phone: 0, Job: 0, SizeKB: 0.005}},
		{{Phone: 1, Job: 0, SizeKB: 0.005}},
	}}
	if _, err := slicePartitions(items, sched); err == nil {
		t.Error("splitting a non-breakable item should error")
	}
}

func TestSlicePartitionsUnassignedItem(t *testing.T) {
	items := []*workItem{
		{jobID: 1, task: tasks.PrimeCount{}, input: []byte("2\n")},
	}
	sched := &core.Schedule{PerPhone: [][]core.Assignment{{}}}
	if _, err := slicePartitions(items, sched); err == nil {
		t.Error("an item with no assignment should error")
	}
}

func TestRecordFailurePartialReporterPath(t *testing.T) {
	m := New(Config{})
	js := &jobState{id: 1, task: tasks.PrimeCount{}, totalBytes: 100}
	m.jobs[1] = js
	input := []byte("2\n3\n4\n5\n")
	a := assignment{
		item:  &workItem{jobID: 1, task: tasks.PrimeCount{}, input: input},
		input: input,
	}
	msg := protocolFailure(4, `{"count":2}`)
	m.recordFailure(a, &msg, 0, 0)
	if js.covered != 4 {
		t.Errorf("covered = %d, want 4", js.covered)
	}
	if len(js.partials) != 1 || string(js.partials[0]) != "2" {
		t.Errorf("partials = %q", js.partials)
	}
	if len(m.pending) != 1 {
		t.Fatalf("pending = %d", len(m.pending))
	}
	re := m.pending[0]
	if string(re.input) != "4\n5\n" || re.resume != nil || re.atomic {
		t.Errorf("requeued item = %+v", re)
	}
}

func TestRecordFailureMigrationPath(t *testing.T) {
	m := New(Config{})
	js := &jobState{id: 1, task: tasks.Blur{}, totalBytes: 100}
	m.jobs[1] = js
	input := []byte("1 1\n1 2 3\n")
	a := assignment{
		item:  &workItem{jobID: 1, task: tasks.Blur{}, input: input, atomic: true},
		input: input,
	}
	msg := protocolFailure(3, `{"row":0,"out":[]}`)
	m.recordFailure(a, &msg, 0, 0)
	if js.covered != 0 {
		t.Errorf("covered = %d, want 0 (no partial result possible)", js.covered)
	}
	if len(m.pending) != 1 {
		t.Fatalf("pending = %d", len(m.pending))
	}
	re := m.pending[0]
	if re.resume == nil || re.resume.Offset != 3 || !re.atomic {
		t.Errorf("migrated item = %+v", re)
	}
	if string(re.input) != string(input) {
		t.Error("migration must keep the whole input")
	}
}

func TestRecordFailureNoCheckpoint(t *testing.T) {
	m := New(Config{})
	js := &jobState{id: 1, task: tasks.PrimeCount{}, totalBytes: 10}
	m.jobs[1] = js
	input := []byte("2\n3\n")
	a := assignment{
		item:  &workItem{jobID: 1, task: tasks.PrimeCount{}, input: input},
		input: input,
	}
	msg := protocolFailure(0, "")
	msg.Checkpoint = nil
	m.recordFailure(a, &msg, 0, 0)
	if len(m.pending) != 1 {
		t.Fatalf("pending = %d", len(m.pending))
	}
	if m.pending[0].resume != nil {
		t.Error("no checkpoint should requeue fresh")
	}
}

// protocolFailure builds a worker failure report for recordFailure tests.
func protocolFailure(offset int64, state string) protocol.Message {
	ck := &tasks.Checkpoint{Offset: offset}
	if state != "" {
		ck.State = []byte(state)
	}
	return protocol.Message{Type: protocol.TypeFailure, Checkpoint: ck, Error: "unplugged"}
}

// Property: for random breakable inputs and random schedule splits, the
// sliced partitions reassemble exactly to the original input, in slot
// order.
func TestSlicePartitionsReassemblyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 40; trial++ {
		input := tasks.GenIntegers(8+rng.Float64()*64, 1000000, rng)
		it := &workItem{jobID: 1, task: tasks.PrimeCount{}, input: input}
		nPhones := 1 + rng.Intn(5)
		nPieces := 1 + rng.Intn(4)
		totalKB := float64(len(input)) / 1024
		sizes := make([]float64, nPieces)
		rest := totalKB
		for k := 0; k < nPieces-1; k++ {
			sizes[k] = rest * rng.Float64() * 0.6
			rest -= sizes[k]
		}
		sizes[nPieces-1] = rest
		sched := &core.Schedule{PerPhone: make([][]core.Assignment, nPhones)}
		for k, s := range sizes {
			p := rng.Intn(nPhones)
			sched.PerPhone[p] = append(sched.PerPhone[p],
				core.Assignment{Phone: p, Job: 0, SizeKB: s})
			_ = k
		}
		plans, err := slicePartitions([]*workItem{it}, sched)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Reassemble in (phone, slot) order — the canonical enumeration
		// slicePartitions uses.
		var rejoined []byte
		for _, plan := range plans {
			for _, a := range plan {
				rejoined = append(rejoined, a.input...)
			}
		}
		// Partition order across phones is not the original byte order in
		// general, but every byte must be present exactly once. Compare
		// sorted content cheaply via total length + prime count.
		if len(rejoined) != len(input) {
			t.Fatalf("trial %d: reassembled %d bytes, want %d", trial, len(rejoined), len(input))
		}
		var ckA, ckB tasks.Checkpoint
		a, err := (tasks.PrimeCount{}).Process(context.Background(), input, &ckA)
		if err != nil {
			t.Fatal(err)
		}
		b, err := (tasks.PrimeCount{}).Process(context.Background(), rejoined, &ckB)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("trial %d: content changed by slicing", trial)
		}
	}
}
