package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"cwc/internal/tasks"
	"cwc/internal/wal"
)

// The master's write-ahead log: every mutation of durable state (jobs,
// queued work, partials, dead letters) is appended as one record before
// the acknowledgement that depends on it, so a master killed at any
// instant replays snapshot + log and resumes with nothing acknowledged
// lost. Records carry full payloads (inputs, partials, checkpoints);
// compaction bounds the growth by folding the log into a walState
// snapshot.
//
// Replay is a pure reduction (walReducer) over three collections:
//
//	jobs   — submissions and their accumulated partials/results
//	fresh  — queued work items that have never been dispatched,
//	         identified by a durable per-item sequence number
//	open   — partitioned byte ranges at or past dispatch, identified
//	         by their speculation key; an open range with no later
//	         report/dead-letter record is re-queued on recovery exactly
//	         like the mid-round LoadState path re-queues in-flight work
//
// Dispatch records are audit-only: an assignment with no report changes
// no durable state (the range stays open either way).

// WAL record types.
const (
	walRecSubmit     uint8 = 1  // job accepted (gates the Submit ack)
	walRecRound      uint8 = 2  // partitions created at a scheduling instant
	walRecDispatch   uint8 = 3  // assignment shipped to a phone (audit only)
	walRecReport     uint8 = 4  // partition result recorded
	walRecPartial    uint8 = 5  // failure folded into a partial result + remainder
	walRecMigrate    uint8 = 6  // failure migrated whole with its checkpoint
	walRecDeadLetter uint8 = 7  // work item abandoned after its retry budget
	walRecFinish     uint8 = 8  // job aggregated to its final result
	walRecCheckpoint uint8 = 9  // streamed mid-execution checkpoint folded into an open range
	walRecDrain      uint8 = 10 // proactive-drain state transition for a phone
	walRecEpoch      uint8 = 11 // fencing epoch bumped (replication enabled or standby promoted)
	walRecRegister   uint8 = 12 // phone ID issued to a fresh registration
	walRecReputation uint8 = 13 // per-phone result-integrity reputation update / quarantine
)

// walRegisterRec keeps phone IDs monotone across recovery *and*
// failover: a promoted standby (or restarted master) must never issue
// an ID that a phone from the previous regime still holds, or the two
// phones fight over one registration through endless rejoin takeovers.
// Dispatch and drain records also carry phone IDs, but only this record
// covers a phone that registered and was never assigned work. Model is
// the phone's self-reported identity, letting a recovered master honor
// a rejoin under the old ID — without it, reputation and quarantine
// state (record 13) would detach from the phone at the first master
// restart, because the phone would be reissued a fresh ID.
type walRegisterRec struct {
	PhoneID int    `json:"phone_id"`
	Model   string `json:"model,omitempty"`
}

// walEpochRec persists a fencing-epoch bump. The record is durable (and
// shipped to standbys) before the new epoch takes effect, so no two
// master regimes can ever share an epoch: a resurrected primary replays
// the epochs it bumped, never the one its standby minted at promotion.
type walEpochRec struct {
	Epoch int64 `json:"epoch"`
}

type walSubmit struct {
	JobID  int    `json:"job_id"`
	Seq    int64  `json:"seq"`
	Task   string `json:"task"`
	Params []byte `json:"params,omitempty"`
	Input  []byte `json:"input"`
	Atomic bool   `json:"atomic,omitempty"`
}

type walRoundItem struct {
	JobID   int               `json:"job_id"`
	Key     int64             `json:"key"`
	Input   []byte            `json:"input"`
	Resume  *tasks.Checkpoint `json:"resume,omitempty"`
	Retries int               `json:"retries,omitempty"`
	// Partition is the timeline identity of this byte range: a promoted
	// standby re-dispatches a recovered open range under the same
	// partition number, so the merged trace shows one row per range
	// across the failover instead of a ghost row per regime.
	Partition int `json:"partition,omitempty"`
}

type walRound struct {
	// Consumed lists the sequence numbers of fresh items drained into
	// this round; their byte ranges continue as the keyed Items.
	Consumed []int64        `json:"consumed,omitempty"`
	Items    []walRoundItem `json:"items"`
}

type walDispatch struct {
	Key       int64 `json:"key"`
	JobID     int   `json:"job_id"`
	Partition int   `json:"partition"`
	PhoneID   int   `json:"phone_id"`
	Attempt   int64 `json:"attempt"`
}

type walReport struct {
	JobID   int    `json:"job_id"`
	Key     int64  `json:"key"`
	Bytes   int64  `json:"bytes"`
	Partial []byte `json:"partial"`
}

type walPartialRec struct {
	JobID   int    `json:"job_id"`
	Key     int64  `json:"key"`
	Offset  int64  `json:"offset"`
	Partial []byte `json:"partial"`
	// Remainder, when present, is the unprocessed suffix re-queued as a
	// fresh item under RemainderSeq; absent when the remainder was empty
	// or immediately dead-lettered.
	Remainder    []byte `json:"remainder,omitempty"`
	RemainderSeq int64  `json:"remainder_seq,omitempty"`
	Retries      int    `json:"retries,omitempty"`
}

type walMigrate struct {
	JobID     int               `json:"job_id"`
	Key       int64             `json:"key"`
	Input     []byte            `json:"input"`
	Resume    *tasks.Checkpoint `json:"resume,omitempty"`
	Retries   int               `json:"retries,omitempty"`
	Partition int               `json:"partition,omitempty"` // see walRoundItem.Partition
}

type walDeadLetterRec struct {
	JobID   int    `json:"job_id"`
	Key     int64  `json:"key,omitempty"`
	Seq     int64  `json:"seq,omitempty"`
	Task    string `json:"task"`
	Bytes   int    `json:"bytes"`
	Retries int    `json:"retries"`
	Reason  string `json:"reason"`
}

type walFinish struct {
	JobID int    `json:"job_id"`
	Final []byte `json:"final"`
	// Error marks a terminal aggregation failure instead of a result: the
	// job is done but failed, and replay must reach the same terminal
	// state rather than re-attempting the (deterministic) aggregation
	// forever.
	Error string `json:"error,omitempty"`
}

// walReputationRec logs one phone's result-integrity reputation after a
// verification event (vote won or lost, audit outcome, digest mismatch).
// Each record carries the full post-event state, so replaying only the
// latest record per phone — or all of them in order — converges.
type walReputationRec struct {
	PhoneID     int     `json:"phone_id"`
	Score       float64 `json:"score"`
	Quarantined bool    `json:"quarantined,omitempty"`
}

// walDrainRec logs one proactive-drain state transition so recovery
// preserves which phones were being drained: State is drainStarted,
// drainCompleted, or drainCleared.
type walDrainRec struct {
	PhoneID int    `json:"phone_id"`
	State   string `json:"state"`
}

type walCheckpointRec struct {
	JobID  int               `json:"job_id"`
	Key    int64             `json:"key"`
	Resume *tasks.Checkpoint `json:"resume"`
}

// walJobRec is a job's durable state, shared by the reducer and the
// compaction snapshot.
type walJobRec struct {
	ID         int      `json:"id"`
	Task       string   `json:"task"`
	Params     []byte   `json:"params,omitempty"`
	TotalBytes int64    `json:"total_bytes"`
	Covered    int64    `json:"covered"`
	Partials   [][]byte `json:"partials,omitempty"`
	Final      []byte   `json:"final,omitempty"`
	Done       bool     `json:"done,omitempty"`
	// Failure carries a terminal aggregation error (Done with no Final).
	Failure string `json:"failure,omitempty"`
}

// walItemRec is a queued or in-flight work item's durable state.
type walItemRec struct {
	Seq     int64             `json:"seq,omitempty"`
	Key     int64             `json:"key,omitempty"`
	JobID   int               `json:"job_id"`
	Input   []byte            `json:"input"`
	Resume  *tasks.Checkpoint `json:"resume,omitempty"`
	Atomic  bool              `json:"atomic,omitempty"`
	Retries int               `json:"retries,omitempty"`
	// Partition preserves the range's timeline row across recovery; see
	// walRoundItem.Partition.
	Partition int `json:"partition,omitempty"`
}

// walState is the compaction snapshot: the reducer's state serialized.
type walState struct {
	NextJobID int   `json:"next_job_id"`
	NextSeq   int64 `json:"next_seq"`
	NextKey   int64 `json:"next_key"`
	// NextPhoneID keeps phone IDs monotone across recovery so a drain
	// ledger entry can never be misapplied to an unrelated phone that
	// happened to be issued a recycled ID.
	NextPhoneID int            `json:"next_phone_id,omitempty"`
	Jobs        []walJobRec    `json:"jobs,omitempty"`
	Fresh       []walItemRec   `json:"fresh,omitempty"`
	Open        []walItemRec   `json:"open,omitempty"`
	DeadLetters []DeadLetter   `json:"dead_letters,omitempty"`
	Drains      map[int]string `json:"drains,omitempty"`
	// Reputation is each phone's result-integrity EWMA score (absent
	// phones are at the initial 1.0); Quarantined lists phones vetoed
	// from placement for integrity failures (sorted, see walRecReputation).
	Reputation  map[int]float64 `json:"reputation,omitempty"`
	Quarantined []int           `json:"quarantined,omitempty"`
	// Identity maps issued phone IDs to self-reported models so rejoins
	// keep their IDs (and reputation) across recovery; see walRegisterRec.
	Identity map[int]string `json:"identity,omitempty"`
	// Epoch is the fencing epoch at the snapshot cut; see walRecEpoch.
	Epoch int64 `json:"epoch,omitempty"`
}

// walReducer replays a snapshot plus records into durable state.
type walReducer struct {
	nextJobID   int
	nextSeq     int64
	nextKey     int64
	nextPhoneID int
	jobs        map[int]*walJobRec
	fresh       map[int64]*walItemRec // by item sequence number
	open        map[int64]*walItemRec // by speculation key
	dead        []DeadLetter
	drains      map[int]string // phone ID -> drain state
	reputation  map[int]float64
	quarantined map[int]bool
	identity    map[int]string // phone ID -> model, for rejoins after recovery
	epoch       int64
}

func newWALReducer() *walReducer {
	return &walReducer{
		nextJobID:   1,
		jobs:        map[int]*walJobRec{},
		fresh:       map[int64]*walItemRec{},
		open:        map[int64]*walItemRec{},
		drains:      map[int]string{},
		reputation:  map[int]float64{},
		quarantined: map[int]bool{},
		identity:    map[int]string{},
	}
}

// loadSnapshot primes the reducer from a compaction snapshot.
func (r *walReducer) loadSnapshot(b []byte) error {
	var st walState
	if err := json.Unmarshal(b, &st); err != nil {
		return fmt.Errorf("decoding snapshot: %w", err)
	}
	if st.NextJobID > r.nextJobID {
		r.nextJobID = st.NextJobID
	}
	r.nextSeq = st.NextSeq
	r.nextKey = st.NextKey
	for i := range st.Jobs {
		j := st.Jobs[i]
		r.jobs[j.ID] = &j
	}
	for i := range st.Fresh {
		it := st.Fresh[i]
		r.fresh[it.Seq] = &it
		r.bumpSeq(it.Seq)
	}
	for i := range st.Open {
		it := st.Open[i]
		r.open[it.Key] = &it
		r.bumpKey(it.Key)
	}
	r.dead = append(r.dead, st.DeadLetters...)
	if st.NextPhoneID > r.nextPhoneID {
		r.nextPhoneID = st.NextPhoneID
	}
	for id, s := range st.Drains {
		r.drains[id] = s
		if id >= r.nextPhoneID {
			r.nextPhoneID = id + 1
		}
	}
	for id, score := range st.Reputation {
		r.reputation[id] = score
		if id >= r.nextPhoneID {
			r.nextPhoneID = id + 1
		}
	}
	for _, id := range st.Quarantined {
		r.quarantined[id] = true
		if id >= r.nextPhoneID {
			r.nextPhoneID = id + 1
		}
	}
	for id, model := range st.Identity {
		r.identity[id] = model
		if id >= r.nextPhoneID {
			r.nextPhoneID = id + 1
		}
	}
	if st.Epoch > r.epoch {
		r.epoch = st.Epoch
	}
	return nil
}

func (r *walReducer) bumpSeq(s int64) {
	if s > r.nextSeq {
		r.nextSeq = s
	}
}

func (r *walReducer) bumpKey(k int64) {
	if k > r.nextKey {
		r.nextKey = k
	}
}

func (r *walReducer) job(id int) (*walJobRec, error) {
	js, ok := r.jobs[id]
	if !ok {
		return nil, fmt.Errorf("record references unknown job %d", id)
	}
	return js, nil
}

// apply folds one record into the reducer.
func (r *walReducer) apply(rec wal.Record) error {
	switch rec.Type {
	case walRecSubmit:
		var p walSubmit
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("decoding submit: %w", err)
		}
		if _, dup := r.jobs[p.JobID]; dup {
			return fmt.Errorf("duplicate submit for job %d", p.JobID)
		}
		r.jobs[p.JobID] = &walJobRec{
			ID: p.JobID, Task: p.Task, Params: p.Params, TotalBytes: int64(len(p.Input)),
		}
		r.fresh[p.Seq] = &walItemRec{Seq: p.Seq, JobID: p.JobID, Input: p.Input, Atomic: p.Atomic}
		if p.JobID >= r.nextJobID {
			r.nextJobID = p.JobID + 1
		}
		r.bumpSeq(p.Seq)
	case walRecRound:
		var p walRound
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("decoding round: %w", err)
		}
		for _, s := range p.Consumed {
			delete(r.fresh, s)
		}
		for _, it := range p.Items {
			if _, err := r.job(it.JobID); err != nil {
				return fmt.Errorf("round: %w", err)
			}
			r.open[it.Key] = &walItemRec{
				Key: it.Key, JobID: it.JobID, Input: it.Input,
				Resume: it.Resume, Atomic: true, Retries: it.Retries,
				Partition: it.Partition,
			}
			r.bumpKey(it.Key)
		}
	case walRecDispatch:
		// Audit only: an unreported dispatch leaves its range open.
	case walRecReport:
		var p walReport
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("decoding report: %w", err)
		}
		js, err := r.job(p.JobID)
		if err != nil {
			return fmt.Errorf("report: %w", err)
		}
		delete(r.open, p.Key)
		js.Covered += p.Bytes
		js.Partials = append(js.Partials, p.Partial)
	case walRecPartial:
		var p walPartialRec
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("decoding partial: %w", err)
		}
		js, err := r.job(p.JobID)
		if err != nil {
			return fmt.Errorf("partial: %w", err)
		}
		delete(r.open, p.Key)
		js.Covered += p.Offset
		js.Partials = append(js.Partials, p.Partial)
		if p.RemainderSeq != 0 && len(p.Remainder) > 0 {
			r.fresh[p.RemainderSeq] = &walItemRec{
				Seq: p.RemainderSeq, JobID: p.JobID, Input: p.Remainder, Retries: p.Retries,
			}
			r.bumpSeq(p.RemainderSeq)
		}
	case walRecMigrate:
		var p walMigrate
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("decoding migrate: %w", err)
		}
		if _, err := r.job(p.JobID); err != nil {
			return fmt.Errorf("migrate: %w", err)
		}
		r.open[p.Key] = &walItemRec{
			Key: p.Key, JobID: p.JobID, Input: p.Input,
			Resume: p.Resume, Atomic: true, Retries: p.Retries,
			Partition: p.Partition,
		}
		r.bumpKey(p.Key)
	case walRecDeadLetter:
		var p walDeadLetterRec
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("decoding dead letter: %w", err)
		}
		delete(r.open, p.Key)
		delete(r.fresh, p.Seq)
		r.dead = append(r.dead, DeadLetter{
			JobID: p.JobID, Task: p.Task, Bytes: p.Bytes, Retries: p.Retries, Reason: p.Reason,
		})
	case walRecCheckpoint:
		var p walCheckpointRec
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("decoding checkpoint: %w", err)
		}
		// Lenient by design: a checkpoint that raced a report (its key
		// already closed) is harmless and simply ignored on replay.
		it, ok := r.open[p.Key]
		if ok && p.Resume != nil && (it.Resume == nil || p.Resume.Offset > it.Resume.Offset) {
			it.Resume = p.Resume
		}
	case walRecFinish:
		var p walFinish
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("decoding finish: %w", err)
		}
		js, err := r.job(p.JobID)
		if err != nil {
			return fmt.Errorf("finish: %w", err)
		}
		js.Final = p.Final
		js.Done = true
		js.Failure = p.Error
	case walRecDrain:
		var p walDrainRec
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("decoding drain: %w", err)
		}
		switch p.State {
		case drainStarted, drainCompleted:
			r.drains[p.PhoneID] = p.State
		case drainCleared:
			delete(r.drains, p.PhoneID)
		default:
			return fmt.Errorf("drain record for phone %d has unknown state %q", p.PhoneID, p.State)
		}
		if p.PhoneID >= r.nextPhoneID {
			r.nextPhoneID = p.PhoneID + 1
		}
	case walRecRegister:
		var p walRegisterRec
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("decoding register: %w", err)
		}
		if p.Model != "" {
			r.identity[p.PhoneID] = p.Model
		}
		if p.PhoneID >= r.nextPhoneID {
			r.nextPhoneID = p.PhoneID + 1
		}
	case walRecReputation:
		var p walReputationRec
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("decoding reputation: %w", err)
		}
		r.reputation[p.PhoneID] = p.Score
		if p.Quarantined {
			r.quarantined[p.PhoneID] = true
		}
		if p.PhoneID >= r.nextPhoneID {
			r.nextPhoneID = p.PhoneID + 1
		}
	case walRecEpoch:
		var p walEpochRec
		if err := json.Unmarshal(rec.Payload, &p); err != nil {
			return fmt.Errorf("decoding epoch: %w", err)
		}
		if p.Epoch < r.epoch {
			return fmt.Errorf("epoch record regresses %d -> %d", r.epoch, p.Epoch)
		}
		r.epoch = p.Epoch
	default:
		return fmt.Errorf("unknown record type %d", rec.Type)
	}
	return nil
}

// walAppend writes one record to the attached WAL, if any. Callers hold
// m.mu wherever the record's position relative to other state changes
// matters. Failures are logged, not fatal: the master keeps serving and
// the next compaction folds live state into a consistent snapshot.
func (m *Master) walAppend(typ uint8, v any) {
	if m.cfg.WAL == nil {
		return
	}
	if err := m.walAppendErr(typ, v); err != nil {
		// A lost record is bounded data loss (the next compaction folds
		// live state into a consistent snapshot), but it is exactly the
		// event an operator tails structured logs for — error level, with
		// the record type as a field.
		m.cfg.Logger.With("rec", typ).Errorf("wal: record lost: %v", err)
	}
}

// walAppendErr is walAppend surfacing the error, for records that gate
// an acknowledgement (Submit must not ack what the log did not take).
func (m *Master) walAppendErr(typ uint8, v any) error {
	wl := m.cfg.WAL
	if wl == nil {
		return nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("encoding: %w", err)
	}
	if err := wl.Append(typ, b); err != nil {
		return err
	}
	// Ship only what the local log took: a standby must never hold a
	// record its primary lost. Append sites that matter for replay order
	// hold m.mu, so the shipped sequence matches the log sequence (the
	// one lock-free site, walRecDispatch, is a replay no-op).
	if s := m.cfg.ReplicaSink; s != nil {
		s.Ship(typ, b)
	}
	return nil
}

// nextSeqLocked allocates a durable work-item sequence number. Caller
// holds m.mu.
func (m *Master) nextSeqLocked() int64 {
	m.nextItemSeq++
	return m.nextItemSeq
}

// walSnapshotLocked serializes the master's durable state in the
// compaction snapshot format. Caller holds m.mu. Unlike SaveState it
// preserves speculation keys and item sequence numbers: the log that
// continues after this snapshot refers to them.
func (m *Master) walSnapshotLocked(w io.Writer) error {
	st := walState{
		NextJobID: m.nextJobID, NextSeq: m.nextItemSeq, NextKey: m.nextKey,
		NextPhoneID: m.nextPhoneID, Epoch: m.epoch,
	}
	st.DeadLetters = append(st.DeadLetters, m.deadLetters...)
	if len(m.draining) > 0 {
		st.Drains = make(map[int]string, len(m.draining))
		for id, s := range m.draining {
			st.Drains[id] = s
		}
	}
	if len(m.reputation) > 0 {
		st.Reputation = make(map[int]float64, len(m.reputation))
		for id, score := range m.reputation {
			st.Reputation[id] = score
		}
	}
	for id := range m.quarantined {
		st.Quarantined = append(st.Quarantined, id)
	}
	sort.Ints(st.Quarantined)
	if len(m.walIdentity) > 0 {
		st.Identity = make(map[int]string, len(m.walIdentity))
		for id, model := range m.walIdentity {
			st.Identity[id] = model
		}
	}
	for _, js := range m.jobs {
		st.Jobs = append(st.Jobs, walJobRec{
			ID: js.id, Task: js.task.Name(), Params: js.task.Params(),
			TotalBytes: js.totalBytes, Covered: js.covered,
			Partials: js.partials, Final: js.final, Done: js.done,
			Failure: js.failure,
		})
	}
	seen := map[int64]bool{}
	addOpen := func(key int64, jobID int, input []byte, resume *tasks.Checkpoint, retries, partition int) {
		if m.completed[key] || seen[key] {
			return
		}
		seen[key] = true
		st.Open = append(st.Open, walItemRec{
			Key: key, JobID: jobID, Input: input,
			Resume: m.latestResumeLocked(key, resume), Atomic: true, Retries: retries,
			Partition: partition,
		})
	}
	for _, it := range m.pending {
		if it.key == 0 {
			st.Fresh = append(st.Fresh, walItemRec{
				Seq: it.seq, JobID: it.jobID, Input: it.input,
				Resume: it.resume, Atomic: it.atomic, Retries: it.retries,
			})
			continue
		}
		addOpen(it.key, it.jobID, it.input, it.resume, it.retries, it.partition)
	}
	for _, rec := range m.attempts {
		a := rec.a
		if a.key == 0 {
			continue
		}
		addOpen(a.key, a.item.jobID, a.input, a.resume, a.item.retries, a.partition)
	}
	sort.Slice(st.Jobs, func(i, j int) bool { return st.Jobs[i].ID < st.Jobs[j].ID })
	sort.Slice(st.Fresh, func(i, j int) bool { return st.Fresh[i].Seq < st.Fresh[j].Seq })
	sort.Slice(st.Open, func(i, j int) bool { return st.Open[i].Key < st.Open[j].Key })
	enc := json.NewEncoder(w)
	return enc.Encode(st)
}

// CompactWAL folds the master's current durable state into a WAL
// snapshot and rotates the log. Safe to call at any time; a no-op
// without an attached WAL.
func (m *Master) CompactWAL() error {
	wl := m.cfg.WAL
	if wl == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return wl.Compact(func(w io.Writer) error { return m.walSnapshotLocked(w) })
}

// RecoverWAL replays the attached WAL's snapshot and records into this
// (empty) master: jobs and their partials are restored, queued work is
// re-queued, and byte ranges that were in flight when the old master
// died are re-queued atomically — exactly how a mid-round LoadState
// re-queues dispatched work. Jobs whose coverage completed but whose
// aggregation was cut off by the crash are aggregated now. The log is
// then compacted so the recovered state becomes the new snapshot.
func (m *Master) RecoverWAL() error {
	wl := m.cfg.WAL
	if wl == nil {
		return nil
	}
	snap, recs := wl.Snapshot(), wl.Recovered()
	if len(snap) == 0 && len(recs) == 0 {
		return nil
	}
	red := newWALReducer()
	if len(snap) > 0 {
		if err := red.loadSnapshot(snap); err != nil {
			return fmt.Errorf("server: wal recovery: %w", err)
		}
	}
	for i, rec := range recs {
		if err := red.apply(rec); err != nil {
			return fmt.Errorf("server: wal recovery: record %d: %w", i, err)
		}
	}
	if err := m.installWALState(red); err != nil {
		return err
	}
	if err := m.CompactWAL(); err != nil {
		return fmt.Errorf("server: wal recovery: compacting recovered state: %w", err)
	}
	return nil
}

// installWALState materializes reduced state into an empty master.
func (m *Master) installWALState(red *walReducer) error {
	jobs := map[int]*jobState{}
	for id, jr := range red.jobs {
		task, err := tasks.New(jr.Task, jr.Params)
		if err != nil {
			return fmt.Errorf("server: wal recovery: restoring job %d: %w", id, err)
		}
		js := &jobState{
			id: id, task: task, totalBytes: jr.TotalBytes, covered: jr.Covered,
			partials: jr.Partials, final: jr.Final, done: jr.Done,
			failure: jr.Failure,
		}
		if !js.done && js.totalBytes > 0 && js.covered >= js.totalBytes {
			// The crash fell between the last report and the round's
			// aggregation sweep; finish the job now. An aggregation error is
			// terminal here exactly as in the live sweep (aggregation is
			// deterministic over the same partials): the job is marked
			// failed — surfaced via JobFailure — instead of wedging the
			// recovered master in a retry-forever loop.
			final, err := aggregate(js)
			if err != nil {
				js.failure = err.Error()
				js.done = true
				m.cfg.Logger.With("job", id).Errorf("wal: aggregation after recovery failed terminally: %v", err)
			} else {
				js.final = final
				js.done = true
			}
		}
		jobs[id] = js
	}
	items := make([]*walItemRec, 0, len(red.fresh)+len(red.open))
	for _, it := range red.fresh {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Seq < items[j].Seq })
	openStart := len(items)
	for _, it := range red.open {
		items = append(items, it)
	}
	sort.Slice(items[openStart:], func(i, j int) bool {
		return items[openStart+i].Key < items[openStart+j].Key
	})
	pending := make([]*workItem, 0, len(items))
	for _, it := range items {
		js, ok := jobs[it.JobID]
		if !ok {
			return fmt.Errorf("server: wal recovery: item references unknown job %d", it.JobID)
		}
		// Keys are dropped: the old master's attempts can never reach
		// this one, so first-result-wins state would be dead weight —
		// the same reasoning SaveState documents. The partition number
		// survives, so the re-dispatch extends the range's timeline row
		// instead of opening a fresh "partition 0" per recovered range.
		pending = append(pending, &workItem{
			jobID: it.JobID, task: js.task, input: it.Input,
			resume: it.Resume, atomic: it.Atomic, retries: it.Retries,
			partition: it.Partition,
		})
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.jobs) != 0 || len(m.pending) != 0 {
		return ErrStateNotEmpty
	}
	m.jobs = jobs
	for _, it := range pending {
		it.seq = m.nextSeqLocked()
	}
	m.pending = pending
	m.deadLetters = append(m.deadLetters, red.dead...)
	if red.nextJobID > m.nextJobID {
		m.nextJobID = red.nextJobID
	}
	if red.nextSeq > m.nextItemSeq {
		m.nextItemSeq = red.nextSeq
	}
	if red.nextKey > m.nextKey {
		m.nextKey = red.nextKey
	}
	if red.nextPhoneID > m.nextPhoneID {
		m.nextPhoneID = red.nextPhoneID
	}
	for id, s := range red.drains {
		m.draining[id] = s
	}
	for id, score := range red.reputation {
		m.reputation[id] = score
	}
	for id := range red.quarantined {
		m.quarantined[id] = true
	}
	for id, model := range red.identity {
		m.walIdentity[id] = model
	}
	if red.epoch > m.epoch {
		m.epoch = red.epoch
	}
	// Re-arm the tracer's epoch stamp: master-side events recorded after
	// recovery must carry the recovered fencing regime, not 0.
	m.cfg.Tracer.SetEpoch(m.epoch)
	return nil
}

// ReplicaSnapshot hands a replication shipper an exact cut of the
// master's durable state: activate is called with the serialized
// walState snapshot while the state lock is held, so if the callback
// registers a stream subscriber, every record appended after it returns
// is shipped and nothing already inside the snapshot is shipped again.
// (Dispatch audit records, appended without the lock, may straddle the
// cut; they are replay no-ops either way.)
func (m *Master) ReplicaSnapshot(activate func(snapshot []byte)) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var buf bytes.Buffer
	if err := m.walSnapshotLocked(&buf); err != nil {
		return fmt.Errorf("server: replica snapshot: %w", err)
	}
	activate(buf.Bytes())
	return nil
}

// WALFold incrementally folds WAL records exactly as RecoverWAL replays
// them, for consumers outside this package — a hot standby validating
// its shipped stream, tracking the primary's state live, and
// serializing compaction snapshots for its own log. (At promotion the
// standby still recovers from its persisted log via RecoverWAL; the
// fold never substitutes for the durable path.)
type WALFold struct {
	red     *walReducer
	applied int64
}

// NewWALFold returns an empty fold.
func NewWALFold() *WALFold { return &WALFold{red: newWALReducer()} }

// LoadSnapshot primes the fold from a walState snapshot (a compaction
// snapshot, or the replication stream's opening frame), replacing any
// previous state and resetting the applied count.
func (f *WALFold) LoadSnapshot(b []byte) error {
	red := newWALReducer()
	if err := red.loadSnapshot(b); err != nil {
		return err
	}
	f.red = red
	f.applied = 0
	return nil
}

// Apply folds one record. An undecodable or inconsistent record is the
// caller's cue to drop the stream and resync from a fresh snapshot.
func (f *WALFold) Apply(rec wal.Record) error {
	if err := f.red.apply(rec); err != nil {
		return err
	}
	f.applied++
	return nil
}

// Applied counts records folded since the last snapshot load.
func (f *WALFold) Applied() int64 { return f.applied }

// Epoch returns the folded fencing epoch.
func (f *WALFold) Epoch() int64 { return f.red.epoch }

// Snapshot serializes the folded state in the compaction-snapshot
// format, collections sorted so equivalent states encode identically.
func (f *WALFold) Snapshot(w io.Writer) error {
	r := f.red
	st := walState{
		NextJobID: r.nextJobID, NextSeq: r.nextSeq, NextKey: r.nextKey,
		NextPhoneID: r.nextPhoneID, Epoch: r.epoch,
	}
	st.DeadLetters = append(st.DeadLetters, r.dead...)
	if len(r.drains) > 0 {
		st.Drains = make(map[int]string, len(r.drains))
		for id, s := range r.drains {
			st.Drains[id] = s
		}
	}
	if len(r.reputation) > 0 {
		st.Reputation = make(map[int]float64, len(r.reputation))
		for id, score := range r.reputation {
			st.Reputation[id] = score
		}
	}
	for id := range r.quarantined {
		st.Quarantined = append(st.Quarantined, id)
	}
	sort.Ints(st.Quarantined)
	for _, j := range r.jobs {
		st.Jobs = append(st.Jobs, *j)
	}
	for _, it := range r.fresh {
		st.Fresh = append(st.Fresh, *it)
	}
	for _, it := range r.open {
		st.Open = append(st.Open, *it)
	}
	sort.Slice(st.Jobs, func(i, j int) bool { return st.Jobs[i].ID < st.Jobs[j].ID })
	sort.Slice(st.Fresh, func(i, j int) bool { return st.Fresh[i].Seq < st.Fresh[j].Seq })
	sort.Slice(st.Open, func(i, j int) bool { return st.Open[i].Key < st.Open[j].Key })
	return json.NewEncoder(w).Encode(st)
}
