package server

import (
	"context"
	"net"
	"testing"
	"time"

	"cwc/internal/protocol"
	"cwc/internal/wal"
)

// TestWALRegisterRecordKeepsPhoneIDsMonotone is the failover-discovered
// regression: phones that register but never receive work used to leave
// no trace in the WAL, so a recovered master (or a promoted standby)
// restarted IDs from zero and reissued an ID a phone from the previous
// regime still held — after which the two phones steal the registration
// from each other through endless rejoin takeovers. The register record
// (type 12) must keep issued IDs monotone across recovery on its own,
// with no dispatch or drain record to lean on.
func TestWALRegisterRecordKeepsPhoneIDsMonotone(t *testing.T) {
	dir := t.TempDir()
	wl := openWAL(t, dir, wal.Options{Sync: wal.SyncAlways})
	a := startMaster(t, Config{WAL: wl})
	dialFake(t, a, "HTC G2", 806)
	dialFake(t, a, "Nexus S", 1000)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.WaitForPhones(ctx, 2); err != nil {
		t.Fatal(err)
	}
	a.Close()
	wl.Close()

	wl2 := openWAL(t, dir, wal.Options{Sync: wal.SyncAlways})
	b := startMaster(t, Config{WAL: wl2})
	if err := b.RecoverWAL(); err != nil {
		t.Fatal(err)
	}
	dialFake(t, b, "Galaxy Nexus", 1200)
	if err := b.WaitForPhones(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if id := b.Phones()[0].ID; id < 2 {
		t.Errorf("recovered master reissued phone ID %d; IDs 0 and 1 are still held by the previous regime", id)
	}
}

// TestRejoinRefusesModelMismatch: a rejoin hello may only take over an
// existing registration when the model matches — otherwise a different
// phone that legitimately believes it holds the same ID (granted by a
// previous master regime) would hijack the current holder's connection.
func TestRejoinRefusesModelMismatch(t *testing.T) {
	m := startMaster(t, Config{})
	holder := dialFake(t, m, "HTC G2", 806)
	_ = holder
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.WaitForPhones(ctx, 1); err != nil {
		t.Fatal(err)
	}

	raw, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	conn := protocol.NewConn(raw)
	if err := conn.Send(&protocol.Message{
		Type: protocol.TypeHello, Model: "Nexus S", CPUMHz: 1000, RAMMB: 512,
		Rejoin: true, PhoneID: 0,
	}); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	w, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if w.Type != protocol.TypeWelcome {
		t.Fatalf("expected welcome, got %s", w.Type)
	}
	if w.PhoneID == 0 {
		t.Error("model-mismatched rejoin took over phone 0 instead of registering fresh")
	}
	// The original holder must still be alive under its ID.
	found := false
	for _, p := range m.Phones() {
		if p.ID == 0 && p.Model == "HTC G2" && p.Alive {
			found = true
		}
	}
	if !found {
		t.Error("original phone 0 registration was disturbed by the mismatched rejoin")
	}
}
