package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"cwc/internal/tasks"
	"cwc/internal/wal"
)

// State snapshot/restore: the paper's server records migrated task state
// so a failure never loses work; a production deployment also wants the
// *server's* own queue to survive a restart. SaveState captures every
// submission (pending work items, partial results, finished results) as
// JSON; LoadState rehydrates a fresh master from it, re-instantiating
// task executables through the registry.

type stateJSON struct {
	NextJobID int            `json:"next_job_id"`
	Jobs      []jobJSONState `json:"jobs"`
	Pending   []workItemJSON `json:"pending"`
}

type jobJSONState struct {
	ID         int      `json:"id"`
	Task       string   `json:"task"`
	Params     []byte   `json:"params,omitempty"`
	TotalBytes int64    `json:"total_bytes"`
	Covered    int64    `json:"covered"`
	Partials   [][]byte `json:"partials,omitempty"`
	Final      []byte   `json:"final,omitempty"`
	Done       bool     `json:"done"`
}

type workItemJSON struct {
	JobID  int               `json:"job_id"`
	Task   string            `json:"task"`
	Params []byte            `json:"params,omitempty"`
	Input  []byte            `json:"input"`
	Resume *tasks.Checkpoint `json:"resume,omitempty"`
	Atomic bool              `json:"atomic,omitempty"`
}

// SaveState serializes the master's job state. A mid-round snapshot is
// safe: partitions that are in flight (dispatched, report not yet
// recorded) are captured as pending items with their checkpoints, so a
// restored master re-queues them at its first scheduling instant. Keys
// are not persisted — a restored master cannot receive the old attempts'
// reports, so duplicate-suppression state would be dead weight.
func (m *Master) SaveState(w io.Writer) error {
	m.mu.Lock()
	st := stateJSON{NextJobID: m.nextJobID}
	for _, js := range m.jobs {
		st.Jobs = append(st.Jobs, jobJSONState{
			ID:         js.id,
			Task:       js.task.Name(),
			Params:     js.task.Params(),
			TotalBytes: js.totalBytes,
			Covered:    js.covered,
			Partials:   js.partials,
			Final:      js.final,
			Done:       js.done,
		})
	}
	seen := map[int64]bool{}
	for _, it := range m.pending {
		if it.key != 0 {
			if m.completed[it.key] || seen[it.key] {
				continue
			}
			seen[it.key] = true
		}
		st.Pending = append(st.Pending, workItemJSON{
			JobID:  it.jobID,
			Task:   it.task.Name(),
			Params: it.task.Params(),
			Input:  it.input,
			Resume: m.latestResumeLocked(it.key, it.resume),
			Atomic: it.atomic,
		})
	}
	for _, rec := range m.attempts {
		a := rec.a
		if a.key != 0 {
			if m.completed[a.key] || seen[a.key] {
				continue
			}
			seen[a.key] = true
		}
		st.Pending = append(st.Pending, workItemJSON{
			JobID:  a.item.jobID,
			Task:   a.item.task.Name(),
			Params: a.item.task.Params(),
			Input:  a.input,
			Resume: m.latestResumeLocked(a.key, a.resume),
			Atomic: true,
		})
	}
	m.mu.Unlock()

	enc := json.NewEncoder(w)
	if err := enc.Encode(st); err != nil {
		return fmt.Errorf("server: saving state: %w", err)
	}
	return nil
}

// ErrStateNotEmpty is returned when LoadState is called on a master that
// already has jobs or pending work.
var ErrStateNotEmpty = errors.New("server: master already has state")

// LoadState rehydrates a fresh master from a snapshot.
func (m *Master) LoadState(r io.Reader) error {
	var st stateJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&st); err != nil {
		return fmt.Errorf("server: loading state: %w", err)
	}
	// Rebuild outside the lock, then install atomically.
	jobs := map[int]*jobState{}
	for _, j := range st.Jobs {
		task, err := tasks.New(j.Task, j.Params)
		if err != nil {
			return fmt.Errorf("server: restoring job %d: %w", j.ID, err)
		}
		jobs[j.ID] = &jobState{
			id:         j.ID,
			task:       task,
			totalBytes: j.TotalBytes,
			covered:    j.Covered,
			partials:   j.Partials,
			final:      j.Final,
			done:       j.Done,
		}
	}
	var pending []*workItem
	for _, it := range st.Pending {
		task, err := tasks.New(it.Task, it.Params)
		if err != nil {
			return fmt.Errorf("server: restoring pending item for job %d: %w", it.JobID, err)
		}
		if _, ok := jobs[it.JobID]; !ok {
			return fmt.Errorf("server: pending item references unknown job %d", it.JobID)
		}
		pending = append(pending, &workItem{
			jobID:  it.JobID,
			task:   task,
			input:  it.Input,
			resume: it.Resume,
			atomic: it.Atomic,
		})
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.jobs) != 0 || len(m.pending) != 0 {
		return ErrStateNotEmpty
	}
	m.jobs = jobs
	for _, it := range pending {
		it.seq = m.nextSeqLocked()
	}
	m.pending = pending
	if st.NextJobID > m.nextJobID {
		m.nextJobID = st.NextJobID
	}
	// With a WAL attached, the restored state must become the WAL's
	// snapshot before any record referencing it is appended: the replay
	// reducer only ever sees snapshot + log, so jobs restored from the
	// file alone would make later round/report/finish records fail replay
	// (the upgrade path of an existing -state deployment adding
	// -wal-dir). Compact inline — m.mu is held, so no append can slip in
	// between install and fold.
	if wl := m.cfg.WAL; wl != nil {
		if err := wl.Compact(func(w io.Writer) error { return m.walSnapshotLocked(w) }); err != nil {
			return fmt.Errorf("server: folding restored state into WAL: %w", err)
		}
	}
	return nil
}

// SaveStateFile writes a snapshot atomically: the JSON is staged in a
// temp file in the same directory, fsynced, renamed over path, and the
// directory is fsynced — a crash mid-save can never tear the snapshot
// or destroy the previous one (os.Create over the live file could do
// both).
func (m *Master) SaveStateFile(path string) error {
	return wal.WriteFileAtomic(path, func(w io.Writer) error { return m.SaveState(w) })
}
