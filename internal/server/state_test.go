package server

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"cwc/internal/protocol"
	"cwc/internal/tasks"
)

// autoResponder serves every assignment on a fake phone with plausible
// results for the counting tasks.
func autoResponder(f *fakePhone) {
	for {
		if err := f.conn.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
			return
		}
		msg, err := f.conn.Recv()
		if err != nil {
			return
		}
		if msg.Type != protocol.TypeAssign {
			continue
		}
		var ck tasks.Checkpoint
		if msg.Resume != nil {
			ck = *msg.Resume
		}
		task, err := tasks.New(msg.Task, msg.Params)
		if err != nil {
			continue
		}
		res, err := task.Process(context.Background(), msg.Input, &ck)
		if err != nil {
			continue
		}
		_ = f.conn.Send(&protocol.Message{Type: protocol.TypeResult,
			JobID: msg.JobID, Partition: msg.Partition,
			Result: res, ExecMs: 1, ProcessedKB: float64(len(msg.Input)) / 1024})
	}
}

func TestStateSaveRestoreAcrossMasters(t *testing.T) {
	// Master A: complete one job, leave a second pending.
	a := startMaster(t, Config{})
	fa := dialFake(t, a, "HTC G2", 806)
	go autoResponder(fa)

	id1, err := a.Submit(tasks.PrimeCount{}, []byte("2\n3\n4\n5\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := a.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	want1, ok := a.Result(id1)
	if !ok {
		t.Fatal("job 1 did not complete on master A")
	}
	id2, err := a.Submit(tasks.WordCount{Word: "sale"}, []byte("sale sale no\n"), false)
	if err != nil {
		t.Fatal(err)
	}

	var snap bytes.Buffer
	if err := a.SaveState(&snap); err != nil {
		t.Fatal(err)
	}
	a.Close()

	// Master B: restore and finish the pending job.
	b := startMaster(t, Config{})
	if err := b.LoadState(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	got1, ok := b.Result(id1)
	if !ok || string(got1) != string(want1) {
		t.Fatalf("restored result = %q %v, want %q", got1, ok, want1)
	}
	if b.PendingItems() != 1 {
		t.Fatalf("restored pending = %d, want 1", b.PendingItems())
	}
	fb := dialFake(t, b, "Nexus S", 1000)
	go autoResponder(fb)
	if _, err := b.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	got2, ok := b.Result(id2)
	if !ok || string(got2) != "2" {
		t.Fatalf("restored job result = %q %v, want 2", got2, ok)
	}

	// Job IDs continue past the snapshot's high-water mark.
	id3, err := b.Submit(tasks.MaxInt{}, []byte("1\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if id3 <= id2 {
		t.Errorf("new job ID %d not above restored %d", id3, id2)
	}
}

func TestLoadStateRejectsNonEmptyMaster(t *testing.T) {
	m := startMaster(t, Config{})
	if _, err := m.Submit(tasks.PrimeCount{}, []byte("2\n"), false); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := m.SaveState(&snap); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadState(bytes.NewReader(snap.Bytes())); err != ErrStateNotEmpty {
		t.Errorf("err = %v, want ErrStateNotEmpty", err)
	}
}

func TestLoadStateErrors(t *testing.T) {
	m := startMaster(t, Config{})
	if err := m.LoadState(strings.NewReader("{bad")); err == nil {
		t.Error("garbage state should error")
	}
	if err := m.LoadState(strings.NewReader(
		`{"jobs":[{"id":1,"task":"no-such-task"}],"pending":[]}`)); err == nil {
		t.Error("unknown task should error")
	}
	if err := m.LoadState(strings.NewReader(
		`{"jobs":[],"pending":[{"job_id":9,"task":"primecount","input":"AA=="}]}`)); err == nil {
		t.Error("orphan pending item should error")
	}
}

func TestSaveStatePreservesMigrationCheckpoints(t *testing.T) {
	m := startMaster(t, Config{})
	m.mu.Lock()
	m.jobs[1] = &jobState{id: 1, task: tasks.Blur{}, totalBytes: 100}
	m.pending = append(m.pending, &workItem{
		jobID:  1,
		task:   tasks.Blur{},
		input:  []byte("1 1\n1 2 3\n"),
		resume: &tasks.Checkpoint{Offset: 4, State: []byte(`{"row":0,"out":[]}`)},
		atomic: true,
	})
	m.nextJobID = 2
	m.mu.Unlock()

	var snap bytes.Buffer
	if err := m.SaveState(&snap); err != nil {
		t.Fatal(err)
	}
	b := startMaster(t, Config{})
	if err := b.LoadState(&snap); err != nil {
		t.Fatal(err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.pending) != 1 {
		t.Fatalf("pending = %d", len(b.pending))
	}
	it := b.pending[0]
	if it.resume == nil || it.resume.Offset != 4 || !it.atomic {
		t.Errorf("restored item = %+v", it)
	}
	if string(it.resume.State) != `{"row":0,"out":[]}` {
		t.Errorf("restored checkpoint state = %s", it.resume.State)
	}
}
