// Package server implements the CWC central server (master): the single
// lightweight machine that registers phones, measures their bandwidth,
// profiles task execution speed, schedules jobs with the core scheduler,
// ships executables and input partitions, collects and aggregates
// results, and handles both online and offline failures (§4–§6 of the
// paper; the prototype ran this as a multi-threaded Java NIO server on a
// small EC2 instance).
package server

import (
	"context"
	"crypto/subtle"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"cwc/internal/migrate"
	"cwc/internal/obs"
	"cwc/internal/predict"
	"cwc/internal/protocol"
	"cwc/internal/tasks"
	"cwc/internal/wal"
)

// Config tunes the master. Zero values get paper defaults.
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:0".
	Addr string
	// KeepalivePeriod between application-level pings (paper: 30 s).
	KeepalivePeriod time.Duration
	// KeepaliveTolerance is how many consecutive unanswered pings mark a
	// phone as failed offline (paper: 3).
	KeepaliveTolerance int
	// ProbeKB is the payload size of a bandwidth probe.
	ProbeKB int
	// DefaultBMsPerKB is assumed for phones whose bandwidth has not been
	// probed yet.
	DefaultBMsPerKB float64
	// Logger receives operational messages; nil discards them.
	Logger *obs.Logger
	// Metrics receives the master's instrumentation (and is what the
	// admin plane's /metrics serves). Nil gets a private registry, so
	// recording is always safe; share one registry with the WAL
	// (wal.Options.Metrics) to expose both through one endpoint.
	Metrics *obs.Registry
	// Tracer records task-lifecycle span events (submit → assign → exec →
	// checkpoint → report → aggregate, plus failure/requeue edges). Nil
	// gets a private 4096-event ring; attach a JSONL sink via
	// Tracer.SetSink to persist spans.
	Tracer *obs.Tracer
	// ObsAddr, when non-empty, binds the HTTP admin plane (GET /metrics,
	// /healthz, /statusz, /debug/sched, /debug/trace, /debug/timeline,
	// /debug/blackbox) on Start. Empty keeps the plane off:
	// observability is recorded either way, but nothing is served — and
	// workers are not asked for telemetry frames (the welcome's
	// Telemetry flag follows this setting), so an unobserved cluster
	// ships zero telemetry bytes.
	ObsAddr string
	// Blackbox, when set, is the master's black-box flight recorder:
	// /debug/blackbox serves its ring as JSONL, and the daemon dumps it
	// on panic/SIGQUIT. The master does not feed it directly — wire it
	// to the logger (Blackbox.TapLogger) and tracer (Blackbox.TeeTracer)
	// at construction, as cmd/cwc-server does.
	Blackbox *obs.Blackbox
	// Journal, when set, records every migration event (checkpoint
	// saved / resumed / completed) for audit and crash recovery.
	Journal *migrate.Journal
	// AuthToken, when non-empty, is the shared enrolment secret every
	// phone must present in its hello; mismatches are dropped before
	// registration. (The paper assumes enterprise trust; a deployment
	// still wants to keep strangers out of the pool.)
	AuthToken string
	// ChunkKB caps the input bytes carried per assignment frame; larger
	// partitions stream as assign_chunk frames. Default 4096 (4 MiB).
	ChunkKB int
	// DeadlineFactor scales the cost-model estimate
	// (E_j·b_i + l_ij·(b_i+c_ij)) into a per-assignment deadline. A phone
	// that blows its deadline is marked a straggler and its partition is
	// speculatively re-dispatched; at twice the deadline the phone's queue
	// is abandoned for the round. Default 4.
	DeadlineFactor float64
	// DeadlineFloor is the minimum assignment deadline regardless of the
	// estimate (early estimates are unreliable). Default 30 s.
	DeadlineFloor time.Duration
	// MaxItemRetries bounds how many times one work item may be re-queued
	// before it is dead-lettered instead (graceful degradation over
	// infinite re-queue). Negative disables the bound. Default 8.
	MaxItemRetries int
	// CheckpointEveryKB is the checkpoint-streaming policy announced to
	// workers in the welcome: stream a mid-execution checkpoint every
	// this many KB of processed input, bounding the work an offline
	// failure (or an abandoned straggler) can lose to roughly that
	// interval. Default 256; negative disables the announcement.
	CheckpointEveryKB int
	// CheckpointEvery additionally announces a wall-time streaming
	// interval (0: byte-driven only).
	CheckpointEvery time.Duration
	// ListenerHook, when set, wraps the TCP listener before the accept
	// loop uses it (fault injection, metrics).
	ListenerHook func(net.Listener) net.Listener
	// WAL, when set, is the master's write-ahead log: every durable
	// state change is appended to it, Submit acknowledgements are gated
	// on the append, and RecoverWAL replays it after a crash. See
	// internal/wal and wal.go in this package.
	WAL *wal.Log
	// PlugAware enables plug-aware predictive placement and proactive
	// drain: the master learns each phone's charge-window distribution
	// from observed plug/unplug events, caps placements at the phone's
	// predicted remaining window, and drains phones whose windows are
	// closing (see drain.go). Off, the estimator still learns (so
	// /statusz can show windows) but never influences placement.
	PlugAware bool
	// DrainQuantile is the charge-window survival quantile used both to
	// cap placements and to trigger drains: q=0.25 means "plan as if
	// this session ends where the shortest quarter of its history
	// ended". Lower is more conservative. Default 0.25.
	DrainQuantile float64
	// DrainLead is how far ahead of the predicted unplug (at
	// DrainQuantile) a proactive drain starts. Default 30 s.
	DrainLead time.Duration
	// DrainCheckPeriod is the drain monitor's polling interval.
	// Default 1 s.
	DrainCheckPeriod time.Duration
	// WindowMinSessions is how many completed charge sessions a phone
	// needs before its window predictions are trusted; below it the
	// estimator never vetoes. Default 3.
	WindowMinSessions int
	// FlapMergeWindow treats an unplug followed by a replug within this
	// duration as one continuing session (contact bounce, a brief cable
	// wiggle) rather than two. Negative disables merging. Default 1 s.
	FlapMergeWindow time.Duration
	// Listener, when set, is a pre-bound listener Start serves on instead
	// of dialing Addr. A promoted standby uses it to take over a port it
	// bound (and answered with fast refusals) long before promotion.
	Listener net.Listener
	// ReplicaSink, when set, receives every WAL record immediately after
	// it reaches the local log, for live streaming to hot standbys
	// (internal/replica). Ship is called with the master's state lock
	// held, so implementations must not block.
	ReplicaSink ReplicaSink
	// Role labels this master in /statusz: "primary" (default), or
	// whatever a promotion path sets (internal/replica uses
	// "promoted-primary").
	Role string
	// VerifyReplicas is the replicated-voting factor k: every partition is
	// executed on k disjoint phones and its result digests are put to a
	// quorum vote — agreement finalizes, disagreement penalizes the
	// losers' reputation, a tie triggers a tie-break re-execution on a
	// high-reputation phone. 1 (the default) disables voting entirely;
	// the fleet may deliver fewer than k executions when it is small
	// (the shortfall resolves like a tie).
	VerifyReplicas int
	// AuditRate, in (0,1], spot-checks that fraction of partitions when
	// voting is off (VerifyReplicas <= 1): the selected partitions are
	// silently re-executed on a second phone and the digests compared.
	// The first result is folded immediately (audits never delay jobs);
	// a mismatch escalates to a tie-break for blame. 0 disables audits.
	AuditRate float64
	// AuditSeed makes audit selection deterministic for a given key
	// stream (tests); 0 is a valid seed.
	AuditSeed int64
	// ReputationAlpha is the EWMA weight of one verification outcome in a
	// phone's result-integrity reputation (1.0 start; win → 1, loss → 0).
	// Default 0.4: three straight losses cross the default threshold.
	ReputationAlpha float64
	// ReputationThreshold quarantines a phone whose reputation falls
	// below it after a loss: the phone stays connected (keepalives,
	// /statusz visibility) but is never assigned work again — a hard
	// veto, unlike the advisory drain filter. Default 0.3; negative
	// disables quarantine (scores still tracked).
	ReputationThreshold float64
}

// ReplicaSink receives the master's WAL records for live replication.
type ReplicaSink interface {
	// Ship delivers one appended record (type + JSON payload). Called in
	// log order for every record that matters on replay; must not block.
	Ship(typ uint8, payload []byte)
	// Lag reports records accepted locally but not yet written to the
	// slowest attached standby (0 when none is attached).
	Lag() int64
}

func (c *Config) fill() {
	if c.KeepalivePeriod == 0 {
		c.KeepalivePeriod = 30 * time.Second
	}
	if c.KeepaliveTolerance == 0 {
		c.KeepaliveTolerance = 3
	}
	if c.ProbeKB == 0 {
		c.ProbeKB = 64
	}
	if c.DefaultBMsPerKB == 0 {
		c.DefaultBMsPerKB = 10
	}
	if c.Logger == nil {
		c.Logger = obs.Discard()
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Tracer == nil {
		c.Tracer = obs.NewTracer(4096)
	}
	if c.ChunkKB == 0 {
		c.ChunkKB = 4096
	}
	if c.DeadlineFactor == 0 {
		c.DeadlineFactor = 4
	}
	if c.DeadlineFloor == 0 {
		c.DeadlineFloor = 30 * time.Second
	}
	if c.MaxItemRetries == 0 {
		c.MaxItemRetries = 8
	}
	if c.CheckpointEveryKB == 0 {
		c.CheckpointEveryKB = 256
	}
	if c.DrainQuantile <= 0 || c.DrainQuantile >= 1 {
		c.DrainQuantile = 0.25
	}
	if c.DrainLead == 0 {
		c.DrainLead = 30 * time.Second
	}
	if c.DrainCheckPeriod == 0 {
		c.DrainCheckPeriod = time.Second
	}
	if c.WindowMinSessions <= 0 {
		c.WindowMinSessions = 3
	}
	if c.FlapMergeWindow == 0 {
		c.FlapMergeWindow = time.Second
	} else if c.FlapMergeWindow < 0 {
		c.FlapMergeWindow = 0
	}
	if c.Role == "" {
		c.Role = "primary"
	}
	if c.VerifyReplicas <= 0 {
		c.VerifyReplicas = 1
	}
	if c.AuditRate < 0 {
		c.AuditRate = 0
	} else if c.AuditRate > 1 {
		c.AuditRate = 1
	}
	if c.ReputationAlpha <= 0 || c.ReputationAlpha >= 1 {
		c.ReputationAlpha = 0.4
	}
	if c.ReputationThreshold == 0 {
		c.ReputationThreshold = 0.3
	}
}

// PhoneInfo is a registered phone's public state.
type PhoneInfo struct {
	ID       int
	Model    string
	CPUMHz   float64
	RAMMB    int
	BMsPerKB float64
	Alive    bool
}

// phoneState is the master's per-phone bookkeeping.
type phoneState struct {
	info PhoneInfo
	conn *protocol.Conn

	respCh  chan *protocol.Message // Result / Failure frames
	probeCh chan *protocol.Message // ProbeAck frames
	dead    chan struct{}          // closed exactly once on death

	mu          sync.Mutex
	deadClosed  bool // guarded by mu
	missedPings int  // guarded by mu
}

func (ps *phoneState) markDead() {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if !ps.deadClosed {
		// info.Alive is never mutated; liveness is derived from
		// deadClosed (see alive()) so info can be copied under m.mu
		// without touching ps.mu.
		ps.deadClosed = true
		close(ps.dead)
		ps.conn.Close()
	}
}

func (ps *phoneState) alive() bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return !ps.deadClosed
}

// workItem is a schedulable unit: a fresh job or migrated failed work.
type workItem struct {
	jobID  int // original submission this belongs to
	task   tasks.Task
	input  []byte
	resume *tasks.Checkpoint // non-nil: resume exactly (shipped whole)
	atomic bool
	// key identifies this exact byte range across re-dispatches: a
	// speculative copy carries the same key as its straggling original, and
	// the first result to arrive for a key wins (duplicates are dropped at
	// recording time). Zero means no copy can exist yet (fresh work); keyed
	// items are forced atomic so the key↔byte-range mapping stays 1:1.
	key int64
	// retries counts re-queues; past Config.MaxItemRetries the item is
	// dead-lettered instead of re-queued.
	retries int
	// partition is the partition number this byte range carried when it
	// was first dispatched. Partition numbers are minted at split time,
	// so without this field every re-dispatch (same-master re-queue or
	// post-failover recovery) would renumber the range to 0 and its
	// timeline rows — keyed on (job, partition) — would split in two.
	// Only meaningful for atomic re-queues; fresh splittable items are
	// numbered by slicePartitions.
	partition int
	// seq is the item's durable identity in the write-ahead log: a
	// round record names the fresh items it consumed by seq. Assigned
	// at creation, meaningful only while key is zero.
	seq int64
}

// remainingKB is the unprocessed input in KB (R_j for scheduling).
func (w *workItem) remainingKB() float64 {
	total := int64(len(w.input))
	if w.resume != nil {
		total -= w.resume.Offset
	}
	kb := float64(total) / 1024
	if kb < 0.001 {
		kb = 0.001 // schedulable epsilon for nearly-done work
	}
	return kb
}

// jobState tracks one submission to completion.
type jobState struct {
	id         int
	task       tasks.Task
	totalBytes int64
	covered    int64
	partials   [][]byte
	final      []byte
	done       bool
	// failure, when non-empty on a done job, is its terminal aggregation
	// error: the job can never produce a result (Result stays false;
	// JobFailure surfaces the error to the Submit caller).
	failure string
	// span is the job's trace ID, minted at Submit. Deterministic in the
	// job ID so WAL/state recovery reconstructs the same span and a
	// partition's history stays stitchable across a master crash.
	span string
}

// DeadLetter is a work item that exhausted its retry budget; it is
// surfaced on the master instead of being re-queued forever.
type DeadLetter struct {
	JobID   int
	Task    string
	Bytes   int
	Retries int
	Reason  string
}

// OfflineFailure is one structured offline-failure event: why a phone was
// declared dead (the paper folds every cause into "offline"; operators
// want to tell a corrupt stream from a silent one).
type OfflineFailure struct {
	PhoneID int
	Reason  string // "keepalive", "corrupt-frame", "conn-lost", "bye", "send-failed", "rejoined"
	Detail  string
}

// attemptRec pairs an issued dispatch attempt with its assignment so a
// late or replayed report (straggler that finished after abandonment, a
// reconnecting worker flushing its unsent buffer) can still be credited.
type attemptRec struct {
	a  assignment
	ps *phoneState
	// live is true while a dispatch goroutine is waiting on the phone's
	// respCh for this attempt; the read loop resolves non-live attempts
	// directly so stale reports never clog a channel nobody drains.
	live bool
}

// Master is the central server.
type Master struct {
	cfg Config
	ln  net.Listener

	mu          sync.Mutex
	phones      map[int]*phoneState // guarded by mu
	nextPhoneID int                 // guarded by mu
	nextJobID   int                 // guarded by mu
	pending     []*workItem         // guarded by mu
	jobs        map[int]*jobState   // guarded by mu
	est         *predict.Estimator  // guarded by mu
	phoneWait   chan struct{}       // guarded by mu; broadcast on registration

	// accepted, hello not yet processed
	handshaking map[*protocol.Conn]struct{} // guarded by mu

	nextKey     int64                 // guarded by mu
	nextAttempt int64                 // guarded by mu
	nextItemSeq int64                 // guarded by mu
	completed   map[int64]bool        // guarded by mu; keys whose result has been recorded
	speculated  map[int64]bool        // guarded by mu; keys with a speculative copy issued
	attempts    map[int64]*attemptRec // guarded by mu
	// settledFailures marks dispatch attempts whose failure has been
	// folded, so a replayed report (a phone that replugged before its
	// failure finished processing) cannot re-queue the same attempt
	// twice. Reset each round; later replays hit the unknown-attempt
	// drop in resolveDetached instead.
	settledFailures map[int64]bool   // guarded by mu
	deadLetters     []DeadLetter     // guarded by mu
	offline         []OfflineFailure // guarded by mu
	// streamed holds the freshest mid-execution checkpoint streamed for
	// each open byte-range key; any requeue of the key folds it into the
	// item's resume state (see latestResumeLocked). Entries are dropped
	// when the key settles.
	streamed  map[int64]*tasks.Checkpoint // guarded by mu
	ckptFolds int                         // guarded by mu; streamed checkpoints accepted (monotonic, for tests/ops)

	// workerStats is each phone's published self-metering totals,
	// monotone across worker restarts: workerStatLast is the newest raw
	// snapshot from the current worker incarnation, workerStatBase the
	// folded sum of every prior incarnation, and workerStats = base +
	// last (what /statusz and the per-phone gauges publish). See
	// ingestWorkerStats.
	workerStats    map[int]protocol.WorkerStats // guarded by mu
	workerStatBase map[int]protocol.WorkerStats // guarded by mu
	workerStatLast map[int]protocol.WorkerStats // guarded by mu

	// windows learns each phone's charge-window distribution from
	// observed plug/unplug events (internally synchronized; queried
	// without m.mu).
	windows *predict.WindowEstimator
	// draining is the proactive-drain ledger: phone ID -> drainStarted
	// or drainCompleted. Entries exclude the phone from placement until
	// a new charge session clears them; WAL-logged (walRecDrain).
	draining map[int]string // guarded by mu

	// epoch is the fencing epoch (walRecEpoch): 0 until replication
	// assigns one, then strictly monotone across regimes. Report frames
	// stamped with a different non-zero epoch are rejected (see fenced).
	epoch int64 // guarded by mu

	// Result-integrity state (verify.go). votes holds the open vote
	// groups by speculation key; reputation is each phone's EWMA
	// integrity score (absent: 1.0); quarantined phones are hard-vetoed
	// from placement. reputation and quarantined are WAL-logged
	// (walRecReputation) so they survive recovery and failover.
	votes       map[int64]*voteGroup // guarded by mu
	reputation  map[int]float64      // guarded by mu
	quarantined map[int]bool         // guarded by mu
	// walIdentity maps every issued phone ID to the model that claimed
	// it (walRecRegister), so a rejoin after master recovery keeps its
	// ID — and with it the reputation and quarantine the WAL restored.
	walIdentity map[int]string // guarded by mu
	// roundActive is true while RunRound owns job aggregation (its end-
	// of-round sweep); outside a round, a vote or tie-break resolving the
	// last open range aggregates the job inline (finishJobLocked).
	roundActive bool // guarded by mu

	closed  bool // guarded by mu
	wg      sync.WaitGroup
	stopped chan struct{}

	// rounds counts completed scheduling rounds; lastSched is the most
	// recent round's packing decision paired with what actually happened
	// (served by /debug/sched).
	rounds    int            // guarded by mu
	lastSched *SchedSnapshot // guarded by mu

	// slos tracks the master's rolling-window service-level objectives
	// (internally synchronized; see registerMasterSLOs for the catalog).
	slos *obs.SLOSet

	obsLn net.Listener // admin plane listener (nil when ObsAddr is unset)
}

// New creates a master; call Start to listen.
func New(cfg Config) *Master {
	cfg.fill()
	registerMasterMetrics(cfg.Metrics)
	// fill clamps both knobs into the estimator's valid range, so the
	// constructor cannot fail here.
	windows, err := predict.NewWindowEstimator(
		cfg.WindowMinSessions, float64(cfg.FlapMergeWindow)/float64(time.Millisecond))
	if err != nil {
		panic(fmt.Sprintf("server: window estimator: %v", err))
	}
	return &Master{
		cfg:             cfg,
		handshaking:     map[*protocol.Conn]struct{}{},
		phones:          map[int]*phoneState{},
		jobs:            map[int]*jobState{},
		nextJobID:       1,
		completed:       map[int64]bool{},
		speculated:      map[int64]bool{},
		attempts:        map[int64]*attemptRec{},
		settledFailures: map[int64]bool{},
		streamed:        map[int64]*tasks.Checkpoint{},
		workerStats:     map[int]protocol.WorkerStats{},
		workerStatBase:  map[int]protocol.WorkerStats{},
		workerStatLast:  map[int]protocol.WorkerStats{},
		votes:           map[int64]*voteGroup{},
		reputation:      map[int]float64{},
		quarantined:     map[int]bool{},
		walIdentity:     map[int]string{},
		windows:         windows,
		draining:        map[int]string{},
		slos:            registerMasterSLOs(),
		phoneWait:       make(chan struct{}),
		stopped:         make(chan struct{}),
	}
}

// DeadLetters returns the work items that exhausted their retry budget.
func (m *Master) DeadLetters() []DeadLetter {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]DeadLetter, len(m.deadLetters))
	copy(out, m.deadLetters)
	return out
}

// OfflineFailures returns the structured offline-failure event log.
func (m *Master) OfflineFailures() []OfflineFailure {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]OfflineFailure, len(m.offline))
	copy(out, m.offline)
	return out
}

// recordOffline logs a structured offline-failure event.
func (m *Master) recordOffline(phoneID int, reason, detail string) {
	m.mu.Lock()
	m.offline = append(m.offline, OfflineFailure{PhoneID: phoneID, Reason: reason, Detail: detail})
	m.mu.Unlock()
	m.cfg.Metrics.Counter("cwc_offline_failures_total", "reason", reason).Inc()
}

// Start begins listening and accepting phones.
func (m *Master) Start() error {
	ln := m.cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", m.cfg.Addr)
		if err != nil {
			return fmt.Errorf("server: listen %s: %w", m.cfg.Addr, err)
		}
	}
	if m.cfg.ListenerHook != nil {
		ln = m.cfg.ListenerHook(ln)
	}
	m.ln = ln
	m.wg.Add(1)
	go m.acceptLoop()
	if m.cfg.PlugAware {
		m.wg.Add(1)
		go m.drainMonitor()
	}
	if m.cfg.ObsAddr != "" {
		if err := m.serveObs(m.cfg.ObsAddr); err != nil {
			ln.Close()
			return err
		}
	}
	return nil
}

// Addr returns the bound listen address.
func (m *Master) Addr() string {
	if m.ln == nil {
		return ""
	}
	return m.ln.Addr().String()
}

// Close shuts the master down: says goodbye to phones and stops accepting.
func (m *Master) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	phones := make([]*phoneState, 0, len(m.phones))
	for _, ps := range m.phones {
		phones = append(phones, ps)
	}
	pending := make([]*protocol.Conn, 0, len(m.handshaking))
	for c := range m.handshaking {
		pending = append(pending, c)
	}
	m.mu.Unlock()

	close(m.stopped)
	if m.ln != nil {
		m.ln.Close()
	}
	if m.obsLn != nil {
		m.obsLn.Close()
	}
	for _, c := range pending {
		c.Close() // cut half-finished handshakes short
	}
	for _, ps := range phones {
		_ = ps.conn.Send(&protocol.Message{Type: protocol.TypeBye})
		ps.markDead()
	}
	m.wg.Wait()
}

// Kill is Close without the courtesy: no bye frames, no orderly
// teardown — the closest an in-process master gets to SIGKILL.
// Listeners and connections drop abruptly, goroutines are awaited, and
// the WAL (owned by the caller) is left exactly as the last append left
// it, so a failover harness can kill a primary mid-round and later
// resurrect it from that log.
func (m *Master) Kill() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	phones := make([]*phoneState, 0, len(m.phones))
	for _, ps := range m.phones {
		phones = append(phones, ps)
	}
	pending := make([]*protocol.Conn, 0, len(m.handshaking))
	for c := range m.handshaking {
		pending = append(pending, c)
	}
	m.mu.Unlock()

	close(m.stopped)
	if m.ln != nil {
		m.ln.Close()
	}
	if m.obsLn != nil {
		m.obsLn.Close()
	}
	for _, c := range pending {
		c.Close()
	}
	for _, ps := range phones {
		ps.markDead()
	}
	m.wg.Wait()
}

func (m *Master) acceptLoop() {
	defer m.wg.Done()
	for {
		raw, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.handlePhone(protocol.NewConn(raw))
		}()
	}
}

// helloTimeout bounds how long an accepted connection may take to
// deliver a complete hello. Without it a dialer that stalls mid-frame —
// or a hello whose length prefix was corrupted in transit into a huge
// frame — parks this goroutine forever and survives Close.
const helloTimeout = 10 * time.Second

// handlePhone performs registration and runs the read loop + keepaliver.
func (m *Master) handlePhone(conn *protocol.Conn) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		conn.Close()
		return
	}
	m.handshaking[conn] = struct{}{}
	m.mu.Unlock()
	_ = conn.SetReadDeadline(time.Now().Add(helloTimeout))
	hello, err := conn.Recv()
	m.mu.Lock()
	delete(m.handshaking, conn)
	m.mu.Unlock()
	if err != nil || hello.Type != protocol.TypeHello || hello.CPUMHz <= 0 {
		conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	if m.cfg.AuthToken != "" && !tokenMatch(hello.Token, m.cfg.AuthToken) {
		m.cfg.Logger.With("addr", conn.RemoteAddr()).Warnf("rejecting phone: bad enrolment token")
		conn.Close()
		return
	}

	m.mu.Lock()
	var id int
	var prior *phoneState
	old, haveLive := m.phones[hello.PhoneID]
	switch {
	case hello.Rejoin && haveLive && old.info.Model == hello.Model:
		// Reconnection: the phone resumes its prior identity. Bandwidth
		// estimates (and the estimator's per-phone refinements, keyed by
		// ID) survive the reconnect; the old connection state is retired.
		// The model must match: after a failover two different phones can
		// legitimately believe they hold the same ID (the old regime's
		// grant vs the new master's), and an unchecked takeover lets them
		// steal the registration from each other forever.
		id = hello.PhoneID
		prior = old
	case hello.Rejoin && !haveLive && hello.Model != "" && m.walIdentity[hello.PhoneID] == hello.Model:
		// Rejoin to a recovered (or promoted) master: no live connection
		// holds the ID, but the WAL vouches that this model was issued
		// it. Honoring the claim keeps the phone's durable reputation and
		// quarantine state (walRecReputation) bound to the phone instead
		// of evaporating with a freshly issued ID.
		id = hello.PhoneID
	default:
		id = m.nextPhoneID
		m.nextPhoneID++
		m.walIdentity[id] = hello.Model
		// Durable (and replicated) so no later regime — a restarted
		// master or a promoted standby — can ever reissue this ID while
		// the phone still holds it.
		m.walAppend(walRecRegister, walRegisterRec{PhoneID: id, Model: hello.Model})
	}
	ps := &phoneState{
		info: PhoneInfo{
			ID:       id,
			Model:    hello.Model,
			CPUMHz:   hello.CPUMHz,
			RAMMB:    hello.RAMMB,
			BMsPerKB: m.cfg.DefaultBMsPerKB,
			Alive:    true,
		},
		conn:    conn,
		respCh:  make(chan *protocol.Message, 4),
		probeCh: make(chan *protocol.Message, 1),
		dead:    make(chan struct{}),
	}
	if prior != nil {
		ps.info.BMsPerKB = prior.info.BMsPerKB
	}
	m.phones[id] = ps
	epoch := m.epoch
	waiters := m.phoneWait
	m.phoneWait = make(chan struct{})
	m.mu.Unlock()
	if prior != nil && prior.alive() {
		m.recordOffline(id, "rejoined", "superseded by a reconnection")
		prior.markDead()
	}
	// Feed the charge-window estimator: a fresh registration opens a
	// session; a rejoin either continues one (duplicate plug, ignored)
	// or reopens after an observed unplug (flap-merged when quick).
	m.observePlug(id)
	close(waiters) // wake WaitForPhones

	ckptKB := m.cfg.CheckpointEveryKB
	if ckptKB < 0 {
		ckptKB = 0
	}
	if err := conn.Send(&protocol.Message{
		Type:        protocol.TypeWelcome,
		PhoneID:     id,
		KeepaliveMs: int(m.cfg.KeepalivePeriod / time.Millisecond),
		CkptEveryKB: ckptKB,
		CkptEveryMs: int(m.cfg.CheckpointEvery / time.Millisecond),
		Epoch:       epoch,
		// Telemetry opt-in follows the admin plane: a master nobody can
		// observe asks for no telemetry, so the unobserved cluster ships
		// zero extra frames and zero extra bytes.
		Telemetry: m.cfg.ObsAddr != "",
	}); err != nil {
		ps.markDead()
		return
	}
	plog := m.cfg.Logger.With("phone", id)
	if prior != nil {
		m.cfg.Metrics.Counter("cwc_phones_reconnected_total").Inc()
		plog.Infof("reconnected: %s %.0f MHz", hello.Model, hello.CPUMHz)
	} else {
		m.cfg.Metrics.Counter("cwc_phones_registered_total").Inc()
		plog.Infof("registered: %s %.0f MHz", hello.Model, hello.CPUMHz)
	}

	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.keepalive(ps)
	}()
	m.readLoop(ps)
}

// readLoop routes incoming frames for one phone until its death.
func (m *Master) readLoop(ps *phoneState) {
	for {
		msg, err := ps.conn.Recv()
		if err != nil {
			m.cfg.Metrics.Counter("cwc_conn_errors_total").Inc()
			// A corrupt frame means framing is lost on an otherwise-open
			// connection; it is handled exactly like a missed-keepalive
			// offline failure (the in-flight partition re-enters the pool
			// via the dispatcher's dead-phone path), but recorded as its
			// own structured event.
			if errors.Is(err, protocol.ErrCorrupt) {
				m.cfg.Logger.With("phone", ps.info.ID).Warnf("corrupt frame: %v; offline failure", err)
				m.recordOffline(ps.info.ID, "corrupt-frame", err.Error())
			} else {
				m.cfg.Logger.With("phone", ps.info.ID).Warnf("connection lost: %v", err)
				m.recordOffline(ps.info.ID, "conn-lost", err.Error())
			}
			ps.markDead()
			m.observeUnplug(ps)
			return
		}
		m.cfg.Metrics.Counter("cwc_frames_received_total", "type", frameLabel(msg.Type)).Inc()
		if msg.Stats != nil {
			m.ingestWorkerStats(ps.info.ID, msg.Stats)
		}
		switch msg.Type {
		case protocol.TypePong:
			ps.mu.Lock()
			ps.missedPings = 0
			ps.mu.Unlock()
			m.sloObserve(sloKeepalive, true)
		case protocol.TypeTelemetry:
			// Deliberately not fenced: a worker's buffered span events
			// must survive a standby promotion — each event carries the
			// epoch it was minted under instead of the frame.
			m.foldTelemetry(ps, msg)
		case protocol.TypeProbeAck:
			select {
			case ps.probeCh <- msg:
			default:
			}
		case protocol.TypeCheckpoint:
			if m.fenced(msg) {
				m.rejectFenced(ps, msg)
				continue
			}
			// Streamed mid-execution checkpoints are folded here, never
			// routed to respCh: dispatchers only consume result/failure
			// frames, and a checkpoint must not displace them.
			m.recordStreamedCheckpoint(ps, msg)
		case protocol.TypeResult, protocol.TypeFailure:
			if m.fenced(msg) {
				m.rejectFenced(ps, msg)
				continue
			}
			// Reports for attempts no dispatcher is waiting on — a
			// straggler finishing after abandonment, a reconnected worker
			// flushing its unsent buffer — are resolved here so they never
			// clog a respCh nobody drains.
			if msg.Attempt != 0 && m.resolveDetached(msg) {
				continue
			}
			select {
			case ps.respCh <- msg:
			case <-m.stopped:
				return
			}
		case protocol.TypeBye:
			m.cfg.Logger.With("phone", ps.info.ID).Infof("unplugged while idle")
			m.recordOffline(ps.info.ID, "bye", "orderly unplug")
			ps.markDead()
			m.observeUnplug(ps)
			return
		default:
			// A frame the master never expects from a worker (hello after
			// registration, an echo of a server->worker type, a frame from
			// a newer peer). Dropped for forward compatibility, but counted
			// and logged so a chattering peer is visible in /metrics.
			m.cfg.Metrics.Counter("cwc_frames_unexpected_total", "type", frameLabel(msg.Type)).Inc()
			m.cfg.Logger.With("phone", ps.info.ID, "type", string(msg.Type)).
				Debugf("ignoring unexpected frame")
		}
	}
}

// frameLabel maps a wire frame type to a bounded metric label: known
// types keep their name, anything else collapses to "other" so a
// chattering or malicious phone cannot mint unbounded label values and
// grow the registry without limit.
func frameLabel(t protocol.Type) string {
	switch t {
	case protocol.TypeHello:
		return string(protocol.TypeHello)
	case protocol.TypeWelcome:
		return string(protocol.TypeWelcome)
	case protocol.TypeProbe:
		return string(protocol.TypeProbe)
	case protocol.TypeProbeAck:
		return string(protocol.TypeProbeAck)
	case protocol.TypeAssign:
		return string(protocol.TypeAssign)
	case protocol.TypeAssignChunk:
		return string(protocol.TypeAssignChunk)
	case protocol.TypeResult:
		return string(protocol.TypeResult)
	case protocol.TypeFailure:
		return string(protocol.TypeFailure)
	case protocol.TypePing:
		return string(protocol.TypePing)
	case protocol.TypePong:
		return string(protocol.TypePong)
	case protocol.TypeBye:
		return string(protocol.TypeBye)
	case protocol.TypeCheckpoint:
		return string(protocol.TypeCheckpoint)
	case protocol.TypeCheckpointAck:
		return string(protocol.TypeCheckpointAck)
	case protocol.TypeDrain:
		return string(protocol.TypeDrain)
	case protocol.TypeTelemetry:
		return string(protocol.TypeTelemetry)
	default:
		return "other"
	}
}

// Epoch returns the master's current fencing epoch (0 until replication
// assigns one).
func (m *Master) Epoch() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// BumpEpoch durably advances the fencing epoch by one. The record is
// WAL-logged (and shipped to standbys) before the new epoch takes
// effect, so no crash can resurrect a regime that shares an epoch with
// this one. Called exactly twice in a master's life cycle: once at
// primary startup when replication is enabled (0 → 1), and once per
// standby promotion (N → N+1). A plain restart never bumps — a
// resurrected old primary stays at the epoch it last persisted, strictly
// below its promoted standby's, which is what makes its frames fenceable.
func (m *Master) BumpEpoch() (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	next := m.epoch + 1
	if err := m.walAppendErr(walRecEpoch, walEpochRec{Epoch: next}); err != nil {
		return 0, fmt.Errorf("server: persisting epoch %d: %w", next, err)
	}
	m.epoch = next
	m.cfg.Metrics.Gauge("cwc_epoch").Set(float64(next))
	m.cfg.Tracer.SetEpoch(next)
	m.cfg.Tracer.Record(obs.SpanEvent{
		Kind: obs.KindPromote, Job: -1, Partition: -1, Phone: -1,
		Detail: fmt.Sprintf("epoch %d -> %d", next-1, next), Epoch: next,
	})
	return next, nil
}

// fenced reports whether a report-carrying frame belongs to another
// master regime and must be rejected. A frame stamped with a different
// non-zero epoch was issued under a different primary: its attempt
// numbering restarted at promotion, so accepting it could pair a stale
// report with a fresh attempt — or let a resurrected old primary keep
// collecting results it no longer owns. Epoch-less frames (replication
// off, legacy workers) pass; the attempt/key dedupe still guards them.
func (m *Master) fenced(msg *protocol.Message) bool {
	if msg.Epoch == 0 {
		return false
	}
	m.mu.Lock()
	cur := m.epoch
	m.mu.Unlock()
	return msg.Epoch != cur
}

// rejectFenced drops a frame from another epoch: counted, logged, never
// routed to dispatchers or folds. A frame from a *newer* epoch also
// means this master itself is stale (a resurrected old primary watching
// the fleet move on) — worth the louder log line.
func (m *Master) rejectFenced(ps *phoneState, msg *protocol.Message) {
	m.cfg.Metrics.Counter("cwc_frames_fenced_total", "type", frameLabel(msg.Type)).Inc()
	cur := m.Epoch()
	l := m.cfg.Logger.With("phone", ps.info.ID, "type", string(msg.Type),
		"frame_epoch", msg.Epoch, "epoch", cur)
	if msg.Epoch > cur {
		l.Errorf("fenced frame from a newer epoch: this master has been superseded")
	} else {
		l.Warnf("fenced frame from a stale epoch")
	}
}

// resolveDetached credits a report whose attempt has no waiting
// dispatcher (first-result-wins: a late straggler result still counts if
// its key is uncompleted). Returns false when a live dispatcher owns the
// attempt, in which case the frame must flow to respCh as usual.
func (m *Master) resolveDetached(msg *protocol.Message) bool {
	m.mu.Lock()
	rec, ok := m.attempts[msg.Attempt]
	if ok && rec.live {
		m.mu.Unlock()
		return false
	}
	delete(m.attempts, msg.Attempt)
	// Snapshot the estimator while the lock is held: it is lazily
	// created under m.mu and this path runs on read-loop goroutines.
	est := m.est
	m.mu.Unlock()
	if !ok {
		m.cfg.Logger.With("attempt", msg.Attempt).Warnf("dropping report for unknown attempt")
		return true
	}
	if msg.Type == protocol.TypeResult {
		m.cfg.Logger.With("job", rec.a.item.jobID, "partition", rec.a.partition,
			"attempt", msg.Attempt).Infof("late result credited")
		// Round results are traced by the dispatcher's timeline; a
		// detached credit happens outside any round, so record it here or
		// the partition's timeline ends without its master-side fold —
		// exactly the partitions that survived a failover via replay.
		m.cfg.Tracer.Record(obs.SpanEvent{
			Span: m.spanForJob(rec.a.item.jobID), Kind: obs.KindResult,
			Job: rec.a.item.jobID, Partition: rec.a.partition,
			Phone: rec.ps.info.ID, Detail: "late",
		})
		m.recordResult(rec.a, msg, est, rec.ps)
	}
	// A late failure needs no action: the speculative copy issued at the
	// deadline already carries the work.
	return true
}

// keepalive implements the paper's offline-failure detector: a ping every
// period, death after KeepaliveTolerance consecutive misses. Each wait is
// jittered by ±10% so hundreds of phones registered in a burst do not
// ping in lockstep forever.
func (m *Master) keepalive(ps *phoneState) {
	rng := rand.New(rand.NewSource(int64(ps.info.ID) + 1))
	timer := time.NewTimer(keepaliveJitter(m.cfg.KeepalivePeriod, rng))
	defer timer.Stop()
	var seq uint64
	for {
		select {
		case <-timer.C:
			ps.mu.Lock()
			ps.missedPings++
			missed := ps.missedPings
			ps.mu.Unlock()
			if missed > 1 {
				// The previous ping went unanswered for a full period.
				m.cfg.Metrics.Counter("cwc_keepalive_misses_total").Inc()
				m.sloObserve(sloKeepalive, false)
			}
			if missed > m.cfg.KeepaliveTolerance {
				m.cfg.Logger.With("phone", ps.info.ID).Warnf("missed %d keepalives: offline failure",
					m.cfg.KeepaliveTolerance)
				m.recordOffline(ps.info.ID, "keepalive",
					fmt.Sprintf("%d consecutive misses", m.cfg.KeepaliveTolerance))
				ps.markDead()
				m.observeUnplug(ps)
				return
			}
			seq++
			m.cfg.Metrics.Counter("cwc_keepalive_pings_total").Inc()
			if err := ps.conn.Send(&protocol.Message{Type: protocol.TypePing, Seq: seq}); err != nil {
				m.recordOffline(ps.info.ID, "send-failed", err.Error())
				ps.markDead()
				m.observeUnplug(ps)
				return
			}
			timer.Reset(keepaliveJitter(m.cfg.KeepalivePeriod, rng))
		case <-ps.dead:
			return
		case <-m.stopped:
			return
		}
	}
}

// keepaliveJitter spreads a keepalive period uniformly over ±10%.
func keepaliveJitter(period time.Duration, rng *rand.Rand) time.Duration {
	return period + time.Duration((rng.Float64()*0.2-0.1)*float64(period))
}

// WaitForPhones blocks until at least n phones are registered and alive.
func (m *Master) WaitForPhones(ctx context.Context, n int) error {
	for {
		m.mu.Lock()
		alive := 0
		for _, ps := range m.phones {
			if ps.alive() {
				alive++
			}
		}
		ch := m.phoneWait
		m.mu.Unlock()
		if alive >= n {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return fmt.Errorf("server: waiting for %d phones: %w", n, ctx.Err())
		}
	}
}

// Phones lists registered phones, sorted by ID.
func (m *Master) Phones() []PhoneInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PhoneInfo, 0, len(m.phones))
	for _, ps := range m.phones {
		info := ps.info
		info.Alive = ps.alive()
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// alivePhones snapshots the live fleet.
func (m *Master) alivePhones() []*phoneState {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*phoneState
	for _, ps := range m.phones {
		if ps.alive() {
			out = append(out, ps)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].info.ID < out[j].info.ID })
	return out
}

// ErrNoPhones is returned by operations that need at least one live phone.
var ErrNoPhones = errors.New("server: no phones available")

// tokenMatch compares enrolment tokens in constant time.
func tokenMatch(got, want string) bool {
	return subtle.ConstantTimeCompare([]byte(got), []byte(want)) == 1
}
