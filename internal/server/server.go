// Package server implements the CWC central server (master): the single
// lightweight machine that registers phones, measures their bandwidth,
// profiles task execution speed, schedules jobs with the core scheduler,
// ships executables and input partitions, collects and aggregates
// results, and handles both online and offline failures (§4–§6 of the
// paper; the prototype ran this as a multi-threaded Java NIO server on a
// small EC2 instance).
package server

import (
	"context"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"
	"time"

	"cwc/internal/migrate"
	"cwc/internal/predict"
	"cwc/internal/protocol"
	"cwc/internal/tasks"
)

// Config tunes the master. Zero values get paper defaults.
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:0".
	Addr string
	// KeepalivePeriod between application-level pings (paper: 30 s).
	KeepalivePeriod time.Duration
	// KeepaliveTolerance is how many consecutive unanswered pings mark a
	// phone as failed offline (paper: 3).
	KeepaliveTolerance int
	// ProbeKB is the payload size of a bandwidth probe.
	ProbeKB int
	// DefaultBMsPerKB is assumed for phones whose bandwidth has not been
	// probed yet.
	DefaultBMsPerKB float64
	// Logger receives operational messages; nil discards them.
	Logger *log.Logger
	// Journal, when set, records every migration event (checkpoint
	// saved / resumed / completed) for audit and crash recovery.
	Journal *migrate.Journal
	// AuthToken, when non-empty, is the shared enrolment secret every
	// phone must present in its hello; mismatches are dropped before
	// registration. (The paper assumes enterprise trust; a deployment
	// still wants to keep strangers out of the pool.)
	AuthToken string
	// ChunkKB caps the input bytes carried per assignment frame; larger
	// partitions stream as assign_chunk frames. Default 4096 (4 MiB).
	ChunkKB int
}

func (c *Config) fill() {
	if c.KeepalivePeriod == 0 {
		c.KeepalivePeriod = 30 * time.Second
	}
	if c.KeepaliveTolerance == 0 {
		c.KeepaliveTolerance = 3
	}
	if c.ProbeKB == 0 {
		c.ProbeKB = 64
	}
	if c.DefaultBMsPerKB == 0 {
		c.DefaultBMsPerKB = 10
	}
	if c.Logger == nil {
		c.Logger = log.New(io.Discard, "", 0)
	}
	if c.ChunkKB == 0 {
		c.ChunkKB = 4096
	}
}

// PhoneInfo is a registered phone's public state.
type PhoneInfo struct {
	ID       int
	Model    string
	CPUMHz   float64
	RAMMB    int
	BMsPerKB float64
	Alive    bool
}

// phoneState is the master's per-phone bookkeeping.
type phoneState struct {
	info PhoneInfo
	conn *protocol.Conn

	respCh  chan *protocol.Message // Result / Failure frames
	probeCh chan *protocol.Message // ProbeAck frames
	dead    chan struct{}          // closed exactly once on death

	mu          sync.Mutex
	deadClosed  bool
	missedPings int
}

func (ps *phoneState) markDead() {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if !ps.deadClosed {
		// info.Alive is never mutated; liveness is derived from
		// deadClosed (see alive()) so info can be copied under m.mu
		// without touching ps.mu.
		ps.deadClosed = true
		close(ps.dead)
		ps.conn.Close()
	}
}

func (ps *phoneState) alive() bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return !ps.deadClosed
}

// workItem is a schedulable unit: a fresh job or migrated failed work.
type workItem struct {
	jobID  int // original submission this belongs to
	task   tasks.Task
	input  []byte
	resume *tasks.Checkpoint // non-nil: resume exactly (shipped whole)
	atomic bool
}

// remainingKB is the unprocessed input in KB (R_j for scheduling).
func (w *workItem) remainingKB() float64 {
	total := int64(len(w.input))
	if w.resume != nil {
		total -= w.resume.Offset
	}
	kb := float64(total) / 1024
	if kb < 0.001 {
		kb = 0.001 // schedulable epsilon for nearly-done work
	}
	return kb
}

// jobState tracks one submission to completion.
type jobState struct {
	id         int
	task       tasks.Task
	totalBytes int64
	covered    int64
	partials   [][]byte
	final      []byte
	done       bool
}

// Master is the central server.
type Master struct {
	cfg Config
	ln  net.Listener

	mu          sync.Mutex
	phones      map[int]*phoneState
	nextPhoneID int
	nextJobID   int
	pending     []*workItem
	jobs        map[int]*jobState
	est         *predict.Estimator
	phoneWait   chan struct{} // broadcast on registration

	closed  bool
	wg      sync.WaitGroup
	stopped chan struct{}
}

// New creates a master; call Start to listen.
func New(cfg Config) *Master {
	cfg.fill()
	return &Master{
		cfg:       cfg,
		phones:    map[int]*phoneState{},
		jobs:      map[int]*jobState{},
		nextJobID: 1,
		phoneWait: make(chan struct{}),
		stopped:   make(chan struct{}),
	}
}

// Start begins listening and accepting phones.
func (m *Master) Start() error {
	ln, err := net.Listen("tcp", m.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", m.cfg.Addr, err)
	}
	m.ln = ln
	m.wg.Add(1)
	go m.acceptLoop()
	return nil
}

// Addr returns the bound listen address.
func (m *Master) Addr() string {
	if m.ln == nil {
		return ""
	}
	return m.ln.Addr().String()
}

// Close shuts the master down: says goodbye to phones and stops accepting.
func (m *Master) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	phones := make([]*phoneState, 0, len(m.phones))
	for _, ps := range m.phones {
		phones = append(phones, ps)
	}
	m.mu.Unlock()

	close(m.stopped)
	if m.ln != nil {
		m.ln.Close()
	}
	for _, ps := range phones {
		_ = ps.conn.Send(&protocol.Message{Type: protocol.TypeBye})
		ps.markDead()
	}
	m.wg.Wait()
}

func (m *Master) acceptLoop() {
	defer m.wg.Done()
	for {
		raw, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.handlePhone(protocol.NewConn(raw))
		}()
	}
}

// handlePhone performs registration and runs the read loop + keepaliver.
func (m *Master) handlePhone(conn *protocol.Conn) {
	hello, err := conn.Recv()
	if err != nil || hello.Type != protocol.TypeHello || hello.CPUMHz <= 0 {
		conn.Close()
		return
	}
	if m.cfg.AuthToken != "" && !tokenMatch(hello.Token, m.cfg.AuthToken) {
		m.cfg.Logger.Printf("rejecting phone from %s: bad enrolment token", conn.RemoteAddr())
		conn.Close()
		return
	}

	m.mu.Lock()
	id := m.nextPhoneID
	m.nextPhoneID++
	ps := &phoneState{
		info: PhoneInfo{
			ID:       id,
			Model:    hello.Model,
			CPUMHz:   hello.CPUMHz,
			RAMMB:    hello.RAMMB,
			BMsPerKB: m.cfg.DefaultBMsPerKB,
			Alive:    true,
		},
		conn:    conn,
		respCh:  make(chan *protocol.Message, 4),
		probeCh: make(chan *protocol.Message, 1),
		dead:    make(chan struct{}),
	}
	m.phones[id] = ps
	waiters := m.phoneWait
	m.phoneWait = make(chan struct{})
	m.mu.Unlock()
	close(waiters) // wake WaitForPhones

	if err := conn.Send(&protocol.Message{
		Type:        protocol.TypeWelcome,
		PhoneID:     id,
		KeepaliveMs: int(m.cfg.KeepalivePeriod / time.Millisecond),
	}); err != nil {
		ps.markDead()
		return
	}
	m.cfg.Logger.Printf("phone %d registered: %s %.0f MHz", id, hello.Model, hello.CPUMHz)

	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.keepalive(ps)
	}()
	m.readLoop(ps)
}

// readLoop routes incoming frames for one phone until its death.
func (m *Master) readLoop(ps *phoneState) {
	for {
		msg, err := ps.conn.Recv()
		if err != nil {
			m.cfg.Logger.Printf("phone %d connection lost: %v", ps.info.ID, err)
			ps.markDead()
			return
		}
		switch msg.Type {
		case protocol.TypePong:
			ps.mu.Lock()
			ps.missedPings = 0
			ps.mu.Unlock()
		case protocol.TypeProbeAck:
			select {
			case ps.probeCh <- msg:
			default:
			}
		case protocol.TypeResult, protocol.TypeFailure:
			select {
			case ps.respCh <- msg:
			case <-m.stopped:
				return
			}
		case protocol.TypeBye:
			m.cfg.Logger.Printf("phone %d unplugged while idle", ps.info.ID)
			ps.markDead()
			return
		}
	}
}

// keepalive implements the paper's offline-failure detector: a ping every
// period, death after KeepaliveTolerance consecutive misses.
func (m *Master) keepalive(ps *phoneState) {
	ticker := time.NewTicker(m.cfg.KeepalivePeriod)
	defer ticker.Stop()
	var seq uint64
	for {
		select {
		case <-ticker.C:
			ps.mu.Lock()
			ps.missedPings++
			missed := ps.missedPings
			ps.mu.Unlock()
			if missed > m.cfg.KeepaliveTolerance {
				m.cfg.Logger.Printf("phone %d missed %d keepalives: offline failure",
					ps.info.ID, m.cfg.KeepaliveTolerance)
				ps.markDead()
				return
			}
			seq++
			if err := ps.conn.Send(&protocol.Message{Type: protocol.TypePing, Seq: seq}); err != nil {
				ps.markDead()
				return
			}
		case <-ps.dead:
			return
		case <-m.stopped:
			return
		}
	}
}

// WaitForPhones blocks until at least n phones are registered and alive.
func (m *Master) WaitForPhones(ctx context.Context, n int) error {
	for {
		m.mu.Lock()
		alive := 0
		for _, ps := range m.phones {
			if ps.alive() {
				alive++
			}
		}
		ch := m.phoneWait
		m.mu.Unlock()
		if alive >= n {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return fmt.Errorf("server: waiting for %d phones: %w", n, ctx.Err())
		}
	}
}

// Phones lists registered phones, sorted by ID.
func (m *Master) Phones() []PhoneInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PhoneInfo, 0, len(m.phones))
	for _, ps := range m.phones {
		info := ps.info
		info.Alive = ps.alive()
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// alivePhones snapshots the live fleet.
func (m *Master) alivePhones() []*phoneState {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*phoneState
	for _, ps := range m.phones {
		if ps.alive() {
			out = append(out, ps)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].info.ID < out[j].info.ID })
	return out
}

// ErrNoPhones is returned by operations that need at least one live phone.
var ErrNoPhones = errors.New("server: no phones available")

// tokenMatch compares enrolment tokens in constant time.
func tokenMatch(got, want string) bool {
	return subtle.ConstantTimeCompare([]byte(got), []byte(want)) == 1
}
