package server

import (
	"context"
	"testing"
	"time"

	"cwc/internal/protocol"
	"cwc/internal/tasks"
	"cwc/internal/wal"
)

// A replayed failure report for an attempt that was already folded (the
// phone replugged before its failure finished processing and flushed the
// same report over the new connection) must not re-queue — or, on the
// partial-result path, double-credit — the same attempt.
func TestRecordFailureDedupesReplayedAttempt(t *testing.T) {
	m := New(Config{})
	js := &jobState{id: 1, task: tasks.PrimeCount{}, totalBytes: 100}
	m.jobs[1] = js
	input := []byte("2\n3\n4\n5\n")
	a := assignment{
		item:  &workItem{jobID: 1, task: tasks.PrimeCount{}, input: input},
		input: input,
	}
	msg := protocolFailure(4, `{"count":2}`)
	m.recordFailure(a, &msg, 0, 7)
	m.recordFailure(a, &msg, 0, 7) // replay over the phone's new connection
	if js.covered != 4 {
		t.Errorf("covered = %d, want 4 (replay must not double-credit)", js.covered)
	}
	if len(js.partials) != 1 {
		t.Errorf("partials = %d, want 1", len(js.partials))
	}
	if len(m.pending) != 1 {
		t.Fatalf("pending = %d, want 1 (replay must not double-requeue)", len(m.pending))
	}

	// Attempt 0 (untracked, legacy peers) is never deduped.
	m2 := New(Config{})
	m2.jobs[1] = &jobState{id: 1, task: tasks.Blur{}, totalBytes: 100}
	b := assignment{
		item:  &workItem{jobID: 1, task: tasks.Blur{}, input: []byte("1 1\n1 2 3\n"), atomic: true},
		input: []byte("1 1\n1 2 3\n"),
	}
	bmsg := protocolFailure(3, `{"row":0,"out":[]}`)
	m2.recordFailure(b, &bmsg, 0, 0)
	if len(m2.pending) != 1 {
		t.Fatalf("untracked attempt not requeued: pending = %d", len(m2.pending))
	}
}

// A proactive drain mid-assignment: the worker hands the partition back
// as a "drained" failure with its checkpoint, the master re-queues it,
// and — unlike a real unplug — the phone stays alive and connected so
// the eventual real unplug is still observed for window learning.
func TestProactiveDrainHandsBackWithoutKillingPhone(t *testing.T) {
	m := startMaster(t, Config{DeadlineFloor: time.Minute})
	f := dialFake(t, m, "HTC G2", 806)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.WaitForPhones(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(tasks.PrimeCount{}, []byte("2\n3\n4\n5\n"), false); err != nil {
		t.Fatal(err)
	}
	roundDone := make(chan error, 1)
	go func() {
		_, err := m.RunRound(ctx)
		roundDone <- err
	}()

	// Serve the profiling execution, then hold the real assignment.
	var attempt int64
	for attempt == 0 {
		msg := f.recv()
		if msg.Type != protocol.TypeAssign {
			continue
		}
		if msg.Partition == -1 {
			res, err := (tasks.PrimeCount{}).Process(context.Background(), msg.Input, &tasks.Checkpoint{})
			if err != nil {
				t.Errorf("profiling execution: %v", err)
				return
			}
			f.send(&protocol.Message{Type: protocol.TypeResult, Result: res,
				ExecMs: 1, ProcessedKB: float64(len(msg.Input)) / 1024})
			continue
		}
		attempt = msg.Attempt
	}

	// Drain the phone while its assignment is in flight.
	m.mu.Lock()
	ps := m.phones[0]
	m.mu.Unlock()
	m.startDrain(ps, 0)
	if msg := f.recv(); msg.Type != protocol.TypeDrain {
		t.Fatalf("expected drain frame, got %s", msg.Type)
	}
	f.send(&protocol.Message{Type: protocol.TypeFailure, Attempt: attempt,
		Checkpoint: &tasks.Checkpoint{Offset: 4, State: []byte(`{"count":2}`)},
		Error:      "drained"})

	if err := <-roundDone; err != nil {
		t.Fatal(err)
	}
	phones := m.Phones()
	if len(phones) != 1 || !phones[0].Alive {
		t.Error("drained phone must stay alive and connected")
	}
	if st := m.DrainState(0); st != drainCompleted {
		t.Errorf("drain state = %q, want %q", st, drainCompleted)
	}
	if m.PendingItems() == 0 {
		t.Error("drained partition's remainder was not re-queued")
	}
}

// The drain ledger rides the WAL: a master that crashes mid-drain
// recovers knowing which phones were draining, and recovered phone IDs
// stay monotone so a ledger entry can never attach to a new phone.
func TestWALDrainLedgerRecovery(t *testing.T) {
	dir := t.TempDir()
	wl := openWAL(t, dir, wal.Options{Sync: wal.SyncAlways})
	a := startMaster(t, Config{WAL: wl})
	dialFake(t, a, "HTC G2", 806)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.WaitForPhones(ctx, 1); err != nil {
		t.Fatal(err)
	}
	a.mu.Lock()
	ps := a.phones[0]
	a.mu.Unlock()
	a.startDrain(ps, 1000)
	if st := a.DrainState(0); st != drainStarted {
		t.Fatalf("drain state = %q, want %q", st, drainStarted)
	}
	a.Close()
	wl.Close()

	wl2 := openWAL(t, dir, wal.Options{Sync: wal.SyncAlways})
	b := startMaster(t, Config{WAL: wl2})
	if err := b.RecoverWAL(); err != nil {
		t.Fatal(err)
	}
	if st := b.DrainState(0); st != drainStarted {
		t.Fatalf("recovered drain state = %q, want %q", st, drainStarted)
	}
	// A fresh registration on the recovered master must not recycle the
	// drained phone's ID.
	dialFake(t, b, "Nexus S", 1000)
	if err := b.WaitForPhones(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if id := b.Phones()[0].ID; id < 1 {
		t.Errorf("recovered master recycled phone ID %d into the drain ledger", id)
	}
	// Complete and clear the drain; both transitions replay too.
	b.completeDrain(0)
	b.clearDrain(0)
	b.Close()
	wl2.Close()

	wl3 := openWAL(t, dir, wal.Options{Sync: wal.SyncAlways})
	c := startMaster(t, Config{WAL: wl3})
	if err := c.RecoverWAL(); err != nil {
		t.Fatal(err)
	}
	if st := c.DrainState(0); st != "" {
		t.Errorf("cleared drain survived recovery as %q", st)
	}
}
