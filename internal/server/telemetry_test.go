package server

import (
	"strconv"
	"testing"
	"time"

	"cwc/internal/obs"
	"cwc/internal/protocol"
)

// TestIngestWorkerStatsMonotoneFolding covers the restart seam: a
// worker's piggybacked counters are cumulative per process, so a
// reconnect identity takeover restarts them from zero. The master must
// fold the dying incarnation's last snapshot into a base so the
// published per-phone series never regress.
func TestIngestWorkerStatsMonotoneFolding(t *testing.T) {
	m := New(Config{})
	const phone = 3

	get := func() protocol.WorkerStats {
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.workerStats[phone]
	}

	// First incarnation counts up.
	m.ingestWorkerStats(phone, &protocol.WorkerStats{ExecMs: 100, Assignments: 2, CkptFrames: 1})
	m.ingestWorkerStats(phone, &protocol.WorkerStats{ExecMs: 250, Assignments: 5, CkptFrames: 3, TransferKB: 7})
	if got := get(); got.ExecMs != 250 || got.Assignments != 5 {
		t.Fatalf("pre-restart totals = %+v", got)
	}

	// Restart: the next snapshot regresses on every field. The published
	// totals must keep the 250ms/5 assignments and add the new process's.
	m.ingestWorkerStats(phone, &protocol.WorkerStats{ExecMs: 10, Assignments: 1})
	got := get()
	if got.ExecMs != 260 || got.Assignments != 6 || got.CkptFrames != 3 || got.TransferKB != 7 {
		t.Fatalf("post-restart totals = %+v, want fold of 250/5/3/7 + 10/1", got)
	}

	// The new incarnation keeps counting; no double-fold.
	m.ingestWorkerStats(phone, &protocol.WorkerStats{ExecMs: 40, Assignments: 2, ThrottlePauses: 1})
	got = get()
	if got.ExecMs != 290 || got.Assignments != 7 || got.ThrottlePauses != 1 {
		t.Fatalf("second-incarnation totals = %+v", got)
	}

	// A second restart folds again.
	m.ingestWorkerStats(phone, &protocol.WorkerStats{})
	m.ingestWorkerStats(phone, &protocol.WorkerStats{ExecMs: 5})
	got = get()
	if got.ExecMs != 295 || got.Assignments != 7 || got.CkptFrames != 3 {
		t.Fatalf("third-incarnation totals = %+v", got)
	}

	// The published gauges track the folded totals.
	if v := m.cfg.Metrics.Gauge("cwc_worker_exec_ms", "phone", strconv.Itoa(phone)).Value(); v != 295 {
		t.Fatalf("exec_ms gauge = %v, want 295", v)
	}
	if v := m.cfg.Metrics.Gauge("cwc_worker_assignments", "phone", strconv.Itoa(phone)).Value(); v != 7 {
		t.Fatalf("assignments gauge = %v, want 7", v)
	}
}

// TestFoldTelemetry exercises the master's telemetry frame fold: events
// land in the trace ring tagged with the originating phone, orphan
// spans are counted, unknown kinds survive version skew, and the
// worker-reported drop counter is published.
func TestFoldTelemetry(t *testing.T) {
	tracer := obs.NewTracer(64)
	m := New(Config{Tracer: tracer})
	const phone = 7

	// A known job whose span worker events should anchor to.
	m.mu.Lock()
	m.jobs[1] = &jobState{id: 1, span: "j1"}
	m.mu.Unlock()

	ps := &phoneState{info: PhoneInfo{ID: phone}}
	m.foldTelemetry(ps, &protocol.Message{
		Type:    protocol.TypeTelemetry,
		Dropped: 4,
		Events: []protocol.WorkerEvent{
			{TSMs: 1000, Kind: protocol.EventAssignRecv, Span: "j1", Job: 1, Partition: 0, Epoch: 1},
			{TSMs: 1001, Kind: protocol.EventExecStart, Span: "j1", Job: 1, Partition: 0, Epoch: 1},
			{TSMs: 1002, Kind: protocol.EventThrottlePause, Detail: "batt", Epoch: 1}, // phone-scoped: no span
			{TSMs: 1003, Kind: protocol.EventExecFinish, Span: "j999", Job: 999, Epoch: 1},
			{TSMs: 1004, Kind: protocol.EventKind("future_kind"), Span: "j1", Epoch: 1},
		},
	})

	evs := tracer.Span("j1")
	if len(evs) != 3 { // assign_recv, exec_start, future_kind
		t.Fatalf("span j1 folded %d events, want 3", len(evs))
	}
	for _, ev := range evs {
		if ev.Phone != phone || ev.Src != "worker" {
			t.Fatalf("folded event = %+v, want phone=%d src=worker", ev, phone)
		}
		if ev.Epoch != 1 {
			t.Fatalf("folded event epoch = %d, want the worker's mint epoch 1", ev.Epoch)
		}
	}

	r := m.cfg.Metrics
	if v := r.Counter("cwc_telemetry_events_total", "kind", "assign_recv").Value(); v != 1 {
		t.Fatalf("assign_recv counter = %d, want 1", v)
	}
	if v := r.Counter("cwc_telemetry_orphan_spans_total").Value(); v != 1 {
		t.Fatalf("orphan counter = %d, want 1 (the j999 exec_finish)", v)
	}
	if v := r.Counter("cwc_telemetry_unknown_total").Value(); v != 1 {
		t.Fatalf("unknown-kind counter = %d, want 1", v)
	}
	if v := r.Gauge("cwc_telemetry_dropped", "phone", strconv.Itoa(phone)).Value(); v != 4 {
		t.Fatalf("dropped gauge = %v, want 4", v)
	}
}

// TestTimelineMergesSides: jobTimeline interleaves master-side trace
// events with folded worker telemetry into one per-partition row, in
// time order, with job-wide milestones split out and every fencing
// epoch the events crossed listed.
func TestTimelineMergesSides(t *testing.T) {
	tracer := obs.NewTracer(64)
	m := New(Config{Tracer: tracer})
	m.mu.Lock()
	m.jobs[1] = &jobState{id: 1, span: "j1"}
	m.mu.Unlock()

	base := time.UnixMilli(5000)
	tracer.Record(obs.SpanEvent{TS: base, Span: "j1", Kind: obs.KindSubmit, Job: 1, Phone: -1, Epoch: 1})
	tracer.Record(obs.SpanEvent{TS: base.Add(10 * time.Millisecond), Span: "j1",
		Kind: obs.KindAssign, Job: 1, Partition: 1, Phone: 7, Epoch: 1})
	m.foldTelemetry(&phoneState{info: PhoneInfo{ID: 7}}, &protocol.Message{
		Type: protocol.TypeTelemetry,
		Events: []protocol.WorkerEvent{
			{TSMs: 5015, Kind: protocol.EventAssignRecv, Span: "j1", Job: 1, Partition: 1, Epoch: 1},
			{TSMs: 5020, Kind: protocol.EventExecFinish, Span: "j1", Job: 1, Partition: 1, Epoch: 2},
		},
	})
	tracer.Record(obs.SpanEvent{TS: base.Add(30 * time.Millisecond), Span: "j1",
		Kind: obs.KindResult, Job: 1, Partition: 1, Phone: 7, Epoch: 2})

	tl := m.jobTimeline(1)
	if tl == nil {
		t.Fatal("jobTimeline returned nil for a known job")
	}
	if tl.Span != "j1" || len(tl.JobEvents) != 1 || tl.JobEvents[0].Kind != obs.KindSubmit {
		t.Fatalf("job-level events = %+v", tl.JobEvents)
	}
	if len(tl.Partitions) != 1 || tl.Partitions[0].Partition != 1 {
		t.Fatalf("partitions = %+v", tl.Partitions)
	}
	evs := tl.Partitions[0].Events
	if len(evs) != 4 {
		t.Fatalf("partition 1 has %d events, want 4 (assign, assign_recv, exec_finish, result)", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS.Before(evs[i-1].TS) {
			t.Fatalf("events out of time order: %v after %v", evs[i], evs[i-1])
		}
	}
	wantSrc := []string{"", "worker", "worker", ""}
	for i, ev := range evs {
		if ev.Src != wantSrc[i] {
			t.Fatalf("event %d src = %q, want %q (both process sides interleaved)", i, ev.Src, wantSrc[i])
		}
	}
	if len(tl.Epochs) != 2 || tl.Epochs[0] != 1 || tl.Epochs[1] != 2 {
		t.Fatalf("epochs = %v, want [1 2]", tl.Epochs)
	}

	if m.jobTimeline(42) != nil {
		t.Fatal("unknown job should yield a nil timeline")
	}
}

// TestFoldTelemetryLazySpan: a job that never went through
// spanForJobLocked has span ""; worker events carrying the
// deterministic "j<id>" span must still resolve as known.
func TestFoldTelemetryLazySpan(t *testing.T) {
	m := New(Config{Tracer: obs.NewTracer(16)})
	m.mu.Lock()
	m.jobs[2] = &jobState{id: 2} // span unset
	m.mu.Unlock()

	ps := &phoneState{info: PhoneInfo{ID: 1}}
	m.foldTelemetry(ps, &protocol.Message{
		Type:   protocol.TypeTelemetry,
		Events: []protocol.WorkerEvent{{TSMs: 1, Kind: protocol.EventCkptFlush, Span: "j2", Job: 2}},
	})
	if v := m.cfg.Metrics.Counter("cwc_telemetry_orphan_spans_total").Value(); v != 0 {
		t.Fatalf("lazy-span event counted as orphan (counter = %d)", v)
	}
}
