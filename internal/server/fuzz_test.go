package server

import (
	"bytes"
	"encoding/json"
	"testing"

	"cwc/internal/wal"
)

// FuzzLoadState asserts that a state snapshot — however mangled — is
// either rejected with an error or loaded; it must never panic the
// master.
func FuzzLoadState(f *testing.F) {
	f.Add([]byte(`{"next_job_id":2,"jobs":[{"id":1,"task":"primecount","total_bytes":4}],` +
		`"pending":[{"job_id":1,"task":"primecount","input":"Mgo="}]}`))
	f.Add([]byte(`{bad`))
	f.Add([]byte(`{"jobs":[{"id":1,"task":"no-such-task"}]}`))
	f.Fuzz(func(t *testing.T, b []byte) {
		m := New(Config{})
		_ = m.LoadState(bytes.NewReader(b))
	})
}

// FuzzWALReducer feeds arbitrary record types and payloads (and
// arbitrary snapshots) through WAL replay: corrupt-but-framed input must
// be rejected with an error, never a panic.
func FuzzWALReducer(f *testing.F) {
	sub, _ := json.Marshal(walSubmit{JobID: 1, Seq: 1, Task: "primecount", Input: []byte("2\n")})
	f.Add(uint8(1), sub)
	rnd, _ := json.Marshal(walRound{Consumed: []int64{1}, Items: []walRoundItem{{JobID: 1, Key: 1, Input: []byte("2\n")}}})
	f.Add(uint8(2), rnd)
	f.Add(uint8(4), []byte(`{"job_id":99}`))
	f.Add(uint8(200), []byte(`{}`))
	f.Fuzz(func(t *testing.T, typ uint8, payload []byte) {
		red := newWALReducer()
		_ = red.apply(wal.Record{Type: typ, Payload: payload})
	})
}

// FuzzWALSnapshot exercises the compaction-snapshot decoder the same
// way.
func FuzzWALSnapshot(f *testing.F) {
	f.Add([]byte(`{"next_job_id":3,"jobs":[{"id":1,"task":"wordcount"}],` +
		`"fresh":[{"seq":2,"job_id":1,"input":"AA=="}],"open":[{"key":5,"job_id":1,"input":"AA=="}]}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, b []byte) {
		red := newWALReducer()
		_ = red.loadSnapshot(b)
	})
}
