package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cwc/internal/faults"
	"cwc/internal/protocol"
	"cwc/internal/tasks"
	"cwc/internal/wal"
)

// failFirstResponder fails the first assignment it receives with an
// uncheckpointed TypeFailure (exercising whole-partition migration) and
// then serves normally — though the master marks the phone dead on the
// failure, so "then" rarely comes.
func failFirstResponder(f *fakePhone) {
	failed := false
	for {
		if err := f.conn.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
			return
		}
		msg, err := f.conn.Recv()
		if err != nil {
			return
		}
		if msg.Type != protocol.TypeAssign {
			continue
		}
		if !failed {
			failed = true
			_ = f.conn.Send(&protocol.Message{Type: protocol.TypeFailure,
				JobID: msg.JobID, Partition: msg.Partition, Attempt: msg.Attempt,
				Error: "induced crash"})
			continue
		}
		task, err := tasks.New(msg.Task, msg.Params)
		if err != nil {
			continue
		}
		var ck tasks.Checkpoint
		if msg.Resume != nil {
			ck = *msg.Resume
		}
		res, err := task.Process(context.Background(), msg.Input, &ck)
		if err != nil {
			continue
		}
		_ = f.conn.Send(&protocol.Message{Type: protocol.TypeResult,
			JobID: msg.JobID, Partition: msg.Partition, Attempt: msg.Attempt,
			Result: res, ExecMs: 1, ProcessedKB: float64(len(msg.Input)) / 1024})
	}
}

func openWAL(t *testing.T, dir string, opts wal.Options) *wal.Log {
	t.Helper()
	wl, err := wal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wl.Close() })
	return wl
}

func TestWALRecoverAcrossMasters(t *testing.T) {
	dir := t.TempDir()
	wl := openWAL(t, dir, wal.Options{Sync: wal.SyncAlways})
	a := startMaster(t, Config{WAL: wl})
	fa := dialFake(t, a, "HTC G2", 806)
	go autoResponder(fa)

	id1, err := a.Submit(tasks.PrimeCount{}, []byte("2\n3\n4\n5\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := a.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	want1, ok := a.Result(id1)
	if !ok {
		t.Fatal("job 1 did not complete on master A")
	}
	id2, err := a.Submit(tasks.WordCount{Word: "sale"}, []byte("sale sale no\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	// Kill A without any explicit save: the WAL is the only persistence.
	a.Close()
	wl.Close()

	wl2 := openWAL(t, dir, wal.Options{Sync: wal.SyncAlways})
	b := startMaster(t, Config{WAL: wl2})
	if err := b.RecoverWAL(); err != nil {
		t.Fatal(err)
	}
	got1, ok := b.Result(id1)
	if !ok || !bytes.Equal(got1, want1) {
		t.Fatalf("recovered result = %q %v, want %q", got1, ok, want1)
	}
	if b.PendingItems() != 1 {
		t.Fatalf("recovered pending = %d, want 1", b.PendingItems())
	}
	fb := dialFake(t, b, "Nexus S", 1000)
	go autoResponder(fb)
	if _, err := b.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	got2, ok := b.Result(id2)
	if !ok || string(got2) != "2" {
		t.Fatalf("recovered job result = %q %v, want 2", got2, ok)
	}
	id3, err := b.Submit(tasks.MaxInt{}, []byte("1\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if id3 <= id2 {
		t.Errorf("new job ID %d not above recovered %d", id3, id2)
	}
}

func TestWALSubmitAckGatedOnAppend(t *testing.T) {
	// A disk that refuses every write: Submit must refuse the job rather
	// than acknowledge something the log did not take.
	wl := openWAL(t, t.TempDir(), wal.Options{
		Sync: wal.SyncAlways,
		WriterHook: func(w io.Writer) io.Writer {
			return faults.NewWriter(w, faults.WriteProfile{Seed: 1, ErrProb: 1})
		},
	})
	m := startMaster(t, Config{WAL: wl})
	if _, err := m.Submit(tasks.PrimeCount{}, []byte("2\n"), false); err == nil {
		t.Fatal("Submit acknowledged a job the WAL rejected")
	}
	if n := m.PendingItems(); n != 0 {
		t.Fatalf("rejected submission left %d pending items", n)
	}
}

func TestLoadStateFoldsIntoWAL(t *testing.T) {
	// The upgrade path: an existing -state deployment adds -wal-dir. The
	// file-restored jobs must become the WAL's snapshot before any record
	// referencing them is appended — otherwise the next startup's replay
	// sees round/report/finish records for jobs the reducer never met and
	// the master refuses to start.
	var snap bytes.Buffer
	a := startMaster(t, Config{})
	id, err := a.Submit(tasks.WordCount{Word: "sale"}, []byte("sale sale no\nsale yes\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SaveState(&snap); err != nil {
		t.Fatal(err)
	}
	a.Close()

	dir := t.TempDir()
	wl := openWAL(t, dir, wal.Options{Sync: wal.SyncAlways})
	b := startMaster(t, Config{WAL: wl})
	if err := b.RecoverWAL(); err != nil {
		t.Fatal(err)
	}
	if err := b.LoadState(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	fb := dialFake(t, b, "HTC G2", 806)
	go autoResponder(fb)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := b.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	want, ok := b.Result(id)
	if !ok {
		t.Fatal("loaded job did not complete")
	}
	b.Close()
	wl.Close()

	wl2 := openWAL(t, dir, wal.Options{Sync: wal.SyncAlways})
	c := startMaster(t, Config{WAL: wl2})
	if err := c.RecoverWAL(); err != nil {
		t.Fatalf("replay after -state load: %v", err)
	}
	got, ok := c.Result(id)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("recovered result = %q %v, want %q", got, ok, want)
	}
}

// gateWriter fails every write while its gate is set; Syncs pass through.
type gateWriter struct {
	w    io.Writer
	fail *atomic.Bool
}

func (g *gateWriter) Write(b []byte) (int, error) {
	if g.fail.Load() {
		return 0, errors.New("injected write error")
	}
	return g.w.Write(b)
}

func TestRoundRecordFailureAbortsRound(t *testing.T) {
	// A round whose walRecRound append fails must abort before anything
	// is dispatched: continuing would leave report records in the log
	// with no round record ahead of them, double-counting coverage on
	// replay. The items go back to pending and the next round succeeds.
	dir := t.TempDir()
	var gate atomic.Bool
	wl := openWAL(t, dir, wal.Options{
		Sync:       wal.SyncAlways,
		WriterHook: func(w io.Writer) io.Writer { return &gateWriter{w: w, fail: &gate} },
	})
	m := startMaster(t, Config{WAL: wl})
	id, err := m.Submit(tasks.PrimeCount{}, []byte("2\n3\n4\n5\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	f := dialFake(t, m, "HTC G2", 806)
	go autoResponder(f)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	gate.Store(true)
	if _, err := m.RunRound(ctx); err == nil {
		t.Fatal("round with an unloggable round record should abort")
	}
	if n := m.PendingItems(); n != 1 {
		t.Fatalf("aborted round left %d pending items, want 1", n)
	}
	if _, ok := m.Result(id); ok {
		t.Fatal("aborted round produced a result")
	}

	gate.Store(false)
	if _, err := m.RunRound(ctx); err != nil {
		t.Fatalf("round after WAL recovered: %v", err)
	}
	want, ok := m.Result(id)
	if !ok {
		t.Fatal("job did not complete after retry")
	}
	m.Close()
	wl.Close()

	// The log must replay cleanly: the abort-time compaction folded the
	// un-logged state so no orphaned records remain.
	wl2 := openWAL(t, dir, wal.Options{Sync: wal.SyncAlways})
	r := startMaster(t, Config{WAL: wl2})
	if err := r.RecoverWAL(); err != nil {
		t.Fatalf("replay after aborted round: %v", err)
	}
	got, ok := r.Result(id)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("recovered result = %q %v, want %q", got, ok, want)
	}
}

// TestWALCrashRecoveryEveryTruncation is the kill-anywhere acceptance
// harness: record a full run's WAL (spanning a compaction, an induced
// phone failure, and three jobs), then simulate a master killed at every
// record boundary — and inside records — of the live segment by
// truncating a copy. Every truncation must recover: no acknowledged
// submission lost, and every job that finishes again produces aggregates
// byte-identical to the uncrashed run.
func TestWALCrashRecoveryEveryTruncation(t *testing.T) {
	dir := t.TempDir()
	wl := openWAL(t, dir, wal.Options{Sync: wal.SyncAlways})
	a := startMaster(t, Config{WAL: wl})
	fa := dialFake(t, a, "HTC G2", 806)
	go autoResponder(fa)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Deterministic workloads: counting aggregates are independent of how
	// the input is partitioned or re-partitioned after a crash.
	primesIn := []byte{}
	for i := 1; i <= 200; i++ {
		primesIn = append(primesIn, []byte(fmt.Sprintf("%d\n", i))...)
	}
	wordsIn := []byte(strings.Repeat("storm sale inventory sale\n", 40))
	maxIn := []byte(strings.Repeat("7\n3\n9001\n14\n", 30))

	id1, err := a.Submit(tasks.PrimeCount{}, primesIn, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	// Fold the first job into a snapshot: recovery must now compose
	// snapshot + live log.
	if err := a.CompactWAL(); err != nil {
		t.Fatal(err)
	}
	id2, err := a.Submit(tasks.WordCount{Word: "sale"}, wordsIn, false)
	if err != nil {
		t.Fatal(err)
	}
	id3, err := a.Submit(tasks.MaxInt{}, maxIn, false)
	if err != nil {
		t.Fatal(err)
	}
	// A phone that fails mid-round: its partition migrates through a
	// walRecMigrate record in the live segment.
	flaky := dialFake(t, a, "Nexus S", 1000)
	go failFirstResponder(flaky)

	ids := []int{id1, id2, id3}
	want := map[int][]byte{}
	for round := 0; round < 20 && len(want) < len(ids); round++ {
		if _, err := a.RunRound(ctx); err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			if res, ok := a.Result(id); ok {
				want[id] = res
			}
		}
	}
	if len(want) != len(ids) {
		t.Fatalf("uncrashed run finished %d of %d jobs", len(want), len(ids))
	}
	if len(a.DeadLetters()) != 0 {
		t.Fatalf("uncrashed run dead-lettered work: %+v", a.DeadLetters())
	}
	a.Close()
	wl.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one live segment, got %v (%v)", segs, err)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snapshot-*.json"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("want exactly one snapshot, got %v (%v)", snaps, err)
	}
	segBytes, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	snapBytes, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	recs, bounds, err := wal.ScanSegment(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("live segment is empty; harness is vacuous")
	}

	// Jobs acknowledged before the cut: those in the snapshot plus those
	// whose submit record survives the truncation whole.
	var snapState walState
	if err := json.Unmarshal(snapBytes, &snapState); err != nil {
		t.Fatal(err)
	}
	submitEnd := map[int]int64{}
	sawTypes := map[uint8]bool{}
	for i, r := range recs {
		sawTypes[r.Type] = true
		if r.Type == walRecSubmit {
			var p walSubmit
			if err := json.Unmarshal(r.Payload, &p); err != nil {
				t.Fatal(err)
			}
			submitEnd[p.JobID] = bounds[i]
		}
	}
	for _, typ := range []uint8{walRecSubmit, walRecRound, walRecDispatch, walRecReport, walRecMigrate, walRecFinish} {
		if !sawTypes[typ] {
			t.Fatalf("live segment never exercised record type %d (types seen: %v)", typ, sawTypes)
		}
	}

	// Kill points: the empty log, every record boundary, and a point
	// inside every record (a torn tail).
	cuts := []int64{0}
	for _, b := range bounds {
		cuts = append(cuts, b-3, b) // b-3 lands inside the record ending at b
	}

	for _, cut := range cuts {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			cdir := t.TempDir()
			if err := os.WriteFile(filepath.Join(cdir, filepath.Base(snaps[0])), snapBytes, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(cdir, filepath.Base(segs[0])), segBytes[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			cwl := openWAL(t, cdir, wal.Options{Sync: wal.SyncAlways})
			m := startMaster(t, Config{WAL: cwl})
			if err := m.RecoverWAL(); err != nil {
				t.Fatalf("recovery failed: %v", err)
			}

			known := map[int]bool{}
			for _, j := range snapState.Jobs {
				known[j.ID] = true
			}
			for id, end := range submitEnd {
				if end <= cut {
					known[id] = true
				}
			}
			m.mu.Lock()
			for id := range known {
				if _, ok := m.jobs[id]; !ok {
					m.mu.Unlock()
					t.Fatalf("acknowledged job %d lost", id)
				}
			}
			m.mu.Unlock()

			unfinished := 0
			for id := range known {
				if _, ok := m.Result(id); !ok {
					unfinished++
				}
			}
			if unfinished > 0 {
				p := dialFake(t, m, "HTC G2", 806)
				go autoResponder(p)
				for round := 0; round < 20 && unfinished > 0; round++ {
					if _, err := m.RunRound(ctx); err != nil {
						t.Fatalf("post-recovery round: %v", err)
					}
					unfinished = 0
					for id := range known {
						if _, ok := m.Result(id); !ok {
							unfinished++
						}
					}
				}
				if unfinished > 0 {
					t.Fatalf("%d recovered jobs never finished", unfinished)
				}
			}
			for id := range known {
				got, _ := m.Result(id)
				if !bytes.Equal(got, want[id]) {
					t.Fatalf("job %d aggregate = %q, want %q (byte-identical to uncrashed run)", id, got, want[id])
				}
			}
		})
	}
}
