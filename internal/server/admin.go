package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"time"

	"cwc/internal/obs"
	"cwc/internal/protocol"
)

// This file is the master's admin plane: the HTTP endpoints bound at
// Config.ObsAddr (off by default) that expose what internal/obs records.
//
//	GET /metrics         Prometheus text exposition of Config.Metrics
//	GET /healthz         liveness probe
//	GET /statusz         JSON: fleet, predictions, rounds, SLO burn
//	GET /debug/sched     last round's bin-packing decision vs what happened
//	GET /debug/trace     recent span events (?span=j3 filters, ?n=100 caps)
//	GET /debug/timeline  one job's merged master+worker causal timeline (?job=3)
//	GET /debug/blackbox  the in-memory flight recorder as JSONL
//
// Everything served here is a read-only snapshot; the plane never mutates
// scheduling state, so leaving it unbound is byte-identical to binding it.

// registerMasterMetrics pre-creates the master's unlabeled series with
// help text so a scrape of a freshly started, idle master already shows
// the full catalog at zero (labeled series appear on first use).
func registerMasterMetrics(r *obs.Registry) {
	counters := map[string]string{
		"cwc_keepalive_pings_total":        "application-level keepalive pings sent",
		"cwc_keepalive_misses_total":       "keepalive periods that elapsed without a pong",
		"cwc_conn_errors_total":            "phone connections lost to read errors or corrupt frames",
		"cwc_phones_registered_total":      "fresh phone registrations",
		"cwc_phones_reconnected_total":     "phones that rejoined under a prior identity",
		"cwc_submissions_total":            "jobs accepted by Submit",
		"cwc_jobs_completed_total":         "jobs fully aggregated",
		"cwc_results_total":                "partition results recorded (duplicates excluded)",
		"cwc_failures_total":               "partition failure reports recorded",
		"cwc_requeues_total":               "work items re-queued for a later round",
		"cwc_dead_letters_total":           "work items dropped after exhausting their retry budget",
		"cwc_speculations_total":           "speculative copies issued for straggling partitions",
		"cwc_stragglers_total":             "assignments that blew their deadline",
		"cwc_abandons_total":               "phones abandoned for a round at twice the deadline",
		"cwc_stale_results_total":          "results credited to an earlier attempt on the same phone",
		"cwc_rounds_total":                 "scheduling rounds completed",
		"cwc_assign_bytes_sent_total":      "assignment input bytes shipped to phones",
		"cwc_checkpoint_frames_total":      "streamed checkpoint frames received",
		"cwc_checkpoint_folds_total":       "streamed checkpoints accepted into resume state",
		"cwc_checkpoint_bytes_total":       "checkpoint state bytes accepted",
		"cwc_recompute_saved_bytes_total":  "input bytes a requeue resumed past instead of recomputing",
		"cwc_drain_started_total":          "proactive drains started as predicted charge windows closed",
		"cwc_drain_completed_total":        "proactive drains whose work was handed back before the disconnect",
		"cwc_placements_vetoed_total":      "placements rejected because completion would cross the phone's predicted-unplug quantile",
		"cwc_jobs_failed_total":            "jobs that ended in a terminal aggregation failure",
		"cwc_verify_votes_total":           "verification ballots cast (result digests entered into a vote group)",
		"cwc_verify_audits_total":          "spot-check audit comparisons completed",
		"cwc_verify_quarantines_total":     "phones quarantined for falling below the reputation threshold",
		"cwc_telemetry_orphan_spans_total": "worker telemetry events naming a span no known job owns",
	}
	for fam, help := range counters {
		r.Help(fam, help)
		r.Counter(fam)
	}
	gauges := map[string]string{
		"cwc_phones_alive":                "live registered phones",
		"cwc_pending_items":               "work items awaiting the next scheduling instant",
		"cwc_round_predicted_makespan_ms": "last round's scheduler-predicted makespan",
		"cwc_round_actual_makespan_ms":    "last round's measured wall time",
		"cwc_epoch":                       "current fencing epoch (0: replication never enabled)",
		"cwc_replica_lag_records":         "WAL records accepted locally but not yet written to the slowest attached standby",
		"cwc_phones_quarantined":          "phones currently excluded from placement for integrity failures",
	}
	for fam, help := range gauges {
		r.Help(fam, help)
		r.Gauge(fam)
	}
	histograms := map[string]string{
		"cwc_exec_ms":       "reported per-partition execution time in milliseconds",
		"cwc_round_wall_ms": "scheduling round wall time in milliseconds",
	}
	for fam, help := range histograms {
		r.Help(fam, help)
		r.Histogram(fam)
	}
	r.Help("cwc_offline_failures_total", "offline-failure events by structured reason")
	r.Help("cwc_verify_mismatches_total", "verification disagreements by kind (digest, vote, audit, checkpoint)")
	r.Help("cwc_frames_received_total", "protocol frames received by type")
	r.Help("cwc_frames_fenced_total", "report frames rejected for carrying another master regime's epoch")
	r.Help("cwc_telemetry_events_total", "worker span events folded into the trace ring, by kind")
	r.Help("cwc_telemetry_unknown_total", "worker span events of a kind this master does not know (version skew)")
	r.Help("cwc_telemetry_dropped", "per-phone cumulative telemetry events lost to the worker's bounded buffer")
	r.Help("cwc_slo_good_total", "SLO observations within objective, by SLO name")
	r.Help("cwc_slo_bad_total", "SLO observations burning error budget, by SLO name")
	r.Help("cwc_slo_error_rate", "rolling-window bad fraction per SLO")
	r.Help("cwc_slo_burn", "rolling-window burn rate per SLO (error rate over target; 1.0 spends budget exactly on time)")
}

// ingestWorkerStats folds a worker's piggybacked cumulative counters
// into per-phone published totals. Counters are cumulative per worker
// *process*: a restarted worker that takes its identity back over
// restarts them from zero, so a later frame can regress. The master
// keeps a per-phone base (everything prior incarnations accumulated)
// and folds the dying incarnation's last snapshot into it whenever a
// regression proves a restart — the published series (gauges and
// /statusz) stay monotone and no completed work is ever un-counted.
func (m *Master) ingestWorkerStats(phoneID int, s *protocol.WorkerStats) {
	m.mu.Lock()
	base := m.workerStatBase[phoneID]
	if last, ok := m.workerStatLast[phoneID]; ok && statsRegressed(last, *s) {
		base = statsAdd(base, last)
		m.workerStatBase[phoneID] = base
	}
	m.workerStatLast[phoneID] = *s
	total := statsAdd(base, *s)
	m.workerStats[phoneID] = total
	m.mu.Unlock()
	id := strconv.Itoa(phoneID)
	r := m.cfg.Metrics
	for fam, v := range map[string]float64{
		"cwc_worker_exec_ms":         total.ExecMs,
		"cwc_worker_transfer_kb":     total.TransferKB,
		"cwc_worker_throttle_pauses": float64(total.ThrottlePauses),
		"cwc_worker_reconnects":      float64(total.Reconnects),
		"cwc_worker_ckpt_frames":     float64(total.CkptFrames),
		"cwc_worker_ckpt_kb":         total.CkptKB,
		"cwc_worker_assignments":     float64(total.Assignments),
	} {
		//lint:ignore metrics the phone label is bounded by fleet size, not by traffic
		r.Gauge(fam, "phone", id).Set(v)
	}
}

// statsRegressed reports whether cur moved backwards relative to prev on
// any cumulative field — the signature of a worker process restart.
func statsRegressed(prev, cur protocol.WorkerStats) bool {
	return cur.ExecMs < prev.ExecMs || cur.TransferKB < prev.TransferKB ||
		cur.ThrottlePauses < prev.ThrottlePauses || cur.Reconnects < prev.Reconnects ||
		cur.CkptFrames < prev.CkptFrames || cur.CkptKB < prev.CkptKB ||
		cur.Assignments < prev.Assignments
}

// statsAdd sums two cumulative snapshots field-wise.
func statsAdd(a, b protocol.WorkerStats) protocol.WorkerStats {
	return protocol.WorkerStats{
		ExecMs:         a.ExecMs + b.ExecMs,
		TransferKB:     a.TransferKB + b.TransferKB,
		ThrottlePauses: a.ThrottlePauses + b.ThrottlePauses,
		Reconnects:     a.Reconnects + b.Reconnects,
		CkptFrames:     a.CkptFrames + b.CkptFrames,
		CkptKB:         a.CkptKB + b.CkptKB,
		Assignments:    a.Assignments + b.Assignments,
	}
}

// SchedAssignment is one dispatched partition in a SchedSnapshot: the
// packing decision (size, predicted cost) next to what the round actually
// saw for it.
type SchedAssignment struct {
	JobID       int     `json:"job"`
	Partition   int     `json:"partition"`
	Key         int64   `json:"key"`
	SizeKB      float64 `json:"size_kb"`
	PredictedMs float64 `json:"predicted_ms"`
	// ActualMs is assign-to-report latency; -1 when no report arrived
	// within the round.
	ActualMs float64 `json:"actual_ms"`
	// Outcome is the last thing the round saw for the partition:
	// "result", "failure", "straggler", or "pending".
	Outcome string `json:"outcome"`
}

// SchedPhone is one phone's queue in a SchedSnapshot.
type SchedPhone struct {
	PhoneID         int               `json:"phone"`
	PredictedSpanMs float64           `json:"predicted_span_ms"`
	ActualSpanMs    float64           `json:"actual_span_ms"`
	Assignments     []SchedAssignment `json:"assignments"`
}

// SchedSnapshot is one round's bin-packing decision paired with the
// round's actuals — the live counterpart of the paper's Figure 12
// comparison. Served by /debug/sched.
type SchedSnapshot struct {
	Round               int          `json:"round"`
	PredictedMakespanMs float64      `json:"predicted_makespan_ms"`
	ActualMakespanMs    float64      `json:"actual_makespan_ms"`
	Phones              []SchedPhone `json:"phones"`
}

// LastSched returns the most recent round's packing-vs-actuals snapshot,
// or nil before the first completed round.
func (m *Master) LastSched() *SchedSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lastSched == nil {
		return nil
	}
	cp := *m.lastSched
	cp.Phones = append([]SchedPhone(nil), m.lastSched.Phones...)
	return &cp
}

// finishSchedSnapshot folds a finished round's event timeline into the
// snapshot built at dispatch time: per-assignment report latencies and
// outcomes, per-phone busy spans, and the measured makespan.
func finishSchedSnapshot(snap *SchedSnapshot, events []Event, wall time.Duration) {
	snap.ActualMakespanMs = float64(wall) / float64(time.Millisecond)
	type akey struct{ phone, job, part int }
	assigned := map[akey]time.Duration{}
	for _, e := range events {
		k := akey{e.PhoneID, e.JobID, e.Partition}
		switch e.Kind {
		case "assign":
			assigned[k] = e.At
		case "result", "failure", "straggler":
			for pi := range snap.Phones {
				sp := &snap.Phones[pi]
				if sp.PhoneID != e.PhoneID {
					continue
				}
				for ai := range sp.Assignments {
					a := &sp.Assignments[ai]
					if a.JobID != e.JobID || a.Partition != e.Partition {
						continue
					}
					a.Outcome = e.Kind
					if e.Kind != "straggler" {
						a.ActualMs = float64(e.At-assigned[k]) / float64(time.Millisecond)
					}
				}
				if e.Kind != "straggler" {
					if ms := float64(e.At) / float64(time.Millisecond); ms > sp.ActualSpanMs {
						sp.ActualSpanMs = ms
					}
				}
			}
		}
	}
}

// ObsAddr returns the admin plane's bound address ("" when unbound).
func (m *Master) ObsAddr() string {
	if m.obsLn == nil {
		return ""
	}
	return m.obsLn.Addr().String()
}

// serveObs binds the admin plane. The listener dies with Close.
func (m *Master) serveObs(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: admin plane listen %s: %w", addr, err)
	}
	m.obsLn = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", m.handleMetrics)
	mux.HandleFunc("/healthz", m.handleHealthz)
	mux.HandleFunc("/statusz", m.handleStatusz)
	mux.HandleFunc("/debug/sched", m.handleDebugSched)
	mux.HandleFunc("/debug/trace", m.handleDebugTrace)
	mux.HandleFunc("/debug/timeline", m.handleDebugTimeline)
	mux.HandleFunc("/debug/blackbox", m.handleDebugBlackbox)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		_ = srv.Serve(ln) // returns once Close closes the listener
	}()
	m.cfg.Logger.Infof("admin plane listening on %s", ln.Addr())
	return nil
}

// refreshGauges recomputes the point-in-time gauges a scrape should see.
func (m *Master) refreshGauges() {
	m.mu.Lock()
	alive := 0
	for _, ps := range m.phones {
		if ps.alive() {
			alive++
		}
	}
	pending := len(m.pending)
	epoch := m.epoch
	quarantined := len(m.quarantined)
	m.mu.Unlock()
	m.cfg.Metrics.Gauge("cwc_phones_alive").Set(float64(alive))
	m.cfg.Metrics.Gauge("cwc_pending_items").Set(float64(pending))
	m.cfg.Metrics.Gauge("cwc_phones_quarantined").Set(float64(quarantined))
	m.cfg.Metrics.Gauge("cwc_epoch").Set(float64(epoch))
	if m.cfg.ReplicaSink != nil {
		m.cfg.Metrics.Gauge("cwc_replica_lag_records").Set(float64(m.cfg.ReplicaSink.Lag()))
	}
	for _, st := range m.slos.Statuses() {
		// SLO names are a fixed set chosen at configuration time, so the
		// label cardinality is operator-bounded, not traffic-bounded.
		//lint:ignore metrics slo names are a fixed operator-configured set
		m.cfg.Metrics.Gauge("cwc_slo_error_rate", "slo", st.Name).Set(st.ErrorRate)
		//lint:ignore metrics slo names are a fixed operator-configured set
		m.cfg.Metrics.Gauge("cwc_slo_burn", "slo", st.Name).Set(st.Burn)
	}
}

func (m *Master) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m.refreshGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = m.cfg.Metrics.WritePrometheus(w)
}

func (m *Master) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// statusEstimate is one (phone, task) row of /statusz's prediction view:
// the clock-scaling estimate next to the report-refined one, with the
// relative refinement error (how far clock scaling alone was off).
type statusEstimate struct {
	Task           string   `json:"task"`
	ScaledMsPerKB  float64  `json:"scaled_ms_per_kb"`
	LearnedMsPerKB *float64 `json:"learned_ms_per_kb,omitempty"`
	RefineErr      *float64 `json:"refine_err,omitempty"`
}

type statusPhone struct {
	ID          int                   `json:"id"`
	Model       string                `json:"model"`
	CPUMHz      float64               `json:"cpu_mhz"`
	RAMMB       int                   `json:"ram_mb"`
	Alive       bool                  `json:"alive"`
	BMsPerKB    float64               `json:"b_ms_per_kb"`
	MissedPings int                   `json:"missed_pings"`
	Worker      *protocol.WorkerStats `json:"worker,omitempty"`
	Estimates   []statusEstimate      `json:"estimates,omitempty"`
	// DrainState is the proactive-drain ledger entry: "started",
	// "completed", or absent when the phone is not draining.
	DrainState string `json:"drain_state,omitempty"`
	// ChargeSessions is how many completed charge sessions the window
	// estimator has observed for this phone.
	ChargeSessions int `json:"charge_sessions,omitempty"`
	// PredictedRemainingMs is the predicted time left in the current
	// charge window at the configured drain quantile; absent when the
	// estimator lacks history (it would never veto).
	PredictedRemainingMs *float64 `json:"predicted_remaining_ms,omitempty"`
	// Reputation is the phone's result-integrity score (EWMA of
	// verification outcomes); absent until the first recorded outcome.
	Reputation *float64 `json:"reputation,omitempty"`
	// Quarantined marks a phone excluded from placement for integrity
	// failures — still connected and visible, never assigned.
	Quarantined bool `json:"quarantined,omitempty"`
}

type statusRound struct {
	Round               int     `json:"round"`
	PredictedMakespanMs float64 `json:"predicted_makespan_ms"`
	ActualMakespanMs    float64 `json:"actual_makespan_ms"`
}

type statusz struct {
	Now time.Time `json:"now"`
	// Role is "primary" (or a promotion path's label); Epoch the fencing
	// epoch; ReplicaLagRecords the slowest attached standby's backlog
	// (absent when replication is off).
	Role              string         `json:"role"`
	Epoch             int64          `json:"epoch"`
	ReplicaLagRecords *int64         `json:"replica_lag_records,omitempty"`
	PhonesAlive       int            `json:"phones_alive"`
	Phones            []statusPhone  `json:"phones"`
	PendingItems      int            `json:"pending_items"`
	Rounds            int            `json:"rounds"`
	LastRound         *statusRound   `json:"last_round,omitempty"`
	JobsSubmitted     int            `json:"jobs_submitted"`
	JobsCompleted     int            `json:"jobs_completed"`
	DeadLetters       []DeadLetter   `json:"dead_letters,omitempty"`
	OfflineFailures   map[string]int `json:"offline_failures,omitempty"`
	CheckpointFolds   int            `json:"checkpoint_folds"`
	TraceEvents       int64          `json:"trace_events"`
	MetricSeries      int            `json:"metric_series"`
	// SLOs is the rolling-window burn view of every registered
	// objective; SLOHealth is the worst verdict among them ("ok",
	// "warn", or "critical").
	SLOs      []obs.SLOStatus `json:"slos"`
	SLOHealth string          `json:"slo_health"`
}

func (m *Master) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	st := statusz{
		Now: time.Now(), Role: m.cfg.Role,
		TraceEvents: m.cfg.Tracer.Total(), MetricSeries: m.cfg.Metrics.SeriesCount(),
		SLOs: m.slos.Statuses(), SLOHealth: m.slos.Health(),
	}
	if m.cfg.ReplicaSink != nil {
		lag := m.cfg.ReplicaSink.Lag()
		st.ReplicaLagRecords = &lag
	}

	m.mu.Lock()
	st.Epoch = m.epoch
	est := m.est
	tasksSeen := map[string]bool{}
	for _, js := range m.jobs {
		st.JobsSubmitted++
		if js.done {
			st.JobsCompleted++
		}
		tasksSeen[js.task.Name()] = true
	}
	st.PendingItems = len(m.pending)
	st.Rounds = m.rounds
	if m.lastSched != nil {
		st.LastRound = &statusRound{
			Round:               m.lastSched.Round,
			PredictedMakespanMs: m.lastSched.PredictedMakespanMs,
			ActualMakespanMs:    m.lastSched.ActualMakespanMs,
		}
	}
	st.DeadLetters = append(st.DeadLetters, m.deadLetters...)
	if len(m.offline) > 0 {
		st.OfflineFailures = map[string]int{}
		for _, of := range m.offline {
			st.OfflineFailures[of.Reason]++
		}
	}
	st.CheckpointFolds = m.ckptFolds
	type phoneRow struct {
		info        PhoneInfo
		missed      int
		alive       bool
		drain       string
		rep         *float64
		quarantined bool
	}
	rows := make([]phoneRow, 0, len(m.phones))
	for _, ps := range m.phones {
		ps.mu.Lock()
		missed, deadClosed := ps.missedPings, ps.deadClosed
		ps.mu.Unlock()
		row := phoneRow{
			info: ps.info, missed: missed, alive: !deadClosed,
			drain:       m.draining[ps.info.ID],
			quarantined: m.quarantined[ps.info.ID],
		}
		if r, ok := m.reputation[ps.info.ID]; ok {
			rep := r
			row.rep = &rep
		}
		rows = append(rows, row)
	}
	stats := make(map[int]protocol.WorkerStats, len(m.workerStats))
	for id, s := range m.workerStats {
		stats[id] = s
	}
	m.mu.Unlock()

	sort.Slice(rows, func(i, j int) bool { return rows[i].info.ID < rows[j].info.ID })
	var tasks []string
	if est != nil {
		tasks = est.Tasks()
		sort.Strings(tasks)
	}
	now := nowMs()
	for _, row := range rows {
		sp := statusPhone{
			ID: row.info.ID, Model: row.info.Model, CPUMHz: row.info.CPUMHz,
			RAMMB: row.info.RAMMB, Alive: row.alive, BMsPerKB: row.info.BMsPerKB,
			MissedPings: row.missed, DrainState: row.drain,
			ChargeSessions: m.windows.Sessions(row.info.ID),
			Reputation:     row.rep, Quarantined: row.quarantined,
		}
		if rem, ok := m.windows.RemainingMs(row.info.ID, now, m.cfg.DrainQuantile); ok {
			r := rem
			sp.PredictedRemainingMs = &r
		}
		if row.alive {
			st.PhonesAlive++
		}
		if ws, ok := stats[row.info.ID]; ok {
			w := ws
			sp.Worker = &w
		}
		for _, task := range tasks {
			ts, ok := est.Profile(task)
			if !ok || !tasksSeen[task] || row.info.CPUMHz <= 0 {
				continue
			}
			scaled := ts * est.BaseMHz() / row.info.CPUMHz
			e := statusEstimate{Task: task, ScaledMsPerKB: scaled}
			if learned, ok := est.LearnedEstimate(task, row.info.ID); ok && scaled > 0 {
				l := learned
				e.LearnedMsPerKB = &l
				relErr := (learned - scaled) / scaled
				e.RefineErr = &relErr
			}
			sp.Estimates = append(sp.Estimates, e)
		}
		st.Phones = append(st.Phones, sp)
	}
	writeJSON(w, st)
}

func (m *Master) handleDebugSched(w http.ResponseWriter, _ *http.Request) {
	snap := m.LastSched()
	if snap == nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintln(w, `{"error":"no round completed yet"}`)
		return
	}
	writeJSON(w, snap)
}

func (m *Master) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	n := 200
	if s := r.URL.Query().Get("n"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	var evs []obs.SpanEvent
	if span := r.URL.Query().Get("span"); span != "" {
		evs = m.cfg.Tracer.Span(span)
		if len(evs) > n {
			evs = evs[len(evs)-n:]
		}
	} else {
		evs = m.cfg.Tracer.Recent(n)
	}
	if evs == nil {
		evs = []obs.SpanEvent{}
	}
	writeJSON(w, evs)
}

// TimelinePartition is one partition's merged causal timeline: master
// and worker events interleaved in time order.
type TimelinePartition struct {
	Partition int             `json:"partition"`
	Events    []obs.SpanEvent `json:"events"`
}

// Timeline is /debug/timeline's response: one job's span history with
// both process sides stitched together. JobEvents are span-wide
// milestones (submit, round, aggregate, promote); Epochs lists every
// fencing regime the events crossed, so a timeline that survived a
// standby promotion shows the boundary explicitly.
type Timeline struct {
	Job        int                 `json:"job"`
	Span       string              `json:"span"`
	Epochs     []int64             `json:"epochs"`
	JobEvents  []obs.SpanEvent     `json:"job_events,omitempty"`
	Partitions []TimelinePartition `json:"partitions"`
}

// jobTimeline assembles one job's merged timeline from the trace ring.
// Returns nil when the job is unknown to this master.
func (m *Master) jobTimeline(jobID int) *Timeline {
	m.mu.Lock()
	known := m.jobs[jobID] != nil
	span := m.spanForJobLocked(jobID)
	m.mu.Unlock()
	if !known {
		return nil
	}
	evs := m.cfg.Tracer.Span(span)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS.Before(evs[j].TS) })
	tl := &Timeline{Job: jobID, Span: span, Partitions: []TimelinePartition{}}
	epochs := map[int64]bool{}
	parts := map[int]int{} // partition -> index into tl.Partitions
	for _, ev := range evs {
		epochs[ev.Epoch] = true
		switch ev.Kind {
		case obs.KindSubmit, obs.KindRound, obs.KindAggregate, obs.KindPromote:
			tl.JobEvents = append(tl.JobEvents, ev)
			continue
		}
		pi, ok := parts[ev.Partition]
		if !ok {
			pi = len(tl.Partitions)
			parts[ev.Partition] = pi
			tl.Partitions = append(tl.Partitions, TimelinePartition{Partition: ev.Partition})
		}
		tl.Partitions[pi].Events = append(tl.Partitions[pi].Events, ev)
	}
	sort.Slice(tl.Partitions, func(i, j int) bool {
		return tl.Partitions[i].Partition < tl.Partitions[j].Partition
	})
	for e := range epochs {
		tl.Epochs = append(tl.Epochs, e)
	}
	sort.Slice(tl.Epochs, func(i, j int) bool { return tl.Epochs[i] < tl.Epochs[j] })
	return tl
}

func (m *Master) handleDebugTimeline(w http.ResponseWriter, r *http.Request) {
	jobID, err := strconv.Atoi(r.URL.Query().Get("job"))
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprintln(w, `{"error":"missing or malformed ?job="}`)
		return
	}
	tl := m.jobTimeline(jobID)
	if tl == nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintln(w, `{"error":"unknown job"}`)
		return
	}
	writeJSON(w, tl)
}

func (m *Master) handleDebugBlackbox(w http.ResponseWriter, _ *http.Request) {
	if m.cfg.Blackbox == nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintln(w, `{"error":"no black-box recorder configured"}`)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = m.cfg.Blackbox.WriteJSONL(w)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
