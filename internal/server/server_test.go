package server

import (
	"context"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"cwc/internal/migrate"
	"cwc/internal/protocol"
	"cwc/internal/tasks"
	"cwc/internal/worker"
)

// fakePhone is a raw protocol-level client used to exercise the master
// without the worker package (so server tests stand alone).
type fakePhone struct {
	t    *testing.T
	raw  net.Conn // for writing deliberately corrupt bytes
	conn *protocol.Conn
}

func dialFake(t *testing.T, m *Master, model string, mhz float64) *fakePhone {
	t.Helper()
	raw, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	f := &fakePhone{t: t, raw: raw, conn: protocol.NewConn(raw)}
	t.Cleanup(func() { f.conn.Close() })
	if err := f.conn.Send(&protocol.Message{
		Type: protocol.TypeHello, Model: model, CPUMHz: mhz, RAMMB: 512,
	}); err != nil {
		t.Fatal(err)
	}
	// Consume the welcome.
	m2 := f.recv()
	if m2.Type != protocol.TypeWelcome {
		t.Fatalf("expected welcome, got %s", m2.Type)
	}
	return f
}

func (f *fakePhone) recv() *protocol.Message {
	f.t.Helper()
	if err := f.conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		f.t.Fatal(err)
	}
	m, err := f.conn.Recv()
	if err != nil {
		f.t.Fatal(err)
	}
	return m
}

func (f *fakePhone) send(m *protocol.Message) {
	f.t.Helper()
	if err := f.conn.Send(m); err != nil {
		f.t.Fatal(err)
	}
}

func startMaster(t *testing.T, cfg Config) *Master {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	m := New(cfg)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fill()
	if c.KeepalivePeriod != 30*time.Second {
		t.Errorf("keepalive period = %v, want 30s (paper)", c.KeepalivePeriod)
	}
	if c.KeepaliveTolerance != 3 {
		t.Errorf("tolerance = %d, want 3 (paper)", c.KeepaliveTolerance)
	}
	if c.ProbeKB <= 0 || c.DefaultBMsPerKB <= 0 || c.Logger == nil {
		t.Error("defaults not filled")
	}
}

func TestRegistrationAssignsSequentialIDs(t *testing.T) {
	m := startMaster(t, Config{})
	dialFake(t, m, "HTC G2", 806)
	dialFake(t, m, "Nexus S", 1000)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.WaitForPhones(ctx, 2); err != nil {
		t.Fatal(err)
	}
	phones := m.Phones()
	if len(phones) != 2 {
		t.Fatalf("%d phones", len(phones))
	}
	if phones[0].ID != 0 || phones[1].ID != 1 {
		t.Errorf("IDs = %d, %d", phones[0].ID, phones[1].ID)
	}
	if phones[0].Model != "HTC G2" || phones[0].CPUMHz != 806 {
		t.Errorf("phone 0 = %+v", phones[0])
	}
	if !phones[0].Alive {
		t.Error("phone 0 should be alive")
	}
}

func TestBadHelloRejected(t *testing.T) {
	m := startMaster(t, Config{})
	raw, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := protocol.NewConn(raw)
	defer c.Close()
	// Zero CPU clock: not a valid registration.
	if err := c.Send(&protocol.Message{Type: protocol.TypeHello, CPUMHz: 0}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recv(); err == nil {
		t.Error("server should close a connection with an invalid hello")
	}
	if len(m.Phones()) != 0 {
		t.Error("invalid phone was registered")
	}
}

func TestNonHelloFirstFrameRejected(t *testing.T) {
	m := startMaster(t, Config{})
	raw, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := protocol.NewConn(raw)
	defer c.Close()
	if err := c.Send(&protocol.Message{Type: protocol.TypePong}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recv(); err == nil {
		t.Error("server should drop a connection that skips hello")
	}
}

func TestKeepalivePingPongAndOfflineDetection(t *testing.T) {
	m := startMaster(t, Config{
		KeepalivePeriod:    30 * time.Millisecond,
		KeepaliveTolerance: 2,
	})
	f := dialFake(t, m, "HTC G2", 806)

	// Answer a few pings: the phone must stay alive.
	for i := 0; i < 3; i++ {
		msg := f.recv()
		if msg.Type != protocol.TypePing {
			t.Fatalf("expected ping, got %s", msg.Type)
		}
		f.send(&protocol.Message{Type: protocol.TypePong, Seq: msg.Seq})
	}
	if p := m.Phones(); !p[0].Alive {
		t.Fatal("responsive phone marked dead")
	}

	// Stop answering: after tolerance misses the phone dies.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if !m.Phones()[0].Alive {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("unresponsive phone never marked offline")
}

func TestByeMarksPhoneDead(t *testing.T) {
	m := startMaster(t, Config{})
	f := dialFake(t, m, "HTC G2", 806)
	f.send(&protocol.Message{Type: protocol.TypeBye})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if !m.Phones()[0].Alive {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("bye did not mark the phone dead")
}

func TestMeasureBandwidths(t *testing.T) {
	m := startMaster(t, Config{ProbeKB: 8})
	f := dialFake(t, m, "HTC G2", 806)
	go func() {
		msg := f.recv()
		if msg.Type != protocol.TypeProbe {
			t.Errorf("expected probe, got %s", msg.Type)
			return
		}
		if len(msg.Payload) != 8*1024 {
			t.Errorf("probe payload %d bytes", len(msg.Payload))
		}
		f.send(&protocol.Message{Type: protocol.TypeProbeAck})
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.WaitForPhones(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.MeasureBandwidths(ctx); err != nil {
		t.Fatal(err)
	}
	b := m.Phones()[0].BMsPerKB
	if b <= 0 {
		t.Errorf("measured b = %v", b)
	}
}

func TestMeasureBandwidthsNoPhones(t *testing.T) {
	m := startMaster(t, Config{})
	if err := m.MeasureBandwidths(context.Background()); err != ErrNoPhones {
		t.Errorf("err = %v, want ErrNoPhones", err)
	}
}

func TestRunRoundNoWork(t *testing.T) {
	m := startMaster(t, Config{})
	if _, err := m.RunRound(context.Background()); err != ErrNothingToDo {
		t.Errorf("err = %v, want ErrNothingToDo", err)
	}
}

func TestRunRoundNoPhonesRequeues(t *testing.T) {
	m := startMaster(t, Config{})
	if _, err := m.Submit(tasks.PrimeCount{}, []byte("2\n"), false); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunRound(context.Background()); err != ErrNoPhones {
		t.Errorf("err = %v, want ErrNoPhones", err)
	}
	if m.PendingItems() != 1 {
		t.Errorf("pending = %d, work was lost", m.PendingItems())
	}
}

func TestSubmitValidation(t *testing.T) {
	m := startMaster(t, Config{})
	if _, err := m.Submit(tasks.PrimeCount{}, nil, false); err == nil {
		t.Error("empty input should be rejected")
	}
	// Non-breakable tasks are forced atomic.
	id, err := m.Submit(tasks.Blur{}, []byte("1 1\n1 2 3\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	m.mu.Lock()
	item := m.pending[len(m.pending)-1]
	m.mu.Unlock()
	if !item.atomic {
		t.Error("blur submission should be atomic regardless of the flag")
	}
	_ = id
}

func TestWaitForPhonesContextCancel(t *testing.T) {
	m := startMaster(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := m.WaitForPhones(ctx, 5); err == nil {
		t.Error("expected timeout waiting for phones")
	}
}

func TestResultUnknownJob(t *testing.T) {
	m := startMaster(t, Config{})
	if _, ok := m.Result(42); ok {
		t.Error("unknown job should have no result")
	}
}

func TestCloseIdempotent(t *testing.T) {
	m := startMaster(t, Config{})
	m.Close()
	m.Close() // second close must not panic or deadlock
}

// TestMigrationJournalLifecycle drives a deterministic save -> resume ->
// complete migration through the journal using protocol-level fake phones:
// one phone per round, so assignment placement is unambiguous.
func TestMigrationJournalLifecycle(t *testing.T) {
	journal := migrate.NewJournal()
	m := startMaster(t, Config{Journal: journal})
	f1 := dialFake(t, m, "HTC G2", 806)

	img, err := tasks.GenImageKB(4, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	jobID, err := m.Submit(tasks.Blur{}, img, true)
	if err != nil {
		t.Fatal(err)
	}

	// Round 1: f1 serves the profiling run, then fails the real
	// assignment with a checkpoint and is marked dead.
	round1 := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_, err := m.RunRound(ctx)
		round1 <- err
	}()
	prof := f1.recv()
	if prof.Type != protocol.TypeAssign || prof.Partition != -1 {
		t.Fatalf("expected profiling assign, got %+v", prof)
	}
	f1.send(&protocol.Message{Type: protocol.TypeResult, JobID: 0, Partition: -1,
		Result: []byte("x"), ExecMs: 5, ProcessedKB: 4})
	asg := f1.recv()
	if asg.Type != protocol.TypeAssign || asg.JobID != jobID {
		t.Fatalf("expected real assign, got %+v", asg)
	}
	f1.send(&protocol.Message{
		Type: protocol.TypeFailure, JobID: jobID, Partition: asg.Partition,
		Checkpoint: &tasks.Checkpoint{Offset: 100, State: []byte(`{"row":0,"out":[]}`)},
		Error:      "unplugged",
	})
	if err := <-round1; err != nil {
		t.Fatal(err)
	}
	saved, ok := journal.LatestState(jobID, asg.Partition)
	if !ok || saved.Offset != 100 {
		t.Fatalf("journal state after failure = %+v %v", saved, ok)
	}
	if len(journal.InFlight()) != 1 {
		t.Fatalf("in flight = %v", journal.InFlight())
	}

	// Round 2: a fresh phone receives the migrated work with the resume
	// checkpoint and completes it.
	f2 := dialFake(t, m, "Nexus S", 1000)
	round2 := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_, err := m.RunRound(ctx)
		round2 <- err
	}()
	resumed := f2.recv()
	if resumed.Type != protocol.TypeAssign || resumed.Resume == nil ||
		resumed.Resume.Offset != 100 {
		t.Fatalf("expected resumed assign with checkpoint, got %+v", resumed)
	}
	f2.send(&protocol.Message{
		Type: protocol.TypeResult, JobID: jobID, Partition: resumed.Partition,
		Result: []byte("blurred"), ExecMs: 3, ProcessedKB: 4,
	})
	if err := <-round2; err != nil {
		t.Fatal(err)
	}
	if got, ok := m.Result(jobID); !ok || string(got) != "blurred" {
		t.Fatalf("result = %q %v", got, ok)
	}
	if len(journal.InFlight()) != 0 {
		t.Errorf("journal still in flight: %v", journal.InFlight())
	}
	kinds := map[migrate.EventKind]int{}
	for _, e := range journal.Events() {
		kinds[e.Kind]++
	}
	if kinds[migrate.Saved] != 1 || kinds[migrate.Resumed] != 1 || kinds[migrate.Completed] != 1 {
		t.Errorf("journal kinds = %v", kinds)
	}
}

// TestRoundReportEvents drives a two-assignment round and checks that the
// event timeline records assigns and results in order.
func TestRoundReportEvents(t *testing.T) {
	m := startMaster(t, Config{})
	f := dialFake(t, m, "HTC G2", 806)
	if _, err := m.Submit(tasks.PrimeCount{}, []byte("2\n3\n5\n"), false); err != nil {
		t.Fatal(err)
	}
	reportCh := make(chan *RoundReport, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		r, err := m.RunRound(ctx)
		if err != nil {
			t.Error(err)
		}
		reportCh <- r
	}()
	// Profiling assign, then the real assign.
	for {
		msg := f.recv()
		if msg.Type != protocol.TypeAssign {
			continue
		}
		f.send(&protocol.Message{Type: protocol.TypeResult, JobID: msg.JobID,
			Partition: msg.Partition, Result: []byte("2"), ExecMs: 1, ProcessedKB: 0.01})
		if msg.Partition != -1 {
			break
		}
	}
	report := <-reportCh
	if report == nil {
		t.Fatal("no report")
	}
	var kinds []string
	for _, e := range report.Events {
		kinds = append(kinds, e.Kind)
	}
	if len(kinds) < 2 || kinds[0] != "assign" || kinds[len(kinds)-1] != "result" {
		t.Errorf("event kinds = %v", kinds)
	}
	for i := 1; i < len(report.Events); i++ {
		if report.Events[i].At < report.Events[i-1].At {
			t.Error("events out of order")
		}
	}
}

// Submissions racing with an active round land in the next round instead
// of being lost.
func TestSubmitDuringRound(t *testing.T) {
	m := startMaster(t, Config{})
	f := dialFake(t, m, "HTC G2", 806)

	// Auto-responder: answer every assignment (profiling or real) with a
	// plausible result for its task.
	assigns := make(chan string, 16)
	go func() {
		for {
			if err := f.conn.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
				return
			}
			msg, err := f.conn.Recv()
			if err != nil {
				return
			}
			if msg.Type != protocol.TypeAssign {
				continue
			}
			res := []byte("1")
			if msg.Task == "maxint" {
				res = []byte("9")
			}
			if err := f.conn.Send(&protocol.Message{
				Type: protocol.TypeResult, JobID: msg.JobID,
				Partition: msg.Partition, Result: res,
				ExecMs: 1, ProcessedKB: 0.01,
			}); err != nil {
				return
			}
			assigns <- msg.Task
		}
	}()

	if _, err := m.Submit(tasks.PrimeCount{}, []byte("2\n3\n"), false); err != nil {
		t.Fatal(err)
	}
	round1 := make(chan struct{})
	go func() {
		defer close(round1)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if _, err := m.RunRound(ctx); err != nil {
			t.Error(err)
		}
	}()
	// Once the first assignment is in flight, round 1's snapshot is
	// taken: a submission now must land in round 2.
	select {
	case <-assigns:
	case <-time.After(20 * time.Second):
		t.Fatal("no assignment arrived")
	}
	lateID, err := m.Submit(tasks.MaxInt{}, []byte("9\n4\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	<-round1
	if m.PendingItems() != 1 {
		t.Fatalf("pending = %d, late submission lost", m.PendingItems())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := m.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	res, ok := m.Result(lateID)
	if !ok {
		t.Fatal("late job has no result")
	}
	if string(res) != "9" {
		t.Errorf("late job result = %s", res)
	}
}

func TestRunLoopProcessesSubmissionsAsTheyArrive(t *testing.T) {
	m := startMaster(t, Config{})
	f := dialFake(t, m, "HTC G2", 806)
	// Auto-responder for all assignments.
	go func() {
		for {
			if err := f.conn.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
				return
			}
			msg, err := f.conn.Recv()
			if err != nil {
				return
			}
			if msg.Type != protocol.TypeAssign {
				continue
			}
			_ = f.conn.Send(&protocol.Message{Type: protocol.TypeResult,
				JobID: msg.JobID, Partition: msg.Partition,
				Result: []byte("1"), ExecMs: 1, ProcessedKB: 0.01})
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rounds := make(chan *RoundReport, 8)
	loopDone := make(chan error, 1)
	go func() {
		loopDone <- m.RunLoop(ctx, 10*time.Millisecond, func(r *RoundReport) {
			rounds <- r
		})
	}()

	var ids []int
	for k := 0; k < 3; k++ {
		id, err := m.Submit(tasks.PrimeCount{}, []byte("2\n3\n"), false)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		select {
		case <-rounds:
		case <-time.After(20 * time.Second):
			t.Fatal("loop never ran a round")
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, id := range ids {
		for {
			if _, ok := m.Result(id); ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %d never completed under RunLoop", id)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	cancel()
	select {
	case err := <-loopDone:
		if err != context.Canceled {
			t.Errorf("loop exit = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("loop did not stop on cancel")
	}
}

func TestRunLoopStopsOnClose(t *testing.T) {
	m := startMaster(t, Config{})
	loopDone := make(chan error, 1)
	go func() {
		loopDone <- m.RunLoop(context.Background(), 5*time.Millisecond, nil)
	}()
	time.Sleep(30 * time.Millisecond)
	m.Close()
	select {
	case err := <-loopDone:
		if err != nil {
			t.Errorf("loop exit after Close = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("loop did not stop on Close")
	}
}

func TestAuthTokenEnforcement(t *testing.T) {
	m := startMaster(t, Config{AuthToken: "enrol-secret"})
	// Wrong token: dropped before registration.
	raw, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	bad := protocol.NewConn(raw)
	defer bad.Close()
	if err := bad.Send(&protocol.Message{
		Type: protocol.TypeHello, Token: "wrong", Model: "X", CPUMHz: 1000,
	}); err != nil {
		t.Fatal(err)
	}
	_ = bad.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := bad.Recv(); err == nil {
		t.Error("bad token should be rejected")
	}
	if len(m.Phones()) != 0 {
		t.Error("bad-token phone registered")
	}
	// Correct token: welcomed.
	raw2, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	good := protocol.NewConn(raw2)
	defer good.Close()
	if err := good.Send(&protocol.Message{
		Type: protocol.TypeHello, Token: "enrol-secret", Model: "X", CPUMHz: 1000,
	}); err != nil {
		t.Fatal(err)
	}
	_ = good.SetReadDeadline(time.Now().Add(5 * time.Second))
	msg, err := good.Recv()
	if err != nil || msg.Type != protocol.TypeWelcome {
		t.Fatalf("good token not welcomed: %v %v", msg, err)
	}
}

// silentConn is a net.Conn whose Close only flips a flag: subsequent
// reads and writes fail, but no FIN ever reaches the peer. Vanish() on a
// plain TCP conn sends a FIN that the master notices instantly as
// conn-lost; this wrapper reproduces the paper's true offline failure
// (a wireless driver crash) where the only detector is the keepalive.
type silentConn struct {
	net.Conn
	dead atomic.Bool
}

func (c *silentConn) Read(p []byte) (int, error) {
	if c.dead.Load() {
		return 0, net.ErrClosed
	}
	n, err := c.Conn.Read(p)
	if c.dead.Load() {
		return 0, net.ErrClosed
	}
	return n, err
}

func (c *silentConn) Write(p []byte) (int, error) {
	if c.dead.Load() {
		return 0, net.ErrClosed
	}
	return c.Conn.Write(p)
}

func (c *silentConn) Close() error {
	c.dead.Store(true)
	return nil
}

// TestOfflineFailureEndToEnd drives the full offline-failure path with
// the real worker runtime: a phone dies silently mid-execution (no FIN,
// no failure report), the master detects it after KeepaliveTolerance
// missed pings, re-queues the partition from its last streamed
// checkpoint, and a later round completes the job with the right answer
// on the surviving phone.
func TestOfflineFailureEndToEnd(t *testing.T) {
	journal := migrate.NewJournal()
	m := startMaster(t, Config{
		KeepalivePeriod:    40 * time.Millisecond,
		KeepaliveTolerance: 3,
		CheckpointEveryKB:  4,
		Journal:            journal,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	workerCtx, cancelWorkers := context.WithCancel(context.Background())
	t.Cleanup(cancelWorkers)

	// Worker 0 dials through silentConn so its Vanish makes no sound on
	// the wire; worker 1 is an ordinary survivor.
	workers := make([]*worker.Phone, 2)
	for i := range workers {
		muted := i == 0
		w, err := worker.New(worker.Config{
			ServerAddr: m.Addr(),
			Model:      "HTC G2",
			CPUMHz:     806,
			RAMMB:      512,
			Dial: func(ctx context.Context) (net.Conn, error) {
				var d net.Dialer
				raw, err := d.DialContext(ctx, "tcp", m.Addr())
				if err != nil {
					return nil, err
				}
				t.Cleanup(func() { raw.Close() })
				if muted {
					return &silentConn{Conn: raw}, nil
				}
				return raw, nil
			},
			Reconnect: worker.ReconnectPolicy{Disabled: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		go func() { _ = w.Run(workerCtx) }()
	}
	if err := m.WaitForPhones(ctx, 2); err != nil {
		t.Fatal(err)
	}

	input := tasks.GenIntegers(64, 100000, rand.New(rand.NewSource(7)))
	var ck tasks.Checkpoint
	want, err := (tasks.SleepCount{}).Process(context.Background(), input, &ck)
	if err != nil {
		t.Fatal(err)
	}
	id, err := m.Submit(tasks.SleepCount{PerBatch: 2 * time.Millisecond}, input, false)
	if err != nil {
		t.Fatal(err)
	}

	// Vanish worker 0 once the master holds streamed progress, so the
	// kill lands mid-execution with resumable state on file.
	go func() {
		for m.StreamedCheckpoints() == 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
		workers[0].Vanish()
	}()

	var got []byte
	ok := false
	deadline := time.Now().Add(60 * time.Second)
	for !ok && time.Now().Before(deadline) {
		if _, err := m.RunRound(ctx); err != nil {
			time.Sleep(10 * time.Millisecond)
		}
		got, ok = m.Result(id)
	}
	if !ok {
		t.Fatalf("job never completed after the offline failure (offline: %+v, dead letters: %+v)",
			m.OfflineFailures(), m.DeadLetters())
	}
	if string(got) != string(want) {
		t.Errorf("result after offline failure %s != local %s", got, want)
	}

	// The death was detected by missed keepalives, not a closing FIN.
	keepaliveDeaths := 0
	for _, f := range m.OfflineFailures() {
		if f.Reason == "keepalive" {
			keepaliveDeaths++
		}
	}
	if keepaliveDeaths == 0 {
		t.Errorf("no keepalive-detected failure recorded: %+v", m.OfflineFailures())
	}

	// The re-queued partition carried streamed state and was re-shipped.
	streamedSaves, resumes := 0, 0
	for _, e := range journal.Events() {
		switch {
		case e.Kind == migrate.Saved && e.Reason == "streamed checkpoint":
			streamedSaves++
		case e.Kind == migrate.Resumed && e.JobID == id:
			resumes++
		}
	}
	if streamedSaves == 0 {
		t.Error("no streamed-checkpoint saves recorded in the journal")
	}
	if resumes == 0 {
		t.Error("the re-queued partition was never re-shipped with resume state")
	}
}
