package server

import (
	"time"

	"cwc/internal/core"
	"cwc/internal/predict"
	"cwc/internal/protocol"
	"cwc/internal/tasks"
)

// Result integrity for untrusted phones. The paper assumes an enterprise
// fleet that returns honest results; a real deployment of other people's
// phones cannot. This file makes the master robust to lying, lazy, and
// corrupting workers without trusting any single phone:
//
//   - Every result frame carries a worker-computed SHA-256 digest of its
//     payload (tasks.Digest). The master recomputes the digest from the
//     received bytes; a claimed/computed mismatch proves in-transit
//     damage and the frame is treated as a failure (the range requeues).
//
//   - Replicated voting (Config.VerifyReplicas = k > 1): the scheduler
//     places every partition on k disjoint phones (core.PlaceCopies) and
//     the recomputed digests are put to a quorum vote. Agreement
//     finalizes the result; losers are penalized; a tie is re-executed
//     on the highest-reputation uninvolved phone until some digest
//     reaches quorum.
//
//   - Spot-check audits (Config.AuditRate, when voting is off): a seeded
//     fraction of partitions is silently re-executed on a second phone.
//     The first result folds immediately — audits never delay a job —
//     and the comparison happens when the echo arrives; a mismatch
//     escalates to a tie-break for blame (the folded result stands:
//     audits protect the fleet via reputation, not the folded job).
//
//   - Reputation and quarantine: each verification outcome updates a
//     per-phone EWMA score, WAL-logged (walRecReputation) so it survives
//     crash recovery and failover replication. A phone whose score falls
//     below Config.ReputationThreshold is quarantined: it stays
//     connected and visible, but placement treats it as a HARD veto —
//     no never-starve fallback, unlike the advisory drain filter.
//
// Voting compares digests the master computed itself, so legacy workers
// that send no digest still vote correctly. What voting cannot catch is
// collusion: two phones returning the same wrong bytes for the same
// partition outvote the truth (the faults package's liars therefore
// derandomize per phone; see docs/faults.md).

// voteGroup tracks one partition's verification: the executions expected
// for its key, the digests they reported, and how the group settled.
type voteGroup struct {
	a assignment // representative assignment (the original placement)
	// need is how many executions are expected to report before the
	// group declares a tie; tie-breaks increment it.
	need int
	// quorum is how many matching digests finalize the vote (fixed at
	// creation: max(2, ceil((k+1)/2))).
	quorum int
	// audit marks a spot-check group: the first ballot folds immediately
	// and later ballots only compare.
	audit   bool
	ballots map[int]string // phone ID -> recomputed digest
	// folded is the digest of the result already folded into the job
	// ("" until one is).
	folded string
	// winner is the quorum digest once resolved; late ballots are scored
	// against it.
	winner   string
	resolved bool
	// tiePending marks an outstanding tie-break re-execution; its expiry
	// goroutine owns cleanup if the arbiter never reports.
	tiePending bool
}

// recordResult folds a completed partition into its job — after the
// verification layer has had its say. See finalizeResult for the fold
// itself; verifyResult consumes the report when a digest mismatch or an
// open vote group intercepts it.
func (m *Master) recordResult(a assignment, resp *protocol.Message, est *predict.Estimator, ps *phoneState) {
	if m.verifyResult(a, resp, est, ps) {
		return
	}
	m.finalizeResult(a, resp, est, ps)
}

// verifyResult is the verification layer's interception point: every
// result report passes through here before it may fold. Returns true
// when the report was consumed (folded via a vote, recorded as a
// ballot, or rejected outright); false hands it to finalizeResult
// unchanged.
func (m *Master) verifyResult(a assignment, resp *protocol.Message, est *predict.Estimator, ps *phoneState) bool {
	computed := tasks.Digest(resp.Result)
	if resp.Digest != "" && resp.Digest != computed {
		// The payload was damaged between the worker's task output and
		// this fold: detectable from the single frame, no vote needed.
		// Treat it like a failure report so the range re-executes.
		m.cfg.Metrics.Counter("cwc_verify_mismatches_total", "kind", "digest").Inc()
		m.sloObserve(sloVerify, false)
		m.cfg.Logger.With("phone", ps.info.ID, "job", a.item.jobID, "partition", a.partition).
			Warnf("result digest mismatch (claimed %.8s, computed %.8s); discarding", resp.Digest, computed)
		m.mu.Lock()
		m.reputationEventLocked(ps.info.ID, false, "digest mismatch")
		m.mu.Unlock()
		m.recordFailure(a, &protocol.Message{
			Type: protocol.TypeFailure, Error: "result digest mismatch",
			Epoch: m.Epoch(),
		}, ps.info.ID, 0)
		return true
	}
	if resp.Digest != "" {
		// A carried digest that matched is one successful verification
		// comparison, whatever the voting layer decides next.
		m.sloObserve(sloVerify, true)
	}
	if a.key == 0 {
		return false
	}
	m.mu.Lock()
	vg := m.votes[a.key]
	if vg == nil {
		if m.cfg.VerifyReplicas > 1 && !m.completed[a.key] && m.pendingTwinLocked(a.key) {
			// Voting is on but this key's group was swept (a straggler's
			// late result racing its own requeue): the queued twin will
			// re-execute under a fresh vote, so never fold unverified.
			m.mu.Unlock()
			m.cfg.Logger.With("job", a.item.jobID, "key", a.key).
				Infof("late result dropped: range awaits re-verification")
			return true
		}
		m.mu.Unlock()
		return false
	}
	pid := ps.info.ID
	if _, dup := vg.ballots[pid]; dup {
		// A replayed frame from a phone that already voted; the
		// completed-key dedupe in finalizeResult handles any fold.
		m.mu.Unlock()
		return false
	}
	vg.ballots[pid] = computed
	m.cfg.Metrics.Counter("cwc_verify_votes_total").Inc()

	if vg.resolved {
		// Late ballot after the vote settled: score it against the winner.
		won := computed == vg.winner
		if !won {
			m.cfg.Metrics.Counter("cwc_verify_mismatches_total", "kind", "vote").Inc()
		}
		m.sloObserve(sloVerify, won)
		m.reputationEventLocked(pid, won, "late vote")
		if len(vg.ballots) >= vg.need {
			delete(m.votes, a.key)
		}
		m.mu.Unlock()
		return true
	}

	if vg.audit && vg.folded == "" {
		// Audit: the first result folds immediately; the echo compares.
		vg.folded = computed
		m.mu.Unlock()
		m.finalizeResult(a, resp, est, ps)
		return true
	}
	if vg.audit && len(vg.ballots) == 2 {
		m.cfg.Metrics.Counter("cwc_verify_audits_total").Inc()
	}

	counts := map[string]int{}
	for _, d := range vg.ballots {
		counts[d]++
	}
	if counts[computed] >= vg.quorum {
		m.resolveVoteLocked(a.key, vg, computed)
		fold := !vg.audit // an audit group folded its first result already
		m.mu.Unlock()
		if fold {
			m.finalizeResult(a, resp, est, ps)
		}
		return true
	}
	if len(vg.ballots) >= vg.need {
		// Every expected execution reported and no digest reached quorum:
		// a tie. Re-execute on a high-reputation uninvolved phone. (The
		// mismatch metric is recorded per losing ballot at resolution.)
		if vg.audit {
			m.cfg.Logger.With("job", a.item.jobID, "key", a.key).
				Warnf("audit mismatch: escalating to tie-break for blame")
		}
		m.mu.Unlock()
		m.startTieBreak(a.key)
		return true
	}
	m.mu.Unlock()
	return true // ballot recorded; more executions still due
}

// resolveVoteLocked settles a vote group on the winning digest: winners
// are rewarded, losers penalized (and counted as mismatches). The group
// stays registered until every expected ballot is in, so stragglers on
// the losing side are still penalized. Caller holds m.mu.
func (m *Master) resolveVoteLocked(key int64, vg *voteGroup, winner string) {
	vg.resolved = true
	vg.winner = winner
	kind := "vote"
	if vg.audit {
		kind = "audit"
	}
	for pid, d := range vg.ballots {
		won := d == winner
		if !won {
			m.cfg.Metrics.Counter("cwc_verify_mismatches_total", "kind", kind).Inc()
		}
		m.sloObserve(sloVerify, won)
		m.reputationEventLocked(pid, won, "verification vote")
	}
	if vg.audit && vg.folded != "" && vg.folded != winner {
		// The audited result had already been folded when the echo proved
		// it wrong: the job's aggregate may be tainted. Audits are a
		// sampling defense — they quarantine the liar so the *fleet*
		// recovers; replicated voting is the mode that protects every job.
		m.cfg.Logger.With("job", vg.a.item.jobID, "key", key).
			Errorf("audit: folded result lost the vote; aggregate may be tainted")
	}
	if len(vg.ballots) >= vg.need {
		delete(m.votes, key)
	}
}

// reputationEventLocked folds one verification outcome into a phone's
// EWMA integrity score, WAL-logs the new state, and quarantines the
// phone when a loss drops it below the threshold. Quarantine is sticky:
// only an operator (or a fresh enrolment, which the auth token gates)
// readmits the phone. Caller holds m.mu.
func (m *Master) reputationEventLocked(id int, won bool, why string) {
	alpha := m.cfg.ReputationAlpha
	rep := 1.0
	if r, ok := m.reputation[id]; ok {
		rep = r
	}
	prev := rep
	outcome := 0.0
	if won {
		outcome = 1.0
	}
	rep = (1-alpha)*rep + alpha*outcome
	m.reputation[id] = rep
	quarantine := !won && !m.quarantined[id] &&
		m.cfg.ReputationThreshold > 0 && rep < m.cfg.ReputationThreshold
	if quarantine {
		m.quarantined[id] = true
	}
	if rep != prev || quarantine {
		m.walAppend(walRecReputation, walReputationRec{
			PhoneID: id, Score: rep, Quarantined: m.quarantined[id],
		})
	}
	switch {
	case quarantine:
		m.cfg.Metrics.Counter("cwc_verify_quarantines_total").Inc()
		m.cfg.Logger.With("phone", id).Errorf(
			"quarantined: reputation %.3f fell below %.3f (%s)", rep, m.cfg.ReputationThreshold, why)
	case !won:
		m.cfg.Logger.With("phone", id).Warnf("reputation %.3f after %s", rep, why)
	}
}

// auditSelected deterministically picks ~AuditRate of all keys for
// spot-check audits (stateless: a re-queued key re-selects identically).
func (m *Master) auditSelected(key int64) bool {
	rate := m.cfg.AuditRate
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	// SplitMix64-style scramble of (key, seed) into a uniform [0,1).
	h := uint64(key)*0x9e3779b97f4a7c15 ^ uint64(m.cfg.AuditSeed)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11)/float64(1<<53) < rate
}

// planVerificationLocked places this round's verification executions —
// full replication under VerifyReplicas, seeded spot-checks under
// AuditRate — via core.PlaceCopies, registers their vote groups, and
// returns the per-phone extra assignments to dispatch. The copies share
// their source's key, so every report funnels into the same group.
// Caller holds m.mu (groups must register atomically with the round's
// key assignment).
func (m *Master) planVerificationLocked(plans [][]assignment, inst *core.Instance, items []*workItem) [][]assignment {
	k := m.cfg.VerifyReplicas
	if k <= 1 && m.cfg.AuditRate <= 0 {
		return nil
	}
	itemIdx := make(map[*workItem]int, len(items))
	for j, it := range items {
		itemIdx[it] = j
	}
	// Rebuild a core schedule positionally aligned with plans (the real
	// schedule's slots were re-sliced and zero-byte pieces dropped).
	cs := &core.Schedule{PerPhone: make([][]core.Assignment, len(plans))}
	scheduled := 0
	for pi, asgs := range plans {
		cs.PerPhone[pi] = make([]core.Assignment, len(asgs))
		for i, a := range asgs {
			cs.PerPhone[pi][i] = core.Assignment{
				Phone: pi, Job: itemIdx[a.item], SizeKB: float64(len(a.input)) / 1024,
			}
		}
		scheduled += len(asgs)
	}
	want := func(sp, idx int, _ core.Assignment) int {
		if k > 1 {
			return k - 1
		}
		if m.auditSelected(plans[sp][idx].key) {
			return 1
		}
		return 0
	}
	copies := core.PlaceCopies(inst, cs, want)
	extra := make([][]assignment, len(plans))
	groups := map[int64]*voteGroup{}
	for _, c := range copies {
		src := plans[c.SrcPhone][c.SrcIdx]
		extra[c.Phone] = append(extra[c.Phone], src)
		g := groups[src.key]
		if g == nil {
			g = &voteGroup{a: src, need: 1, audit: k <= 1, ballots: map[int]string{}}
			groups[src.key] = g
		}
		g.need++
	}
	for key, g := range groups {
		g.quorum = g.need/2 + 1
		if g.quorum < 2 {
			g.quorum = 2
		}
		m.votes[key] = g
		// A voted key must settle through its group: suppress the
		// speculation and partial-result shortcuts, which fold coverage
		// outside it.
		m.speculated[key] = true
	}
	if k > 1 && len(copies) < scheduled*(k-1) {
		// Placement shortfall (fleet smaller than the factor): partitions
		// without a single copy run unverified this round. Loud, not
		// fatal — a small fleet still makes progress.
		m.cfg.Logger.Warnf("verification: placed %d of %d wanted copies (fleet too small for k=%d)",
			len(copies), scheduled*(k-1), k)
	}
	return extra
}

// sweepVoteGroupsLocked runs at the end of each round: settled groups
// are dropped, groups whose range is queued for re-dispatch reset (the
// next round recreates them with fresh ballots), and groups no
// execution can resolve anymore hand their range back to the queue.
// Caller holds m.mu.
func (m *Master) sweepVoteGroupsLocked() {
	for key, vg := range m.votes {
		switch {
		case vg.tiePending && !vg.resolved:
			// An arbiter is in flight (an audit group's key is completed
			// yet still awaiting blame); its expiry goroutine owns cleanup.
		case m.completed[key] || vg.resolved:
			delete(m.votes, key)
		case m.pendingTwinLocked(key):
			delete(m.votes, key)
		default:
			it := &workItem{
				jobID:     vg.a.item.jobID,
				task:      vg.a.item.task,
				input:     vg.a.input,
				resume:    m.latestResumeLocked(key, vg.a.resume),
				atomic:    true,
				key:       key,
				retries:   vg.a.item.retries,
				seq:       m.nextSeqLocked(),
				partition: vg.a.partition,
			}
			m.requeueLocked(it, "verification unresolved")
			delete(m.votes, key)
		}
	}
}

// startTieBreak re-executes a tied partition on the highest-reputation
// phone that has not voted on it, registering a detached attempt whose
// report the read loop resolves into the group. When no eligible phone
// exists the range goes back to the queue for a fresh vote next round.
func (m *Master) startTieBreak(key int64) {
	for {
		m.mu.Lock()
		vg := m.votes[key]
		// An audit group's key is completed by construction (its first
		// result folded); the tie-break still runs, for blame.
		if vg == nil || vg.resolved || (!vg.audit && m.completed[key]) {
			m.mu.Unlock()
			return
		}
		arb := m.pickArbiterLocked(vg)
		if arb == nil {
			delete(m.votes, key)
			if !m.completed[key] && !m.pendingTwinLocked(key) {
				it := &workItem{
					jobID:     vg.a.item.jobID,
					task:      vg.a.item.task,
					input:     vg.a.input,
					resume:    m.latestResumeLocked(key, vg.a.resume),
					atomic:    true,
					key:       key,
					retries:   vg.a.item.retries,
					seq:       m.nextSeqLocked(),
					partition: vg.a.partition,
				}
				m.requeueLocked(it, "verification tie: no arbiter")
			}
			m.mu.Unlock()
			m.cfg.Logger.With("job", vg.a.item.jobID, "key", key).
				Warnf("verification tie with no arbiter available; range re-queued")
			return
		}
		m.nextAttempt++
		attempt := m.nextAttempt
		// Detached from birth: no dispatcher waits on it, the read loop
		// resolves the arbiter's report straight into the vote group.
		m.attempts[attempt] = &attemptRec{a: vg.a, ps: arb, live: false}
		vg.tiePending = true
		vg.need++
		a := vg.a
		m.mu.Unlock()

		m.walAppend(walRecDispatch, walDispatch{
			Key: a.key, JobID: a.item.jobID, Partition: a.partition,
			PhoneID: arb.info.ID, Attempt: attempt,
		})
		if err := m.sendAssign(arb, a, attempt); err != nil {
			arb.markDead()
			m.mu.Lock()
			delete(m.attempts, attempt)
			if g := m.votes[key]; g != nil {
				g.tiePending = false
				g.need--
			}
			m.mu.Unlock()
			continue // next-best arbiter
		}
		m.cfg.Logger.With("job", a.item.jobID, "key", key, "phone", arb.info.ID).
			Infof("verification tie: re-executing on arbiter")
		deadline := 2 * m.assignmentDeadline(a, arb)
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			t := time.NewTimer(deadline)
			defer t.Stop()
			select {
			case <-t.C:
				m.tieBreakExpired(key, attempt)
			case <-m.stopped:
			}
		}()
		return
	}
}

// tieBreakExpired reclaims a tie-break whose arbiter never reported:
// the group is dropped and the range re-queued for a fresh vote.
func (m *Master) tieBreakExpired(key, attempt int64) {
	m.mu.Lock()
	vg := m.votes[key]
	if vg == nil || vg.resolved || !vg.tiePending || (!vg.audit && m.completed[key]) {
		m.mu.Unlock()
		return
	}
	delete(m.attempts, attempt)
	delete(m.votes, key)
	if !m.completed[key] && !m.pendingTwinLocked(key) {
		it := &workItem{
			jobID:     vg.a.item.jobID,
			task:      vg.a.item.task,
			input:     vg.a.input,
			resume:    m.latestResumeLocked(key, vg.a.resume),
			atomic:    true,
			key:       key,
			retries:   vg.a.item.retries,
			seq:       m.nextSeqLocked(),
			partition: vg.a.partition,
		}
		m.requeueLocked(it, "verification tie-break expired")
	}
	m.mu.Unlock()
	m.cfg.Logger.With("job", vg.a.item.jobID, "key", key).
		Warnf("tie-break arbiter never reported; range re-queued")
}

// pickArbiterLocked selects the tie-break phone: alive, not quarantined,
// not draining, and not already a voter — highest reputation first, ties
// by lowest ID for determinism. Caller holds m.mu.
func (m *Master) pickArbiterLocked(vg *voteGroup) *phoneState {
	var best *phoneState
	var bestRep float64
	for id, ps := range m.phones {
		if !ps.alive() || m.quarantined[id] {
			continue
		}
		if _, voted := vg.ballots[id]; voted {
			continue
		}
		if _, draining := m.draining[id]; draining {
			continue
		}
		rep := 1.0
		if r, ok := m.reputation[id]; ok {
			rep = r
		}
		if best == nil || rep > bestRep || (rep == bestRep && id < best.info.ID) {
			best, bestRep = ps, rep
		}
	}
	return best
}

// Reputation returns a phone's result-integrity score (1.0 when no
// verification outcome has been recorded for it).
func (m *Master) Reputation(id int) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.reputation[id]; ok {
		return r
	}
	return 1.0
}

// Quarantined reports whether a phone is excluded from placement for
// integrity failures.
func (m *Master) Quarantined(id int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.quarantined[id]
}

// QuarantinedPhones lists quarantined phone IDs in ascending order.
func (m *Master) QuarantinedPhones() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, 0, len(m.quarantined))
	for id := range m.quarantined {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// isQuarantined is Quarantined under a different name for symmetry with
// isDraining at the dispatch call sites.
func (m *Master) isQuarantined(id int) bool { return m.Quarantined(id) }

// admissiblePhones drops quarantined phones from a placement snapshot.
// Unlike the drain filter this is a HARD veto with no never-starve
// fallback: a fleet that is entirely quarantined gets no work (the
// caller sees ErrNoPhones), because a wrong answer is worse than none.
func (m *Master) admissiblePhones(phones []*phoneState) []*phoneState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.quarantined) == 0 {
		return phones
	}
	out := make([]*phoneState, 0, len(phones))
	for _, ps := range phones {
		if !m.quarantined[ps.info.ID] {
			out = append(out, ps)
		}
	}
	return out
}
