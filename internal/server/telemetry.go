package server

import (
	"strconv"
	"time"

	"cwc/internal/obs"
	"cwc/internal/protocol"
)

// Master SLO names. Each is a rolling-window objective whose burn rate
// (/statusz, cwc_slo_* metrics) tells an operator how fast the error
// budget is being spent.
const (
	// sloMakespan: a round's actual makespan landed within the
	// scheduler's predicted makespan plus tolerance. Burning means the
	// profile/bandwidth model has drifted from the fleet.
	sloMakespan = "round_makespan"
	// sloRequeue: a finished attempt settled (result credited) rather
	// than being requeued. Burning means churn or failures are eating
	// recomputation budget.
	sloRequeue = "requeue"
	// sloVerify: a verification comparison (digest, vote, audit,
	// checkpoint divergence) agreed. Burning means untrusted phones are
	// lying faster than quarantine can contain.
	sloVerify = "verify"
	// sloKeepalive: a keepalive interval passed with a pong rather than
	// a miss. Burning means connectivity is flapping fleet-wide.
	sloKeepalive = "keepalive"
)

// sloMakespanTolerance is the slack applied to the predicted makespan
// before an actual round duration counts against sloMakespan: prediction
// is a packing estimate, not a deadline, so only a 2x blowout burns.
const sloMakespanTolerance = 2.0

// registerMasterSLOs builds the master's SLO catalog. Targets are the
// tolerable bad fraction over a one-minute rolling window; they are
// deliberately loose (this is a burn-rate early-warning system, not an
// alerting contract).
func registerMasterSLOs() *obs.SLOSet {
	s := obs.NewSLOSet()
	s.Register(sloMakespan, 0.25, time.Minute, 12)
	s.Register(sloRequeue, 0.10, time.Minute, 12)
	s.Register(sloVerify, 0.02, time.Minute, 12)
	s.Register(sloKeepalive, 0.05, time.Minute, 12)
	return s
}

// sloObserve feeds one good/bad observation into the named SLO and
// mirrors it onto monotone counters so burn is also derivable from
// scraped /metrics history.
func (m *Master) sloObserve(name string, good bool) {
	m.slos.Observe(name, good)
	if good {
		m.cfg.Metrics.Counter("cwc_slo_good_total", "slo", name).Inc()
	} else {
		m.cfg.Metrics.Counter("cwc_slo_bad_total", "slo", name).Inc()
	}
}

// kindLabel maps a worker event kind to a bounded metric label: known
// kinds keep their wire name, anything from a newer worker collapses to
// "other" so version skew cannot mint unbounded label values.
func kindLabel(k protocol.EventKind) string {
	switch k {
	case protocol.EventAssignRecv:
		return string(protocol.EventAssignRecv)
	case protocol.EventExecStart:
		return string(protocol.EventExecStart)
	case protocol.EventExecFinish:
		return string(protocol.EventExecFinish)
	case protocol.EventThrottlePause:
		return string(protocol.EventThrottlePause)
	case protocol.EventCkptFlush:
		return string(protocol.EventCkptFlush)
	case protocol.EventCkptAck:
		return string(protocol.EventCkptAck)
	case protocol.EventDrainHandback:
		return string(protocol.EventDrainHandback)
	case protocol.EventDial:
		return string(protocol.EventDial)
	default:
		return "other"
	}
}

// foldTelemetry merges one worker telemetry frame into the master's
// trace ring, turning each shipped WorkerEvent into a SpanEvent tagged
// Src="worker" so /debug/trace and /debug/timeline interleave both sides
// of every partition's causal history. Events keep the timestamp and
// fencing epoch they were minted under on the phone — a batch buffered
// across a standby promotion lands with its original regime visible.
func (m *Master) foldTelemetry(ps *phoneState, msg *protocol.Message) {
	if msg.Dropped > 0 {
		// Cumulative per-phone drop count; a gauge because the worker
		// reports a running total, not a delta.
		//lint:ignore metrics the phone label is bounded by fleet size, not by traffic
		m.cfg.Metrics.Gauge("cwc_telemetry_dropped", "phone", strconv.Itoa(ps.info.ID)).
			Set(float64(msg.Dropped))
	}
	for _, ev := range msg.Events {
		m.cfg.Metrics.Counter("cwc_telemetry_events_total", "kind", kindLabel(ev.Kind)).Inc()
		// Classify the kind: span-scoped events anchor to a job's trace
		// span and are orphan-checked; phone-scoped ones (pauses, dials)
		// have no span to anchor. cwc-vet's frames analyzer requires
		// this dispatch to stay exhaustive as kinds are added.
		spanScoped := false
		switch ev.Kind {
		case protocol.EventAssignRecv, protocol.EventExecStart,
			protocol.EventExecFinish, protocol.EventCkptFlush,
			protocol.EventCkptAck, protocol.EventDrainHandback:
			spanScoped = true
		case protocol.EventThrottlePause, protocol.EventDial:
			// Phone-scoped: folded without a span anchor.
		default:
			// A kind from a newer worker: folded for forward
			// compatibility, counted so version skew is visible. The
			// kind itself goes to the log, not a label — a wire-supplied
			// label value would let version skew (or a hostile phone)
			// grow the registry without bound.
			m.cfg.Metrics.Counter("cwc_telemetry_unknown_total").Inc()
			m.cfg.Logger.With("phone", ps.info.ID, "kind", string(ev.Kind)).
				Debugf("telemetry event of unknown kind")
		}
		if spanScoped && ev.Span != "" && !m.knownSpan(ev.Span) {
			// An orphan span means the worker attributed work to a job
			// this master regime has never heard of — a stitching bug or
			// fencing hole, never expected in a healthy cluster.
			m.cfg.Metrics.Counter("cwc_telemetry_orphan_spans_total").Inc()
			m.cfg.Logger.With("phone", ps.info.ID, "span", ev.Span).
				Warnf("telemetry event for unknown span")
		}
		m.cfg.Tracer.Record(obs.SpanEvent{
			TS: time.UnixMilli(ev.TSMs), Span: ev.Span, Kind: string(ev.Kind),
			Job: ev.Job, Partition: ev.Partition, Phone: ps.info.ID,
			Bytes: ev.Bytes, Ms: ev.Ms, Detail: ev.Detail,
			Src: "worker", Epoch: ev.Epoch,
		})
	}
}

// knownSpan reports whether a trace span names a job this master knows
// (jobs are never deleted, so any span ever minted by this regime — or
// recovered from its WAL — resolves).
func (m *Master) knownSpan(span string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, js := range m.jobs {
		if js.span == span {
			return true
		}
		// Recovery leaves spans lazily minted; match the deterministic
		// form without forcing the mint.
		if js.span == "" && span == "j"+strconv.Itoa(id) {
			return true
		}
	}
	return false
}
