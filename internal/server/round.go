package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"cwc/internal/core"
	"cwc/internal/obs"
	"cwc/internal/predict"
	"cwc/internal/protocol"
	"cwc/internal/tasks"
)

// spanForJobLocked returns the job's trace span, minting the
// deterministic ID when recovery (which does not persist spans) left it
// unset. Caller holds m.mu.
func (m *Master) spanForJobLocked(jobID int) string {
	js := m.jobs[jobID]
	if js == nil {
		return ""
	}
	if js.span == "" {
		js.span = fmt.Sprintf("j%d", js.id)
	}
	return js.span
}

// spanForJob is spanForJobLocked for callers not holding m.mu.
func (m *Master) spanForJob(jobID int) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.spanForJobLocked(jobID)
}

// Submit queues a job for the next scheduling round and returns its ID.
// A task that does not implement tasks.Breakable is scheduled atomically
// regardless of the atomic flag. With a WAL attached, the submission is
// logged (and, under SyncAlways, on stable storage) before the ID is
// returned: an acknowledged job survives a master killed the next
// instant.
func (m *Master) Submit(task tasks.Task, input []byte, atomic bool) (int, error) {
	if len(input) == 0 {
		return 0, errors.New("server: empty job input")
	}
	if _, breakable := task.(tasks.Breakable); !breakable {
		atomic = true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.nextJobID
	seq := m.nextItemSeq + 1
	if err := m.walAppendErr(walRecSubmit, walSubmit{
		JobID: id, Seq: seq, Task: task.Name(), Params: task.Params(),
		Input: input, Atomic: atomic,
	}); err != nil {
		return 0, fmt.Errorf("server: persisting submission: %w", err)
	}
	m.nextJobID++
	m.nextItemSeq = seq
	span := fmt.Sprintf("j%d", id)
	m.jobs[id] = &jobState{id: id, task: task, totalBytes: int64(len(input)), span: span}
	m.pending = append(m.pending, &workItem{
		jobID:  id,
		task:   task,
		input:  input,
		atomic: atomic,
		seq:    seq,
	})
	m.cfg.Metrics.Counter("cwc_submissions_total").Inc()
	m.cfg.Tracer.Record(obs.SpanEvent{
		Span: span, Kind: obs.KindSubmit, Job: id, Phone: -1,
		Bytes: int64(len(input)), Detail: task.Name(),
	})
	return id, nil
}

// Result returns a completed job's aggregated result. A job that ended
// in a terminal aggregation failure never yields a result; JobFailure
// reports why.
func (m *Master) Result(jobID int) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	js, ok := m.jobs[jobID]
	if !ok || !js.done || js.failure != "" {
		return nil, false
	}
	return js.final, true
}

// JobFailure reports a job's terminal aggregation error, if it has one.
func (m *Master) JobFailure(jobID int) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	js, ok := m.jobs[jobID]
	if !ok || js.failure == "" {
		return "", false
	}
	return js.failure, true
}

// PendingItems reports how many work items await scheduling (fresh jobs
// plus failed work carried to the next round, the paper's F_A list).
func (m *Master) PendingItems() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// MeasureBandwidths probes every live phone with a timed bulk transfer
// (the prototype's iperf step) and records b_i = elapsed ms / probe KB.
func (m *Master) MeasureBandwidths(ctx context.Context) error {
	phones := m.alivePhones()
	if len(phones) == 0 {
		return ErrNoPhones
	}
	payload := make([]byte, m.cfg.ProbeKB*1024)
	var wg sync.WaitGroup
	for _, ps := range phones {
		wg.Add(1)
		go func(ps *phoneState) {
			defer wg.Done()
			start := time.Now()
			if err := ps.conn.Send(&protocol.Message{Type: protocol.TypeProbe, Payload: payload}); err != nil {
				ps.markDead()
				return
			}
			select {
			case <-ps.probeCh:
				elapsed := float64(time.Since(start)) / float64(time.Millisecond)
				b := elapsed / float64(m.cfg.ProbeKB)
				if b <= 0 {
					b = 0.001 // sub-resolution loopback transfer
				}
				m.mu.Lock()
				ps.info.BMsPerKB = b
				m.mu.Unlock()
				m.cfg.Logger.With("phone", ps.info.ID).Infof("bandwidth: %.3f ms/KB", b)
			case <-ps.dead:
			case <-ctx.Done():
			}
		}(ps)
	}
	wg.Wait()
	return ctx.Err()
}

// estimator returns the predictor, creating it anchored at the slowest
// live phone on first use (the paper's scaling anchor).
func (m *Master) estimator(phones []*phoneState) (*predict.Estimator, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.est != nil {
		return m.est, nil
	}
	slowest := phones[0]
	for _, ps := range phones[1:] {
		if ps.info.CPUMHz < slowest.info.CPUMHz {
			slowest = ps
		}
	}
	est, err := predict.New(slowest.info.CPUMHz, 1)
	if err != nil {
		return nil, err
	}
	m.est = est
	return est, nil
}

// profileSampleKB is the profiling input size (the paper profiles each
// task on 1 KB of its input on the slowest phone).
const profileSampleKB = 1.0

// profileIfNeeded runs the single profiling execution for every distinct
// task in items that lacks a base profile.
func (m *Master) profileIfNeeded(ctx context.Context, items []*workItem, phones []*phoneState) error {
	est, err := m.estimator(phones)
	if err != nil {
		return err
	}
	profiled := map[string]bool{}
	for _, it := range items {
		name := it.task.Name()
		if profiled[name] || est.Profiled(name) {
			continue
		}
		profiled[name] = true
		if err := m.profileOne(ctx, est, it, name); err != nil {
			return err
		}
	}
	return nil
}

// profileOne runs a single task's profiling execution on the slowest live
// phone, moving to the next-slowest survivor if a phone fails mid-profile
// (an unplug during profiling must not sink the whole round).
func (m *Master) profileOne(ctx context.Context, est *predict.Estimator, it *workItem, name string) error {
	sample := profileSample(it)
	tried := map[int]bool{}
	for {
		var slowest *phoneState
		for _, ps := range m.alivePhones() {
			if tried[ps.info.ID] || m.isQuarantined(ps.info.ID) {
				continue
			}
			if slowest == nil || ps.info.CPUMHz < slowest.info.CPUMHz {
				slowest = ps
			}
		}
		if slowest == nil {
			return fmt.Errorf("server: no phone left to profile %s", name)
		}
		tried[slowest.info.ID] = true
		if err := slowest.conn.Send(&protocol.Message{
			Type:      protocol.TypeAssign,
			JobID:     0, // profiling sentinel, never a real job
			Partition: -1,
			Task:      name,
			Params:    it.task.Params(),
			Input:     sample,
		}); err != nil {
			slowest.markDead()
			continue
		}
		select {
		case resp := <-slowest.respCh:
			if resp.Type != protocol.TypeResult {
				m.cfg.Logger.With("phone", slowest.info.ID, "task", name).
					Warnf("profiling failed (%s); retrying elsewhere", resp.Error)
				continue
			}
			kb := float64(len(sample)) / 1024
			ts := resp.ExecMs / kb
			if ts <= 0 {
				ts = 0.001 // sub-clock-resolution execution
			}
			if err := est.SetProfile(name, ts); err != nil {
				return err
			}
			m.cfg.Logger.With("phone", slowest.info.ID, "task", name).Infof("profiled: %.3f ms/KB", ts)
			return nil
		case <-slowest.dead:
			m.cfg.Logger.With("phone", slowest.info.ID).Warnf("profiling phone died; retrying elsewhere")
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// profileSample extracts ~1 KB of a work item's input for profiling;
// atomic inputs are profiled whole (e.g. a small image must stay
// decodable).
func profileSample(it *workItem) []byte {
	b, ok := it.task.(tasks.Breakable)
	if !ok || it.atomic {
		return it.input
	}
	total := float64(len(it.input)) / 1024
	if total <= profileSampleKB {
		return it.input
	}
	pieces, err := b.Split(it.input, []float64{profileSampleKB, total - profileSampleKB})
	if err != nil || len(pieces) == 0 || len(pieces[0]) == 0 {
		return it.input
	}
	return pieces[0]
}

// Event is one timeline entry of a round, for Figure 12-style plots.
type Event struct {
	At        time.Duration // offset from round start
	PhoneID   int
	JobID     int
	Partition int
	Kind      string // "assign", "result", "failure", "requeue", "straggler", "stale-result", "deadletter"
}

// RoundReport summarizes one scheduling round.
type RoundReport struct {
	Items               int
	PredictedMakespanMs float64
	Wall                time.Duration
	CompletedJobs       []int
	FailedPhones        []int
	Requeued            int
	// Stragglers lists phones that blew an assignment deadline this round
	// (their partitions were speculatively re-dispatched).
	Stragglers []int
	// DeadLettered counts work items whose retry budget ran out this round.
	DeadLettered int
	Events       []Event
}

// assignment couples a core schedule slot with its concrete input bytes.
type assignment struct {
	item      *workItem
	partition int
	input     []byte
	resume    *tasks.Checkpoint
	// key is the dispatch identity of this byte range; see workItem.key.
	key int64
}

// ErrNothingToDo is returned by RunRound with an empty queue.
var ErrNothingToDo = errors.New("server: no pending work")

// RunRound schedules all pending work (fresh submissions plus failed work
// from earlier rounds) across the live fleet, dispatches it, waits for
// completion or failure, and aggregates finished jobs. Failed work is
// re-queued for the *next* round, mirroring the paper's decision to delay
// re-scheduling until the next scheduling instant. RunRound is not safe
// for concurrent invocation.
func (m *Master) RunRound(ctx context.Context) (*RoundReport, error) {
	m.mu.Lock()
	// Drop queued items whose key already completed: their speculative twin
	// (or a late straggler result) delivered the byte range first.
	items := m.pending[:0]
	for _, it := range m.pending {
		if it.key != 0 && m.completed[it.key] {
			continue
		}
		items = append(items, it)
	}
	m.pending = nil
	m.mu.Unlock()
	if len(items) == 0 {
		return nil, ErrNothingToDo
	}

	phones := m.admissiblePhones(m.placeablePhones(m.alivePhones()))
	if len(phones) == 0 {
		m.mu.Lock()
		m.pending = append(items, m.pending...)
		m.mu.Unlock()
		return nil, ErrNoPhones
	}

	if err := m.profileIfNeeded(ctx, items, phones); err != nil {
		m.mu.Lock()
		m.pending = append(items, m.pending...)
		m.mu.Unlock()
		return nil, err
	}
	// Re-snapshot: profiling may have killed a phone (or the drain
	// monitor may have closed one).
	phones = m.admissiblePhones(m.placeablePhones(m.alivePhones()))
	if len(phones) == 0 {
		m.mu.Lock()
		m.pending = append(items, m.pending...)
		m.mu.Unlock()
		return nil, ErrNoPhones
	}

	sched, inst, err := m.buildSchedule(items, phones)
	if err != nil {
		m.mu.Lock()
		m.pending = append(items, m.pending...)
		m.mu.Unlock()
		return nil, err
	}

	plans, err := slicePartitions(items, sched)
	if err != nil {
		m.mu.Lock()
		m.pending = append(items, m.pending...)
		m.mu.Unlock()
		return nil, err
	}

	// Give every dispatched partition its key: re-queued keyed items keep
	// theirs (they are atomic, so the byte range is unchanged); everything
	// else gets a fresh identity for first-result-wins tracking. The
	// round record — which fresh items were consumed, which keyed byte
	// ranges replace them — is logged in the same critical section so
	// replay sees the handoff atomically.
	m.mu.Lock()
	var rr walRound
	logWAL := m.cfg.WAL != nil
	if logWAL {
		for _, it := range items {
			if it.key == 0 {
				rr.Consumed = append(rr.Consumed, it.seq)
			}
		}
	}
	for pi := range plans {
		for k := range plans[pi] {
			a := &plans[pi][k]
			if a.item.key != 0 {
				a.key = a.item.key
				// Fold the freshest streamed checkpoint in: a checkpoint
				// that arrived after the item was re-queued (e.g. from an
				// abandoned straggler still chewing on the range) would
				// otherwise be ignored.
				a.resume = m.latestResumeLocked(a.key, a.resume)
			} else {
				m.nextKey++
				a.key = m.nextKey
			}
			if logWAL {
				rr.Items = append(rr.Items, walRoundItem{
					JobID: a.item.jobID, Key: a.key, Input: a.input,
					Resume: a.resume, Retries: a.item.retries,
					Partition: a.partition,
				})
			}
		}
	}
	if logWAL {
		if err := m.walAppendErr(walRecRound, rr); err != nil {
			// A missing round record with later report records behind it
			// replays into double-counted coverage: the consumed fresh
			// items re-queue (their seqs were never marked consumed) AND
			// the reports credit the keys they became. Nothing has been
			// dispatched yet, so abort the round instead — re-queue the
			// drained items and fold live state into a fresh snapshot so
			// log and state re-converge (compaction also clears a wedged
			// log). RunLoop retries at the next scheduling instant.
			m.pending = append(items, m.pending...)
			m.mu.Unlock()
			m.cfg.Logger.With("rec", walRecRound).Errorf("wal: round record lost (%v); aborting round", err)
			if cerr := m.CompactWAL(); cerr != nil {
				m.cfg.Logger.Errorf("wal: compaction after lost round record: %v", cerr)
			}
			return nil, fmt.Errorf("server: persisting round record: %w", err)
		}
	}
	// Verification executions (replicas / audits) ride the same round:
	// registered in this critical section so their vote groups exist
	// before any copy can report. Copies share their source's key, so
	// the round record above already names every byte range once.
	extra := m.planVerificationLocked(plans, inst, items)
	// From here until the end-of-round sweep, RunRound owns aggregation;
	// vote resolutions that complete a job's coverage mid-round leave the
	// aggregate to the sweep.
	m.roundActive = true
	m.mu.Unlock()
	for pi, es := range extra {
		plans[pi] = append(plans[pi], es...)
	}

	// The packing decision, snapshotted before dispatch so /debug/sched
	// can pair it with the round's actuals afterwards.
	snap := m.newSchedSnapshot(items, phones, plans, sched, inst)

	report := &RoundReport{
		Items:               len(items),
		PredictedMakespanMs: sched.Makespan,
	}
	start := time.Now()
	var (
		evMu sync.Mutex
		wg   sync.WaitGroup
	)
	addEvent := func(e Event) {
		evMu.Lock()
		report.Events = append(report.Events, e)
		evMu.Unlock()
		m.traceEvent(e)
	}
	for pi, ps := range phones {
		queue := plans[pi]
		if len(queue) == 0 {
			continue
		}
		wg.Add(1)
		go func(ps *phoneState, queue []assignment) {
			defer wg.Done()
			m.dispatch(ctx, ps, queue, start, addEvent)
		}(ps, queue)
	}
	wg.Wait()
	report.Wall = time.Since(start)
	for _, e := range report.Events {
		switch e.Kind {
		case "straggler":
			report.Stragglers = append(report.Stragglers, e.PhoneID)
		case "deadletter":
			report.DeadLettered++
		}
	}
	finishSchedSnapshot(snap, report.Events, report.Wall)
	wallMs := float64(report.Wall) / float64(time.Millisecond)
	m.cfg.Metrics.Counter("cwc_rounds_total").Inc()
	m.cfg.Metrics.Gauge("cwc_round_predicted_makespan_ms").Set(sched.Makespan)
	m.cfg.Metrics.Gauge("cwc_round_actual_makespan_ms").Set(wallMs)
	m.cfg.Metrics.Histogram("cwc_round_wall_ms").Observe(wallMs)
	// SLO: the packing prediction held if the measured wall time stayed
	// within tolerance of the estimate (an unpredicted round is vacuously
	// good — there was no promise to break).
	m.sloObserve(sloMakespan, sched.Makespan <= 0 || wallMs <= sched.Makespan*sloMakespanTolerance)

	// Aggregate completed jobs and count requeues.
	m.mu.Lock()
	m.rounds++
	snap.Round = m.rounds
	m.lastSched = snap
	// Sweep attempt records that can no longer resolve: completed keys,
	// and dead phones (whose in-flight work was re-queued on death). A
	// key with an open vote group still wants its reports — an audit
	// blame tie-break runs on a key that already folded.
	for id, rec := range m.attempts {
		if (m.completed[rec.a.key] && m.votes[rec.a.key] == nil) || !rec.ps.alive() {
			delete(m.attempts, id)
		}
	}
	// Settled-failure dedupe entries only matter while a replay can still
	// race the original (within the round); afterwards resolveDetached's
	// unknown-attempt drop covers replays.
	m.settledFailures = map[int64]bool{}
	// Vote groups the round could not settle are swept before aggregation:
	// an unresolved group's range goes back to the queue, so its job stays
	// under-covered rather than folding unverified.
	m.sweepVoteGroupsLocked()
	m.roundActive = false
	report.Requeued = len(m.pending)
	for _, js := range m.jobs {
		if js.done || js.covered < js.totalBytes {
			continue
		}
		m.finishJobLocked(js)
		if js.done && js.failure == "" {
			report.CompletedJobs = append(report.CompletedJobs, js.id)
		}
	}
	for _, ps := range phones {
		if !ps.alive() {
			report.FailedPhones = append(report.FailedPhones, ps.info.ID)
		}
	}
	m.mu.Unlock()
	if wl := m.cfg.WAL; wl != nil && wl.CompactDue() {
		if err := m.CompactWAL(); err != nil {
			m.cfg.Logger.Errorf("wal: compaction failed: %v", err)
		}
	}
	return report, nil
}

// newSchedSnapshot captures the round's bin-packing decision before
// dispatch: per-phone predicted busy spans and per-assignment predicted
// costs under the cost model the scheduler actually used. Actuals are
// filled in by finishSchedSnapshot once the round ends.
func (m *Master) newSchedSnapshot(items []*workItem, phones []*phoneState, plans [][]assignment, sched *core.Schedule, inst *core.Instance) *SchedSnapshot {
	itemIdx := make(map[*workItem]int, len(items))
	for j, it := range items {
		itemIdx[it] = j
	}
	snap := &SchedSnapshot{PredictedMakespanMs: sched.Makespan}
	spans := sched.PhoneSpans(inst)
	for pi, ps := range phones {
		sp := SchedPhone{PhoneID: ps.info.ID, PredictedSpanMs: spans[pi]}
		shipped := map[int]bool{}
		for _, a := range plans[pi] {
			j := itemIdx[a.item]
			sizeKB := float64(len(a.input)) / 1024
			withExec := !shipped[j]
			shipped[j] = true
			sp.Assignments = append(sp.Assignments, SchedAssignment{
				JobID:       a.item.jobID,
				Partition:   a.partition,
				Key:         a.key,
				SizeKB:      sizeKB,
				PredictedMs: inst.Cost(pi, j, sizeKB, withExec),
				ActualMs:    -1,
				Outcome:     "pending",
			})
		}
		snap.Phones = append(snap.Phones, sp)
	}
	return snap
}

// traceEvent mirrors a round timeline entry into the task-lifecycle
// tracer. Requeue and dead-letter edges are recorded at their single
// choke point (requeueLocked) instead, so they are skipped here.
func (m *Master) traceEvent(e Event) {
	var kind, detail string
	switch e.Kind {
	case "assign":
		kind = obs.KindAssign
	case "result":
		kind = obs.KindResult
	case "failure":
		kind = obs.KindFailure
	case "straggler":
		kind = obs.KindStraggler
	case "stale-result":
		kind, detail = obs.KindResult, "stale"
		m.cfg.Metrics.Counter("cwc_stale_results_total").Inc()
	default:
		return
	}
	if e.Kind == "straggler" {
		m.cfg.Metrics.Counter("cwc_stragglers_total").Inc()
	}
	m.cfg.Tracer.Record(obs.SpanEvent{
		Span: m.spanForJob(e.JobID), Kind: kind, Job: e.JobID,
		Partition: e.Partition, Phone: e.PhoneID,
		Ms: float64(e.At) / float64(time.Millisecond), Detail: detail,
	})
}

// buildSchedule constructs the core instance from live state and solves it.
func (m *Master) buildSchedule(items []*workItem, phones []*phoneState) (*core.Schedule, *core.Instance, error) {
	est, err := m.estimator(phones)
	if err != nil {
		return nil, nil, err
	}
	inst := &core.Instance{}
	m.mu.Lock()
	for _, ps := range phones {
		inst.Phones = append(inst.Phones, core.Phone{
			ID:       ps.info.ID,
			BMsPerKB: ps.info.BMsPerKB,
			RAMKB:    float64(ps.info.RAMMB) * 1024,
		})
	}
	m.mu.Unlock()
	for idx, it := range items {
		inst.Jobs = append(inst.Jobs, core.Job{
			ID:      idx,
			Task:    it.task.Name(),
			ExecKB:  it.task.ExecKB(),
			InputKB: it.remainingKB(),
			Atomic:  it.atomic || it.resume != nil || it.key != 0,
		})
	}
	inst.C = make([][]float64, len(inst.Phones))
	for i, ps := range phones {
		inst.C[i] = make([]float64, len(items))
		for j, it := range items {
			c, err := est.Estimate(it.task.Name(), ps.info.ID, ps.info.CPUMHz)
			if err != nil {
				return nil, nil, err
			}
			inst.C[i][j] = c
		}
	}
	// Deadline-aware packing: cap each phone's bin at its predicted
	// remaining charge window, so a partition whose completion would
	// cross the phone's predicted-unplug quantile is placed elsewhere.
	windowed := false
	if m.cfg.PlugAware {
		now := nowMs()
		for i, ps := range phones {
			rem, ok := m.windows.RemainingMs(ps.info.ID, now, m.cfg.DrainQuantile)
			if !ok {
				continue // too little history: never veto
			}
			if rem < 1 {
				// Overdue phone: an epsilon window vetoes real work on it
				// without the zero value's "unconstrained" meaning.
				rem = 1
			}
			inst.Phones[i].AvailMs = rem
			windowed = true
		}
	}
	sched, err := core.Greedy(inst)
	if windowed && errors.Is(err, core.ErrInfeasible) {
		// The windows are advisory: when every phone's predicted window
		// is too tight to fit the work at all, running somewhere beats
		// starving the queue. Retry the same instance unconstrained.
		m.cfg.Logger.Warnf("plug-aware windows made packing infeasible; retrying without them")
		for i := range inst.Phones {
			inst.Phones[i].AvailMs = 0
		}
		sched, err = core.Greedy(inst)
	}
	if err != nil {
		return nil, nil, err
	}
	if sched.Vetoed > 0 {
		m.cfg.Metrics.Counter("cwc_placements_vetoed_total").Add(int64(sched.Vetoed))
	}
	return sched, inst, nil
}

// slicePartitions turns the abstract schedule into per-phone queues of
// concrete byte partitions, splitting breakable inputs at record
// boundaries.
func slicePartitions(items []*workItem, sched *core.Schedule) ([][]assignment, error) {
	// Gather each item's assignments in deterministic (phone, order)
	// sequence.
	type slot struct {
		phone, pos int
		sizeKB     float64
	}
	perItem := make([][]slot, len(items))
	for pi, asgs := range sched.PerPhone {
		for pos, a := range asgs {
			perItem[a.Job] = append(perItem[a.Job], slot{phone: pi, pos: pos, sizeKB: a.SizeKB})
		}
	}
	plans := make([][]assignment, len(sched.PerPhone))
	for pi := range plans {
		plans[pi] = make([]assignment, len(sched.PerPhone[pi]))
	}
	for j, slots := range perItem {
		it := items[j]
		if len(slots) == 0 {
			return nil, fmt.Errorf("server: item %d received no assignment", j)
		}
		if len(slots) == 1 {
			// A re-queued range keeps the partition number it was first
			// dispatched under so its timeline stays one row.
			plans[slots[0].phone][slots[0].pos] = assignment{
				item: it, partition: it.partition, input: it.input, resume: it.resume,
			}
			continue
		}
		b, ok := it.task.(tasks.Breakable)
		if !ok {
			return nil, fmt.Errorf("server: scheduler split non-breakable item %d", j)
		}
		sizes := make([]float64, len(slots))
		for k, s := range slots {
			sizes[k] = s.sizeKB
		}
		pieces, err := b.Split(it.input, sizes)
		if err != nil {
			return nil, fmt.Errorf("server: splitting item %d: %w", j, err)
		}
		for k, s := range slots {
			plans[s.phone][s.pos] = assignment{
				item: it, partition: k, input: pieces[k],
			}
		}
	}
	// Drop zero-byte pieces (a line-boundary split can starve a slot).
	for pi := range plans {
		kept := plans[pi][:0]
		for _, a := range plans[pi] {
			if len(a.input) > 0 {
				kept = append(kept, a)
			}
		}
		plans[pi] = kept
	}
	return plans, nil
}

// newAttempt registers a dispatch attempt so reports can be paired with
// the exact assignment that caused them, even across reconnects.
func (m *Master) newAttempt(ps *phoneState, a assignment) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextAttempt++
	m.attempts[m.nextAttempt] = &attemptRec{a: a, ps: ps, live: true}
	return m.nextAttempt
}

// dropAttempt forgets an attempt whose outcome is settled.
func (m *Master) dropAttempt(id int64) {
	m.mu.Lock()
	delete(m.attempts, id)
	m.mu.Unlock()
}

// detachAttempt keeps an attempt registered but marks that no dispatcher
// waits on it anymore; the read loop will credit its eventual report.
func (m *Master) detachAttempt(id int64) {
	m.mu.Lock()
	if rec, ok := m.attempts[id]; ok {
		rec.live = false
	}
	m.mu.Unlock()
}

// assignmentDeadline bounds one assignment by DeadlineFactor times its
// cost-model estimate E_j·b_i + l_ij·(b_i + c_ij), floored at
// DeadlineFloor (early estimates are unreliable).
func (m *Master) assignmentDeadline(a assignment, ps *phoneState) time.Duration {
	d := m.cfg.DeadlineFloor
	// Snapshot the estimator pointer and the bandwidth together: m.est is
	// lazily created under m.mu and this path runs on dispatcher goroutines.
	m.mu.Lock()
	est := m.est
	b := ps.info.BMsPerKB
	m.mu.Unlock()
	if est == nil {
		return d
	}
	c, err := est.Estimate(a.item.task.Name(), ps.info.ID, ps.info.CPUMHz)
	if err != nil {
		return d
	}
	l := float64(len(a.input)) / 1024
	ms := a.item.task.ExecKB()*b + l*(b+c)
	if byModel := time.Duration(ms * m.cfg.DeadlineFactor * float64(time.Millisecond)); byModel > d {
		d = byModel
	}
	return d
}

// speculate queues an atomic copy of a straggling assignment for the next
// round. The original attempt stays outstanding; whichever report arrives
// first wins the key. At most one copy is issued per key.
func (m *Master) speculate(a assignment) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if a.key == 0 || m.completed[a.key] || m.speculated[a.key] {
		return false
	}
	m.speculated[a.key] = true
	m.pending = append(m.pending, &workItem{
		jobID:     a.item.jobID,
		task:      a.item.task,
		input:     a.input,
		resume:    m.latestResumeLocked(a.key, a.resume),
		atomic:    true,
		key:       a.key,
		retries:   a.item.retries,
		seq:       m.nextSeqLocked(),
		partition: a.partition,
	})
	m.cfg.Metrics.Counter("cwc_speculations_total").Inc()
	m.cfg.Tracer.Record(obs.SpanEvent{
		Span: m.spanForJobLocked(a.item.jobID), Kind: obs.KindSpeculate,
		Job: a.item.jobID, Partition: a.partition, Key: a.key, Phone: -1,
		Bytes: int64(len(a.input)),
	})
	return true
}

// dispatch feeds one phone its queue, one partition at a time ("the next
// assigned task to the phone is copied only after the phone completes
// executing its last assigned task"), handling results, failures,
// deadlines, and stragglers.
func (m *Master) dispatch(ctx context.Context, ps *phoneState, queue []assignment, start time.Time, addEvent func(Event)) {
	// m.est is lazily created under m.mu; dispatch runs on per-phone
	// goroutines, so take the lock for the pointer snapshot.
	m.mu.Lock()
	est := m.est
	m.mu.Unlock()
	for qi, a := range queue {
		if m.isDraining(ps.info.ID) || m.isQuarantined(ps.info.ID) {
			// The drain monitor closed this phone mid-round (or a lost
			// verification vote quarantined it); hand the rest of its
			// queue back instead of feeding it more work.
			m.requeueFrom(queue[qi:], start, addEvent)
			return
		}
		addEvent(Event{At: time.Since(start), PhoneID: ps.info.ID, JobID: a.item.jobID,
			Partition: a.partition, Kind: "assign"})
		if a.resume != nil && m.cfg.Journal != nil {
			m.cfg.Journal.RecordResume(a.item.jobID, a.partition, ps.info.ID)
		}
		attempt := m.newAttempt(ps, a)
		// Audit record: replay treats an unreported dispatch as still
		// open, so ordering against state records is immaterial.
		m.walAppend(walRecDispatch, walDispatch{
			Key: a.key, JobID: a.item.jobID, Partition: a.partition,
			PhoneID: ps.info.ID, Attempt: attempt,
		})
		if err := m.sendAssign(ps, a, attempt); err != nil {
			m.dropAttempt(attempt)
			ps.markDead()
			m.requeueFrom(queue[qi:], start, addEvent)
			return
		}
		deadline := m.assignmentDeadline(a, ps)
		timer := time.NewTimer(deadline)
		straggled := false
	wait:
		for {
			select {
			case resp := <-ps.respCh:
				if resp.Attempt != 0 && resp.Attempt != attempt {
					// A report queued for an earlier attempt on this phone
					// before it was abandoned; credit it and keep waiting.
					m.mu.Lock()
					rec, ok := m.attempts[resp.Attempt]
					delete(m.attempts, resp.Attempt)
					m.mu.Unlock()
					if ok && resp.Type == protocol.TypeResult {
						addEvent(Event{At: time.Since(start), PhoneID: ps.info.ID,
							JobID: rec.a.item.jobID, Partition: rec.a.partition, Kind: "stale-result"})
						m.recordResult(rec.a, resp, est, rec.ps)
					}
					continue
				}
				m.dropAttempt(attempt)
				switch resp.Type {
				case protocol.TypeResult:
					addEvent(Event{At: time.Since(start), PhoneID: ps.info.ID,
						JobID: a.item.jobID, Partition: a.partition, Kind: "result"})
					m.recordResult(a, resp, est, ps)
				case protocol.TypeFailure:
					addEvent(Event{At: time.Since(start), PhoneID: ps.info.ID,
						JobID: a.item.jobID, Partition: a.partition, Kind: "failure"})
					m.cfg.Logger.With("phone", ps.info.ID, "job", a.item.jobID).
						Warnf("failure report: %s", resp.Error)
					m.recordFailure(a, resp, ps.info.ID, attempt)
					if resp.Error == drainFailureReason {
						// Proactive-drain handback: the phone is still
						// plugged and connected. Keep it alive — the real
						// unplug must still be observed for window learning
						// — but give it no more work.
						m.completeDrain(ps.info.ID)
						m.requeueFrom(queue[qi+1:], start, addEvent)
						timer.Stop()
						return
					}
					ps.markDead()
					m.requeueFrom(queue[qi+1:], start, addEvent)
					timer.Stop()
					return
				default:
					// respCh only ever carries result/failure frames (the
					// read loop routes everything else), so this is
					// unreachable; the case makes the dispatch total.
					m.cfg.Logger.With("phone", ps.info.ID, "type", string(resp.Type)).
						Debugf("ignoring unexpected frame on response channel")
				}
				break wait
			case <-timer.C:
				if !straggled {
					// Deadline blown: mark the phone a straggler, issue a
					// speculative copy for the next round, and give the
					// original one more deadline to deliver.
					straggled = true
					if m.speculate(a) {
						m.cfg.Logger.With("phone", ps.info.ID, "job", a.item.jobID, "partition", a.partition).
							Warnf("straggling (deadline %v); speculating", deadline)
						addEvent(Event{At: time.Since(start), PhoneID: ps.info.ID,
							JobID: a.item.jobID, Partition: a.partition, Kind: "straggler"})
					}
					timer.Reset(deadline)
					continue
				}
				// Twice the deadline: abandon the phone for this round. It
				// stays alive (it may just be slow); its eventual report is
				// credited by the read loop if the key is still open.
				m.cfg.Metrics.Counter("cwc_abandons_total").Inc()
				m.cfg.Logger.With("phone", ps.info.ID, "job", a.item.jobID, "partition", a.partition).
					Warnf("abandoned for the round (overdue)")
				m.detachAttempt(attempt)
				m.requeueAbandoned(a, start, addEvent)
				m.requeueFrom(queue[qi+1:], start, addEvent)
				return
			case <-ps.dead:
				// Offline failure: no report; the whole in-flight partition
				// and the rest of the queue go back to the pool.
				m.cfg.Logger.With("phone", ps.info.ID, "job", a.item.jobID).Warnf("died with work in flight")
				m.dropAttempt(attempt)
				m.requeueFrom(queue[qi:], start, addEvent)
				timer.Stop()
				return
			case <-ctx.Done():
				m.dropAttempt(attempt)
				m.requeueFrom(queue[qi:], start, addEvent)
				timer.Stop()
				return
			}
		}
		timer.Stop()
	}
}

// recordStreamedCheckpoint folds a worker's mid-execution streamed
// checkpoint into the master's resume state for the attempt's byte range.
// If the phone later dies silently (missed keepalives, a cut connection)
// or is abandoned as a straggler, the range re-dispatches from this
// checkpoint instead of from scratch — the paper only gets this on an
// *online* failure, whose report carries the checkpoint. The fold is
// WAL-logged so streamed progress survives a master crash too, and
// journaled as a Saved event. Every frame is acknowledged, accepted or
// not: the ack is flow control (workers cap unacked frames), not a
// durability promise.
func (m *Master) recordStreamedCheckpoint(ps *phoneState, msg *protocol.Message) {
	ck := msg.Checkpoint
	accepted := false
	var jobID, partition int
	m.cfg.Metrics.Counter("cwc_checkpoint_frames_total").Inc()
	if msg.Attempt != 0 && ck != nil && ck.Offset > 0 {
		if msg.Digest != "" && msg.Digest != ck.Digest() {
			// In-transit damage: never fold, but still ack (flow control).
			m.cfg.Metrics.Counter("cwc_verify_mismatches_total", "kind", "checkpoint").Inc()
			m.sloObserve(sloVerify, false)
			m.cfg.Logger.With("phone", ps.info.ID).Warnf("streamed checkpoint digest mismatch; frame dropped")
			_ = ps.conn.Send(&protocol.Message{Type: protocol.TypeCheckpointAck, Attempt: msg.Attempt, Seq: msg.Seq})
			return
		}
		m.mu.Lock()
		if rec, ok := m.attempts[msg.Attempt]; ok {
			a := rec.a
			jobID, partition = a.item.jobID, a.partition
			cur := m.streamed[a.key]
			if cur == nil {
				cur = a.resume
			}
			if a.key != 0 && !m.completed[a.key] && ck.Offset <= int64(len(a.input)) &&
				(cur == nil || ck.Offset > cur.Offset) {
				c := ck.Clone()
				m.streamed[a.key] = c
				m.ckptFolds++
				m.walAppend(walRecCheckpoint, walCheckpointRec{JobID: jobID, Key: a.key, Resume: c})
				accepted = true
				m.cfg.Metrics.Counter("cwc_checkpoint_folds_total").Inc()
				m.cfg.Metrics.Counter("cwc_checkpoint_bytes_total").Add(int64(len(c.State)))
				span := msg.Span
				if span == "" {
					span = m.spanForJobLocked(jobID)
				}
				m.cfg.Tracer.Record(obs.SpanEvent{
					Span: span, Kind: obs.KindCheckpoint, Job: jobID,
					Partition: partition, Key: a.key, Phone: ps.info.ID,
					Bytes: c.Offset, Detail: "streamed",
				})
			}
		}
		m.mu.Unlock()
	}
	if accepted && m.cfg.Journal != nil {
		m.cfg.Journal.RecordSave(jobID, partition, ps.info.ID, ck, "streamed checkpoint")
	}
	// Echo the span coordinates so the worker's ckpt_ack telemetry event
	// anchors to the same trace span as the master's checkpoint fold.
	var span string
	if jobID != 0 {
		span = m.spanForJob(jobID)
	}
	_ = ps.conn.Send(&protocol.Message{
		Type: protocol.TypeCheckpointAck, Attempt: msg.Attempt, Seq: msg.Seq,
		JobID: jobID, Partition: partition, Span: span,
	})
}

// StreamedCheckpoints reports how many streamed checkpoints have been
// accepted (folded into resume state) since the master started.
func (m *Master) StreamedCheckpoints() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ckptFolds
}

// latestResumeLocked picks the freshest checkpoint known for a keyed byte
// range: the streamed one when it is ahead of the given resume state.
// Caller holds m.mu.
func (m *Master) latestResumeLocked(key int64, resume *tasks.Checkpoint) *tasks.Checkpoint {
	st := m.streamed[key]
	if st == nil || (resume != nil && resume.Offset >= st.Offset) {
		return resume
	}
	return st.Clone()
}

// finalizeResult folds a completed (and, if verification applies,
// verified — see recordResult in verify.go) partition into its job and
// refines the execution-time prediction. Duplicate results for an
// already-settled key (the loser of a speculative race, a reconnect
// replay) are dropped.
func (m *Master) finalizeResult(a assignment, resp *protocol.Message, est *predict.Estimator, ps *phoneState) {
	m.mu.Lock()
	if a.key != 0 {
		if m.completed[a.key] {
			m.mu.Unlock()
			m.cfg.Logger.With("job", a.item.jobID, "partition", a.partition, "key", a.key).
				Infof("duplicate result dropped (key already settled)")
			return
		}
		m.completed[a.key] = true
		delete(m.streamed, a.key)
	}
	js := m.jobs[a.item.jobID]
	// A resumed piece covers its full byte range too: the failure that
	// spawned it recorded no coverage (only the reporter path does, and
	// reporter remainders arrive as fresh pieces without resume state).
	js.covered += int64(len(a.input))
	js.partials = append(js.partials, resp.Result)
	m.walAppend(walRecReport, walReport{
		JobID: a.item.jobID, Key: a.key, Bytes: int64(len(a.input)), Partial: resp.Result,
	})
	// A late result (tie-break, detached straggler) can complete a job's
	// coverage outside any round; without a sweep coming, aggregate here.
	if !m.roundActive && !js.done && js.covered >= js.totalBytes {
		m.finishJobLocked(js)
	}
	m.mu.Unlock()
	m.cfg.Metrics.Counter("cwc_results_total").Inc()
	m.sloObserve(sloRequeue, true)
	if resp.ExecMs > 0 {
		m.cfg.Metrics.Histogram("cwc_exec_ms").Observe(resp.ExecMs)
	}

	if a.resume != nil && m.cfg.Journal != nil {
		m.cfg.Journal.RecordComplete(a.item.jobID, a.partition, ps.info.ID)
	}
	if est != nil && resp.ExecMs > 0 && resp.ProcessedKB > 0 {
		_ = est.Report(a.item.task.Name(), ps.info.ID, resp.ExecMs/resp.ProcessedKB)
	}
}

// drainFailureReason is the failure-report error a worker sends when it
// hands back an in-flight partition because the server asked it to
// drain (see protocol.TypeDrain and worker.interruptReason).
const drainFailureReason = "drained"

// settleFailure marks a dispatch attempt's failure as folded, exactly
// once: the first caller gets true, every later caller false. This is
// the dedupe that keeps a phone which replugs before its failure
// finished processing — replaying the same report over the new
// connection — from re-queueing the same attempt twice.
func (m *Master) settleFailure(attempt int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.settledFailures[attempt] {
		return false
	}
	m.settledFailures[attempt] = true
	return true
}

// recordFailure applies the paper's migration rule to a failed partition:
// tasks that can convert their checkpoint into a partial result have it
// saved and only the unprocessed input remainder re-queued; others are
// migrated whole (input + checkpoint). The attempt ID (zero: untracked)
// dedupes replayed reports so one failure is never folded twice.
func (m *Master) recordFailure(a assignment, resp *protocol.Message, phoneID int, attempt int64) {
	if attempt != 0 && !m.settleFailure(attempt) {
		m.cfg.Logger.With("attempt", attempt).
			Warnf("duplicate failure report for settled attempt dropped")
		return
	}
	ck := resp.Checkpoint
	m.cfg.Metrics.Counter("cwc_failures_total").Inc()
	if m.cfg.Journal != nil {
		m.cfg.Journal.RecordSave(a.item.jobID, a.partition, phoneID, ck, resp.Error)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if a.key != 0 && m.completed[a.key] {
		// A speculative twin already delivered this byte range; the
		// failure is moot.
		return
	}
	js := m.jobs[a.item.jobID]

	// The partial-result shortcut credits coverage immediately, so it is
	// only safe when no duplicate of this byte range can still deliver a
	// full result (which would double-count the checkpointed prefix).
	if ck != nil && a.resume == nil && !m.speculated[a.key] {
		if pr, ok := a.item.task.(tasks.PartialReporter); ok && ck.Offset > 0 {
			partial, err := pr.PartialResult(ck.State)
			if err == nil {
				if a.key != 0 {
					m.completed[a.key] = true
					delete(m.streamed, a.key)
				}
				js.covered += ck.Offset
				js.partials = append(js.partials, partial)
				remainder := a.input[ck.Offset:]
				wrec := walPartialRec{
					JobID: a.item.jobID, Key: a.key, Offset: ck.Offset, Partial: partial,
				}
				if len(remainder) > 0 {
					// The remainder is a fresh byte range: new identity,
					// splittable again.
					it := &workItem{
						jobID:   a.item.jobID,
						task:    a.item.task,
						input:   remainder,
						retries: a.item.retries,
						seq:     m.nextSeqLocked(),
					}
					if m.requeueLocked(it, "failure remainder: "+resp.Error) {
						wrec.Remainder = remainder
						wrec.RemainderSeq = it.seq
						wrec.Retries = it.retries
					}
				}
				m.walAppend(walRecPartial, wrec)
				return
			}
			m.cfg.Logger.With("job", a.item.jobID).Warnf("partial result unusable: %v", err)
		}
	}
	// Whole-partition migration: resume exactly where it stopped.
	if a.key != 0 && m.pendingTwinLocked(a.key) {
		return // a queued copy already carries this byte range
	}
	resume := ck
	if resume == nil {
		resume = a.resume // keep any prior progress
	}
	// A failure report without a checkpoint (task error, send race) still
	// resumes from the last streamed one.
	resume = m.latestResumeLocked(a.key, resume)
	it := &workItem{
		jobID:     a.item.jobID,
		task:      a.item.task,
		input:     a.input,
		resume:    resume,
		atomic:    true,
		key:       a.key,
		retries:   a.item.retries,
		seq:       m.nextSeqLocked(),
		partition: a.partition,
	}
	if m.requeueLocked(it, "failure: "+resp.Error) {
		m.walAppend(walRecMigrate, walMigrate{
			JobID: a.item.jobID, Key: a.key, Input: a.input,
			Resume: resume, Retries: it.retries, Partition: a.partition,
		})
	}
}

// requeueLocked re-queues a work item for the next scheduling instant, or
// dead-letters it once its retry budget is spent (graceful degradation
// over infinite re-queue). Caller holds m.mu. Reports whether the item
// was re-queued.
func (m *Master) requeueLocked(it *workItem, reason string) bool {
	it.retries++
	if m.cfg.MaxItemRetries >= 0 && it.retries > m.cfg.MaxItemRetries {
		m.deadLetters = append(m.deadLetters, DeadLetter{
			JobID:   it.jobID,
			Task:    it.task.Name(),
			Bytes:   len(it.input),
			Retries: it.retries - 1,
			Reason:  reason,
		})
		m.walAppend(walRecDeadLetter, walDeadLetterRec{
			JobID: it.jobID, Key: it.key, Seq: it.seq, Task: it.task.Name(),
			Bytes: len(it.input), Retries: it.retries - 1, Reason: reason,
		})
		m.cfg.Logger.With("job", it.jobID, "retries", it.retries-1).
			Warnf("item dead-lettered: %s", reason)
		delete(m.streamed, it.key)
		m.cfg.Metrics.Counter("cwc_dead_letters_total").Inc()
		m.cfg.Tracer.Record(obs.SpanEvent{
			Span: m.spanForJobLocked(it.jobID), Kind: obs.KindDeadLetter,
			Job: it.jobID, Key: it.key, Phone: -1,
			Bytes: int64(len(it.input)), Detail: reason,
		})
		return false
	}
	m.pending = append(m.pending, it)
	m.cfg.Metrics.Counter("cwc_requeues_total").Inc()
	m.sloObserve(sloRequeue, false)
	if ck := m.streamed[it.key]; ck != nil && ck.Offset > 0 {
		// A streamed checkpoint means the retry resumes mid-input: those
		// bytes never get re-executed.
		m.cfg.Metrics.Counter("cwc_recompute_saved_bytes_total").Add(ck.Offset)
	}
	m.cfg.Tracer.Record(obs.SpanEvent{
		Span: m.spanForJobLocked(it.jobID), Kind: obs.KindRequeue,
		Job: it.jobID, Key: it.key, Phone: -1,
		Bytes: int64(len(it.input)), Detail: reason,
	})
	return true
}

// pendingTwinLocked reports whether a queued item already carries the
// given key. Caller holds m.mu.
func (m *Master) pendingTwinLocked(key int64) bool {
	for _, it := range m.pending {
		if it.key == key {
			return true
		}
	}
	return false
}

// requeueAbandoned puts a straggler's in-flight byte range back in the
// pool unless a copy of it is already queued or settled; the detached
// attempt may still deliver, and first-result-wins arbitrates.
func (m *Master) requeueAbandoned(a assignment, start time.Time, addEvent func(Event)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if a.key != 0 && (m.completed[a.key] || m.pendingTwinLocked(a.key)) {
		return
	}
	it := &workItem{
		jobID:     a.item.jobID,
		task:      a.item.task,
		input:     a.input,
		resume:    m.latestResumeLocked(a.key, a.resume),
		atomic:    true,
		key:       a.key,
		retries:   a.item.retries,
		seq:       m.nextSeqLocked(),
		partition: a.partition,
	}
	kind := "requeue"
	if !m.requeueLocked(it, "straggler abandoned") {
		kind = "deadletter"
	}
	addEvent(Event{At: time.Since(start), PhoneID: -1, JobID: a.item.jobID,
		Partition: a.partition, Kind: kind})
}

// requeueFrom returns undispatched assignments to the pending pool.
func (m *Master) requeueFrom(rest []assignment, start time.Time, addEvent func(Event)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, a := range rest {
		if a.key != 0 && (m.completed[a.key] || m.pendingTwinLocked(a.key)) {
			continue // the byte range is settled or already queued
		}
		it := &workItem{
			jobID: a.item.jobID,
			task:  a.item.task,
			input: a.input,
			// The in-flight partition re-runs from its last streamed
			// checkpoint, not from scratch — the bounded-work-loss
			// guarantee for offline failures.
			resume: m.latestResumeLocked(a.key, a.resume),
			// A keyed item must stay whole so the key keeps naming one
			// exact byte range.
			atomic:    a.key != 0 || a.resume != nil || a.item.atomic,
			key:       a.key,
			retries:   a.item.retries,
			seq:       m.nextSeqLocked(),
			partition: a.partition,
		}
		kind := "requeue"
		if !m.requeueLocked(it, "phone lost mid-round") {
			kind = "deadletter"
		}
		addEvent(Event{At: time.Since(start), JobID: a.item.jobID,
			Partition: a.partition, Kind: kind})
	}
}

// finishJobLocked aggregates a fully-covered job and marks it done. An
// aggregation error is TERMINAL: the partials it would combine are the
// only ones the byte ranges will ever produce (re-running them yields
// the same set), so retrying next round can only wedge the job forever.
// The failure is WAL-logged so replay reaches the same terminal state,
// and surfaced to the submitter via JobFailure. Caller holds m.mu.
func (m *Master) finishJobLocked(js *jobState) {
	final, err := aggregate(js)
	if err != nil {
		js.failure = err.Error()
		js.done = true
		m.walAppend(walRecFinish, walFinish{JobID: js.id, Error: js.failure})
		m.cfg.Metrics.Counter("cwc_jobs_failed_total").Inc()
		m.cfg.Logger.With("job", js.id).Errorf("aggregation failed terminally: %v", err)
		return
	}
	js.final = final
	js.done = true
	m.walAppend(walRecFinish, walFinish{JobID: js.id, Final: final})
	m.cfg.Metrics.Counter("cwc_jobs_completed_total").Inc()
	m.cfg.Tracer.Record(obs.SpanEvent{
		Span: m.spanForJobLocked(js.id), Kind: obs.KindAggregate, Job: js.id,
		Phone: -1, Bytes: int64(len(final)), Detail: fmt.Sprintf("%d partials", len(js.partials)),
	})
}

// aggregate merges a completed job's partials into its final result.
func aggregate(js *jobState) ([]byte, error) {
	if len(js.partials) == 0 {
		return nil, fmt.Errorf("server: job %d complete with no partials", js.id)
	}
	if len(js.partials) == 1 {
		return js.partials[0], nil
	}
	b, ok := js.task.(tasks.Breakable)
	if !ok {
		return nil, fmt.Errorf("server: job %d has %d partials but is not breakable",
			js.id, len(js.partials))
	}
	return b.Aggregate(js.partials)
}

// RunLoop runs scheduling rounds forever: whenever pending work exists
// (fresh submissions or failed work awaiting the next scheduling instant,
// the paper's "new schedule to be computed at time instant B"), a round
// is executed; otherwise the loop sleeps for the period. It returns when
// the context is canceled. Each round's report is passed to onRound if
// non-nil.
func (m *Master) RunLoop(ctx context.Context, period time.Duration, onRound func(*RoundReport)) error {
	if period <= 0 {
		period = time.Second
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-m.stopped:
			return nil
		default:
		}
		if m.PendingItems() == 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-m.stopped:
				return nil
			case <-time.After(period):
			}
			continue
		}
		report, err := m.RunRound(ctx)
		switch err {
		case nil:
			if onRound != nil {
				onRound(report)
			}
		case ErrNothingToDo:
			// Raced with another consumer; just idle.
		case ErrNoPhones:
			// Wait for the fleet to come back.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-m.stopped:
				return nil
			case <-time.After(period):
			}
		default:
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return err
			}
			// Graceful degradation: a failed round (profiling lost its
			// phone, scheduling hit a transient inconsistency) must not
			// kill the service; the pending queue still holds the work.
			m.cfg.Logger.Warnf("round failed: %v (retrying next period)", err)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-m.stopped:
				return nil
			case <-time.After(period):
			}
		}
	}
}

// sendAssign ships one partition, streaming inputs larger than the
// configured chunk size as assign_chunk frames.
func (m *Master) sendAssign(ps *phoneState, a assignment, attempt int64) error {
	chunk := m.cfg.ChunkKB * 1024
	first := a.input
	var rest []byte
	var total int64
	if len(a.input) > chunk {
		first, rest = a.input[:chunk], a.input[chunk:]
		total = int64(len(a.input))
	}
	if err := ps.conn.Send(&protocol.Message{
		Type:      protocol.TypeAssign,
		JobID:     a.item.jobID,
		Partition: a.partition,
		Attempt:   attempt,
		Span:      m.spanForJob(a.item.jobID),
		Task:      a.item.task.Name(),
		Params:    a.item.task.Params(),
		Input:     first,
		TotalLen:  total,
		Resume:    a.resume,
	}); err != nil {
		return err
	}
	m.cfg.Metrics.Counter("cwc_assign_bytes_sent_total").Add(int64(len(a.input)))
	for len(rest) > 0 {
		n := chunk
		if n > len(rest) {
			n = len(rest)
		}
		if err := ps.conn.Send(&protocol.Message{
			Type:      protocol.TypeAssignChunk,
			JobID:     a.item.jobID,
			Partition: a.partition,
			Input:     rest[:n],
		}); err != nil {
			return err
		}
		rest = rest[n:]
	}
	return nil
}
