package server

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cwc/internal/obs"
	"cwc/internal/protocol"
	"cwc/internal/tasks"
	"cwc/internal/wal"
)

// verifyResponder serves assignments like autoResponder but echoes the
// attempt ID (a tie-break re-execution is resolved by the read loop and
// needs it) and passes every computed result through mutate, so a test
// can make the phone lie. It records which job IDs it was assigned.
type verifyResponder struct {
	f      *fakePhone
	mutate func([]byte) []byte

	mu   sync.Mutex
	jobs map[int]bool
}

func newVerifyResponder(f *fakePhone, mutate func([]byte) []byte) *verifyResponder {
	if mutate == nil {
		mutate = func(b []byte) []byte { return b }
	}
	r := &verifyResponder{f: f, mutate: mutate, jobs: map[int]bool{}}
	go r.run()
	return r
}

func (r *verifyResponder) sawJob(id int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jobs[id]
}

func (r *verifyResponder) run() {
	for {
		if err := r.f.conn.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
			return
		}
		msg, err := r.f.conn.Recv()
		if err != nil {
			return
		}
		if msg.Type != protocol.TypeAssign {
			continue
		}
		if msg.Partition >= 0 {
			r.mu.Lock()
			r.jobs[msg.JobID] = true
			r.mu.Unlock()
		}
		task, err := tasks.New(msg.Task, msg.Params)
		if err != nil {
			continue
		}
		var ck tasks.Checkpoint
		if msg.Resume != nil {
			ck = *msg.Resume
		}
		res, err := task.Process(context.Background(), msg.Input, &ck)
		if err != nil {
			continue
		}
		if msg.Partition >= 0 {
			res = r.mutate(res)
		}
		_ = r.f.conn.Send(&protocol.Message{Type: protocol.TypeResult,
			JobID: msg.JobID, Partition: msg.Partition, Attempt: msg.Attempt,
			Result: res, Digest: tasks.Digest(res),
			ExecMs: 1, ProcessedKB: float64(len(msg.Input)) / 1024})
	}
}

// lie shifts every ASCII digit, producing a wrong-but-well-formed
// counting result (mirrors the worker package's liar).
func lie(off byte) func([]byte) []byte {
	return func(b []byte) []byte {
		out := append([]byte(nil), b...)
		for i, c := range out {
			if c >= '0' && c <= '9' {
				out[i] = '0' + (c-'0'+off)%10
			}
		}
		return out
	}
}

var primesInput = []byte("2\n3\n4\n5\n6\n7\n8\n9\n10\n11\n")

func groundTruth(t *testing.T, task tasks.Task, input []byte) []byte {
	t.Helper()
	var ck tasks.Checkpoint
	res, err := task.Process(context.Background(), input, &ck)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func waitResult(t *testing.T, m *Master, id int, budget time.Duration) []byte {
	t.Helper()
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		if res, ok := m.Result(id); ok {
			return res
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %d did not complete within %v", id, budget)
	return nil
}

// Two honest replicas agree: the vote resolves in-round, the job
// completes with the true result, and nobody is penalized.
func TestVotingAgreementFinalizes(t *testing.T) {
	reg := obs.NewRegistry()
	m := startMaster(t, Config{VerifyReplicas: 2, Metrics: reg})
	newVerifyResponder(dialFake(t, m, "A", 1000), nil)
	newVerifyResponder(dialFake(t, m, "B", 1000), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.WaitForPhones(ctx, 2); err != nil {
		t.Fatal(err)
	}
	id, err := m.Submit(tasks.PrimeCount{}, primesInput, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, m, id, 10*time.Second)
	if want := groundTruth(t, tasks.PrimeCount{}, primesInput); string(res) != string(want) {
		t.Fatalf("result = %q, want %q", res, want)
	}
	if v := reg.Counter("cwc_verify_votes_total").Value(); v != 2 {
		t.Errorf("votes = %d, want 2", v)
	}
	if v := reg.Counter("cwc_verify_mismatches_total", "kind", "vote").Value(); v != 0 {
		t.Errorf("mismatches = %d, want 0", v)
	}
	for id := 0; id < 2; id++ {
		if r := m.Reputation(id); r != 1.0 {
			t.Errorf("phone %d reputation = %v, want 1.0", id, r)
		}
	}
}

// A liar disagreeing with an honest replica forces a tie-break on the
// remaining phone; the honest digest reaches quorum, the liar is
// penalized, and the job still finishes with the true result. The liar
// is the fastest phone, so the scheduler deterministically hands it the
// original execution.
func TestVotingTieBreakDefeatsLiar(t *testing.T) {
	reg := obs.NewRegistry()
	m := startMaster(t, Config{VerifyReplicas: 2, Metrics: reg})
	liar := newVerifyResponder(dialFake(t, m, "liar", 2000), lie(3))
	newVerifyResponder(dialFake(t, m, "honest-1", 1500), nil)
	newVerifyResponder(dialFake(t, m, "honest-2", 800), nil)
	_ = liar
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.WaitForPhones(ctx, 3); err != nil {
		t.Fatal(err)
	}
	id, err := m.Submit(tasks.PrimeCount{}, primesInput, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	// The round ends with the vote tied and the arbiter in flight; the
	// detached tie-break result completes the job outside any round.
	res := waitResult(t, m, id, 15*time.Second)
	if want := groundTruth(t, tasks.PrimeCount{}, primesInput); string(res) != string(want) {
		t.Fatalf("result = %q, want %q", res, want)
	}
	if v := reg.Counter("cwc_verify_mismatches_total", "kind", "vote").Value(); v != 1 {
		t.Errorf("vote mismatches = %d, want 1", v)
	}
	if r := m.Reputation(0); math.Abs(r-0.6) > 1e-9 { // liar registered first -> ID 0
		t.Errorf("liar reputation = %v, want 0.6", r)
	}
	if m.Quarantined(0) {
		t.Error("a single lost vote must not quarantine")
	}
	for id := 1; id < 3; id++ {
		if r := m.Reputation(id); r != 1.0 {
			t.Errorf("honest phone %d reputation = %v, want 1.0", id, r)
		}
	}
}

// Repeated lost votes sink the liar's reputation below the threshold:
// it is quarantined — still connected, never placed again.
func TestQuarantineExcludesLiarFromPlacement(t *testing.T) {
	reg := obs.NewRegistry()
	m := startMaster(t, Config{VerifyReplicas: 2, Metrics: reg})
	liar := newVerifyResponder(dialFake(t, m, "liar", 2000), lie(3))
	newVerifyResponder(dialFake(t, m, "honest-1", 1500), nil)
	newVerifyResponder(dialFake(t, m, "honest-2", 800), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.WaitForPhones(ctx, 3); err != nil {
		t.Fatal(err)
	}
	want := groundTruth(t, tasks.PrimeCount{}, primesInput)
	// Three jobs, three lost votes: 1.0 -> 0.6 -> 0.36 -> 0.216 < 0.3.
	for i := 0; i < 3; i++ {
		id, err := m.Submit(tasks.PrimeCount{}, primesInput, true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.RunRound(ctx); err != nil {
			t.Fatal(err)
		}
		if res := waitResult(t, m, id, 15*time.Second); string(res) != string(want) {
			t.Fatalf("job %d result = %q, want %q", id, res, want)
		}
	}
	if !m.Quarantined(0) {
		t.Fatalf("liar not quarantined (reputation %v)", m.Reputation(0))
	}
	if got := m.QuarantinedPhones(); len(got) != 1 || got[0] != 0 {
		t.Errorf("QuarantinedPhones = %v, want [0]", got)
	}
	if v := reg.Counter("cwc_verify_quarantines_total").Value(); v != 1 {
		t.Errorf("quarantines = %d, want 1", v)
	}
	// The next job must be placed (and verified) without the liar.
	id, err := m.Submit(tasks.PrimeCount{}, primesInput, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	if res := waitResult(t, m, id, 15*time.Second); string(res) != string(want) {
		t.Fatalf("post-quarantine result = %q, want %q", res, want)
	}
	if liar.sawJob(id) {
		t.Error("quarantined phone was assigned work")
	}
}

// With voting off, a full-rate audit re-executes every partition on a
// second phone; matching echoes leave reputations untouched.
func TestAuditHonestFleet(t *testing.T) {
	reg := obs.NewRegistry()
	m := startMaster(t, Config{AuditRate: 1, Metrics: reg})
	newVerifyResponder(dialFake(t, m, "A", 1000), nil)
	newVerifyResponder(dialFake(t, m, "B", 1000), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.WaitForPhones(ctx, 2); err != nil {
		t.Fatal(err)
	}
	id, err := m.Submit(tasks.PrimeCount{}, primesInput, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, m, id, 10*time.Second)
	if want := groundTruth(t, tasks.PrimeCount{}, primesInput); string(res) != string(want) {
		t.Fatalf("result = %q, want %q", res, want)
	}
	if v := reg.Counter("cwc_verify_audits_total").Value(); v != 1 {
		t.Errorf("audits = %d, want 1", v)
	}
	if v := reg.Counter("cwc_verify_mismatches_total", "kind", "audit").Value(); v != 0 {
		t.Errorf("audit mismatches = %d, want 0", v)
	}
	if m.Reputation(0) != 1.0 || m.Reputation(1) != 1.0 {
		t.Error("honest audit must not move reputation")
	}
}

// An audit echo that disagrees with the already-folded result escalates
// to a tie-break for blame: the liar is penalized even though its folded
// result stands (audits protect the fleet, not the sampled job).
func TestAuditMismatchPenalizesLiar(t *testing.T) {
	reg := obs.NewRegistry()
	m := startMaster(t, Config{AuditRate: 1, Metrics: reg})
	newVerifyResponder(dialFake(t, m, "liar", 2000), lie(3))
	newVerifyResponder(dialFake(t, m, "honest-1", 1500), nil)
	newVerifyResponder(dialFake(t, m, "honest-2", 800), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.WaitForPhones(ctx, 3); err != nil {
		t.Fatal(err)
	}
	id, err := m.Submit(tasks.PrimeCount{}, primesInput, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	_ = waitResult(t, m, id, 15*time.Second)
	deadline := time.Now().Add(15 * time.Second)
	for m.Reputation(0) == 1.0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if r := m.Reputation(0); math.Abs(r-0.6) > 1e-9 {
		t.Errorf("liar reputation = %v, want 0.6", r)
	}
	if v := reg.Counter("cwc_verify_audits_total").Value(); v != 1 {
		t.Errorf("audits = %d, want 1", v)
	}
	if v := reg.Counter("cwc_verify_mismatches_total", "kind", "audit").Value(); v != 1 {
		t.Errorf("audit mismatches = %d, want 1", v)
	}
}

// A frame whose claimed digest does not match its payload is detectable
// without any replica: it is discarded and the range re-executes.
func TestClaimedDigestMismatchRequeues(t *testing.T) {
	reg := obs.NewRegistry()
	m := startMaster(t, Config{Metrics: reg})
	f := dialFake(t, m, "flaky", 1000)
	// A responder that corrupts the payload AFTER computing the digest:
	// detectable from the single frame.
	corrupted := false
	go func() {
		for {
			if err := f.conn.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
				return
			}
			msg, err := f.conn.Recv()
			if err != nil {
				return
			}
			if msg.Type != protocol.TypeAssign {
				continue
			}
			task, err := tasks.New(msg.Task, msg.Params)
			if err != nil {
				continue
			}
			var ck tasks.Checkpoint
			res, err := task.Process(context.Background(), msg.Input, &ck)
			if err != nil {
				continue
			}
			digest := tasks.Digest(res)
			if msg.Partition >= 0 && !corrupted {
				corrupted = true
				mangled := append([]byte(nil), res...)
				mangled[0] ^= 0xff
				res = mangled // digest now stale: claimed != computed
			}
			_ = f.conn.Send(&protocol.Message{Type: protocol.TypeResult,
				JobID: msg.JobID, Partition: msg.Partition, Attempt: msg.Attempt,
				Result: res, Digest: digest,
				ExecMs: 1, ProcessedKB: float64(len(msg.Input)) / 1024})
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.WaitForPhones(ctx, 1); err != nil {
		t.Fatal(err)
	}
	id, err := m.Submit(tasks.PrimeCount{}, primesInput, true)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1 receives the corrupt frame and re-queues; round 2 gets the
	// honest retry.
	if _, err := m.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Result(id); ok {
		t.Fatal("corrupt frame must not fold")
	}
	if v := reg.Counter("cwc_verify_mismatches_total", "kind", "digest").Value(); v != 1 {
		t.Errorf("digest mismatches = %d, want 1", v)
	}
	if _, err := m.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, m, id, 10*time.Second)
	if want := groundTruth(t, tasks.PrimeCount{}, primesInput); string(res) != string(want) {
		t.Fatalf("result = %q, want %q", res, want)
	}
}

// Reputation and quarantine state is WAL record 13: it must survive both
// raw-log replay and a compaction snapshot.
func TestReputationSurvivesWALRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	wl := openWAL(t, dir, wal.Options{Sync: wal.SyncAlways})
	m := startMaster(t, Config{WAL: wl})
	// Four losses: 0.6, 0.36, 0.216 (quarantined), 0.1296.
	m.mu.Lock()
	for i := 0; i < 4; i++ {
		m.reputationEventLocked(7, false, "test")
	}
	m.reputationEventLocked(3, true, "test") // 1.0 -> 1.0: state unchanged
	m.mu.Unlock()
	wantRep := m.Reputation(7)
	m.Close()
	wl.Close()

	wl2 := openWAL(t, dir, wal.Options{Sync: wal.SyncAlways})
	m2 := startMaster(t, Config{WAL: wl2})
	if err := m2.RecoverWAL(); err != nil {
		t.Fatal(err)
	}
	if r := m2.Reputation(7); math.Abs(r-wantRep) > 1e-9 {
		t.Errorf("recovered reputation = %v, want %v", r, wantRep)
	}
	if !m2.Quarantined(7) {
		t.Error("quarantine lost across recovery")
	}
	if r := m2.Reputation(3); r != 1.0 {
		t.Errorf("phone 3 reputation = %v, want untouched 1.0", r)
	}
	// Compact (snapshot path) and recover a third master from it.
	if err := m2.CompactWAL(); err != nil {
		t.Fatal(err)
	}
	m2.Close()
	wl2.Close()

	wl3 := openWAL(t, dir, wal.Options{Sync: wal.SyncAlways})
	m3 := startMaster(t, Config{WAL: wl3})
	if err := m3.RecoverWAL(); err != nil {
		t.Fatal(err)
	}
	if r := m3.Reputation(7); math.Abs(r-wantRep) > 1e-9 {
		t.Errorf("snapshot reputation = %v, want %v", r, wantRep)
	}
	if !m3.Quarantined(7) {
		t.Error("quarantine lost across compaction")
	}
}

// badAggTask is breakable but its aggregation always fails — the
// regression trigger for the terminal-aggregation-failure path.
type badAggTask struct{}

func (badAggTask) Name() string    { return "badagg" }
func (badAggTask) Params() []byte  { return nil }
func (badAggTask) ExecKB() float64 { return 1 }
func (badAggTask) Process(_ context.Context, input []byte, ck *tasks.Checkpoint) ([]byte, error) {
	ck.Offset = int64(len(input))
	return []byte("x"), nil
}
func (badAggTask) Split(input []byte, sizesKB []float64) ([][]byte, error) {
	// Byte-exact proportional split (no record boundaries to honour).
	var total float64
	for _, s := range sizesKB {
		total += s
	}
	out := make([][]byte, len(sizesKB))
	off := 0
	for i, s := range sizesKB {
		n := int(float64(len(input)) * s / total)
		if i == len(sizesKB)-1 || off+n > len(input) {
			n = len(input) - off
		}
		out[i] = input[off : off+n]
		off += n
	}
	return out, nil
}
func (badAggTask) Aggregate([][]byte) ([]byte, error) {
	return nil, errors.New("badagg: aggregation always fails")
}

func init() { tasks.Register("badagg", func([]byte) (tasks.Task, error) { return badAggTask{}, nil }) }

// Satellite regression: an aggregation error is terminal — it surfaces
// to the submitter as a job failure instead of wedging the job in a
// silent re-aggregate-every-round loop, and the WAL replays to the same
// terminal state on a recovered master.
func TestAggregateFailureIsTerminalAndSurvivesRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	wl := openWAL(t, dir, wal.Options{Sync: wal.SyncAlways})
	reg := obs.NewRegistry()
	m := startMaster(t, Config{WAL: wl, Metrics: reg})
	newVerifyResponder(dialFake(t, m, "A", 1000), nil)
	newVerifyResponder(dialFake(t, m, "B", 1000), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.WaitForPhones(ctx, 2); err != nil {
		t.Fatal(err)
	}
	input := make([]byte, 64*1024)
	id, err := m.Submit(badAggTask{}, input, false)
	if err != nil {
		t.Fatal(err)
	}
	// Drive rounds until the job reaches a terminal state; a wedged
	// master re-aggregates forever and the deadline catches it.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if _, failed := m.JobFailure(id); failed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("aggregate failure never surfaced")
		}
		if _, err := m.RunRound(ctx); err != nil && !errors.Is(err, ErrNothingToDo) {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, ok := m.Result(id); ok {
		t.Error("failed job must not yield a result")
	}
	if msg, _ := m.JobFailure(id); msg == "" {
		t.Error("empty failure message")
	}
	if v := reg.Counter("cwc_jobs_failed_total").Value(); v != 1 {
		t.Errorf("jobs failed = %d, want 1", v)
	}
	m.Close()
	wl.Close()

	// The recovered master must land in the same terminal state — not
	// re-queue the work, not wedge, not report success.
	wl2 := openWAL(t, dir, wal.Options{Sync: wal.SyncAlways})
	m2 := startMaster(t, Config{WAL: wl2})
	if err := m2.RecoverWAL(); err != nil {
		t.Fatal(err)
	}
	if _, ok := m2.Result(id); ok {
		t.Error("recovered master resurrected a failed job's result")
	}
	if msg, failed := m2.JobFailure(id); !failed || msg == "" {
		t.Errorf("recovered failure = %q, %v; want the terminal error", msg, failed)
	}
	if m2.PendingItems() != 0 {
		t.Errorf("recovered master re-queued %d items of a terminally failed job", m2.PendingItems())
	}
}
