package server

import (
	"time"

	"cwc/internal/protocol"
)

// Proactive drain: the plug-aware half of failure handling. Where the
// dispatcher reacts to unplugs after the fact, the drain monitor
// anticipates them — when a phone's learned charge-window distribution
// says the current session is about to close, the master stops placing
// work there, asks the worker to flush a checkpoint and hand back its
// in-flight partition, and re-queues it cleanly while the connection is
// still healthy. The disconnect, when it comes, then loses nothing.
//
// Drain states (per phone, WAL-logged so recovery preserves them):
//
//	started   — drain frame sent; no new assignments; awaiting handback
//	completed — the phone's work was handed back (or it was idle);
//	            still excluded from placement until a new session
//	(cleared) — a new charge session began: the entry is removed and
//	            the phone is placeable again
const (
	drainStarted   = "started"
	drainCompleted = "completed"
	drainCleared   = "cleared"
)

// nowMs is the wall-clock timestamp fed to the (pure) window estimator.
func nowMs() float64 {
	return float64(time.Now().UnixNano()) / float64(time.Millisecond)
}

// observePlug feeds a registration into the charge-window estimator and
// clears any drain entry when a genuinely new session began (the phone
// was observed unplugged since). A reconnect within an open session —
// a TCP blip, a master restart — keeps its drain state instead: the
// prediction that triggered it is still about the same session.
func (m *Master) observePlug(id int) {
	newSession := !m.windows.Plugged(id)
	m.windows.ObservePlug(id, nowMs())
	if newSession {
		m.clearDrain(id)
	}
}

// observeUnplug feeds a phone's departure into the charge-window
// estimator, unless this phoneState was already superseded by a rejoin:
// the old connection's teardown must not close the session the new
// registration just opened.
func (m *Master) observeUnplug(ps *phoneState) {
	m.mu.Lock()
	current := m.phones[ps.info.ID] == ps
	m.mu.Unlock()
	if current {
		m.windows.ObserveUnplug(ps.info.ID, nowMs())
	}
}

// SeedChargeWindows imports a known charge trace (completed session
// durations, ms) for a phone, bootstrapping the window estimator the
// way an operator would import history from a prior deployment.
func (m *Master) SeedChargeWindows(phoneID int, durationsMs []float64) {
	m.windows.Seed(phoneID, durationsMs)
}

// DrainState returns the phone's drain state: "started", "completed",
// or "" when the phone is not draining.
func (m *Master) DrainState(phoneID int) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining[phoneID]
}

// isDraining reports whether the phone is excluded from placement.
func (m *Master) isDraining(phoneID int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.draining[phoneID]
	return ok
}

// drainMonitor periodically compares every live phone's predicted
// remaining window against the drain lead and starts drains as windows
// close. Runs only under Config.PlugAware; exits with the master.
func (m *Master) drainMonitor() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.DrainCheckPeriod)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.checkDrains()
		case <-m.stopped:
			return
		}
	}
}

// checkDrains is one monitor tick: start drains whose predicted window
// is inside the lead, and complete drains whose phones hold no live
// attempts anymore (the handback arrived, or the phone was idle).
func (m *Master) checkDrains() {
	now := nowMs()
	lead := float64(m.cfg.DrainLead) / float64(time.Millisecond)
	for _, ps := range m.alivePhones() {
		id := ps.info.ID
		if m.isDraining(id) {
			continue
		}
		rem, ok := m.windows.RemainingMs(id, now, m.cfg.DrainQuantile)
		if !ok || rem > lead {
			continue
		}
		m.startDrain(ps, rem)
	}

	var idle []int
	m.mu.Lock()
	for id, st := range m.draining {
		if st != drainStarted {
			continue
		}
		busy := false
		for _, rec := range m.attempts {
			if rec.ps.info.ID == id && rec.live {
				busy = true
				break
			}
		}
		if !busy {
			idle = append(idle, id)
		}
	}
	m.mu.Unlock()
	for _, id := range idle {
		m.completeDrain(id)
	}
}

// startDrain begins a proactive drain: record and WAL-log the state,
// then ask the worker to flush and hand its work back. The dispatcher
// stops assigning to the phone the moment the state is recorded.
func (m *Master) startDrain(ps *phoneState, remMs float64) {
	id := ps.info.ID
	m.mu.Lock()
	if _, ok := m.draining[id]; ok {
		m.mu.Unlock()
		return
	}
	m.draining[id] = drainStarted
	m.walAppend(walRecDrain, walDrainRec{PhoneID: id, State: drainStarted})
	m.mu.Unlock()
	m.cfg.Metrics.Counter("cwc_drain_started_total").Inc()
	m.cfg.Logger.With("phone", id).Infof("proactive drain: predicted charge window closes in %.0f ms", remMs)
	if err := ps.conn.Send(&protocol.Message{Type: protocol.TypeDrain}); err != nil {
		// The connection is already failing; the reactive failure paths
		// (keepalive, conn-lost) will reclaim the in-flight work.
		m.cfg.Logger.With("phone", id).Warnf("drain frame failed: %v", err)
	}
}

// completeDrain marks a started drain as completed: the phone's
// in-flight work has been handed back (or it held none). The phone
// stays excluded from placement until a new charge session clears it.
func (m *Master) completeDrain(id int) {
	m.mu.Lock()
	if m.draining[id] != drainStarted {
		m.mu.Unlock()
		return
	}
	m.draining[id] = drainCompleted
	m.walAppend(walRecDrain, walDrainRec{PhoneID: id, State: drainCompleted})
	m.mu.Unlock()
	m.cfg.Metrics.Counter("cwc_drain_completed_total").Inc()
	m.cfg.Logger.With("phone", id).Infof("drain completed: work handed back before disconnect")
}

// clearDrain removes a phone's drain entry (a new charge session
// started); a no-op when none exists.
func (m *Master) clearDrain(id int) {
	m.mu.Lock()
	_, ok := m.draining[id]
	if ok {
		delete(m.draining, id)
		m.walAppend(walRecDrain, walDrainRec{PhoneID: id, State: drainCleared})
	}
	m.mu.Unlock()
	if ok {
		m.cfg.Logger.With("phone", id).Infof("drain cleared: new charge session")
	}
}

// placeablePhones filters draining phones out of a live-fleet snapshot.
// When every live phone is draining the unfiltered fleet is returned:
// the availability prediction is advisory and must never starve work
// (a wrong prediction would otherwise park the queue forever).
func (m *Master) placeablePhones(phones []*phoneState) []*phoneState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.draining) == 0 {
		return phones
	}
	out := make([]*phoneState, 0, len(phones))
	for _, ps := range phones {
		if _, ok := m.draining[ps.info.ID]; !ok {
			out = append(out, ps)
		}
	}
	if len(out) == 0 {
		return phones
	}
	return out
}
