package tasks

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

func TestDigestDeterministicAndDistinct(t *testing.T) {
	a := Digest([]byte("hello"))
	if a != Digest([]byte("hello")) {
		t.Fatal("Digest not deterministic")
	}
	if a == Digest([]byte("hellp")) {
		t.Fatal("distinct payloads collided")
	}
	want := sha256.Sum256([]byte("hello"))
	if a != hex.EncodeToString(want[:]) {
		t.Fatalf("Digest = %s, want plain SHA-256 hex", a)
	}
}

func TestDigestEmptyAndNilAgree(t *testing.T) {
	if Digest(nil) != Digest([]byte{}) {
		t.Fatal("nil and empty payloads must share a digest")
	}
	if Digest(nil) == "" {
		t.Fatal("empty payload must still digest")
	}
}

func TestCheckpointDigestBindsOffsetWidth(t *testing.T) {
	// Without the fixed-width offset prefix these two would collide.
	a := (&Checkpoint{Offset: 1, State: []byte("2")}).Digest()
	b := (&Checkpoint{Offset: 12, State: nil}).Digest()
	if a == b {
		t.Fatal("offset/state boundary ambiguity: digests collided")
	}
	c := &Checkpoint{Offset: 7, State: []byte("acc")}
	if c.Digest() != c.Clone().Digest() {
		t.Fatal("clone digest differs")
	}
}
