package tasks

import (
	"bytes"
	"context"
	"fmt"
)

// forEachLine iterates newline-delimited records in input starting at
// ck.Offset, calling fn for each line (without the trailing newline).
// Every interruptEvery lines it checks ctx; on cancellation it leaves
// ck.Offset at the first unprocessed byte and returns ErrInterrupted.
// The caller is responsible for serializing its accumulator into ck.State
// when ErrInterrupted is returned. The same boundaries double as
// checkpoint-streaming flush points: when ctx carries a due
// CheckpointSink, save serializes the accumulator into ck and a copy is
// streamed (save may be nil for stateless callers).
func forEachLine(ctx context.Context, input []byte, ck *Checkpoint, save func(), fn func(line []byte)) error {
	if ck.Offset < 0 || ck.Offset > int64(len(input)) {
		return fmt.Errorf("tasks: checkpoint offset %d out of range [0,%d]", ck.Offset, len(input))
	}
	sink := sinkFrom(ctx)
	pos := ck.Offset
	n := 0
	for pos < int64(len(input)) {
		if n%interruptEvery == 0 {
			pauseIfPaced(ctx)
			if canceled(ctx) {
				ck.Offset = pos
				return ErrInterrupted
			}
			sink.maybeFlush(pos, ck, save)
		}
		rest := input[pos:]
		nl := bytes.IndexByte(rest, '\n')
		var line []byte
		if nl < 0 {
			line = rest
			pos = int64(len(input))
		} else {
			line = rest[:nl]
			pos += int64(nl) + 1
		}
		if len(line) > 0 {
			fn(line)
		}
		n++
	}
	ck.Offset = pos
	return nil
}

// splitLines partitions a newline-delimited input into pieces of
// approximately the requested sizes (KB), never breaking a line. The
// final piece absorbs any remainder. It fails when sizes are empty or the
// input cannot be distributed (e.g. all sizes zero while input remains).
func splitLines(input []byte, sizesKB []float64) ([][]byte, error) {
	if len(sizesKB) == 0 {
		return nil, fmt.Errorf("tasks: split into zero pieces")
	}
	total := 0.0
	for _, s := range sizesKB {
		if s < 0 {
			return nil, fmt.Errorf("tasks: negative partition size %v", s)
		}
		total += s
	}
	if total == 0 {
		return nil, fmt.Errorf("tasks: all partition sizes zero")
	}
	out := make([][]byte, len(sizesKB))
	pos := 0
	for i, s := range sizesKB {
		if i == len(sizesKB)-1 {
			out[i] = input[pos:]
			break
		}
		target := pos + int(s*1024)
		if target >= len(input) {
			out[i] = input[pos:]
			pos = len(input)
			continue
		}
		// Advance to the next line boundary at or after target.
		nl := bytes.IndexByte(input[target:], '\n')
		var cut int
		if nl < 0 {
			cut = len(input)
		} else {
			cut = target + nl + 1
		}
		out[i] = input[pos:cut]
		pos = cut
	}
	return out, nil
}
