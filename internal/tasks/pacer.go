package tasks

import "context"

// Pacer lets the phone runtime periodically pause a running task — the
// paper's §4.3 throttling mechanism ("our approach is to periodically
// pause the tasks being executed on the phones, and leave the CPU idle
// during such paused intervals"). Tasks call Pause at record-granularity
// checkpoints; the runtime's pacer blocks the call while the duty cycle
// is in a sleep phase.
type Pacer interface {
	// Pause blocks while execution should be paused. It must return
	// promptly once execution may continue or ctx is canceled.
	Pause(ctx context.Context)
}

// pacerKey is the context key carrying the Pacer.
type pacerKey struct{}

// WithPacer returns a context instructing tasks run under it to pause
// through p at their interruption checkpoints.
func WithPacer(ctx context.Context, p Pacer) context.Context {
	return context.WithValue(ctx, pacerKey{}, p)
}

// pauseIfPaced blocks on the context's pacer, if any.
func pauseIfPaced(ctx context.Context) {
	if p, ok := ctx.Value(pacerKey{}).(Pacer); ok {
		p.Pause(ctx)
	}
}
