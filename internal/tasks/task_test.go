package tasks

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func TestRegistryKnowsAllBuiltins(t *testing.T) {
	names := Names()
	for _, want := range []string{"blur", "maxint", "primecount", "wordcount"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q: %v", want, names)
		}
	}
}

func TestNewUnknownTask(t *testing.T) {
	if _, err := New("quantum-factoring", nil); err == nil {
		t.Error("unknown executable should error")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register should panic")
		}
	}()
	Register("primecount", func([]byte) (Task, error) { return PrimeCount{}, nil })
}

func TestNewInstantiatesWithParams(t *testing.T) {
	task, err := New("wordcount", []byte(`{"word":"sale"}`))
	if err != nil {
		t.Fatal(err)
	}
	wc, ok := task.(WordCount)
	if !ok || wc.Word != "sale" {
		t.Errorf("got %#v", task)
	}
}

func TestWordCountParamValidation(t *testing.T) {
	if _, err := New("wordcount", nil); err == nil {
		t.Error("wordcount without params should error")
	}
	if _, err := New("wordcount", []byte(`{}`)); err == nil {
		t.Error("wordcount with empty word should error")
	}
	if _, err := New("wordcount", []byte(`{bad json`)); err == nil {
		t.Error("wordcount with bad params should error")
	}
}

func TestPrimeCountProcess(t *testing.T) {
	input := []byte("2\n3\n4\n5\n9\n11\n12\nnot-a-number\n1\n0\n-7\n")
	var ck Checkpoint
	got, err := PrimeCount{}.Process(context.Background(), input, &ck)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "4" { // 2, 3, 5, 11
		t.Errorf("primes = %s, want 4", got)
	}
	if ck.Offset != int64(len(input)) {
		t.Errorf("final offset = %d, want %d", ck.Offset, len(input))
	}
}

func TestIsPrime(t *testing.T) {
	primes := []int64{2, 3, 5, 7, 11, 104729}
	composites := []int64{0, 1, 4, 9, 15, 104730, -3}
	for _, p := range primes {
		if !isPrime(p) {
			t.Errorf("%d should be prime", p)
		}
	}
	for _, c := range composites {
		if isPrime(c) {
			t.Errorf("%d should not be prime", c)
		}
	}
}

func TestWordCountProcess(t *testing.T) {
	input := []byte("the sale of the day\nsale sale\nno match here\n")
	var ck Checkpoint
	got, err := WordCount{Word: "sale"}.Process(context.Background(), input, &ck)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "3" {
		t.Errorf("count = %s, want 3", got)
	}
}

func TestWordCountExactMatchOnly(t *testing.T) {
	input := []byte("sales salesman sale\n")
	var ck Checkpoint
	got, err := WordCount{Word: "sale"}.Process(context.Background(), input, &ck)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "1" {
		t.Errorf("count = %s, want 1 (exact word match)", got)
	}
}

func TestMaxIntProcess(t *testing.T) {
	input := []byte("17\n-4\n9000\n42\n")
	var ck Checkpoint
	got, err := MaxInt{}.Process(context.Background(), input, &ck)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "9000" {
		t.Errorf("max = %s", got)
	}
}

func TestMaxIntEmptyInput(t *testing.T) {
	var ck Checkpoint
	got, err := MaxInt{}.Process(context.Background(), []byte("junk\n"), &ck)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "none" {
		t.Errorf("max of no integers = %s, want none", got)
	}
}

func TestMaxIntAggregateHandlesNone(t *testing.T) {
	got, err := MaxInt{}.Aggregate([][]byte{[]byte("none"), []byte("5"), []byte("3")})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "5" {
		t.Errorf("aggregate = %s", got)
	}
	got, err = MaxInt{}.Aggregate([][]byte{[]byte("none")})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "none" {
		t.Errorf("aggregate of none = %s", got)
	}
	if _, err := (MaxInt{}).Aggregate([][]byte{[]byte("banana")}); err == nil {
		t.Error("bad partial should error")
	}
}

func TestAggregateCounts(t *testing.T) {
	got, err := PrimeCount{}.Aggregate([][]byte{[]byte("3"), []byte(" 4\n"), []byte("0")})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "7" {
		t.Errorf("aggregate = %s, want 7", got)
	}
	if _, err := (PrimeCount{}).Aggregate([][]byte{[]byte("x")}); err == nil {
		t.Error("bad partial should error")
	}
}

func TestSplitPreservesContent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	input := GenIntegers(64, 1000000, rng)
	parts, err := PrimeCount{}.Split(input, []float64{10, 20, 34})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("got %d parts", len(parts))
	}
	var rejoined []byte
	for _, p := range parts {
		rejoined = append(rejoined, p...)
	}
	if string(rejoined) != string(input) {
		t.Error("concatenated partitions differ from original input")
	}
	// No partition may split a line: each non-final partition ends in \n.
	for i, p := range parts[:len(parts)-1] {
		if len(p) > 0 && p[len(p)-1] != '\n' {
			t.Errorf("partition %d does not end at a line boundary", i)
		}
	}
}

func TestSplitErrors(t *testing.T) {
	if _, err := splitLines([]byte("a\n"), nil); err == nil {
		t.Error("empty sizes should error")
	}
	if _, err := splitLines([]byte("a\n"), []float64{-1, 2}); err == nil {
		t.Error("negative size should error")
	}
	if _, err := splitLines([]byte("a\n"), []float64{0, 0}); err == nil {
		t.Error("all-zero sizes should error")
	}
}

func TestSplitSmallInputFewBytes(t *testing.T) {
	parts, err := splitLines([]byte("1\n2\n"), []float64{100, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	var rejoined []byte
	for _, p := range parts {
		rejoined = append(rejoined, p...)
	}
	if string(rejoined) != "1\n2\n" {
		t.Errorf("rejoined = %q", rejoined)
	}
}

// partitionThenAggregate checks the fundamental breakable-task invariant:
// split + process-each + aggregate == process-whole.
func partitionThenAggregate(t *testing.T, task Breakable, input []byte, sizes []float64) {
	t.Helper()
	ctx := context.Background()
	var wholeCk Checkpoint
	whole, err := task.Process(ctx, input, &wholeCk)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := task.Split(input, sizes)
	if err != nil {
		t.Fatal(err)
	}
	var partials [][]byte
	for _, p := range parts {
		var ck Checkpoint
		res, err := task.Process(ctx, p, &ck)
		if err != nil {
			t.Fatal(err)
		}
		partials = append(partials, res)
	}
	agg, err := task.Aggregate(partials)
	if err != nil {
		t.Fatal(err)
	}
	if string(agg) != string(whole) {
		t.Errorf("aggregate %s != whole %s", agg, whole)
	}
}

func TestBreakableEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ints := GenIntegers(96, 500000, rng)
	text := GenText(96, rng)
	t.Run("primecount", func(t *testing.T) {
		partitionThenAggregate(t, PrimeCount{}, ints, []float64{13, 40, 20, 23})
	})
	t.Run("maxint", func(t *testing.T) {
		partitionThenAggregate(t, MaxInt{}, ints, []float64{30, 30, 36})
	})
	t.Run("wordcount", func(t *testing.T) {
		partitionThenAggregate(t, WordCount{Word: "sale"}, text, []float64{5, 60, 31})
	})
}

// Property-style sweep: random partition counts and sizes preserve the
// breakable equivalence for prime counting.
func TestBreakableEquivalenceRandomSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	input := GenIntegers(48, 100000, rng)
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(6)
		sizes := make([]float64, n)
		for i := range sizes {
			sizes[i] = rng.Float64() * 20
		}
		sizes[rng.Intn(n)] += 10 // ensure not all ~zero
		partitionThenAggregate(t, PrimeCount{}, input, sizes)
	}
}

func TestForEachLineBadOffset(t *testing.T) {
	ck := &Checkpoint{Offset: 100}
	err := forEachLine(context.Background(), []byte("ab\n"), ck, nil, func([]byte) {})
	if err == nil {
		t.Error("out-of-range offset should error")
	}
	ck = &Checkpoint{Offset: -1}
	if err := forEachLine(context.Background(), []byte("ab\n"), ck, nil, func([]byte) {}); err == nil {
		t.Error("negative offset should error")
	}
}

func TestInterruptedProcessReturnsSentinel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before starting
	input := GenIntegers(16, 100000, rand.New(rand.NewSource(3)))
	var ck Checkpoint
	_, err := PrimeCount{}.Process(ctx, input, &ck)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if ck.Offset != 0 {
		t.Errorf("offset after immediate cancel = %d", ck.Offset)
	}
}

func TestCorruptStateRejected(t *testing.T) {
	ck := &Checkpoint{State: []byte("{not json")}
	if _, err := (PrimeCount{}).Process(context.Background(), []byte("2\n"), ck); err == nil {
		t.Error("corrupt count state should error")
	}
	ck = &Checkpoint{State: []byte("{not json")}
	if _, err := (MaxInt{}).Process(context.Background(), []byte("2\n"), ck); err == nil {
		t.Error("corrupt max state should error")
	}
}

func TestCheckpointReset(t *testing.T) {
	ck := Checkpoint{Offset: 10, State: []byte("x")}
	ck.Reset()
	if ck.Offset != 0 || ck.State != nil {
		t.Errorf("reset checkpoint = %+v", ck)
	}
}

func TestTaskMetadata(t *testing.T) {
	for _, task := range []Task{PrimeCount{}, WordCount{Word: "x"}, MaxInt{}, Blur{}} {
		if task.ExecKB() <= 0 {
			t.Errorf("%s ExecKB = %v", task.Name(), task.ExecKB())
		}
		if strings.TrimSpace(task.Name()) == "" {
			t.Error("empty task name")
		}
		if _, ok := BaseComputeMsPerKB[task.Name()]; !ok {
			t.Errorf("no base compute cost for %s", task.Name())
		}
	}
	// Params round-trips through the registry for parameterized tasks.
	wc := WordCount{Word: "receipt"}
	again, err := New(wc.Name(), wc.Params())
	if err != nil {
		t.Fatal(err)
	}
	if again.(WordCount).Word != "receipt" {
		t.Error("params did not round-trip")
	}
}

func TestPartialResults(t *testing.T) {
	pr, err := (PrimeCount{}).PartialResult([]byte(`{"count":7}`))
	if err != nil || string(pr) != "7" {
		t.Errorf("primecount partial = %s, %v", pr, err)
	}
	pr, err = (WordCount{Word: "x"}).PartialResult(nil)
	if err != nil || string(pr) != "0" {
		t.Errorf("wordcount empty partial = %s, %v", pr, err)
	}
	if _, err := (PrimeCount{}).PartialResult([]byte("{bad")); err == nil {
		t.Error("corrupt count state should error")
	}
	pr, err = (MaxInt{}).PartialResult([]byte(`{"max":42,"seen":true}`))
	if err != nil || string(pr) != "42" {
		t.Errorf("maxint partial = %s, %v", pr, err)
	}
	pr, err = (MaxInt{}).PartialResult(nil)
	if err != nil || string(pr) != "none" {
		t.Errorf("maxint empty partial = %s, %v", pr, err)
	}
	if _, err := (MaxInt{}).PartialResult([]byte("{bad")); err == nil {
		t.Error("corrupt max state should error")
	}
	// Aggregating a checkpoint-derived partial with normal results works.
	agg, err := (PrimeCount{}).Aggregate([][]byte{pr2(t), []byte("3")})
	if err != nil || string(agg) != "10" {
		t.Errorf("mixed aggregate = %s, %v", agg, err)
	}
}

func pr2(t *testing.T) []byte {
	t.Helper()
	pr, err := (PrimeCount{}).PartialResult([]byte(`{"count":7}`))
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestTaskParamsDefaults(t *testing.T) {
	if (PrimeCount{}).Params() != nil || (MaxInt{}).Params() != nil || (Blur{}).Params() != nil {
		t.Error("parameterless tasks should have nil params")
	}
}

// countingPacer counts Pause calls without ever blocking.
type countingPacer struct{ calls int }

func (p *countingPacer) Pause(context.Context) { p.calls++ }

func TestPacerInvokedAtCheckpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	input := GenIntegers(64, 100000, rng) // thousands of lines
	pacer := &countingPacer{}
	ctx := WithPacer(context.Background(), pacer)
	var ck Checkpoint
	if _, err := (PrimeCount{}).Process(ctx, input, &ck); err != nil {
		t.Fatal(err)
	}
	if pacer.calls < 2 {
		t.Errorf("pacer called %d times over a multi-checkpoint input", pacer.calls)
	}
	// Blur pauses per row.
	img, err := GenImageKB(8, rng)
	if err != nil {
		t.Fatal(err)
	}
	pacer.calls = 0
	ck.Reset()
	if _, err := (Blur{}).Process(ctx, img, &ck); err != nil {
		t.Fatal(err)
	}
	if pacer.calls == 0 {
		t.Error("blur never paced")
	}
	// No pacer in context: nothing breaks.
	ck.Reset()
	if _, err := (PrimeCount{}).Process(context.Background(), input, &ck); err != nil {
		t.Fatal(err)
	}
}
