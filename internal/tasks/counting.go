package tasks

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strconv"
)

// countState is the shared checkpoint accumulator for counting tasks.
type countState struct {
	Count int64 `json:"count"`
}

func loadCountState(ck *Checkpoint) (countState, error) {
	var st countState
	if len(ck.State) == 0 {
		return st, nil
	}
	if err := json.Unmarshal(ck.State, &st); err != nil {
		return st, fmt.Errorf("tasks: corrupt count state: %w", err)
	}
	return st, nil
}

func (s countState) save(ck *Checkpoint) {
	// Marshalling a flat int64 cannot fail.
	ck.State, _ = json.Marshal(s)
}

// aggregateCounts sums decimal integer partials (the server-side merge for
// counting tasks: "the server can simply sum the number of occurrences
// reported by each phone").
func aggregateCounts(partials [][]byte) ([]byte, error) {
	var total int64
	for i, p := range partials {
		v, err := strconv.ParseInt(string(bytes.TrimSpace(p)), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("tasks: partial %d is not a count: %w", i, err)
		}
		total += v
	}
	return []byte(strconv.FormatInt(total, 10)), nil
}

// PrimeCount counts prime numbers in an input file of one integer per
// line — the paper's first evaluation task. Breakable.
type PrimeCount struct{}

// Register the executable at init, as an Android build would bundle it.
func init() {
	Register("primecount", func([]byte) (Task, error) { return PrimeCount{}, nil })
}

// Name implements Task.
func (PrimeCount) Name() string { return "primecount" }

// Params implements Task.
func (PrimeCount) Params() []byte { return nil }

// ExecKB implements Task. Sizes approximate the paper's dex-packaged jars.
func (PrimeCount) ExecKB() float64 { return 12 }

// Process implements Task.
func (PrimeCount) Process(ctx context.Context, input []byte, ck *Checkpoint) ([]byte, error) {
	st, err := loadCountState(ck)
	if err != nil {
		return nil, err
	}
	err = forEachLine(ctx, input, ck, func() { st.save(ck) }, func(line []byte) {
		n, perr := strconv.ParseInt(string(bytes.TrimSpace(line)), 10, 64)
		if perr == nil && isPrime(n) {
			st.Count++
		}
	})
	if err != nil {
		st.save(ck)
		return nil, err
	}
	return []byte(strconv.FormatInt(st.Count, 10)), nil
}

// Split implements Breakable.
func (PrimeCount) Split(input []byte, sizesKB []float64) ([][]byte, error) {
	return splitLines(input, sizesKB)
}

// Aggregate implements Breakable.
func (PrimeCount) Aggregate(partials [][]byte) ([]byte, error) {
	return aggregateCounts(partials)
}

// isPrime is deterministic trial division; inputs are line-sized integers
// so O(sqrt n) is plenty.
func isPrime(n int64) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := int64(3); d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// WordCount counts occurrences of a target word in a text input — the
// paper's second evaluation task. Breakable. Words are whitespace-split
// and matched exactly.
type WordCount struct {
	Word string `json:"word"`
}

func init() {
	Register("wordcount", func(params []byte) (Task, error) {
		var w WordCount
		if len(params) == 0 {
			return nil, fmt.Errorf("tasks: wordcount requires a target word")
		}
		if err := json.Unmarshal(params, &w); err != nil {
			return nil, fmt.Errorf("tasks: bad wordcount params: %w", err)
		}
		if w.Word == "" {
			return nil, fmt.Errorf("tasks: wordcount requires a non-empty word")
		}
		return w, nil
	})
}

// Name implements Task.
func (WordCount) Name() string { return "wordcount" }

// Params implements Task.
func (w WordCount) Params() []byte {
	b, _ := json.Marshal(w)
	return b
}

// ExecKB implements Task.
func (WordCount) ExecKB() float64 { return 9 }

// Process implements Task.
func (w WordCount) Process(ctx context.Context, input []byte, ck *Checkpoint) ([]byte, error) {
	st, err := loadCountState(ck)
	if err != nil {
		return nil, err
	}
	target := []byte(w.Word)
	err = forEachLine(ctx, input, ck, func() { st.save(ck) }, func(line []byte) {
		for _, f := range bytes.Fields(line) {
			if bytes.Equal(f, target) {
				st.Count++
			}
		}
	})
	if err != nil {
		st.save(ck)
		return nil, err
	}
	return []byte(strconv.FormatInt(st.Count, 10)), nil
}

// Split implements Breakable.
func (WordCount) Split(input []byte, sizesKB []float64) ([][]byte, error) {
	return splitLines(input, sizesKB)
}

// Aggregate implements Breakable.
func (WordCount) Aggregate(partials [][]byte) ([]byte, error) {
	return aggregateCounts(partials)
}

// MaxInt finds the largest integer in an input file of one integer per
// line — the task from the paper's bandwidth-variability experiment
// (Figure 5). Breakable: max is associative.
type MaxInt struct{}

func init() {
	Register("maxint", func([]byte) (Task, error) { return MaxInt{}, nil })
}

// maxState tracks whether any integer has been seen, so an all-empty
// partition aggregates correctly.
type maxState struct {
	Max  int64 `json:"max"`
	Seen bool  `json:"seen"`
}

// Name implements Task.
func (MaxInt) Name() string { return "maxint" }

// Params implements Task.
func (MaxInt) Params() []byte { return nil }

// ExecKB implements Task.
func (MaxInt) ExecKB() float64 { return 6 }

// Process implements Task. The result is the decimal max, or "none" when
// the input holds no integers.
func (MaxInt) Process(ctx context.Context, input []byte, ck *Checkpoint) ([]byte, error) {
	var st maxState
	if len(ck.State) > 0 {
		if err := json.Unmarshal(ck.State, &st); err != nil {
			return nil, fmt.Errorf("tasks: corrupt max state: %w", err)
		}
	}
	save := func() { ck.State, _ = json.Marshal(st) }
	err := forEachLine(ctx, input, ck, save, func(line []byte) {
		n, perr := strconv.ParseInt(string(bytes.TrimSpace(line)), 10, 64)
		if perr != nil {
			return
		}
		if !st.Seen || n > st.Max {
			st.Max, st.Seen = n, true
		}
	})
	if err != nil {
		ck.State, _ = json.Marshal(st)
		return nil, err
	}
	if !st.Seen {
		return []byte("none"), nil
	}
	return []byte(strconv.FormatInt(st.Max, 10)), nil
}

// Split implements Breakable.
func (MaxInt) Split(input []byte, sizesKB []float64) ([][]byte, error) {
	return splitLines(input, sizesKB)
}

// Aggregate implements Breakable.
func (MaxInt) Aggregate(partials [][]byte) ([]byte, error) {
	var best int64
	seen := false
	for i, p := range partials {
		s := string(bytes.TrimSpace(p))
		if s == "none" {
			continue
		}
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("tasks: partial %d is not a max: %w", i, err)
		}
		if !seen || v > best {
			best, seen = v, true
		}
	}
	if !seen {
		return []byte("none"), nil
	}
	return []byte(strconv.FormatInt(best, 10)), nil
}

// PartialResult implements PartialReporter: the checkpointed count is
// itself a valid partial result.
func (PrimeCount) PartialResult(state []byte) ([]byte, error) {
	return countStateToResult(state)
}

// PartialResult implements PartialReporter.
func (WordCount) PartialResult(state []byte) ([]byte, error) {
	return countStateToResult(state)
}

func countStateToResult(state []byte) ([]byte, error) {
	var st countState
	if len(state) > 0 {
		if err := json.Unmarshal(state, &st); err != nil {
			return nil, fmt.Errorf("tasks: corrupt count state: %w", err)
		}
	}
	return []byte(strconv.FormatInt(st.Count, 10)), nil
}

// PartialResult implements PartialReporter: an interrupted max search
// reports the best value seen so far (or "none").
func (MaxInt) PartialResult(state []byte) ([]byte, error) {
	var st maxState
	if len(state) > 0 {
		if err := json.Unmarshal(state, &st); err != nil {
			return nil, fmt.Errorf("tasks: corrupt max state: %w", err)
		}
	}
	if !st.Seen {
		return []byte("none"), nil
	}
	return []byte(strconv.FormatInt(st.Max, 10)), nil
}
