package tasks

import (
	"context"
	"math/rand"
	"testing"
)

func BenchmarkPrimeCountProcess(b *testing.B) {
	input := GenIntegers(256, 1000000, rand.New(rand.NewSource(1)))
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ck Checkpoint
		if _, err := (PrimeCount{}).Process(context.Background(), input, &ck); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWordCountProcess(b *testing.B) {
	input := GenText(256, rand.New(rand.NewSource(2)))
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ck Checkpoint
		if _, err := (WordCount{Word: "sale"}).Process(context.Background(), input, &ck); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxIntProcess(b *testing.B) {
	input := GenIntegers(256, 1000000, rand.New(rand.NewSource(3)))
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ck Checkpoint
		if _, err := (MaxInt{}).Process(context.Background(), input, &ck); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlurProcess(b *testing.B) {
	input, err := GenImageKB(64, rand.New(rand.NewSource(4)))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ck Checkpoint
		if _, err := (Blur{}).Process(context.Background(), input, &ck); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSplit(b *testing.B) {
	input := GenIntegers(1024, 1000000, rand.New(rand.NewSource(5)))
	sizes := []float64{100, 300, 200, 424}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (PrimeCount{}).Split(input, sizes); err != nil {
			b.Fatal(err)
		}
	}
}
