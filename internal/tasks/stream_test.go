package tasks

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"
	"time"
)

func TestCheckpointClone(t *testing.T) {
	var nilCk *Checkpoint
	if nilCk.Clone() != nil {
		t.Error("nil checkpoint should clone to nil")
	}
	ck := &Checkpoint{Offset: 9, State: []byte("abc")}
	c := ck.Clone()
	if c.Offset != 9 || string(c.State) != "abc" {
		t.Fatalf("clone = %+v", c)
	}
	c.State[0] = 'Z'
	if string(ck.State) != "abc" {
		t.Error("clone shares the state buffer with the original")
	}
}

func TestSinkStreamsDuringPrimeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	input := GenIntegers(16, 100000, rng) // 16 KB, ~2800 lines
	var flushed []*Checkpoint
	sink := &CheckpointSink{
		EveryBytes: 2 * 1024,
		Flush:      func(ck *Checkpoint) { flushed = append(flushed, ck) },
	}
	ctx := WithCheckpointSink(context.Background(), sink)
	var ck Checkpoint
	want, err := (PrimeCount{}).Process(ctx, input, &ck)
	if err != nil {
		t.Fatal(err)
	}
	if len(flushed) < 3 {
		t.Fatalf("only %d flushes over 16 KB at a 2 KB interval", len(flushed))
	}
	last := int64(0)
	for i, f := range flushed {
		if f.Offset <= last || f.Offset > int64(len(input)) {
			t.Fatalf("flush %d offset %d not in (%d, %d]", i, f.Offset, last, len(input))
		}
		last = f.Offset
		// Every flushed checkpoint is independently resumable: finishing
		// the computation from it reproduces the full answer.
		resume := f.Clone()
		got, err := (PrimeCount{}).Process(context.Background(), input, resume)
		if err != nil {
			t.Fatalf("resuming from flush %d: %v", i, err)
		}
		if string(got) != string(want) {
			t.Errorf("resume from flush %d (offset %d) = %s, want %s", i, f.Offset, got, want)
		}
	}
}

func TestSinkFlushesAreDeepCopies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	input := GenIntegers(8, 100000, rng)
	var flushed []*Checkpoint
	sink := &CheckpointSink{
		EveryBytes: 2 * 1024,
		Flush:      func(ck *Checkpoint) { flushed = append(flushed, ck) },
	}
	ctx := WithCheckpointSink(context.Background(), sink)
	var ck Checkpoint
	if _, err := (PrimeCount{}).Process(ctx, input, &ck); err != nil {
		t.Fatal(err)
	}
	if len(flushed) < 2 {
		t.Fatalf("only %d flushes", len(flushed))
	}
	// Counts must be strictly increasing across snapshots: if the task's
	// later progress mutated an earlier flush's state, they would all
	// show the final count.
	lastCount := int64(-1)
	for i, f := range flushed {
		var st struct {
			Count int64 `json:"count"`
		}
		if err := json.Unmarshal(f.State, &st); err != nil {
			t.Fatalf("flush %d state: %v", i, err)
		}
		if st.Count <= lastCount {
			t.Errorf("flush %d count %d <= previous %d: snapshots share state", i, st.Count, lastCount)
		}
		lastCount = st.Count
	}
}

func TestSinkFirstCallAnchorsOnly(t *testing.T) {
	// A resumed execution must not instantly re-stream the checkpoint it
	// was handed: the first due() call anchors the interval at the resume
	// offset.
	flushes := 0
	sink := &CheckpointSink{
		EveryBytes: 100,
		Flush:      func(*Checkpoint) { flushes++ },
	}
	ctx := WithCheckpointSink(context.Background(), sink)
	ck := &Checkpoint{Offset: 5000}
	StreamCheckpoint(ctx, 5000, ck, nil)
	StreamCheckpoint(ctx, 5050, ck, nil)
	if flushes != 0 {
		t.Fatalf("%d flushes before a full interval elapsed", flushes)
	}
	StreamCheckpoint(ctx, 5100, ck, nil)
	if flushes != 1 {
		t.Fatalf("flushes = %d after a full interval, want 1", flushes)
	}
	// The interval re-anchors at the flush offset.
	StreamCheckpoint(ctx, 5150, ck, nil)
	if flushes != 1 {
		t.Fatalf("flushes = %d mid-interval, want 1", flushes)
	}
}

func TestSinkTimeTrigger(t *testing.T) {
	flushes := 0
	sink := &CheckpointSink{
		Every: time.Millisecond,
		Flush: func(*Checkpoint) { flushes++ },
	}
	ctx := WithCheckpointSink(context.Background(), sink)
	ck := &Checkpoint{}
	StreamCheckpoint(ctx, 10, ck, nil) // anchor
	StreamCheckpoint(ctx, 20, ck, nil)
	if flushes != 0 {
		t.Fatalf("%d flushes before the interval elapsed", flushes)
	}
	time.Sleep(3 * time.Millisecond)
	StreamCheckpoint(ctx, 30, ck, nil)
	if flushes != 1 {
		t.Fatalf("flushes = %d after the interval elapsed, want 1", flushes)
	}
}

func TestWithCheckpointSinkNoops(t *testing.T) {
	base := context.Background()
	for name, s := range map[string]*CheckpointSink{
		"nil sink":     nil,
		"nil flush":    {EveryBytes: 1},
		"no triggers":  {Flush: func(*Checkpoint) {}},
		"neg triggers": {EveryBytes: -1, Every: -time.Second, Flush: func(*Checkpoint) {}},
	} {
		if got := WithCheckpointSink(base, s); got != base {
			t.Errorf("%s: context was wrapped", name)
		}
	}
	// And a sink-less context streams nothing, cheaply.
	StreamCheckpoint(base, 100, &Checkpoint{}, nil)
}

func TestSinkStreamsDuringBlur(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	img, err := GenImageKB(32, rng)
	if err != nil {
		t.Fatal(err)
	}
	var offsets []int64
	sink := &CheckpointSink{
		EveryBytes: 4 * 1024,
		Flush:      func(ck *Checkpoint) { offsets = append(offsets, ck.Offset) },
	}
	ctx := WithCheckpointSink(context.Background(), sink)
	var ck Checkpoint
	want, err := (Blur{}).Process(ctx, img, &ck)
	if err != nil {
		t.Fatal(err)
	}
	if len(offsets) == 0 {
		t.Fatal("blur never streamed a checkpoint")
	}
	for i, off := range offsets {
		if off <= 0 || off > int64(len(img)) {
			t.Errorf("flush %d offset %d out of range", i, off)
		}
	}
	// Sanity: a sink-less run produces the same output.
	var ck2 Checkpoint
	plain, err := (Blur{}).Process(context.Background(), img, &ck2)
	if err != nil {
		t.Fatal(err)
	}
	if string(plain) != string(want) {
		t.Error("streaming changed the blur output")
	}
}
