package tasks

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
)

// Blur applies a 3x3 box blur to an image — the paper's third evaluation
// task and its canonical *atomic* task: each output pixel depends on its
// neighbours, so the input cannot be partitioned across phones. Batches of
// Blur tasks still run concurrently, one photo per phone.
//
// The prototype hit a Dalvik/JVM incompatibility (no BufferedImage on
// Android) and worked around it by pre-processing photos into text files
// with one pixel per line; the phones process text, and the server
// re-creates the photo. EncodeImage/DecodeImage implement exactly that
// text-pixel format:
//
//	W H\n
//	R G B\n   (W*H lines, row-major)
type Blur struct{}

func init() {
	Register("blur", func([]byte) (Task, error) { return Blur{}, nil })
}

// Name implements Task.
func (Blur) Name() string { return "blur" }

// Params implements Task.
func (Blur) Params() []byte { return nil }

// ExecKB implements Task.
func (Blur) ExecKB() float64 { return 15 }

// Pixel is an 8-bit RGB sample.
type Pixel struct {
	R, G, B uint8
}

// Image is a row-major pixel grid.
type Image struct {
	W, H   int
	Pixels []Pixel // len == W*H
}

// At returns the pixel at (x, y) with edge clamping.
func (im *Image) At(x, y int) Pixel {
	if x < 0 {
		x = 0
	} else if x >= im.W {
		x = im.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= im.H {
		y = im.H - 1
	}
	return im.Pixels[y*im.W+x]
}

// EncodeImage renders an image in the text-pixel format (the server-side
// pre-processing step of the prototype).
func EncodeImage(im *Image) ([]byte, error) {
	if im.W <= 0 || im.H <= 0 || len(im.Pixels) != im.W*im.H {
		return nil, fmt.Errorf("tasks: invalid image %dx%d with %d pixels", im.W, im.H, len(im.Pixels))
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%d %d\n", im.W, im.H)
	for _, p := range im.Pixels {
		fmt.Fprintf(&buf, "%d %d %d\n", p.R, p.G, p.B)
	}
	return buf.Bytes(), nil
}

// DecodeImage parses the text-pixel format (the server-side re-creation
// step).
func DecodeImage(data []byte) (*Image, error) {
	lines := bytes.Split(data, []byte{'\n'})
	if len(lines) == 0 {
		return nil, fmt.Errorf("tasks: empty image data")
	}
	var w, h int
	if _, err := fmt.Sscanf(string(lines[0]), "%d %d", &w, &h); err != nil {
		return nil, fmt.Errorf("tasks: bad image header %q: %w", lines[0], err)
	}
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("tasks: bad image dimensions %dx%d", w, h)
	}
	im := &Image{W: w, H: h, Pixels: make([]Pixel, 0, w*h)}
	for _, line := range lines[1:] {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var r, g, b int
		if _, err := fmt.Sscanf(string(line), "%d %d %d", &r, &g, &b); err != nil {
			return nil, fmt.Errorf("tasks: bad pixel line %q: %w", line, err)
		}
		if r < 0 || r > 255 || g < 0 || g > 255 || b < 0 || b > 255 {
			return nil, fmt.Errorf("tasks: pixel %q out of 8-bit range", line)
		}
		im.Pixels = append(im.Pixels, Pixel{uint8(r), uint8(g), uint8(b)})
	}
	if len(im.Pixels) != w*h {
		return nil, fmt.Errorf("tasks: image has %d pixels, header says %d", len(im.Pixels), w*h)
	}
	return im, nil
}

// blurState checkpoints the blur by completed output rows.
type blurState struct {
	Row int     `json:"row"` // next output row to compute
	Out []Pixel `json:"out"` // completed output pixels (Row * W entries)
}

// Process implements Task. The result is the blurred image in the same
// text-pixel format.
func (Blur) Process(ctx context.Context, input []byte, ck *Checkpoint) ([]byte, error) {
	im, err := DecodeImage(input)
	if err != nil {
		return nil, err
	}
	var st blurState
	if len(ck.State) > 0 {
		if err := json.Unmarshal(ck.State, &st); err != nil {
			return nil, fmt.Errorf("tasks: corrupt blur state: %w", err)
		}
		if st.Row < 0 || st.Row > im.H || len(st.Out) != st.Row*im.W {
			return nil, fmt.Errorf("tasks: blur state inconsistent with image")
		}
	}
	out := st.Out
	sink := sinkFrom(ctx)
	for y := st.Row; y < im.H; y++ {
		pauseIfPaced(ctx)
		if sink != nil {
			// Streaming checkpoints at row granularity; the proportional
			// offset mirrors the interrupt path below.
			sink.maybeFlush(int64(len(input))*int64(y)/int64(im.H), ck, func() {
				st.Row, st.Out = y, out
				ck.State, _ = json.Marshal(st)
			})
		}
		if canceled(ctx) {
			st.Row, st.Out = y, out
			ck.State, err = json.Marshal(st)
			if err != nil {
				return nil, fmt.Errorf("tasks: saving blur state: %w", err)
			}
			// Offset reports input progress proportionally so failure
			// reports can state how much work is left.
			ck.Offset = int64(len(input)) * int64(y) / int64(im.H)
			return nil, ErrInterrupted
		}
		for x := 0; x < im.W; x++ {
			var r, g, b int
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					p := im.At(x+dx, y+dy)
					r += int(p.R)
					g += int(p.G)
					b += int(p.B)
				}
			}
			out = append(out, Pixel{uint8(r / 9), uint8(g / 9), uint8(b / 9)})
		}
	}
	ck.Offset = int64(len(input))
	blurred := &Image{W: im.W, H: im.H, Pixels: out}
	return EncodeImage(blurred)
}

// GrayscaleDistance returns the mean absolute per-channel difference
// between two images — a test helper exported for examples that want to
// verify a blur actually smoothed an image.
func GrayscaleDistance(a, b *Image) (float64, error) {
	if a.W != b.W || a.H != b.H || len(a.Pixels) != len(b.Pixels) {
		return 0, fmt.Errorf("tasks: image sizes differ (%dx%d vs %dx%d)", a.W, a.H, b.W, b.H)
	}
	if len(a.Pixels) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i := range a.Pixels {
		sum += absDiff(a.Pixels[i].R, b.Pixels[i].R)
		sum += absDiff(a.Pixels[i].G, b.Pixels[i].G)
		sum += absDiff(a.Pixels[i].B, b.Pixels[i].B)
	}
	return sum / float64(3*len(a.Pixels)), nil
}

func absDiff(a, b uint8) float64 {
	if a > b {
		return float64(a - b)
	}
	return float64(b - a)
}
