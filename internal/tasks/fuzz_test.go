package tasks

import (
	"context"
	"testing"
)

// FuzzDecodeImage checks the text-pixel decoder never panics and that
// every accepted image re-encodes and re-decodes identically.
func FuzzDecodeImage(f *testing.F) {
	f.Add([]byte("2 2\n1 2 3\n4 5 6\n7 8 9\n10 11 12\n"))
	f.Add([]byte("1 1\n255 255 255\n"))
	f.Add([]byte("x"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := DecodeImage(data)
		if err != nil {
			return
		}
		enc, err := EncodeImage(im)
		if err != nil {
			t.Fatalf("re-encoding accepted image: %v", err)
		}
		again, err := DecodeImage(enc)
		if err != nil {
			t.Fatalf("re-decoding encoded image: %v", err)
		}
		if again.W != im.W || again.H != im.H || len(again.Pixels) != len(im.Pixels) {
			t.Fatal("round trip changed dimensions")
		}
	})
}

// FuzzCheckpointOffsets checks counting tasks tolerate arbitrary
// checkpoint offsets/states without panicking, rejecting the invalid ones.
func FuzzCheckpointOffsets(f *testing.F) {
	f.Add(int64(0), []byte(`{"count":3}`), []byte("2\n3\n4\n"))
	f.Add(int64(-5), []byte(``), []byte("7\n"))
	f.Add(int64(9999), []byte(`{bad`), []byte("11\n13\n"))
	f.Fuzz(func(t *testing.T, offset int64, state, input []byte) {
		ck := &Checkpoint{Offset: offset, State: state}
		res, err := (PrimeCount{}).Process(context.Background(), input, ck)
		if err != nil {
			return
		}
		if len(res) == 0 {
			t.Fatal("successful run produced empty result")
		}
	})
}
