package tasks

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// interruptAfter runs the task, canceling the context after the given
// number of nanoseconds of wall time, and returns either the final result
// or the checkpoint at interruption.
func runWithInterrupt(t *testing.T, task Task, input []byte, ck *Checkpoint, after time.Duration) ([]byte, bool) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(after)
		cancel()
	}()
	res, err := task.Process(ctx, input, ck)
	cancel()
	if err == nil {
		return res, true
	}
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("unexpected error: %v", err)
	}
	return nil, false
}

// resumeToCompletion keeps calling Process with the same checkpoint until
// it completes, simulating migration to a sequence of phones.
func resumeToCompletion(t *testing.T, task Task, input []byte, ck *Checkpoint) []byte {
	t.Helper()
	for attempt := 0; attempt < 1000; attempt++ {
		res, err := task.Process(context.Background(), input, ck)
		if err == nil {
			return res
		}
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("resume error: %v", err)
		}
	}
	t.Fatal("task did not complete after 1000 resumes")
	return nil
}

// The migration property at the heart of CWC's failure handling: a task
// interrupted at an arbitrary point and resumed from its checkpoint on
// another "phone" produces exactly the result of an uninterrupted run.
func TestInterruptResumeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2012))
	ints := GenIntegers(256, 200000, rng)
	text := GenText(256, rng)
	img, err := GenImageKB(128, rng)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		task  Task
		input []byte
	}{
		{"primecount", PrimeCount{}, ints},
		{"wordcount", WordCount{Word: "inventory"}, text},
		{"maxint", MaxInt{}, ints},
		{"blur", Blur{}, img},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var wholeCk Checkpoint
			want, err := tc.task.Process(context.Background(), tc.input, &wholeCk)
			if err != nil {
				t.Fatal(err)
			}
			for _, delay := range []time.Duration{0, 50 * time.Microsecond, 500 * time.Microsecond, 2 * time.Millisecond} {
				var ck Checkpoint
				if res, done := runWithInterrupt(t, tc.task, tc.input, &ck, delay); done {
					if string(res) != string(want) {
						t.Fatalf("uninterrupted run mismatch at delay %v", delay)
					}
					continue
				}
				got := resumeToCompletion(t, tc.task, tc.input, &ck)
				if string(got) != string(want) {
					t.Fatalf("delay %v: resumed result differs from uninterrupted", delay)
				}
			}
		})
	}
}

// Interruptions at many random points, resumed repeatedly, still converge
// to the right answer — the repeated-migration scenario.
func TestRepeatedMigration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	input := GenIntegers(128, 150000, rng)
	var wholeCk Checkpoint
	want, err := PrimeCount{}.Process(context.Background(), input, &wholeCk)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		var ck Checkpoint
		for {
			// Cancel after a random sliver of work.
			ctx, cancel := context.WithCancel(context.Background())
			go func(d time.Duration) {
				time.Sleep(d)
				cancel()
			}(time.Duration(rng.Intn(200)) * time.Microsecond)
			res, err := PrimeCount{}.Process(ctx, input, &ck)
			cancel()
			if err == nil {
				if string(res) != string(want) {
					t.Fatalf("trial %d: got %s, want %s", trial, res, want)
				}
				break
			}
			if !errors.Is(err, ErrInterrupted) {
				t.Fatal(err)
			}
			// Checkpoint must always be internally consistent.
			if ck.Offset < 0 || ck.Offset > int64(len(input)) {
				t.Fatalf("checkpoint offset %d out of range", ck.Offset)
			}
		}
	}
}

// Checkpoint progress must be monotone: resuming never loses work.
func TestCheckpointMonotoneProgress(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	input := GenIntegers(256, 100000, rng)
	var ck Checkpoint
	prev := int64(0)
	for i := 0; ; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(200 * time.Microsecond)
			cancel()
		}()
		_, err := PrimeCount{}.Process(ctx, input, &ck)
		cancel()
		if err == nil {
			break
		}
		if !errors.Is(err, ErrInterrupted) {
			t.Fatal(err)
		}
		if ck.Offset < prev {
			t.Fatalf("offset went backwards: %d -> %d", prev, ck.Offset)
		}
		prev = ck.Offset
		if i > 1000 {
			t.Fatal("no completion after 1000 interrupts")
		}
	}
}

func TestBlurResumeStateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	img, err := GenImageKB(32, rng)
	if err != nil {
		t.Fatal(err)
	}
	ck := &Checkpoint{State: []byte(`{"row": 999999, "out": []}`)}
	if _, err := (Blur{}).Process(context.Background(), img, ck); err == nil {
		t.Error("inconsistent blur state should be rejected")
	}
	ck = &Checkpoint{State: []byte(`{bad`)}
	if _, err := (Blur{}).Process(context.Background(), img, ck); err == nil {
		t.Error("corrupt blur state should be rejected")
	}
}

func TestBlurActuallySmooths(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	im := GenImage(24, 24, rng)
	enc, err := EncodeImage(im)
	if err != nil {
		t.Fatal(err)
	}
	var ck Checkpoint
	out, err := Blur{}.Process(context.Background(), enc, &ck)
	if err != nil {
		t.Fatal(err)
	}
	blurred, err := DecodeImage(out)
	if err != nil {
		t.Fatal(err)
	}
	// A blur reduces local variation: neighbouring-pixel distance in the
	// output must be below the input's.
	variation := func(im *Image) float64 {
		sum := 0.0
		for y := 0; y < im.H; y++ {
			for x := 1; x < im.W; x++ {
				a, b := im.At(x-1, y), im.At(x, y)
				sum += absDiff(a.R, b.R) + absDiff(a.G, b.G) + absDiff(a.B, b.B)
			}
		}
		return sum
	}
	if v, v0 := variation(blurred), variation(im); v >= v0 {
		t.Errorf("blur did not smooth: variation %v >= %v", v, v0)
	}
}
