package tasks_test

import (
	"context"
	"fmt"

	"cwc/internal/tasks"
)

// ExampleWordCount shows the breakable-task lifecycle the CWC server
// drives: split the input, process the pieces (on different phones), and
// aggregate the partial results.
func ExampleWordCount() {
	task := tasks.WordCount{Word: "sale"}
	input := []byte("sale of the day\nbig sale\nno match\nsale sale sale\n")

	pieces, err := task.Split(input, []float64{0.02, 0.03})
	if err != nil {
		fmt.Println(err)
		return
	}
	var partials [][]byte
	for _, piece := range pieces {
		var ck tasks.Checkpoint
		res, err := task.Process(context.Background(), piece, &ck)
		if err != nil {
			fmt.Println(err)
			return
		}
		partials = append(partials, res)
	}
	total, err := task.Aggregate(partials)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d pieces, total %s\n", len(pieces), total)
	// Output:
	// 2 pieces, total 5
}
