// Canonical-bytes digest rule for result integrity. A digest pins the
// exact payload bytes a frame claims to carry, so the master can verify
// frames from phones it does not control: a transport-corrupted result
// fails the digest check outright, and two replicas of the same
// partition can be compared (and voted over) by digest alone without
// shipping both payloads to the comparison site.
//
// The rule is deliberately trivial: a result's canonical bytes ARE its
// payload bytes (tasks already emit deterministic output for identical
// input — that determinism is what makes replicated voting sound), and
// a checkpoint's canonical bytes are its offset in fixed-width
// big-endian followed by the state bytes. No JSON, no maps, no
// re-serialization ambiguity.
package tasks

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Digest returns the canonical digest of a result payload: lowercase hex
// SHA-256 over the exact payload bytes. Digest(nil) is the digest of the
// empty payload, so a task legitimately returning zero bytes still
// yields a comparable, stable digest.
func Digest(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// Digest returns the canonical digest of the checkpoint: SHA-256 over
// the 8-byte big-endian offset followed by the state bytes. The
// fixed-width offset prefix keeps (offset=1, state="2") and
// (offset=12, state="") from colliding.
func (c *Checkpoint) Digest() string {
	h := sha256.New()
	var off [8]byte
	binary.BigEndian.PutUint64(off[:], uint64(c.Offset))
	h.Write(off[:])
	h.Write(c.State)
	return hex.EncodeToString(h.Sum(nil))
}
