package tasks

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"time"
)

// SleepCount counts newline-delimited records, sleeping a configurable
// duration per batch of lines. The real evaluation tasks process input at
// host speed — far faster than the paper's phones — which makes every
// mid-execution scenario (unplugs, silent deaths, stragglers) land either
// before or after the compute instead of inside it. SleepCount is the
// tunable stand-in for a genuinely compute-bound executable: tests and
// demos dial PerBatch up until an execution spans the window they need.
// Breakable; the aggregate is the total line count.
type SleepCount struct {
	// PerBatch is slept once per BatchLines lines (0: no sleep).
	PerBatch time.Duration `json:"per_batch_ns"`
	// BatchLines is the sleep granularity (default 32 lines).
	BatchLines int `json:"batch_lines,omitempty"`
}

func init() {
	Register("sleepcount", func(params []byte) (Task, error) {
		var s SleepCount
		if len(params) > 0 {
			if err := json.Unmarshal(params, &s); err != nil {
				return nil, fmt.Errorf("tasks: bad sleepcount params: %w", err)
			}
		}
		if s.PerBatch < 0 || s.BatchLines < 0 {
			return nil, fmt.Errorf("tasks: negative sleepcount pacing")
		}
		return s, nil
	})
}

// Name implements Task.
func (SleepCount) Name() string { return "sleepcount" }

// Params implements Task.
func (s SleepCount) Params() []byte {
	b, _ := json.Marshal(s)
	return b
}

// ExecKB implements Task.
func (SleepCount) ExecKB() float64 { return 8 }

// Process implements Task.
func (s SleepCount) Process(ctx context.Context, input []byte, ck *Checkpoint) ([]byte, error) {
	st, err := loadCountState(ck)
	if err != nil {
		return nil, err
	}
	batch := s.BatchLines
	if batch <= 0 {
		batch = 32
	}
	sinceSleep := 0
	err = forEachLine(ctx, input, ck, func() { st.save(ck) }, func(line []byte) {
		st.Count++
		sinceSleep++
		if s.PerBatch > 0 && sinceSleep >= batch {
			sinceSleep = 0
			time.Sleep(s.PerBatch)
		}
	})
	if err != nil {
		st.save(ck)
		return nil, err
	}
	return []byte(strconv.FormatInt(st.Count, 10)), nil
}

// Split implements Breakable.
func (SleepCount) Split(input []byte, sizesKB []float64) ([][]byte, error) {
	return splitLines(input, sizesKB)
}

// Aggregate implements Breakable.
func (SleepCount) Aggregate(partials [][]byte) ([]byte, error) {
	return aggregateCounts(partials)
}
