package tasks

import (
	"context"
	"math/rand"
	"strings"
	"testing"
)

func TestImageEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	im := GenImage(7, 5, rng)
	enc, err := EncodeImage(im)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeImage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.W != 7 || dec.H != 5 {
		t.Fatalf("decoded %dx%d", dec.W, dec.H)
	}
	for i := range im.Pixels {
		if im.Pixels[i] != dec.Pixels[i] {
			t.Fatalf("pixel %d differs", i)
		}
	}
}

func TestEncodeImageValidation(t *testing.T) {
	if _, err := EncodeImage(&Image{W: 2, H: 2, Pixels: make([]Pixel, 3)}); err == nil {
		t.Error("pixel count mismatch should error")
	}
	if _, err := EncodeImage(&Image{W: 0, H: 2}); err == nil {
		t.Error("zero width should error")
	}
}

func TestDecodeImageErrors(t *testing.T) {
	cases := []string{
		"",                    // empty
		"x y\n",               // bad header
		"0 5\n",               // zero dimension
		"2 1\n1 2 3\n",        // too few pixels
		"1 1\n1 2\n",          // bad pixel line
		"1 1\n300 0 0\n",      // out of range
		"1 1\n1 2 3\n4 5 6\n", // too many pixels
		"-1 5\n",              // negative dimension
	}
	for _, in := range cases {
		if _, err := DecodeImage([]byte(in)); err == nil {
			t.Errorf("input %q should fail to decode", in)
		}
	}
}

func TestBlurUniformImageIsFixpoint(t *testing.T) {
	im := &Image{W: 4, H: 4, Pixels: make([]Pixel, 16)}
	for i := range im.Pixels {
		im.Pixels[i] = Pixel{100, 150, 200}
	}
	enc, err := EncodeImage(im)
	if err != nil {
		t.Fatal(err)
	}
	var ck Checkpoint
	out, err := Blur{}.Process(context.Background(), enc, &ck)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeImage(out)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range dec.Pixels {
		if p != (Pixel{100, 150, 200}) {
			t.Fatalf("uniform image changed at pixel %d: %+v", i, p)
		}
	}
}

func TestImageAtClamps(t *testing.T) {
	im := &Image{W: 2, H: 2, Pixels: []Pixel{{1, 0, 0}, {2, 0, 0}, {3, 0, 0}, {4, 0, 0}}}
	if im.At(-5, -5) != (Pixel{1, 0, 0}) {
		t.Error("top-left clamp failed")
	}
	if im.At(10, 10) != (Pixel{4, 0, 0}) {
		t.Error("bottom-right clamp failed")
	}
}

func TestGrayscaleDistance(t *testing.T) {
	a := &Image{W: 1, H: 1, Pixels: []Pixel{{10, 20, 30}}}
	b := &Image{W: 1, H: 1, Pixels: []Pixel{{20, 20, 24}}}
	d, err := GrayscaleDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if want := (10.0 + 0 + 6) / 3; d != want {
		t.Errorf("distance = %v, want %v", d, want)
	}
	if _, err := GrayscaleDistance(a, &Image{W: 2, H: 1, Pixels: make([]Pixel, 2)}); err == nil {
		t.Error("size mismatch should error")
	}
	empty := &Image{}
	if d, err := GrayscaleDistance(empty, empty); err != nil || d != 0 {
		t.Errorf("empty distance = %v, %v", d, err)
	}
}

func TestGenImageKB(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data, err := GenImageKB(50, rng)
	if err != nil {
		t.Fatal(err)
	}
	gotKB := float64(len(data)) / 1024
	if gotKB < 30 || gotKB > 75 {
		t.Errorf("generated image is %.1f KB, want ~50", gotKB)
	}
	if _, err := DecodeImage(data); err != nil {
		t.Fatalf("generated image does not decode: %v", err)
	}
	tiny, err := GenImageKB(0.001, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeImage(tiny); err != nil {
		t.Fatalf("tiny image does not decode: %v", err)
	}
}

func TestGenInputSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ints := GenIntegers(100, 1000, rng)
	if kb := float64(len(ints)) / 1024; kb < 99 || kb > 102 {
		t.Errorf("integers input %.1f KB, want ~100", kb)
	}
	text := GenText(100, rng)
	if kb := float64(len(text)) / 1024; kb < 99 || kb > 102 {
		t.Errorf("text input %.1f KB, want ~100", kb)
	}
	if !strings.Contains(string(text), " ") {
		t.Error("text input has no spaces")
	}
}
