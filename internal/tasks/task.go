// Package tasks implements CWC's task model (paper §4): executables that
// process an input file and return a result, shipped to phones and run
// without user interaction.
//
// The paper distinguishes *breakable* tasks — the input can be partitioned
// at record boundaries, partial results aggregated at the server (word
// counting, prime counting) — from *atomic* tasks whose input has internal
// dependencies and must run on a single phone (photo blurring), though
// batches of atomic tasks still run concurrently across phones.
//
// The Android prototype ships .jar files loaded via reflection; here the
// "executable" is a registered, named task factory the worker instantiates
// on receipt (the same property: the server decides at runtime what code a
// phone runs, with zero human interaction). Migration state (the paper's
// JavaGO port) is a Checkpoint: byte offset into the input plus the task's
// serialized partial accumulator.
package tasks

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrInterrupted is returned by Task.Process when the context is canceled
// mid-execution (the phone was unplugged). The checkpoint passed to
// Process then holds the migration state.
var ErrInterrupted = errors.New("tasks: execution interrupted")

// Checkpoint is the migratable execution state of a task: how much of the
// input was consumed and the task-specific partial accumulator. It is the
// repo's analogue of JavaGO's migrated stack area.
type Checkpoint struct {
	Offset int64  `json:"offset"`          // bytes of input fully processed
	State  []byte `json:"state,omitempty"` // task-specific accumulator
}

// Reset clears the checkpoint to the start-of-input state.
func (c *Checkpoint) Reset() {
	c.Offset = 0
	c.State = nil
}

// Clone returns a deep copy of the checkpoint (nil in, nil out): the
// copy's State shares no memory with the original, so either side may
// keep mutating its accumulator.
func (c *Checkpoint) Clone() *Checkpoint {
	if c == nil {
		return nil
	}
	out := &Checkpoint{Offset: c.Offset}
	if c.State != nil {
		out.State = append([]byte(nil), c.State...)
	}
	return out
}

// Task is a CWC executable.
type Task interface {
	// Name is the registered executable name.
	Name() string
	// Params returns the serialized task parameters (may be nil); a
	// worker reconstructs the task via New(Name, Params).
	Params() []byte
	// ExecKB is the executable's size in KB, shipped once per phone
	// before its first partition of the task (E_j in the paper).
	ExecKB() float64
	// Process runs the task over input, resuming from ck. On success it
	// returns the result. If ctx is canceled it saves its state into ck
	// and returns ErrInterrupted. Implementations must treat input as
	// read-only.
	Process(ctx context.Context, input []byte, ck *Checkpoint) ([]byte, error)
}

// Breakable is a task whose input can be split into independently
// processable pieces whose results merge associatively.
type Breakable interface {
	Task
	// Split partitions input into len(sizesKB) pieces of approximately
	// the given sizes (KB), honouring record boundaries. The
	// concatenation of the pieces is the original input.
	Split(input []byte, sizesKB []float64) ([][]byte, error)
	// Aggregate merges per-partition results into the job result.
	Aggregate(partials [][]byte) ([]byte, error)
}

// PartialReporter is implemented by breakable tasks that can convert an
// interrupted execution's checkpoint accumulator into a partial *result*.
// The server then saves the partial result for aggregation and reschedules
// only the unprocessed remainder of the input — the paper's "last_i is
// inserted with only the part of the input not processed by i (and the
// intermediate results are saved)". Tasks without this capability are
// migrated whole: input plus checkpoint move to the new phone.
type PartialReporter interface {
	// PartialResult converts a checkpoint State into a result fragment
	// compatible with Aggregate.
	PartialResult(state []byte) ([]byte, error)
}

// Factory constructs a task from its serialized parameters.
type Factory func(params []byte) (Task, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a task factory under a unique name. It panics on duplicate
// registration: that is a programming error caught at init time.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("tasks: duplicate registration of %q", name))
	}
	registry[name] = f
}

// New instantiates a registered task — the worker-side equivalent of the
// prototype's reflection class loading.
func New(name string, params []byte) (Task, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("tasks: unknown executable %q", name)
	}
	return f(params)
}

// Names returns the registered task names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// interruptEvery is how many records a task processes between context
// checks; small enough that an unplug checkpoint loses little work.
const interruptEvery = 256

// canceled is a non-blocking context check.
func canceled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}
