package tasks

import (
	"context"
	"sync/atomic"
	"time"
)

// CheckpointSink receives periodic checkpoint snapshots while a task
// executes — checkpoint streaming. The paper only saves state on an
// *online* failure (the unplug handler ships a checkpoint with the
// failure report); a phone that dies silently loses its partition's
// entire progress. A sink closes that gap: the worker runtime attaches
// one per execution via WithCheckpointSink and the task's processing
// loop drives it through StreamCheckpoint at the same record-granularity
// points as its interruption checks, so even an offline failure loses at
// most one flush interval of work.
//
// A sink is single-use: it carries per-execution pacing state and must
// not be shared across executions.
type CheckpointSink struct {
	// EveryBytes flushes after this many input bytes have been processed
	// since the previous flush; 0 disables the byte trigger.
	EveryBytes int64
	// Every flushes once this much wall time has passed since the
	// previous flush; 0 disables the time trigger.
	Every time.Duration
	// Flush receives a private deep copy of the checkpoint. It runs on
	// the task's goroutine, so it should hand off quickly (the worker's
	// sink sends one frame and never blocks on the network round trip).
	Flush func(ck *Checkpoint)

	started    bool
	lastOffset int64
	lastTime   time.Time
	forced     atomic.Bool
}

// Force makes the next StreamCheckpoint call flush regardless of the
// interval triggers — the proactive-drain path uses it to capture the
// freshest possible state before an anticipated disconnect. Unlike the
// rest of the sink it may be called from any goroutine.
func (s *CheckpointSink) Force() { s.forced.Store(true) }

// ckSinkKey is the context key carrying the sink.
type ckSinkKey struct{}

// WithCheckpointSink returns a context instructing tasks run under it to
// stream periodic checkpoints into s. A nil sink, a nil Flush, or a sink
// with both triggers disabled leaves the context unchanged.
func WithCheckpointSink(ctx context.Context, s *CheckpointSink) context.Context {
	if s == nil || s.Flush == nil || (s.EveryBytes <= 0 && s.Every <= 0) {
		return ctx
	}
	return context.WithValue(ctx, ckSinkKey{}, s)
}

// StreamCheckpoint is the flush point task authors call from their
// processing loops, typically right next to the cancellation check:
// when ctx carries a due sink, ck.Offset is set to offset, save (if
// non-nil) serializes the accumulator into ck, and the sink receives a
// deep copy. Without a sink it costs one context lookup.
func StreamCheckpoint(ctx context.Context, offset int64, ck *Checkpoint, save func()) {
	sinkFrom(ctx).maybeFlush(offset, ck, save)
}

// sinkFrom extracts the context's sink, or nil.
func sinkFrom(ctx context.Context) *CheckpointSink {
	s, _ := ctx.Value(ckSinkKey{}).(*CheckpointSink)
	return s
}

// maybeFlush flushes through a possibly-nil sink when an interval has
// elapsed at the given offset.
func (s *CheckpointSink) maybeFlush(offset int64, ck *Checkpoint, save func()) {
	if s == nil || !s.due(offset) {
		return
	}
	ck.Offset = offset
	if save != nil {
		save()
	}
	s.lastOffset = offset
	if s.Every > 0 {
		s.lastTime = time.Now()
	}
	s.Flush(ck.Clone())
}

// due reports whether a flush interval has elapsed at the given offset.
// The first call only anchors the intervals: a resumed execution starts
// counting from its inherited offset instead of instantly re-streaming
// the checkpoint it was handed.
func (s *CheckpointSink) due(offset int64) bool {
	forced := s.forced.Swap(false)
	if !s.started {
		s.started = true
		s.lastOffset = offset
		if s.Every > 0 {
			s.lastTime = time.Now()
		}
		return forced
	}
	if forced {
		return true
	}
	if s.EveryBytes > 0 && offset-s.lastOffset >= s.EveryBytes {
		return true
	}
	return s.Every > 0 && time.Since(s.lastTime) >= s.Every
}
