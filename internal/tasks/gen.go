package tasks

import (
	"bytes"
	"fmt"
	"math/rand"
	"strconv"
)

// Workload input generators. The paper's evaluation ships files of
// integers (prime counting, max finding), text (word counting) and
// text-encoded photos (blurring); these produce equivalent synthetic
// inputs of controlled size.

// GenIntegers produces roughly sizeKB kilobytes of newline-separated
// random integers in [0, max).
func GenIntegers(sizeKB float64, max int64, rng *rand.Rand) []byte {
	var buf bytes.Buffer
	target := int(sizeKB * 1024)
	for buf.Len() < target {
		buf.WriteString(strconv.FormatInt(rng.Int63n(max), 10))
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// wordPool is a small vocabulary for synthetic text; "inventory" plays the
// role of the sales-record keyword examples use.
var wordPool = []string{
	"the", "sale", "inventory", "store", "customer", "total", "item",
	"price", "discount", "register", "receipt", "return", "quantity",
	"aisle", "order", "stock",
}

// GenText produces roughly sizeKB kilobytes of whitespace-separated words
// drawn from a fixed vocabulary, ~12 words per line.
func GenText(sizeKB float64, rng *rand.Rand) []byte {
	var buf bytes.Buffer
	target := int(sizeKB * 1024)
	col := 0
	for buf.Len() < target {
		buf.WriteString(wordPool[rng.Intn(len(wordPool))])
		col++
		if col%12 == 0 {
			buf.WriteByte('\n')
		} else {
			buf.WriteByte(' ')
		}
	}
	buf.WriteByte('\n')
	return buf.Bytes()
}

// GenImage produces a w x h random image.
func GenImage(w, h int, rng *rand.Rand) *Image {
	im := &Image{W: w, H: h, Pixels: make([]Pixel, w*h)}
	for i := range im.Pixels {
		im.Pixels[i] = Pixel{
			R: uint8(rng.Intn(256)),
			G: uint8(rng.Intn(256)),
			B: uint8(rng.Intn(256)),
		}
	}
	return im
}

// GenImageKB produces a random image whose text-pixel encoding is roughly
// sizeKB kilobytes (each pixel line averages ~12 bytes).
func GenImageKB(sizeKB float64, rng *rand.Rand) ([]byte, error) {
	pixels := int(sizeKB * 1024 / 12)
	if pixels < 4 {
		pixels = 4
	}
	w := 1
	for w*w < pixels {
		w++
	}
	h := (pixels + w - 1) / w
	enc, err := EncodeImage(GenImage(w, h, rng))
	if err != nil {
		return nil, fmt.Errorf("tasks: generating image: %w", err)
	}
	return enc, nil
}

// BaseComputeMsPerKB is the calibrated per-KB compute cost of each task on
// a reference 1000 MHz single-issue phone CPU, used by the simulation
// experiments to derive c_ij = base * 1000 / EffectiveMHz. Counting tasks
// stream cheaply; prime testing and pixel work cost more per byte.
var BaseComputeMsPerKB = map[string]float64{
	"primecount": 120,
	"wordcount":  30,
	"maxint":     5,
	"blur":       55,
}
