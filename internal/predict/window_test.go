package predict

import (
	"math"
	"testing"
)

func newWE(t *testing.T, minSessions int, flapMergeMs float64) *WindowEstimator {
	t.Helper()
	w, err := NewWindowEstimator(minSessions, flapMergeMs)
	if err != nil {
		t.Fatalf("NewWindowEstimator: %v", err)
	}
	return w
}

func TestWindowEstimatorValidation(t *testing.T) {
	if _, err := NewWindowEstimator(0, 0); err == nil {
		t.Error("minSessions 0 accepted")
	}
	if _, err := NewWindowEstimator(3, -1); err == nil {
		t.Error("negative flap-merge window accepted")
	}
	if _, err := NewWindowEstimator(1, 0); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// Zero observations must fall back to never-veto: every query answers
// ok=false so the scheduler places work exactly as before.
func TestWindowEstimatorZeroObservations(t *testing.T) {
	w := newWE(t, 1, 0)
	if _, ok := w.RemainingMs(7, 100, 0.25); ok {
		t.Error("RemainingMs predicted with no history")
	}
	if _, ok := w.StillPluggedProb(7, 100); ok {
		t.Error("StillPluggedProb predicted with no history")
	}
	if _, ok := w.PredictedUnplugMs(7, 0.25); ok {
		t.Error("PredictedUnplugMs predicted with no history")
	}
	// A phone that is plugged but has no *completed* sessions is just
	// as unknown.
	w.ObservePlug(7, 50)
	if _, ok := w.RemainingMs(7, 100, 0.25); ok {
		t.Error("RemainingMs predicted with zero completed sessions")
	}
	if w.Sessions(7) != 0 {
		t.Errorf("Sessions = %d, want 0", w.Sessions(7))
	}
}

// Below minSessions the estimator must stay silent even with some
// history; at minSessions it starts answering.
func TestWindowEstimatorMinSessionsGate(t *testing.T) {
	w := newWE(t, 2, 0)
	w.ObservePlug(1, 0)
	w.ObserveUnplug(1, 1000)
	w.ObservePlug(1, 2000)
	if _, ok := w.RemainingMs(1, 2100, 0.5); ok {
		t.Error("predicted with 1 session under minSessions=2")
	}
	w.ObserveUnplug(1, 3000)
	w.ObservePlug(1, 4000)
	if _, ok := w.RemainingMs(1, 4100, 0.5); !ok {
		t.Error("no prediction with 2 sessions at minSessions=2")
	}
}

// A single observed session (minSessions=1) yields a degenerate but
// well-defined distribution.
func TestWindowEstimatorSingleSession(t *testing.T) {
	w := newWE(t, 1, 0)
	w.ObservePlug(1, 0)
	w.ObserveUnplug(1, 8000) // one 8 s session
	w.ObservePlug(1, 10_000)

	rem, ok := w.RemainingMs(1, 12_000, 0.25)
	if !ok || rem != 6000 {
		t.Errorf("RemainingMs = %v, %v; want 6000, true", rem, ok)
	}
	// Any quantile of a single point is that point.
	if rem, _ := w.RemainingMs(1, 12_000, 0.9); rem != 6000 {
		t.Errorf("q=0.9 RemainingMs = %v, want 6000", rem)
	}
	// Once the session outlives the only observation the conditional
	// distribution is empty: overdue, remaining 0, but still ok=true.
	rem, ok = w.RemainingMs(1, 19_000, 0.25)
	if !ok || rem != 0 {
		t.Errorf("overdue RemainingMs = %v, %v; want 0, true", rem, ok)
	}
	if p, ok := w.StillPluggedProb(1, 14_000); !ok || p != 1 {
		t.Errorf("StillPluggedProb(14s) = %v, %v; want 1, true", p, ok)
	}
	if p, ok := w.StillPluggedProb(1, 19_000); !ok || p != 0 {
		t.Errorf("StillPluggedProb(19s) = %v, %v; want 0, true", p, ok)
	}
	if at, ok := w.PredictedUnplugMs(1, 0.5); !ok || at != 18_000 {
		t.Errorf("PredictedUnplugMs = %v, %v; want 18000, true", at, ok)
	}
}

// Irregular schedules: a phone with wildly varying session lengths
// should produce sane conditional quantiles, and conditioning must
// drop sessions shorter than the elapsed time.
func TestWindowEstimatorIrregularSchedule(t *testing.T) {
	w := newWE(t, 1, 0)
	// Sessions of 1 s, 10 s, 100 s, 1000 s.
	at := 0.0
	for _, d := range []float64{1000, 10_000, 100_000, 1_000_000} {
		w.ObservePlug(1, at)
		w.ObserveUnplug(1, at+d)
		at += d + 5000
	}
	if w.Sessions(1) != 4 {
		t.Fatalf("Sessions = %d, want 4", w.Sessions(1))
	}
	w.ObservePlug(1, at)

	// At 0 elapsed, extras are the full durations; q=0 is the shortest.
	if rem, ok := w.RemainingMs(1, at, 0); !ok || rem != 1000 {
		t.Errorf("q=0 RemainingMs = %v, %v; want 1000, true", rem, ok)
	}
	// 5 s in, the 1 s session is excluded; q=0 over {5k, 95k, 995k}.
	if rem, ok := w.RemainingMs(1, at+5000, 0); !ok || rem != 5000 {
		t.Errorf("conditioned q=0 RemainingMs = %v, %v; want 5000, true", rem, ok)
	}
	// Median of the three surviving extras.
	if rem, _ := w.RemainingMs(1, at+5000, 0.5); rem != 95_000 {
		t.Errorf("conditioned q=0.5 RemainingMs = %v, want 95000", rem)
	}
	// Survival probability drops as the horizon extends.
	if p, _ := w.StillPluggedProb(1, at+500); p != 1 {
		t.Errorf("P(plugged at +0.5s) = %v, want 1", p)
	}
	if p, _ := w.StillPluggedProb(1, at+50_000); p != 0.5 {
		t.Errorf("P(plugged at +50s) = %v, want 0.5", p)
	}
	if p, _ := w.StillPluggedProb(1, at+2_000_000); p != 0 {
		t.Errorf("P(plugged at +2000s) = %v, want 0", p)
	}
}

// Clock-skewed event ordering: unplug timestamps that precede their
// plug, duplicate events, and queries behind the session start must
// not corrupt the history or panic.
func TestWindowEstimatorClockSkew(t *testing.T) {
	w := newWE(t, 1, 0)

	// Unplug with no plug at all: ignored.
	w.ObserveUnplug(1, 500)
	if w.Sessions(1) != 0 {
		t.Fatalf("phantom session from orphan unplug: %d", w.Sessions(1))
	}

	// Unplug before plug (negative duration): session discarded.
	w.ObservePlug(1, 10_000)
	w.ObserveUnplug(1, 9000)
	if w.Sessions(1) != 0 {
		t.Errorf("skewed session recorded: %d", w.Sessions(1))
	}
	if w.Plugged(1) {
		t.Error("phone still considered plugged after skewed unplug")
	}

	// Duplicate plug while plugged keeps the original session start.
	w.ObservePlug(1, 20_000)
	w.ObservePlug(1, 25_000)
	w.ObserveUnplug(1, 30_000)
	if got := w.Sessions(1); got != 1 {
		t.Fatalf("Sessions = %d, want 1", got)
	}
	w.ObservePlug(1, 40_000)
	// The single recorded duration must be 10 s (from the first plug),
	// not 5 s.
	if rem, ok := w.RemainingMs(1, 40_000, 0.5); !ok || rem != 10_000 {
		t.Errorf("RemainingMs = %v, %v; want 10000, true", rem, ok)
	}
	// Duplicate unplug while unplugged: ignored.
	w.ObserveUnplug(1, 41_000)
	w.ObserveUnplug(1, 42_000)
	if got := w.Sessions(1); got != 2 {
		t.Errorf("Sessions = %d, want 2", got)
	}
	// Query clock behind the session start: decline rather than invent
	// a negative elapsed time.
	w.ObservePlug(1, 50_000)
	if _, ok := w.RemainingMs(1, 49_000, 0.5); ok {
		t.Error("RemainingMs answered for nowMs before plug")
	}
	// StillPluggedProb with a horizon behind the plug is trivially 1.
	if p, ok := w.StillPluggedProb(1, 49_000); !ok || p != 1 {
		t.Errorf("StillPluggedProb behind plug = %v, %v; want 1, true", p, ok)
	}
}

// A replug inside the flap-merge window must undo the short session
// the unplug recorded and resume the original session.
func TestWindowEstimatorFlapMerge(t *testing.T) {
	w := newWE(t, 1, 2000)
	w.ObservePlug(1, 0)
	w.ObserveUnplug(1, 60_000)  // real 60 s session
	w.ObservePlug(1, 100_000)   // new session (40 s gap > merge window)
	w.ObserveUnplug(1, 105_000) // cable wiggle: 5 s "session" recorded...
	w.ObservePlug(1, 105_500)   // ...replug 500 ms later merges it away
	if got := w.Sessions(1); got != 1 {
		t.Fatalf("Sessions after flap = %d, want 1 (short session undone)", got)
	}
	// The resumed session still starts at 100 s: unplugging at 160 s
	// records a 60 s session, not 54.5 s.
	w.ObserveUnplug(1, 160_000)
	if got := w.Sessions(1); got != 2 {
		t.Fatalf("Sessions = %d, want 2", got)
	}
	w.ObservePlug(1, 200_000)
	if rem, ok := w.RemainingMs(1, 200_000, 0.9); !ok || rem != 60_000 {
		t.Errorf("RemainingMs = %v, %v; want 60000, true (both sessions 60 s)", rem, ok)
	}

	// A flap after a skew-discarded session has nothing to undo and
	// must not pop an unrelated duration.
	w2 := newWE(t, 1, 2000)
	w2.ObservePlug(2, 0)
	w2.ObserveUnplug(2, 30_000) // real session
	w2.ObservePlug(2, 50_000)
	w2.ObserveUnplug(2, 49_000) // skewed: discarded
	w2.ObservePlug(2, 49_500)   // within merge window of the discard
	if got := w2.Sessions(2); got != 1 {
		t.Errorf("Sessions = %d, want 1 (real session must survive)", got)
	}
}

func TestWindowEstimatorSeedAndRing(t *testing.T) {
	w := newWE(t, 3, 0)
	w.Seed(1, []float64{1000, 2000, 3000, -50}) // negative entries dropped
	if got := w.Sessions(1); got != 3 {
		t.Fatalf("Sessions after seed = %d, want 3", got)
	}
	// Seeded history alone satisfies minSessions once the phone plugs.
	w.ObservePlug(1, 0)
	if rem, ok := w.RemainingMs(1, 0, 0); !ok || rem != 1000 {
		t.Errorf("RemainingMs = %v, %v; want 1000, true", rem, ok)
	}

	// The ring stays bounded and keeps the newest observations.
	var big []float64
	for i := 0; i < maxWindowSessions+10; i++ {
		big = append(big, float64(i+1)*100)
	}
	w.Seed(2, big)
	if got := w.Sessions(2); got != maxWindowSessions {
		t.Errorf("Sessions = %d, want %d", got, maxWindowSessions)
	}
	w.ObservePlug(2, 0)
	// The oldest 10 entries (100..1000 ms) were evicted, so the
	// shortest surviving session is 1100 ms.
	if rem, ok := w.RemainingMs(2, 0, 0); !ok || rem != 1100 {
		t.Errorf("RemainingMs = %v, %v; want 1100, true", rem, ok)
	}
}

func TestWindowEstimatorForget(t *testing.T) {
	w := newWE(t, 1, 0)
	w.ObservePlug(1, 0)
	w.ObserveUnplug(1, 1000)
	w.ObservePlug(1, 2000)
	w.Forget(1)
	if w.Plugged(1) || w.Sessions(1) != 0 {
		t.Error("Forget left state behind")
	}
	if _, ok := w.RemainingMs(1, 3000, 0.5); ok {
		t.Error("RemainingMs answered after Forget")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	vals := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1. / 3, 20}, {-1, 10}, {2, 40},
	}
	for _, c := range cases {
		if got := quantile(vals, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be reordered in place.
	shuffled := []float64{30, 10, 40, 20}
	quantile(shuffled, 0.5)
	if shuffled[0] != 30 {
		t.Error("quantile sorted its input in place")
	}
}
