package predict

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func newEst(t *testing.T) *Estimator {
	t.Helper()
	e, err := New(806, 1) // HTC G2 anchor, paper-style replacement updates
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0.5); err == nil {
		t.Error("zero base clock should error")
	}
	if _, err := New(-100, 0.5); err == nil {
		t.Error("negative base clock should error")
	}
	if _, err := New(806, 0); err == nil {
		t.Error("alpha 0 should error")
	}
	if _, err := New(806, 1.5); err == nil {
		t.Error("alpha > 1 should error")
	}
}

func TestClockScaling(t *testing.T) {
	e := newEst(t)
	if err := e.SetProfile("primes", 10); err != nil {
		t.Fatal(err)
	}
	// A phone twice as fast should take half the time.
	got, err := e.Estimate("primes", 1, 1612)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5) > 1e-9 {
		t.Errorf("estimate = %v ms/KB, want 5", got)
	}
	// The profiling phone itself: T_s unchanged.
	got, err = e.Estimate("primes", 0, 806)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("anchor estimate = %v, want 10", got)
	}
}

func TestPredictedSpeedup(t *testing.T) {
	e := newEst(t)
	// Paper: a phone with X MHz has expected speedup X/806 vs the HTC G2.
	if got := e.PredictedSpeedup(1188); math.Abs(got-1188.0/806) > 1e-12 {
		t.Errorf("speedup = %v", got)
	}
	if e.BaseMHz() != 806 {
		t.Errorf("BaseMHz = %v", e.BaseMHz())
	}
}

func TestEstimateErrors(t *testing.T) {
	e := newEst(t)
	if _, err := e.Estimate("unprofiled", 1, 1000); err == nil {
		t.Error("unprofiled task should error")
	}
	if err := e.SetProfile("primes", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Estimate("primes", 1, 0); err == nil {
		t.Error("zero clock should error")
	}
}

func TestSetProfileValidation(t *testing.T) {
	e := newEst(t)
	if err := e.SetProfile("p", 0); err == nil {
		t.Error("zero profile should error")
	}
	if err := e.SetProfile("p", -1); err == nil {
		t.Error("negative profile should error")
	}
	if e.Profiled("p") {
		t.Error("failed SetProfile must not register the task")
	}
	if err := e.SetProfile("p", 3); err != nil {
		t.Fatal(err)
	}
	if !e.Profiled("p") {
		t.Error("Profiled should be true after SetProfile")
	}
}

func TestReportOverridesScaling(t *testing.T) {
	e := newEst(t)
	if err := e.SetProfile("wordcount", 8); err != nil {
		t.Fatal(err)
	}
	// Phone 2 (a paper fast phone) reports running faster than its clock
	// ratio implies.
	if err := e.Report("wordcount", 2, 3.0); err != nil {
		t.Fatal(err)
	}
	got, err := e.Estimate("wordcount", 2, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3.0 {
		t.Errorf("estimate after report = %v, want 3.0 (alpha=1 replaces)", got)
	}
	// Other phones are unaffected.
	other, err := e.Estimate("wordcount", 5, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(other-8.0*806/1200) > 1e-9 {
		t.Errorf("unreported phone estimate = %v", other)
	}
}

func TestReportEWMA(t *testing.T) {
	e, err := New(806, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetProfile("blur", 20); err != nil {
		t.Fatal(err)
	}
	if err := e.Report("blur", 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := e.Report("blur", 1, 20); err != nil {
		t.Fatal(err)
	}
	got, err := e.Estimate("blur", 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// First report seeds 10; second update: 10 + 0.5*(20-10) = 15.
	if math.Abs(got-15) > 1e-9 {
		t.Errorf("EWMA estimate = %v, want 15", got)
	}
}

func TestReportValidation(t *testing.T) {
	e := newEst(t)
	if err := e.Report("t", 1, 0); err == nil {
		t.Error("zero observation should error")
	}
}

func TestForget(t *testing.T) {
	e := newEst(t)
	if err := e.SetProfile("primes", 10); err != nil {
		t.Fatal(err)
	}
	if err := e.Report("primes", 3, 2); err != nil {
		t.Fatal(err)
	}
	e.Forget("primes", 3)
	got, err := e.Estimate("primes", 3, 806)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Errorf("estimate after Forget = %v, want clock-scaled 10", got)
	}
}

func TestConcurrentUse(t *testing.T) {
	e := newEst(t)
	if err := e.SetProfile("primes", 10); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if err := e.Report("primes", id, float64(i%7+1)); err != nil {
					t.Error(err)
					return
				}
				if _, err := e.Estimate("primes", id, 1000); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// Property: clock scaling is exact — estimate * phoneMHz == T_s * baseMHz
// for any positive clocks, before any reports.
func TestScalingInvariantProperty(t *testing.T) {
	f := func(tsRaw, clockRaw uint16) bool {
		ts := float64(tsRaw)/100 + 0.01
		clock := float64(clockRaw) + 1
		e, err := New(806, 1)
		if err != nil {
			return false
		}
		if err := e.SetProfile("t", ts); err != nil {
			return false
		}
		got, err := e.Estimate("t", 1, clock)
		if err != nil {
			return false
		}
		return math.Abs(got*clock-ts*806) < 1e-6*ts*806
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: with alpha in (0,1], the learned estimate always stays within
// the convex hull of the observations.
func TestEWMABoundedProperty(t *testing.T) {
	f := func(obsRaw []uint8, alphaRaw uint8) bool {
		if len(obsRaw) == 0 {
			return true
		}
		alpha := (float64(alphaRaw%100) + 1) / 100
		e, err := New(806, alpha)
		if err != nil {
			return false
		}
		if err := e.SetProfile("t", 1); err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, o := range obsRaw {
			v := float64(o) + 1
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			if err := e.Report("t", 1, v); err != nil {
				return false
			}
		}
		got, err := e.Estimate("t", 1, 806)
		if err != nil {
			return false
		}
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
