// Charge-window estimation: learning when a phone will unplug.
//
// The paper's feasibility study (Fig 2/3) shows phones charge in long,
// recurring nightly sessions. The scheduler can exploit that: if a
// phone's plug/unplug history says its current charge window is about
// to close, placing an hour of work there only manufactures a failure.
// WindowEstimator learns per-phone session-duration distributions from
// observed plug/unplug events — the same report-driven refinement loop
// Estimator uses for c_ij — and answers quantile queries such as "how
// much longer is this phone likely to stay plugged?".
//
// Like the rest of the package, the estimator is pure: it never reads
// the clock. Callers supply every timestamp, which keeps the math
// deterministic and unit-testable, and lets simulated clusters feed
// compressed time.
package predict

import (
	"fmt"
	"sort"
	"sync"
)

// maxWindowSessions bounds the per-phone session-duration history; the
// oldest observation is evicted first. Nightly charging yields roughly
// one session per day, so 64 covers two months of behaviour.
const maxWindowSessions = 64

// WindowEstimator learns per-phone charge-window durations from
// plug/unplug events and answers quantile queries over the remaining
// plugged time. It is safe for concurrent use.
type WindowEstimator struct {
	mu sync.RWMutex
	// minSessions is the observation count below which queries decline
	// to predict (ok=false): with too little history the only safe
	// answer is "never veto a placement".
	minSessions int
	// flapMergeMs treats a replug within this window of the previous
	// unplug as a continuation of the same charge session — a cable
	// wiggle, not a real morning unplug — undoing the short session
	// the unplug recorded.
	flapMergeMs float64
	// phones holds per-phone session state, keyed by phone ID.
	phones map[int]*phoneWindow
}

// phoneWindow is one phone's plug-session state and history.
type phoneWindow struct {
	// plugged is true between an observed plug and the next unplug.
	plugged bool
	// plugAtMs is the timestamp of the current session's start, valid
	// while plugged.
	plugAtMs float64
	// lastUnplugMs is the timestamp of the most recent unplug, used to
	// detect flapping replugs; valid once a session has ended.
	lastUnplugMs float64
	// prevPlugAtMs is the start of the session the last unplug closed,
	// restored when a flapping replug merges back into it.
	prevPlugAtMs float64
	// lastRecorded is true when the most recent unplug appended a
	// duration to the ring (false when skew discarded the session), so
	// a flap-merge knows whether there is an entry to undo.
	lastRecorded bool
	// durations is the bounded ring of completed session lengths (ms),
	// oldest first.
	durations []float64
}

// NewWindowEstimator returns a charge-window estimator. minSessions is
// the history size below which queries answer ok=false (never veto);
// flapMergeMs is the replug window within which an unplug/plug pair is
// folded back into the interrupted session.
func NewWindowEstimator(minSessions int, flapMergeMs float64) (*WindowEstimator, error) {
	if minSessions < 1 {
		return nil, fmt.Errorf("predict: minSessions %d < 1", minSessions)
	}
	if flapMergeMs < 0 {
		return nil, fmt.Errorf("predict: negative flap-merge window %v", flapMergeMs)
	}
	return &WindowEstimator{
		minSessions: minSessions,
		flapMergeMs: flapMergeMs,
		phones:      map[int]*phoneWindow{},
	}, nil
}

// ObservePlug records that the phone was plugged in at atMs. A plug
// while already plugged is ignored (a duplicate or reordered event); a
// plug within the flap-merge window of the last unplug resumes the
// interrupted session instead of starting a new one.
func (w *WindowEstimator) ObservePlug(phone int, atMs float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	pw := w.phones[phone]
	if pw == nil {
		pw = &phoneWindow{}
		w.phones[phone] = pw
	}
	if pw.plugged {
		return
	}
	if pw.lastRecorded && atMs >= pw.lastUnplugMs && atMs-pw.lastUnplugMs <= w.flapMergeMs {
		// Flapping replug: pop the short session the unplug recorded
		// and carry on as if the cable never left the socket.
		pw.durations = pw.durations[:len(pw.durations)-1]
		pw.plugAtMs = pw.prevPlugAtMs
		pw.plugged = true
		pw.lastRecorded = false
		return
	}
	pw.plugged = true
	pw.plugAtMs = atMs
	pw.lastRecorded = false
}

// ObserveUnplug records that the phone unplugged at atMs, closing the
// current session. An unplug while not plugged is ignored. A session
// whose unplug timestamp precedes its plug timestamp is the product of
// clock skew or event reordering; it is discarded rather than recorded
// as a negative duration.
func (w *WindowEstimator) ObserveUnplug(phone int, atMs float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	pw := w.phones[phone]
	if pw == nil || !pw.plugged {
		return
	}
	pw.plugged = false
	pw.prevPlugAtMs = pw.plugAtMs
	pw.lastUnplugMs = atMs
	if atMs < pw.plugAtMs {
		pw.lastRecorded = false
		return
	}
	pw.durations = append(pw.durations, atMs-pw.plugAtMs)
	if len(pw.durations) > maxWindowSessions {
		pw.durations = pw.durations[1:]
	}
	pw.lastRecorded = true
}

// Seed imports a known charge trace: completed session durations (ms)
// observed elsewhere, e.g. a prior deployment's history. The phone's
// plugged/unplugged state is untouched; only the duration ring grows.
func (w *WindowEstimator) Seed(phone int, durationsMs []float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	pw := w.phones[phone]
	if pw == nil {
		pw = &phoneWindow{}
		w.phones[phone] = pw
	}
	for _, d := range durationsMs {
		if d < 0 {
			continue
		}
		pw.durations = append(pw.durations, d)
	}
	if n := len(pw.durations); n > maxWindowSessions {
		pw.durations = pw.durations[n-maxWindowSessions:]
	}
	pw.lastRecorded = false
}

// Plugged reports whether the estimator believes the phone is currently
// plugged in.
func (w *WindowEstimator) Plugged(phone int) bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	pw := w.phones[phone]
	return pw != nil && pw.plugged
}

// Sessions returns the number of completed charge sessions on record
// for the phone.
func (w *WindowEstimator) Sessions(phone int) int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	pw := w.phones[phone]
	if pw == nil {
		return 0
	}
	return len(pw.durations)
}

// RemainingMs returns the q-quantile of the phone's remaining plugged
// time at nowMs, conditioned on the session having already lasted
// nowMs−plugAt: among recorded sessions longer than the current elapsed
// time, it takes the q-quantile of their extra duration. Small q is
// conservative (the window is likely to last at least this much
// longer). ok is false — never veto — when the phone is not known to be
// plugged, has fewer than minSessions observations, or nowMs precedes
// the session start (skewed caller clock). If the phone has outlived
// every recorded session the conditional distribution is empty and the
// answer is (0, true): the window is overdue to close.
func (w *WindowEstimator) RemainingMs(phone int, nowMs, q float64) (float64, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	pw := w.phones[phone]
	if pw == nil || !pw.plugged || len(pw.durations) < w.minSessions || nowMs < pw.plugAtMs {
		return 0, false
	}
	elapsed := nowMs - pw.plugAtMs
	var extra []float64
	for _, d := range pw.durations {
		if d > elapsed {
			extra = append(extra, d-elapsed)
		}
	}
	if len(extra) == 0 {
		return 0, true
	}
	return quantile(extra, q), true
}

// StillPluggedProb returns the empirical probability that the phone's
// current session is still open at absolute time atMs: the fraction of
// recorded sessions at least as long as atMs−plugAt. ok is false when
// the phone is not plugged or has fewer than minSessions observations.
func (w *WindowEstimator) StillPluggedProb(phone int, atMs float64) (float64, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	pw := w.phones[phone]
	if pw == nil || !pw.plugged || len(pw.durations) < w.minSessions {
		return 0, false
	}
	horizon := atMs - pw.plugAtMs
	if horizon <= 0 {
		return 1, true
	}
	n := 0
	for _, d := range pw.durations {
		if d >= horizon {
			n++
		}
	}
	return float64(n) / float64(len(pw.durations)), true
}

// PredictedUnplugMs returns the absolute timestamp at which the
// phone's current session reaches the q-quantile of its recorded
// session durations — the introspection value /statusz displays. ok is
// false when the phone is not plugged or history is too thin.
func (w *WindowEstimator) PredictedUnplugMs(phone int, q float64) (float64, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	pw := w.phones[phone]
	if pw == nil || !pw.plugged || len(pw.durations) < w.minSessions {
		return 0, false
	}
	return pw.plugAtMs + quantile(pw.durations, q), true
}

// Forget drops all session state for the phone, as when it re-registers
// after a long absence under a new identity.
func (w *WindowEstimator) Forget(phone int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.phones, phone)
}

// quantile returns the q-quantile of vals (clamped to [0,1]) with
// linear interpolation between order statistics. vals must be
// non-empty; it is not modified.
func quantile(vals []float64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := make([]float64, len(vals))
	copy(s, vals)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	if lo >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(lo)
	return s[lo] + frac*(s[lo+1]-s[lo])
}
