// Package predict implements CWC's task execution-time prediction
// (paper §4.1, Figure 6).
//
// Profiling every (phone, task) pair is too expensive, so CWC runs each
// task once on 1 KB of input on the slowest phone (clock S MHz, taking T_s
// ms) and predicts that a phone with an A MHz clock completes the same
// work in T_s · S/A ms. Phones report actual execution times with every
// completed task, and the predictor folds those observations back in, so
// phones that outperform their clock ratio (the paper's phones 2 and 9)
// converge to accurate estimates after their first report.
package predict

import (
	"fmt"
	"sync"
)

// Estimator predicts c_ij — the time in milliseconds for phone i to
// execute task j on 1 KB of input. It is safe for concurrent use.
type Estimator struct {
	mu sync.RWMutex
	// baseMHz is S, the clock of the profiling (slowest) phone.
	baseMHz float64
	// profile is T_s per task: ms/KB measured on the profiling phone.
	profile map[string]float64
	// learned holds refined per-(phone, task) estimates from reports.
	learned map[learnKey]float64
	// alpha is the EWMA weight given to a new observation.
	alpha float64
}

type learnKey struct {
	phone int
	task  string
}

// New returns an estimator anchored at the profiling phone's clock (MHz).
// alpha is the exponential weight for folding in reported execution times;
// the paper replaces the prediction with the report, which is alpha = 1.
func New(baseMHz, alpha float64) (*Estimator, error) {
	if baseMHz <= 0 {
		return nil, fmt.Errorf("predict: non-positive base clock %v", baseMHz)
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("predict: alpha %v out of (0,1]", alpha)
	}
	return &Estimator{
		baseMHz: baseMHz,
		profile: map[string]float64{},
		learned: map[learnKey]float64{},
		alpha:   alpha,
	}, nil
}

// BaseMHz returns the profiling phone's clock.
func (e *Estimator) BaseMHz() float64 { return e.baseMHz }

// SetProfile records T_s for a task: the measured ms/KB on the profiling
// phone. This is the single profiling run the scaling technique needs.
func (e *Estimator) SetProfile(task string, msPerKB float64) error {
	if msPerKB <= 0 {
		return fmt.Errorf("predict: non-positive profile %v for task %q", msPerKB, task)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.profile[task] = msPerKB
	return nil
}

// Profiled reports whether the task has a base profile.
func (e *Estimator) Profiled(task string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, ok := e.profile[task]
	return ok
}

// PredictedSpeedup returns the clock-scaling speedup A/S the model expects
// for a phone with the given clock, relative to the profiling phone —
// the x-axis of the paper's Figure 6.
func (e *Estimator) PredictedSpeedup(phoneMHz float64) float64 {
	return phoneMHz / e.baseMHz
}

// Estimate returns c_ij in ms/KB for the given phone. A refined estimate
// from prior reports takes precedence; otherwise the clock-scaling
// prediction T_s · S/A is used. It fails if the task was never profiled
// or the clock is non-positive.
func (e *Estimator) Estimate(task string, phoneID int, phoneMHz float64) (float64, error) {
	if phoneMHz <= 0 {
		return 0, fmt.Errorf("predict: non-positive clock %v for phone %d", phoneMHz, phoneID)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if c, ok := e.learned[learnKey{phoneID, task}]; ok {
		return c, nil
	}
	ts, ok := e.profile[task]
	if !ok {
		return 0, fmt.Errorf("predict: task %q has no base profile", task)
	}
	return ts * e.baseMHz / phoneMHz, nil
}

// Report folds an observed execution time (ms/KB of input actually
// processed) into the estimate for (phone, task). Subsequent Estimate
// calls for the pair use the refined value, matching the paper's
// "scheduler then updates its prediction for each phone (and task) based
// on the reported execution times".
func (e *Estimator) Report(task string, phoneID int, observedMsPerKB float64) error {
	if observedMsPerKB <= 0 {
		return fmt.Errorf("predict: non-positive observation %v", observedMsPerKB)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	k := learnKey{phoneID, task}
	if prev, ok := e.learned[k]; ok {
		e.learned[k] = prev + e.alpha*(observedMsPerKB-prev)
	} else {
		e.learned[k] = observedMsPerKB
	}
	return nil
}

// Profile returns T_s (ms/KB on the profiling phone) for a task, with ok
// reporting whether the task was ever profiled.
func (e *Estimator) Profile(task string) (float64, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ts, ok := e.profile[task]
	return ts, ok
}

// LearnedEstimate returns the report-refined c_ij for (phone, task), with
// ok false when no report has been folded in yet (Estimate would fall
// back to clock scaling).
func (e *Estimator) LearnedEstimate(task string, phoneID int) (float64, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	c, ok := e.learned[learnKey{phoneID, task}]
	return c, ok
}

// Tasks lists every profiled task (order unspecified). Introspection for
// the master's /statusz view of prediction refinement.
func (e *Estimator) Tasks() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.profile))
	for t := range e.profile {
		out = append(out, t)
	}
	return out
}

// Forget drops any refined estimate for (phone, task); Estimate falls back
// to clock scaling. Useful when a phone re-registers after a long absence.
func (e *Estimator) Forget(task string, phoneID int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.learned, learnKey{phoneID, task})
}
