// Package coremark supports the paper's Figure 1: benchmarking smartphone
// CPUs against the Intel Core 2 Duo with CoreMark.
//
// Two things are provided. First, the published score table the figure is
// borrowed from (EEMBC CoreMark results via the NVIDIA Variable SMP
// whitepaper), which reproduces the figure's headline: the Tegra 3
// outscores the Core 2 Duo while every other mobile CPU of the era trails
// it by 50% or more. Second, a runnable CoreMark-like workload built from
// the same three kernels as the real benchmark — linked-list operations,
// matrix arithmetic, and a CRC-checked state machine — so the repository
// can produce scores on real hardware and scaled estimates for the
// device catalog.
package coremark

import (
	"fmt"
	"math"
	"sort"
	"time"

	"cwc/internal/device"
)

// PublishedScore is one bar of Figure 1.
type PublishedScore struct {
	CPU   string
	Score float64 // CoreMark iterations/s (multi-core)
	// Mobile is false for the desktop/server reference CPU.
	Mobile bool
}

// PublishedScores returns the Figure 1 data (approximate values as read
// from the figure / the NVIDIA whitepaper it borrows from), sorted by
// score descending.
func PublishedScores() []PublishedScore {
	scores := []PublishedScore{
		{CPU: "Nvidia Tegra 3 (4x Cortex-A9)", Score: 11686, Mobile: true},
		{CPU: "Intel Core 2 Duo T7200", Score: 10306, Mobile: false},
		{CPU: "Qualcomm APQ8060 (2x Scorpion)", Score: 7233, Mobile: true},
		{CPU: "Samsung Exynos 4210 (2x Cortex-A9)", Score: 6122, Mobile: true},
		{CPU: "Nvidia Tegra 2 (2x Cortex-A9)", Score: 5840, Mobile: true},
		{CPU: "TI OMAP 4430 (2x Cortex-A9)", Score: 5034, Mobile: true},
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].Score > scores[j].Score })
	return scores
}

// listNode is the linked-list kernel's element.
type listNode struct {
	next *listNode
	data int32
}

// Run executes the CoreMark-like workload for the given number of
// iterations and returns a checksum (so the compiler cannot elide the
// work). One iteration touches all three kernels.
func Run(iterations int) uint32 {
	// Build a 64-node list once; the kernel repeatedly reverses and scans
	// it, as CoreMark's list kernel does.
	var nodes [64]listNode
	for i := range nodes {
		nodes[i].data = int32(i * 7)
		if i > 0 {
			nodes[i-1].next = &nodes[i]
		}
	}
	head := &nodes[0]

	var a, b, c [8][8]int32
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			a[i][j] = int32(i + j)
			b[i][j] = int32(i - j)
		}
	}

	crc := uint32(0xFFFF)
	state := 0
	for it := 0; it < iterations; it++ {
		// Kernel 1: list reversal + scan.
		var prev *listNode
		cur := head
		for cur != nil {
			next := cur.next
			cur.next = prev
			prev = cur
			cur = next
		}
		head = prev
		sum := int32(0)
		for n := head; n != nil; n = n.next {
			sum += n.data
		}

		// Kernel 2: 8x8 integer matrix multiply-accumulate.
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				acc := int32(0)
				for k := 0; k < 8; k++ {
					acc += a[i][k] * b[k][j]
				}
				c[i][j] = acc + sum
			}
		}

		// Kernel 3: state machine over the matrix bytes with a CRC.
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				v := uint32(c[i][j])
				switch state {
				case 0:
					if v%3 == 0 {
						state = 1
					}
				case 1:
					if v%5 == 0 {
						state = 2
					} else {
						state = 0
					}
				case 2:
					state = 0
				}
				crc = crc16(uint16(v), crc)
			}
		}
	}
	return crc
}

// crc16 is CoreMark's bit-serial CRC step.
func crc16(data uint16, crc uint32) uint32 {
	for i := 0; i < 16; i++ {
		din := (uint32(data) >> i) & 1
		bit := (crc & 1) ^ din
		crc >>= 1
		if bit != 0 {
			crc ^= 0xA001
		}
	}
	return crc
}

// HostScore measures this machine's iterations/second over the given
// measurement window (a real mini-CoreMark run).
func HostScore(window time.Duration) float64 {
	const batch = 2000
	start := time.Now()
	iters := 0
	sink := uint32(0)
	for time.Since(start) < window {
		sink ^= Run(batch)
		iters += batch
	}
	_ = sink
	elapsed := time.Since(start).Seconds()
	if elapsed == 0 {
		return 0
	}
	return float64(iters) / elapsed
}

// referenceScore anchors the device-scaled estimate: a dual Cortex-A9 at
// 1000 MHz scores ≈ 5840 (Tegra 2 in the published table).
const (
	refScore = 5840.0
	refMHz   = 1000.0
	refCores = 2.0
)

// EstimateScore scales the reference score by a device's clock and core
// count — the model behind "two or three of these older smartphones
// replace a server job". Core scaling is sublinear (exponent 0.65), which
// matches the published Tegra 2 → Tegra 3 step far better than a linear
// model (memory-system contention caps multi-core CoreMark gains on these
// SoCs).
func EstimateScore(spec device.Spec) float64 {
	cpu := spec.CPU
	coreFactor := math.Pow(float64(cpu.Cores)/refCores, 0.65)
	return refScore * (cpu.ClockMHz / refMHz) * coreFactor
}

// FormatTable renders published scores as the Figure 1 series.
func FormatTable() string {
	out := ""
	for _, s := range PublishedScores() {
		kind := "mobile"
		if !s.Mobile {
			kind = "reference"
		}
		out += fmt.Sprintf("%-36s %9.0f  (%s)\n", s.CPU, s.Score, kind)
	}
	return out
}
