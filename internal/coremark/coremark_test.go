package coremark

import (
	"strings"
	"testing"
	"time"

	"cwc/internal/device"
)

func TestPublishedScoresShape(t *testing.T) {
	scores := PublishedScores()
	if len(scores) < 5 {
		t.Fatalf("only %d published scores", len(scores))
	}
	// Sorted descending.
	for i := 1; i < len(scores); i++ {
		if scores[i].Score > scores[i-1].Score {
			t.Error("scores not sorted descending")
		}
	}
	// Figure 1's headline: Tegra 3 beats the Core 2 Duo...
	var tegra3, c2d float64
	for _, s := range scores {
		if strings.Contains(s.CPU, "Tegra 3") {
			tegra3 = s.Score
		}
		if strings.Contains(s.CPU, "Core 2 Duo") {
			c2d = s.Score
			if s.Mobile {
				t.Error("Core 2 Duo marked mobile")
			}
		}
	}
	if tegra3 <= c2d {
		t.Errorf("Tegra 3 (%v) should outscore Core 2 Duo (%v)", tegra3, c2d)
	}
	// ...and the Core 2 Duo outscores every other mobile CPU by > 40%.
	for _, s := range scores {
		if s.Mobile && !strings.Contains(s.CPU, "Tegra 3") {
			if c2d < s.Score*1.4 {
				t.Errorf("%s score %v too close to Core 2 Duo %v", s.CPU, s.Score, c2d)
			}
		}
	}
}

func TestRunDeterministicChecksum(t *testing.T) {
	a := Run(100)
	b := Run(100)
	if a != b {
		t.Errorf("checksums differ: %x vs %x", a, b)
	}
	if Run(0) == 0 {
		t.Error("zero-iteration checksum should be the seed CRC, not 0")
	}
	if Run(100) == Run(101) {
		t.Error("different iteration counts should give different checksums")
	}
}

func TestHostScorePositive(t *testing.T) {
	score := HostScore(50 * time.Millisecond)
	if score <= 0 {
		t.Errorf("host score = %v", score)
	}
}

func TestEstimateScoreScalesWithDevice(t *testing.T) {
	g2 := EstimateScore(device.HTCG2)    // 1 core, 806 MHz
	s3 := EstimateScore(device.GalaxyS3) // 4 cores, 1.5 GHz, efficient
	s2 := EstimateScore(device.GalaxyS2) // 2 cores
	if !(g2 < s2 && s2 < s3) {
		t.Errorf("score ordering wrong: G2 %v, S2 %v, S3 %v", g2, s2, s3)
	}
	// The Galaxy S3 (Tegra 3 in the paper's telling) should approach the
	// published Tegra 3 score.
	if s3 < 9000 || s3 > 14000 {
		t.Errorf("Galaxy S3 estimate %v out of Tegra 3 ballpark", s3)
	}
}

func TestFormatTable(t *testing.T) {
	table := FormatTable()
	for _, want := range []string{"Tegra 3", "Core 2 Duo", "reference", "mobile"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	if lines := strings.Count(table, "\n"); lines != len(PublishedScores()) {
		t.Errorf("table has %d lines, want %d", lines, len(PublishedScores()))
	}
}

func BenchmarkCoreMarkKernels(b *testing.B) {
	sink := uint32(0)
	for i := 0; i < b.N; i++ {
		sink ^= Run(1)
	}
	_ = sink
}
