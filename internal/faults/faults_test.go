package faults

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"cwc/internal/protocol"
)

func TestNewPlanDeterministic(t *testing.T) {
	a, b := NewPlan(7, 5), NewPlan(7, 5)
	if !reflect.DeepEqual(a.PerPhone, b.PerPhone) {
		t.Error("same seed should yield identical plans")
	}
	c := NewPlan(8, 5)
	if reflect.DeepEqual(a.PerPhone, c.PerPhone) {
		t.Error("different seeds should yield different plans")
	}
	for i := 0; i < 5; i++ {
		p := a.ProfileFor(i)
		if p.zero() {
			t.Errorf("phone %d got a zero (perfect) profile", i)
		}
	}
}

func TestParseScenario(t *testing.T) {
	pl, err := ParseScenario(`
		# every link is a bit slow
		phone *: latency=5ms jitter=2ms bw=256
		phone 3: cut-every=2 max-cuts=4
		phone 3: corrupt=0.05
		phone 1: refuse=0.3 refuse-every=2 seed=42; phone 1: partial=0.25
	`)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Default.LatencyMs != 5 || pl.Default.JitterMs != 2 || pl.Default.BandwidthKBps != 256 {
		t.Errorf("default profile = %+v", pl.Default)
	}
	p3 := pl.ProfileFor(3)
	if p3.CutEvery != 2 || p3.MaxCuts != 4 || p3.CorruptProb != 0.05 {
		t.Errorf("phone 3 clauses did not merge: %+v", p3)
	}
	p1 := pl.ProfileFor(1)
	if p1.RefuseProb != 0.3 || p1.RefuseEvery != 2 || p1.Seed != 42 || p1.PartialWrite != 0.25 {
		t.Errorf("phone 1 = %+v", p1)
	}
	// Phones without an entry inherit the default.
	if got := pl.ProfileFor(9); got != pl.Default {
		t.Errorf("fallback profile = %+v", got)
	}
}

func TestParseScenarioErrors(t *testing.T) {
	for _, src := range []string{
		"3: cut=0.1",            // missing 'phone'
		"phone x: cut=0.1",      // bad id
		"phone 1 cut=0.1",       // missing colon
		"phone 1: cut",          // not key=value
		"phone 1: cut=1.5",      // probability out of range
		"phone 1: latency=fast", // unparsable duration
		"phone 1: warp=9",       // unknown key
	} {
		if _, err := ParseScenario(src); err == nil {
			t.Errorf("ParseScenario(%q) accepted invalid input", src)
		}
	}
}

// pipePair returns a TCP loopback pair (net.Pipe has no buffering, which
// would deadlock single-goroutine write tests).
func pipePair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			return
		}
		server = c
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if server == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestConnCutEveryIsMidWrite(t *testing.T) {
	pl := &Plan{PerPhone: map[int]Profile{0: {Seed: 1, CutEvery: 2}}}
	client, server := pipePair(t)
	fc := pl.wrap(client, 0, 1, pl.ProfileFor(0))

	if _, err := fc.Write(bytes.Repeat([]byte("a"), 64)); err != nil {
		t.Fatalf("first write should pass: %v", err)
	}
	n, err := fc.Write(bytes.Repeat([]byte("b"), 64))
	if err == nil {
		t.Fatal("second write should be cut")
	}
	if n != 32 {
		t.Errorf("cut after %d bytes, want half the payload (32)", n)
	}
	// Writes after the cut keep failing.
	if _, err := fc.Write([]byte("x")); err == nil {
		t.Error("writes after a cut should fail")
	}
	// The peer sees the truncated stream then EOF.
	buf := make([]byte, 256)
	total := 0
	_ = server.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		k, err := server.Read(buf[total:])
		total += k
		if err != nil {
			break
		}
	}
	if total != 96 {
		t.Errorf("peer received %d bytes, want 96 (64 + half of 64)", total)
	}
	if got := pl.Recorder().Count(Cut); got != 1 {
		t.Errorf("recorded %d cuts, want 1", got)
	}
}

func TestConnMaxCutsBudget(t *testing.T) {
	pl := &Plan{PerPhone: map[int]Profile{0: {Seed: 1, CutEvery: 1, MaxCuts: 1}}}
	c1, _ := pipePair(t)
	fc := pl.wrap(c1, 0, 1, pl.ProfileFor(0))
	if _, err := fc.Write([]byte("abcd")); err == nil {
		t.Fatal("first write should be cut")
	}
	// Second connection of the same phone: budget spent, no more cuts.
	c2, _ := pipePair(t)
	fc2 := pl.wrap(c2, 0, 2, pl.ProfileFor(0))
	if _, err := fc2.Write([]byte("abcd")); err != nil {
		t.Fatalf("cut budget exhausted but write failed: %v", err)
	}
}

func TestConnCorruptionBreaksFrameDecode(t *testing.T) {
	// corrupt=1: every write has one byte flipped. A protocol frame is a
	// single write (header and body coalesced), so the flip lands
	// somewhere in length prefix or JSON body; wherever it lands, the
	// frame must not arrive intact — either Recv errors or the decoded
	// message differs from what was sent.
	pl := &Plan{PerPhone: map[int]Profile{0: {Seed: 3, CorruptProb: 1}}}
	client, server := pipePair(t)
	fc := pl.wrap(client, 0, 1, pl.ProfileFor(0))

	sender := protocol.NewConn(fc)
	go sender.Send(&protocol.Message{Type: protocol.TypePing, Seq: 9})

	receiver := protocol.NewConn(server)
	_ = receiver.SetReadDeadline(time.Now().Add(5 * time.Second))
	if m, err := receiver.Recv(); err == nil && m.Type == protocol.TypePing && m.Seq == 9 {
		t.Error("a corrupted frame arrived intact")
	}
	if pl.Recorder().Count(Corrupt) == 0 {
		t.Error("no corruption recorded")
	}
}

func TestConnPartialWriteStillDelivers(t *testing.T) {
	pl := &Plan{PerPhone: map[int]Profile{0: {Seed: 5, PartialWrite: 1}}}
	client, server := pipePair(t)
	fc := pl.wrap(client, 0, 1, pl.ProfileFor(0))

	payload := bytes.Repeat([]byte("xyz"), 100)
	go func() {
		fc.Write(payload)
		fc.Close()
	}()
	_ = server.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("partial writes changed the payload")
	}
	if pl.Recorder().Count(Partial) == 0 {
		t.Error("no partial write recorded")
	}
}

func TestDialerRefusals(t *testing.T) {
	pl := &Plan{PerPhone: map[int]Profile{2: {Seed: 1, RefuseEvery: 2}}}
	dials := 0
	dial := pl.Dialer(2, func(ctx context.Context) (net.Conn, error) {
		dials++
		c, _ := net.Pipe()
		return c, nil
	})
	var errs int
	for i := 0; i < 6; i++ {
		c, err := dial(context.Background())
		if err != nil {
			if !errors.Is(err, ErrRefused) {
				t.Fatalf("unexpected dial error: %v", err)
			}
			errs++
			continue
		}
		c.Close()
	}
	if errs != 3 {
		t.Errorf("refused %d of 6 dials, want every 2nd (3)", errs)
	}
	if dials != 3 {
		t.Errorf("underlying dial ran %d times, want 3 (refusals must not dial)", dials)
	}
	if got := pl.Recorder().Count(Refuse); got != 3 {
		t.Errorf("recorded %d refusals, want 3", got)
	}
}

func TestWrapListenerRefusesAndWraps(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pl := &Plan{Default: Profile{Seed: 1, RefuseEvery: 2, LatencyMs: 0.1}}
	fl := pl.WrapListener(ln)
	defer fl.Close()

	accepted := make(chan net.Conn, 4)
	go func() {
		for {
			c, err := fl.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	// Dial four times; every 2nd accept is refused, so two survive.
	for i := 0; i < 4; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
	}
	deadline := time.After(5 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case c := <-accepted:
			if _, ok := c.(*Conn); !ok {
				t.Errorf("accepted conn not fault-wrapped: %T", c)
			}
		case <-deadline:
			t.Fatal("listener did not admit the expected connections")
		}
	}
	// The remaining dials are refused; the accept loop may still be
	// working through them.
	waitUntil := time.Now().Add(5 * time.Second)
	for pl.Recorder().Count(Refuse) < 2 && time.Now().Before(waitUntil) {
		time.Sleep(time.Millisecond)
	}
	if got := pl.Recorder().Count(Refuse); got != 2 {
		t.Errorf("recorded %d refusals, want 2", got)
	}
}

// Same profile seed + same write sequence => same injected decisions,
// independent of wall-clock timing.
func TestConnDecisionStreamDeterministic(t *testing.T) {
	run := func() []Event {
		pl := &Plan{PerPhone: map[int]Profile{0: {
			Seed: 99, CorruptProb: 0.3, PartialWrite: 0.3, CutProb: 0.05,
		}}}
		client, server := pipePair(t)
		go io.Copy(io.Discard, server)
		fc := pl.wrap(client, 0, 1, pl.ProfileFor(0))
		for i := 0; i < 40; i++ {
			if _, err := fc.Write(bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
				break
			}
		}
		return pl.Recorder().Events()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("decision streams differ:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Error("no faults injected in 40 writes at these probabilities")
	}
}
