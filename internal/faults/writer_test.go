package faults

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// run drives a FaultyWriter through a fixed script and returns a
// transcript of outcomes for determinism comparison.
func runWriterScript(p WriteProfile) (string, []Event, []byte) {
	var sink bytes.Buffer
	fw := NewWriter(&sink, p)
	var log bytes.Buffer
	for i := 0; i < 30; i++ {
		n, err := fw.Write([]byte(fmt.Sprintf("payload-%02d", i)))
		fmt.Fprintf(&log, "w%d:%d:%v;", i, n, err != nil)
		if i%5 == 4 {
			fmt.Fprintf(&log, "s%d:%v;", i, fw.Sync() != nil)
		}
	}
	return log.String(), fw.Events(), sink.Bytes()
}

func TestWriterDeterministic(t *testing.T) {
	p := WriteProfile{Seed: 42, ShortProb: 0.3, ErrProb: 0.2, SyncErrProb: 0.5}
	t1, e1, b1 := runWriterScript(p)
	t2, e2, b2 := runWriterScript(p)
	if t1 != t2 || len(e1) != len(e2) || !bytes.Equal(b1, b2) {
		t.Fatalf("same seed, different outcomes:\n%s\n%s", t1, t2)
	}
	if len(e1) == 0 {
		t.Fatal("profile injected nothing; test is vacuous")
	}
	t3, _, _ := runWriterScript(WriteProfile{Seed: 43, ShortProb: 0.3, ErrProb: 0.2, SyncErrProb: 0.5})
	if t1 == t3 {
		t.Fatal("different seeds produced identical fault streams")
	}
}

func TestWriterShortWriteContract(t *testing.T) {
	// ShortProb 1: every write must deliver a strict prefix AND report an
	// error, per the io.Writer contract (n < len(b) implies err != nil).
	var sink bytes.Buffer
	fw := NewWriter(&sink, WriteProfile{Seed: 7, ShortProb: 1})
	buf := []byte("twelve-bytes")
	n, err := fw.Write(buf)
	if err == nil || !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("short write error = %v, want ErrInjectedWrite", err)
	}
	if n <= 0 || n >= len(buf) {
		t.Fatalf("short write wrote %d of %d bytes, want a strict prefix", n, len(buf))
	}
	if sink.Len() != n {
		t.Fatalf("sink holds %d bytes but Write reported %d", sink.Len(), n)
	}
}

func TestWriterErrNoBytes(t *testing.T) {
	var sink bytes.Buffer
	fw := NewWriter(&sink, WriteProfile{Seed: 1, ErrProb: 1})
	n, err := fw.Write([]byte("data"))
	if !errors.Is(err, ErrInjectedWrite) || n != 0 || sink.Len() != 0 {
		t.Fatalf("outright failure: n=%d err=%v sink=%d bytes", n, err, sink.Len())
	}
}

func TestWriterSyncErr(t *testing.T) {
	fw := NewWriter(&bytes.Buffer{}, WriteProfile{Seed: 1, SyncErrProb: 1})
	if err := fw.Sync(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("sync error = %v, want ErrInjectedSync", err)
	}
	ev := fw.Events()
	if len(ev) != 1 || ev[0].Kind != SyncErr || ev[0].Phone != -1 {
		t.Fatalf("events = %+v, want one SyncErr with Phone -1", ev)
	}
}

func TestWriterMaxFaultsBudget(t *testing.T) {
	var sink bytes.Buffer
	fw := NewWriter(&sink, WriteProfile{Seed: 3, ErrProb: 1, MaxFaults: 2})
	failures := 0
	for i := 0; i < 10; i++ {
		if _, err := fw.Write([]byte("x")); err != nil {
			failures++
		}
	}
	if failures != 2 {
		t.Fatalf("injected %d faults, want exactly MaxFaults=2", failures)
	}
	if len(fw.Events()) != 2 {
		t.Fatalf("recorded %d events, want 2", len(fw.Events()))
	}
}

func TestWriterZeroProfilePassthrough(t *testing.T) {
	var sink bytes.Buffer
	fw := NewWriter(&sink, WriteProfile{})
	for i := 0; i < 100; i++ {
		n, err := fw.Write([]byte("abc"))
		if n != 3 || err != nil {
			t.Fatalf("zero profile injected a fault: n=%d err=%v", n, err)
		}
	}
	if err := fw.Sync(); err != nil {
		t.Fatalf("zero profile sync: %v", err)
	}
	if len(fw.Events()) != 0 {
		t.Fatalf("zero profile recorded %d events", len(fw.Events()))
	}
}
