package faults

import (
	"reflect"
	"testing"
)

func TestParseScenarioByzantine(t *testing.T) {
	pl, err := ParseScenario(`
		seed: 9
		liar: frac=0.2
		lazy-result: frac=0.5 prob=0.25
		corrupt-result: frac=0.1 prob=0.5
	`)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Liar != (ByzDirective{Frac: 0.2, Prob: 1}) {
		t.Errorf("liar = %+v, want frac=0.2 prob=1 (default)", pl.Liar)
	}
	if pl.LazyResult != (ByzDirective{Frac: 0.5, Prob: 0.25}) {
		t.Errorf("lazy-result = %+v", pl.LazyResult)
	}
	if pl.CorruptResult != (ByzDirective{Frac: 0.1, Prob: 0.5}) {
		t.Errorf("corrupt-result = %+v", pl.CorruptResult)
	}
}

func TestParseScenarioByzantineErrors(t *testing.T) {
	for _, src := range []string{
		"liar: prob=0.5",          // missing frac
		"liar: frac=0",            // frac out of range
		"liar: frac=1.5",          // frac out of range
		"liar: frac=0.2 prob=0",   // prob out of range
		"liar: frac=0.2 warp=9",   // unknown key
		"lazy-result: frac",       // not key=value
		"corrupt-result: frac=no", // unparsable fraction
	} {
		if _, err := ParseScenario(src); err == nil {
			t.Errorf("ParseScenario(%q) accepted invalid input", src)
		}
	}
}

func TestByzantineForDeterministicAndScaled(t *testing.T) {
	pl, err := ParseScenario("seed: 7\nliar: frac=0.2")
	if err != nil {
		t.Fatal(err)
	}
	a, b := pl.ByzantineFor(10), pl.ByzantineFor(10)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed and fleet should yield identical casts")
	}
	if len(a) != 2 {
		t.Fatalf("frac=0.2 over 10 phones afflicted %d, want 2", len(a))
	}
	for phone, s := range a {
		if s.LiarProb != 1 || s.LazyProb != 0 || s.CorruptProb != 0 {
			t.Errorf("phone %d spec = %+v, want pure liar", phone, s)
		}
		if s.Seed == 0 {
			t.Errorf("phone %d got zero misbehaviour seed", phone)
		}
	}
	if got := pl.ByzantinePhones(10); len(got) != 2 || got[0] > got[1] {
		t.Errorf("ByzantinePhones = %v, want 2 sorted indices", got)
	}
	pl2, _ := ParseScenario("seed: 8\nliar: frac=0.2")
	if reflect.DeepEqual(pl.ByzantinePhones(10), pl2.ByzantinePhones(10)) &&
		reflect.DeepEqual(pl.ByzantineFor(10), pl2.ByzantineFor(10)) {
		t.Error("different seeds should yield different casts or specs")
	}
}

func TestByzantineForMinimumOneAndOverlap(t *testing.T) {
	pl, err := ParseScenario("liar: frac=0.1\nlazy-result: frac=0.1 prob=0.5")
	if err != nil {
		t.Fatal(err)
	}
	// frac=0.1 over 3 phones rounds to 0, but a requested directive
	// always afflicts at least one phone.
	specs := pl.ByzantineFor(3)
	liars, lazies := 0, 0
	for _, s := range specs {
		if s.LiarProb > 0 {
			liars++
		}
		if s.LazyProb > 0 {
			lazies++
		}
	}
	if liars != 1 || lazies != 1 {
		t.Errorf("liars=%d lazies=%d, want 1 each (possibly overlapping)", liars, lazies)
	}
	if pl.ByzantineFor(0) == nil || len(pl.ByzantineFor(0)) != 0 {
		t.Error("empty fleet should yield an empty cast")
	}
}
