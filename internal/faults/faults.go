// Package faults is a deterministic, seedable fault-injection substrate
// for the CWC transport. It wraps net.Conn, net.Listener and dial
// functions so that every failure mode the paper's deployment suffers —
// slow links, lossy links, abrupt mid-frame disconnects, corrupted
// frames, refused connections — becomes a reproducible *input* to a test
// or experiment instead of an accident of the host network.
//
// All randomness is drawn from rand.Source seeded from the Plan, so the
// same seed yields the same injected fault plan; a chaos run can be
// replayed bit-for-bit at the decision level (which write is cut, which
// frame is corrupted) regardless of wall-clock timing.
//
// The layer sits *below* the protocol framing: a "frame" here is one
// Write call (the protocol package coalesces header and body into a
// single Write per frame), so cutting a connection mid-write is a
// mid-frame disconnect and flipping a byte in a write yields an
// undecodable frame at the peer. Partial writes split inside the one
// call, so a torn header remains a reachable fault.
package faults

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Profile is one link's fault configuration. The zero value injects
// nothing (a perfect link).
type Profile struct {
	// Seed drives this link's random decisions. Connections derived from
	// the same profile use Seed xor the connection ordinal, so every
	// reconnection sees a fresh but reproducible decision stream.
	Seed int64
	// LatencyMs is a fixed delay added to every write, plus a uniform
	// jitter in [0, JitterMs).
	LatencyMs float64
	JitterMs  float64
	// BandwidthKBps throttles writes to the given rate (0: unthrottled).
	BandwidthKBps float64
	// PartialWrite is the per-write probability that the write is split
	// into two bursts with a pause between them.
	PartialWrite float64
	// CorruptProb is the per-write probability of flipping one byte of
	// the payload (the peer sees an undecodable frame).
	CorruptProb float64
	// CutProb is the per-write probability of an abrupt disconnect after
	// only part of the payload has been written (a mid-frame cut).
	CutProb float64
	// CutEvery, when positive, deterministically cuts the connection on
	// every Nth write — "phone 3 drops every 2nd assignment mid-transfer"
	// style scenarios.
	CutEvery int
	// MaxCuts bounds the number of cuts per *profile* across all of its
	// connections (0: unlimited), so a scenario can fail twice and then
	// behave.
	MaxCuts int
	// RefuseProb is the probability that a dial (or accept) is refused
	// outright; RefuseEvery, when positive, refuses every Nth attempt
	// deterministically instead.
	RefuseProb  float64
	RefuseEvery int
}

// zero reports whether the profile injects nothing.
func (p Profile) zero() bool {
	return p == Profile{}
}

// EventKind classifies an injected fault.
type EventKind string

// Injected fault kinds.
const (
	Cut     EventKind = "cut"     // abrupt mid-write disconnect
	Corrupt EventKind = "corrupt" // one byte of a write flipped
	Partial EventKind = "partial" // write split into two bursts
	Refuse  EventKind = "refuse"  // dial/accept refused
)

// Event is one injected fault, for assertions and post-mortems.
type Event struct {
	Phone   int // phone index the profile belongs to (-1: listener side)
	ConnSeq int // connection ordinal for that phone (1-based)
	Op      int // write ordinal within the connection (0 for refusals)
	Kind    EventKind
}

// Recorder accumulates injected fault events.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

func (r *Recorder) add(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events snapshots the injected faults so far.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Count returns how many events of the given kind were injected.
func (r *Recorder) Count(kind EventKind) int {
	n := 0
	for _, e := range r.Events() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Plan maps phones to fault profiles: the fleet-wide fault scenario.
type Plan struct {
	Seed     int64
	Default  Profile // used for phones without a specific entry
	PerPhone map[int]Profile
	Waves    []Wave // coordinated unplug bands (see Schedule)
	// PrimaryKills and Partitions script control-plane faults for a
	// failover harness: when to SIGKILL-equivalently murder the primary
	// master (and optionally resurrect it), and when to sever one side of
	// the cluster. The faults package only parses and carries them — the
	// harness owning the processes interprets the directives, because
	// killing a master is not a per-link byte-level fault.
	PrimaryKills []PrimaryKill
	Partitions   []Partition
	// Liar, LazyResult and CorruptResult script compute-layer
	// misbehaviour over a seeded fraction of the fleet (see
	// ByzantineFor). Like the control-plane faults above, the package
	// only parses and carries them — the harness wiring workers maps
	// the expanded specs onto each worker's byzantine knobs.
	Liar          ByzDirective
	LazyResult    ByzDirective
	CorruptResult ByzDirective

	rec     Recorder
	mu      sync.Mutex
	cutsCnt map[int]int // per-phone cuts consumed (for MaxCuts)
	dialCnt map[int]int // per-phone dial attempts (for refusals/ordinals)
}

// PrimaryKill scripts one abrupt primary-master death.
type PrimaryKill struct {
	// At is when (from scenario start) the primary is killed: no bye
	// frames, no WAL shutdown record — the process just stops.
	At time.Duration
	// Resurrect, when positive, is how long after the kill the old
	// primary is brought back from its own WAL — the split-brain probe:
	// everything it then says must be fenced by epoch.
	Resurrect time.Duration
}

// Partition scripts one asymmetric network partition.
type Partition struct {
	// Start is when (from scenario start) the partition begins.
	Start time.Duration
	// Duration is how long it lasts; zero means until scenario end.
	Duration time.Duration
	// Target names the severed traffic: "replica" cuts primary→standby
	// replication (the standby's lease runs out while the primary still
	// serves workers), "workers" cuts worker↔primary traffic.
	Target string
}

// NewPlan derives a randomized-but-seeded plan giving every one of n
// phones a nonzero fault profile: a few ms of latency, a throttled link,
// occasional partial writes, rare corruption and mid-frame cuts, and a
// small chance of refused dials. Two calls with the same seed and n
// return identical plans.
func NewPlan(seed int64, n int) *Plan {
	rng := rand.New(rand.NewSource(seed))
	pl := &Plan{Seed: seed, PerPhone: make(map[int]Profile, n)}
	for i := 0; i < n; i++ {
		pl.PerPhone[i] = Profile{
			Seed:          rng.Int63(),
			LatencyMs:     0.5 + 2*rng.Float64(),
			JitterMs:      rng.Float64(),
			BandwidthKBps: 8192 + 8192*rng.Float64(),
			PartialWrite:  0.15,
			CorruptProb:   0.01 + 0.02*rng.Float64(),
			CutProb:       0.005 + 0.015*rng.Float64(),
			RefuseProb:    0.05 + 0.10*rng.Float64(),
		}
	}
	return pl
}

// ProfileFor returns the profile for phone i (falling back to Default).
func (pl *Plan) ProfileFor(i int) Profile {
	if p, ok := pl.PerPhone[i]; ok {
		return p
	}
	return pl.Default
}

// Recorder exposes the plan's injected-fault log.
func (pl *Plan) Recorder() *Recorder { return &pl.rec }

// allowCut consumes one cut credit for the phone; false once the
// profile's MaxCuts budget is spent.
func (pl *Plan) allowCut(phone, maxCuts int) bool {
	if maxCuts <= 0 {
		return true
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.cutsCnt == nil {
		pl.cutsCnt = map[int]int{}
	}
	if pl.cutsCnt[phone] >= maxCuts {
		return false
	}
	pl.cutsCnt[phone]++
	return true
}

// DialFunc matches worker.Config.Dial.
type DialFunc func(ctx context.Context) (net.Conn, error)

// ErrRefused is the error returned for injected connection refusals.
var ErrRefused = fmt.Errorf("faults: connection refused (injected)")

// Dialer wraps dial with phone i's profile: injected refusals at dial
// time and a fault-wrapped connection on success. Each dial attempt gets
// a deterministic ordinal, so "refuse every 2nd dial" replays exactly.
func (pl *Plan) Dialer(phone int, dial DialFunc) DialFunc {
	p := pl.ProfileFor(phone)
	refuseRng := rand.New(rand.NewSource(p.Seed ^ 0x5ef))
	return func(ctx context.Context) (net.Conn, error) {
		pl.mu.Lock()
		if pl.dialCnt == nil {
			pl.dialCnt = map[int]int{}
		}
		pl.dialCnt[phone]++
		seq := pl.dialCnt[phone]
		pl.mu.Unlock()
		refuse := p.RefuseEvery > 0 && seq%p.RefuseEvery == 0
		if !refuse && p.RefuseProb > 0 && refuseRng.Float64() < p.RefuseProb {
			refuse = true
		}
		if refuse {
			pl.rec.add(Event{Phone: phone, ConnSeq: seq, Kind: Refuse})
			return nil, fmt.Errorf("dial %d for phone %d: %w", seq, phone, ErrRefused)
		}
		c, err := dial(ctx)
		if err != nil {
			return nil, err
		}
		return pl.wrap(c, phone, seq, p), nil
	}
}

// wrap builds the fault-injecting connection for one accepted/dialed conn.
func (pl *Plan) wrap(c net.Conn, phone, seq int, p Profile) net.Conn {
	if p.zero() {
		return c
	}
	return &Conn{
		Conn:  c,
		prof:  p,
		plan:  pl,
		phone: phone,
		seq:   seq,
		wrng:  rand.New(rand.NewSource(p.Seed ^ int64(seq)<<1)),
	}
}

// Conn injects the profile's faults into every write of the wrapped
// connection. Reads pass through untouched: wrapping both endpoints (or
// the single endpoint whose misbehaviour is under study) covers both
// directions, and keeping injection on the writer side makes each
// decision stream deterministic — it depends only on that side's write
// ordinal, never on goroutine interleaving.
type Conn struct {
	net.Conn
	prof  Profile
	plan  *Plan
	phone int
	seq   int

	mu     sync.Mutex
	wrng   *rand.Rand
	writes int
	cut    bool
}

// Write applies latency, throttling, partial writes, corruption and cuts
// per the profile, then forwards to the wrapped connection.
func (fc *Conn) Write(b []byte) (int, error) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if fc.cut {
		return 0, fmt.Errorf("faults: connection was cut (injected)")
	}
	fc.writes++
	p := fc.prof

	// Pacing: fixed latency + jitter, then a bandwidth-shaped delay.
	delay := time.Duration(p.LatencyMs * float64(time.Millisecond))
	if p.JitterMs > 0 {
		delay += time.Duration(p.JitterMs * fc.wrng.Float64() * float64(time.Millisecond))
	}
	if p.BandwidthKBps > 0 {
		kb := float64(len(b)) / 1024
		delay += time.Duration(kb / p.BandwidthKBps * float64(time.Second))
	}
	if delay > 0 {
		time.Sleep(delay)
	}

	cut := p.CutEvery > 0 && fc.writes%p.CutEvery == 0
	if !cut && p.CutProb > 0 && fc.wrng.Float64() < p.CutProb {
		cut = true
	}
	if cut && fc.plan != nil && !fc.plan.allowCut(fc.phone, p.MaxCuts) {
		cut = false
	}
	if cut {
		// Mid-frame disconnect: half the payload escapes, then the link dies.
		fc.record(Cut)
		fc.cut = true
		n, _ := fc.Conn.Write(b[:len(b)/2])
		fc.Conn.Close()
		return n, fmt.Errorf("faults: connection cut after %d of %d bytes (injected)", n, len(b))
	}

	if p.CorruptProb > 0 && len(b) > 0 && fc.wrng.Float64() < p.CorruptProb {
		fc.record(Corrupt)
		mangled := make([]byte, len(b))
		copy(mangled, b)
		mangled[fc.wrng.Intn(len(mangled))] ^= 0xff
		b = mangled
	}

	if p.PartialWrite > 0 && len(b) > 1 && fc.wrng.Float64() < p.PartialWrite {
		fc.record(Partial)
		half := len(b) / 2
		n, err := fc.Conn.Write(b[:half])
		if err != nil {
			return n, err
		}
		time.Sleep(time.Millisecond)
		n2, err := fc.Conn.Write(b[half:])
		return n + n2, err
	}
	return fc.Conn.Write(b)
}

func (fc *Conn) record(kind EventKind) {
	if fc.plan != nil {
		fc.plan.rec.add(Event{Phone: fc.phone, ConnSeq: fc.seq, Op: fc.writes, Kind: kind})
	}
}

// Listener wraps a net.Listener with accept-time refusals and fault
// wrapping using the plan's Default profile (a listener cannot know which
// phone is dialing before the protocol handshake).
type Listener struct {
	net.Listener
	plan *Plan

	mu  sync.Mutex
	rng *rand.Rand
	seq int
}

// WrapListener builds the fault-injecting listener.
func (pl *Plan) WrapListener(ln net.Listener) *Listener {
	return &Listener{
		Listener: ln,
		plan:     pl,
		rng:      rand.New(rand.NewSource(pl.Default.Seed ^ 0xacce97)),
	}
}

// Accept refuses connections per the Default profile (closing them
// immediately, so the dialer sees an instant disconnect) and wraps the
// ones it admits.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		p := l.plan.Default
		l.mu.Lock()
		l.seq++
		seq := l.seq
		refuse := p.RefuseEvery > 0 && seq%p.RefuseEvery == 0
		if !refuse && p.RefuseProb > 0 && l.rng.Float64() < p.RefuseProb {
			refuse = true
		}
		l.mu.Unlock()
		if refuse {
			l.plan.rec.add(Event{Phone: -1, ConnSeq: seq, Kind: Refuse})
			c.Close()
			continue
		}
		return l.plan.wrap(c, -1, seq, p), nil
	}
}
