package faults

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Wave is a coordinated unplug band — the "morning storm" where a large
// slice of the fleet leaves the chargers within minutes of each other.
// Frac of the fleet unplugs inside [Start, Start+Spread), each phone at
// a seeded, deterministic instant; phones with ReplugAfter > 0 plug back
// in that long after unplugging (the flapping replug), the rest stay
// gone for the run.
type Wave struct {
	Frac        float64       // fraction of the fleet in (0,1]
	Start       time.Duration // band start, relative to scenario t=0
	Spread      time.Duration // band width (0: all at Start)
	ReplugAfter time.Duration // time unplugged before replug (0: never)
}

// WaveAction is one phone's part in a wave, ready to be driven against a
// live worker: unplug at UnplugAt, and if ReplugAt is nonzero, rejoin
// then.
type WaveAction struct {
	Phone    int
	UnplugAt time.Duration
	ReplugAt time.Duration // 0: stays unplugged for the run
}

// Schedule expands the plan's waves over a fleet of n phones into a
// per-phone action list sorted by unplug time. Phone selection and
// unplug instants are drawn from Plan.Seed, so the same seed and fleet
// size replay the identical storm — which phones leave, in what order,
// at what offsets.
func (pl *Plan) Schedule(n int) []WaveAction {
	rng := rand.New(rand.NewSource(pl.Seed ^ 0x3a7e))
	var out []WaveAction
	for _, w := range pl.Waves {
		k := int(math.Round(w.Frac * float64(n)))
		if k > n {
			k = n
		}
		if k <= 0 {
			continue
		}
		for _, phone := range rng.Perm(n)[:k] {
			act := WaveAction{Phone: phone, UnplugAt: w.Start}
			if w.Spread > 0 {
				act.UnplugAt += time.Duration(rng.Int63n(int64(w.Spread)))
			}
			if w.ReplugAfter > 0 {
				act.ReplugAt = act.UnplugAt + w.ReplugAfter
			}
			out = append(out, act)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].UnplugAt != out[j].UnplugAt {
			return out[i].UnplugAt < out[j].UnplugAt
		}
		return out[i].Phone < out[j].Phone
	})
	return out
}
