package faults

import (
	"math"
	"math/rand"
	"sort"
)

// ByzDirective scripts one flavour of compute-layer misbehaviour over a
// fraction of the fleet: Frac of the phones (seeded selection, like
// waves) misbehave, each with per-result probability Prob. Unlike the
// link-level Profile faults, these are semantic faults — the transport
// delivers the bytes perfectly, but the bytes are wrong.
type ByzDirective struct {
	Frac float64 // fraction of the fleet in (0,1]
	Prob float64 // per-result probability in (0,1]; parser defaults to 1
}

// ByzantineSpec is one phone's compute-layer misbehaviour, mirroring
// the worker's Byzantine knobs without importing the worker package.
// The zero value is an honest phone.
type ByzantineSpec struct {
	// LiarProb is the per-result probability of returning a plausible
	// but wrong result with a matching (honestly computed) digest —
	// the adversary replicated voting exists to catch.
	LiarProb float64
	// LazyProb is the per-result probability of returning a truncated
	// result (the phone shirked part of the work).
	LazyProb float64
	// CorruptProb is the per-result probability of flipping bytes in
	// the result after digesting it, so the claimed digest no longer
	// matches the payload (in-transit damage, caught without voting).
	CorruptProb float64
	// Seed drives the phone's misbehaviour decisions deterministically.
	Seed int64
}

// zero reports whether the spec describes an honest phone.
func (b ByzantineSpec) zero() bool {
	return b.LiarProb == 0 && b.LazyProb == 0 && b.CorruptProb == 0
}

// ByzantineFor expands the plan's byzantine directives over a fleet of
// n phones into per-phone specs. Phone selection is drawn from
// Plan.Seed (one stream per directive, like Schedule), so the same seed
// and fleet size replay the identical cast of liars. A directive with
// Frac > 0 always afflicts at least one phone. Phones absent from the
// map are honest.
func (pl *Plan) ByzantineFor(n int) map[int]ByzantineSpec {
	out := map[int]ByzantineSpec{}
	expand := func(d ByzDirective, salt int64, set func(*ByzantineSpec, float64)) {
		if d.Frac <= 0 || n <= 0 {
			return
		}
		k := int(math.Round(d.Frac * float64(n)))
		if k > n {
			k = n
		}
		if k < 1 {
			k = 1
		}
		rng := rand.New(rand.NewSource(pl.Seed ^ salt))
		for _, phone := range rng.Perm(n)[:k] {
			s := out[phone]
			set(&s, d.Prob)
			out[phone] = s
		}
	}
	expand(pl.Liar, 0x11a5, func(s *ByzantineSpec, p float64) { s.LiarProb = p })
	expand(pl.LazyResult, 0x1a2e, func(s *ByzantineSpec, p float64) { s.LazyProb = p })
	expand(pl.CorruptResult, 0xc055, func(s *ByzantineSpec, p float64) { s.CorruptProb = p })
	for phone, s := range out {
		s.Seed = pl.Seed ^ (int64(phone)+1)*0x9e3779b9
		out[phone] = s
	}
	return out
}

// ByzantinePhones returns the sorted phone indices ByzantineFor(n)
// would afflict — the expected cast for a test to assert against.
func (pl *Plan) ByzantinePhones(n int) []int {
	specs := pl.ByzantineFor(n)
	out := make([]int, 0, len(specs))
	for phone := range specs {
		out = append(out, phone)
	}
	sort.Ints(out)
	return out
}
