package faults

import (
	"strings"
	"testing"
	"time"
)

func TestParseScenarioWave(t *testing.T) {
	pl, err := ParseScenario(`
		seed: 7
		phone *: latency=1ms
		wave: frac=0.6 start=2s spread=1s replug-after=1500ms
		wave: frac=0.25 start=10s
	`)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Seed != 7 {
		t.Errorf("seed = %d, want 7", pl.Seed)
	}
	if len(pl.Waves) != 2 {
		t.Fatalf("waves = %d, want 2", len(pl.Waves))
	}
	w := pl.Waves[0]
	if w.Frac != 0.6 || w.Start != 2*time.Second || w.Spread != time.Second || w.ReplugAfter != 1500*time.Millisecond {
		t.Errorf("wave 0 = %+v", w)
	}
	w = pl.Waves[1]
	if w.Frac != 0.25 || w.Start != 10*time.Second || w.Spread != 0 || w.ReplugAfter != 0 {
		t.Errorf("wave 1 = %+v", w)
	}
	// The phone clauses still parse alongside waves.
	if pl.Default.LatencyMs != 1 {
		t.Errorf("default latency = %v", pl.Default.LatencyMs)
	}
}

func TestParseScenarioWaveErrors(t *testing.T) {
	for _, tc := range []struct {
		src, token string
	}{
		{"wave: start=2s", "frac="},             // frac is required
		{"wave: frac=0", "frac"},                // zero fraction
		{"wave: frac=1.5", "frac"},              // fraction out of range
		{"wave: frac=0.5 start=soon", "start"},  // unparsable duration
		{"wave: frac=0.5 spread=-1s", "spread"}, // negative duration
		{"wave: frac=0.5 surge=1s", "surge"},    // unknown key
		{"wave frac=0.5", "missing ':'"},        // missing colon
		{"seed: many", "seed"},                  // unparsable seed
		{"storm: frac=0.5", "'phone', 'wave', 'seed', 'kill-primary', 'partition', 'liar', 'lazy-result' or 'corrupt-result'"}, // unknown directive
	} {
		_, err := ParseScenario(tc.src)
		if err == nil {
			t.Errorf("ParseScenario(%q) accepted invalid input", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.token) {
			t.Errorf("ParseScenario(%q) error %q does not name token %q", tc.src, err, tc.token)
		}
		if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("ParseScenario(%q) error %q does not name the line", tc.src, err)
		}
	}
	// Line numbers point at the offending line, not line 1.
	_, err := ParseScenario("phone *: latency=1ms\n\nwave: frac=2")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %v does not name line 3", err)
	}
}

func TestWaveSchedule(t *testing.T) {
	pl, err := ParseScenario("seed: 42\nwave: frac=0.5 start=2s spread=1s replug-after=3s")
	if err != nil {
		t.Fatal(err)
	}
	acts := pl.Schedule(10)
	if len(acts) != 5 {
		t.Fatalf("schedule has %d actions, want 5 (frac=0.5 of 10)", len(acts))
	}
	seen := map[int]bool{}
	for i, a := range acts {
		if seen[a.Phone] {
			t.Errorf("phone %d scheduled twice", a.Phone)
		}
		seen[a.Phone] = true
		if a.UnplugAt < 2*time.Second || a.UnplugAt >= 3*time.Second {
			t.Errorf("unplug at %v outside [2s,3s)", a.UnplugAt)
		}
		if a.ReplugAt != a.UnplugAt+3*time.Second {
			t.Errorf("replug at %v, want unplug+3s", a.ReplugAt)
		}
		if i > 0 && acts[i-1].UnplugAt > a.UnplugAt {
			t.Error("schedule not sorted by unplug time")
		}
	}

	// Same seed: bit-identical storm. Different seed: a different one.
	again := pl.Schedule(10)
	if len(again) != len(acts) {
		t.Fatal("replay changed the schedule length")
	}
	for i := range acts {
		if acts[i] != again[i] {
			t.Errorf("replay diverged at action %d: %+v vs %+v", i, acts[i], again[i])
		}
	}
	other := &Plan{Seed: 43, Waves: pl.Waves}
	diverged := false
	for i, a := range other.Schedule(10) {
		if i < len(acts) && a != acts[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds produced the identical storm")
	}

	// No replug-after: phones stay gone.
	solo := &Plan{Waves: []Wave{{Frac: 1, Start: time.Second}}}
	for _, a := range solo.Schedule(4) {
		if a.ReplugAt != 0 {
			t.Errorf("phone %d scheduled a replug with no replug-after", a.Phone)
		}
		if a.UnplugAt != time.Second {
			t.Errorf("zero spread should pin unplug to start, got %v", a.UnplugAt)
		}
	}
	if got := len(solo.Schedule(4)); got != 4 {
		t.Errorf("frac=1 scheduled %d of 4 phones", got)
	}
}
