package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseScenario builds a Plan from a compact fault-scenario DSL. One
// clause per line (or semicolon-separated), each targeting one phone,
// every phone, the plan seed, or a coordinated unplug wave:
//
//	# phone 3 drops every 2nd assignment mid-transfer, at most 4 times
//	phone 3: cut-every=2 max-cuts=4
//	# every link: 5 ms +/- 2 ms latency, 256 KB/s, 5% corrupted frames
//	phone *: latency=5ms jitter=2ms bw=256 corrupt=0.05
//	phone 1: refuse=0.3 refuse-every=2 seed=42
//	# the morning storm: 60% of the fleet unplugs between t=2s and t=3s,
//	# each phone flapping back onto the charger 1500ms later
//	seed: 7
//	wave: frac=0.6 start=2s spread=1s replug-after=1500ms
//	# failover drill: murder the primary at t=1s, resurrect it 2s later,
//	# and sever replication for a second starting at t=4s
//	kill-primary: at=1s resurrect=2s
//	partition: start=4s duration=1s target=replica
//	# byzantine fleet: 20% of the phones lie about every result
//	liar: frac=0.2
//
// Phone keys: latency, jitter (durations), bw (KB/s), partial, corrupt,
// cut, refuse (probabilities in [0,1]), cut-every, max-cuts,
// refuse-every (counts), seed (int64). Repeated clauses for the same
// phone merge key-wise; `phone *` sets the default profile used by
// phones without a specific entry.
//
// Wave keys: frac (required, fraction of the fleet in (0,1]), start
// (band start), spread (band width; unplug instants are uniform within
// it), replug-after (how long each phone stays unplugged; omit for
// phones that vanish for good). `seed:` sets Plan.Seed, which drives the
// wave's deterministic phone selection and timing (see Plan.Schedule).
//
// kill-primary keys: at (required, when the primary dies), resurrect
// (delay from the kill to restarting the old primary; omit to leave it
// dead). partition keys: start (required), duration (zero/omitted means
// until scenario end), target (required: "replica" or "workers"). Both
// are carried on the Plan for a failover harness to interpret.
//
// liar, lazy-result and corrupt-result keys: frac (required, fraction
// of the fleet in (0,1] that misbehaves; seeded selection via
// Plan.Seed, see ByzantineFor) and prob (per-result misbehaviour
// probability in (0,1], default 1). These are compute-layer faults —
// wrong bytes over a perfect link — carried for the harness to map
// onto worker byzantine knobs.
//
// Errors name the offending line and token.
func ParseScenario(src string) (*Plan, error) {
	pl := &Plan{PerPhone: map[int]Profile{}}
	for ln, rawLine := range strings.Split(src, "\n") {
		for _, clause := range strings.Split(rawLine, ";") {
			clause = strings.TrimSpace(clause)
			if clause == "" || strings.HasPrefix(clause, "#") {
				continue
			}
			if err := pl.parseClause(clause); err != nil {
				return nil, fmt.Errorf("faults: line %d: %w", ln+1, err)
			}
		}
	}
	return pl, nil
}

func (pl *Plan) parseClause(clause string) error {
	head, body, ok := strings.Cut(clause, ":")
	if !ok {
		return fmt.Errorf("clause %q missing ':'", clause)
	}
	head = strings.TrimSpace(head)
	switch {
	case head == "seed":
		n, err := strconv.ParseInt(strings.TrimSpace(body), 10, 64)
		if err != nil {
			return fmt.Errorf("clause %q: seed: %v", clause, err)
		}
		pl.Seed = n
		return nil
	case head == "wave":
		var w Wave
		if err := applyWaveClauses(&w, body); err != nil {
			return fmt.Errorf("clause %q: %w", clause, err)
		}
		pl.Waves = append(pl.Waves, w)
		return nil
	case head == "kill-primary":
		var k PrimaryKill
		if err := applyKillClauses(&k, body); err != nil {
			return fmt.Errorf("clause %q: %w", clause, err)
		}
		pl.PrimaryKills = append(pl.PrimaryKills, k)
		return nil
	case head == "partition":
		var pt Partition
		if err := applyPartitionClauses(&pt, body); err != nil {
			return fmt.Errorf("clause %q: %w", clause, err)
		}
		pl.Partitions = append(pl.Partitions, pt)
		return nil
	case head == "liar", head == "lazy-result", head == "corrupt-result":
		var d ByzDirective
		if err := applyByzClauses(&d, body); err != nil {
			return fmt.Errorf("clause %q: %w", clause, err)
		}
		switch head {
		case "liar":
			pl.Liar = d
		case "lazy-result":
			pl.LazyResult = d
		case "corrupt-result":
			pl.CorruptResult = d
		}
		return nil
	case strings.HasPrefix(head, "phone"):
		target := strings.TrimSpace(strings.TrimPrefix(head, "phone"))
		if target == "*" {
			if err := applyClauses(&pl.Default, body); err != nil {
				return fmt.Errorf("clause %q: %w", clause, err)
			}
			return nil
		}
		id, err := strconv.Atoi(target)
		if err != nil {
			return fmt.Errorf("clause %q: bad phone id %q: %v", clause, target, err)
		}
		p := pl.PerPhone[id]
		if err := applyClauses(&p, body); err != nil {
			return fmt.Errorf("clause %q: %w", clause, err)
		}
		pl.PerPhone[id] = p
		return nil
	default:
		return fmt.Errorf("clause %q must start with 'phone', 'wave', 'seed', 'kill-primary', 'partition', 'liar', 'lazy-result' or 'corrupt-result'", clause)
	}
}

func applyKillClauses(k *PrimaryKill, body string) error {
	sawAt := false
	for _, field := range strings.Fields(body) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return fmt.Errorf("setting %q is not key=value", field)
		}
		switch key {
		case "at", "resurrect":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return fmt.Errorf("%s: want non-negative duration, got %q", key, val)
			}
			if key == "at" {
				k.At, sawAt = d, true
			} else {
				k.Resurrect = d
			}
		default:
			return fmt.Errorf("unknown kill-primary setting %q", key)
		}
	}
	if !sawAt {
		return fmt.Errorf("kill-primary requires at=")
	}
	return nil
}

func applyPartitionClauses(pt *Partition, body string) error {
	sawStart := false
	for _, field := range strings.Fields(body) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return fmt.Errorf("setting %q is not key=value", field)
		}
		switch key {
		case "start", "duration":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return fmt.Errorf("%s: want non-negative duration, got %q", key, val)
			}
			if key == "start" {
				pt.Start, sawStart = d, true
			} else {
				pt.Duration = d
			}
		case "target":
			if val != "replica" && val != "workers" {
				return fmt.Errorf("target: want \"replica\" or \"workers\", got %q", val)
			}
			pt.Target = val
		default:
			return fmt.Errorf("unknown partition setting %q", key)
		}
	}
	if !sawStart {
		return fmt.Errorf("partition requires start=")
	}
	if pt.Target == "" {
		return fmt.Errorf("partition requires target=")
	}
	return nil
}

func applyByzClauses(d *ByzDirective, body string) error {
	d.Prob = 1
	for _, field := range strings.Fields(body) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return fmt.Errorf("setting %q is not key=value", field)
		}
		switch key {
		case "frac", "prob":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 || f > 1 {
				return fmt.Errorf("%s: want fraction in (0,1], got %q", key, val)
			}
			if key == "frac" {
				d.Frac = f
			} else {
				d.Prob = f
			}
		default:
			return fmt.Errorf("unknown byzantine setting %q", key)
		}
	}
	if d.Frac == 0 {
		return fmt.Errorf("byzantine clause requires frac=")
	}
	return nil
}

func applyClauses(p *Profile, body string) error {
	for _, field := range strings.Fields(body) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return fmt.Errorf("setting %q is not key=value", field)
		}
		switch key {
		case "latency", "jitter":
			d, err := time.ParseDuration(val)
			if err != nil {
				return fmt.Errorf("%s: %v", key, err)
			}
			ms := float64(d) / float64(time.Millisecond)
			if key == "latency" {
				p.LatencyMs = ms
			} else {
				p.JitterMs = ms
			}
		case "bw":
			f, err := strconv.ParseFloat(strings.TrimSuffix(val, "KBps"), 64)
			if err != nil {
				return fmt.Errorf("bw: %v", err)
			}
			p.BandwidthKBps = f
		case "partial", "corrupt", "cut", "refuse":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return fmt.Errorf("%s: want probability in [0,1], got %q", key, val)
			}
			switch key {
			case "partial":
				p.PartialWrite = f
			case "corrupt":
				p.CorruptProb = f
			case "cut":
				p.CutProb = f
			case "refuse":
				p.RefuseProb = f
			}
		case "cut-every", "max-cuts", "refuse-every":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return fmt.Errorf("%s: want non-negative count, got %q", key, val)
			}
			switch key {
			case "cut-every":
				p.CutEvery = n
			case "max-cuts":
				p.MaxCuts = n
			case "refuse-every":
				p.RefuseEvery = n
			}
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return fmt.Errorf("seed: %v", err)
			}
			p.Seed = n
		default:
			return fmt.Errorf("unknown setting %q", key)
		}
	}
	return nil
}

func applyWaveClauses(w *Wave, body string) error {
	for _, field := range strings.Fields(body) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return fmt.Errorf("setting %q is not key=value", field)
		}
		switch key {
		case "frac":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 || f > 1 {
				return fmt.Errorf("frac: want fraction in (0,1], got %q", val)
			}
			w.Frac = f
		case "start", "spread", "replug-after":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return fmt.Errorf("%s: want non-negative duration, got %q", key, val)
			}
			switch key {
			case "start":
				w.Start = d
			case "spread":
				w.Spread = d
			case "replug-after":
				w.ReplugAfter = d
			}
		default:
			return fmt.Errorf("unknown wave setting %q", key)
		}
	}
	if w.Frac == 0 {
		return fmt.Errorf("wave requires frac=")
	}
	return nil
}
