package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseScenario builds a Plan from a compact fault-scenario DSL. One
// clause per line (or semicolon-separated), each targeting one phone or
// every phone:
//
//	# phone 3 drops every 2nd assignment mid-transfer, at most 4 times
//	phone 3: cut-every=2 max-cuts=4
//	# every link: 5 ms +/- 2 ms latency, 256 KB/s, 5% corrupted frames
//	phone *: latency=5ms jitter=2ms bw=256 corrupt=0.05
//	phone 1: refuse=0.3 refuse-every=2 seed=42
//
// Keys: latency, jitter (durations), bw (KB/s), partial, corrupt, cut,
// refuse (probabilities in [0,1]), cut-every, max-cuts, refuse-every
// (counts), seed (int64). Repeated clauses for the same phone merge
// key-wise; `phone *` sets the default profile used by phones without a
// specific entry.
func ParseScenario(src string) (*Plan, error) {
	pl := &Plan{PerPhone: map[int]Profile{}}
	lines := strings.FieldsFunc(src, func(r rune) bool { return r == '\n' || r == ';' })
	for _, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		head, body, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("faults: clause %q missing ':'", line)
		}
		target := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(head), "phone"))
		if strings.TrimSpace(head) == target {
			return nil, fmt.Errorf("faults: clause %q must start with 'phone'", line)
		}
		var prof *Profile
		wildcard := target == "*"
		var id int
		if wildcard {
			prof = &pl.Default
		} else {
			n, err := strconv.Atoi(target)
			if err != nil {
				return nil, fmt.Errorf("faults: bad phone id %q: %v", target, err)
			}
			id = n
			p := pl.PerPhone[id]
			prof = &p
		}
		if err := applyClauses(prof, body); err != nil {
			return nil, fmt.Errorf("faults: clause %q: %w", line, err)
		}
		if !wildcard {
			pl.PerPhone[id] = *prof
		}
	}
	return pl, nil
}

func applyClauses(p *Profile, body string) error {
	for _, field := range strings.Fields(body) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return fmt.Errorf("setting %q is not key=value", field)
		}
		switch key {
		case "latency", "jitter":
			d, err := time.ParseDuration(val)
			if err != nil {
				return fmt.Errorf("%s: %v", key, err)
			}
			ms := float64(d) / float64(time.Millisecond)
			if key == "latency" {
				p.LatencyMs = ms
			} else {
				p.JitterMs = ms
			}
		case "bw":
			f, err := strconv.ParseFloat(strings.TrimSuffix(val, "KBps"), 64)
			if err != nil {
				return fmt.Errorf("bw: %v", err)
			}
			p.BandwidthKBps = f
		case "partial", "corrupt", "cut", "refuse":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return fmt.Errorf("%s: want probability in [0,1], got %q", key, val)
			}
			switch key {
			case "partial":
				p.PartialWrite = f
			case "corrupt":
				p.CorruptProb = f
			case "cut":
				p.CutProb = f
			case "refuse":
				p.RefuseProb = f
			}
		case "cut-every", "max-cuts", "refuse-every":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return fmt.Errorf("%s: want non-negative count, got %q", key, val)
			}
			switch key {
			case "cut-every":
				p.CutEvery = n
			case "max-cuts":
				p.MaxCuts = n
			case "refuse-every":
				p.RefuseEvery = n
			}
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return fmt.Errorf("seed: %v", err)
			}
			p.Seed = n
		default:
			return fmt.Errorf("unknown setting %q", key)
		}
	}
	return nil
}
