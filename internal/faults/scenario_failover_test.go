package faults

import (
	"strings"
	"testing"
	"time"
)

func TestParseScenarioKillPrimary(t *testing.T) {
	pl, err := ParseScenario("kill-primary: at=1500ms resurrect=2s\nkill-primary: at=5s")
	if err != nil {
		t.Fatalf("ParseScenario: %v", err)
	}
	if len(pl.PrimaryKills) != 2 {
		t.Fatalf("got %d kills, want 2", len(pl.PrimaryKills))
	}
	if k := pl.PrimaryKills[0]; k.At != 1500*time.Millisecond || k.Resurrect != 2*time.Second {
		t.Errorf("kill[0] = %+v, want at=1.5s resurrect=2s", k)
	}
	if k := pl.PrimaryKills[1]; k.At != 5*time.Second || k.Resurrect != 0 {
		t.Errorf("kill[1] = %+v, want at=5s resurrect=0", k)
	}
}

func TestParseScenarioPartition(t *testing.T) {
	pl, err := ParseScenario("partition: start=4s duration=1s target=replica; partition: start=6s target=workers")
	if err != nil {
		t.Fatalf("ParseScenario: %v", err)
	}
	if len(pl.Partitions) != 2 {
		t.Fatalf("got %d partitions, want 2", len(pl.Partitions))
	}
	if p := pl.Partitions[0]; p.Start != 4*time.Second || p.Duration != time.Second || p.Target != "replica" {
		t.Errorf("partition[0] = %+v", p)
	}
	if p := pl.Partitions[1]; p.Start != 6*time.Second || p.Duration != 0 || p.Target != "workers" {
		t.Errorf("partition[1] = %+v", p)
	}
}

func TestParseScenarioFailoverErrors(t *testing.T) {
	cases := []struct{ src, token string }{
		{"kill-primary: resurrect=2s", "requires at="},
		{"kill-primary: at=-1s", "non-negative duration"},
		{"kill-primary: at=1s boom=2", "unknown kill-primary setting"},
		{"partition: duration=1s target=replica", "requires start="},
		{"partition: start=1s", "requires target="},
		{"partition: start=1s target=moon", `"replica" or "workers"`},
		{"partition: start=1s target=replica x=1", "unknown partition setting"},
	}
	for _, c := range cases {
		_, err := ParseScenario(c.src)
		if err == nil || !strings.Contains(err.Error(), c.token) {
			t.Errorf("ParseScenario(%q) error %v, want it to name %q", c.src, err, c.token)
		}
	}
}
