package faults

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
)

// Disk-fault event kinds, injected by FaultyWriter.
const (
	ShortWrite EventKind = "short-write" // only a prefix reached the writer
	WriteErr   EventKind = "write-err"   // the write failed before any byte
	SyncErr    EventKind = "sync-err"    // an fsync reported failure
)

// WriteProfile configures a FaultyWriter: seeded, reproducible disk
// faults, so a write-ahead log's failure handling can be exercised with
// the same determinism the connection wrappers give network faults. The
// zero value injects nothing.
type WriteProfile struct {
	// Seed drives the decision stream; the same seed and call sequence
	// replay the same faults.
	Seed int64
	// ShortProb is the per-write probability that only a prefix of the
	// buffer reaches the underlying writer and an error is returned
	// (a torn append).
	ShortProb float64
	// ErrProb is the per-write probability of failing outright with no
	// bytes written.
	ErrProb float64
	// SyncErrProb is the per-Sync probability of reporting failure
	// (the fsync-lied scenario; the underlying sync is skipped).
	SyncErrProb float64
	// MaxFaults bounds the total injected faults (0: unlimited), so a
	// scenario can be flaky at first and then settle down.
	MaxFaults int
}

// zero reports whether the profile injects nothing.
func (p WriteProfile) zero() bool { return p == WriteProfile{} }

// Injected disk-fault errors.
var (
	ErrInjectedWrite = fmt.Errorf("faults: write failed (injected)")
	ErrInjectedSync  = fmt.Errorf("faults: sync failed (injected)")
)

// FaultyWriter wraps an io.Writer (typically a WAL segment file) with
// the profile's disk faults. It implements Sync() error, delegating to
// the underlying writer when that writer has a Sync method, so it can
// stand between a log and its file wholesale.
type FaultyWriter struct {
	mu     sync.Mutex
	w      io.Writer
	p      WriteProfile
	rng    *rand.Rand
	writes int
	faults int
	rec    Recorder
}

// NewWriter builds a FaultyWriter over w.
func NewWriter(w io.Writer, p WriteProfile) *FaultyWriter {
	return &FaultyWriter{w: w, p: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// Events returns the disk faults injected so far (Phone is -1; Op is the
// write/sync ordinal).
func (fw *FaultyWriter) Events() []Event { return fw.rec.Events() }

// spend consumes one fault credit; false once MaxFaults is exhausted.
// Caller holds fw.mu.
func (fw *FaultyWriter) spend() bool {
	if fw.p.MaxFaults > 0 && fw.faults >= fw.p.MaxFaults {
		return false
	}
	fw.faults++
	return true
}

// Write forwards to the underlying writer, injecting outright failures
// and short writes per the profile.
func (fw *FaultyWriter) Write(b []byte) (int, error) {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	fw.writes++
	if fw.p.zero() {
		return fw.w.Write(b)
	}
	if fw.p.ErrProb > 0 && fw.rng.Float64() < fw.p.ErrProb && fw.spend() {
		fw.rec.add(Event{Phone: -1, Op: fw.writes, Kind: WriteErr})
		return 0, ErrInjectedWrite
	}
	if fw.p.ShortProb > 0 && len(b) > 1 && fw.rng.Float64() < fw.p.ShortProb && fw.spend() {
		fw.rec.add(Event{Phone: -1, Op: fw.writes, Kind: ShortWrite})
		n, err := fw.w.Write(b[:1+fw.rng.Intn(len(b)-1)])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("short write of %d/%d bytes: %w", n, len(b), ErrInjectedWrite)
	}
	return fw.w.Write(b)
}

// Sync injects sync failures per the profile and otherwise delegates to
// the underlying writer's Sync, if it has one.
func (fw *FaultyWriter) Sync() error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	fw.writes++
	if !fw.p.zero() && fw.p.SyncErrProb > 0 && fw.rng.Float64() < fw.p.SyncErrProb && fw.spend() {
		fw.rec.add(Event{Phone: -1, Op: fw.writes, Kind: SyncErr})
		return ErrInjectedSync
	}
	if s, ok := fw.w.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}
