package lp_test

import (
	"fmt"

	"cwc/internal/lp"
)

// Example solves a small production-planning LP.
func Example() {
	p := lp.NewProblem(lp.Maximize)
	x := p.AddVar("x")
	y := p.AddVar("y")
	if err := p.SetObjective(x, 3); err != nil {
		fmt.Println(err)
		return
	}
	if err := p.SetObjective(y, 5); err != nil {
		fmt.Println(err)
		return
	}
	for _, c := range []struct {
		terms []lp.Term
		rhs   float64
	}{
		{[]lp.Term{{Var: x, Coef: 1}}, 4},
		{[]lp.Term{{Var: y, Coef: 2}}, 12},
		{[]lp.Term{{Var: x, Coef: 3}, {Var: y, Coef: 2}}, 18},
	} {
		if err := p.AddConstraint(c.terms, lp.LE, c.rhs); err != nil {
			fmt.Println(err)
			return
		}
	}
	sol, err := p.Solve()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("optimum %.0f at (%.0f, %.0f)\n", sol.Objective, sol.X[x], sol.X[y])
	// Output:
	// optimum 36 at (2, 6)
}
