package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMaximizeTextbook(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> z = 36 at (2, 6).
	p := NewProblem(Maximize)
	x := p.AddVar("x")
	y := p.AddVar("y")
	mustObj(t, p, x, 3)
	mustObj(t, p, y, 5)
	mustCon(t, p, []Term{{x, 1}}, LE, 4)
	mustCon(t, p, []Term{{y, 2}}, LE, 12)
	mustCon(t, p, []Term{{x, 3}, {y, 2}}, LE, 18)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 36, 1e-6) {
		t.Errorf("objective = %v, want 36", sol.Objective)
	}
	if !approx(sol.X[x], 2, 1e-6) || !approx(sol.X[y], 6, 1e-6) {
		t.Errorf("solution = (%v, %v), want (2, 6)", sol.X[x], sol.X[y])
	}
}

func TestMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x >= 2 -> z = 20 at (10, 0).
	p := NewProblem(Minimize)
	x := p.AddVar("x")
	y := p.AddVar("y")
	mustObj(t, p, x, 2)
	mustObj(t, p, y, 3)
	mustCon(t, p, []Term{{x, 1}, {y, 1}}, GE, 10)
	mustCon(t, p, []Term{{x, 1}}, GE, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 20, 1e-6) {
		t.Errorf("objective = %v, want 20", sol.Objective)
	}
	if !approx(sol.X[x], 10, 1e-6) || !approx(sol.X[y], 0, 1e-6) {
		t.Errorf("solution = (%v, %v), want (10, 0)", sol.X[x], sol.X[y])
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + 2y s.t. x + y == 5, y >= 1 -> z = 6 at (4, 1).
	p := NewProblem(Minimize)
	x := p.AddVar("x")
	y := p.AddVar("y")
	mustObj(t, p, x, 1)
	mustObj(t, p, y, 2)
	mustCon(t, p, []Term{{x, 1}, {y, 1}}, EQ, 5)
	mustCon(t, p, []Term{{y, 1}}, GE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 6, 1e-6) {
		t.Errorf("objective = %v, want 6", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(Minimize)
	x := p.AddVar("x")
	mustObj(t, p, x, 1)
	mustCon(t, p, []Term{{x, 1}}, LE, 1)
	mustCon(t, p, []Term{{x, 1}}, GE, 2)
	if _, err := p.Solve(); err != ErrInfeasible {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x")
	y := p.AddVar("y")
	mustObj(t, p, x, 1)
	mustCon(t, p, []Term{{y, 1}}, LE, 1)
	if _, err := p.Solve(); err != ErrUnbounded {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestNoVariables(t *testing.T) {
	p := NewProblem(Minimize)
	if _, err := p.Solve(); err != ErrNoVariables {
		t.Errorf("err = %v, want ErrNoVariables", err)
	}
}

func TestBadVariableReferences(t *testing.T) {
	p := NewProblem(Minimize)
	if err := p.SetObjective(0, 1); err == nil {
		t.Error("objective on missing var should error")
	}
	x := p.AddVar("x")
	if err := p.AddConstraint([]Term{{x + 1, 1}}, LE, 1); err == nil {
		t.Error("constraint on missing var should error")
	}
	if err := p.AddConstraint([]Term{{-1, 1}}, LE, 1); err == nil {
		t.Error("constraint on negative var should error")
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -2  is  y - x >= 2. min y s.t. that and x >= 1 -> y = 3? No:
	// min y s.t. y >= x + 2, x >= 0 -> x = 0, y = 2.
	p := NewProblem(Minimize)
	x := p.AddVar("x")
	y := p.AddVar("y")
	mustObj(t, p, y, 1)
	mustCon(t, p, []Term{{x, 1}, {y, -1}}, LE, -2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 2, 1e-6) {
		t.Errorf("objective = %v, want 2", sol.Objective)
	}
	_ = x
}

func TestDuplicateTermsAreSummed(t *testing.T) {
	// 0.5x + 0.5x <= 3 -> x <= 3.
	p := NewProblem(Maximize)
	x := p.AddVar("x")
	mustObj(t, p, x, 1)
	mustCon(t, p, []Term{{x, 0.5}, {x, 0.5}}, LE, 3)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 3, 1e-6) {
		t.Errorf("objective = %v, want 3", sol.Objective)
	}
}

func TestDegenerateProblem(t *testing.T) {
	// A classic degenerate instance; must terminate and find z = 1.
	p := NewProblem(Maximize)
	x := p.AddVar("x")
	y := p.AddVar("y")
	mustObj(t, p, x, 1)
	mustCon(t, p, []Term{{x, 1}, {y, 1}}, LE, 1)
	mustCon(t, p, []Term{{x, 1}}, LE, 1)
	mustCon(t, p, []Term{{x, 1}, {y, 2}}, LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 1, 1e-6) {
		t.Errorf("objective = %v, want 1", sol.Objective)
	}
}

func TestRedundantEquality(t *testing.T) {
	// Two identical equalities produce a redundant row that phase 1 must
	// drop (driveOutArtificials row-deletion path).
	p := NewProblem(Minimize)
	x := p.AddVar("x")
	y := p.AddVar("y")
	mustObj(t, p, x, 1)
	mustObj(t, p, y, 1)
	mustCon(t, p, []Term{{x, 1}, {y, 1}}, EQ, 4)
	mustCon(t, p, []Term{{x, 1}, {y, 1}}, EQ, 4)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 4, 1e-6) {
		t.Errorf("objective = %v, want 4", sol.Objective)
	}
}

func TestIterationCap(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x")
	y := p.AddVar("y")
	mustObj(t, p, x, 3)
	mustObj(t, p, y, 5)
	mustCon(t, p, []Term{{x, 1}, {y, 1}}, LE, 10)
	p.SetIterationLimit(0)
	if _, err := p.Solve(); err != ErrIterationCap {
		t.Errorf("err = %v, want ErrIterationCap", err)
	}
}

func TestSolutionCountsIterations(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar("x")
	mustObj(t, p, x, 1)
	mustCon(t, p, []Term{{x, 1}}, LE, 5)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Iterations < 1 {
		t.Errorf("iterations = %d, want >= 1", sol.Iterations)
	}
}

// brute2D finds the optimum of a 2-variable LP with <= constraints by
// enumerating all vertices (pairwise constraint intersections plus axes).
func brute2D(cx, cy float64, cons [][3]float64, maximize bool) (float64, bool) {
	type pt struct{ x, y float64 }
	// Treat the axes x>=0, y>=0 as constraints -x <= 0, -y <= 0.
	all := append([][3]float64{{-1, 0, 0}, {0, -1, 0}}, cons...)
	var verts []pt
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			a1, b1, c1 := all[i][0], all[i][1], all[i][2]
			a2, b2, c2 := all[j][0], all[j][1], all[j][2]
			det := a1*b2 - a2*b1
			if math.Abs(det) < 1e-12 {
				continue
			}
			verts = append(verts, pt{(c1*b2 - c2*b1) / det, (a1*c2 - a2*c1) / det})
		}
	}
	best := math.Inf(-1)
	if !maximize {
		best = math.Inf(1)
	}
	found := false
	for _, v := range verts {
		feasible := v.x >= -1e-7 && v.y >= -1e-7
		for _, c := range all {
			if c[0]*v.x+c[1]*v.y > c[2]+1e-7 {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		z := cx*v.x + cy*v.y
		found = true
		if maximize && z > best {
			best = z
		}
		if !maximize && z < best {
			best = z
		}
	}
	return best, found
}

// Property: on random bounded 2-variable LPs the simplex matches vertex
// enumeration.
func TestSimplexMatchesBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed uint32) bool {
		r := rand.New(rand.NewSource(int64(seed) + rng.Int63()))
		nCons := 2 + r.Intn(4)
		cons := make([][3]float64, 0, nCons+2)
		// Always include a bounding box so the LP is bounded.
		bound := 1 + r.Float64()*20
		cons = append(cons, [3]float64{1, 0, bound}, [3]float64{0, 1, bound})
		for k := 0; k < nCons; k++ {
			cons = append(cons, [3]float64{
				r.Float64()*4 - 1,
				r.Float64()*4 - 1,
				r.Float64() * 10,
			})
		}
		cx, cy := r.Float64()*10, r.Float64()*10

		p := NewProblem(Maximize)
		x := p.AddVar("x")
		y := p.AddVar("y")
		if err := p.SetObjective(x, cx); err != nil {
			return false
		}
		if err := p.SetObjective(y, cy); err != nil {
			return false
		}
		for _, c := range cons {
			if err := p.AddConstraint([]Term{{x, c[0]}, {y, c[1]}}, LE, c[2]); err != nil {
				return false
			}
		}
		want, feasible := brute2D(cx, cy, cons, true)
		sol, err := p.Solve()
		if err == ErrInfeasible {
			return !feasible
		}
		if err != nil {
			return false
		}
		if !feasible {
			return false
		}
		return approx(sol.Objective, want, 1e-5*(1+math.Abs(want)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the reported X always satisfies every constraint and
// non-negativity, whenever Solve succeeds.
func TestSolutionFeasibilityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed uint32) bool {
		r := rand.New(rand.NewSource(int64(seed) ^ rng.Int63()))
		nVars := 1 + r.Intn(5)
		nCons := 1 + r.Intn(6)
		p := NewProblem(Minimize)
		vars := make([]int, nVars)
		for i := range vars {
			vars[i] = p.AddVar("v")
			if err := p.SetObjective(vars[i], r.Float64()*5); err != nil {
				return false
			}
		}
		type con struct {
			terms []Term
			rel   Rel
			rhs   float64
		}
		var cs []con
		for k := 0; k < nCons; k++ {
			terms := make([]Term, nVars)
			for i, v := range vars {
				terms[i] = Term{v, r.Float64()*2 + 0.1}
			}
			rel := []Rel{LE, GE, EQ}[r.Intn(3)]
			rhs := r.Float64() * 10
			cs = append(cs, con{terms, rel, rhs})
			if err := p.AddConstraint(terms, rel, rhs); err != nil {
				return false
			}
		}
		sol, err := p.Solve()
		if err != nil {
			// Infeasible/unbounded are acceptable outcomes here.
			return err == ErrInfeasible || err == ErrUnbounded
		}
		for _, x := range sol.X {
			if x < -1e-7 {
				return false
			}
		}
		for _, c := range cs {
			lhs := 0.0
			for _, tm := range c.terms {
				lhs += tm.Coef * sol.X[tm.Var]
			}
			switch c.rel {
			case LE:
				if lhs > c.rhs+1e-6 {
					return false
				}
			case GE:
				if lhs < c.rhs-1e-6 {
					return false
				}
			case EQ:
				if math.Abs(lhs-c.rhs) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRelString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Error("Rel strings wrong")
	}
	if Rel(99).String() != "?" {
		t.Error("unknown Rel should print ?")
	}
}

func TestLargeMakespanShapedLP(t *testing.T) {
	// A CWC-shaped instance: 12 phones x 60 jobs. min T s.t.
	// sum_j w_ij l_ij <= T, sum_i l_ij = L_j.
	rng := rand.New(rand.NewSource(3))
	phones, jobs := 12, 60
	p := NewProblem(Minimize)
	T := p.AddVar("T")
	mustObj(t, p, T, 1)
	l := make([][]int, phones)
	w := make([][]float64, phones)
	for i := range l {
		l[i] = make([]int, jobs)
		w[i] = make([]float64, jobs)
		for j := range l[i] {
			l[i][j] = p.AddVar("l")
			w[i][j] = 1 + rng.Float64()*70
		}
	}
	for i := 0; i < phones; i++ {
		terms := make([]Term, 0, jobs+1)
		for j := 0; j < jobs; j++ {
			terms = append(terms, Term{l[i][j], w[i][j]})
		}
		terms = append(terms, Term{T, -1})
		mustCon(t, p, terms, LE, 0)
	}
	for j := 0; j < jobs; j++ {
		terms := make([]Term, 0, phones)
		for i := 0; i < phones; i++ {
			terms = append(terms, Term{l[i][j], 1})
		}
		mustCon(t, p, terms, EQ, 100)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective <= 0 {
		t.Errorf("makespan bound = %v, want positive", sol.Objective)
	}
	// Sanity: the bound cannot beat the perfectly balanced best-rate bound.
	bestRate := 0.0
	for j := 0; j < jobs; j++ {
		minW := math.Inf(1)
		for i := 0; i < phones; i++ {
			if w[i][j] < minW {
				minW = w[i][j]
			}
		}
		bestRate += 100 * minW
	}
	if sol.Objective > bestRate {
		t.Errorf("bound %v exceeds single-best-phone total %v", sol.Objective, bestRate)
	}
}

func mustObj(t *testing.T, p *Problem, v int, c float64) {
	t.Helper()
	if err := p.SetObjective(v, c); err != nil {
		t.Fatal(err)
	}
}

func mustCon(t *testing.T, p *Problem, terms []Term, rel Rel, rhs float64) {
	t.Helper()
	if err := p.AddConstraint(terms, rel, rhs); err != nil {
		t.Fatal(err)
	}
}

func TestProblemCounters(t *testing.T) {
	p := NewProblem(Minimize)
	if p.NumVars() != 0 || p.NumConstraints() != 0 {
		t.Error("fresh problem should be empty")
	}
	x := p.AddVar("x")
	mustCon(t, p, []Term{{x, 1}}, GE, 1)
	if p.NumVars() != 1 || p.NumConstraints() != 1 {
		t.Errorf("counts = %d vars, %d cons", p.NumVars(), p.NumConstraints())
	}
}
