package lp

import (
	"math/rand"
	"testing"
)

// benchMakespanLP builds a CWC-shaped reduced relaxation.
func benchMakespanLP(phones, jobs int) *Problem {
	rng := rand.New(rand.NewSource(7))
	p := NewProblem(Minimize)
	T := p.AddVar("T")
	_ = p.SetObjective(T, 1)
	l := make([][]int, phones)
	for i := range l {
		l[i] = make([]int, jobs)
		for j := range l[i] {
			l[i][j] = p.AddVar("l")
		}
	}
	for i := 0; i < phones; i++ {
		terms := make([]Term, 0, jobs+1)
		for j := 0; j < jobs; j++ {
			terms = append(terms, Term{l[i][j], 1 + rng.Float64()*70})
		}
		terms = append(terms, Term{T, -1})
		_ = p.AddConstraint(terms, LE, 0)
	}
	for j := 0; j < jobs; j++ {
		terms := make([]Term, 0, phones)
		for i := 0; i < phones; i++ {
			terms = append(terms, Term{l[i][j], 1})
		}
		_ = p.AddConstraint(terms, EQ, 100+rng.Float64()*1000)
	}
	return p
}

func BenchmarkSimplexSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchMakespanLP(6, 30).Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplexPaperSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchMakespanLP(18, 150).Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
