// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	min/max  c·x
//	s.t.     a_k·x (<= | = | >=) b_k   for every constraint k
//	         x >= 0
//
// It exists to reproduce the paper's Figure 13: the makespan scheduling
// program SCH is relaxed to an LP whose optimum is a lower bound on the
// optimal makespan (T_relaxed <= T_optimal <= T_cwc). The solver is a
// straightforward tableau implementation with Dantzig pricing and a switch
// to Bland's rule under degeneracy, adequate for the few-thousand-variable
// instances the experiments generate.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense selects the optimization direction.
type Sense int

// Optimization directions.
const (
	Minimize Sense = iota
	Maximize
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // a·x <= b
	GE            // a·x >= b
	EQ            // a·x == b
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Solver failure modes.
var (
	ErrInfeasible    = errors.New("lp: problem is infeasible")
	ErrUnbounded     = errors.New("lp: problem is unbounded")
	ErrIterationCap  = errors.New("lp: iteration limit exceeded")
	ErrNoVariables   = errors.New("lp: problem has no variables")
	ErrBadConstraint = errors.New("lp: constraint references unknown variable")
)

// Term is one coefficient of a linear expression: Coef * x[Var].
type Term struct {
	Var  int
	Coef float64
}

type constraint struct {
	terms []Term
	rel   Rel
	rhs   float64
}

// Problem accumulates variables, an objective and constraints, then solves.
// All variables are implicitly non-negative.
type Problem struct {
	sense   Sense
	names   []string
	obj     []float64
	cons    []constraint
	maxIter int
}

// NewProblem returns an empty problem with the given optimization sense.
func NewProblem(sense Sense) *Problem {
	return &Problem{sense: sense, maxIter: 500000}
}

// SetIterationLimit overrides the default simplex iteration cap.
func (p *Problem) SetIterationLimit(n int) { p.maxIter = n }

// AddVar adds a non-negative variable and returns its index. The name is
// used only in diagnostics.
func (p *Problem) AddVar(name string) int {
	p.names = append(p.names, name)
	p.obj = append(p.obj, 0)
	return len(p.names) - 1
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.names) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// SetObjective sets the objective coefficient of variable v.
func (p *Problem) SetObjective(v int, coef float64) error {
	if v < 0 || v >= len(p.obj) {
		return fmt.Errorf("lp: objective references unknown variable %d", v)
	}
	p.obj[v] = coef
	return nil
}

// AddConstraint appends the constraint terms rel rhs. Terms referencing the
// same variable are summed.
func (p *Problem) AddConstraint(terms []Term, rel Rel, rhs float64) error {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(p.names) {
			return fmt.Errorf("%w: %d", ErrBadConstraint, t.Var)
		}
	}
	own := append([]Term(nil), terms...)
	p.cons = append(p.cons, constraint{terms: own, rel: rel, rhs: rhs})
	return nil
}

// Solution holds the optimum of a solved problem.
type Solution struct {
	Objective  float64   // optimal objective value, in the problem's sense
	X          []float64 // optimal variable values
	Iterations int       // total simplex pivots over both phases
}

const eps = 1e-9

// Solve runs two-phase simplex and returns the optimum.
func (p *Problem) Solve() (*Solution, error) {
	if len(p.names) == 0 {
		return nil, ErrNoVariables
	}
	t := newTableau(p)
	iters := 0

	// Phase 1: minimize the sum of artificial variables.
	if t.nArtificial > 0 {
		t.setPhase1Costs()
		n, err := t.iterate(p.maxIter - iters)
		iters += n
		if err != nil {
			return nil, err
		}
		if t.objectiveValue() > 1e-7 {
			return nil, ErrInfeasible
		}
		t.driveOutArtificials()
	}

	// Phase 2: the real objective (converted to minimization).
	t.setPhase2Costs(p)
	n, err := t.iterate(p.maxIter - iters)
	iters += n
	if err != nil {
		return nil, err
	}

	x := make([]float64, len(p.names))
	for i, bv := range t.basis {
		if bv < len(p.names) {
			x[bv] = t.rhs(i)
		}
	}
	obj := 0.0
	for v, c := range p.obj {
		obj += c * x[v]
	}
	return &Solution{Objective: obj, X: x, Iterations: iters}, nil
}

// tableau is the dense simplex tableau: m constraint rows over
// (nTotal + 1) columns, the last column being the RHS, plus a maintained
// objective row.
type tableau struct {
	m           int // live constraint rows
	nTotal      int // structural + slack/surplus + artificial columns
	nStruct     int
	nArtificial int
	artStart    int // first artificial column index
	rows        [][]float64
	objRow      []float64
	basis       []int
	blocked     map[int]bool // columns barred from entering (retired artificials)
}

func newTableau(p *Problem) *tableau {
	nStruct := len(p.names)
	nSlack := 0
	nArt := 0
	for _, c := range p.cons {
		rel, rhs := c.rel, c.rhs
		if rhs < 0 { // normalization flips the relation
			rel = flip(rel)
		}
		switch rel {
		case LE:
			nSlack++
		case GE:
			nSlack++ // surplus
			nArt++
		case EQ:
			nArt++
		}
	}
	t := &tableau{
		m:           len(p.cons),
		nStruct:     nStruct,
		nArtificial: nArt,
		artStart:    nStruct + nSlack,
		nTotal:      nStruct + nSlack + nArt,
		blocked:     map[int]bool{},
	}
	t.rows = make([][]float64, t.m)
	t.basis = make([]int, t.m)
	slackCol := nStruct
	artCol := t.artStart
	for i, c := range p.cons {
		row := make([]float64, t.nTotal+1)
		for _, term := range c.terms {
			row[term.Var] += term.Coef
		}
		rel, rhs := c.rel, c.rhs
		if rhs < 0 {
			for j := 0; j < nStruct; j++ {
				row[j] = -row[j]
			}
			rhs = -rhs
			rel = flip(rel)
		}
		row[t.nTotal] = rhs
		switch rel {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1 // surplus
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.rows[i] = row
	}
	return t
}

func flip(r Rel) Rel {
	switch r {
	case LE:
		return GE
	case GE:
		return LE
	}
	return EQ
}

func (t *tableau) rhs(i int) float64 { return t.rows[i][t.nTotal] }

// objectiveValue returns the current (minimization) objective value.
func (t *tableau) objectiveValue() float64 { return -t.objRow[t.nTotal] }

// setCosts installs the minimization cost vector cc and recomputes the
// reduced-cost objective row r_j = c_j - z_j for the current basis.
func (t *tableau) setCosts(cc []float64) {
	t.objRow = make([]float64, t.nTotal+1)
	copy(t.objRow, cc)
	// Subtract c_B * B^-1 * A, which for a proper tableau is a pass over
	// the basic rows.
	for i, bv := range t.basis {
		cb := cc[bv]
		if cb == 0 {
			continue
		}
		row := t.rows[i]
		for j := 0; j <= t.nTotal; j++ {
			t.objRow[j] -= cb * row[j]
		}
	}
}

func (t *tableau) setPhase1Costs() {
	cc := make([]float64, t.nTotal+1)
	for j := t.artStart; j < t.nTotal; j++ {
		cc[j] = 1
	}
	t.setCosts(cc)
}

func (t *tableau) setPhase2Costs(p *Problem) {
	cc := make([]float64, t.nTotal+1)
	for v, c := range p.obj {
		if p.sense == Maximize {
			cc[v] = -c
		} else {
			cc[v] = c
		}
	}
	// Artificials must never re-enter.
	for j := t.artStart; j < t.nTotal; j++ {
		t.blocked[j] = true
	}
	t.setCosts(cc)
}

// iterate pivots until optimality, returning the pivot count.
func (t *tableau) iterate(maxIter int) (int, error) {
	const blandAfter = 20000
	for iter := 0; ; iter++ {
		if iter >= maxIter {
			return iter, ErrIterationCap
		}
		col := t.chooseEntering(iter >= blandAfter)
		if col < 0 {
			return iter, nil // optimal
		}
		row := t.chooseLeaving(col)
		if row < 0 {
			return iter, ErrUnbounded
		}
		t.pivot(row, col)
	}
}

// chooseEntering picks the entering column: Dantzig's most-negative reduced
// cost, or Bland's smallest-index rule when bland is set. Returns -1 at
// optimality.
func (t *tableau) chooseEntering(bland bool) int {
	best := -1
	bestVal := -eps
	for j := 0; j < t.nTotal; j++ {
		if t.blocked[j] {
			continue
		}
		r := t.objRow[j]
		if r < -eps {
			if bland {
				return j
			}
			if r < bestVal {
				bestVal = r
				best = j
			}
		}
	}
	return best
}

// chooseLeaving runs the minimum ratio test for the entering column,
// breaking ties by the smallest basis variable index (Bland-compatible).
// Returns -1 when the column is unbounded.
func (t *tableau) chooseLeaving(col int) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.m; i++ {
		a := t.rows[i][col]
		if a <= eps {
			continue
		}
		ratio := t.rhs(i) / a
		if ratio < bestRatio-eps ||
			(math.Abs(ratio-bestRatio) <= eps && (best < 0 || t.basis[i] < t.basis[best])) {
			bestRatio = ratio
			best = i
		}
	}
	return best
}

func (t *tableau) pivot(prow, pcol int) {
	prowData := t.rows[prow]
	pivot := prowData[pcol]
	inv := 1 / pivot
	for j := 0; j <= t.nTotal; j++ {
		prowData[j] *= inv
	}
	prowData[pcol] = 1 // kill rounding residue
	for i := 0; i < t.m; i++ {
		if i == prow {
			continue
		}
		row := t.rows[i]
		f := row[pcol]
		if f == 0 {
			continue
		}
		for j := 0; j <= t.nTotal; j++ {
			row[j] -= f * prowData[j]
		}
		row[pcol] = 0
	}
	f := t.objRow[pcol]
	if f != 0 {
		for j := 0; j <= t.nTotal; j++ {
			t.objRow[j] -= f * prowData[j]
		}
		t.objRow[pcol] = 0
	}
	t.basis[prow] = pcol
}

// driveOutArtificials removes artificial variables left basic at zero after
// phase 1, pivoting them out where possible and deleting genuinely
// redundant rows otherwise.
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		// Basic artificial (necessarily at ~0 after a feasible phase 1):
		// pivot in any eligible non-artificial column.
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.rows[i][j]) > 1e-7 {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Row is redundant; drop it.
			t.rows = append(t.rows[:i], t.rows[i+1:]...)
			t.basis = append(t.basis[:i], t.basis[i+1:]...)
			t.m--
			i--
		}
	}
}
