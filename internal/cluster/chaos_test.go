package cluster

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"cwc/internal/faults"
	"cwc/internal/tasks"
	"cwc/internal/worker"
)

// runToCompletion drives scheduling rounds until every job has a result,
// tolerating transient round errors (e.g. the whole fleet mid-reconnect).
func runToCompletion(t *testing.T, c *Cluster, ids []int, budget time.Duration) map[int][]byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	deadline := time.Now().Add(budget)
	results := map[int][]byte{}
	for len(results) < len(ids) && time.Now().Before(deadline) {
		if _, err := c.Master.RunRound(ctx); err != nil {
			time.Sleep(50 * time.Millisecond)
		}
		for _, id := range ids {
			if _, ok := results[id]; ok {
				continue
			}
			if got, ok := c.Master.Result(id); ok {
				results[id] = got
			}
		}
	}
	if len(results) < len(ids) {
		t.Fatalf("only %d of %d jobs completed (dead letters: %+v, offline: %+v)",
			len(results), len(ids), c.Master.DeadLetters(), c.Master.OfflineFailures())
	}
	return results
}

// The acceptance scenario for the hardened dispatch path: a worker whose
// connection is cut mid-assignment reconnects with backoff under its
// prior identity, the in-flight work survives (the executing task's
// report is replayed after the rejoin, or the re-queued partition is
// re-dispatched), and the job completes correctly.
func TestClusterWorkerReconnectsAfterMidAssignmentCut(t *testing.T) {
	phones := DefaultPhones()[:2]
	// Deterministic scenario: each phone's first connection dies abruptly
	// mid-frame on its 6th write — after registration, while the real
	// partition is executing (keepalive pongs keep the write ordinal
	// advancing during execution).
	plan := &faults.Plan{Seed: 1, PerPhone: map[int]faults.Profile{
		0: {Seed: 11, CutEvery: 6, MaxCuts: 1},
		1: {Seed: 12, CutEvery: 6, MaxCuts: 1},
	}}
	opts := Options{
		Phones:     phones,
		DelayPerKB: 15 * time.Millisecond,
		Faults:     plan,
		Reconnect: worker.ReconnectPolicy{
			BaseDelay:   20 * time.Millisecond,
			MaxDelay:    200 * time.Millisecond,
			MaxAttempts: -1,
			Seed:        3,
		},
	}
	opts.Server.KeepalivePeriod = 100 * time.Millisecond
	opts.Server.KeepaliveTolerance = 3
	c := startCluster(t, opts)

	rng := rand.New(rand.NewSource(31))
	input := tasks.GenIntegers(128, 100000, rng)
	var ck tasks.Checkpoint
	want, err := (tasks.PrimeCount{}).Process(context.Background(), input, &ck)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Master.Submit(tasks.PrimeCount{}, input, false)
	if err != nil {
		t.Fatal(err)
	}
	results := runToCompletion(t, c, []int{id}, 90*time.Second)
	if string(results[id]) != string(want) {
		t.Errorf("result after cuts %s != local %s", results[id], want)
	}
	if cuts := plan.Recorder().Count(faults.Cut); cuts < 1 {
		t.Errorf("no connection cut was injected (events: %+v)", plan.Recorder().Events())
	}
	// Every reconnection reused its prior identity: no ghost registrations.
	if got := len(c.Master.Phones()); got != len(phones) {
		t.Errorf("fleet has %d identities after reconnects, want %d: %+v",
			got, len(phones), c.Master.Phones())
	}
}

// The chaos soak: a full multi-job, multi-round workload over loopback
// TCP with randomized-but-seeded faults on every link — latency, partial
// writes, corrupted frames, mid-frame cuts, refused dials — must produce
// aggregates byte-identical to a fault-free run, and the same seed must
// derive the same fault plan.
func TestChaosSoakByteIdenticalAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}

	// Same seed, same plan: the fault scenario is an input, not an accident.
	plan := faults.NewPlan(99, 6)
	if replay := faults.NewPlan(99, 6); !reflect.DeepEqual(plan.PerPhone, replay.PerPhone) {
		t.Fatal("fault plans from the same seed differ")
	}

	rng := rand.New(rand.NewSource(77))
	type job struct {
		task   tasks.Task
		input  []byte
		want   []byte
		atomic bool
	}
	jobs := []job{
		{task: tasks.PrimeCount{}, input: tasks.GenIntegers(96, 100000, rng)},
		{task: tasks.WordCount{Word: "sale"}, input: tasks.GenText(64, rng)},
		{task: tasks.MaxInt{}, input: tasks.GenIntegers(48, 1000000, rng)},
	}
	for i := range jobs {
		var ck tasks.Checkpoint
		want, err := jobs[i].task.Process(context.Background(), jobs[i].input, &ck)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i].want = want
	}

	run := func(name string, pl *faults.Plan) map[int][]byte {
		opts := Options{
			Phones:     DefaultPhones(),
			DelayPerKB: 4 * time.Millisecond,
		}
		if pl != nil {
			opts.Faults = pl
			opts.Reconnect = worker.ReconnectPolicy{
				BaseDelay:        20 * time.Millisecond,
				MaxDelay:         250 * time.Millisecond,
				MaxAttempts:      -1,
				HandshakeTimeout: 2 * time.Second,
				Seed:             5,
			}
			// Fast keepalives generate write traffic (more fault triggers)
			// and quick offline detection; a generous retry budget keeps a
			// very unlucky partition from dead-lettering mid-soak.
			opts.Server.KeepalivePeriod = 150 * time.Millisecond
			opts.Server.KeepaliveTolerance = 3
			opts.Server.DeadlineFloor = 2 * time.Second
			opts.Server.MaxItemRetries = 50
		}
		c := startCluster(t, opts)
		var ids []int
		for _, j := range jobs {
			id, err := c.Master.Submit(j.task, j.input, j.atomic)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		results := runToCompletion(t, c, ids, 120*time.Second)
		c.Stop()
		t.Logf("%s run: %d jobs done", name, len(results))
		return results
	}

	clean := run("fault-free", nil)
	chaotic := run("chaos", plan)

	for i, j := range jobs {
		id := i + 1 // job IDs are assigned sequentially from 1
		if string(clean[id]) != string(j.want) {
			t.Errorf("job %d: fault-free result %q != local %q", id, clean[id], j.want)
		}
		if string(chaotic[id]) != string(clean[id]) {
			t.Errorf("job %d: chaos aggregate %q != fault-free aggregate %q",
				id, chaotic[id], clean[id])
		}
	}
	if events := plan.Recorder().Events(); len(events) == 0 {
		t.Error("the chaos run injected no faults at all")
	} else {
		counts := map[faults.EventKind]int{}
		for _, e := range events {
			counts[e.Kind]++
		}
		t.Logf("injected faults: %v", counts)
	}
}
