package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"cwc/internal/faults"
	"cwc/internal/obs"
	"cwc/internal/replica"
	"cwc/internal/server"
	"cwc/internal/tasks"
	"cwc/internal/wal"
	"cwc/internal/worker"
)

// saveArtifact writes a postmortem file into $CWC_ARTIFACT_DIR so CI can
// upload it alongside check.log. A no-op when the variable is unset
// (local runs).
func saveArtifact(t *testing.T, name string, data []byte) {
	t.Helper()
	dir := os.Getenv("CWC_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir %s: %v", dir, err)
		return
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Logf("artifact %s: %v", path, err)
		return
	}
	t.Logf("saved artifact %s", path)
}

// traceJSONL renders a tracer's ring as JSONL for artifact upload.
func traceJSONL(tr *obs.Tracer) []byte {
	var out []byte
	for _, ev := range tr.Recent(100000) {
		line, err := json.Marshal(ev)
		if err != nil {
			continue
		}
		out = append(out, line...)
		out = append(out, '\n')
	}
	return out
}

// timelineSettled reports whether every partition visible in the span
// has both its master-side fold and a worker-side exec_finish event —
// i.e. the final telemetry batches shipped after the last reports have
// landed and the timeline is complete on both process sides.
func timelineSettled(tr *obs.Tracer, span string) bool {
	seen := map[int]bool{}
	finished := map[int]bool{}
	mastered := map[int]bool{}
	for _, ev := range tr.Span(span) {
		switch ev.Kind {
		case obs.KindSubmit, obs.KindRound, obs.KindAggregate, obs.KindPromote:
			continue // job-level milestones, not partition rows
		}
		seen[ev.Partition] = true
		if ev.Src == "worker" {
			if ev.Kind == "exec_finish" {
				finished[ev.Partition] = true
			}
		} else {
			mastered[ev.Partition] = true
		}
	}
	if len(seen) == 0 {
		return false
	}
	for p := range seen {
		if !finished[p] || !mastered[p] {
			return false
		}
	}
	return true
}

// The obs-chaos acceptance scenario: a replicated pair runs a seeded
// workload slow enough that every partition is mid-execution when the
// primary is scripted to die. The standby promotes; the workers rotate
// over, re-ship their buffered epoch-1 span events to the new regime and
// finish the work under epoch 2. Every partition's /debug/timeline must
// then hold BOTH process sides — master dispatch events and
// worker-minted telemetry — in causal order across the promotion, the
// timeline must show both epochs, and not one worker event may be an
// orphan (a span the master cannot anchor).
func TestObsChaosTimelineAcrossFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("obs-chaos e2e skipped in -short mode")
	}
	plan, err := faults.ParseScenario("kill-primary: at=300ms resurrect=0s")
	if err != nil {
		t.Fatal(err)
	}
	killAt := plan.PrimaryKills[0].At
	const lease = 500 * time.Millisecond

	// Primary: WAL + replication + full obs, so workers buffer telemetry
	// from their very first welcome.
	pwl, err := wal.Open(filepath.Join(t.TempDir(), "primary-wal"), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	ship := replica.NewShipper(replica.ShipperOptions{})
	preg := obs.NewRegistry()
	ptracer := obs.NewTracer(8192)
	m1 := server.New(server.Config{
		Addr: "127.0.0.1:0", WAL: pwl, ReplicaSink: ship,
		Role: "primary", Metrics: preg, Tracer: ptracer, ObsAddr: "127.0.0.1:0",
	})
	ship.BindMaster(m1)
	if err := m1.RecoverWAL(); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.BumpEpoch(); err != nil {
		t.Fatal(err)
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ship.Serve(rln)
	if err := m1.Start(); err != nil {
		t.Fatal(err)
	}

	tln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sreg := obs.NewRegistry()
	stracer := obs.NewTracer(8192)
	st := replica.New(replica.StandbyOptions{
		PrimaryAddr: rln.Addr().String(),
		WALDir:      filepath.Join(t.TempDir(), "standby-wal"),
		WALOptions:  wal.Options{Sync: wal.SyncNone},
		Lease:       lease,
		MasterConfig: server.Config{
			Listener: tln, Addr: tln.Addr().String(), Metrics: sreg,
			Tracer: stracer, ObsAddr: "127.0.0.1:0",
		},
		Metrics: sreg,
	})
	stCtx, stCancel := context.WithCancel(context.Background())
	defer stCancel()
	stDone := make(chan error, 1)
	go func() { stDone <- st.Run(stCtx) }()

	// On failure, ship the promoted master's trace ring to CI.
	t.Cleanup(func() {
		if t.Failed() {
			saveArtifact(t, "obschaos-timeline-trace.jsonl", traceJSONL(stracer))
		}
	})

	failoverAddrs := m1.Addr() + "," + tln.Addr().String()
	runCtx, runCancel := context.WithCancel(context.Background())
	defer runCancel()
	const fleet = 3
	for i := 0; i < fleet; i++ {
		w, err := worker.New(worker.Config{
			ServerAddr: failoverAddrs,
			Model:      fmt.Sprintf("chaos-phone-%d", i),
			CPUMHz:     900,
			RAMMB:      512,
			// ~25ms/KB over ~32KB partitions: every partition takes
			// ~800ms, so all of them are provably mid-flight at the
			// 300ms kill and their epoch-1 worker events are still
			// buffered (nothing shipped yet: no result, no pong).
			DelayPerKB: 25 * time.Millisecond,
			Reconnect: worker.ReconnectPolicy{
				BaseDelay:   20 * time.Millisecond,
				MaxDelay:    150 * time.Millisecond,
				MaxAttempts: -1,
				Seed:        int64(71 + i),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = w.Run(runCtx) }()
	}
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer waitCancel()
	if err := m1.WaitForPhones(waitCtx, fleet); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(29))
	input := tasks.GenIntegers(96, 100000, rng)
	var ck tasks.Checkpoint
	want, err := (tasks.PrimeCount{}).Process(context.Background(), input, &ck)
	if err != nil {
		t.Fatal(err)
	}
	id, err := m1.Submit(tasks.PrimeCount{}, input, false)
	if err != nil {
		t.Fatal(err)
	}

	killed := make(chan struct{})
	driverDone := make(chan struct{})
	go func() {
		defer close(driverDone)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for {
			select {
			case <-killed:
				return
			default:
			}
			if _, err := m1.RunRound(ctx); err != nil {
				select {
				case <-killed:
					return
				case <-time.After(20 * time.Millisecond):
				}
			}
		}
	}()
	time.Sleep(killAt)
	m1.Kill()
	close(killed)
	<-driverDone
	ship.Close()
	_ = pwl.Close()

	select {
	case <-st.Promoted():
	case err := <-stDone:
		t.Fatalf("standby exited instead of promoting: %v", err)
	case <-time.After(10 * lease):
		t.Fatal("standby did not promote")
	}
	m2 := st.Master()
	defer func() {
		m2.Close()
		st.Log().Close()
	}()

	results := driveToCompletion(t, m2, []int{id}, 60*time.Second)
	if string(results[id]) != string(want) {
		t.Errorf("aggregate across failover = %s, want %s", results[id], want)
	}

	// Give the final telemetry batches (shipped right after the last
	// result reports) a moment to fold into the promoted master's ring.
	span := fmt.Sprintf("j%d", id)
	deadline := time.Now().Add(5 * time.Second)
	for !timelineSettled(stracer, span) && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}

	body, code := httpGet(t, "http://"+m2.ObsAddr()+"/debug/timeline?job="+fmt.Sprint(id))
	if code != 200 {
		t.Fatalf("/debug/timeline status %d: %s", code, body)
	}
	t.Cleanup(func() {
		if t.Failed() {
			saveArtifact(t, "obschaos-timeline.json", body)
		}
	})
	var tl server.Timeline
	if err := json.Unmarshal(body, &tl); err != nil {
		t.Fatalf("/debug/timeline is not JSON: %v\n%s", err, body)
	}
	if tl.Span != span {
		t.Errorf("timeline span = %q, want %q", tl.Span, span)
	}
	if len(tl.Partitions) == 0 {
		t.Fatalf("timeline has no partitions:\n%s", body)
	}

	// The promotion boundary is visible: events from both regimes.
	epochs := map[int64]bool{}
	for _, e := range tl.Epochs {
		epochs[e] = true
	}
	if !epochs[1] || !epochs[2] {
		t.Errorf("timeline epochs = %v, want both 1 (buffered pre-kill worker events) and 2", tl.Epochs)
	}

	// Every partition: both process sides, in causal order.
	for _, part := range tl.Partitions {
		var sawMaster, sawWorker bool
		var assignTS, execStartTS, execFinishTS time.Time
		for _, ev := range part.Events {
			if ev.Src == "worker" {
				sawWorker = true
			} else {
				sawMaster = true
			}
			switch ev.Kind {
			case obs.KindAssign:
				if assignTS.IsZero() {
					assignTS = ev.TS
				}
			case "exec_start":
				if execStartTS.IsZero() {
					execStartTS = ev.TS
				}
			case "exec_finish":
				execFinishTS = ev.TS
			}
		}
		if !sawMaster || !sawWorker {
			t.Errorf("partition %d timeline is one-sided (master=%v worker=%v): %+v",
				part.Partition, sawMaster, sawWorker, part.Events)
		}
		if execStartTS.IsZero() || execFinishTS.IsZero() {
			t.Errorf("partition %d has no exec_start/exec_finish worker events", part.Partition)
			continue
		}
		if execFinishTS.Before(execStartTS) {
			t.Errorf("partition %d: exec_finish %v precedes exec_start %v",
				part.Partition, execFinishTS, execStartTS)
		}
		if !assignTS.IsZero() && execFinishTS.Before(assignTS) {
			t.Errorf("partition %d: exec_finish %v precedes the first assign %v",
				part.Partition, execFinishTS, assignTS)
		}
	}

	// No orphan spans: every worker event anchored to a job the promoted
	// master knows.
	if got := sreg.Counter("cwc_telemetry_orphan_spans_total").Value(); got != 0 {
		t.Errorf("promoted master counted %d orphan worker spans, want 0", got)
	}
	if got := sreg.Counter("cwc_frames_received_total", "type", "telemetry").Value(); got < 1 {
		t.Errorf("promoted master received %d telemetry frames, want >= 1", got)
	}
}

// The black-box half of the obs-chaos gate: a real cwc-server process,
// SIGQUIT'd, must leave a parseable JSONL flight-recorder dump behind
// and exit with the conventional 128+SIGQUIT status.
func TestObsChaosBlackboxSIGQUIT(t *testing.T) {
	if testing.Short() {
		t.Skip("obs-chaos e2e skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "cwc-server")
	if out, err := exec.Command("go", "build", "-o", bin, "cwc/cmd/cwc-server").CombinedOutput(); err != nil {
		t.Fatalf("building cwc-server: %v\n%s", err, out)
	}

	dump := filepath.Join(dir, "blackbox.jsonl")
	cmd := exec.Command(bin,
		"-listen", "127.0.0.1:0",
		"-wait", "0", // register-only mode: runs until signalled
		"-blackbox-file", dump,
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait until the daemon has logged something — proof the logger (and
	// with it the black-box tap) is live and the ring is non-empty.
	sc := bufio.NewScanner(stderr)
	lineCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			select {
			case lineCh <- sc.Text():
			default: // keep draining so the child never blocks on stderr
			}
		}
	}()
	select {
	case line := <-lineCh:
		t.Logf("daemon up: %s", line)
	case <-time.After(15 * time.Second):
		t.Fatal("cwc-server produced no output")
	}
	time.Sleep(100 * time.Millisecond)

	if err := cmd.Process.Signal(syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("cwc-server exit: %v, want exit status 131", err)
		}
		if code := ee.ExitCode(); code != 131 {
			t.Fatalf("cwc-server exit code %d, want 131 (128+SIGQUIT)", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("cwc-server did not exit after SIGQUIT")
	}

	data, err := os.ReadFile(dump)
	if err != nil {
		t.Fatalf("black-box dump missing: %v", err)
	}
	t.Cleanup(func() {
		if t.Failed() {
			saveArtifact(t, "obschaos-blackbox.jsonl", data)
		}
	})
	lines := 0
	for sc := bufio.NewScanner(bytes.NewReader(data)); sc.Scan(); {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e obs.BlackboxEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("dump line %d not parseable: %v\n%s", lines+1, err, sc.Bytes())
		}
		if e.Src != "log" && e.Src != "trace" {
			t.Errorf("dump line %d has src %q, want log or trace", lines+1, e.Src)
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("black-box dump is empty")
	}
}
