package cluster

// The checkpoint-streaming chaos harness: the acceptance scenario for
// bounded work loss. Workers are killed silently at seeded instants
// (streamed-checkpoint thresholds, so the kill always lands mid-interval
// regardless of host speed), and the tests assert the two guarantees the
// feature exists for: final aggregates stay byte-identical to a
// fault-free run, and the input recomputed per failure is bounded by the
// checkpoint interval plus one flush — including when the *master* dies
// mid-round and recovers from its WAL.

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cwc/internal/migrate"
	"cwc/internal/server"
	"cwc/internal/tasks"
	"cwc/internal/wal"
	"cwc/internal/worker"
)

// meterFloor filters profiling executions out of the tally: profile
// samples are ~1 KB, real partitions are tens of KB.
const meterFloor = 4 * 1024

// meteredBytes counts input bytes actually processed by ckpt-metered
// executions across every attempt in this process — worker-side ground
// truth for how much work the cluster really did. A fault-free run
// processes exactly len(input); anything above that is recomputation
// caused by a failure, which checkpoint streaming must bound.
var meteredBytes atomic.Int64

// meteredTask wraps SleepCount with the processed-bytes meter. The
// per-batch sleep stretches executions so kills land mid-partition, and
// the meter makes lost work directly observable: an interrupted
// execution leaves ck.Offset at its last interrupt point, so the
// start→end delta is precisely the bytes this attempt consumed.
type meteredTask struct{ tasks.SleepCount }

func (meteredTask) Name() string { return "ckpt-metered" }

func (mt meteredTask) Process(ctx context.Context, input []byte, ck *tasks.Checkpoint) ([]byte, error) {
	start := ck.Offset
	out, err := mt.SleepCount.Process(ctx, input, ck)
	if len(input) >= meterFloor {
		if end := ck.Offset; end > start {
			meteredBytes.Add(end - start)
		}
	}
	return out, err
}

func init() {
	tasks.Register("ckpt-metered", func(params []byte) (tasks.Task, error) {
		base, err := tasks.New("sleepcount", params)
		if err != nil {
			return nil, err
		}
		return meteredTask{base.(tasks.SleepCount)}, nil
	})
}

// TestCkptChaosBoundedWorkLoss kills three workers silently, one at each
// streamed-checkpoint threshold, replugs them, and asserts the job's
// aggregate matches a local run while total recomputed input stays under
// kills × 2×interval (one interval of progress since the last flush,
// plus one interval of slack for a flush in flight when the connection
// died).
func TestCkptChaosBoundedWorkLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpoint chaos skipped in -short mode")
	}
	meteredBytes.Store(0)

	const ckptKB = 16
	journal := migrate.NewJournal()
	opts := Options{Phones: DefaultPhones()[:4]}
	opts.Server.CheckpointEveryKB = ckptKB
	opts.Server.KeepalivePeriod = 100 * time.Millisecond
	opts.Server.KeepaliveTolerance = 3
	opts.Server.MaxItemRetries = 50
	opts.Server.Journal = journal
	c := startCluster(t, opts)

	rng := rand.New(rand.NewSource(42))
	input := tasks.GenIntegers(256, 100000, rng)
	var ck tasks.Checkpoint
	want, err := (tasks.SleepCount{}).Process(context.Background(), input, &ck)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Master.Submit(
		meteredTask{tasks.SleepCount{PerBatch: 2 * time.Millisecond}}, input, false)
	if err != nil {
		t.Fatal(err)
	}

	// Kill a distinct worker each time the master's streamed-checkpoint
	// count crosses a threshold: the trigger is progress, not wall time,
	// so every kill lands mid-interval on any host. Replugged workers
	// rejoin so the fleet can finish.
	replugCtx, cancelReplugs := context.WithCancel(context.Background())
	t.Cleanup(cancelReplugs)
	thresholds := []int{2, 3, 5}
	var kills atomic.Int32
	stop := make(chan struct{})
	var watcher sync.WaitGroup
	watcher.Add(1)
	go func() {
		defer watcher.Done()
		for next := 0; next < len(thresholds); {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if c.Master.StreamedCheckpoints() < thresholds[next] {
				continue
			}
			w := c.Workers[next]
			w.Vanish()
			kills.Add(1)
			go func(w *worker.Phone) {
				time.Sleep(300 * time.Millisecond)
				w.Replug()
				_ = w.Run(replugCtx)
			}(w)
			next++
		}
	}()

	results := runToCompletion(t, c, []int{id}, 120*time.Second)
	close(stop)
	watcher.Wait()

	if string(results[id]) != string(want) {
		t.Errorf("aggregate after kills %s != local %s", results[id], want)
	}
	if got := int(kills.Load()); got != len(thresholds) {
		t.Errorf("only %d of %d seeded kills fired before completion", got, len(thresholds))
	}
	if folds := c.Master.StreamedCheckpoints(); folds < thresholds[len(thresholds)-1] {
		t.Errorf("master folded only %d streamed checkpoints", folds)
	}
	streamedSaves := 0
	for _, e := range journal.Events() {
		if e.Kind == migrate.Saved && e.Reason == "streamed checkpoint" {
			streamedSaves++
		}
	}
	if streamedSaves == 0 {
		t.Error("no streamed-checkpoint saves reached the migration journal")
	}

	overage := meteredBytes.Load() - int64(len(input))
	maxLoss := int64(kills.Load()) * 2 * ckptKB * 1024
	if overage < 0 {
		t.Errorf("processed %d bytes < input %d: the meter is broken",
			meteredBytes.Load(), len(input))
	}
	if overage > maxLoss {
		t.Errorf("recomputed %d bytes after %d kills, want <= %d (2x%dKB interval each)",
			overage, kills.Load(), maxLoss, ckptKB)
	}
	t.Logf("kills=%d recomputed=%dB (bound %dB), %d checkpoints folded",
		kills.Load(), overage, maxLoss, c.Master.StreamedCheckpoints())
}

// TestCkptChaosMasterCrashRecovery crashes the master itself mid-round —
// after streamed checkpoints have been folded and WAL-appended, with
// every partition still in flight — then recovers a fresh master from
// the WAL with a fresh worker fleet. The job must finish with the exact
// fault-free aggregate, and the recomputed input must be bounded by one
// interval (plus an in-flight flush) per in-flight partition: streamed
// progress survives the crash because each fold hit the log before it
// was acknowledged.
func TestCkptChaosMasterCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpoint chaos skipped in -short mode")
	}
	meteredBytes.Store(0)

	const ckptKB = 8
	dir := t.TempDir()
	wl, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	phones := DefaultPhones()[:3]
	opts := Options{Phones: phones}
	opts.Server.CheckpointEveryKB = ckptKB
	opts.Server.WAL = wl
	c := startCluster(t, opts)

	rng := rand.New(rand.NewSource(43))
	input := tasks.GenIntegers(128, 100000, rng)
	var ck tasks.Checkpoint
	want, err := (tasks.SleepCount{}).Process(context.Background(), input, &ck)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Master.Submit(
		meteredTask{tasks.SleepCount{PerBatch: 2 * time.Millisecond}}, input, false)
	if err != nil {
		t.Fatal(err)
	}

	// Drive the round from a goroutine we can abandon mid-flight.
	roundCtx, cancelRound := context.WithCancel(context.Background())
	defer cancelRound()
	go func() {
		for roundCtx.Err() == nil {
			if _, err := c.Master.RunRound(roundCtx); err != nil {
				time.Sleep(10 * time.Millisecond)
			}
		}
	}()

	// Crash once a few streamed checkpoints have been folded (and, under
	// SyncAlways, fsynced): no state save, the WAL is the only survivor.
	deadline := time.Now().Add(30 * time.Second)
	for c.Master.StreamedCheckpoints() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d checkpoints folded before deadline", c.Master.StreamedCheckpoints())
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancelRound()
	c.Stop()
	wl.Close()

	// Recover a fresh master from the log.
	wl2, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wl2.Close() })
	m2 := server.New(server.Config{
		Addr:              "127.0.0.1:0",
		CheckpointEveryKB: ckptKB,
		WAL:               wl2,
	})
	if err := m2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m2.Close)
	if err := m2.RecoverWAL(); err != nil {
		t.Fatal(err)
	}
	if m2.PendingItems() == 0 {
		t.Fatal("recovered master has no pending work: the crash landed after completion")
	}

	// A fresh fleet: the old workers died with the old master.
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	fleetCtx, cancelFleet := context.WithCancel(context.Background())
	t.Cleanup(cancelFleet)
	for _, ph := range phones {
		w, err := worker.New(worker.Config{
			ServerAddr: m2.Addr(),
			Model:      ph.Spec.Model,
			CPUMHz:     ph.Spec.CPU.ClockMHz,
			RAMMB:      ph.Spec.RAMMB,
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = w.Run(fleetCtx) }()
	}
	if err := m2.WaitForPhones(ctx, len(phones)); err != nil {
		t.Fatal(err)
	}

	got, ok := []byte(nil), false
	finish := time.Now().Add(90 * time.Second)
	for !ok && time.Now().Before(finish) {
		if _, err := m2.RunRound(ctx); err != nil {
			time.Sleep(10 * time.Millisecond)
		}
		got, ok = m2.Result(id)
	}
	if !ok {
		t.Fatalf("job did not complete after recovery (dead letters: %+v)", m2.DeadLetters())
	}
	if string(got) != string(want) {
		t.Errorf("aggregate after master crash %s != local %s", got, want)
	}

	// Each of the <= 3 in-flight partitions loses at most one interval of
	// progress since its last durable fold, one in-flight flush, and one
	// interrupt batch of slack.
	overage := meteredBytes.Load() - int64(len(input))
	maxLoss := int64(len(phones)) * (2*ckptKB*1024 + 4096)
	if overage < 0 {
		t.Errorf("processed %d bytes < input %d: the meter is broken",
			meteredBytes.Load(), len(input))
	}
	if overage > maxLoss {
		t.Errorf("recomputed %d bytes across the crash, want <= %d", overage, maxLoss)
	}
	t.Logf("recomputed=%dB (bound %dB) after WAL recovery", overage, maxLoss)
}
