package cluster

// The churn-storm acceptance scenario for plug-aware predictive
// placement: the "morning unplug wave", where half the fleet leaves the
// chargers inside a narrow band and flaps back on shortly after. The
// same storm (same seeded faults.Wave schedule) is driven against two
// otherwise-identical clusters — one with plug-aware placement and
// proactive drain, one with prediction disabled — and the /metrics
// deltas must show the prediction paying for itself: fewer requeued
// attempts and fewer assignment bytes re-shipped, with byte-identical
// final aggregates.

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cwc/internal/faults"
	"cwc/internal/obs"
	"cwc/internal/tasks"
	"cwc/internal/worker"
)

// counterValue parses one counter from a /metrics exposition body
// (missing counters read as zero, e.g. drain counters on a
// prediction-disabled master).
func counterValue(text, name string) int64 {
	var v int64
	fmt.Sscanf(findLine(text, name+" "), name+" %d", &v)
	return v
}

func TestChurnStormPlugAwareSavesRecompute(t *testing.T) {
	if testing.Short() {
		t.Skip("churn storm skipped in -short mode")
	}
	phones := DefaultPhones()

	// The storm, straight from the faults DSL: 50% of the fleet unplugs
	// between t=300ms and t=500ms after dispatch begins, each phone
	// flapping back onto the charger 400ms later. Both runs replay the
	// identical seeded schedule.
	plan, err := faults.ParseScenario(`
		seed: 7
		wave: frac=0.5 start=300ms spread=200ms replug-after=400ms
	`)
	if err != nil {
		t.Fatal(err)
	}
	acts := plan.Schedule(len(phones))
	if len(acts) != len(phones)/2 {
		t.Fatalf("storm schedules %d phones, want %d", len(acts), len(phones)/2)
	}
	doomed := map[int]bool{}
	for _, a := range acts {
		doomed[a.Phone] = true
	}

	rng := rand.New(rand.NewSource(77))
	input := tasks.GenIntegers(256, 100000, rng)
	var ck tasks.Checkpoint
	want, err := (tasks.PrimeCount{}).Process(context.Background(), input, &ck)
	if err != nil {
		t.Fatal(err)
	}

	// run drives one cluster through the storm and returns the final
	// aggregate plus the /metrics exposition scraped after completion.
	run := func(t *testing.T, plugAware bool) ([]byte, string) {
		t.Helper()
		opts := Options{Phones: phones, DelayPerKB: 10 * time.Millisecond}
		opts.Server.Metrics = obs.NewRegistry()
		opts.Server.ObsAddr = "127.0.0.1:0"
		opts.Server.MaxItemRetries = 50
		opts.Server.KeepalivePeriod = 100 * time.Millisecond
		opts.Server.KeepaliveTolerance = 3
		if plugAware {
			opts.Server.PlugAware = true
			opts.Server.DrainCheckPeriod = 10 * time.Millisecond
		}
		c := startCluster(t, opts)
		base := "http://" + c.Master.ObsAddr()

		if plugAware {
			// Seed each phone's learned charge-window history: the doomed
			// phones have a short-window past (their windows are about to
			// close), the rest charge for hours. In a deployment this history
			// accrues from observed plug/unplug events; seeding stands in for
			// the fleet's prior weeks on the chargers.
			modelToID := map[string]int{}
			for _, p := range c.Master.Phones() {
				modelToID[p.Model] = p.ID
			}
			short := []float64{900, 900, 900, 900}
			long := []float64{3.6e6, 3.6e6, 3.6e6, 3.6e6}
			var doomedIDs []int
			for i, ph := range phones {
				id, ok := modelToID[ph.Spec.Model]
				if !ok {
					t.Fatalf("phone %s not registered", ph.Spec.Model)
				}
				if doomed[i] {
					c.Master.SeedChargeWindows(id, short)
					doomedIDs = append(doomedIDs, id)
				} else {
					c.Master.SeedChargeWindows(id, long)
				}
			}
			// The drain monitor should move on the doomed phones before any
			// work is placed: their predicted remaining window is under the
			// drain lead.
			deadline := time.Now().Add(10 * time.Second)
			for {
				draining := 0
				for _, id := range doomedIDs {
					if c.Master.DrainState(id) != "" {
						draining++
					}
				}
				if draining == len(doomedIDs) {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("only %d of %d doomed phones draining", draining, len(doomedIDs))
				}
				time.Sleep(5 * time.Millisecond)
			}
			// The drain state and window prediction are live on /statusz.
			body, code := httpGet(t, base+"/statusz")
			if code != http.StatusOK {
				t.Fatalf("/statusz status %d", code)
			}
			if !strings.Contains(string(body), `"drain_state"`) ||
				!strings.Contains(string(body), `"predicted_remaining_ms"`) {
				t.Errorf("/statusz missing drain/prediction fields:\n%s", body)
			}
		}

		id, err := c.Master.Submit(tasks.PrimeCount{}, input, false)
		if err != nil {
			t.Fatal(err)
		}

		// Drive the storm against the live workers.
		replugCtx, cancelReplugs := context.WithCancel(context.Background())
		t.Cleanup(cancelReplugs)
		var storm sync.WaitGroup
		storm.Add(1)
		go func() {
			defer storm.Done()
			t0 := time.Now()
			for _, act := range acts {
				time.Sleep(time.Until(t0.Add(act.UnplugAt)))
				w := c.Workers[act.Phone]
				w.Unplug()
				if act.ReplugAt > 0 {
					storm.Add(1)
					go func(w *worker.Phone, at time.Duration) {
						defer storm.Done()
						time.Sleep(time.Until(t0.Add(at)))
						select {
						case <-replugCtx.Done():
							return
						default:
						}
						w.ReplugRejoin()
						_ = w.Run(replugCtx)
					}(w, act.ReplugAt)
				}
			}
		}()

		results := runToCompletion(t, c, []int{id}, 120*time.Second)
		body, code := httpGet(t, base+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("/metrics status %d", code)
		}
		cancelReplugs()
		storm.Wait()
		return results[id], string(body)
	}

	var awareRes, baseRes []byte
	var awareM, baseM string
	t.Run("plug-aware", func(t *testing.T) { awareRes, awareM = run(t, true) })
	t.Run("baseline", func(t *testing.T) { baseRes, baseM = run(t, false) })
	if awareRes == nil || baseRes == nil {
		t.Fatal("a run did not complete")
	}

	// Both storms end in the exact fault-free answer.
	if string(awareRes) != string(want) {
		t.Errorf("plug-aware aggregate %s != local %s", awareRes, want)
	}
	if string(baseRes) != string(want) {
		t.Errorf("baseline aggregate %s != local %s", baseRes, want)
	}

	// The prediction must pay for itself: the doomed phones were fenced
	// off (or drained cleanly) before the wave hit, so the plug-aware run
	// requeues fewer attempts and re-ships fewer assignment bytes.
	awareReq := counterValue(awareM, "cwc_requeues_total")
	baseReq := counterValue(baseM, "cwc_requeues_total")
	awareBytes := counterValue(awareM, "cwc_assign_bytes_sent_total")
	baseBytes := counterValue(baseM, "cwc_assign_bytes_sent_total")
	if baseReq == 0 {
		t.Error("baseline storm caused no requeues: the wave missed the in-flight work")
	}
	if awareReq >= baseReq {
		t.Errorf("plug-aware requeues %d >= baseline %d", awareReq, baseReq)
	}
	if awareBytes >= baseBytes {
		t.Errorf("plug-aware assign bytes %d >= baseline %d (no recompute saved)", awareBytes, baseBytes)
	}
	if drains := counterValue(awareM, "cwc_drain_started_total"); drains == 0 {
		t.Error("plug-aware run started no proactive drains")
	}
	if drains := counterValue(baseM, "cwc_drain_started_total"); drains != 0 {
		t.Errorf("prediction-disabled run started %d drains", drains)
	}
	t.Logf("requeues aware=%d base=%d, assign bytes aware=%d base=%d, saved=%d",
		awareReq, baseReq, awareBytes, baseBytes, baseBytes-awareBytes)
}
