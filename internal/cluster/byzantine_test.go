package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"cwc/internal/faults"
	"cwc/internal/obs"
	"cwc/internal/server"
	"cwc/internal/tasks"
	"cwc/internal/wal"
	"cwc/internal/worker"
)

// The result-integrity acceptance scenario: a fleet seeded with liars
// (20% via the faults DSL) runs a workload under replicated voting
// (k=2). Every liar must end up reputation-quarantined, no honest phone
// may be harmed, and the aggregates must be byte-identical to a local
// fault-free computation — the lies never reach a job result. Midway the
// master is killed abruptly; the recovered master must show the liars
// still quarantined *before* it serves a single frame (record 13
// replayed from the WAL), the rejoining liars must keep their identity
// (and quarantine) rather than being reissued fresh IDs, and the
// workload must still finish correctly.
func TestByzantineLiarFleetQuarantinedAcrossRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("byzantine e2e skipped in -short mode")
	}
	plan, err := faults.ParseScenario("seed: 42\nliar: frac=0.2")
	if err != nil {
		t.Fatal(err)
	}
	const fleet = 10
	byz := plan.ByzantineFor(fleet)
	liarIdx := plan.ByzantinePhones(fleet)
	if len(liarIdx) != 2 {
		t.Fatalf("liar cast = %v, want 2 of %d phones", liarIdx, fleet)
	}

	walDir := filepath.Join(t.TempDir(), "wal")
	wl, err := wal.Open(walDir, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m1 := server.New(server.Config{
		Addr: "127.0.0.1:0", WAL: wl, Role: "primary", Metrics: reg,
		VerifyReplicas: 2,
	})
	if err := m1.RecoverWAL(); err != nil {
		t.Fatal(err)
	}
	if err := m1.Start(); err != nil {
		t.Fatal(err)
	}

	// The takeover listener is bound now so the workers' failover list
	// is complete before any of them dials.
	tln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	failoverAddrs := m1.Addr() + "," + tln.Addr().String()

	runCtx, runCancel := context.WithCancel(context.Background())
	defer runCancel()
	for i := 0; i < fleet; i++ {
		model := fmt.Sprintf("honest-%d", i)
		var wb worker.Byzantine
		if s, ok := byz[i]; ok {
			model = fmt.Sprintf("liar-%d", i)
			wb = worker.Byzantine{
				LiarProb:    s.LiarProb,
				LazyProb:    s.LazyProb,
				CorruptProb: s.CorruptProb,
				Seed:        s.Seed,
			}
		}
		w, err := worker.New(worker.Config{
			ServerAddr: failoverAddrs,
			Model:      model,
			CPUMHz:     800 + 100*float64(i),
			RAMMB:      512,
			DelayPerKB: 2 * time.Millisecond,
			Byzantine:  wb,
			Reconnect: worker.ReconnectPolicy{
				BaseDelay:   20 * time.Millisecond,
				MaxDelay:    150 * time.Millisecond,
				MaxAttempts: -1,
				// Short handshake budget: workers whose rotation starts
				// at the (not yet serving) takeover listener must fail
				// fast and move on to the live primary.
				HandshakeTimeout: 500 * time.Millisecond,
				Seed:             int64(61 + i),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = w.Run(runCtx) }()
	}
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer waitCancel()
	if err := m1.WaitForPhones(waitCtx, fleet); err != nil {
		t.Fatal(err)
	}

	// Master-side IDs of the liars, identified by model name.
	var liarIDs []int
	for _, ph := range m1.Phones() {
		if strings.HasPrefix(ph.Model, "liar-") {
			liarIDs = append(liarIDs, ph.ID)
		}
	}
	if len(liarIDs) != len(liarIdx) {
		t.Fatalf("master registered %d liars, want %d", len(liarIDs), len(liarIdx))
	}

	// The workload, with locally computed fault-free ground truth.
	rng := rand.New(rand.NewSource(23))
	primeIn := tasks.GenIntegers(96, 100000, rng)
	wordIn := tasks.GenText(64, rng)
	var ck1, ck2 tasks.Checkpoint
	wantPrimes, err := (tasks.PrimeCount{}).Process(context.Background(), primeIn, &ck1)
	if err != nil {
		t.Fatal(err)
	}
	wc := tasks.WordCount{Word: "inventory"}
	wantWords, err := wc.Process(context.Background(), wordIn, &ck2)
	if err != nil {
		t.Fatal(err)
	}
	idPrimes, err := m1.Submit(tasks.PrimeCount{}, primeIn, false)
	if err != nil {
		t.Fatal(err)
	}
	idWords, err := m1.Submit(wc, wordIn, false)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{idPrimes, idWords}
	wants := map[int][]byte{idPrimes: wantPrimes, idWords: wantWords}

	// Drive rounds until the voting has quarantined every liar — a liar
	// loses one vote per tie-broken partition, and the EWMA needs three
	// losses to cross the threshold, so keep feeding small jobs as the
	// earlier ones finish. Then kill the master abruptly mid-workload:
	// no bye frames, no WAL shutdown record.
	driveCtx, driveCancel := context.WithTimeout(context.Background(), 90*time.Second)
	deadline := time.Now().Add(90 * time.Second)
	for reg.Counter("cwc_verify_quarantines_total").Value() < int64(len(liarIDs)) &&
		time.Now().Before(deadline) {
		if _, err := m1.RunRound(driveCtx); err != nil {
			if m1.PendingItems() == 0 {
				in := tasks.GenIntegers(16, 100000, rng)
				var ck tasks.Checkpoint
				want, perr := (tasks.PrimeCount{}).Process(context.Background(), in, &ck)
				if perr != nil {
					t.Fatal(perr)
				}
				id, serr := m1.Submit(tasks.PrimeCount{}, in, false)
				if serr != nil {
					t.Fatal(serr)
				}
				ids = append(ids, id)
				wants[id] = want
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	driveCancel()
	if got := reg.Counter("cwc_verify_quarantines_total").Value(); got < int64(len(liarIDs)) {
		t.Fatalf("quarantined %d phones before the kill, want %d", got, len(liarIDs))
	}
	if got := m1.QuarantinedPhones(); !reflect.DeepEqual(got, liarIDs) {
		t.Fatalf("quarantined set = %v, want exactly the liars %v", got, liarIDs)
	}
	if got := reg.Counter("cwc_verify_votes_total").Value(); got == 0 {
		t.Error("no votes were cast under VerifyReplicas=2")
	}
	m1.Kill()
	if err := wl.Close(); err != nil {
		t.Fatal(err)
	}

	// The recovered master replays the WAL. The liars must be
	// quarantined (and their reputation below threshold) before Start —
	// record 13 is the only possible source.
	wl2, err := wal.Open(walDir, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer wl2.Close()
	reg2 := obs.NewRegistry()
	m2 := server.New(server.Config{
		Listener: tln, Addr: tln.Addr().String(), WAL: wl2,
		Role: "recovered-primary", Metrics: reg2,
		VerifyReplicas: 2,
	})
	if err := m2.RecoverWAL(); err != nil {
		t.Fatal(err)
	}
	for _, id := range liarIDs {
		if !m2.Quarantined(id) {
			t.Errorf("liar %d not quarantined after WAL recovery, before Start", id)
		}
		if rep := m2.Reputation(id); rep >= 0.3 {
			t.Errorf("liar %d reputation %.3f after recovery, want < 0.3", id, rep)
		}
	}
	if err := m2.Start(); err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	waitCtx2, waitCancel2 := context.WithTimeout(context.Background(), 20*time.Second)
	defer waitCancel2()
	if err := m2.WaitForPhones(waitCtx2, fleet); err != nil {
		t.Fatal(err)
	}
	// The rejoined liars kept their WAL-vouched identity, so the
	// quarantine still binds to them — it did not evaporate with a
	// freshly issued phone ID.
	for _, id := range liarIDs {
		if !m2.Quarantined(id) {
			t.Errorf("liar %d lost its quarantine across the rejoin", id)
		}
	}

	// A job submitted after recovery proves the revived master keeps
	// verifying with the persisted reputation state.
	extraIn := tasks.GenIntegers(32, 100000, rng)
	var ck3 tasks.Checkpoint
	wantExtra, err := (tasks.PrimeCount{}).Process(context.Background(), extraIn, &ck3)
	if err != nil {
		t.Fatal(err)
	}
	idExtra, err := m2.Submit(tasks.PrimeCount{}, extraIn, false)
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, idExtra)
	wants[idExtra] = wantExtra

	// Every job — finished before the kill, in flight across it, or
	// submitted after recovery — must aggregate byte-identically to the
	// fault-free local computation: the lies never reached a result.
	results := driveToCompletion(t, m2, ids, 90*time.Second)
	for _, id := range ids {
		if string(results[id]) != string(wants[id]) {
			t.Errorf("job %d = %s, want %s", id, results[id], wants[id])
		}
	}

	// No honest phone was ever quarantined, on either master regime.
	if got := m2.QuarantinedPhones(); !reflect.DeepEqual(got, liarIDs) {
		t.Errorf("final quarantined set = %v, want exactly the liars %v", got, liarIDs)
	}
}

// The byzantine directives flow end-to-end through the cluster harness:
// a corrupt-result worker (claimed digest no longer matches the payload)
// is caught by the master's digest check alone — no voting configured —
// the damaged results are requeued, and the aggregate stays correct.
func TestClusterCorruptResultCaughtByDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("byzantine e2e skipped in -short mode")
	}
	plan, err := faults.ParseScenario("seed: 5\ncorrupt-result: frac=0.3 prob=0.4")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c, err := Start(ctx, Options{
		Faults: plan,
		Reconnect: worker.ReconnectPolicy{
			BaseDelay: 20 * time.Millisecond, MaxDelay: 150 * time.Millisecond,
			MaxAttempts: -1, Seed: 7,
		},
		Server: server.Config{Metrics: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// Per-result corruption is probabilistic (prob=0.4), so run jobs
	// until at least one corrupted frame has been caught — every job
	// must still aggregate byte-identically to the local ground truth.
	rng := rand.New(rand.NewSource(29))
	deadline := time.Now().Add(60 * time.Second)
	for {
		input := tasks.GenIntegers(48, 100000, rng)
		var ck tasks.Checkpoint
		want, err := (tasks.PrimeCount{}).Process(context.Background(), input, &ck)
		if err != nil {
			t.Fatal(err)
		}
		id, err := c.Master.Submit(tasks.PrimeCount{}, input, false)
		if err != nil {
			t.Fatal(err)
		}
		results := driveToCompletion(t, c.Master, []int{id}, 60*time.Second)
		if string(results[id]) != string(want) {
			t.Fatalf("primes = %s, want %s", results[id], want)
		}
		if reg.Counter("cwc_verify_mismatches_total", "kind", "digest").Value() > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no claimed-digest mismatches recorded despite corrupt-result workers")
		}
	}
}
