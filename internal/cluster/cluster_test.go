package cluster

import (
	"context"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"cwc/internal/tasks"
)

func startCluster(t *testing.T, opts Options) *Cluster {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c, err := Start(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestClusterEndToEndWordCount(t *testing.T) {
	c := startCluster(t, Options{})
	rng := rand.New(rand.NewSource(1))
	input := tasks.GenText(128, rng)

	// Ground truth on the host.
	var ck tasks.Checkpoint
	want, err := (tasks.WordCount{Word: "sale"}).Process(context.Background(), input, &ck)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := c.Master.MeasureBandwidths(ctx); err != nil {
		t.Fatal(err)
	}
	id, err := c.Master.Submit(tasks.WordCount{Word: "sale"}, input, false)
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Master.RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.CompletedJobs) != 1 || report.CompletedJobs[0] != id {
		t.Fatalf("completed = %v, want [%d]", report.CompletedJobs, id)
	}
	got, ok := c.Master.Result(id)
	if !ok {
		t.Fatal("result missing")
	}
	if string(got) != string(want) {
		t.Errorf("distributed count %s != local %s", got, want)
	}
}

func TestClusterMixedWorkload(t *testing.T) {
	c := startCluster(t, Options{})
	rng := rand.New(rand.NewSource(2))
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	type expect struct {
		id   int
		want string
	}
	var expects []expect

	// A few breakable jobs with host-computed ground truth.
	for k := 0; k < 3; k++ {
		input := tasks.GenIntegers(64, 100000, rng)
		var ck tasks.Checkpoint
		want, err := (tasks.PrimeCount{}).Process(context.Background(), input, &ck)
		if err != nil {
			t.Fatal(err)
		}
		id, err := c.Master.Submit(tasks.PrimeCount{}, input, false)
		if err != nil {
			t.Fatal(err)
		}
		expects = append(expects, expect{id, string(want)})
	}
	// An atomic blur job.
	img, err := tasks.GenImageKB(24, rng)
	if err != nil {
		t.Fatal(err)
	}
	var ck tasks.Checkpoint
	wantBlur, err := (tasks.Blur{}).Process(context.Background(), img, &ck)
	if err != nil {
		t.Fatal(err)
	}
	blurID, err := c.Master.Submit(tasks.Blur{}, img, true)
	if err != nil {
		t.Fatal(err)
	}
	expects = append(expects, expect{blurID, string(wantBlur)})

	report, err := c.Master.RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.CompletedJobs) != len(expects) {
		t.Fatalf("completed %d jobs, want %d", len(report.CompletedJobs), len(expects))
	}
	for _, e := range expects {
		got, ok := c.Master.Result(e.id)
		if !ok {
			t.Errorf("job %d has no result", e.id)
			continue
		}
		if string(got) != e.want {
			t.Errorf("job %d: distributed result differs from local", e.id)
		}
	}
	if report.PredictedMakespanMs <= 0 {
		t.Error("no predicted makespan")
	}
}

func TestClusterSubmitValidation(t *testing.T) {
	c := startCluster(t, Options{})
	if _, err := c.Master.Submit(tasks.PrimeCount{}, nil, false); err == nil {
		t.Error("empty input should be rejected")
	}
}

func TestClusterOnlineFailureMigratesWork(t *testing.T) {
	// Slow the workers down so we can unplug mid-execution.
	c := startCluster(t, Options{DelayPerKB: 12 * time.Millisecond})
	rng := rand.New(rand.NewSource(3))
	input := tasks.GenIntegers(256, 100000, rng)
	var ck tasks.Checkpoint
	want, err := (tasks.PrimeCount{}).Process(context.Background(), input, &ck)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Master.Submit(tasks.PrimeCount{}, input, false)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Unplug two phones shortly after dispatch begins.
	go func() {
		time.Sleep(300 * time.Millisecond)
		c.Workers[0].Unplug()
		c.Workers[1].Unplug()
	}()

	deadline := time.Now().Add(90 * time.Second)
	done := false
	for !done && time.Now().Before(deadline) {
		report, err := c.Master.RunRound(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, cj := range report.CompletedJobs {
			if cj == id {
				done = true
			}
		}
		if c.Master.PendingItems() == 0 && !done {
			t.Fatal("queue drained but job not complete")
		}
	}
	if !done {
		t.Fatal("job did not complete after failures")
	}
	got, _ := c.Master.Result(id)
	if string(got) != string(want) {
		t.Errorf("result after migration %s != local %s", got, want)
	}
}

func TestClusterOfflineFailureDetectedByKeepalive(t *testing.T) {
	opts := Options{DelayPerKB: 15 * time.Millisecond}
	// Scaled-down detector: 50 ms pings, 2 tolerated misses, so the test
	// exercises the paper's 30 s / 3-miss mechanism in ~150 ms.
	opts.Server.KeepalivePeriod = 50 * time.Millisecond
	opts.Server.KeepaliveTolerance = 2
	c := startCluster(t, opts)

	rng := rand.New(rand.NewSource(4))
	input := tasks.GenIntegers(192, 100000, rng)
	var ck tasks.Checkpoint
	want, err := (tasks.PrimeCount{}).Process(context.Background(), input, &ck)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Master.Submit(tasks.PrimeCount{}, input, false)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	go func() {
		time.Sleep(250 * time.Millisecond)
		c.Workers[0].Vanish() // silent death: no failure report
	}()

	deadline := time.Now().Add(90 * time.Second)
	done := false
	for !done && time.Now().Before(deadline) {
		report, err := c.Master.RunRound(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, cj := range report.CompletedJobs {
			if cj == id {
				done = true
			}
		}
	}
	if !done {
		t.Fatal("job did not complete after offline failure")
	}
	got, _ := c.Master.Result(id)
	if string(got) != string(want) {
		t.Errorf("result after offline failure %s != local %s", got, want)
	}
	// The vanished phone must be marked dead.
	alive := 0
	for _, p := range c.Master.Phones() {
		if p.Alive {
			alive++
		}
	}
	if alive != len(c.Workers)-1 {
		t.Errorf("%d phones alive, want %d", alive, len(c.Workers)-1)
	}
}

func TestClusterResultUnknownJob(t *testing.T) {
	c := startCluster(t, Options{})
	if _, ok := c.Master.Result(999); ok {
		t.Error("unknown job should have no result")
	}
	if _, err := c.Master.RunRound(context.Background()); err == nil {
		t.Error("empty round should error")
	}
}

func TestClusterPrimesMatchStrconv(t *testing.T) {
	// Sanity: the distributed prime count over a tiny input matches a
	// direct count here.
	c := startCluster(t, Options{})
	input := []byte("2\n4\n5\n6\n7\n")
	id, err := c.Master.Submit(tasks.PrimeCount{}, input, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.Master.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Master.Result(id)
	if !ok {
		t.Fatal("no result")
	}
	if n, _ := strconv.Atoi(string(got)); n != 3 {
		t.Errorf("count = %s, want 3", got)
	}
}

// The paper's §4 RAM argument: a job bigger than any phone's memory is
// partitioned so every piece fits, and the distributed result still
// matches a local run.
func TestClusterRAMConstrainedPartitioning(t *testing.T) {
	phones := DefaultPhones()
	for i := range phones {
		phones[i].Spec.RAMMB = 1 // 1 MB cap per partition
	}
	c := startCluster(t, Options{Phones: phones})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := c.Master.MeasureBandwidths(ctx); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(14))
	input := tasks.GenIntegers(4*1024, 500000, rng) // 4 MB > every phone's 1 MB
	var ck tasks.Checkpoint
	want, err := (tasks.PrimeCount{}).Process(context.Background(), input, &ck)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Master.Submit(tasks.PrimeCount{}, input, false)
	if err != nil {
		t.Fatal(err)
	}
	report, err := c.Master.RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c.Master.Result(id)
	if !ok {
		t.Fatal("RAM-partitioned job did not complete")
	}
	if string(got) != string(want) {
		t.Errorf("distributed %s != local %s", got, want)
	}
	// Every assignment respected the 1 MB cap: check via the events —
	// with 4 MB of input and 1 MB caps, at least 4 partitions ran.
	assigns := 0
	for _, e := range report.Events {
		if e.Kind == "assign" {
			assigns++
		}
	}
	if assigns < 4 {
		t.Errorf("only %d assignments for a 4 MB job with 1 MB RAM caps", assigns)
	}
}

// Chunked streaming end to end: a multi-megabyte partition forced through
// tiny 64 KB frames still produces the right answer.
func TestClusterChunkedTransfers(t *testing.T) {
	opts := Options{}
	opts.Server.ChunkKB = 64
	c := startCluster(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	rng := rand.New(rand.NewSource(21))
	input := tasks.GenIntegers(2*1024, 300000, rng) // 2 MB, ~32 chunks/partition
	var ck tasks.Checkpoint
	want, err := (tasks.PrimeCount{}).Process(context.Background(), input, &ck)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Master.Submit(tasks.PrimeCount{}, input, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Master.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Master.Result(id)
	if !ok {
		t.Fatal("chunked job did not complete")
	}
	if string(got) != string(want) {
		t.Errorf("chunked result %s != local %s", got, want)
	}
}

// A phone that unplugs and later replugs re-enters the pool and serves
// work again.
func TestClusterPhoneReentersAfterReplug(t *testing.T) {
	c := startCluster(t, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	w := c.Workers[0]
	w.Unplug()
	// Wait for the server to mark it dead.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		alive := 0
		for _, p := range c.Master.Phones() {
			if p.Alive {
				alive++
			}
		}
		if alive == len(c.Workers)-1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Replug: the worker reconnects and registers under a new ID.
	w.Replug()
	go func() { _ = w.Run(context.Background()) }()
	if err := c.Master.WaitForPhones(ctx, len(c.Workers)); err != nil {
		t.Fatalf("replugged phone never re-registered: %v", err)
	}

	// The replugged fleet still computes correctly.
	input := []byte("2\n3\n4\n5\n")
	id, err := c.Master.Submit(tasks.PrimeCount{}, input, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Master.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Master.Result(id); !ok || string(got) != "3" {
		t.Errorf("post-replug result = %s %v", got, ok)
	}
}
