package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"testing"
	"time"

	"cwc/internal/faults"
	"cwc/internal/obs"
	"cwc/internal/protocol"
	"cwc/internal/replica"
	"cwc/internal/server"
	"cwc/internal/tasks"
	"cwc/internal/wal"
	"cwc/internal/worker"
)

// driveToCompletion drives scheduling rounds on a bare master until every
// listed job has a result, tolerating transient round errors.
func driveToCompletion(t *testing.T, m *server.Master, ids []int, budget time.Duration) map[int][]byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	deadline := time.Now().Add(budget)
	results := map[int][]byte{}
	for len(results) < len(ids) && time.Now().Before(deadline) {
		if _, err := m.RunRound(ctx); err != nil {
			time.Sleep(50 * time.Millisecond)
		}
		for _, id := range ids {
			if _, ok := results[id]; ok {
				continue
			}
			if got, ok := m.Result(id); ok {
				results[id] = got
			}
		}
	}
	if len(results) < len(ids) {
		t.Fatalf("only %d of %d jobs completed (dead letters: %+v, offline: %+v)",
			len(results), len(ids), m.DeadLetters(), m.OfflineFailures())
	}
	return results
}

// rawPhone registers a bare protocol client with a master and returns
// the framed conn plus the welcome, for sending hand-built frames.
func rawPhone(t *testing.T, addr string) (*protocol.Conn, *protocol.Message) {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := protocol.NewConn(raw)
	if err := conn.Send(&protocol.Message{
		Type: protocol.TypeHello, Model: "probe", CPUMHz: 1000, RAMMB: 512,
	}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	welcome, err := conn.Recv()
	if err != nil || welcome.Type != protocol.TypeWelcome {
		t.Fatalf("welcome: %+v, %v", welcome, err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	return conn, welcome
}

// waitCounter polls a labeled counter until it reaches min or the budget
// runs out.
func waitCounter(t *testing.T, reg *obs.Registry, min int64, budget time.Duration, fam string, labels ...string) int64 {
	t.Helper()
	deadline := time.Now().Add(budget)
	for {
		v := reg.Counter(fam, labels...).Value()
		if v >= min || time.Now().After(deadline) {
			return v
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// The tentpole acceptance scenario: a primary master streaming its WAL
// to a hot standby is killed abruptly mid-round (no bye frames, no WAL
// shutdown). The standby promotes itself within its lease, the workers
// rotate to the takeover address on their own, the workload finishes
// with aggregates byte-identical to a local computation, and the old
// primary — resurrected from its own WAL — is provably fenced: frames
// across regimes are rejected in both directions and no result is
// double-accepted.
func TestFailoverPrimaryKillMidRound(t *testing.T) {
	if testing.Short() {
		t.Skip("failover e2e skipped in -short mode")
	}
	// The failure script comes through the faults DSL like any other
	// scenario; the harness (this test) interprets the directives.
	plan, err := faults.ParseScenario("kill-primary: at=400ms resurrect=0s")
	if err != nil {
		t.Fatal(err)
	}
	killAt := plan.PrimaryKills[0].At
	const lease = 500 * time.Millisecond

	primaryDir := filepath.Join(t.TempDir(), "primary-wal")
	standbyDir := filepath.Join(t.TempDir(), "standby-wal")

	// Primary with replication enabled.
	pwl, err := wal.Open(primaryDir, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	ship := replica.NewShipper(replica.ShipperOptions{})
	preg := obs.NewRegistry()
	ptracer := obs.NewTracer(4096)
	m1 := server.New(server.Config{
		Addr: "127.0.0.1:0", WAL: pwl, ReplicaSink: ship,
		Role: "primary", Metrics: preg, Tracer: ptracer,
	})
	ship.BindMaster(m1)
	if err := m1.RecoverWAL(); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.BumpEpoch(); err != nil {
		t.Fatal(err)
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ship.Serve(rln)
	if err := m1.Start(); err != nil {
		t.Fatal(err)
	}

	// Standby with a pre-bound takeover listener, its own metrics, and a
	// trace ring + admin plane so the promoted master's view of the
	// spans can be asserted after the takeover.
	tln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sreg := obs.NewRegistry()
	stracer := obs.NewTracer(4096)
	st := replica.New(replica.StandbyOptions{
		PrimaryAddr: rln.Addr().String(),
		WALDir:      standbyDir,
		WALOptions:  wal.Options{Sync: wal.SyncNone},
		Lease:       lease,
		MasterConfig: server.Config{
			Listener: tln, Addr: tln.Addr().String(), Metrics: sreg,
			Tracer: stracer, ObsAddr: "127.0.0.1:0",
		},
		Metrics: sreg,
	})
	stCtx, stCancel := context.WithCancel(context.Background())
	defer stCancel()
	stDone := make(chan error, 1)
	go func() { stDone <- st.Run(stCtx) }()

	// Workers dial the failover list: primary first, takeover second.
	failoverAddrs := m1.Addr() + "," + tln.Addr().String()
	runCtx, runCancel := context.WithCancel(context.Background())
	defer runCancel()
	const fleet = 3
	workers := make([]*worker.Phone, fleet)
	for i := range workers {
		w, err := worker.New(worker.Config{
			ServerAddr: failoverAddrs,
			Model:      fmt.Sprintf("phone-%d", i),
			CPUMHz:     800 + 100*float64(i),
			RAMMB:      512,
			// Slow enough that no partition can finish before the
			// scripted 400ms kill: the whole workload must complete
			// under the promoted master, so the post-promotion trace
			// assertions below are deterministic.
			DelayPerKB: 20 * time.Millisecond,
			Reconnect: worker.ReconnectPolicy{
				BaseDelay:   20 * time.Millisecond,
				MaxDelay:    150 * time.Millisecond,
				MaxAttempts: -1,
				Seed:        int64(41 + i),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		go func() { _ = w.Run(runCtx) }()
	}
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer waitCancel()
	if err := m1.WaitForPhones(waitCtx, fleet); err != nil {
		t.Fatal(err)
	}

	// The workload, with locally computed ground truth.
	rng := rand.New(rand.NewSource(17))
	primeIn := tasks.GenIntegers(96, 100000, rng)
	wordIn := tasks.GenText(64, rng)
	var ck1, ck2 tasks.Checkpoint
	wantPrimes, err := (tasks.PrimeCount{}).Process(context.Background(), primeIn, &ck1)
	if err != nil {
		t.Fatal(err)
	}
	wc := tasks.WordCount{Word: "inventory"}
	wantWords, err := wc.Process(context.Background(), wordIn, &ck2)
	if err != nil {
		t.Fatal(err)
	}
	idPrimes, err := m1.Submit(tasks.PrimeCount{}, primeIn, false)
	if err != nil {
		t.Fatal(err)
	}
	idWords, err := m1.Submit(wc, wordIn, false)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{idPrimes, idWords}

	// Drive rounds on the primary until the scripted kill.
	killed := make(chan struct{})
	driverDone := make(chan struct{})
	go func() {
		defer close(driverDone)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for {
			select {
			case <-killed:
				return
			default:
			}
			if _, err := m1.RunRound(ctx); err != nil {
				select {
				case <-killed:
					return
				case <-time.After(20 * time.Millisecond):
				}
			}
		}
	}()
	time.Sleep(killAt)
	killTime := time.Now()
	m1.Kill() // the abrupt death: no bye frames, WAL left as-is
	close(killed)
	<-driverDone
	ship.Close()
	if err := pwl.Close(); err != nil {
		t.Fatal(err)
	}

	// The standby must promote itself within a small multiple of the
	// lease (silence detection + redial pacing + recovery), and never
	// before the lease has actually run out.
	select {
	case <-st.Promoted():
	case err := <-stDone:
		t.Fatalf("standby exited instead of promoting: %v", err)
	case <-time.After(10 * lease):
		t.Fatalf("standby did not promote within %v of the kill", 10*lease)
	}
	promoteLag := time.Since(killTime)
	if promoteLag < lease {
		t.Errorf("promoted %v after the kill, before the %v lease ran out", promoteLag, lease)
	}
	m2 := st.Master()
	defer func() {
		m2.Close()
		st.Log().Close()
	}()
	if got := m2.Epoch(); got != 2 {
		t.Fatalf("promoted master epoch %d, want 2", got)
	}

	// The promoted master finishes the workload and the aggregates are
	// byte-identical to the local ground truth: nothing the failover
	// dropped, duplicated, or mis-paired changed a single result byte.
	results := driveToCompletion(t, m2, ids, 60*time.Second)
	if string(results[idPrimes]) != string(wantPrimes) {
		t.Errorf("primes after failover = %s, want %s", results[idPrimes], wantPrimes)
	}
	if string(results[idWords]) != string(wantWords) {
		t.Errorf("words after failover = %s, want %s", results[idWords], wantWords)
	}

	// The trace survives the promotion. Spans are deterministic in the
	// job ID, so the dead regime's ring and the promoted master's ring
	// hold the *same* span — the two histories stitch — and the new
	// regime's events carry the bumped epoch, with the promotion itself
	// annotated in the ring.
	span := fmt.Sprintf("j%d", idPrimes)
	if evs := ptracer.Span(span); len(evs) == 0 {
		t.Errorf("dead primary's ring has no events for span %s", span)
	}
	sevs := stracer.Span(span)
	if len(sevs) == 0 {
		t.Fatalf("promoted master's ring has no events for span %s", span)
	}
	epoch2 := false
	for _, ev := range sevs {
		if ev.Epoch == 2 {
			epoch2 = true
		}
	}
	if !epoch2 {
		t.Errorf("no post-promotion event in span %s carries epoch 2: %+v", span, sevs)
	}
	promoted := false
	for _, ev := range stracer.Recent(100000) {
		if ev.Kind == obs.KindPromote && ev.Epoch == 2 {
			promoted = true
		}
	}
	if !promoted {
		t.Error("promoted master's ring has no epoch-2 promote annotation")
	}
	// And /debug/trace on the promoted master serves the stitched span.
	if m2.ObsAddr() == "" {
		t.Fatal("promoted master did not bind its admin plane")
	}
	body, code := httpGet(t, "http://"+m2.ObsAddr()+"/debug/trace?span="+span)
	if code != 200 {
		t.Fatalf("/debug/trace status %d after promotion", code)
	}
	var served []obs.SpanEvent
	if err := json.Unmarshal(body, &served); err != nil {
		t.Fatalf("/debug/trace after promotion is not JSON: %v\n%s", err, body)
	}
	if len(served) == 0 {
		t.Errorf("/debug/trace serves no events for span %s after promotion", span)
	}

	// Fencing, direction 1: a frame stamped with the dead regime's epoch
	// is rejected by the promoted master and accepted nowhere.
	staleConn, w2 := rawPhone(t, tln.Addr().String())
	defer staleConn.Close()
	if w2.Epoch != 2 {
		t.Fatalf("promoted welcome epoch %d, want 2", w2.Epoch)
	}
	if err := staleConn.Send(&protocol.Message{
		Type: protocol.TypeResult, JobID: idPrimes, Partition: 0,
		Attempt: 999999, Epoch: 1, Result: []byte("forged"),
	}); err != nil {
		t.Fatal(err)
	}
	if got := waitCounter(t, sreg, 1, 5*time.Second, "cwc_frames_fenced_total", "type", "result"); got < 1 {
		t.Errorf("promoted master fenced %d stale-epoch results, want >= 1", got)
	}
	if got, _ := m2.Result(idPrimes); string(got) != string(wantPrimes) {
		t.Errorf("stale-epoch frame changed an accepted result: %s", got)
	}

	// Fencing, direction 2: the old primary rises from its own WAL. Its
	// epoch recovered from record type 11 is still 1, and frames from the
	// new regime are rejected with the "superseded" fence — split-brain
	// cannot double-accept.
	pwl2, err := wal.Open(primaryDir, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer pwl2.Close()
	zreg := obs.NewRegistry()
	m3 := server.New(server.Config{
		Addr: "127.0.0.1:0", WAL: pwl2, Role: "resurrected-primary", Metrics: zreg,
	})
	if err := m3.RecoverWAL(); err != nil {
		t.Fatal(err)
	}
	if got := m3.Epoch(); got != 1 {
		t.Fatalf("resurrected primary epoch %d, want 1 from its WAL", got)
	}
	if err := m3.Start(); err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	freshConn, w3 := rawPhone(t, m3.Addr())
	defer freshConn.Close()
	if w3.Epoch != 1 {
		t.Fatalf("resurrected welcome epoch %d, want 1", w3.Epoch)
	}
	if err := freshConn.Send(&protocol.Message{
		Type: protocol.TypeResult, JobID: idWords, Partition: 0,
		Attempt: 999998, Epoch: 2, Result: []byte("from-the-new-regime"),
	}); err != nil {
		t.Fatal(err)
	}
	if got := waitCounter(t, zreg, 1, 5*time.Second, "cwc_frames_fenced_total", "type", "result"); got < 1 {
		t.Errorf("resurrected primary fenced %d newer-epoch results, want >= 1", got)
	}
}

// The asymmetric-partition scenario: replication is severed while the
// primary is alive and still serving workers. The standby's lease runs
// out and it promotes — a genuine split brain, with two live masters —
// and epoch fencing is what keeps it safe: each side rejects the other
// regime's frames.
func TestFailoverSplitBrainPartitionFencing(t *testing.T) {
	if testing.Short() {
		t.Skip("failover e2e skipped in -short mode")
	}
	plan, err := faults.ParseScenario("partition: start=200ms target=replica")
	if err != nil {
		t.Fatal(err)
	}
	part := plan.Partitions[0]
	const lease = 400 * time.Millisecond

	pwl, err := wal.Open(filepath.Join(t.TempDir(), "primary-wal"), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer pwl.Close()
	ship := replica.NewShipper(replica.ShipperOptions{})
	preg := obs.NewRegistry()
	m1 := server.New(server.Config{
		Addr: "127.0.0.1:0", WAL: pwl, ReplicaSink: ship,
		Role: "primary", Metrics: preg,
	})
	ship.BindMaster(m1)
	if err := m1.RecoverWAL(); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.BumpEpoch(); err != nil {
		t.Fatal(err)
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ship.Serve(rln)
	defer ship.Close()
	if err := m1.Start(); err != nil {
		t.Fatal(err)
	}
	defer m1.Close()

	// The partition: the standby's dialer works until the scripted start,
	// then every dial fails — replication severed, primary untouched.
	severed := make(chan struct{})
	primaryAddr := rln.Addr().String()
	dial := func(ctx context.Context) (net.Conn, error) {
		select {
		case <-severed:
			return nil, fmt.Errorf("partition: replication link severed (injected)")
		default:
		}
		var d net.Dialer
		return d.DialContext(ctx, "tcp", primaryAddr)
	}

	tln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sreg := obs.NewRegistry()
	st := replica.New(replica.StandbyOptions{
		PrimaryAddr: primaryAddr,
		Dial:        dial,
		WALDir:      filepath.Join(t.TempDir(), "standby-wal"),
		WALOptions:  wal.Options{Sync: wal.SyncNone},
		Lease:       lease,
		MasterConfig: server.Config{
			Listener: tln, Addr: tln.Addr().String(), Metrics: sreg,
		},
		Metrics: sreg,
	})
	stCtx, stCancel := context.WithCancel(context.Background())
	defer stCancel()
	stDone := make(chan error, 1)
	go func() { stDone <- st.Run(stCtx) }()

	// Let replication sync, then cut it per the script. The standby must
	// kill its live stream connection too: sever by closing the shipper's
	// side via the faults-style trick of closing standby-side dials only
	// works for redials, so drop the live subscribers as a real
	// router-level cut would.
	time.Sleep(part.Start)
	close(severed)
	ship.DropAll()

	select {
	case <-st.Promoted():
	case err := <-stDone:
		t.Fatalf("standby exited instead of promoting: %v", err)
	case <-time.After(10 * lease):
		t.Fatal("standby did not promote after the partition")
	}
	m2 := st.Master()
	defer func() {
		m2.Close()
		st.Log().Close()
	}()
	if m1.Epoch() != 1 || m2.Epoch() != 2 {
		t.Fatalf("split-brain epochs: primary %d (want 1), promoted %d (want 2)", m1.Epoch(), m2.Epoch())
	}

	// Both masters are alive. Prove bidirectional fencing.
	c1, w1 := rawPhone(t, m1.Addr())
	defer c1.Close()
	if w1.Epoch != 1 {
		t.Fatalf("primary welcome epoch %d, want 1", w1.Epoch)
	}
	if err := c1.Send(&protocol.Message{
		Type: protocol.TypeResult, JobID: 1, Attempt: 999997, Epoch: 2, Result: []byte("x"),
	}); err != nil {
		t.Fatal(err)
	}
	if got := waitCounter(t, preg, 1, 5*time.Second, "cwc_frames_fenced_total", "type", "result"); got < 1 {
		t.Errorf("old primary fenced %d newer-epoch frames, want >= 1", got)
	}

	c2, w2 := rawPhone(t, tln.Addr().String())
	defer c2.Close()
	if w2.Epoch != 2 {
		t.Fatalf("promoted welcome epoch %d, want 2", w2.Epoch)
	}
	if err := c2.Send(&protocol.Message{
		Type: protocol.TypeFailure, JobID: 1, Attempt: 999996, Epoch: 1, Error: "stale",
	}); err != nil {
		t.Fatal(err)
	}
	if got := waitCounter(t, sreg, 1, 5*time.Second, "cwc_frames_fenced_total", "type", "failure"); got < 1 {
		t.Errorf("promoted master fenced %d stale-epoch frames, want >= 1", got)
	}
}
