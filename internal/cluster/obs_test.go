package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"cwc/internal/obs"
	"cwc/internal/server"
	"cwc/internal/tasks"
	"cwc/internal/wal"
)

func httpGet(t *testing.T, url string) ([]byte, int) {
	t.Helper()
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return body, resp.StatusCode
}

// The acceptance scenario for the admin plane: a live 4-worker cluster
// with a WAL, checkpoint streaming and one injected online failure must
// expose its flight data — a rich /metrics catalog (including WAL fsync
// latency, keepalive misses, checkpoint bytes and predicted-vs-actual
// makespan), per-phone /statusz, the /debug/sched packing-vs-actuals
// view, and a JSONL span chain covering the traced job's whole life
// including the failure and requeue.
func TestObsAdminPlaneLiveCluster(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(8192)
	var traceBuf bytes.Buffer
	tracer.SetSink(&traceBuf)

	wlog, err := wal.Open(t.TempDir(), wal.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer wlog.Close()

	opts := Options{
		Phones:     DefaultPhones()[:4],
		DelayPerKB: 12 * time.Millisecond,
	}
	opts.Server.Metrics = reg
	opts.Server.Tracer = tracer
	opts.Server.ObsAddr = "127.0.0.1:0"
	opts.Server.WAL = wlog
	opts.Server.KeepalivePeriod = 50 * time.Millisecond
	opts.Server.KeepaliveTolerance = 3
	opts.Server.CheckpointEveryKB = 16
	c := startCluster(t, opts)

	if c.Master.ObsAddr() == "" {
		t.Fatal("admin plane did not bind")
	}
	base := "http://" + c.Master.ObsAddr()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := c.Master.MeasureBandwidths(ctx); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(51))
	input := tasks.GenIntegers(256, 100000, rng)
	var ck tasks.Checkpoint
	want, err := (tasks.PrimeCount{}).Process(context.Background(), input, &ck)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Master.Submit(tasks.PrimeCount{}, input, false)
	if err != nil {
		t.Fatal(err)
	}

	// Online failure mid-round: the unplugged phone reports its failure,
	// the master requeues the remainder, and the trace gets its
	// failure→requeue edge.
	go func() {
		time.Sleep(300 * time.Millisecond)
		c.Workers[0].Unplug()
	}()
	results := runToCompletion(t, c, []int{id}, 90*time.Second)
	if string(results[id]) != string(want) {
		t.Errorf("result with obs enabled %s != local %s", results[id], want)
	}

	// /healthz
	body, code := httpGet(t, base+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	// /metrics: a real catalog, not a token gesture.
	body, code = httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	text := string(body)
	series := 0
	for _, line := range strings.Split(text, "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			series++
		}
	}
	if series < 20 {
		t.Errorf("/metrics exposes %d series, want >= 20:\n%s", series, text)
	}
	for _, must := range []string{
		"cwc_wal_fsync_ms_count",
		"cwc_wal_append_ms_count",
		"cwc_keepalive_misses_total",
		"cwc_checkpoint_bytes_total",
		"cwc_round_predicted_makespan_ms",
		"cwc_round_actual_makespan_ms",
		"cwc_exec_ms_count",
		"cwc_results_total",
		"cwc_failures_total",
		"cwc_requeues_total",
		`cwc_worker_exec_ms{phone=`,
	} {
		if !strings.Contains(text, must) {
			t.Errorf("/metrics missing %q", must)
		}
	}

	// The WAL actually ran, so its histograms must have observations.
	var appendCount int
	fmt.Sscanf(findLine(text, "cwc_wal_append_ms_count"), "cwc_wal_append_ms_count %d", &appendCount)
	if appendCount == 0 {
		t.Error("cwc_wal_append_ms_count is zero on a cluster run with a WAL")
	}

	// /statusz: the whole fleet with per-phone detail.
	body, code = httpGet(t, base+"/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz status %d", code)
	}
	var st struct {
		PhonesAlive int `json:"phones_alive"`
		Phones      []struct {
			ID       int     `json:"id"`
			Model    string  `json:"model"`
			BMsPerKB float64 `json:"b_ms_per_kb"`
		} `json:"phones"`
		Rounds    int `json:"rounds"`
		LastRound *struct {
			PredictedMakespanMs float64 `json:"predicted_makespan_ms"`
		} `json:"last_round"`
		JobsCompleted int `json:"jobs_completed"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/statusz is not JSON: %v\n%s", err, body)
	}
	if len(st.Phones) != 4 {
		t.Errorf("/statusz lists %d phones, want 4", len(st.Phones))
	}
	if st.PhonesAlive != 3 {
		t.Errorf("/statusz phones_alive = %d, want 3 after one unplug", st.PhonesAlive)
	}
	if st.Rounds < 1 || st.LastRound == nil || st.JobsCompleted != 1 {
		t.Errorf("/statusz rounds=%d last_round=%v completed=%d", st.Rounds, st.LastRound, st.JobsCompleted)
	}

	// /debug/sched: last round's packing decision with actuals folded in.
	body, code = httpGet(t, base+"/debug/sched")
	if code != http.StatusOK {
		t.Fatalf("/debug/sched status %d: %s", code, body)
	}
	var snap server.SchedSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/debug/sched is not JSON: %v\n%s", err, body)
	}
	if len(snap.Phones) == 0 {
		t.Fatal("/debug/sched has no phones")
	}
	if snap.PredictedMakespanMs <= 0 || snap.ActualMakespanMs <= 0 {
		t.Errorf("/debug/sched makespans predicted=%v actual=%v, want both > 0",
			snap.PredictedMakespanMs, snap.ActualMakespanMs)
	}
	assigns, resolved := 0, 0
	for _, sp := range snap.Phones {
		for _, a := range sp.Assignments {
			assigns++
			if a.PredictedMs <= 0 {
				t.Errorf("assignment %+v has no predicted cost", a)
			}
			if a.Outcome == "result" && a.ActualMs >= 0 {
				resolved++
			}
		}
	}
	if assigns == 0 {
		t.Error("/debug/sched has no assignments")
	}
	if resolved == 0 {
		t.Error("/debug/sched has no assignment with a measured result latency")
	}

	// /debug/trace filtered to the job's span.
	span := fmt.Sprintf("j%d", id)
	body, code = httpGet(t, base+"/debug/trace?span="+span)
	if code != http.StatusOK {
		t.Fatalf("/debug/trace status %d", code)
	}
	var evs []obs.SpanEvent
	if err := json.Unmarshal(body, &evs); err != nil {
		t.Fatalf("/debug/trace is not JSON: %v\n%s", err, body)
	}
	if len(evs) == 0 {
		t.Fatalf("no trace events for span %s", span)
	}

	// The JSONL sink holds the full chain: assign → ... → aggregate with
	// the injected failure and its requeue in between.
	kinds := map[string]bool{}
	for _, line := range strings.Split(traceBuf.String(), "\n") {
		if line == "" {
			continue
		}
		var ev obs.SpanEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL trace line %q: %v", line, err)
		}
		if ev.Span == span {
			kinds[ev.Kind] = true
		}
	}
	for _, k := range []string{
		obs.KindSubmit, obs.KindAssign, obs.KindResult,
		obs.KindFailure, obs.KindRequeue, obs.KindAggregate,
	} {
		if !kinds[k] {
			t.Errorf("span %s JSONL chain missing kind %q (have %v)", span, k, kinds)
		}
	}
}

func findLine(text, prefix string) string {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	return ""
}

// obs must be a flight recorder, not a flight control: with ObsAddr
// unset, the aggregates are byte-identical to an instrumented run, no
// admin listener exists, not one telemetry frame crosses the wire (the
// welcome never asks for worker telemetry), and shutdown returns the
// process to its goroutine baseline.
func TestObsDisabledNeutrality(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	primes := tasks.GenIntegers(96, 100000, rng)
	text := tasks.GenText(96, rng)

	run := func(t *testing.T, opts Options) map[int][]byte {
		t.Helper()
		c := startCluster(t, opts)
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := c.Master.MeasureBandwidths(ctx); err != nil {
			t.Fatal(err)
		}
		id1, err := c.Master.Submit(tasks.PrimeCount{}, primes, false)
		if err != nil {
			t.Fatal(err)
		}
		id2, err := c.Master.Submit(tasks.WordCount{Word: "sale"}, text, false)
		if err != nil {
			t.Fatal(err)
		}
		results := runToCompletion(t, c, []int{id1, id2}, 60*time.Second)
		// Key results by submission order, not job ID, for comparison.
		return map[int][]byte{0: results[id1], 1: results[id2]}
	}

	before := runtime.NumGoroutine()

	// The disabled run gets a private registry purely as a witness: with
	// ObsAddr unset the master must never see a telemetry frame, because
	// its welcome never asked the workers to buffer any.
	dreg := obs.NewRegistry()
	var plain map[int][]byte
	t.Run("disabled", func(t *testing.T) {
		opts := Options{}
		opts.Server.Metrics = dreg
		plain = run(t, opts)
	})
	if got := dreg.Counter("cwc_frames_received_total", "type", "telemetry").Value(); got != 0 {
		t.Errorf("obs-disabled master received %d telemetry frames, want 0", got)
	}
	if got := dreg.Counter("cwc_telemetry_events_total", "kind", "exec_finish").Value(); got != 0 {
		t.Errorf("obs-disabled master folded %d worker events, want 0", got)
	}

	// The disabled run must not leave goroutines behind (no admin plane,
	// no scrape loops). Cleanup is asynchronous, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines grew from %d to %d after obs-disabled run", before, n)
	}

	var instrumented map[int][]byte
	ereg := obs.NewRegistry()
	t.Run("enabled", func(t *testing.T) {
		tracer := obs.NewTracer(1024)
		tracer.SetSink(io.Discard)
		opts := Options{}
		opts.Server.Metrics = ereg
		opts.Server.Tracer = tracer
		opts.Server.ObsAddr = "127.0.0.1:0"
		instrumented = run(t, opts)
	})
	// The same workload with the obs plane bound DOES ship telemetry —
	// proving the disabled run's zero above is the gate, not a dead path.
	if got := ereg.Counter("cwc_frames_received_total", "type", "telemetry").Value(); got < 1 {
		t.Errorf("obs-enabled master received %d telemetry frames, want >= 1", got)
	}

	for k, p := range plain {
		if !bytes.Equal(p, instrumented[k]) {
			t.Errorf("job %d: obs-disabled aggregate %q != instrumented %q", k, p, instrumented[k])
		}
	}
}

// A master with ObsAddr unset must report no admin address.
func TestObsAddrUnboundByDefault(t *testing.T) {
	c := startCluster(t, Options{})
	if got := c.Master.ObsAddr(); got != "" {
		t.Errorf("ObsAddr = %q on a default cluster, want empty", got)
	}
}
