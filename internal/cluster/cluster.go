// Package cluster is the batteries-included harness that stands up a
// complete CWC deployment in one process: a master on a loopback TCP
// port plus a fleet of workers with device-catalog personalities. The
// examples and integration tests use it; it is also the shortest path for
// a library user to try CWC ("quickstart" in the README).
package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"cwc/internal/device"
	"cwc/internal/faults"
	"cwc/internal/server"
	"cwc/internal/worker"
)

// Options configure a cluster.
type Options struct {
	// Phones to emulate; defaults to six phones from the device catalog.
	Phones []device.Phone
	// DelayPerKB adds emulated per-KB execution delay to every worker,
	// scaled inversely by each phone's effective clock so faster phones
	// finish sooner (zero: full host speed).
	DelayPerKB time.Duration
	// ChargingTimeScale, when positive, gives every worker an emulated
	// battery (from its device spec) charging at the given acceleration
	// and the live MIMD task throttler (§4.3). Phones start at
	// ChargingStartPct percent.
	ChargingTimeScale float64
	ChargingStartPct  float64
	// Faults, when set, injects the plan's deterministic faults into every
	// link: worker i dials through Faults.Dialer(i, ...) and the master's
	// listener is wrapped with Faults.WrapListener. Pair it with a
	// Reconnect policy so workers ride out the injected failures.
	Faults *faults.Plan
	// Reconnect is every worker's reconnection policy (zero values take
	// the worker defaults). A nonzero Seed is offset per worker so the
	// fleet's backoff jitter does not move in lockstep.
	Reconnect worker.ReconnectPolicy
	// CheckpointEveryKB / CheckpointEvery override every worker's
	// checkpoint-streaming cadence (zero: follow the policy the server
	// announces in its welcome; negative: disable streaming on the
	// worker regardless of the server). The server-side cadence is set
	// through the embedded Server config.
	CheckpointEveryKB int
	CheckpointEvery   time.Duration
	// Server overrides; Addr is always forced to loopback.
	Server server.Config
}

// Cluster is a running in-process deployment.
type Cluster struct {
	Master  *server.Master
	Workers []*worker.Phone

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// DefaultPhones returns a small heterogeneous fleet for examples.
func DefaultPhones() []device.Phone {
	cat := device.Catalog()
	phones := make([]device.Phone, 6)
	for i := range phones {
		phones[i] = device.Phone{ID: i, Spec: cat[i%len(cat)], House: i/2 + 1, Radio: device.WiFiG}
	}
	return phones
}

// Start launches the master and workers and waits until every worker has
// registered.
func Start(ctx context.Context, opts Options) (*Cluster, error) {
	if len(opts.Phones) == 0 {
		opts.Phones = DefaultPhones()
	}
	cfg := opts.Server
	cfg.Addr = "127.0.0.1:0"
	if opts.Faults != nil {
		prev := cfg.ListenerHook
		cfg.ListenerHook = func(ln net.Listener) net.Listener {
			if prev != nil {
				ln = prev(ln)
			}
			return opts.Faults.WrapListener(ln)
		}
	}
	m := server.New(cfg)
	if err := m.Start(); err != nil {
		return nil, err
	}

	runCtx, cancel := context.WithCancel(context.Background())
	c := &Cluster{Master: m, cancel: cancel}

	var byz map[int]faults.ByzantineSpec
	if opts.Faults != nil {
		byz = opts.Faults.ByzantineFor(len(opts.Phones))
	}
	for i, ph := range opts.Phones {
		delay := opts.DelayPerKB
		if delay > 0 {
			// Faster phones get proportionally less emulated delay.
			delay = time.Duration(float64(delay) * 1000 / ph.Spec.CPU.EffectiveMHz())
		}
		var charging *worker.Charging
		if opts.ChargingTimeScale > 0 {
			charging = &worker.Charging{
				Battery:      ph.Spec.Battery,
				StartPercent: opts.ChargingStartPct,
				TimeScale:    opts.ChargingTimeScale,
			}
		}
		var dial func(ctx context.Context) (net.Conn, error)
		if opts.Faults != nil {
			addr := m.Addr()
			dial = opts.Faults.Dialer(i, func(ctx context.Context) (net.Conn, error) {
				var d net.Dialer
				return d.DialContext(ctx, "tcp", addr)
			})
		}
		rc := opts.Reconnect
		if rc.Seed != 0 {
			rc.Seed += int64(i)
		}
		var wb worker.Byzantine
		if s, ok := byz[i]; ok {
			wb = worker.Byzantine{
				LiarProb:    s.LiarProb,
				LazyProb:    s.LazyProb,
				CorruptProb: s.CorruptProb,
				Seed:        s.Seed,
			}
		}
		w, err := worker.New(worker.Config{
			ServerAddr: m.Addr(),
			Model:      ph.Spec.Model,
			CPUMHz:     ph.Spec.CPU.ClockMHz,
			RAMMB:      ph.Spec.RAMMB,
			DelayPerKB: delay,
			Dial:       dial,
			Charging:   charging,
			Reconnect:  rc,
			Byzantine:  wb,

			CheckpointEveryKB: opts.CheckpointEveryKB,
			CheckpointEvery:   opts.CheckpointEvery,
		})
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("cluster: creating worker %s: %w", ph.Name(), err)
		}
		c.Workers = append(c.Workers, w)
		c.wg.Add(1)
		go func(w *worker.Phone) {
			defer c.wg.Done()
			_ = w.Run(runCtx)
		}(w)
	}

	if err := m.WaitForPhones(ctx, len(opts.Phones)); err != nil {
		c.Stop()
		return nil, err
	}
	return c, nil
}

// Stop tears the whole deployment down.
func (c *Cluster) Stop() {
	c.Master.Close()
	c.cancel()
	c.wg.Wait()
}
