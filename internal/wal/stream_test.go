package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestEncodeRecordRoundtrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("ab"), 5000)}
	var stream []byte
	for i, p := range payloads {
		stream = append(stream, EncodeRecord(uint8(i+1), p)...)
	}
	sr := NewStreamReader(bytes.NewReader(stream))
	for i, p := range payloads {
		rec, err := sr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Type != uint8(i+1) {
			t.Errorf("record %d: type %d, want %d", i, rec.Type, i+1)
		}
		if !bytes.Equal(rec.Payload, p) {
			t.Errorf("record %d: payload mismatch (%d bytes, want %d)", i, len(rec.Payload), len(p))
		}
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("after last record: %v, want io.EOF", err)
	}
}

// TestStreamReaderEveryTruncation cuts a multi-record stream at every
// byte offset and asserts the reader yields exactly the records whose
// frames fit entirely before the cut, then reports a clean EOF at a
// record boundary or ErrUnexpectedEOF mid-record — never a partial
// record, never a false success.
func TestStreamReaderEveryTruncation(t *testing.T) {
	recs := []struct {
		typ     uint8
		payload []byte
	}{
		{1, []byte("hello")},
		{7, nil},
		{2, bytes.Repeat([]byte("q"), 300)},
	}
	var stream []byte
	var boundaries []int // offsets at which a whole record ends
	for _, r := range recs {
		stream = append(stream, EncodeRecord(r.typ, r.payload)...)
		boundaries = append(boundaries, len(stream))
	}
	for cut := 0; cut <= len(stream); cut++ {
		wantComplete := 0
		for _, b := range boundaries {
			if b <= cut {
				wantComplete++
			}
		}
		sr := NewStreamReader(bytes.NewReader(stream[:cut]))
		got := 0
		var err error
		for {
			var rec Record
			rec, err = sr.Next()
			if err != nil {
				break
			}
			if rec.Type != recs[got].typ || !bytes.Equal(rec.Payload, recs[got].payload) {
				t.Fatalf("cut %d: record %d mismatch", cut, got)
			}
			got++
		}
		if got != wantComplete {
			t.Fatalf("cut %d: decoded %d records, want %d", cut, got, wantComplete)
		}
		atBoundary := cut == 0
		for _, b := range boundaries {
			if cut == b {
				atBoundary = true
			}
		}
		if atBoundary && err != io.EOF {
			t.Fatalf("cut %d (record boundary): err %v, want io.EOF", cut, err)
		}
		if !atBoundary && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d (mid-record): err %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestStreamReaderCorruption(t *testing.T) {
	frame := EncodeRecord(3, []byte("payload-bytes"))

	// Flip one payload byte: CRC must catch it.
	bad := append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0xff
	if _, err := NewStreamReader(bytes.NewReader(bad)).Next(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("payload flip: err %v, want ErrCorrupt", err)
	}

	// Zero length prefix: invalid (a record is at least its type byte).
	zero := append([]byte(nil), frame...)
	zero[0], zero[1], zero[2], zero[3] = 0, 0, 0, 0
	if _, err := NewStreamReader(bytes.NewReader(zero)).Next(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("zero length: err %v, want ErrCorrupt", err)
	}

	// Absurd length prefix: rejected before any allocation attempt.
	huge := append([]byte(nil), frame...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0xff
	if _, err := NewStreamReader(bytes.NewReader(huge)).Next(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("huge length: err %v, want ErrCorrupt", err)
	}
}
