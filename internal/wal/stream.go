package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// EncodeRecord frames one record exactly as Append writes it to disk:
//
//	[4B length LE] [4B CRC32-IEEE of body] [body = 1B type + payload]
//
// The same framing carries the replication stream between a primary
// master and its hot standby (internal/replica), so a standby can append
// shipped bytes to its own log verbatim.
func EncodeRecord(typ uint8, payload []byte) []byte {
	frame := make([]byte, headerSize+1+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(1+len(payload)))
	frame[headerSize] = typ
	copy(frame[headerSize+1:], payload)
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(frame[headerSize:]))
	return frame
}

// streamChunk caps how much Next allocates before any body byte has
// arrived: a corrupt length prefix costs at most this much, never the
// full MaxRecordBytes.
const streamChunk = 1 << 20 // 1 MiB

// StreamReader decodes the record framing incrementally from a live byte
// stream. Unlike scanRecords it never sees the whole input at once: Next
// blocks on the reader until one complete record (or an error) is
// available, which is what a replication subscriber needs.
//
// Error contract — a partial record is never surfaced:
//
//   - io.EOF: the stream ended exactly at a record boundary (clean end).
//   - io.ErrUnexpectedEOF: the stream was cut inside a record; the torn
//     record is not returned.
//   - ErrCorrupt (wrapped): an invalid declared length or a checksum
//     mismatch; the stream is unrecoverable past this point.
type StreamReader struct {
	r io.Reader
}

// NewStreamReader wraps r. The reader is consumed record by record; for
// unbuffered sources (a net.Conn) wrap it in a bufio.Reader first.
func NewStreamReader(r io.Reader) *StreamReader { return &StreamReader{r: r} }

// Next returns the next complete record.
func (s *StreamReader) Next() (Record, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(s.r, hdr[:]); err != nil {
		// io.EOF here is a clean boundary; a partial header is a cut.
		return Record{}, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:4]))
	if n < 1 || n > MaxRecordBytes {
		return Record{}, fmt.Errorf("%w: stream record declares invalid length %d", ErrCorrupt, n)
	}
	body := make([]byte, minInt(n, streamChunk))
	off := 0
	for {
		if _, err := io.ReadFull(s.r, body[off:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Record{}, err
		}
		off = len(body)
		if off == n {
			break
		}
		body = append(body, make([]byte, minInt(n-off, streamChunk))...)
	}
	if sum := binary.LittleEndian.Uint32(hdr[4:]); sum != crc32.ChecksumIEEE(body) {
		return Record{}, fmt.Errorf("%w: stream record checksum mismatch", ErrCorrupt)
	}
	return Record{Type: body[0], Payload: body[1:]}, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
