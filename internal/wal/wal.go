// Package wal is the master's write-ahead log: an append-only,
// CRC-framed record log that makes the central server as crash-tolerant
// as the phones it coordinates. Every durable state change (a job
// accepted, a partition created, a report recorded, ...) is appended as
// one framed record before — or atomically with — the in-memory
// mutation, so a master killed at any instant can replay
// snapshot + log and resume where it died.
//
// On-disk layout (one directory):
//
//	wal-00000007.log      the live segment (framed records, append-only)
//	snapshot-00000007.json the compaction snapshot covering all earlier
//	                      segments (written atomically: temp + rename)
//
// Record framing:
//
//	[4B length LE] [4B CRC32(IEEE) of body] [body = 1B type + payload]
//
// Recovery tolerates a torn tail — the final record of the final
// segment being truncated mid-write or failing its checksum — by
// dropping it with a logged warning and truncating the file back to the
// last good boundary. Corruption anywhere *before* the tail (a bad
// checksum with further bytes after it, an unskippable length) fails
// loudly instead: silent mid-log damage must never masquerade as a
// clean shorter history.
//
// Compaction folds the log into a snapshot provided by the caller and
// rotates to a fresh segment. The ordering is crash-safe: the new
// (empty) segment is created first, then the snapshot is renamed into
// place, then old files are deleted — at every intermediate crash point
// the highest snapshot plus the segments at or above its sequence
// reconstruct the full state exactly once.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cwc/internal/obs"
)

// Record is one logical log entry: an opaque payload tagged with a
// caller-defined type byte.
type Record struct {
	Type    uint8
	Payload []byte
}

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append (durable acknowledgements;
	// the default).
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background loop every Options.Interval;
	// a crash may lose the records of the last interval.
	SyncInterval
	// SyncNone never fsyncs explicitly; durability is whatever the OS
	// page cache provides.
	SyncNone
)

// ParseSyncPolicy maps a flag value to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or none)", s)
}

// Options tune a Log. The zero value is a safe default (fsync on every
// append, no automatic compaction threshold).
type Options struct {
	// Sync is the fsync policy for appends.
	Sync SyncPolicy
	// Interval is the background fsync period for SyncInterval
	// (default 100 ms).
	Interval time.Duration
	// CompactBytes, when positive, makes CompactDue report true once the
	// segments hold at least this many bytes.
	CompactBytes int64
	// Logger receives recovery warnings (torn tails dropped); nil
	// discards them.
	Logger *log.Logger
	// WriterHook, when set, wraps the segment file before records are
	// written through it (fault injection, metrics). If the wrapped
	// writer implements Sync() error, syncs flow through it too.
	WriterHook func(io.Writer) io.Writer
	// Metrics, when set, receives WAL instrumentation: append and fsync
	// latency histograms (cwc_wal_append_ms, cwc_wal_fsync_ms) plus
	// appended-bytes and error counters. Nil disables it at zero cost.
	Metrics *obs.Registry
}

const (
	headerSize = 8
	// MaxRecordBytes bounds one framed body (type byte + payload); a
	// declared length beyond it is treated as corruption, not allocation
	// advice.
	MaxRecordBytes = 64 << 20
)

// Sentinel errors.
var (
	// ErrCorrupt marks unrecoverable log damage (a bad record that is
	// not the torn tail).
	ErrCorrupt = errors.New("wal: corrupt log")
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: log closed")
	// ErrTooLarge rejects a record over MaxRecordBytes.
	ErrTooLarge = errors.New("wal: record too large")
)

// tornError marks a damaged region that extends to the end of the data:
// the signature of a crash mid-append, recoverable by truncation when it
// sits at the tail of the final segment.
type tornError struct {
	off    int
	reason string
}

func (e *tornError) Error() string {
	return fmt.Sprintf("torn record at offset %d: %s", e.off, e.reason)
}

// scanRecords decodes framed records from b. It returns the decoded
// records, the offset just past the last good record, and an error
// describing what stopped the scan: nil (clean end), *tornError (damage
// extending to the end of b) or an ErrCorrupt-wrapped error (damage with
// further bytes behind it).
func scanRecords(b []byte) (recs []Record, good int, err error) {
	off := 0
	for off < len(b) {
		rest := len(b) - off
		if rest < headerSize {
			return recs, off, &tornError{off, fmt.Sprintf("%d-byte header fragment", rest)}
		}
		n := int(binary.LittleEndian.Uint32(b[off:]))
		if n < 1 || n > MaxRecordBytes {
			if n > rest-headerSize {
				// The frame claims to extend past the data; whether the
				// length is insane or merely cut short, the damage runs
				// to the end.
				return recs, off, &tornError{off, fmt.Sprintf("declared length %d exceeds remaining %d bytes", n, rest-headerSize)}
			}
			if n == 0 && allZero(b[off:]) {
				// A zero-filled tail: a crash after an append extended the
				// file but before the data blocks were flushed leaves a
				// declared length of 0 with nothing but zeros behind it —
				// an ordinary post-crash artifact, recoverable by
				// truncation like any other torn tail.
				return recs, off, &tornError{off, fmt.Sprintf("zero-filled tail of %d bytes", rest)}
			}
			return recs, off, fmt.Errorf("%w: record at offset %d declares invalid length %d", ErrCorrupt, off, n)
		}
		if n > rest-headerSize {
			return recs, off, &tornError{off, fmt.Sprintf("declared length %d exceeds remaining %d bytes", n, rest-headerSize)}
		}
		body := b[off+headerSize : off+headerSize+n]
		if sum := binary.LittleEndian.Uint32(b[off+4:]); sum != crc32.ChecksumIEEE(body) {
			if off+headerSize+n == len(b) {
				// The bad record is the very last thing in the data: a
				// torn or bit-flipped tail, droppable.
				return recs, off, &tornError{off, "checksum mismatch in final record"}
			}
			return recs, off, fmt.Errorf("%w: checksum mismatch at offset %d with %d bytes following",
				ErrCorrupt, off, len(b)-(off+headerSize+n))
		}
		recs = append(recs, Record{Type: body[0], Payload: append([]byte(nil), body[1:]...)})
		off += headerSize + n
	}
	return recs, off, nil
}

// allZero reports whether every byte of b is zero.
func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// Log is an open write-ahead log directory.
type Log struct {
	dir  string
	opts Options

	snapshot  []byte
	recovered []Record

	mu     sync.Mutex
	f      *os.File
	w      io.Writer
	seq    int
	size   int64 // bytes in the live segment
	total  int64 // bytes across all live segments (compaction trigger)
	dirty  bool
	closed bool
	failed error // set when a failed append could not be clawed back

	stopc chan struct{}
	wg    sync.WaitGroup

	// Instrumentation (nil when Options.Metrics is unset).
	appendHist  *obs.Histogram
	fsyncHist   *obs.Histogram
	appendBytes *obs.Counter
	appendErrs  *obs.Counter
}

func segmentName(seq int) string  { return fmt.Sprintf("wal-%08d.log", seq) }
func snapshotName(seq int) string { return fmt.Sprintf("snapshot-%08d.json", seq) }

// parseSeq extracts the sequence number from a prefixed, suffixed name.
func parseSeq(name, prefix, suffix string) (int, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix))
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// Open opens (creating if needed) the log directory, recovers the
// snapshot and every decodable record, repairs a torn tail, and readies
// the last segment for appending. The recovered state is available from
// Snapshot and Recovered until the first Compact.
func Open(dir string, opts Options) (*Log, error) {
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	if opts.Logger == nil {
		// Options.Logger is a *log.Logger on purpose: this package stays
		// free of higher-layer dependencies, and obs.Logger.Std bridges
		// leveled daemon logging into it.
		//lint:ignore obslog default discard sink for the deliberately obs-free *log.Logger option
		opts.Logger = log.New(io.Discard, "", 0)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", dir, err)
	}
	snapSeq := 0
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			// A WriteFileAtomic staging file orphaned by a crash between
			// create and rename; never part of recovered state.
			_ = os.Remove(filepath.Join(dir, e.Name()))
			continue
		}
		if n, ok := parseSeq(e.Name(), "snapshot-", ".json"); ok && n > snapSeq {
			snapSeq = n
		}
	}
	l := &Log{dir: dir, opts: opts, stopc: make(chan struct{})}
	if m := opts.Metrics; m != nil {
		m.Help("cwc_wal_append_ms", "WAL record append latency (framing, write and policy fsync) in milliseconds")
		m.Help("cwc_wal_fsync_ms", "WAL fsync latency in milliseconds")
		m.Help("cwc_wal_appended_bytes_total", "bytes appended to the WAL, framing included")
		m.Help("cwc_wal_append_errors_total", "failed WAL appends (clawed back or wedged)")
		l.appendHist = m.Histogram("cwc_wal_append_ms")
		l.fsyncHist = m.Histogram("cwc_wal_fsync_ms")
		l.appendBytes = m.Counter("cwc_wal_appended_bytes_total")
		l.appendErrs = m.Counter("cwc_wal_append_errors_total")
	}
	if snapSeq > 0 {
		b, err := os.ReadFile(filepath.Join(dir, snapshotName(snapSeq)))
		if err != nil {
			return nil, fmt.Errorf("wal: reading snapshot: %w", err)
		}
		l.snapshot = b
	}
	var segSeqs []int
	for _, e := range entries {
		n, ok := parseSeq(e.Name(), "wal-", ".log")
		if !ok {
			continue
		}
		if n < snapSeq {
			// Fully covered by the snapshot: a compaction died between
			// the rename and the deletes. Finish its job.
			_ = os.Remove(filepath.Join(dir, e.Name()))
			continue
		}
		segSeqs = append(segSeqs, n)
	}
	sort.Ints(segSeqs)
	for i, s := range segSeqs {
		path := filepath.Join(dir, segmentName(s))
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("wal: reading %s: %w", filepath.Base(path), err)
		}
		recs, good, serr := scanRecords(b)
		if serr != nil {
			var torn *tornError
			if i == len(segSeqs)-1 && errors.As(serr, &torn) {
				l.opts.Logger.Printf("wal: dropping torn tail of %s (%d bytes): %v",
					filepath.Base(path), len(b)-good, serr)
				if err := os.Truncate(path, int64(good)); err != nil {
					return nil, fmt.Errorf("wal: repairing %s: %w", filepath.Base(path), err)
				}
			} else {
				return nil, fmt.Errorf("wal: segment %s: %w", filepath.Base(path), serr)
			}
		}
		l.recovered = append(l.recovered, recs...)
		l.total += int64(good)
	}
	seq := snapSeq
	if len(segSeqs) > 0 {
		seq = segSeqs[len(segSeqs)-1]
	}
	if seq == 0 {
		seq = 1
	}
	l.seq = seq
	f, err := os.OpenFile(filepath.Join(dir, segmentName(seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: opening segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: stat segment: %w", err)
	}
	l.f = f
	l.size = st.Size()
	l.w = io.Writer(f)
	if opts.WriterHook != nil {
		l.w = opts.WriterHook(f)
	}
	if opts.Sync == SyncInterval {
		l.wg.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Snapshot returns the compaction snapshot found at Open (nil if none).
func (l *Log) Snapshot() []byte { return l.snapshot }

// Recovered returns the records decoded at Open, in append order.
func (l *Log) Recovered() []Record { return l.recovered }

// LogBytes reports the bytes held in live segments (snapshot excluded).
func (l *Log) LogBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// CompactDue reports whether the segments have outgrown
// Options.CompactBytes.
func (l *Log) CompactDue() bool {
	if l.opts.CompactBytes <= 0 {
		return false
	}
	return l.LogBytes() >= l.opts.CompactBytes
}

// Append frames one record and writes it to the live segment, fsyncing
// per the policy. A failed or short write — or, under SyncAlways, a
// failed fsync — is clawed back by truncating the segment to the last
// good boundary, so an errored append never leaves its record in the
// log and the log stays replayable; if even the claw-back fails the log
// wedges and every later call reports the wedge.
func (l *Log) Append(typ uint8, payload []byte) (err error) {
	if len(payload) > MaxRecordBytes-1 {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	if l.appendHist != nil {
		start := time.Now()
		defer func() {
			l.appendHist.Observe(float64(time.Since(start)) / float64(time.Millisecond))
			if err != nil {
				l.appendErrs.Inc()
			}
		}()
	}
	frame := EncodeRecord(typ, payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed != nil {
		return l.failed
	}
	n, err := l.w.Write(frame)
	if err != nil || n < len(frame) {
		if err == nil {
			err = io.ErrShortWrite
		}
		if terr := l.f.Truncate(l.size); terr != nil {
			l.failed = fmt.Errorf("wal: wedged: append failed (%v) and truncate failed: %w", err, terr)
			return l.failed
		}
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(frame))
	l.total += int64(len(frame))
	l.dirty = true
	if l.appendBytes != nil {
		l.appendBytes.Add(int64(len(frame)))
	}
	if l.opts.Sync == SyncAlways {
		if serr := l.syncLocked(); serr != nil {
			// The caller treats a failed append as not-persisted (Submit
			// does not consume the JobID), so the fully-written record
			// must not stay in the log: a retry would append a duplicate
			// and wreck replay. Claw it back like a failed write; wedge
			// if even that fails.
			if terr := l.f.Truncate(l.size - int64(len(frame))); terr != nil {
				l.failed = fmt.Errorf("wal: wedged: sync failed (%v) and truncate failed: %w", serr, terr)
				return l.failed
			}
			l.size -= int64(len(frame))
			l.total -= int64(len(frame))
			return serr
		}
	}
	return nil
}

// Sync forces appended records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	start := time.Now()
	var err error
	if s, ok := l.w.(interface{ Sync() error }); ok {
		err = s.Sync()
	} else {
		err = l.f.Sync()
	}
	if l.fsyncHist != nil {
		l.fsyncHist.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	}
	if err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.dirty = false
	return nil
}

func (l *Log) syncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := l.Sync(); err != nil && !errors.Is(err, ErrClosed) {
				l.opts.Logger.Printf("wal: background sync: %v", err)
			}
		case <-l.stopc:
			return
		}
	}
}

// Compact folds everything logged so far into a snapshot produced by
// write and rotates to a fresh segment. The caller must guarantee that
// the state write serializes against its own mutations (the master holds
// its lock across the call); Compact itself serializes against appends.
func (l *Log) Compact(write func(io.Writer) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	newSeq := l.seq + 1
	segPath := filepath.Join(l.dir, segmentName(newSeq))
	nf, err := os.OpenFile(segPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compacting: %w", err)
	}
	if err := WriteFileAtomic(filepath.Join(l.dir, snapshotName(newSeq)), write); err != nil {
		nf.Close()
		os.Remove(segPath)
		return fmt.Errorf("wal: compacting: %w", err)
	}
	// The snapshot is durable and covers every segment up to l.seq:
	// retire the old generation. Deletion failures only waste disk.
	if err := l.syncLocked(); err != nil {
		l.opts.Logger.Printf("wal: compaction: final sync of retired segment: %v", err)
	}
	l.f.Close()
	for s := l.seq; s > 0; s-- {
		seg := filepath.Join(l.dir, segmentName(s))
		if err := os.Remove(seg); err != nil {
			if !os.IsNotExist(err) {
				l.opts.Logger.Printf("wal: compaction: removing %s: %v", filepath.Base(seg), err)
			}
			break
		}
	}
	for s := newSeq - 1; s > 0; s-- {
		snap := filepath.Join(l.dir, snapshotName(s))
		if err := os.Remove(snap); err != nil {
			break
		}
	}
	l.f = nf
	l.w = io.Writer(nf)
	if l.opts.WriterHook != nil {
		l.w = l.opts.WriterHook(nf)
	}
	l.seq = newSeq
	l.size = 0
	l.total = 0
	l.dirty = false
	l.failed = nil
	return nil
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	serr := l.syncLocked()
	cerr := l.f.Close()
	l.mu.Unlock()
	close(l.stopc)
	l.wg.Wait()
	if serr != nil {
		return serr
	}
	return cerr
}

// ScanSegment decodes one segment file standalone, returning its records
// and the byte offset at the end of each — i.e. every clean truncation
// point. Crash harnesses use it to enumerate kill points.
func ScanSegment(path string) ([]Record, []int64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	recs, _, serr := scanRecords(b)
	if serr != nil {
		return nil, nil, fmt.Errorf("wal: scanning %s: %w", filepath.Base(path), serr)
	}
	offs := make([]int64, 0, len(recs))
	off := int64(0)
	for _, r := range recs {
		off += int64(headerSize + 1 + len(r.Payload))
		offs = append(offs, off)
	}
	return recs, offs, nil
}

// WriteFileAtomic writes path through a temp file in the same directory,
// fsyncs it, renames it over path, and fsyncs the directory — readers
// never observe a torn file and a crash cannot destroy a previous one.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(e error) error {
		f.Close()
		os.Remove(tmp)
		return e
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
