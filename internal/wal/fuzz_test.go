package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzScanRecords asserts the frame decoder's safety contract on
// arbitrary bytes: never panic, never read past the buffer, report a
// good-offset within bounds, and classify every failure as either a
// torn tail or corruption (so callers always know whether repair is
// legal).
func FuzzScanRecords(f *testing.F) {
	f.Add([]byte{})
	// A valid two-record log as a seed corpus entry.
	dir := f.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	l.Append(1, []byte("hello"))
	l.Append(2, []byte("world"))
	l.Close()
	valid, err := os.ReadFile(filepath.Join(dir, segmentName(1)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, b []byte) {
		recs, good, err := scanRecords(b)
		if good < 0 || good > len(b) {
			t.Fatalf("good offset %d out of range [0,%d]", good, len(b))
		}
		if err == nil && good != len(b) {
			t.Fatalf("clean scan stopped at %d of %d bytes", good, len(b))
		}
		total := 0
		for _, r := range recs {
			total += headerSize + 1 + len(r.Payload)
		}
		if total != good {
			t.Fatalf("decoded records span %d bytes but good offset is %d", total, good)
		}
	})
}
