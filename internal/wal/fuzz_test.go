package wal

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// FuzzScanRecords asserts the frame decoder's safety contract on
// arbitrary bytes: never panic, never read past the buffer, report a
// good-offset within bounds, and classify every failure as either a
// torn tail or corruption (so callers always know whether repair is
// legal).
func FuzzScanRecords(f *testing.F) {
	f.Add([]byte{})
	// A valid two-record log as a seed corpus entry.
	dir := f.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	l.Append(1, []byte("hello"))
	l.Append(2, []byte("world"))
	l.Close()
	valid, err := os.ReadFile(filepath.Join(dir, segmentName(1)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, b []byte) {
		recs, good, err := scanRecords(b)
		if good < 0 || good > len(b) {
			t.Fatalf("good offset %d out of range [0,%d]", good, len(b))
		}
		if err == nil && good != len(b) {
			t.Fatalf("clean scan stopped at %d of %d bytes", good, len(b))
		}
		total := 0
		for _, r := range recs {
			total += headerSize + 1 + len(r.Payload)
		}
		if total != good {
			t.Fatalf("decoded records span %d bytes but good offset is %d", total, good)
		}
	})
}

// FuzzStreamReader asserts the replication-stream decoder's safety
// contract on arbitrary bytes: never panic, never allocate more than a
// bounded chunk ahead of the bytes actually received, and terminate
// every stream with one of the three contract errors — io.EOF (clean
// boundary), io.ErrUnexpectedEOF (cut inside a record), or a wrapped
// ErrCorrupt (bad length or checksum). It also cross-checks against
// scanRecords: both decoders must agree on the records of any prefix
// they both accept, since a standby replays shipped bytes through
// scanRecords after appending them verbatim.
func FuzzStreamReader(f *testing.F) {
	f.Add([]byte{})
	valid := append(EncodeRecord(1, []byte("hello")), EncodeRecord(2, []byte("world"))...)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn inside the second record
	f.Add(valid[:headerSize-1]) // torn inside a header
	flipped := append([]byte{}, valid...)
	flipped[headerSize+2] ^= 0xff // body bit-flip: checksum mismatch
	f.Add(flipped)
	huge := []byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0} // absurd declared length
	f.Add(huge)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}) // declared length 0

	f.Fuzz(func(t *testing.T, b []byte) {
		sr := NewStreamReader(bytes.NewReader(b))
		var streamed []Record
		consumed := 0
		for {
			rec, err := sr.Next()
			if err != nil {
				switch {
				case err == io.EOF, err == io.ErrUnexpectedEOF, errors.Is(err, ErrCorrupt):
				default:
					t.Fatalf("error outside the contract: %v", err)
				}
				// A clean EOF means every byte was consumed as records.
				if err == io.EOF && consumed != len(b) {
					t.Fatalf("clean EOF after %d of %d bytes", consumed, len(b))
				}
				break
			}
			consumed += headerSize + 1 + len(rec.Payload)
			if consumed > len(b) {
				t.Fatalf("decoded %d bytes of records from a %d-byte stream", consumed, len(b))
			}
			streamed = append(streamed, rec)
		}
		// Agreement with the at-rest scanner over the accepted prefix.
		scanned, good, _ := scanRecords(b[:consumed])
		if good != consumed || len(scanned) != len(streamed) {
			t.Fatalf("scanRecords accepts %d bytes / %d records of a prefix the stream decoded as %d bytes / %d records",
				good, len(scanned), consumed, len(streamed))
		}
		for i := range streamed {
			if streamed[i].Type != scanned[i].Type || !bytes.Equal(streamed[i].Payload, scanned[i].Payload) {
				t.Fatalf("record %d differs between stream and scan decode", i)
			}
		}
	})
}
