package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cwc/internal/faults"
)

func appendN(t *testing.T, l *Log, n int) []Record {
	t.Helper()
	var recs []Record
	for i := 0; i < n; i++ {
		r := Record{Type: uint8(1 + i%7), Payload: []byte(fmt.Sprintf("record-%03d", i))}
		if err := l.Append(r.Type, r.Payload); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		recs = append(recs, r)
	}
	return recs
}

func sameRecords(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Type != b[i].Type || !bytes.Equal(a[i].Payload, b[i].Payload) {
			return false
		}
	}
	return true
}

func TestAppendReopenRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, l, 20)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Snapshot() != nil {
		t.Fatalf("unexpected snapshot before any compaction")
	}
	if !sameRecords(l2.Recovered(), want) {
		t.Fatalf("recovered %d records, want %d identical", len(l2.Recovered()), len(want))
	}
}

func TestCloseIdempotent(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := l.Append(1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

// TestEveryByteTruncation is the WAL-level crash harness: a killed
// master can leave the live segment cut at ANY byte offset. For every
// prefix length, recovery must succeed and yield exactly the records
// that fit wholly within the prefix.
func TestEveryByteTruncation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, l, 12)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(1))
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	_, bounds, err := ScanSegment(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != len(want) {
		t.Fatalf("ScanSegment found %d boundaries, want %d", len(bounds), len(want))
	}

	for cut := 0; cut <= len(full); cut++ {
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, segmentName(1)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cl, err := Open(cdir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: open failed: %v", cut, err)
		}
		survivors := 0
		for _, b := range bounds {
			if b <= int64(cut) {
				survivors++
			}
		}
		if !sameRecords(cl.Recovered(), want[:survivors]) {
			cl.Close()
			t.Fatalf("cut=%d: recovered %d records, want the first %d", cut, len(cl.Recovered()), survivors)
		}
		// The repaired log must accept appends and survive another open.
		if err := cl.Append(99, []byte("post-crash")); err != nil {
			t.Fatalf("cut=%d: append after repair: %v", cut, err)
		}
		cl.Close()
		cl2, err := Open(cdir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: reopen after repair: %v", cut, err)
		}
		got := cl2.Recovered()
		cl2.Close()
		wantAfter := append(append([]Record(nil), want[:survivors]...), Record{Type: 99, Payload: []byte("post-crash")})
		if !sameRecords(got, wantAfter) {
			t.Fatalf("cut=%d: after repair+append, recovered %d records, want %d", cut, len(got), len(wantAfter))
		}
	}
}

func TestCorruptTailSkippedWithWarning(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, l, 5)
	l.Close()
	seg := filepath.Join(dir, segmentName(1))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff // flip a payload byte of the final record
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	l2, err := Open(dir, Options{Logger: log.New(&buf, "", 0)})
	if err != nil {
		t.Fatalf("open with corrupt tail: %v", err)
	}
	defer l2.Close()
	if !sameRecords(l2.Recovered(), want[:4]) {
		t.Fatalf("recovered %d records, want first 4", len(l2.Recovered()))
	}
	if !strings.Contains(buf.String(), "torn tail") {
		t.Fatalf("expected a torn-tail warning, got log output %q", buf.String())
	}
}

func TestCorruptMiddleFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5)
	l.Close()
	seg := filepath.Join(dir, segmentName(1))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[headerSize+2] ^= 0xff // payload byte of the FIRST record: bytes follow
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with mid-log corruption: %v, want ErrCorrupt", err)
	}
}

func TestInvalidLengthWithBytesFollowing(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3)
	l.Close()
	seg := filepath.Join(dir, segmentName(1))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Zero out the first record's declared length: invalid (< 1) with
	// plenty of bytes behind it.
	b[0], b[1], b[2], b[3] = 0, 0, 0, 0
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with zero-length record: %v, want ErrCorrupt", err)
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{CompactBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10)
	if !l.CompactDue() {
		t.Fatal("CompactDue should report true past the threshold")
	}
	snap := []byte(`{"state":"folded"}`)
	if err := l.Compact(func(w io.Writer) error { _, err := w.Write(snap); return err }); err != nil {
		t.Fatal(err)
	}
	if l.LogBytes() != 0 {
		t.Fatalf("LogBytes after compaction = %d, want 0", l.LogBytes())
	}
	if err := l.Append(42, []byte("after")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Old generation retired.
	if _, err := os.Stat(filepath.Join(dir, segmentName(1))); !os.IsNotExist(err) {
		t.Fatalf("segment 1 should be deleted after compaction: %v", err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !bytes.Equal(l2.Snapshot(), snap) {
		t.Fatalf("snapshot = %q, want %q", l2.Snapshot(), snap)
	}
	wantAfter := []Record{{Type: 42, Payload: []byte("after")}}
	if !sameRecords(l2.Recovered(), wantAfter) {
		t.Fatalf("recovered %d post-compaction records, want 1", len(l2.Recovered()))
	}
}

// TestCompactionCrashOrphans simulates a compaction that died between
// the snapshot rename and the old-segment deletes: Open must finish the
// job, preferring the snapshot and discarding covered segments.
func TestCompactionCrashOrphans(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4)
	l.Close()
	// Hand-build the post-rename, pre-delete state: snapshot-2 exists,
	// wal-2 exists (empty), wal-1 was never deleted.
	if err := os.WriteFile(filepath.Join(dir, snapshotName(2)), []byte("SNAP"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(2)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if string(l2.Snapshot()) != "SNAP" {
		t.Fatalf("snapshot = %q, want SNAP", l2.Snapshot())
	}
	if len(l2.Recovered()) != 0 {
		t.Fatalf("recovered %d records from covered segments, want 0", len(l2.Recovered()))
	}
	if _, err := os.Stat(filepath.Join(dir, segmentName(1))); !os.IsNotExist(err) {
		t.Fatalf("covered segment 1 should be removed at open: %v", err)
	}
}

func TestFaultyWriterClawback(t *testing.T) {
	// Deterministic flaky disk: the recovered log must hold exactly the
	// records whose Append returned nil — failed writes AND failed
	// SyncAlways fsyncs are clawed back, so an errored append never
	// leaves its record behind to collide with the caller's retry.
	for seed := int64(1); seed <= 8; seed++ {
		dir := t.TempDir()
		var fw *faults.FaultyWriter
		l, err := Open(dir, Options{
			Sync: SyncAlways,
			WriterHook: func(w io.Writer) io.Writer {
				fw = faults.NewWriter(w, faults.WriteProfile{Seed: seed, ShortProb: 0.2, ErrProb: 0.2, SyncErrProb: 0.1})
				return fw
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		var acked []Record
		for i := 0; i < 40; i++ {
			r := Record{Type: 7, Payload: []byte(fmt.Sprintf("seed%d-rec%02d", seed, i))}
			if err := l.Append(r.Type, r.Payload); err == nil {
				acked = append(acked, r)
			}
		}
		if len(fw.Events()) == 0 {
			t.Fatalf("seed %d: no faults injected; test is vacuous", seed)
		}
		l.Close()

		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("seed %d: reopen after flaky run: %v", seed, err)
		}
		recovered := l2.Recovered()
		l2.Close()
		if len(recovered) != len(acked) {
			t.Fatalf("seed %d: recovered %d records, acknowledged %d", seed, len(recovered), len(acked))
		}
		for i, r := range recovered {
			if acked[i].Type != r.Type || !bytes.Equal(acked[i].Payload, r.Payload) {
				t.Fatalf("seed %d: recovered record %d = %q, want %q", seed, i, r.Payload, acked[i].Payload)
			}
		}
	}
}

func TestSyncFailureClawedBack(t *testing.T) {
	// A record whose SyncAlways fsync fails must not stay in the log: the
	// caller treats the errored append as not-persisted (Submit does not
	// consume the JobID), so a surviving record would collide with the
	// retry on replay.
	dir := t.TempDir()
	l, err := Open(dir, Options{
		Sync: SyncAlways,
		WriterHook: func(w io.Writer) io.Writer {
			return faults.NewWriter(w, faults.WriteProfile{Seed: 1, SyncErrProb: 1, MaxFaults: 1})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, []byte("doomed")); err == nil {
		t.Fatal("append with failing fsync should report the error")
	}
	if err := l.Append(1, []byte("retried")); err != nil {
		t.Fatalf("append after sync-failure claw-back: %v", err)
	}
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := l2.Recovered()
	if len(got) != 1 || string(got[0].Payload) != "retried" {
		t.Fatalf("recovered %d records %v, want only the retried one", len(got), got)
	}
}

func TestZeroFilledTailRepaired(t *testing.T) {
	// A crash can extend the segment (size metadata flushed) without
	// flushing the appended data blocks, leaving a zero-filled tail. That
	// is torn-tail damage — truncate and continue, don't refuse to start.
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, l, 5)
	l.Close()
	seg := filepath.Join(dir, segmentName(1))
	good, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var buf strings.Builder
	l2, err := Open(dir, Options{Logger: log.New(&buf, "", 0)})
	if err != nil {
		t.Fatalf("open with zero-filled tail: %v", err)
	}
	if !sameRecords(l2.Recovered(), want) {
		t.Fatalf("recovered %d records, want %d", len(l2.Recovered()), len(want))
	}
	l2.Close()
	if !strings.Contains(buf.String(), "zero-filled tail") {
		t.Fatalf("no zero-filled-tail warning logged; got %q", buf.String())
	}
	if st, err := os.Stat(seg); err != nil || st.Size() != good.Size() {
		t.Fatalf("segment not truncated back to %d bytes: %v, %v", good.Size(), st.Size(), err)
	}

	// A zero length with non-zero bytes behind it is still hard
	// corruption, not a torn tail.
	f, err = os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	tail := make([]byte, 100)
	tail[99] = 0xFF
	if _, err := f.Write(tail); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero length with data behind it opened with err = %v, want ErrCorrupt", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "none": SyncNone} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy should reject unknown values")
	}
}

func TestTooLarge(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(1, make([]byte, MaxRecordBytes)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized append: %v, want ErrTooLarge", err)
	}
}

func TestSyncInterval(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncInterval, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3)
	time.Sleep(30 * time.Millisecond) // let the background loop run
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(l2.Recovered()) != 3 {
		t.Fatalf("recovered %d records, want 3", len(l2.Recovered()))
	}
}

func TestOpenSweepsOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, "snapshot-00000002.json.tmp-12345")
	if err := os.WriteFile(orphan, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphaned temp file survived Open: %v", err)
	}
	if l.Snapshot() != nil {
		t.Fatal("temp file must never be treated as a snapshot")
	}
}
