// Package lint is cwc-vet's engine: a stdlib-only analyzer driver that
// loads every package in the module (go/parser + go/types, no external
// dependencies) and runs project-specific analyzers over the typed ASTs.
//
// The analyzers machine-check invariants that earlier PRs introduced by
// convention and that the paper's failure model depends on staying
// total: mutex-guarded struct fields (locks), exhaustive frame dispatch
// (frames), exhaustive WAL record handling (walrec), leveled obs-only
// logging and deterministic pure packages (obslog), and terminating
// goroutines (leaks). See docs/static-analysis.md for the catalogue.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path, e.g. "cwc/internal/server".
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's results for Files.
	Info *types.Info
}

// Program is a loaded module: every package, sharing one FileSet.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
	// Root is the directory the module was loaded from; analyzers that
	// scan non-Go evidence (test files, docs) resolve paths against it.
	Root   string
	byPath map[string]*Package

	// index is the shared substrate snapshot (CFGs, call graph); built
	// once on first use and reused by every analyzer in a Run.
	index *Index
}

// Lookup returns the package with the given import path, or nil.
func (p *Program) Lookup(path string) *Package { return p.byPath[path] }

// LoadModule locates go.mod at root, reads the module path, and loads
// every package under root.
func LoadModule(root string) (*Program, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return LoadModuleAs(root, modPath)
}

// LoadModuleAs loads every package under root as if the directory were a
// module named modPath. No go.mod is required, which lets fixture trees
// under testdata double as tiny modules.
func LoadModuleAs(root, modPath string) (*Program, error) {
	fset := token.NewFileSet()
	dirs, err := sourceDirs(root)
	if err != nil {
		return nil, err
	}
	parsed := make(map[string]*Package) // by import path
	for _, dir := range dirs {
		pkg, err := parseDir(fset, root, dir, modPath)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			parsed[pkg.Path] = pkg
		}
	}
	order, err := topoOrder(parsed, modPath)
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: fset, Root: root, byPath: make(map[string]*Package)}
	imp := &moduleImporter{
		loaded: prog.byPath,
		std:    importer.ForCompiler(fset, "source", nil),
	}
	for _, pkg := range order {
		if err := typeCheck(fset, pkg, imp); err != nil {
			return nil, err
		}
		prog.byPath[pkg.Path] = pkg
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	return prog, nil
}

// modulePath reads the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// sourceDirs walks root collecting directories that may hold packages,
// skipping testdata, vendor, and hidden or underscore-prefixed entries.
func sourceDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walking %s: %w", root, err)
	}
	return dirs, nil
}

// parseDir parses the non-test Go files in dir; nil when there are none.
func parseDir(fset *token.FileSet, root, dir, modPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	var files []*ast.File
	names := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
		names[f.Name.Name] = true
	}
	if len(files) == 0 {
		return nil, nil
	}
	if len(names) > 1 {
		keys := make([]string, 0, len(names))
		for k := range names {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return nil, fmt.Errorf("lint: %s: multiple packages in one directory: %s", dir, strings.Join(keys, ", "))
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}
	sort.Slice(files, func(i, j int) bool {
		return fset.File(files[i].Pos()).Name() < fset.File(files[j].Pos()).Name()
	})
	return &Package{Path: path, Dir: dir, Files: files}, nil
}

// topoOrder sorts packages so every module-internal import precedes its
// importer, and rejects import cycles.
func topoOrder(pkgs map[string]*Package, modPath string) ([]*Package, error) {
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	const (
		visiting = 1
		done     = 2
	)
	state := map[string]int{}
	var order []*Package
	var visit func(path string, chain []string) error
	visit = func(path string, chain []string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(chain, path), " -> "))
		}
		state[path] = visiting
		pkg := pkgs[path]
		for _, imp := range moduleImports(pkg, modPath) {
			if _, ok := pkgs[imp]; !ok {
				return fmt.Errorf("lint: %s imports %s, which has no Go files in the module", path, imp)
			}
			if err := visit(imp, append(chain, path)); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, pkg)
		return nil
	}
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImports lists pkg's imports that live inside the module.
func moduleImports(pkg *Package, modPath string) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != modPath && !strings.HasPrefix(path, modPath+"/") {
				continue
			}
			if !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out
}

// moduleImporter resolves module-internal imports from already-checked
// packages and everything else through the toolchain's source importer.
type moduleImporter struct {
	loaded map[string]*Package
	std    types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.loaded[path]; ok {
		return pkg.Types, nil
	}
	return m.std.Import(path)
}

// typeCheck runs go/types over one parsed package.
func typeCheck(fset *token.FileSet, pkg *Package, imp types.Importer) error {
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, pkg.Info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	return nil
}
