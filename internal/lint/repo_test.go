package lint_test

// The meta-test: the repository itself must be clean under the full
// suite with the default configuration. This is what keeps `make lint`
// honest — removing a frame handler, a WAL replay case, or a mu.Lock()
// in a guarded method turns this test (and CI) red.

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"cwc/internal/lint"
)

// repoRoot walks up from the test's working directory to go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	prog, err := lint.LoadModule(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	diags, timings := prog.RunTimed(lint.DefaultConfig(), lint.Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("run `go run ./cmd/cwc-vet ./...` for the same findings")
	}
	// The analysis budget: the whole suite (substrate included, module
	// load excluded) must finish well inside the 30s CI allowance.
	var total time.Duration
	for _, tm := range timings {
		t.Logf("%-10s %v", tm.Analyzer, tm.Elapsed)
		total += tm.Elapsed
	}
	if total > 30*time.Second {
		t.Errorf("analyzer suite took %v, over the 30s budget", total)
	}
}
