package lint

// lockorder builds the module-wide mutex-acquisition graph and reports
// two classes of deadlock risk the paper's master cannot afford (a hung
// master stalls every phone in the fleet):
//
//  1. Lock-order cycles: if one code path acquires A then B and another
//     acquires B then A, two goroutines can deadlock. Mutexes are
//     identified by their declaration site ("pkg.Type.field" for struct
//     mutexes, "pkg.var" for package-level ones), so ordering is checked
//     across instances of the same type and across packages.
//  2. Blocking under a lock: calling a configured blocking operation
//     (protocol.Conn.Send/Recv, time.Sleep) with any mutex held turns a
//     slow phone into a fleet-wide stall.
//
// Both checks are interprocedural: a per-function summary records which
// mutexes and blocking calls a function may reach (directly or through
// callees, excluding spawned goroutines — a `go` statement starts a
// concurrent timeline, not a nested acquisition), iterated to fixpoint
// over the call graph.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrderAnalyzer reports lock-order cycles and blocking calls made
// while a mutex is held.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "detect mutex lock-order cycles and blocking calls under a held lock",
	Run:  runLockOrder,
}

type lockOrder struct {
	prog     *Program
	cfg      *Config
	blocking map[string]bool               // qualified names banned under a lock
	acquires map[*FuncInfo]map[string]bool // summary: mutexes f may acquire
	blocks   map[*FuncInfo]map[string]bool // summary: blocking ops f may reach
	edges    map[[2]string]token.Position  // earliest position per ordering edge
	diags    []Diagnostic
	seen     map[string]bool // finding dedupe across goroutine roots
}

func runLockOrder(cfg *Config, prog *Program) []Diagnostic {
	lo := &lockOrder{
		prog:     prog,
		cfg:      cfg,
		blocking: map[string]bool{},
		acquires: map[*FuncInfo]map[string]bool{},
		blocks:   map[*FuncInfo]map[string]bool{},
		edges:    map[[2]string]token.Position{},
		seen:     map[string]bool{},
	}
	for _, name := range cfg.BlockingUnderLock {
		lo.blocking[name] = true
	}
	ix := prog.Index()

	// Summaries to fixpoint: what each function may acquire or block on,
	// through arbitrarily deep (non-spawned) call chains.
	ix.Fixpoint(func(f *FuncInfo) bool {
		acq := lo.directAcquires(f)
		blk := lo.directBlocks(f)
		for _, cs := range f.Calls {
			if cs.Spawned || cs.Callee == nil {
				continue
			}
			for m := range lo.acquires[cs.Callee] {
				acq[m] = true
			}
			for b := range lo.blocks[cs.Callee] {
				blk[b] = true
			}
		}
		changed := len(acq) != len(lo.acquires[f]) || len(blk) != len(lo.blocks[f])
		lo.acquires[f] = acq
		lo.blocks[f] = blk
		return changed
	})

	// Per-function flow: track the held set through the CFG, recording
	// ordering edges and blocking-under-lock findings.
	for _, f := range ix.All() {
		if !matchAnyPkg(cfg.LockOrderPkgs, f.Pkg.Path) {
			continue
		}
		lo.flowFunc(f)
	}

	lo.reportCycles()
	sort.Slice(lo.diags, func(i, j int) bool {
		a, b := lo.diags[i].Position, lo.diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return lo.diags
}

// mutexNode renders a stable identity for the mutex behind a
// Lock/Unlock receiver expression: "pkg.Type.field" for struct fields,
// "pkg.var" for package-level mutexes, a function-local key otherwise.
func (lo *lockOrder) mutexNode(pkg *Package, x ast.Expr) string {
	switch x := x.(type) {
	case *ast.SelectorExpr:
		if recv := namedOrPtr(pkg.Info.TypeOf(x.X)); recv != nil && recv.Obj() != nil {
			id := recv.Obj().Name() + "." + x.Sel.Name
			if p := recv.Obj().Pkg(); p != nil {
				id = shortPkg(p.Path()) + "." + id
			}
			return id
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok {
			if v.Parent() == pkg.Types.Scope() {
				return shortPkg(pkg.Path) + "." + v.Name()
			}
			return "local:" + v.Name()
		}
	}
	return "local:" + exprString(x)
}

// shortPkg trims the module prefix for readable node names.
func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// lockOp classifies a call as a mutex acquire/release, returning the
// node identity and whether it acquires.
func (lo *lockOrder) lockOp(pkg *Package, call *ast.CallExpr) (node string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	if !isMutexType(pkg.Info.TypeOf(sel.X)) {
		return "", false, false
	}
	return lo.mutexNode(pkg, sel.X), acquire, true
}

// qualifiedFunc renders a types.Func as "pkgpath.Name" or
// "pkgpath.Recv.Name" to match Config.BlockingUnderLock entries.
func qualifiedFunc(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	name := fn.Pkg().Path()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if recv := namedOrPtr(sig.Recv().Type()); recv != nil && recv.Obj() != nil {
			return name + "." + recv.Obj().Name() + "." + fn.Name()
		}
	}
	return name + "." + fn.Name()
}

// calleeFunc resolves a call's target to its types.Func (module or
// stdlib), or nil for dynamic calls.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// directAcquires collects the mutex nodes f acquires in its own body
// (excluding nested literals and spawned goroutines).
func (lo *lockOrder) directAcquires(f *FuncInfo) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(f.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == f.Lit // descend only into our own body
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if node, acquire, ok := lo.lockOp(f.Pkg, n); ok && acquire {
				out[node] = true
			}
		}
		return true
	})
	return out
}

// directBlocks collects banned blocking calls made directly in f.
func (lo *lockOrder) directBlocks(f *FuncInfo) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(f.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == f.Lit
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if name := qualifiedFunc(calleeFunc(f.Pkg, n)); lo.blocking[name] {
				out[name] = true
			}
		}
		return true
	})
	return out
}

// flowFunc runs the held-set dataflow over one function, recording
// ordering edges and blocking findings at their source positions.
func (lo *lockOrder) flowFunc(f *FuncInfo) {
	cfg := f.CFG()
	transfer := func(n ast.Node, facts Facts) { lo.node(f, n, facts, false) }
	sol := Forward(cfg, Facts{}, transfer)
	Visit(cfg, sol, transfer, func(n ast.Node, facts Facts) {
		lo.node(f, n, facts.Clone(), true)
	})
}

// node applies one CFG node's lock effects; with record set it also
// emits edges and findings.
func (lo *lockOrder) node(f *FuncInfo, n ast.Node, held Facts, record bool) {
	if _, ok := n.(*ast.DeferStmt); ok {
		// Deferred unlocks run at return (the lock stays held for the
		// rest of the body); deferred calls into other code run with
		// whatever is held at return time, which we approximate as "not
		// under this analysis" — matching the v1 locks semantics.
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if node, acquire, ok := lo.lockOp(f.Pkg, c); ok {
				if acquire {
					if record {
						for _, h := range held.Keys() {
							lo.addEdge(h, node, lo.prog.Fset.Position(c.Pos()))
						}
					}
					held[node] = true
				} else {
					delete(held, node)
				}
				return false
			}
			if record && len(held.Keys()) > 0 {
				lo.checkCall(f, c, held)
			}
		}
		return true
	})
}

// checkCall reports blocking calls (direct or via callee summaries) and
// lifts callee acquisitions into ordering edges under the held set.
func (lo *lockOrder) checkCall(f *FuncInfo, call *ast.CallExpr, held Facts) {
	pos := lo.prog.Fset.Position(call.Pos())
	heldList := strings.Join(held.Keys(), ", ")
	if name := qualifiedFunc(calleeFunc(f.Pkg, call)); lo.blocking[name] {
		lo.emit(pos, fmt.Sprintf("calls %s while holding %s; blocking under a mutex stalls every goroutine waiting on it", name, heldList))
		return
	}
	callee := staticCallee(lo.prog.Index(), f.Pkg, call)
	if callee == nil {
		return
	}
	for _, b := range sortedKeys(lo.blocks[callee]) {
		lo.emit(pos, fmt.Sprintf("calls %s, which may block in %s, while holding %s", callee.Name(), b, heldList))
	}
	for _, a := range sortedKeys(lo.acquires[callee]) {
		for _, h := range held.Keys() {
			lo.addEdge(h, a, pos)
		}
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (lo *lockOrder) emit(pos token.Position, msg string) {
	key := pos.String() + "|" + msg
	if lo.seen[key] {
		return
	}
	lo.seen[key] = true
	lo.diags = append(lo.diags, Diagnostic{Analyzer: "lockorder", Position: pos, Message: msg})
}

// addEdge records "to acquired while from held", keeping the earliest
// position for deterministic reporting. Self-edges are dropped: two
// instances of the same type locking each other is an ordering problem
// only with an instance-level alias analysis this tool does not have.
func (lo *lockOrder) addEdge(from, to string, pos token.Position) {
	if from == to || strings.HasPrefix(from, "local:") || strings.HasPrefix(to, "local:") {
		return
	}
	key := [2]string{from, to}
	if old, ok := lo.edges[key]; !ok || posLess(pos, old) {
		lo.edges[key] = pos
	}
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	return a.Line < b.Line
}

// reportCycles finds strongly connected components in the acquisition
// graph and reports every edge inside one.
func (lo *lockOrder) reportCycles() {
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for e := range lo.edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		nodes[e[0]], nodes[e[1]] = true, true
	}
	for _, succs := range adj {
		sort.Strings(succs)
	}
	comp := sccs(nodes, adj)
	for e, pos := range lo.edges {
		if comp[e[0]] != comp[e[1]] {
			continue
		}
		members := make([]string, 0, 4)
		for n, c := range comp {
			if c == comp[e[0]] {
				members = append(members, n)
			}
		}
		sort.Strings(members)
		lo.emit(pos, fmt.Sprintf("acquires %s while holding %s; part of a lock-order cycle among %s",
			e[1], e[0], strings.Join(members, ", ")))
	}
}

// sccs assigns each node a strongly-connected-component id (iterative
// Tarjan).
func sccs(nodes map[string]bool, adj map[string][]string) map[string]int {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	next, ncomp := 0, 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = ncomp
				if w == v {
					break
				}
			}
			ncomp++
		}
	}
	ordered := make([]string, 0, len(nodes))
	for n := range nodes {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	for _, n := range ordered {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return comp
}
