package lint

// The control-flow half of the analysis substrate: a per-function CFG
// over go/ast. Blocks hold the statements and control expressions that
// execute straight-line; edges follow Go's structured control flow
// (if/for/range/switch/select, break/continue with labels, terminating
// calls). The builder is deliberately approximate where precision does
// not pay: goto falls back to an edge to the exit block, and defer
// bodies are analyzed at their declaration point, matching the v1
// walker's semantics so the locks fixtures keep their meaning.

import (
	"go/ast"
	"go/token"
	"strings"
)

// Block is one straight-line run of nodes. Nodes are simple statements
// (ExprStmt, AssignStmt, ...) plus the control expressions evaluated on
// entry to a construct (if conditions, switch tags, range operands),
// in evaluation order.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// CFG is one function body's control-flow graph. Entry is the first
// block; a block with no successors either returns, panics, or ends
// the function.
type CFG struct {
	Entry  *Block
	Blocks []*Block
}

// cfgBuilder threads the "current block" through a recursive walk of
// the body, tracking break/continue targets (with label support).
type cfgBuilder struct {
	cfg *CFG
	cur *Block
	// breakTo / continueTo are stacks of jump targets; label is ""
	// for unlabeled loops and switches.
	breaks    []jumpTarget
	continues []jumpTarget
	// label pending for the next loop/switch/select statement.
	pendingLabel string
	// exit collects blocks for goto targets we do not model precisely.
	exit *Block
}

type jumpTarget struct {
	label string
	block *Block
}

// BuildCFG builds the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cur = b.newBlock()
	b.cfg.Entry = b.cur
	b.exit = b.newBlock() // shared sink for returns and goto
	b.stmts(body.List)
	b.edge(b.cur, b.exit)
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current straight-line block.
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil || b.cur == nil {
		return
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// terminatingCall recognizes calls that never return: panic, os.Exit,
// log.Fatal*, testing's t.Fatal*.
func terminatingCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	name := exprString(call.Fun)
	return name == "panic" || strings.HasSuffix(name, ".Exit") ||
		strings.HasSuffix(name, ".Fatal") || strings.HasSuffix(name, ".Fatalf")
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	if b.cur == nil {
		// Unreachable code after a jump still gets a block so its
		// nodes are visited (with bottom facts) rather than lost.
		b.cur = b.newBlock()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.add(s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breaks, label); t != nil {
				b.edge(b.cur, t)
			}
		case token.CONTINUE:
			if t := findTarget(b.continues, label); t != nil {
				b.edge(b.cur, t)
			}
		case token.GOTO:
			b.edge(b.cur, b.exit) // approximate: a goto leaves the region
		case token.FALLTHROUGH:
			// handled by the switch builder (edge to next case)
		}
		if s.Tok != token.FALLTHROUGH {
			b.cur = nil
		}
	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		head := b.cur
		after := b.newBlock()
		thenBlk := b.newBlock()
		b.edge(head, thenBlk)
		b.cur = thenBlk
		b.stmts(s.Body.List)
		b.edge(b.cur, after)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(head, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(head, after)
		}
		b.cur = after
	case *ast.ForStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after)
		}
		post := b.newBlock()
		body := b.newBlock()
		b.edge(head, body)
		b.pushLoop(label, after, post)
		b.cur = body
		b.stmts(s.Body.List)
		b.popLoop()
		b.edge(b.cur, post)
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.edge(b.cur, head)
		b.cur = after
	case *ast.RangeStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		b.add(s.X)
		head := b.newBlock()
		b.edge(b.cur, head)
		after := b.newBlock()
		b.edge(head, after)
		body := b.newBlock()
		b.edge(head, body)
		b.pushLoop(label, after, head)
		b.cur = body
		// The per-iteration key/value targets are evaluated in the body.
		b.add(s.Key)
		b.add(s.Value)
		b.stmts(s.Body.List)
		b.popLoop()
		b.edge(b.cur, head)
		b.cur = after
	case *ast.SwitchStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(label, s.Body.List, nil)
	case *ast.TypeSwitchStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.caseClauses(label, s.Body.List, s.Assign)
	case *ast.SelectStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		head := b.cur
		after := b.newBlock()
		b.breaks = append(b.breaks, jumpTarget{label, after}, jumpTarget{"", after})
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm == nil {
				hasDefault = true
			}
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmts(cc.Body)
			b.edge(b.cur, after)
		}
		b.breaks = b.breaks[:len(b.breaks)-2]
		if len(s.Body.List) == 0 || hasDefault {
			b.edge(head, after)
		}
		b.cur = after
	case *ast.ExprStmt:
		b.add(s)
		if terminatingCall(s.X) {
			b.cur = nil
		}
	case *ast.DeclStmt, *ast.AssignStmt, *ast.SendStmt, *ast.IncDecStmt,
		*ast.DeferStmt, *ast.GoStmt, *ast.EmptyStmt:
		b.add(s)
	default:
		b.add(s)
	}
}

// caseClauses builds switch/type-switch bodies: every case branches
// from the head; fallthrough edges link a case to the one below it.
func (b *cfgBuilder) caseClauses(label string, clauses []ast.Stmt, assign ast.Stmt) {
	head := b.cur
	after := b.newBlock()
	b.breaks = append(b.breaks, jumpTarget{label, after}, jumpTarget{"", after})
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		blocks[i] = b.newBlock()
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(head, blocks[i])
		b.cur = blocks[i]
		if assign != nil {
			b.add(assign)
		}
		for _, e := range cc.List {
			b.add(e)
		}
		fallsThrough := false
		if n := len(cc.Body); n > 0 {
			if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		b.stmts(cc.Body)
		if fallsThrough && i+1 < len(clauses) {
			b.edge(b.cur, blocks[i+1])
		} else {
			b.edge(b.cur, after)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-2]
	if !hasDefault || len(clauses) == 0 {
		b.edge(head, after)
	}
	b.cur = after
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, jumpTarget{label, brk}, jumpTarget{"", brk})
	b.continues = append(b.continues, jumpTarget{label, cont}, jumpTarget{"", cont})
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-2]
	b.continues = b.continues[:len(b.continues)-2]
}

// findTarget resolves a break/continue label against the target stack
// (innermost last; "" matches the innermost unlabeled entry).
func findTarget(stack []jumpTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}
