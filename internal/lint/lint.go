package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Position token.Position `json:"position"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the flag / suppression key, e.g. "locks".
	Name string
	// Doc is a one-line description.
	Doc string
	// Run reports findings over the whole program.
	Run func(cfg *Config, prog *Program) []Diagnostic
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		LocksAnalyzer,
		LockOrderAnalyzer,
		CtxFlowAnalyzer,
		EpochAnalyzer,
		MetricsAnalyzer,
		FramesAnalyzer,
		WALRecAnalyzer,
		ObsLogAnalyzer,
		LeaksAnalyzer,
	}
}

// Config names the project-specific packages and symbols the analyzers
// check. DefaultConfig matches this repository; fixture tests point the
// fields at miniature packages under testdata.
type Config struct {
	// ProtocolPkg declares the frame-type constants (frames analyzer).
	ProtocolPkg string
	// FrameTypeName is the frame discriminator type in ProtocolPkg.
	FrameTypeName string
	// MessageTypeName is the frame struct in ProtocolPkg; composite
	// literals of it must set the Type field explicitly.
	MessageTypeName string
	// EndpointPkgs are the dispatch endpoints (master and worker): every
	// frame constant must be referenced in each, and every switch over
	// the frame type there must be exhaustive or carry a default case.
	EndpointPkgs []string
	// EventKindTypeName, when non-empty, names a second discriminator
	// type in ProtocolPkg (the worker telemetry event kinds): every
	// switch over it in an endpoint package must be exhaustive or carry
	// a default case, so adding an event kind cannot silently skip a
	// fold path.
	EventKindTypeName string

	// WALPkg holds the WAL record-type constants (walrec analyzer).
	WALPkg string
	// WALRecPrefix selects the record-type constants by name.
	WALRecPrefix string
	// WALAppendFuncs are the write-path functions every record type must
	// be passed to (in addition to appearing as a replay-switch case).
	WALAppendFuncs []string

	// ObsPkg is the observability package: exempt from the logging bans
	// and home of the leveled Logger type (obslog analyzer).
	ObsPkg string
	// LoggerTypeName is the leveled logger type in ObsPkg.
	LoggerTypeName string
	// BannedLoggerMethods are unleveled compatibility methods on the
	// logger that daemon code must not call (use Infof/Warnf/Errorf).
	BannedLoggerMethods []string
	// DaemonPkgs are the packages the logging bans apply to. Patterns
	// ending in "/..." match the prefix.
	DaemonPkgs []string
	// PurePkgs must stay deterministic: no time.Now/Since/Sleep, no
	// math/rand (obslog analyzer).
	PurePkgs []string

	// LeakPkgs are the packages whose goroutines must be WaitGroup-
	// tracked or ctx/done-aware (leaks analyzer).
	LeakPkgs []string

	// LockOrderPkgs are the packages whose mutex acquisition order is
	// checked for cycles (lockorder analyzer).
	LockOrderPkgs []string
	// BlockingUnderLock names functions and methods that must never be
	// called with a mutex held, as "pkgpath.Func" or
	// "pkgpath.Type.Method" (lockorder analyzer).
	BlockingUnderLock []string

	// CtxPkgs are the packages whose spawned goroutines must keep every
	// blocking channel op cancellable (ctxflow analyzer).
	CtxPkgs []string

	// FencedFrameTypes are frame-type constant names in ProtocolPkg whose
	// Message values must set Epoch at mint time (epoch analyzer).
	FencedFrameTypes []string
	// FencedWALTypes are record struct type names in WALPkg whose
	// composite literals must thread the Epoch field (epoch analyzer).
	FencedWALTypes []string

	// MetricPrefix is the mandatory metric family-name prefix; families
	// must match ^<prefix>[a-z0-9_]+$ (metrics analyzer).
	MetricPrefix string
	// MetricDocFiles are module-relative non-Go files scanned for metric
	// names that must correspond to a registered family.
	MetricDocFiles []string
}

// DefaultConfig returns the configuration for this repository.
func DefaultConfig() *Config {
	return &Config{
		ProtocolPkg:       "cwc/internal/protocol",
		FrameTypeName:     "Type",
		MessageTypeName:   "Message",
		EndpointPkgs:      []string{"cwc/internal/server", "cwc/internal/worker"},
		EventKindTypeName: "EventKind",

		WALPkg:         "cwc/internal/server",
		WALRecPrefix:   "walRec",
		WALAppendFuncs: []string{"walAppend", "walAppendErr"},

		ObsPkg:              "cwc/internal/obs",
		LoggerTypeName:      "Logger",
		BannedLoggerMethods: []string{"Printf"},
		DaemonPkgs:          []string{"cwc/internal/...", "cwc/cmd/cwc-server", "cwc/cmd/cwc-worker"},
		PurePkgs:            []string{"cwc/internal/core", "cwc/internal/lp", "cwc/internal/predict"},

		LeakPkgs: []string{"cwc/internal/server", "cwc/internal/worker", "cwc/internal/replica"},

		LockOrderPkgs: []string{
			"cwc/internal/server", "cwc/internal/worker",
			"cwc/internal/replica", "cwc/internal/obs", "cwc/internal/wal",
		},
		BlockingUnderLock: []string{
			"cwc/internal/protocol.Conn.Send",
			"cwc/internal/protocol.Conn.Recv",
			"time.Sleep",
		},

		CtxPkgs: []string{"cwc/internal/server", "cwc/internal/worker", "cwc/internal/replica"},

		FencedFrameTypes: []string{"TypeWelcome", "TypeResult", "TypeFailure", "TypeCheckpoint"},
		FencedWALTypes:   []string{"walEpochRec", "walSnapshot"},

		MetricPrefix:   "cwc_",
		MetricDocFiles: []string{"docs/observability.md"},
	}
}

// matchPkg reports whether an import path matches a pattern; a pattern
// ending in "/..." matches the prefix and everything below it.
func matchPkg(pattern, path string) bool {
	if prefix, ok := strings.CutSuffix(pattern, "/..."); ok {
		return path == prefix || strings.HasPrefix(path, prefix+"/")
	}
	return pattern == path
}

func matchAnyPkg(patterns []string, path string) bool {
	for _, p := range patterns {
		if matchPkg(p, path) {
			return true
		}
	}
	return false
}

// Timing is one analyzer's wall-clock cost within a Run.
type Timing struct {
	Analyzer string        `json:"analyzer"`
	Elapsed  time.Duration `json:"elapsed_ns"`
}

// Run executes the given analyzers over the program, drops findings
// suppressed by //lint:ignore directives, and returns the rest sorted by
// position. Malformed directives are reported as driver diagnostics,
// and suppressions that no finding needed are reported as "unused".
func (p *Program) Run(cfg *Config, analyzers []*Analyzer) []Diagnostic {
	diags, _ := p.RunTimed(cfg, analyzers)
	return diags
}

// RunTimed is Run plus per-analyzer wall-clock timings. The first
// timing row ("substrate") is the shared snapshot build — the CFGs and
// call graph every interprocedural analyzer reuses — so the cost is
// visible once instead of being silently paid per analyzer.
func (p *Program) RunTimed(cfg *Config, analyzers []*Analyzer) ([]Diagnostic, []Timing) {
	sup, diags := p.collectIgnores(analyzers)
	var timings []Timing
	start := time.Now()
	p.Index()
	timings = append(timings, Timing{Analyzer: "substrate", Elapsed: time.Since(start)})
	for _, a := range analyzers {
		start = time.Now()
		for _, d := range a.Run(cfg, p) {
			if sup.suppressed(a.Name, d.Position) {
				continue
			}
			diags = append(diags, d)
		}
		timings = append(timings, Timing{Analyzer: a.Name, Elapsed: time.Since(start)})
	}
	for _, d := range sup.unused(analyzers) {
		if sup.suppressed("unused", d.Position) {
			continue
		}
		diags = append(diags, d)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, timings
}

// ignoreRe matches "lint:ignore analyzer[,analyzer...] reason". The
// reason is mandatory: a suppression with no justification is itself a
// finding.
var ignoreRe = regexp.MustCompile(`^lint:ignore\s+(\S+)(\s+(.*))?$`)

// directive is one parsed //lint:ignore comment; used tracks which of
// its analyzer names actually matched a finding, so stale suppressions
// become findings themselves.
type directive struct {
	pos   token.Position
	names []string
	used  map[string]bool
}

// suppressions maps file name -> line -> directives on that line. A
// directive covers its own line and the line below it, so it works both
// as a trailing comment and on the line above the offending statement.
type suppressions struct {
	byLine map[string]map[int][]*directive
	all    []*directive
}

func (s *suppressions) suppressed(analyzer string, pos token.Position) bool {
	lines := s.byLine[pos.Filename]
	hit := false
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range lines[line] {
			for _, name := range d.names {
				if name == analyzer {
					d.used[name] = true
					hit = true
				}
			}
		}
	}
	return hit
}

// unused reports directives whose analyzer names never matched a
// finding. Only analyzers that actually ran are judged — a directive
// for a disabled analyzer may still be load-bearing. A directive that
// itself names "unused" is the escape hatch for deliberate keep-alives.
func (s *suppressions) unused(ran []*Analyzer) []Diagnostic {
	ranSet := map[string]bool{}
	for _, a := range ran {
		ranSet[a.Name] = true
	}
	var diags []Diagnostic
	for _, d := range s.all {
		keep := false
		for _, name := range d.names {
			if name == "unused" {
				keep = true
			}
		}
		if keep {
			continue
		}
		for _, name := range d.names {
			if name == "driver" || name == "unused" || !ranSet[name] || d.used[name] {
				continue
			}
			diags = append(diags, Diagnostic{
				Analyzer: "unused",
				Position: d.pos,
				Message:  fmt.Sprintf("lint:ignore %s suppresses nothing; delete it (or add unused to the list if it must stay)", name),
			})
		}
	}
	return diags
}

// collectIgnores scans every comment for lint:ignore directives and
// reports malformed ones (missing reason, unknown analyzer).
func (p *Program) collectIgnores(analyzers []*Analyzer) (*suppressions, []Diagnostic) {
	known := map[string]bool{"driver": true, "unused": true}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	sup := &suppressions{byLine: map[string]map[int][]*directive{}}
	var diags []Diagnostic
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "lint:ignore") {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					m := ignoreRe.FindStringSubmatch(text)
					if m == nil || strings.TrimSpace(m[3]) == "" {
						diags = append(diags, Diagnostic{
							Analyzer: "driver",
							Position: pos,
							Message:  "malformed lint:ignore: want //lint:ignore <analyzer>[,<analyzer>] <reason>",
						})
						continue
					}
					names := strings.Split(m[1], ",")
					for _, name := range names {
						if !known[name] {
							diags = append(diags, Diagnostic{
								Analyzer: "driver",
								Position: pos,
								Message:  fmt.Sprintf("lint:ignore names unknown analyzer %q", name),
							})
						}
					}
					d := &directive{pos: pos, names: names, used: map[string]bool{}}
					sup.all = append(sup.all, d)
					if sup.byLine[pos.Filename] == nil {
						sup.byLine[pos.Filename] = map[int][]*directive{}
					}
					sup.byLine[pos.Filename][pos.Line] = append(sup.byLine[pos.Filename][pos.Line], d)
				}
			}
		}
	}
	return sup, diags
}

// diag builds a Diagnostic at a node's position.
func (p *Program) diag(analyzer string, node ast.Node, format string, args ...any) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Position: p.Fset.Position(node.Pos()),
		Message:  fmt.Sprintf(format, args...),
	}
}

// exprString renders an expression as a stable key for matching lock
// bases ("m", "ps", "m.cfg"). Unmatchable shapes render uniquely enough
// to never alias.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return exprString(e.X)
	case *ast.UnaryExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	case *ast.BasicLit:
		return e.Value
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// namedOrPtr unwraps pointers and returns the named type, or nil.
func namedOrPtr(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// isNamedType reports whether t (possibly behind pointers) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n := namedOrPtr(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == name &&
		obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
