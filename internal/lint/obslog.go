package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ObsLogAnalyzer enforces the PR-4 observability discipline:
//
//  1. Daemon code (internal/... and the server/worker binaries, minus
//     the obs package itself) must not call the stdlib log package or
//     fmt.Print*: operational messages go through the leveled obs
//     logger so they carry ts/level/fields and respect -log-level.
//  2. The obs logger's unleveled compatibility methods (Printf) are
//     banned in the same scope — daemon call sites must pick a level
//     (Infof/Warnf/Errorf) and attach fields via With.
//  3. Pure scheduling/prediction packages must stay deterministic: no
//     time.Now/Since/Sleep and no math/rand. Packing decisions that
//     depend on wall clocks or unseeded randomness cannot be replayed,
//     which breaks both the WAL recovery story and the chaos harnesses'
//     byte-identical-aggregate proofs.
var ObsLogAnalyzer = &Analyzer{
	Name: "obslog",
	Doc:  "daemon logging goes through the leveled obs logger; pure packages stay deterministic",
	Run:  runObsLog,
}

// bannedFmtFuncs are the fmt functions that write to stdout.
var bannedFmtFuncs = map[string]bool{"Print": true, "Printf": true, "Println": true}

func runObsLog(cfg *Config, prog *Program) []Diagnostic {
	var diags []Diagnostic
	banned := map[string]bool{}
	for _, m := range cfg.BannedLoggerMethods {
		banned[m] = true
	}
	for _, pkg := range prog.Pkgs {
		inDaemon := matchAnyPkg(cfg.DaemonPkgs, pkg.Path) && !matchPkg(cfg.ObsPkg, pkg.Path)
		inPure := matchAnyPkg(cfg.PurePkgs, pkg.Path)
		if !inDaemon && !inPure {
			continue
		}
		for _, f := range pkg.Files {
			if inPure {
				for _, imp := range f.Imports {
					path := strings.Trim(imp.Path.Value, `"`)
					if path == "math/rand" || path == "math/rand/v2" {
						diags = append(diags, prog.diag("obslog", imp,
							"pure package %s imports %s: packing must be deterministic and replayable",
							pkg.Path, path))
					}
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				name := sel.Sel.Name
				if pkgPath := usedPackage(pkg, sel); pkgPath != "" {
					switch {
					case inDaemon && pkgPath == "log":
						diags = append(diags, prog.diag("obslog", call,
							"stdlib log.%s in daemon code: use the leveled obs logger (obs.Logger)", name))
					case inDaemon && pkgPath == "fmt" && bannedFmtFuncs[name]:
						diags = append(diags, prog.diag("obslog", call,
							"fmt.%s in daemon code: stdout is not a log sink; use the leveled obs logger", name))
					case inPure && pkgPath == "time" && (name == "Now" || name == "Since" || name == "Sleep"):
						diags = append(diags, prog.diag("obslog", call,
							"time.%s in pure package %s: packing must be deterministic and replayable",
							name, pkg.Path))
					}
					return true
				}
				// Method calls on the obs logger: unleveled compat shims
				// are banned outside the obs package itself.
				if inDaemon && banned[name] {
					if t, ok := pkg.Info.Types[sel.X]; ok &&
						isNamedType(t.Type, cfg.ObsPkg, cfg.LoggerTypeName) {
						diags = append(diags, prog.diag("obslog", call,
							"obs logger %s is the unleveled compat shim: pick a level (Infof/Warnf/Errorf) and attach fields with With", name))
					}
				}
				return true
			})
		}
	}
	return diags
}

// usedPackage returns the import path when a selector's base is a
// package name (log.Printf -> "log"), else "".
func usedPackage(pkg *Package, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
