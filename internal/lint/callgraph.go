package lint

// The interprocedural half of the analysis substrate: an index of every
// function in the module (declared functions and function literals),
// each with its lazily built CFG and statically resolved call sites.
// The index is built once per loaded Program and shared by every
// analyzer that runs over it — lockorder, ctxflow, metrics, and the
// ported locks all reuse the same snapshot instead of re-walking the
// ASTs, which is what keeps the interprocedural passes inside the
// cwc-vet time budget.

import (
	"go/ast"
	"go/types"
	"sort"
)

// FuncInfo is one analyzable function: a declared function/method or a
// function literal.
type FuncInfo struct {
	Pkg  *Package
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Obj  *types.Func   // nil for literals
	Body *ast.BlockStmt

	// Parent is the declared function lexically enclosing a literal
	// (nil for declarations and for literals in package-level values).
	Parent *FuncInfo

	// Calls are the statically resolvable call sites in Body, in
	// source order, excluding those inside nested literals (each
	// literal owns its own call list).
	Calls []*CallSite

	cfg *CFG
}

// Name renders a human-readable identity ("(*Master).dispatch",
// "func literal in startDrain") for diagnostics.
func (f *FuncInfo) Name() string {
	if f.Obj != nil {
		return f.Obj.Name()
	}
	if f.Parent != nil {
		return "func literal in " + f.Parent.Name()
	}
	return "func literal"
}

// CFG returns the function's control-flow graph, built on first use.
func (f *FuncInfo) CFG() *CFG {
	if f.cfg == nil {
		f.cfg = BuildCFG(f.Body)
	}
	return f.cfg
}

// CallSite is one call expression with its resolved callee.
type CallSite struct {
	Call *ast.CallExpr
	// Callee is the module-internal target, when the call is static
	// (direct function or method call on a concrete type). nil for
	// calls into the standard library, interface dispatch, and calls
	// through function values.
	Callee *FuncInfo
	// Deferred / Spawned mark `defer f()` and `go f()` call sites.
	Deferred bool
	Spawned  bool
}

// Index is the per-Program substrate snapshot.
type Index struct {
	// Funcs lists every declared function in the module, packages in
	// path order, functions in source order.
	Funcs []*FuncInfo
	// Lits lists every function literal, same ordering.
	Lits []*FuncInfo

	byObj map[*types.Func]*FuncInfo
	byLit map[*ast.FuncLit]*FuncInfo
}

// FuncOf resolves a declared function object to its info, or nil.
func (ix *Index) FuncOf(obj *types.Func) *FuncInfo { return ix.byObj[obj] }

// LitOf resolves a function literal to its info, or nil.
func (ix *Index) LitOf(lit *ast.FuncLit) *FuncInfo { return ix.byLit[lit] }

// All iterates declared functions and literals together.
func (ix *Index) All() []*FuncInfo {
	out := make([]*FuncInfo, 0, len(ix.Funcs)+len(ix.Lits))
	out = append(out, ix.Funcs...)
	out = append(out, ix.Lits...)
	return out
}

// Index returns the program's substrate snapshot, building it on first
// use. Every analyzer in one Run shares the same snapshot: the module
// is parsed and type-checked once by the loader, and the CFGs, call
// graph, and summaries derived here are computed once on top of it.
func (p *Program) Index() *Index {
	if p.index != nil {
		return p.index
	}
	ix := &Index{
		byObj: map[*types.Func]*FuncInfo{},
		byLit: map[*ast.FuncLit]*FuncInfo{},
	}
	// Pass 1: register every declared function so call sites can
	// resolve forward references across packages.
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				fi := &FuncInfo{Pkg: pkg, Decl: fd, Obj: obj, Body: fd.Body}
				ix.Funcs = append(ix.Funcs, fi)
				if obj != nil {
					ix.byObj[obj] = fi
				}
			}
		}
	}
	// Pass 2: collect literals and resolve call sites.
	for _, fi := range ix.Funcs {
		collectLits(ix, fi.Pkg, fi, fi.Body)
	}
	// Literals in package-level variable initializers.
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if gd, ok := decl.(*ast.GenDecl); ok {
					collectLits(ix, pkg, nil, gd)
				}
			}
		}
	}
	for _, fi := range ix.Funcs {
		fi.Calls = resolveCalls(ix, fi.Pkg, fi.Body)
	}
	for _, fi := range ix.Lits {
		fi.Calls = resolveCalls(ix, fi.Pkg, fi.Lit.Body)
	}
	sort.SliceStable(ix.Lits, func(i, j int) bool {
		return ix.Lits[i].Lit.Pos() < ix.Lits[j].Lit.Pos()
	})
	p.index = ix
	return ix
}

// collectLits registers every function literal under root (which is
// parent's body, or a package-level decl with parent nil).
func collectLits(ix *Index, pkg *Package, parent *FuncInfo, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if _, seen := ix.byLit[lit]; !seen {
				fi := &FuncInfo{Pkg: pkg, Lit: lit, Body: lit.Body, Parent: parent}
				ix.Lits = append(ix.Lits, fi)
				ix.byLit[lit] = fi
			}
		}
		return true
	})
}

// resolveCalls finds the call sites in body, excluding nested literals,
// and resolves static callees through the type info.
func resolveCalls(ix *Index, pkg *Package, body *ast.BlockStmt) []*CallSite {
	var calls []*CallSite
	var walk func(n ast.Node, deferred, spawned bool)
	walk = func(n ast.Node, deferred, spawned bool) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.FuncLit:
				return false // owns its own call list
			case *ast.DeferStmt:
				walk(c.Call, true, false)
				return false
			case *ast.GoStmt:
				walk(c.Call, false, true)
				return false
			case *ast.CallExpr:
				cs := &CallSite{Call: c, Deferred: deferred, Spawned: spawned}
				cs.Callee = staticCallee(ix, pkg, c)
				calls = append(calls, cs)
				// Arguments and the callee expression may contain
				// further calls; only the outermost call carries the
				// defer/go marker.
				for _, arg := range c.Args {
					walk(arg, false, false)
				}
				walk(c.Fun, false, false)
				return false
			}
			return true
		})
	}
	walk(body, false, false)
	return calls
}

// staticCallee resolves a call expression to a module function: direct
// calls (pkg-level functions, methods on concrete receivers) resolve;
// interface dispatch and function values do not.
func staticCallee(ix *Index, pkg *Package, call *ast.CallExpr) *FuncInfo {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.FuncLit:
		return ix.LitOf(fun)
	default:
		return nil
	}
	if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
		return ix.byObj[fn]
	}
	return nil
}
