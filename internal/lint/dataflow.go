package lint

// The dataflow half of the analysis substrate: a small forward engine
// over the CFG. Facts are string-keyed sets (held mutexes, tainted
// names); the join at merge points is a union, which keeps the engine
// optimistic the same way the v1 walker was — a fact holds after a
// merge if it held on any falling-through path, because here false
// positives hurt more than false negatives. Analyzers supply a
// transfer function applied node by node; after the fixpoint they
// re-walk every block with its stable entry facts to emit diagnostics
// in deterministic source order.
//
// Interprocedural analyses layer per-function summaries on top via
// Fixpoint: a step function recomputes one function's summary from its
// callees' until nothing changes (the call graph may have cycles, so
// this is a worklist iteration, not a topological pass).

import (
	"go/ast"
	"sort"
)

// Facts is a set of dataflow facts keyed by stable strings.
type Facts map[string]bool

// Clone copies the fact set.
func (f Facts) Clone() Facts {
	cp := make(Facts, len(f))
	for k, v := range f {
		if v {
			cp[k] = true
		}
	}
	return cp
}

// Keys returns the true facts, sorted.
func (f Facts) Keys() []string {
	var out []string
	for k, v := range f {
		if v {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// union merges src into dst, reporting whether dst changed.
func (f Facts) union(src Facts) bool {
	changed := false
	for k, v := range src {
		if v && !f[k] {
			f[k] = true
			changed = true
		}
	}
	return changed
}

// equal reports whether two fact sets hold the same true facts.
func (f Facts) equal(g Facts) bool {
	for k, v := range f {
		if v != g[k] {
			return false
		}
	}
	for k, v := range g {
		if v != f[k] {
			return false
		}
	}
	return true
}

// TransferFunc mutates facts in place for one CFG node's effects.
type TransferFunc func(n ast.Node, facts Facts)

// Forward runs the worklist algorithm: entry starts with init, block
// entry facts join (union) over predecessors, and transfer is applied
// node by node. It returns the stable entry facts per block.
func Forward(cfg *CFG, init Facts, transfer TransferFunc) map[*Block]Facts {
	in := map[*Block]Facts{cfg.Entry: init.Clone()}
	for _, b := range cfg.Blocks {
		if _, ok := in[b]; !ok {
			in[b] = Facts{}
		}
	}
	// Every block is seeded, not just the entry: a block whose entry
	// facts never change still generates facts (a mid-function Lock)
	// that must flow to its successors at least once.
	work := make([]*Block, 0, len(cfg.Blocks))
	queued := make(map[*Block]bool, len(cfg.Blocks))
	for _, b := range cfg.Blocks {
		work = append(work, b)
		queued[b] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := in[b].Clone()
		for _, n := range b.Nodes {
			transfer(n, out)
		}
		for _, s := range b.Succs {
			if in[s].union(out) && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// Visit replays the stable solution in deterministic block order,
// calling visit before transfer on every node with the facts that hold
// immediately before it. Analyzers emit their diagnostics here.
func Visit(cfg *CFG, in map[*Block]Facts, transfer TransferFunc, visit func(n ast.Node, facts Facts)) {
	for _, b := range cfg.Blocks {
		facts := in[b].Clone()
		for _, n := range b.Nodes {
			visit(n, facts)
			transfer(n, facts)
		}
	}
}

// Fixpoint iterates step over every function in the index until no
// step reports a change. step must be monotone (summaries only grow)
// for termination; the round bound is a backstop against bugs.
func (ix *Index) Fixpoint(step func(f *FuncInfo) bool) {
	all := ix.All()
	for round := 0; round < 1000; round++ {
		changed := false
		for _, f := range all {
			if step(f) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}
