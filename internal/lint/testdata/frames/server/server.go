// Fixture server endpoint: a non-exhaustive switch with no default, an
// untyped frame literal, and a suppressed one.
package server

import "fix/protocol"

func Dispatch(m protocol.Message) int {
	switch m.Type { // want `switch over protocol\.Type has no default case and misses: TypeOrphan`
	case protocol.TypeHello:
		return 1
	case protocol.TypeResult:
		return 2
	}
	return 0
}

// Send mentions the orphan frame so only the worker misses it.
func Send() protocol.Message {
	_ = protocol.TypeOrphan
	return protocol.Message{Type: protocol.TypeHello, N: 1}
}

func Untyped() protocol.Message {
	return protocol.Message{N: 2} // want `Message literal does not set Type`
}

func Suppressed() protocol.Message {
	//lint:ignore frames the caller fills in Type before sending
	return protocol.Message{N: 3}
}

// Fold dispatches telemetry event kinds but forgot one and has no
// default policy.
func Fold(k protocol.EventKind) int {
	switch k { // want `switch over protocol\.EventKind has no default case and misses: EventStop`
	case protocol.EventStart:
		return 1
	}
	return 0
}
