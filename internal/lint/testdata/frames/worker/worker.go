// Fixture worker endpoint: exhaustive-enough switch thanks to its
// default case, but it never mentions TypeOrphan.
package worker

import "fix/protocol"

func Handle(m protocol.Message) int {
	switch m.Type {
	case protocol.TypeHello:
		return 1
	case protocol.TypeResult:
		return 2
	default:
		return 0
	}
}
