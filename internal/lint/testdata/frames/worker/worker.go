// Fixture worker endpoint: exhaustive-enough switch thanks to its
// default case, but it never mentions TypeOrphan.
package worker

import "fix/protocol"

func Handle(m protocol.Message) int {
	switch m.Type {
	case protocol.TypeHello:
		return 1
	case protocol.TypeResult:
		return 2
	default:
		return 0
	}
}

// Classify covers every event kind, so it needs no default.
func Classify(k protocol.EventKind) int {
	switch k {
	case protocol.EventStart:
		return 1
	case protocol.EventStop:
		return 2
	}
	return 0
}
