// Fixture protocol package for the frames analyzer.
package protocol

// Type discriminates frames.
type Type string

const (
	TypeHello  Type = "hello"
	TypeResult Type = "result"
	TypeOrphan Type = "orphan" // want `frame type protocol\.TypeOrphan is never referenced in fix/worker`
)

// Message is the frame union.
type Message struct {
	Type Type
	N    int
}

// EventKind discriminates telemetry events.
type EventKind string

const (
	EventStart EventKind = "start"
	EventStop  EventKind = "stop"
)
