// Fixture for the locks analyzer: guarded-field accesses with and
// without the mutex held, assumed-locked helpers, fresh locals,
// suppressions, and malformed driver directives.
package locks

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	m  int // guarded by nosuch -- want `"guarded by nosuch" names no sibling sync.Mutex/RWMutex field`
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) bad() int {
	return c.n // want `c\.n is guarded by mu but accessed without c\.mu held`
}

func (c *counter) deferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// incLocked runs under the caller's lock (the Locked suffix).
func (c *counter) incLocked() {
	c.n++
}

// peek is fine: caller holds c.mu.
func (c *counter) peek() int {
	return c.n
}

func fresh() *counter {
	c := &counter{}
	c.n = 1 // freshly built local: not shared yet, no diagnostic
	return c
}

func suppressed(c *counter) int {
	//lint:ignore locks read is racy by design in this fixture
	return c.n
}

func guardedBranch(c *counter) int {
	c.mu.Lock()
	if c.n > 10 {
		c.mu.Unlock()
		return 0
	}
	n := c.n // the terminating branch above does not leak its unlock
	c.mu.Unlock()
	return n
}

func spawn(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `c\.n is guarded by mu but accessed without c\.mu held`
	}()
}

func driverErrors(c *counter) {
	//lint:ignore locks
	// want `malformed lint:ignore`
	c.mu.Lock()
	//lint:ignore nosuchanalyzer because reasons
	// want `lint:ignore names unknown analyzer "nosuchanalyzer"`
	c.mu.Unlock()
}
