// Fixture obs package: the leveled logger with its banned compat shim.
package obs

type Logger struct{}

func (l *Logger) Printf(format string, args ...any) {}
func (l *Logger) Infof(format string, args ...any)  {}
