// Fixture pure package: wall clocks and unseeded randomness break
// deterministic replay.
package pure

import (
	"math/rand" // want `pure package fix/pure imports math/rand`
	"time"
)

func Jitter() float64 {
	_ = time.Now() // want `time\.Now in pure package fix/pure`
	return rand.Float64()
}
