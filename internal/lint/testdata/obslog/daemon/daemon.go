// Fixture daemon package: stdlib logging, stdout prints, and the
// unleveled obs shim are all banned; one print is suppressed.
package daemon

import (
	"fmt"
	"log"

	"fix/obs"
)

func Run(lg *obs.Logger) {
	log.Printf("boot")  // want `stdlib log\.Printf in daemon code`
	fmt.Println("boot") // want `fmt\.Println in daemon code`
	lg.Printf("boot")   // want `obs logger Printf is the unleveled compat shim`
	lg.Infof("boot")
	//lint:ignore obslog the banner is stdout payload, not logging
	fmt.Println("banner")
}
