// Fixture for the leaks analyzer: untracked spinners fail; WaitGroup-
// tracked, done-aware, and channel-draining goroutines pass.
package server

import (
	"fmt"
	"sync"
)

func Spawn(done chan struct{}, work chan int) {
	var wg sync.WaitGroup

	go func() { // want `goroutine is neither WaitGroup-tracked`
		for {
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		heavy()
	}()

	go func() {
		<-done
	}()

	go drain(work)

	go fmt.Println("started") // want `cannot see into`

	//lint:ignore leaks runs once and exits; nothing to track
	go heavy()
}

func heavy() {}

func drain(work chan int) {
	for range work {
	}
}
