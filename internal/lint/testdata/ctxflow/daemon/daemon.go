// Fixture for the ctxflow analyzer: blocking ops on daemon-goroutine
// paths with and without a cancellation alternative.
package daemon

import "time"

type S struct {
	work chan int
	out  chan int
	done chan struct{}
}

// Start spawns the daemons; everything reachable from here is checked.
func (s *S) Start() {
	go s.loop()
	go s.sleeper()
	go s.helperCaller()
	go func() {
		s.out <- 1 // want `blocking send to s\.out in func literal in Start has no cancellation path`
	}()
}

func (s *S) loop() {
	v := <-s.work // want `blocking receive from s\.work in loop has no cancellation path`
	_ = v

	// A multi-way select always has an alternative arm: fine.
	select {
	case v := <-s.work:
		_ = v
	case <-s.done:
		return
	}

	// Receives from cancellation and deadline sources are fine bare.
	<-s.done
	t := time.NewTimer(time.Second)
	<-t.C
	<-time.After(time.Second)

	// Range over a channel ends when the producer closes it: fine.
	for v := range s.work {
		_ = v
	}

	// A buffered handoff made here cannot block forever.
	ch := make(chan int, 4)
	ch <- 1

	// A single-arm select is the same as a bare op.
	select {
	case v := <-s.work: // want `blocking receive from s\.work in loop has no cancellation path`
		_ = v
	}
}

func (s *S) sleeper() {
	time.Sleep(time.Second) // want `time\.Sleep on a daemon goroutine path in sleeper cannot be cancelled`

	//lint:ignore ctxflow short settle delay bounded by the test harness
	time.Sleep(time.Millisecond)
}

// helper is reached through a call from a spawned goroutine: its
// blocking ops are daemon ops too.
func (s *S) helperCaller() {
	s.helper()
}

func (s *S) helper() {
	s.out <- 2 // want `blocking send to s\.out in helper has no cancellation path`
}

// NotSpawned is never the target of a go statement; its bare ops are
// the caller's synchronous problem, not a daemon-shutdown one.
func (s *S) NotSpawned() {
	v := <-s.work
	_ = v
}
