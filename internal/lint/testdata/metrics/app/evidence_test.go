package app

// Raw evidence for the metrics analyzer's test-file scan: names here are
// matched textually against the registered families.

const (
	seenJobs  = "cwc_jobs_total"
	seenHisto = "cwc_lat_ms_bucket"
	missing   = "cwc_ghost_total" // want `referenced here but never registered by the module`
)

// lint:ignore metrics retired family cited by the upgrade notes only
const retired = "cwc_retired_total"
