// Fixture for the metrics analyzer: family-name hygiene, label
// boundedness (including the interprocedural helper and parameter
// summaries), kind stability, and the suppression escape hatches.
package app

import (
	"fmt"
	"strconv"

	"fix/obs"
)

const famJobs = "cwc_jobs_total"

func register(r *obs.Registry, n, k int) {
	r.Counter(famJobs)
	r.Help(famJobs, "jobs accepted by the master")
	r.Counter("cwc_frames_total", "type", "welcome")
	r.Histogram("cwc_lat_ms")

	r.Counter("jobs_total")                     // want `metric family "jobs_total" does not match`
	r.Counter(fmt.Sprintf("cwc_%s_total", "x")) // want `dynamically constructed name`

	r.Counter("cwc_temp")
	r.Gauge("cwc_temp") // want `registered as Gauge here but as Counter at`

	r.Counter("cwc_bad_key_total", "Phone", "a")         // want `label key "Phone" is not a lowercase identifier`
	r.Counter("cwc_dyn_key_total", strconv.Itoa(n), "a") // want `label key must be a compile-time constant`
	r.Gauge("cwc_queue_depth", "phone", strconv.Itoa(n)) // want `label value strconv\.Itoa\(\) is unbounded`

	//lint:ignore metrics the phone label is bounded by fleet size in this fixture
	r.Gauge("cwc_phone_rtt", "phone", strconv.Itoa(n))

	r.Counter("cwc_events_total", "kind", kindLabel(k))
}

// kindLabel folds an event kind onto a fixed label vocabulary; every
// return is a constant, so its result is a bounded label value.
func kindLabel(k int) string {
	switch k {
	case 1:
		return "assign"
	case 2:
		return "result"
	default:
		return "other"
	}
}

// gauges registers families drawn from a constant-keyed map literal.
func gauges(r *obs.Registry) {
	fams := map[string]string{"cwc_exec_ms": "exec", "cwc_mem_mb": "mem"}
	for fam := range fams {
		r.Gauge(fam)
	}
}

// record's status parameter is bounded because every module call site
// passes a constant.
func record(r *obs.Registry, status string) {
	r.Counter("cwc_results_total", "status", status)
}

func drive(r *obs.Registry) {
	record(r, "ok")
	record(r, "failed")
}

func clean(r *obs.Registry) {
	//lint:ignore metrics stale: nothing on the next line needs it
	r.Counter("cwc_clean_total") // want `lint:ignore metrics suppresses nothing`

	//lint:ignore metrics,unused kept while the migration note still cites it
	r.Counter("cwc_kept_total")
}
