// Fixture registry: the method set the metrics analyzer resolves
// (Counter/Gauge/Histogram/Help on a type in the obs package).
package obs

type Registry struct{}

type Counter struct{}

type Gauge struct{}

type Histogram struct{}

func (r *Registry) Counter(name string, labels ...string) *Counter { return &Counter{} }

func (r *Registry) Gauge(name string, labels ...string) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name string, labels ...string) *Histogram { return &Histogram{} }

func (r *Registry) Help(name, text string) {}
