// Fixture for the epoch analyzer: fenced frames and WAL records minted
// with and without the regime counter.
package server

import "fix/protocol"

// walEpochRec is the fenced WAL record type; walNoteRec is not fenced.
type walEpochRec struct {
	Epoch int64
	N     int
}

type walNoteRec struct {
	Note string
}

func mintBad() *protocol.Message {
	return &protocol.Message{Type: protocol.TypeResult} // want `TypeResult frame minted without Epoch`
}

func mintGood(epoch int64) *protocol.Message {
	return &protocol.Message{Type: protocol.TypeResult, Epoch: epoch}
}

func mintUnfenced() *protocol.Message {
	return &protocol.Message{Type: protocol.TypePing}
}

func mintSuppressed() *protocol.Message {
	//lint:ignore epoch replay tooling reconstructs the epoch from the stream offset
	return &protocol.Message{Type: protocol.TypeResult}
}

// assignBad builds the frame field by field but never stamps the epoch.
func assignBad() *protocol.Message {
	var m protocol.Message
	m.Type = protocol.TypeResult // want `m\.Type set to fenced TypeResult but m\.Epoch is never assigned`
	m.Error = "boom"
	return &m
}

func assignGood(epoch int64) *protocol.Message {
	var m protocol.Message
	m.Type = protocol.TypeResult
	m.Epoch = epoch
	return &m
}

func recBad(n int) walEpochRec {
	return walEpochRec{N: n} // want `walEpochRec literal does not thread Epoch`
}

func recGood(epoch int64, n int) walEpochRec {
	return walEpochRec{Epoch: epoch, N: n}
}

// recPositional sets every field, Epoch included.
func recPositional(epoch int64, n int) walEpochRec {
	return walEpochRec{epoch, n}
}

func recUnfenced() walNoteRec {
	return walNoteRec{Note: "free"}
}
