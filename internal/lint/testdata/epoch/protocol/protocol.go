// Fixture protocol package for the epoch analyzer: a fenced frame type
// (TypeResult) and an unfenced one (TypePing).
package protocol

type Type string

const (
	TypeResult Type = "result"
	TypePing   Type = "ping"
)

type Message struct {
	Type  Type
	Epoch int64
	Error string
}
