// Fixture protocol package: Conn.Send stands in for the real blocking
// wire write banned under a mutex.
package protocol

type Conn struct{}

func (c *Conn) Send(b []byte) error { return nil }

func (c *Conn) Close() error { return nil }
