// Fixture for the lockorder analyzer: inconsistent acquisition order
// (direct and through a callee), blocking calls under a held mutex
// (direct and interprocedural), a suppression, and clean orderings.
package server

import (
	"sync"

	"fix/protocol"
)

type A struct {
	mu sync.Mutex
}

type B struct {
	mu sync.Mutex
}

type C struct {
	mu sync.Mutex
}

type S struct {
	mu   sync.Mutex
	conn *protocol.Conn
}

// aThenB and bThenA disagree on order: a cycle between A.mu and B.mu.
func aThenB(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `acquires server\.B\.mu while holding server\.A\.mu; part of a lock-order cycle`
	b.mu.Unlock()
	a.mu.Unlock()
}

func bThenA(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want `acquires server\.A\.mu while holding server\.B\.mu; part of a lock-order cycle`
	a.mu.Unlock()
	b.mu.Unlock()
}

// lockC acquires C.mu for its caller; the edge is charged to the call
// site that already holds another lock.
func lockC(c *C) {
	c.mu.Lock()
	c.mu.Unlock()
}

func aThenCallee(a *A, c *C) {
	a.mu.Lock()
	lockC(c) // want `acquires server\.C\.mu while holding server\.A\.mu; part of a lock-order cycle`
	a.mu.Unlock()
}

func cThenA(a *A, c *C) {
	c.mu.Lock()
	a.mu.Lock() // want `acquires server\.A\.mu while holding server\.C\.mu; part of a lock-order cycle`
	a.mu.Unlock()
	c.mu.Unlock()
}

// sendUnderLock blocks on the wire with the state lock held.
func (s *S) sendUnderLock(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conn.Send(b) // want `calls fix/protocol\.Conn\.Send while holding server\.S\.mu`
}

// sendy blocks; callers holding a lock are charged at their call site.
func (s *S) sendy(b []byte) {
	s.conn.Send(b)
}

func (s *S) sendViaHelper(b []byte) {
	s.mu.Lock()
	s.sendy(b) // want `calls sendy, which may block in fix/protocol\.Conn\.Send, while holding server\.S\.mu`
	s.mu.Unlock()
}

// sendSuppressed is the documented escape hatch.
func (s *S) sendSuppressed(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockorder this send is bounded by a connection write deadline
	s.conn.Send(b)
}

// sendAfterUnlock is clean: the lock is released before the wire write.
func (s *S) sendAfterUnlock(b []byte) {
	s.mu.Lock()
	s.mu.Unlock()
	s.conn.Send(b)
}

// consistent locks D-then-E everywhere: order without a cycle is fine.
type D struct {
	mu sync.Mutex
}

type E struct {
	mu sync.Mutex
}

func deOne(d *D, e *E) {
	d.mu.Lock()
	e.mu.Lock()
	e.mu.Unlock()
	d.mu.Unlock()
}

func deTwo(d *D, e *E) {
	d.mu.Lock()
	e.mu.Lock()
	e.mu.Unlock()
	d.mu.Unlock()
}

// spawned goroutines start a fresh timeline: no edge from the caller's
// held set.
func spawned(a *A, b *B) {
	b.mu.Lock()
	go func() {
		a.mu.Lock()
		a.mu.Unlock()
	}()
	b.mu.Unlock()
}
