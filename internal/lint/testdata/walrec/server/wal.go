// Fixture for the walrec analyzer: one clean record type, one with no
// append site, one with no replay case, and a duplicated wire value.
package server

type walRecType byte

const (
	walRecA    walRecType = 1
	walRecB    walRecType = 2 // want `WAL record type walRecB is never passed to \[walAppend\]`
	walRecC    walRecType = 3 // want `WAL record type walRecC has no replay-switch case`
	walRecDup1 walRecType = 9 // want `WAL record types \[walRecDup1 walRecDup2\] share wire value 9`
	walRecDup2 walRecType = 9
)

func walAppend(t walRecType, payload any) {}

func replay(t walRecType) int {
	switch t {
	case walRecA:
		return 1
	case walRecB:
		return 2
	case walRecDup1:
		return 3
	default:
		return 0
	}
}

func replayDup(t walRecType) bool {
	switch t {
	case walRecDup2:
		return true
	}
	return false
}

func write() {
	walAppend(walRecA, nil)
	walAppend(walRecC, nil)
	walAppend(walRecDup1, nil)
	walAppend(walRecDup2, nil)
}
