package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// FramesAnalyzer proves the wire protocol stays total as frame types are
// added:
//
//  1. Every frame-type constant (protocol.Type) must be referenced in
//     every endpoint package (server and worker). A frame only one side
//     knows about is a frame the other side silently drops — exactly the
//     hole that turns an "unplug" into undetectable lost work.
//  2. Every switch over the frame type in an endpoint package must
//     either carry a default case (explicit forward-compatibility
//     policy) or cover every constant. Adding a frame without extending
//     a dispatch switch is a build-breaking diagnostic, not a silent
//     fallthrough.
//  3. Every composite literal of the frame struct (protocol.Message)
//     must set the Type field explicitly; an untyped frame is rejected
//     by the peer as corrupt.
//  4. When Config.EventKindTypeName is set, rule 2 also applies to
//     switches over that discriminator (the worker telemetry event
//     kinds): a new event kind must extend every fold switch or the
//     switch must declare a default policy.
var FramesAnalyzer = &Analyzer{
	Name: "frames",
	Doc:  "every protocol frame type is dispatched at both endpoints and every frame literal sets Type",
	Run:  runFrames,
}

func runFrames(cfg *Config, prog *Program) []Diagnostic {
	proto := prog.Lookup(cfg.ProtocolPkg)
	if proto == nil {
		return nil // nothing to check in this tree (fixtures)
	}
	var diags []Diagnostic

	// Collect the frame-type constants declared in the protocol package.
	consts, names, byName := discriminatorConsts(proto, cfg.ProtocolPkg, cfg.FrameTypeName)
	if len(names) == 0 {
		return nil
	}

	// 1. Every constant referenced in every endpoint package.
	for _, epPath := range cfg.EndpointPkgs {
		ep := prog.Lookup(epPath)
		if ep == nil {
			continue
		}
		used := map[*types.Const]bool{}
		for _, id := range usesOf(ep) {
			if c, ok := ep.Info.Uses[id].(*types.Const); ok {
				if _, tracked := consts[c]; tracked {
					used[c] = true
				}
			}
		}
		for _, name := range names {
			c := byName[name]
			if !used[c] {
				diags = append(diags, prog.diag("frames", consts[c],
					"frame type %s.%s is never referenced in %s: add a dispatch case or sender",
					proto.Types.Name(), name, epPath))
			}
		}
	}

	// 2. Frame-type switches are exhaustive or carry a default — and the
	// same for the telemetry event-kind discriminator (rule 4).
	diags = append(diags, switchDiags(cfg, prog, proto, cfg.FrameTypeName, consts, names, byName)...)
	if cfg.EventKindTypeName != "" {
		ekConsts, ekNames, ekByName := discriminatorConsts(proto, cfg.ProtocolPkg, cfg.EventKindTypeName)
		if len(ekNames) > 0 {
			diags = append(diags, switchDiags(cfg, prog, proto, cfg.EventKindTypeName, ekConsts, ekNames, ekByName)...)
		}
	}

	// 3. Every frame literal sets the Type field.
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				t, ok := pkg.Info.Types[lit]
				if !ok || !isNamedType(t.Type, cfg.ProtocolPkg, cfg.MessageTypeName) {
					return true
				}
				for _, el := range lit.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Type" {
							return true
						}
					}
				}
				diags = append(diags, prog.diag("frames", lit,
					"%s literal does not set Type: the peer rejects untyped frames as corrupt",
					cfg.MessageTypeName))
				return true
			})
		}
	}
	return diags
}

// discriminatorConsts collects the constants of one named discriminator
// type declared in the protocol package, with their declaration sites.
func discriminatorConsts(proto *Package, pkgPath, typeName string) (map[*types.Const]ast.Node, []string, map[string]*types.Const) {
	consts := map[*types.Const]ast.Node{}
	var names []string
	byName := map[string]*types.Const{}
	scope := proto.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !isNamedType(c.Type(), pkgPath, typeName) {
			continue
		}
		consts[c] = declSite(proto, name)
		names = append(names, name)
		byName[name] = c
	}
	sort.Strings(names)
	return consts, names, byName
}

// switchDiags checks that every switch over the named discriminator type
// in an endpoint package is exhaustive or carries a default case.
func switchDiags(cfg *Config, prog *Program, proto *Package, typeName string,
	consts map[*types.Const]ast.Node, names []string, byName map[string]*types.Const) []Diagnostic {
	var diags []Diagnostic
	for _, epPath := range cfg.EndpointPkgs {
		ep := prog.Lookup(epPath)
		if ep == nil {
			continue
		}
		for _, f := range ep.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				t, ok := ep.Info.Types[sw.Tag]
				if !ok || !isNamedType(t.Type, cfg.ProtocolPkg, typeName) {
					return true
				}
				covered := map[*types.Const]bool{}
				hasDefault := false
				for _, c := range sw.Body.List {
					cc := c.(*ast.CaseClause)
					if cc.List == nil {
						hasDefault = true
					}
					for _, e := range cc.List {
						if tv, ok := ep.Info.Types[e]; ok && tv.Value != nil {
							for c2 := range consts {
								if c2.Val() != nil && tv.Value.String() == c2.Val().String() {
									covered[c2] = true
								}
							}
						}
					}
				}
				if hasDefault {
					return true
				}
				var missing []string
				for _, name := range names {
					if !covered[byName[name]] {
						missing = append(missing, name)
					}
				}
				if len(missing) > 0 {
					diags = append(diags, prog.diag("frames", sw,
						"switch over %s.%s has no default case and misses: %s",
						proto.Types.Name(), typeName, strings.Join(missing, ", ")))
				}
				return true
			})
		}
	}
	return diags
}

// declSite finds the AST node declaring a package-scope name; used for
// positioning diagnostics at the constant's declaration.
func declSite(pkg *Package, name string) ast.Node {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, id := range vs.Names {
					if id.Name == name {
						return id
					}
				}
			}
		}
	}
	return pkg.Files[0]
}

// usesOf lists every identifier in a package (for Uses lookups).
func usesOf(pkg *Package) []*ast.Ident {
	var ids []*ast.Ident
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				ids = append(ids, id)
			}
			return true
		})
	}
	return ids
}
