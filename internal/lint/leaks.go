package lint

import (
	"go/ast"
	"go/types"
)

// LeaksAnalyzer proves every goroutine the master and worker spawn can
// be shut down: a `go` statement must either be tracked by a
// sync.WaitGroup (so Close/Run can wait for it) or be ctx/done-aware
// (select, channel receive, or a range over a channel, so closing the
// channel or canceling the context terminates it). An untracked,
// unaware goroutine is exactly the kind that outlives Close and turns
// the keepalive-detected failure model into a goroutine leak — the
// PR-4 obs-neutrality tests assert no goroutine growth, and this keeps
// that property as code is added.
//
// The evidence is searched in the goroutine's own body (for `go func`
// literals) or the body of the named same-package function being
// spawned; nested function literals do not count as evidence for their
// parent.
var LeaksAnalyzer = &Analyzer{
	Name: "leaks",
	Doc:  "every spawned goroutine is WaitGroup-tracked or ctx/done-aware",
	Run:  runLeaks,
}

func runLeaks(cfg *Config, prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		if !matchAnyPkg(cfg.LeakPkgs, pkg.Path) {
			continue
		}
		decls := packageFuncBodies(pkg)
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				var body *ast.BlockStmt
				switch fun := gs.Call.Fun.(type) {
				case *ast.FuncLit:
					body = fun.Body
				case *ast.Ident, *ast.SelectorExpr:
					var id *ast.Ident
					if sel, ok := fun.(*ast.SelectorExpr); ok {
						id = sel.Sel
					} else {
						id = fun.(*ast.Ident)
					}
					if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
						body = decls[fn]
					}
				}
				if body == nil {
					diags = append(diags, prog.diag("leaks", gs,
						"goroutine spawns a function this analyzer cannot see into: track it with a sync.WaitGroup or make it ctx/done-aware"))
					return true
				}
				if !goroutineTerminates(pkg, body) {
					diags = append(diags, prog.diag("leaks", gs,
						"goroutine is neither WaitGroup-tracked (defer wg.Done()) nor ctx/done-aware (select, channel receive, or range over a channel): it can outlive Close"))
				}
				return true
			})
		}
	}
	return diags
}

// packageFuncBodies maps declared functions to their bodies so `go
// m.acceptLoop()` can be checked through the method's own body.
func packageFuncBodies(pkg *Package) map[*types.Func]*ast.BlockStmt {
	out := map[*types.Func]*ast.BlockStmt{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd.Body
			}
		}
	}
	return out
}

// goroutineTerminates looks for shutdown evidence in a goroutine body:
// a deferred WaitGroup.Done, a select statement, a channel receive, or
// a range over a channel. Nested function literals are skipped — their
// awareness is not the parent's.
func goroutineTerminates(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t, ok := pkg.Info.Types[n.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.DeferStmt:
			if sel, ok := n.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if t, ok := pkg.Info.Types[sel.X]; ok &&
					isNamedType(t.Type, "sync", "WaitGroup") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
