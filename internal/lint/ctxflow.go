package lint

// ctxflow checks that the daemons can actually shut down: every
// blocking operation reachable from a goroutine spawned in a tracked
// package must be cancellable. The leaks analyzer (v1) checks that a
// goroutine is *tracked* (WaitGroup + shutdown evidence); ctxflow
// checks the complementary property that no op on the goroutine's
// paths can block forever once shutdown is requested:
//
//   - a select with two or more cases (or a default) always has an
//     alternative arm, so its comm ops are fine;
//   - a bare receive is fine when the channel is a cancellation or
//     deadline source (ctx.Done(), a done/stop/quit channel by name, a
//     timer/ticker .C, time.After) or is consumed by range (the
//     producer closes it);
//   - a bare send is fine on a done-like channel or one made with a
//     buffer in the same function;
//   - time.Sleep is never fine on a daemon path — it delays shutdown
//     by its full duration with no way to interrupt.
//
// Reachability is over the static call graph, crossing package
// boundaries, with spawned goroutines of reached functions included
// (a goroutine's goroutine is still a daemon).

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// CtxFlowAnalyzer reports blocking ops on daemon-goroutine paths that
// have no cancellation alternative.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "require every blocking op reachable from a daemon goroutine to be cancellable",
	Run:  runCtxFlow,
}

// doneLikeRe matches channel expressions that are cancellation sources
// by naming convention.
var doneLikeRe = regexp.MustCompile(`(?i)(done|stop|quit|close|shutdown|exit|ctx|cancel)`)

func runCtxFlow(cfg *Config, prog *Program) []Diagnostic {
	ix := prog.Index()

	// Roots: every statically resolved `go` target in a tracked package.
	reached := map[*FuncInfo]bool{}
	var frontier []*FuncInfo
	for _, f := range ix.All() {
		if !matchAnyPkg(cfg.CtxPkgs, f.Pkg.Path) {
			continue
		}
		for _, cs := range f.Calls {
			if cs.Spawned && cs.Callee != nil && !reached[cs.Callee] {
				reached[cs.Callee] = true
				frontier = append(frontier, cs.Callee)
			}
		}
	}
	for len(frontier) > 0 {
		f := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, cs := range f.Calls {
			if cs.Callee != nil && !reached[cs.Callee] {
				reached[cs.Callee] = true
				frontier = append(frontier, cs.Callee)
			}
		}
	}

	var diags []Diagnostic
	seen := map[string]bool{}
	for _, f := range ix.All() {
		if !reached[f] {
			continue
		}
		for _, d := range checkGoroutineBody(prog, f) {
			key := d.Position.String()
			if !seen[key] {
				seen[key] = true
				diags = append(diags, d)
			}
		}
	}
	return diags
}

// checkGoroutineBody scans one reached function for non-cancellable
// blocking ops.
func checkGoroutineBody(prog *Program, f *FuncInfo) []Diagnostic {
	var diags []Diagnostic
	exempt := map[ast.Node]bool{} // comm ops inside multi-way selects
	ranged := map[ast.Node]bool{} // receive operands consumed by range

	ast.Inspect(f.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == f.Lit
		case *ast.SelectStmt:
			comms := 0
			hasDefault := false
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm == nil {
					hasDefault = true
				} else {
					comms++
				}
			}
			if comms >= 2 || hasDefault {
				for _, c := range n.Body.List {
					if cc := c.(*ast.CommClause); cc.Comm != nil {
						markComm(exempt, cc.Comm)
					}
				}
			}
		case *ast.RangeStmt:
			if isChanType(f.Pkg.Info.TypeOf(n.X)) {
				ranged[n.X] = true
			}
		}
		return true
	})

	ast.Inspect(f.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == f.Lit
		case *ast.CallExpr:
			if name := qualifiedFunc(calleeFunc(f.Pkg, n)); name == "time.Sleep" {
				diags = append(diags, prog.diag("ctxflow", n,
					"time.Sleep on a daemon goroutine path in %s cannot be cancelled; select on a timer and the shutdown channel instead", f.Name()))
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW || exempt[n] || ranged[n.X] {
				return true
			}
			if !cancellableRecv(f.Pkg, n.X) {
				diags = append(diags, prog.diag("ctxflow", n,
					"blocking receive from %s in %s has no cancellation path; add a select arm on the shutdown channel", exprString(n.X), f.Name()))
			}
		case *ast.SendStmt:
			if exempt[n] {
				return true
			}
			if !cancellableSend(f, n.Chan) {
				diags = append(diags, prog.diag("ctxflow", n,
					"blocking send to %s in %s has no cancellation path; add a select arm on the shutdown channel or buffer the channel", exprString(n.Chan), f.Name()))
			}
		}
		return true
	})
	return diags
}

// markComm exempts the comm statement's channel op nodes.
func markComm(exempt map[ast.Node]bool, comm ast.Stmt) {
	exempt[comm] = true
	ast.Inspect(comm, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				exempt[n] = true
			}
		case *ast.SendStmt:
			exempt[n] = true
		}
		return true
	})
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// cancellableRecv reports whether a bare receive operand is a
// cancellation or deadline source.
func cancellableRecv(pkg *Package, x ast.Expr) bool {
	s := exprString(x)
	if doneLikeRe.MatchString(s) {
		return true
	}
	switch x := x.(type) {
	case *ast.CallExpr:
		// ctx.Done(), time.After(d), time.Tick(d) are all bounded or
		// cancellation sources.
		name := qualifiedFunc(calleeFunc(pkg, x))
		if name == "time.After" || name == "time.Tick" {
			return true
		}
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
	case *ast.SelectorExpr:
		// timer.C / ticker.C fire after a bounded duration.
		if x.Sel.Name == "C" {
			return true
		}
	}
	return false
}

// cancellableSend reports whether a bare send cannot block forever:
// the channel is done-like by name, or it was made with a buffer in
// the same function (a bounded handoff).
func cancellableSend(f *FuncInfo, ch ast.Expr) bool {
	s := exprString(ch)
	if doneLikeRe.MatchString(s) {
		return true
	}
	id, ok := ch.(*ast.Ident)
	if !ok {
		return false
	}
	buffered := false
	ast.Inspect(f.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || lid.Name != id.Name || i >= len(as.Rhs) {
				continue
			}
			if call, ok := as.Rhs[i].(*ast.CallExpr); ok {
				if fun, ok := call.Fun.(*ast.Ident); ok && fun.Name == "make" && len(call.Args) == 2 {
					buffered = true
				}
			}
		}
		return true
	})
	return buffered
}
