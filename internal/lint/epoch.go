package lint

// epoch machine-checks the fencing discipline the failover design
// (hot-standby master with epoch fencing) relies on: a frame that
// participates in fencing is worthless unless it carries the regime
// counter from the moment it is minted, and a WAL record that persists
// the regime must thread it too. Three rules:
//
//  1. A protocol.Message composite literal whose Type field is one of
//     the fenced constants must also set Epoch in the same literal.
//  2. An assignment `x.Type = <fenced const>` must be matched by an
//     `x.Epoch = ...` assignment to the same base somewhere in the same
//     function (literal-free construction paths).
//  3. A keyed composite literal of a fenced WAL record type must set
//     its Epoch field (positional literals necessarily set every
//     field and pass).

import (
	"go/ast"
	"go/types"
)

// EpochAnalyzer reports fenced frames and WAL records minted without an
// epoch.
var EpochAnalyzer = &Analyzer{
	Name: "epoch",
	Doc:  "require fenced frames and WAL records to set Epoch at mint time",
	Run:  runEpoch,
}

func runEpoch(cfg *Config, prog *Program) []Diagnostic {
	fenced := map[string]bool{}
	for _, name := range cfg.FencedFrameTypes {
		fenced[name] = true
	}
	fencedWAL := map[string]bool{}
	for _, name := range cfg.FencedWALTypes {
		fencedWAL[name] = true
	}
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			diags = append(diags, epochLiterals(cfg, prog, pkg, f, fenced, fencedWAL)...)
		}
		diags = append(diags, epochAssignments(cfg, prog, pkg, fenced)...)
	}
	return diags
}

// fencedConstName returns the constant's name when e resolves to one of
// the fenced frame-type constants declared in ProtocolPkg.
func fencedConstName(cfg *Config, pkg *Package, e ast.Expr, fenced map[string]bool) string {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	c, ok := pkg.Info.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil || c.Pkg().Path() != cfg.ProtocolPkg || !fenced[c.Name()] {
		return ""
	}
	return c.Name()
}

// epochLiterals checks composite literals (rules 1 and 3).
func epochLiterals(cfg *Config, prog *Program, pkg *Package, f *ast.File, fenced, fencedWAL map[string]bool) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		named := namedOrPtr(pkg.Info.TypeOf(lit))
		if named == nil || named.Obj() == nil || named.Obj().Pkg() == nil {
			return true
		}
		obj := named.Obj()
		keyed := len(lit.Elts) > 0
		keys := map[string]ast.Expr{}
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				keyed = false
				break
			}
			if id, ok := kv.Key.(*ast.Ident); ok {
				keys[id.Name] = kv.Value
			}
		}

		// Rule 1: fenced Message literal must set Epoch.
		if obj.Pkg().Path() == cfg.ProtocolPkg && obj.Name() == cfg.MessageTypeName && keyed {
			if name := fencedConstName(cfg, pkg, keys["Type"], fenced); name != "" {
				if _, ok := keys["Epoch"]; !ok {
					diags = append(diags, prog.diag("epoch", lit,
						"%s frame minted without Epoch; fenced frames must carry the regime counter from creation", name))
				}
			}
		}

		// Rule 3: fenced WAL record literal must set Epoch.
		if obj.Pkg().Path() == cfg.WALPkg && fencedWAL[obj.Name()] && keyed {
			if _, ok := keys["Epoch"]; !ok {
				diags = append(diags, prog.diag("epoch", lit,
					"%s literal does not thread Epoch; the record is the regime's durable evidence", obj.Name()))
			}
		}
		return true
	})
	return diags
}

// epochAssignments checks rule 2: `x.Type = <fenced>` without a
// matching `x.Epoch = ...` in the same function body.
func epochAssignments(cfg *Config, prog *Program, pkg *Package, fenced map[string]bool) []Diagnostic {
	var diags []Diagnostic
	check := func(body *ast.BlockStmt) {
		type typeSet struct {
			node ast.Node
			base string
			name string
		}
		var sets []typeSet
		epochSet := map[string]bool{}
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || i >= len(as.Rhs) {
					continue
				}
				base := exprString(sel.X)
				if !isNamedType(pkg.Info.TypeOf(sel.X), cfg.ProtocolPkg, cfg.MessageTypeName) {
					continue
				}
				switch sel.Sel.Name {
				case "Type":
					if name := fencedConstName(cfg, pkg, as.Rhs[i], fenced); name != "" {
						sets = append(sets, typeSet{node: as, base: base, name: name})
					}
				case "Epoch":
					epochSet[base] = true
				}
			}
			return true
		})
		for _, s := range sets {
			if !epochSet[s.base] {
				diags = append(diags, prog.diag("epoch", s.node,
					"%s.Type set to fenced %s but %s.Epoch is never assigned in this function", s.base, s.name, s.base))
			}
		}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				check(fd.Body)
			}
		}
	}
	return diags
}
