package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// LocksAnalyzer enforces the "guarded by" annotation convention: a
// struct field whose doc or trailing comment says "guarded by <mu>"
// (where <mu> is a sibling sync.Mutex or sync.RWMutex field) may only be
// accessed while that mutex is held.
//
// The check is a per-function flow walk, not a whole-program proof:
//
//   - base.mu.Lock() / RLock() marks base's mutex held from that
//     statement on; base.mu.Unlock() / RUnlock() releases it; a deferred
//     unlock keeps it held to the end of the function.
//   - An if/for/select branch that terminates (return, panic, goto,
//     os.Exit) does not leak its lock-state changes into the fall-through
//     path, so the idiomatic "if bad { mu.Unlock(); return }" stays clean.
//   - Functions named *Locked, or documented "caller holds <mu>" /
//     "callers hold <mu>", are assumed to run with the receiver's
//     mutexes held.
//   - A local built from a composite literal in the same function is a
//     fresh, unshared object; accesses through it are exempt.
//   - go-routine literals start with no locks held (they run later);
//     other function literals inherit the lock state at their definition.
//
// Everything else touching a guarded field is a diagnostic.
var LocksAnalyzer = &Analyzer{
	Name: "locks",
	Doc:  `fields annotated "guarded by mu" are only accessed under that mutex`,
	Run:  runLocks,
}

// guardedRe extracts the mutex name from a field comment.
var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// callerHoldsRe recognizes assumed-locked function docs.
var callerHoldsRe = regexp.MustCompile(`(?i)callers? (?:must )?holds? ([A-Za-z_][A-Za-z0-9_.]*)`)

// guardInfo is one annotated field.
type guardInfo struct {
	mu string // sibling mutex field name
}

func runLocks(cfg *Config, prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		guarded, bad := collectGuarded(prog, pkg)
		diags = append(diags, bad...)
		if len(guarded) == 0 {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				w := &lockWalker{
					prog: prog, pkg: pkg, guarded: guarded,
					fresh: freshLocals(pkg, fd.Body),
				}
				held := map[string]bool{}
				if assumedLocked(fd) {
					markReceiverMutexesHeld(pkg, fd, held)
				}
				w.walkStmts(fd.Body.List, held)
				diags = append(diags, w.diags...)
			}
		}
	}
	return diags
}

// collectGuarded finds annotated fields in a package, validating that
// the named mutex is a sibling field of a mutex type.
func collectGuarded(prog *Program, pkg *Package) (map[*types.Var]guardInfo, []Diagnostic) {
	guarded := map[*types.Var]guardInfo{}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			mutexes := map[string]bool{}
			for _, fld := range st.Fields.List {
				if t, ok := pkg.Info.Types[fld.Type]; ok && isMutexType(t.Type) {
					for _, name := range fld.Names {
						mutexes[name.Name] = true
					}
				}
			}
			for _, fld := range st.Fields.List {
				text := fieldComment(fld)
				m := guardedRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				mu := m[1]
				if !mutexes[mu] {
					diags = append(diags, prog.diag("locks", fld,
						`"guarded by %s" names no sibling sync.Mutex/RWMutex field`, mu))
					continue
				}
				for _, name := range fld.Names {
					if obj, ok := pkg.Info.Defs[name].(*types.Var); ok {
						guarded[obj] = guardInfo{mu: mu}
					}
				}
			}
			return true
		})
	}
	return guarded, diags
}

func fieldComment(fld *ast.Field) string {
	var b strings.Builder
	if fld.Doc != nil {
		b.WriteString(fld.Doc.Text())
	}
	if fld.Comment != nil {
		b.WriteString(" ")
		b.WriteString(fld.Comment.Text())
	}
	return b.String()
}

func isMutexType(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

// assumedLocked reports whether a function declares itself as running
// under the caller's lock.
func assumedLocked(fd *ast.FuncDecl) bool {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return true
	}
	return fd.Doc != nil && callerHoldsRe.MatchString(fd.Doc.Text())
}

// markReceiverMutexesHeld marks every mutex field of the receiver type
// as held ("recv.mu"), plus any explicit "caller holds x.y" names.
func markReceiverMutexesHeld(pkg *Package, fd *ast.FuncDecl, held map[string]bool) {
	if fd.Doc != nil {
		for _, m := range callerHoldsRe.FindAllStringSubmatch(fd.Doc.Text(), -1) {
			held[strings.TrimSuffix(m[1], ".")] = true
		}
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return
	}
	recv := fd.Recv.List[0].Names[0].Name
	t, ok := pkg.Info.Types[fd.Recv.List[0].Type]
	if !ok {
		return
	}
	n := namedOrPtr(t.Type)
	if n == nil {
		return
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		if isMutexType(st.Field(i).Type()) {
			held[recv+"."+st.Field(i).Name()] = true
		}
	}
}

// freshLocals finds local variables assigned from composite literals in
// this function: freshly built, unshared objects whose fields may be
// initialized without the lock.
func freshLocals(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := as.Rhs[i]
			if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.AND {
				rhs = u.X
			}
			if _, ok := rhs.(*ast.CompositeLit); !ok {
				continue
			}
			if obj := pkg.Info.Defs[id]; obj != nil {
				fresh[obj] = true
			}
		}
		return true
	})
	return fresh
}

// lockWalker checks guarded-field accesses in one function against a
// statement-ordered lock-state walk.
type lockWalker struct {
	prog    *Program
	pkg     *Package
	guarded map[*types.Var]guardInfo
	fresh   map[types.Object]bool
	diags   []Diagnostic
}

// walkStmts processes a statement list, threading the held set through.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		w.walkStmt(s, held)
	}
}

// copyHeld clones the lock state for a branch.
func copyHeld(held map[string]bool) map[string]bool {
	cp := make(map[string]bool, len(held))
	for k, v := range held {
		cp[k] = v
	}
	return cp
}

// terminates reports whether a statement list definitely does not fall
// through (return / panic / goto / os.Exit and friends as last stmt).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE || s.Tok == token.BREAK || s.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			name := exprString(call.Fun)
			return name == "panic" || strings.HasSuffix(name, ".Exit") || strings.HasSuffix(name, ".Fatal") ||
				strings.HasSuffix(name, ".Fatalf")
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}

func (w *lockWalker) walkStmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.walkStmts(s.List, held)
	case *ast.ExprStmt:
		if w.lockEffect(s.X, held, false) {
			return
		}
		w.checkExpr(s.X, held)
	case *ast.DeferStmt:
		if w.lockEffect(s.Call, held, true) {
			return
		}
		w.checkExpr(s.Call, held)
	case *ast.GoStmt:
		// The goroutine runs later: its body starts with nothing held.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, map[string]bool{})
			for _, arg := range s.Call.Args {
				w.checkExpr(arg, held)
			}
			return
		}
		w.checkExpr(s.Call, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.checkExpr(e, held)
		}
	case *ast.IfStmt:
		w.walkStmt(s.Init, held)
		w.checkExpr(s.Cond, held)
		thenHeld := copyHeld(held)
		w.walkStmts(s.Body.List, thenHeld)
		elseHeld := copyHeld(held)
		if s.Else != nil {
			w.walkStmt(s.Else, elseHeld)
		}
		// Merge: a terminating branch does not constrain the fall-through
		// state; otherwise stay optimistic (either branch may have
		// locked) — false positives hurt more than false negatives here.
		thenFalls := !terminates(s.Body.List)
		elseFalls := true
		if s.Else != nil {
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				elseFalls = !terminates(blk.List)
			}
		}
		for k := range held {
			delete(held, k)
		}
		if thenFalls {
			for k, v := range thenHeld {
				if v {
					held[k] = true
				}
			}
		}
		if elseFalls {
			for k, v := range elseHeld {
				if v {
					held[k] = true
				}
			}
		}
	case *ast.ForStmt:
		w.walkStmt(s.Init, held)
		w.checkExpr(s.Cond, held)
		w.walkStmt(s.Post, held)
		body := copyHeld(held)
		w.walkStmts(s.Body.List, body)
		for k, v := range body {
			if v {
				held[k] = true
			}
		}
	case *ast.RangeStmt:
		w.checkExpr(s.X, held)
		body := copyHeld(held)
		w.walkStmts(s.Body.List, body)
		for k, v := range body {
			if v {
				held[k] = true
			}
		}
	case *ast.SwitchStmt:
		w.walkStmt(s.Init, held)
		w.checkExpr(s.Tag, held)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.checkExpr(e, held)
			}
			w.walkStmts(cc.Body, copyHeld(held))
		}
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init, held)
		w.walkStmt(s.Assign, held)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			w.walkStmts(cc.Body, copyHeld(held))
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			branch := copyHeld(held)
			w.walkStmt(cc.Comm, branch)
			w.walkStmts(cc.Body, branch)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e, held)
		}
	case *ast.SendStmt:
		w.checkExpr(s.Chan, held)
		w.checkExpr(s.Value, held)
	case *ast.IncDecStmt:
		w.checkExpr(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, held)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)
	case *ast.BranchStmt, *ast.EmptyStmt:
	default:
		// Conservative default: scan any expressions reachable below.
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.checkExpr(e, held)
				return false
			}
			return true
		})
	}
}

// lockEffect recognizes base.mu.Lock()/Unlock() calls (and RLock /
// RUnlock) and updates held. Returns true when the expression was a
// lock-state call. A deferred Unlock keeps the mutex held to function
// end, so it is a no-op here.
func (w *lockWalker) lockEffect(e ast.Expr, held map[string]bool, deferred bool) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	method := sel.Sel.Name
	if method != "Lock" && method != "Unlock" && method != "RLock" && method != "RUnlock" {
		return false
	}
	if t, ok := w.pkg.Info.Types[sel.X]; !ok || !isMutexType(t.Type) {
		return false
	}
	key := exprString(sel.X)
	switch method {
	case "Lock", "RLock":
		held[key] = true
	case "Unlock", "RUnlock":
		if !deferred {
			held[key] = false
		}
	}
	return true
}

// checkExpr reports guarded-field accesses not covered by the held set.
func (w *lockWalker) checkExpr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Plain literals inherit the current state (sort comparators,
			// snapshot closures under the lock); their bodies are walked
			// with a copy so their own Lock/Unlock stays local.
			w.walkStmts(n.Body.List, copyHeld(held))
			return false
		case *ast.CallExpr:
			if w.lockEffect(n, held, false) {
				return false
			}
		case *ast.SelectorExpr:
			w.checkSelector(n, held)
		}
		return true
	})
}

func (w *lockWalker) checkSelector(sel *ast.SelectorExpr, held map[string]bool) {
	selection, ok := w.pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	fieldVar, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	info, ok := w.guarded[fieldVar]
	if !ok {
		return
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj := w.pkg.Info.Uses[id]; obj != nil && w.fresh[obj] {
			return // freshly built local, not shared yet
		}
	}
	key := exprString(sel.X) + "." + info.mu
	if held[key] {
		return
	}
	w.diags = append(w.diags, w.prog.diag("locks", sel.Sel,
		"%s.%s is guarded by %s but accessed without %s held",
		exprString(sel.X), fieldVar.Name(), info.mu, key))
}
