package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// LocksAnalyzer enforces the "guarded by" annotation convention: a
// struct field whose doc or trailing comment says "guarded by <mu>"
// (where <mu> is a sibling sync.Mutex or sync.RWMutex field) may only be
// accessed while that mutex is held.
//
// v2 runs on the shared substrate: the per-function CFG and the forward
// dataflow engine, with held-lock facts joined by union at merge points
// (optimistic — a fact survives a merge if it held on any falling-
// through path, because false positives hurt more than false negatives
// here). The conventions carry over from v1:
//
//   - base.mu.Lock() / RLock() marks base's mutex held from that point
//     on; base.mu.Unlock() / RUnlock() releases it; a deferred unlock
//     keeps it held to the end of the function.
//   - A branch that terminates (return, panic, os.Exit) contributes
//     nothing to the merge, so "if bad { mu.Unlock(); return }" stays
//     clean.
//   - Functions named *Locked, or documented "caller holds <mu>" /
//     "callers hold <mu>", are assumed to run with the receiver's
//     mutexes held.
//   - A local built from a composite literal in the same function is a
//     fresh, unshared object; accesses through it are exempt.
//   - go-routine literals start with no locks held (they run later);
//     other function literals inherit the lock state at their
//     definition point.
//
// Everything else touching a guarded field is a diagnostic.
var LocksAnalyzer = &Analyzer{
	Name: "locks",
	Doc:  `fields annotated "guarded by mu" are only accessed under that mutex`,
	Run:  runLocks,
}

// guardedRe extracts the mutex name from a field comment.
var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// callerHoldsRe recognizes assumed-locked function docs.
var callerHoldsRe = regexp.MustCompile(`(?i)callers? (?:must )?holds? ([A-Za-z_][A-Za-z0-9_.]*)`)

// guardInfo is one annotated field.
type guardInfo struct {
	mu string // sibling mutex field name
}

func runLocks(cfg *Config, prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		guarded, bad := collectGuarded(prog, pkg)
		diags = append(diags, bad...)
		if len(guarded) == 0 {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				lf := &lockFlow{
					prog: prog, pkg: pkg, guarded: guarded,
					fresh: freshLocals(pkg, fd.Body),
				}
				init := Facts{}
				if assumedLocked(fd) {
					markReceiverMutexesHeld(pkg, fd, init)
				}
				lf.checkBody(BuildCFG(fd.Body), init)
				diags = append(diags, lf.diags...)
			}
		}
	}
	return diags
}

// collectGuarded finds annotated fields in a package, validating that
// the named mutex is a sibling field of a mutex type.
func collectGuarded(prog *Program, pkg *Package) (map[*types.Var]guardInfo, []Diagnostic) {
	guarded := map[*types.Var]guardInfo{}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			mutexes := map[string]bool{}
			for _, fld := range st.Fields.List {
				if t, ok := pkg.Info.Types[fld.Type]; ok && isMutexType(t.Type) {
					for _, name := range fld.Names {
						mutexes[name.Name] = true
					}
				}
			}
			for _, fld := range st.Fields.List {
				text := fieldComment(fld)
				m := guardedRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				mu := m[1]
				if !mutexes[mu] {
					diags = append(diags, prog.diag("locks", fld,
						`"guarded by %s" names no sibling sync.Mutex/RWMutex field`, mu))
					continue
				}
				for _, name := range fld.Names {
					if obj, ok := pkg.Info.Defs[name].(*types.Var); ok {
						guarded[obj] = guardInfo{mu: mu}
					}
				}
			}
			return true
		})
	}
	return guarded, diags
}

func fieldComment(fld *ast.Field) string {
	var b strings.Builder
	if fld.Doc != nil {
		b.WriteString(fld.Doc.Text())
	}
	if fld.Comment != nil {
		b.WriteString(" ")
		b.WriteString(fld.Comment.Text())
	}
	return b.String()
}

func isMutexType(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

// assumedLocked reports whether a function declares itself as running
// under the caller's lock.
func assumedLocked(fd *ast.FuncDecl) bool {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return true
	}
	return fd.Doc != nil && callerHoldsRe.MatchString(fd.Doc.Text())
}

// markReceiverMutexesHeld marks every mutex field of the receiver type
// as held ("recv.mu"), plus any explicit "caller holds x.y" names.
func markReceiverMutexesHeld(pkg *Package, fd *ast.FuncDecl, held Facts) {
	if fd.Doc != nil {
		for _, m := range callerHoldsRe.FindAllStringSubmatch(fd.Doc.Text(), -1) {
			held[strings.TrimSuffix(m[1], ".")] = true
		}
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return
	}
	recv := fd.Recv.List[0].Names[0].Name
	t, ok := pkg.Info.Types[fd.Recv.List[0].Type]
	if !ok {
		return
	}
	n := namedOrPtr(t.Type)
	if n == nil {
		return
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		if isMutexType(st.Field(i).Type()) {
			held[recv+"."+st.Field(i).Name()] = true
		}
	}
}

// freshLocals finds local variables assigned from composite literals in
// this function: freshly built, unshared objects whose fields may be
// initialized without the lock.
func freshLocals(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := as.Rhs[i]
			if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.AND {
				rhs = u.X
			}
			if _, ok := rhs.(*ast.CompositeLit); !ok {
				continue
			}
			if obj := pkg.Info.Defs[id]; obj != nil {
				fresh[obj] = true
			}
		}
		return true
	})
	return fresh
}

// lockFlow checks guarded-field accesses in one function by running the
// held-lock dataflow over its CFG.
type lockFlow struct {
	prog    *Program
	pkg     *Package
	guarded map[*types.Var]guardInfo
	fresh   map[types.Object]bool
	diags   []Diagnostic
}

// checkBody solves the held-lock dataflow over one CFG and replays the
// solution, emitting diagnostics. Function literals met along the way
// are analyzed recursively: go-literals with nothing held, the rest
// with the facts at their definition point.
func (lf *lockFlow) checkBody(cfg *CFG, init Facts) {
	transfer := func(n ast.Node, facts Facts) { lf.node(n, facts, false) }
	in := Forward(cfg, init, transfer)
	Visit(cfg, in, transfer, func(n ast.Node, facts Facts) {
		lf.node(n, facts.Clone(), true)
	})
}

// node applies one CFG node's lock effects to facts and, in check
// mode, reports guarded accesses made without the right mutex held.
func (lf *lockFlow) node(n ast.Node, facts Facts, check bool) {
	switch s := n.(type) {
	case nil:
	case *ast.ExprStmt:
		lf.expr(s.X, facts, check, false)
	case *ast.DeferStmt:
		if lf.lockEffect(s.Call, facts, true) {
			return
		}
		lf.expr(s.Call, facts, check, false)
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			if check {
				lf.checkBody(BuildCFG(lit.Body), Facts{})
			}
			for _, arg := range s.Call.Args {
				lf.expr(arg, facts, check, false)
			}
			return
		}
		lf.expr(s.Call, facts, check, true)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lf.expr(e, facts, check, false)
		}
		for _, e := range s.Lhs {
			lf.expr(e, facts, check, false)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lf.expr(e, facts, check, false)
		}
	case *ast.SendStmt:
		lf.expr(s.Chan, facts, check, false)
		lf.expr(s.Value, facts, check, false)
	case *ast.IncDecStmt:
		lf.expr(s.X, facts, check, false)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lf.expr(v, facts, check, false)
					}
				}
			}
		}
	case ast.Expr:
		lf.expr(s, facts, check, false)
	case ast.Stmt:
		// Conservative default: scan any expressions reachable below.
		ast.Inspect(s, func(m ast.Node) bool {
			if e, ok := m.(ast.Expr); ok {
				lf.expr(e, facts, check, false)
				return false
			}
			return true
		})
	}
}

// expr walks one expression pre-order: lock-effect calls update facts,
// guarded selectors are checked, and nested function literals are
// analyzed with the facts at their definition (spawned: with nothing
// held, since the goroutine runs later).
func (lf *lockFlow) expr(e ast.Expr, facts Facts, check, spawned bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if check {
				init := facts.Clone()
				if spawned {
					init = Facts{}
				}
				lf.checkBody(BuildCFG(n.Body), init)
			}
			return false
		case *ast.CallExpr:
			if lf.lockEffect(n, facts, false) {
				return false
			}
		case *ast.SelectorExpr:
			if check {
				lf.checkSelector(n, facts)
			}
		}
		return true
	})
}

// lockEffect recognizes base.mu.Lock()/Unlock() calls (and RLock /
// RUnlock) and updates the held set. Returns true when the expression
// was a lock-state call. A deferred Unlock keeps the mutex held to
// function end, so it is a no-op here.
func (lf *lockFlow) lockEffect(e ast.Expr, held Facts, deferred bool) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	method := sel.Sel.Name
	if method != "Lock" && method != "Unlock" && method != "RLock" && method != "RUnlock" {
		return false
	}
	if t, ok := lf.pkg.Info.Types[sel.X]; !ok || !isMutexType(t.Type) {
		return false
	}
	key := exprString(sel.X)
	switch method {
	case "Lock", "RLock":
		held[key] = true
	case "Unlock", "RUnlock":
		if !deferred {
			held[key] = false
		}
	}
	return true
}

func (lf *lockFlow) checkSelector(sel *ast.SelectorExpr, held Facts) {
	selection, ok := lf.pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	fieldVar, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	info, ok := lf.guarded[fieldVar]
	if !ok {
		return
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj := lf.pkg.Info.Uses[id]; obj != nil && lf.fresh[obj] {
			return // freshly built local, not shared yet
		}
	}
	key := exprString(sel.X) + "." + info.mu
	if held[key] {
		return
	}
	lf.diags = append(lf.diags, lf.prog.diag("locks", sel.Sel,
		"%s.%s is guarded by %s but accessed without %s held",
		exprString(sel.X), fieldVar.Name(), info.mu, key))
}
