package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// WALRecAnalyzer proves the write-ahead log stays replayable as record
// types are added. For every record-type constant (walRec* in the
// server package):
//
//  1. It must appear as an explicit case in a replay switch — the
//     reducer's "unknown record type" default may never be the only
//     mention, because a record the reducer cannot fold is a record the
//     recovery path refuses, turning a clean restart into data loss.
//  2. It must be passed to a WAL append function (walAppend /
//     walAppendErr) somewhere — a record type nobody writes is either
//     dead protocol or a forgotten write path.
//  3. Its value must be unique — two record types sharing a wire value
//     silently corrupt each other on replay.
var WALRecAnalyzer = &Analyzer{
	Name: "walrec",
	Doc:  "every WAL record type has a replay case, an append site, and a unique value",
	Run:  runWALRec,
}

func runWALRec(cfg *Config, prog *Program) []Diagnostic {
	pkg := prog.Lookup(cfg.WALPkg)
	if pkg == nil {
		return nil
	}
	var diags []Diagnostic

	// Collect the record-type constants.
	recs := map[*types.Const]ast.Node{}
	var names []string
	byName := map[string]*types.Const{}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		if len(name) <= len(cfg.WALRecPrefix) || name[:len(cfg.WALRecPrefix)] != cfg.WALRecPrefix {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		recs[c] = declSite(pkg, name)
		names = append(names, name)
		byName[name] = c
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil
	}

	// 3. Unique wire values.
	byValue := map[string][]string{}
	for _, name := range names {
		v := byName[name].Val().String()
		byValue[v] = append(byValue[v], name)
	}
	for _, name := range names {
		c := byName[name]
		dupes := byValue[c.Val().String()]
		if len(dupes) > 1 && dupes[0] == name { // report once, at the first name
			diags = append(diags, prog.diag("walrec", recs[c],
				"WAL record types %v share wire value %s: replay cannot tell them apart",
				dupes, c.Val().String()))
		}
	}

	// Scan the package for replay cases and append sites.
	appendFns := map[string]bool{}
	for _, fn := range cfg.WALAppendFuncs {
		appendFns[fn] = true
	}
	inCase := map[*types.Const]bool{}
	appended := map[*types.Const]bool{}
	lookupConst := func(e ast.Expr) *types.Const {
		var id *ast.Ident
		switch e := e.(type) {
		case *ast.Ident:
			id = e
		case *ast.SelectorExpr:
			id = e.Sel
		default:
			return nil
		}
		c, _ := pkg.Info.Uses[id].(*types.Const)
		if c == nil {
			return nil
		}
		if _, tracked := recs[c]; !tracked {
			return nil
		}
		return c
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CaseClause:
				for _, e := range n.List {
					if c := lookupConst(e); c != nil {
						inCase[c] = true
					}
				}
			case *ast.CallExpr:
				name := ""
				switch fun := n.Fun.(type) {
				case *ast.Ident:
					name = fun.Name
				case *ast.SelectorExpr:
					name = fun.Sel.Name
				}
				if !appendFns[name] {
					return true
				}
				for _, arg := range n.Args {
					if c := lookupConst(arg); c != nil {
						appended[c] = true
					}
				}
			}
			return true
		})
	}

	for _, name := range names {
		c := byName[name]
		if !inCase[c] {
			diags = append(diags, prog.diag("walrec", recs[c],
				"WAL record type %s has no replay-switch case: recovery would refuse logs containing it", name))
		}
		if !appended[c] {
			diags = append(diags, prog.diag("walrec", recs[c],
				"WAL record type %s is never passed to %v: dead record type or missing write path",
				name, cfg.WALAppendFuncs))
		}
	}
	return diags
}
