package lint

// metrics enforces the registry-hygiene rules that keep the admin
// plane's exposition bounded and greppable:
//
//  1. Every family name passed to Registry.Counter/Gauge/Histogram/Help
//     must be *bounded*: derived only from compile-time constants (a
//     literal, a const, a range over a constant-keyed map literal, a
//     helper that returns only constants). Each possible value must
//     match ^<prefix>[a-z0-9_]+$.
//  2. Label keys must be bounded and lowercase identifiers; label
//     values must be bounded too — no strconv.Itoa(id), no
//     fmt.Sprintf, no string(wireField). Unbounded label values are how
//     a registry becomes a memory leak with a per-phone, per-job, or
//     per-attacker cardinality.
//  3. A family must keep one kind: registering cwc_x as a Counter in
//     one file and a Gauge in another is reported here instead of as a
//     runtime panic on the first scrape.
//  4. Every metric name mentioned in the module's _test.go files and
//     in the configured doc files must be a family the module actually
//     registers, so tests and docs cannot drift from the code.
//
// Boundedness is interprocedural: a parameter is bounded iff every
// call site passes a bounded argument, and a helper's result is
// bounded iff every return statement yields bounded strings — both
// iterated to fixpoint over the call graph (the summary starts
// optimistic and only decays, so it terminates).

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// MetricsAnalyzer reports unbounded metric names/labels, kind
// conflicts, and metric names in tests/docs that do not exist.
var MetricsAnalyzer = &Analyzer{
	Name: "metrics",
	Doc:  "require constant metric families, bounded label values, stable kinds, and doc/test name accuracy",
	Run:  runMetrics,
}

var labelKeyRe = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)

// registryMethods are the Registry entry points and whether their first
// argument is a family name.
var registryMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true, "Help": true}

type metricsCheck struct {
	prog   *Program
	cfg    *Config
	ix     *Index
	famRe  *regexp.Regexp
	bound  *boundedness
	diags  []Diagnostic
	kinds  map[string]string         // family value -> first kind seen
	kindAt map[string]token.Position // family value -> first registration site
	fams   map[string]bool           // all registered family values
}

func runMetrics(cfg *Config, prog *Program) []Diagnostic {
	mc := &metricsCheck{
		prog:   prog,
		cfg:    cfg,
		ix:     prog.Index(),
		famRe:  regexp.MustCompile(`^` + regexp.QuoteMeta(cfg.MetricPrefix) + `[a-z0-9_]+$`),
		kinds:  map[string]string{},
		kindAt: map[string]token.Position{},
		fams:   map[string]bool{},
	}
	mc.bound = newBoundedness(prog, mc.ix)
	for _, f := range mc.ix.All() {
		mc.checkFunc(f)
	}
	mc.checkEvidence()
	sort.Slice(mc.diags, func(i, j int) bool {
		a, b := mc.diags[i].Position, mc.diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return mc.diags
}

// registryCall reports whether call is Registry.Counter/Gauge/... on
// the obs registry type, returning the method name.
func (mc *metricsCheck) registryCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registryMethods[sel.Sel.Name] {
		return "", false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != mc.cfg.ObsPkg {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	return sel.Sel.Name, true
}

func (mc *metricsCheck) checkFunc(f *FuncInfo) {
	ast.Inspect(f.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			return lit == f.Lit
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, ok := mc.registryCall(f.Pkg, call)
		if !ok || len(call.Args) == 0 {
			return true
		}
		mc.checkFamily(f, call, method)
		if method != "Help" {
			mc.checkLabels(f, call)
		}
		return true
	})
}

// checkFamily validates the family-name argument and records the
// family's kind and existence.
func (mc *metricsCheck) checkFamily(f *FuncInfo, call *ast.CallExpr, method string) {
	arg := call.Args[0]
	vals, ok := mc.bound.values(f, arg)
	if !ok {
		mc.diags = append(mc.diags, mc.prog.diag("metrics", arg,
			"metric family registered from a dynamically constructed name (%s); families must come from compile-time constants", exprString(arg)))
		return
	}
	for _, v := range vals {
		if !mc.famRe.MatchString(v) {
			mc.diags = append(mc.diags, mc.prog.diag("metrics", arg,
				"metric family %q does not match ^%s[a-z0-9_]+$", v, mc.cfg.MetricPrefix))
			continue
		}
		mc.fams[v] = true
		if method == "Help" {
			continue
		}
		if prev, seen := mc.kinds[v]; seen && prev != method {
			mc.diags = append(mc.diags, mc.prog.diag("metrics", arg,
				"metric family %q registered as %s here but as %s at %s; a family keeps one kind", v, method, prev, mc.kindAt[v]))
		} else if !seen {
			mc.kinds[v] = method
			mc.kindAt[v] = mc.prog.Fset.Position(arg.Pos())
		}
	}
}

// checkLabels validates the variadic key/value pairs.
func (mc *metricsCheck) checkLabels(f *FuncInfo, call *ast.CallExpr) {
	labels := call.Args[1:]
	for i, arg := range labels {
		vals, ok := mc.bound.values(f, arg)
		if i%2 == 0 { // key
			if !ok {
				mc.diags = append(mc.diags, mc.prog.diag("metrics", arg,
					"label key must be a compile-time constant, got %s", exprString(arg)))
				continue
			}
			for _, v := range vals {
				if !labelKeyRe.MatchString(v) {
					mc.diags = append(mc.diags, mc.prog.diag("metrics", arg,
						"label key %q is not a lowercase identifier", v))
				}
			}
			continue
		}
		if !ok { // value
			mc.diags = append(mc.diags, mc.prog.diag("metrics", arg,
				"label value %s is unbounded; dynamic label cardinality grows the registry without limit", exprString(arg)))
		}
	}
}

// metricTokenRe finds candidate family names in raw test/doc text.
var metricTokenRe = regexp.MustCompile(`[a-z0-9_]+`)

// checkEvidence scans the module's _test.go files and the configured
// doc files for metric-name tokens and requires each to be a registered
// family. A line containing "lint:ignore metrics" (or the line above)
// suppresses, mirroring the in-source directive for files the loader
// does not parse.
func (mc *metricsCheck) checkEvidence() {
	tokenRe := regexp.MustCompile(regexp.QuoteMeta(mc.cfg.MetricPrefix) + `[a-z0-9_]*[a-z0-9]`)
	var paths []string
	for _, pkg := range mc.prog.Pkgs {
		entries, err := os.ReadDir(pkg.Dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), "_test.go") {
				paths = append(paths, filepath.Join(pkg.Dir, e.Name()))
			}
		}
	}
	for _, rel := range mc.cfg.MetricDocFiles {
		paths = append(paths, filepath.Join(mc.prog.Root, rel))
	}
	sort.Strings(paths)
	for _, path := range paths {
		b, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		lines := strings.Split(string(b), "\n")
		for i, line := range lines {
			if strings.Contains(line, "lint:ignore metrics") ||
				(i > 0 && strings.Contains(lines[i-1], "lint:ignore metrics")) {
				continue
			}
			for _, loc := range tokenRe.FindAllStringIndex(line, -1) {
				tok := line[loc[0]:loc[1]]
				// Require a word boundary on the left so e.g.
				// "xcwc_foo" is not treated as a metric name.
				if loc[0] > 0 {
					prev := line[loc[0]-1]
					if prev == '_' || ('a' <= prev && prev <= 'z') || ('A' <= prev && prev <= 'Z') || ('0' <= prev && prev <= '9') {
						continue
					}
				}
				if mc.fams[tok] {
					continue
				}
				// Histogram exposition derives _count/_sum/_bucket
				// series from the family name.
				if base, ok := histogramBase(tok); ok && mc.fams[base] {
					continue
				}
				mc.diags = append(mc.diags, Diagnostic{
					Analyzer: "metrics",
					Position: token.Position{Filename: path, Line: i + 1, Column: loc[0] + 1},
					Message:  fmt.Sprintf("metric %q is referenced here but never registered by the module", tok),
				})
			}
		}
	}
}

// histogramBase strips a Prometheus histogram-derived suffix.
func histogramBase(tok string) (string, bool) {
	for _, suf := range []string{"_count", "_sum", "_bucket"} {
		if base, ok := strings.CutSuffix(tok, suf); ok {
			return base, true
		}
	}
	return "", false
}

// boundedness computes, per expression, the finite set of constant
// string values it can take — or reports it unbounded.
type boundedness struct {
	prog *Program
	ix   *Index

	// paramVals is the fixpoint summary for parameters: the union of
	// every call site's argument values, or nil when unbounded.
	paramVals map[*types.Var][]string
	paramOK   map[*types.Var]bool
	// retOK/retVals summarize functions whose every return yields
	// bounded strings (single string result only).
	retVals map[*FuncInfo][]string
	retOK   map[*FuncInfo]bool
}

const boundedSetCap = 128

func newBoundedness(prog *Program, ix *Index) *boundedness {
	b := &boundedness{
		prog:      prog,
		ix:        ix,
		paramVals: map[*types.Var][]string{},
		paramOK:   map[*types.Var]bool{},
		retVals:   map[*FuncInfo][]string{},
		retOK:     map[*FuncInfo]bool{},
	}
	b.solve()
	return b
}

// params returns the named parameters of a declared function.
func declParams(f *FuncInfo) []*types.Var {
	if f.Obj == nil {
		return nil
	}
	sig, ok := f.Obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Var
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// solve iterates the parameter and return summaries to fixpoint.
// Summaries start optimistic (bounded, empty value set) and only decay
// toward unbounded or larger sets, so the iteration terminates.
func (b *boundedness) solve() {
	all := b.ix.All()
	for _, f := range all {
		for _, p := range declParams(f) {
			b.paramOK[p] = true
		}
		b.retOK[f] = true
	}
	b.ix.Fixpoint(func(f *FuncInfo) bool {
		changed := false
		// Return summary: every string result of every return bounded.
		vals, ok := b.returnValues(f)
		if ok != b.retOK[f] || len(vals) != len(b.retVals[f]) {
			b.retOK[f], b.retVals[f] = ok, vals
			changed = true
		}
		// Parameter summaries from this function's outgoing calls.
		for _, cs := range f.Calls {
			if cs.Callee == nil || cs.Callee.Obj == nil {
				continue
			}
			params := declParams(cs.Callee)
			sig := cs.Callee.Obj.Type().(*types.Signature)
			for ai, arg := range cs.Call.Args {
				pi := ai
				if sig.Variadic() && pi >= len(params)-1 {
					pi = len(params) - 1
				}
				if pi < 0 || pi >= len(params) {
					continue
				}
				p := params[pi]
				if !b.paramOK[p] {
					continue
				}
				avals, aok := b.values(f, arg)
				if !aok {
					b.paramOK[p] = false
					b.paramVals[p] = nil
					changed = true
					continue
				}
				if merged, grew := mergeVals(b.paramVals[p], avals); grew {
					if len(merged) > boundedSetCap {
						b.paramOK[p] = false
						b.paramVals[p] = nil
					} else {
						b.paramVals[p] = merged
					}
					changed = true
				}
			}
		}
		return changed
	})
	// A parameter no module call site ever binds (e.g. an exported
	// function only tests call) keeps its optimistic summary; that is
	// deliberate — flagging it would punish every library entry point.
}

// returnValues computes the possible constant values of f's string
// results.
func (b *boundedness) returnValues(f *FuncInfo) ([]string, bool) {
	var vals []string
	ok := true
	ast.Inspect(f.Body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == f.Lit
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				t := f.Pkg.Info.TypeOf(res)
				if t == nil || !isStringType(t) {
					continue
				}
				rv, rok := b.values(f, res)
				if !rok {
					ok = false
					return false
				}
				vals, _ = mergeVals(vals, rv)
			}
		}
		return true
	})
	if len(vals) > boundedSetCap {
		return nil, false
	}
	return vals, ok
}

func isStringType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// mergeVals unions two sorted-insensitive value sets, reporting growth.
func mergeVals(dst, src []string) ([]string, bool) {
	grew := false
	for _, v := range src {
		found := false
		for _, d := range dst {
			if d == v {
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, v)
			grew = true
		}
	}
	return dst, grew
}

// values computes the possible constant string values of e inside f.
// ok=false means unbounded.
func (b *boundedness) values(f *FuncInfo, e ast.Expr) ([]string, bool) {
	return b.eval(f, e, map[types.Object]bool{})
}

func (b *boundedness) eval(f *FuncInfo, e ast.Expr, visiting map[types.Object]bool) ([]string, bool) {
	pkg := f.Pkg
	if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil {
		if tv.Value.Kind() == constant.Unknown {
			return nil, false
		}
		return []string{stringConstVal(tv)}, true
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return b.eval(f, e.X, visiting)
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			return nil, false
		}
		lv, lok := b.eval(f, e.X, visiting)
		rv, rok := b.eval(f, e.Y, visiting)
		if !lok || !rok {
			return nil, false
		}
		var out []string
		for _, l := range lv {
			for _, r := range rv {
				out = append(out, l+r)
			}
		}
		if len(out) > boundedSetCap {
			return nil, false
		}
		return out, true
	case *ast.CallExpr:
		return b.evalCall(f, e, visiting)
	case *ast.Ident:
		return b.evalIdent(f, e, visiting)
	}
	return nil, false
}

// stringConstVal renders a constant TypeAndValue as its string value.
func stringConstVal(tv types.TypeAndValue) string {
	if tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value)
	}
	return tv.Value.ExactString()
}

// evalCall handles conversions (string(x) is as bounded as x) and
// calls to module helpers whose returns are all constants.
func (b *boundedness) evalCall(f *FuncInfo, call *ast.CallExpr, visiting map[types.Object]bool) ([]string, bool) {
	// Type conversion: T(x) for a string type tracks x.
	if tv, ok := f.Pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if isStringType(tv.Type) {
			return b.eval(f, call.Args[0], visiting)
		}
		return nil, false
	}
	callee := staticCallee(b.ix, f.Pkg, call)
	if callee == nil {
		// strconv.Itoa, fmt.Sprintf, and any other out-of-module call.
		return nil, false
	}
	if b.retOK[callee] {
		return b.retVals[callee], true
	}
	return nil, false
}

// evalIdent resolves constants, parameters (call-site summary), and
// locals (all binding sites bounded, including range over constant
// collections).
func (b *boundedness) evalIdent(f *FuncInfo, id *ast.Ident, visiting map[types.Object]bool) ([]string, bool) {
	obj := f.Pkg.Info.Uses[id]
	if obj == nil {
		obj = f.Pkg.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil, false
	}
	if visiting[v] {
		return nil, true // cycle: contributes nothing new
	}
	visiting[v] = true
	defer delete(visiting, v)

	if vals, isParam := b.paramVals[v]; isParam || b.paramOK[v] {
		if b.paramOK[v] {
			return vals, true
		}
		return nil, false
	}
	// Local variable: every binding must be bounded.
	var vals []string
	bounded := true
	found := false
	ast.Inspect(f.Body, func(n ast.Node) bool {
		if !bounded {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == f.Lit
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || f.Pkg.Info.Defs[lid] != v && f.Pkg.Info.Uses[lid] != v {
					continue
				}
				found = true
				if i >= len(n.Rhs) {
					bounded = false // multi-value assignment from a call
					return false
				}
				rv, rok := b.eval(f, n.Rhs[i], visiting)
				if !rok {
					bounded = false
					return false
				}
				vals, _ = mergeVals(vals, rv)
			}
		case *ast.RangeStmt:
			kid, kok := n.Key.(*ast.Ident)
			vid, vok := n.Value.(*ast.Ident)
			isKey := kok && (f.Pkg.Info.Defs[kid] == v || f.Pkg.Info.Uses[kid] == v)
			isVal := vok && (f.Pkg.Info.Defs[vid] == v || f.Pkg.Info.Uses[vid] == v)
			if !isKey && !isVal {
				return true
			}
			found = true
			rv, rok := b.rangeValues(f, n.X, isKey, visiting)
			if !rok {
				bounded = false
				return false
			}
			vals, _ = mergeVals(vals, rv)
		}
		return true
	})
	if !bounded || !found || len(vals) > boundedSetCap {
		return nil, bounded && found
	}
	return vals, true
}

// rangeValues extracts the constant keys (or values) of the ranged
// collection when it is a map/slice composite literal of constants —
// directly or through a single local indirection.
func (b *boundedness) rangeValues(f *FuncInfo, x ast.Expr, key bool, visiting map[types.Object]bool) ([]string, bool) {
	switch x := x.(type) {
	case *ast.CompositeLit:
		return compositeStrings(f.Pkg, x, key)
	case *ast.Ident:
		// Ranged over a local: find its composite-literal binding.
		obj := f.Pkg.Info.Uses[x]
		if obj == nil {
			return nil, false
		}
		var out []string
		ok := false
		ast.Inspect(f.Body, func(n ast.Node) bool {
			as, isAssign := n.(*ast.AssignStmt)
			if !isAssign {
				return true
			}
			for i, lhs := range as.Lhs {
				lid, isID := lhs.(*ast.Ident)
				if !isID || i >= len(as.Rhs) {
					continue
				}
				if f.Pkg.Info.Defs[lid] != obj && f.Pkg.Info.Uses[lid] != obj {
					continue
				}
				if cl, isCL := as.Rhs[i].(*ast.CompositeLit); isCL {
					out, ok = compositeStrings(f.Pkg, cl, key)
				}
			}
			return true
		})
		return out, ok
	}
	return nil, false
}

// compositeStrings lists the constant string keys (or element values)
// of a composite literal.
func compositeStrings(pkg *Package, cl *ast.CompositeLit, key bool) ([]string, bool) {
	var out []string
	for _, el := range cl.Elts {
		var target ast.Expr
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if key {
				target = kv.Key
			} else {
				target = kv.Value
			}
		} else {
			if key {
				return nil, false // keyless elements have int indices
			}
			target = el
		}
		tv, ok := pkg.Info.Types[target]
		if !ok || tv.Value == nil {
			return nil, false
		}
		out = append(out, stringConstVal(tv))
	}
	if len(out) > boundedSetCap {
		return nil, false
	}
	return out, true
}
