package lint_test

// The fixture harness: every tree under testdata is loaded as a tiny
// module ("fix") and run through one analyzer; the expected diagnostics
// are `want` comments in the fixture sources themselves, golden-file
// style. A want expectation is
//
//	// want `regexp`
//
// trailing the offending line (or on the line below it, for positions
// that land on comments, like malformed lint:ignore directives). Every
// diagnostic must be claimed by a want and every want must be hit.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"cwc/internal/lint"
)

var wantRe = regexp.MustCompile("want `([^`]+)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// collectWants scans every fixture source for want comments.
func collectWants(t *testing.T, root string) []*expectation {
	t.Helper()
	var wants []*expectation
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(b), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp: %v", path, i+1, err)
				}
				wants = append(wants, &expectation{file: path, line: i + 1, re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// claim marks the first unclaimed want matching a diagnostic. A want on
// line N matches diagnostics on N and N-1 (the line-below placement).
func claim(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if w.hit || w.file != d.Position.Filename {
			continue
		}
		if (w.line == d.Position.Line || w.line == d.Position.Line+1) && w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// runFixture loads testdata/<fixture> as module "fix" and checks the
// named analyzers' output against the want comments.
func runFixture(t *testing.T, fixture string, cfg *lint.Config, names ...string) {
	t.Helper()
	root := filepath.Join("testdata", fixture)
	prog, err := lint.LoadModuleAs(root, "fix")
	if err != nil {
		t.Fatal(err)
	}
	var selected []*lint.Analyzer
	for _, a := range lint.Analyzers() {
		for _, n := range names {
			if a.Name == n {
				selected = append(selected, a)
			}
		}
	}
	if len(selected) != len(names) {
		t.Fatalf("unknown analyzer in %v", names)
	}
	diags := prog.Run(cfg, selected)
	wants := collectWants(t, root)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want `%s`", w.file, w.line, w.re)
		}
	}
}

func TestLocksFixture(t *testing.T) {
	runFixture(t, "locks", lint.DefaultConfig(), "locks")
}

func TestFramesFixture(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.ProtocolPkg = "fix/protocol"
	cfg.EndpointPkgs = []string{"fix/server", "fix/worker"}
	runFixture(t, "frames", cfg, "frames")
}

func TestWALRecFixture(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.WALPkg = "fix/server"
	cfg.WALAppendFuncs = []string{"walAppend"}
	runFixture(t, "walrec", cfg, "walrec")
}

func TestObsLogFixture(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.ObsPkg = "fix/obs"
	cfg.DaemonPkgs = []string{"fix/daemon"}
	cfg.PurePkgs = []string{"fix/pure"}
	runFixture(t, "obslog", cfg, "obslog")
}

func TestLeaksFixture(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.LeakPkgs = []string{"fix/server"}
	runFixture(t, "leaks", cfg, "leaks")
}

func TestLockOrderFixture(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.LockOrderPkgs = []string{"fix/server"}
	cfg.BlockingUnderLock = []string{"fix/protocol.Conn.Send"}
	runFixture(t, "lockorder", cfg, "lockorder")
}

func TestCtxFlowFixture(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.CtxPkgs = []string{"fix/daemon"}
	runFixture(t, "ctxflow", cfg, "ctxflow")
}

func TestEpochFixture(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.ProtocolPkg = "fix/protocol"
	cfg.WALPkg = "fix/server"
	cfg.FencedFrameTypes = []string{"TypeResult"}
	cfg.FencedWALTypes = []string{"walEpochRec"}
	runFixture(t, "epoch", cfg, "epoch")
}

func TestMetricsFixture(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.ObsPkg = "fix/obs"
	cfg.MetricDocFiles = []string{"docs/metrics.md"}
	runFixture(t, "metrics", cfg, "metrics")
}
