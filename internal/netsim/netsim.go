// Package netsim models the wireless links between CWC phones and the
// central server: per-technology bandwidth ranges, temporal fading, and the
// iperf-style bandwidth measurement CWC runs before scheduling.
//
// The paper reports per-KB transfer times b_i between 1 and 70 ms/KB
// across its testbed (fast home WiFi down to EDGE), and shows (Figure 4)
// that WiFi bandwidth for a charging — hence stationary — phone is stable
// over a 600 s iperf run. Links here follow an AR(1) fading process around
// a per-phone mean drawn from the radio technology's range.
package netsim

import (
	"fmt"
	"math"
	"math/rand"

	"cwc/internal/device"
)

// Params characterizes a link's bandwidth process.
type Params struct {
	MeanKBps float64 // long-run average bandwidth, KB per second
	CoV      float64 // coefficient of variation of instantaneous samples
	Rho      float64 // AR(1) correlation between successive 1 s samples
}

// Range is the span of per-phone mean bandwidths for a radio technology;
// individual phones draw their long-run mean uniformly from it (location,
// AP distance and carrier plan vary across homes).
type Range struct {
	LoKBps, HiKBps float64
}

// radioModel couples a technology's mean range with its fading behaviour.
type radioModel struct {
	rng Range
	cov float64
	rho float64
}

// Technology models. WiFi for a stationary phone is near-constant
// (the paper's Figure 4); cellular varies more and, per the paper, would
// need more frequent re-measurement.
var radioModels = map[device.Radio]radioModel{
	device.WiFiA:  {Range{800, 1100}, 0.02, 0.5},
	device.WiFiG:  {Range{300, 650}, 0.05, 0.6},
	device.FourG:  {Range{250, 700}, 0.15, 0.7},
	device.ThreeG: {Range{60, 220}, 0.20, 0.7},
	device.EDGE:   {Range{14, 32}, 0.25, 0.6},
}

// RangeFor returns the mean-bandwidth range for a radio technology.
func RangeFor(r device.Radio) (Range, error) {
	m, ok := radioModels[r]
	if !ok {
		return Range{}, fmt.Errorf("netsim: no model for radio %v", r)
	}
	return m.rng, nil
}

// Link is a single phone's wireless path to the server. It is a stateful
// AR(1) fading process; Sample advances time by one second.
type Link struct {
	params Params
	rng    *rand.Rand
	dev    float64 // current normalized deviation from the mean
}

// NewLink builds a link with explicit parameters.
func NewLink(p Params, rng *rand.Rand) *Link {
	return &Link{params: p, rng: rng}
}

// NewLinkForRadio draws a per-phone link for the given technology: the mean
// is sampled uniformly from the technology's range, fading parameters come
// from the technology model.
func NewLinkForRadio(r device.Radio, rng *rand.Rand) (*Link, error) {
	m, ok := radioModels[r]
	if !ok {
		return nil, fmt.Errorf("netsim: no model for radio %v", r)
	}
	mean := m.rng.LoKBps + rng.Float64()*(m.rng.HiKBps-m.rng.LoKBps)
	return NewLink(Params{MeanKBps: mean, CoV: m.cov, Rho: m.rho}, rng), nil
}

// Params returns the link's parameters.
func (l *Link) Params() Params { return l.params }

// MeanKBps returns the link's long-run mean bandwidth.
func (l *Link) MeanKBps() float64 { return l.params.MeanKBps }

// Sample returns the next instantaneous bandwidth sample (KB/s),
// advancing the AR(1) state by one step (nominally one second). Samples
// are clamped to 5% of the mean so a link never fully stalls.
func (l *Link) Sample() float64 {
	p := l.params
	innov := math.Sqrt(1-p.Rho*p.Rho) * l.rng.NormFloat64()
	l.dev = p.Rho*l.dev + innov
	bw := p.MeanKBps * (1 + p.CoV*l.dev)
	if floor := 0.05 * p.MeanKBps; bw < floor {
		bw = floor
	}
	return bw
}

// Series returns n consecutive one-second bandwidth samples, the raw
// material for the paper's Figure 4 (600 s iperf runs).
func (l *Link) Series(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = l.Sample()
	}
	return out
}

// Measure runs an iperf-like bandwidth test of the given duration in
// seconds and returns the measured mean bandwidth in KB/s. CWC takes the
// inverse of this as b_i.
func (l *Link) Measure(seconds int) float64 {
	if seconds <= 0 {
		seconds = 1
	}
	total := 0.0
	for i := 0; i < seconds; i++ {
		total += l.Sample()
	}
	return total / float64(seconds)
}

// MsPerKB converts a bandwidth measurement (KB/s) to the paper's b_i unit:
// milliseconds to transfer one KB.
func MsPerKB(kbps float64) float64 {
	if kbps <= 0 {
		return math.Inf(1)
	}
	return 1000 / kbps
}

// BFor measures the link briefly (10 s, as a pre-scheduling probe) and
// returns b_i in ms/KB.
func (l *Link) BFor() float64 {
	return MsPerKB(l.Measure(10))
}

// TransferMs returns the simulated time in milliseconds to ship sizeKB
// through the link at its current mean bandwidth. Scheduling-scale
// experiments use the mean: the paper establishes that per-phone WiFi
// bandwidth is stable over task timescales.
func (l *Link) TransferMs(sizeKB float64) float64 {
	return sizeKB * MsPerKB(l.params.MeanKBps)
}

// MeasurementDrift quantifies how stale a bandwidth estimate becomes: it
// measures the link (10 s probe), lets ageSeconds of fading pass, measures
// again, and returns the relative difference between the stale and fresh
// estimates. The paper's §3.1 observation — WiFi links for charging phones
// need only infrequent probes while cellular links "will require more
// frequent bandwidth measurements" — falls out of the technologies' CoV.
func MeasurementDrift(l *Link, ageSeconds int) float64 {
	stale := l.Measure(10)
	if ageSeconds > 0 {
		l.Series(ageSeconds) // let the channel fade
	}
	fresh := l.Measure(10)
	if fresh == 0 {
		return 0
	}
	d := (stale - fresh) / fresh
	if d < 0 {
		return -d
	}
	return d
}
