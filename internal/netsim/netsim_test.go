package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cwc/internal/device"
	"cwc/internal/stats"
)

func TestRangeForAllRadios(t *testing.T) {
	for _, r := range []device.Radio{device.WiFiA, device.WiFiG, device.EDGE, device.ThreeG, device.FourG} {
		rg, err := RangeFor(r)
		if err != nil {
			t.Fatalf("RangeFor(%v): %v", r, err)
		}
		if rg.LoKBps <= 0 || rg.HiKBps <= rg.LoKBps {
			t.Errorf("%v range invalid: %+v", r, rg)
		}
	}
	if _, err := RangeFor(device.Radio(99)); err == nil {
		t.Error("unknown radio should error")
	}
}

func TestBRangeMatchesPaper(t *testing.T) {
	// Paper: b_i between 1 and 70 ms/KB across the testbed. The fastest
	// possible mean (WiFi-a high end) and slowest (EDGE low end) must
	// bracket within that span.
	wifi, _ := RangeFor(device.WiFiA)
	edge, _ := RangeFor(device.EDGE)
	fastest := MsPerKB(wifi.HiKBps)
	slowest := MsPerKB(edge.LoKBps)
	if fastest < 0.9 || fastest > 1.3 {
		t.Errorf("fastest b = %v ms/KB, want ~1", fastest)
	}
	if slowest < 60 || slowest > 75 {
		t.Errorf("slowest b = %v ms/KB, want ~70", slowest)
	}
}

func TestLinkSampleStationarity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLink(Params{MeanKBps: 500, CoV: 0.05, Rho: 0.6}, rng)
	series := l.Series(20000)
	m := stats.Mean(series)
	if math.Abs(m-500) > 15 {
		t.Errorf("long-run mean = %v, want ~500", m)
	}
	cov := stats.CoV(series)
	if cov < 0.02 || cov > 0.10 {
		t.Errorf("CoV = %v, want ~0.05", cov)
	}
}

func TestLinkNeverStalls(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLink(Params{MeanKBps: 100, CoV: 2.0, Rho: 0.9}, rng) // absurd CoV
	for i := 0; i < 5000; i++ {
		if bw := l.Sample(); bw < 5 {
			t.Fatalf("bandwidth %v below 5%% floor", bw)
		}
	}
}

func TestWiFiStableCellularNot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	wifi, err := NewLinkForRadio(device.WiFiA, rng)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := NewLinkForRadio(device.ThreeG, rng)
	if err != nil {
		t.Fatal(err)
	}
	wifiCoV := stats.CoV(wifi.Series(600))
	cellCoV := stats.CoV(cell.Series(600))
	if wifiCoV >= cellCoV {
		t.Errorf("WiFi CoV %v should be below cellular CoV %v", wifiCoV, cellCoV)
	}
	if wifiCoV > 0.05 {
		t.Errorf("WiFi 600s CoV = %v, paper shows very low variation", wifiCoV)
	}
}

func TestNewLinkForRadioDrawsWithinRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rg, _ := RangeFor(device.FourG)
	for i := 0; i < 200; i++ {
		l, err := NewLinkForRadio(device.FourG, rng)
		if err != nil {
			t.Fatal(err)
		}
		if l.MeanKBps() < rg.LoKBps || l.MeanKBps() > rg.HiKBps {
			t.Fatalf("mean %v outside range %+v", l.MeanKBps(), rg)
		}
	}
	if _, err := NewLinkForRadio(device.Radio(42), rng); err == nil {
		t.Error("unknown radio should error")
	}
}

func TestMeasureApproximatesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewLink(Params{MeanKBps: 300, CoV: 0.05, Rho: 0.6}, rng)
	got := l.Measure(600)
	if math.Abs(got-300) > 10 {
		t.Errorf("600s measurement = %v, want ~300", got)
	}
	// Zero/negative durations degrade to a single sample, never panic.
	if l.Measure(0) <= 0 {
		t.Error("Measure(0) should still return a sample")
	}
}

func TestMsPerKB(t *testing.T) {
	if got := MsPerKB(1000); got != 1 {
		t.Errorf("MsPerKB(1000) = %v, want 1", got)
	}
	if got := MsPerKB(14.3); math.Abs(got-69.93) > 0.01 {
		t.Errorf("MsPerKB(14.3) = %v, want ~69.93", got)
	}
	if !math.IsInf(MsPerKB(0), 1) {
		t.Error("MsPerKB(0) should be +Inf")
	}
}

func TestTransferMs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewLink(Params{MeanKBps: 500, CoV: 0, Rho: 0}, rng)
	// 1000 KB at 500 KB/s = 2 s = 2000 ms.
	if got := l.TransferMs(1000); math.Abs(got-2000) > 1e-9 {
		t.Errorf("TransferMs = %v, want 2000", got)
	}
}

func TestBForWithinPlausibleRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, radio := range []device.Radio{device.WiFiA, device.WiFiG, device.EDGE, device.ThreeG, device.FourG} {
		l, err := NewLinkForRadio(radio, rng)
		if err != nil {
			t.Fatal(err)
		}
		b := l.BFor()
		if b < 0.5 || b > 80 {
			t.Errorf("%v: b_i = %v ms/KB outside paper's observed [1,70] neighbourhood", radio, b)
		}
	}
}

// Property: samples are always positive and the AR(1) state never produces
// NaN or Inf, for any parameter combination.
func TestSampleAlwaysFiniteProperty(t *testing.T) {
	f := func(seed int64, mean, cov, rho uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{
			MeanKBps: 1 + float64(mean),
			CoV:      float64(cov) / 64,
			Rho:      float64(rho%100) / 100,
		}
		l := NewLink(p, rng)
		for i := 0; i < 200; i++ {
			bw := l.Sample()
			if math.IsNaN(bw) || math.IsInf(bw, 0) || bw <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a := NewLink(Params{MeanKBps: 100, CoV: 0.1, Rho: 0.5}, rand.New(rand.NewSource(11)))
	b := NewLink(Params{MeanKBps: 100, CoV: 0.1, Rho: 0.5}, rand.New(rand.NewSource(11)))
	for i := 0; i < 100; i++ {
		if a.Sample() != b.Sample() {
			t.Fatal("same seed must give same series")
		}
	}
}

func TestMeasurementDriftCellularNeedsFrequentProbes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	meanDrift := func(radio device.Radio) float64 {
		total := 0.0
		const trials = 40
		for k := 0; k < trials; k++ {
			l, err := NewLinkForRadio(radio, rng)
			if err != nil {
				t.Fatal(err)
			}
			total += MeasurementDrift(l, 1800) // half an hour stale
		}
		return total / trials
	}
	wifi := meanDrift(device.WiFiA)
	cell := meanDrift(device.ThreeG)
	// The paper: WiFi probes can be infrequent; cellular cannot.
	if cell <= wifi {
		t.Errorf("cellular drift %.3f not above WiFi drift %.3f", cell, wifi)
	}
	if wifi > 0.05 {
		t.Errorf("WiFi half-hour drift %.3f too large for 'infrequent probes'", wifi)
	}
	if cell < 2*wifi {
		t.Errorf("cellular drift %.3f not markedly above WiFi %.3f", cell, wifi)
	}
}

func TestMeasurementDriftZeroAge(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	l := NewLink(Params{MeanKBps: 500, CoV: 0, Rho: 0}, rng)
	if d := MeasurementDrift(l, 0); d != 0 {
		t.Errorf("drift on a constant link = %v", d)
	}
}

func TestLinkParamsAccessor(t *testing.T) {
	p := Params{MeanKBps: 123, CoV: 0.1, Rho: 0.4}
	l := NewLink(p, rand.New(rand.NewSource(1)))
	if l.Params() != p {
		t.Errorf("Params = %+v", l.Params())
	}
}
