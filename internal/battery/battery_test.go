package battery

import (
	"math"
	"testing"
	"testing/quick"

	"cwc/internal/device"
)

const (
	dt     = 0.25
	sample = 60
	limit  = 4 * 3600.0
)

func sensationPlant() *Plant { return NewPlant(device.HTCSensation.Battery) }

func TestIdealChargeTimeMatchesSpec(t *testing.T) {
	res, err := Simulate(sensationPlant(), Idle{}, dt, sample, limit)
	if err != nil {
		t.Fatal(err)
	}
	gotMin := res.ChargeSeconds / 60
	if math.Abs(gotMin-100) > 1 {
		t.Errorf("ideal charge = %.1f min, want ~100 (paper, HTC Sensation)", gotMin)
	}
	if res.WorkSeconds != 0 {
		t.Errorf("idle run did %v work seconds", res.WorkSeconds)
	}
}

func TestHeavyLoadStretchesChargeBy35Percent(t *testing.T) {
	res, err := Simulate(sensationPlant(), Heavy{}, dt, sample, limit)
	if err != nil {
		t.Fatal(err)
	}
	gotMin := res.ChargeSeconds / 60
	// Paper: 100 -> 135 minutes under continuous CPU load.
	if gotMin < 130 || gotMin > 140 {
		t.Errorf("heavy charge = %.1f min, want ~135", gotMin)
	}
	// Heavy delivers one work-second per second.
	if math.Abs(res.WorkSeconds-res.ChargeSeconds) > 1 {
		t.Errorf("heavy work = %v, elapsed %v", res.WorkSeconds, res.ChargeSeconds)
	}
}

func TestThrottledChargeNearIdeal(t *testing.T) {
	ideal, err := Simulate(sensationPlant(), Idle{}, dt, sample, limit)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sensationPlant(), NewThrottler(), dt, sample, limit)
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.ChargeSeconds / ideal.ChargeSeconds
	// Paper Fig 10: "almost the same as in the ideal case".
	if ratio > 1.06 {
		t.Errorf("throttled/ideal charge time = %.3f, want <= 1.06", ratio)
	}
	if len(res.Adjustments) == 0 {
		t.Error("throttled run recorded no MIMD adjustments")
	}
}

func TestThrottledComputationPenalty(t *testing.T) {
	heavy, err := Simulate(sensationPlant(), Heavy{}, dt, sample, limit)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sensationPlant(), NewThrottler(), dt, sample, limit)
	if err != nil {
		t.Fatal(err)
	}
	// Time to deliver the same work as heavy does per unit time:
	// penalty = elapsed/work - 1. Paper reports ~24.5%.
	penalty := res.ChargeSeconds/res.WorkSeconds - 1
	if penalty < 0.10 || penalty > 0.45 {
		t.Errorf("computation penalty = %.1f%%, want in the neighbourhood of 24.5%%", penalty*100)
	}
	_ = heavy
}

func TestG2UnaffectedByLoad(t *testing.T) {
	// Paper: HTC G2 showed no significant charging effect under load.
	plant := NewPlant(device.HTCG2.Battery)
	idle, err := Simulate(NewPlant(device.HTCG2.Battery), Idle{}, dt, sample, limit)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := Simulate(plant, Heavy{}, dt, sample, limit)
	if err != nil {
		t.Fatal(err)
	}
	ratio := heavy.ChargeSeconds / idle.ChargeSeconds
	if ratio > 1.03 {
		t.Errorf("G2 heavy/idle = %.3f, want ~1 (no significant effect)", ratio)
	}
}

func TestChargingCurveIsLinearWhenIdle(t *testing.T) {
	res, err := Simulate(sensationPlant(), Idle{}, dt, sample, limit)
	if err != nil {
		t.Fatal(err)
	}
	// The paper: residual battery exhibits a predictable linear change.
	// Check percent/second slope is constant across the curve.
	// The final sample is clamped at 100%, so skip the last segment.
	var slopes []float64
	for i := 1; i < len(res.Curve)-1; i++ {
		ds := res.Curve[i].Seconds - res.Curve[i-1].Seconds
		if ds == 0 {
			continue
		}
		slopes = append(slopes, (res.Curve[i].Percent-res.Curve[i-1].Percent)/ds)
	}
	for _, s := range slopes {
		if math.Abs(s-slopes[0]) > 1e-9*math.Abs(slopes[0])+1e-12 {
			t.Fatalf("idle curve not linear: slope %v vs %v", s, slopes[0])
		}
	}
}

func TestCurveMonotonic(t *testing.T) {
	res, err := Simulate(sensationPlant(), NewThrottler(), dt, sample, limit)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Curve); i++ {
		if res.Curve[i].Percent < res.Curve[i-1].Percent {
			t.Fatalf("charge decreased at %v", res.Curve[i].Seconds)
		}
		if res.Curve[i].Seconds <= res.Curve[i-1].Seconds {
			t.Fatalf("time not increasing at index %d", i)
		}
	}
	last := res.Curve[len(res.Curve)-1]
	if last.Percent < 100 {
		t.Errorf("final curve point at %v%%", last.Percent)
	}
}

func TestPlantRateThreshold(t *testing.T) {
	p := NewPlant(device.Battery{FullChargeMin: 100, LoadPenalty: 0.3, SustainThreshold: 0.8})
	base := p.Rate()
	// Push sustained utilization to exactly the threshold: no penalty.
	for i := 0; i < 100000; i++ {
		p.Step(1, 0.8)
	}
	if math.Abs(p.Rate()-base) > 1e-9 {
		t.Errorf("rate at threshold = %v, want %v", p.Rate(), base)
	}
	// Sustained full load: full penalty.
	for i := 0; i < 100000; i++ {
		p.Step(1, 1)
	}
	want := base * 0.7
	if math.Abs(p.Rate()-want) > 1e-6 {
		t.Errorf("rate at full sustained load = %v, want %v", p.Rate(), want)
	}
}

func TestPlantStepClampsUtilAndPercent(t *testing.T) {
	p := NewPlant(device.HTCG2.Battery)
	p.SetPercent(99.999)
	p.Step(3600, 5)  // absurd utilization is clamped
	p.Step(3600, -3) // negative too
	if p.Percent() != 100 {
		t.Errorf("percent = %v, want clamped 100", p.Percent())
	}
	p.SetPercent(-5)
	if p.Percent() != 0 {
		t.Errorf("SetPercent(-5) = %v, want 0", p.Percent())
	}
	p.SetPercent(150)
	if p.Percent() != 100 {
		t.Errorf("SetPercent(150) = %v, want 100", p.Percent())
	}
}

func TestReportedPercentIsTruncated(t *testing.T) {
	p := NewPlant(device.HTCG2.Battery)
	p.SetPercent(41.97)
	if got := p.ReportedPercent(); got != 41 {
		t.Errorf("ReportedPercent = %d, want 41", got)
	}
}

func TestSimulateRejectsBadStep(t *testing.T) {
	if _, err := Simulate(sensationPlant(), Idle{}, 0, sample, limit); err == nil {
		t.Error("dt=0 should error")
	}
}

func TestSimulateTimesOut(t *testing.T) {
	// A plant that cannot finish within the budget.
	p := NewPlant(device.Battery{FullChargeMin: 1000, LoadPenalty: 0, SustainThreshold: 1})
	if _, err := Simulate(p, Idle{}, 1, 60, 10); err == nil {
		t.Error("expected timeout error")
	}
}

func TestThrottlerMIMDFactors(t *testing.T) {
	res, err := Simulate(sensationPlant(), NewThrottler(), dt, sample, limit)
	if err != nil {
		t.Fatal(err)
	}
	raised, lowered := 0, 0
	for i := 1; i < len(res.Adjustments); i++ {
		prev, cur := res.Adjustments[i-1], res.Adjustments[i]
		ratio := cur.NewSleep / prev.NewSleep
		switch {
		case cur.Raised:
			raised++
			if ratio < 1 && cur.NewSleep != cur.Delta*4 {
				t.Errorf("raise shrank sleep: %v -> %v", prev.NewSleep, cur.NewSleep)
			}
		default:
			lowered++
			if ratio > 1 && cur.NewSleep != cur.Delta/64 {
				t.Errorf("decrease grew sleep: %v -> %v", prev.NewSleep, cur.NewSleep)
			}
		}
	}
	if lowered == 0 {
		t.Error("MIMD never decreased sleep — controller not ramping up utilization")
	}
	if raised == 0 {
		t.Error("MIMD never increased sleep — controller never hit the charging limit")
	}
}

func TestThrottlerDeltaMatchesPlant(t *testing.T) {
	plant := sensationPlant()
	th := NewThrottler()
	if _, err := Simulate(plant, th, dt, sample, limit); err != nil {
		t.Fatal(err)
	}
	// δ should be ~60 s (100 min for 100%).
	if th.Delta() < 55 || th.Delta() > 65 {
		t.Errorf("measured delta = %v s, want ~60", th.Delta())
	}
}

// Property: for any device battery spec in the catalog, throttled charging
// never takes longer than heavy charging, and both complete.
func TestThrottledNeverWorseThanHeavyProperty(t *testing.T) {
	for _, spec := range device.Catalog() {
		spec := spec
		t.Run(spec.Model, func(t *testing.T) {
			heavy, err := Simulate(NewPlant(spec.Battery), Heavy{}, dt, sample, limit)
			if err != nil {
				t.Fatal(err)
			}
			throttled, err := Simulate(NewPlant(spec.Battery), NewThrottler(), dt, sample, limit)
			if err != nil {
				t.Fatal(err)
			}
			if throttled.ChargeSeconds > heavy.ChargeSeconds*1.02 {
				t.Errorf("throttled %.0fs worse than heavy %.0fs",
					throttled.ChargeSeconds, heavy.ChargeSeconds)
			}
		})
	}
}

// Property: plant percent is monotone non-decreasing and bounded for any
// utilization sequence.
func TestPlantMonotoneProperty(t *testing.T) {
	f := func(utils []byte) bool {
		p := NewPlant(device.HTCSensation.Battery)
		prev := p.Percent()
		for _, u := range utils {
			p.Step(1, float64(u)/255)
			if p.Percent() < prev || p.Percent() > 100 {
				return false
			}
			prev = p.Percent()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
