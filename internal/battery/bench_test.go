package battery

import (
	"testing"

	"cwc/internal/device"
)

func BenchmarkSimulateThrottledCharge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(NewPlant(device.HTCSensation.Battery),
			NewThrottler(), 0.25, 60, 4*3600); err != nil {
			b.Fatal(err)
		}
	}
}
