// Package battery models smartphone charging and implements CWC's MIMD
// CPU throttler (paper §4.3, Figure 10).
//
// The plant: residual battery percentage grows linearly with time while a
// phone charges (the paper observes a predictable linear profile). A CPU
// under *sustained* heavy load makes the charging controller throttle the
// charge current — thermally averaged utilization above a device-specific
// threshold reduces the charging rate, stretching the HTC Sensation's full
// charge from 100 to 135 minutes. Short bursts below the sustained
// threshold are free, which is exactly why the paper's run-δ/2 / sleep-δ/2
// duty cycling works.
//
// The controller: CWC measures δ, the time for the battery to gain 1% with
// no job running (the target charging parameter). It then alternates
// running the task for δ/2 and sleeping, measuring β, the actual time per
// 1% gain. β ≈ δ means headroom remains: the sleep interval shrinks by
// ×0.75. β > δ means the task is hurting the charge: the sleep interval
// doubles. Multiplicative increase, multiplicative decrease — MIMD.
package battery

import (
	"fmt"
	"math"

	"cwc/internal/device"
)

// Plant simulates one phone's battery while plugged in.
type Plant struct {
	pctPerSec float64 // ideal charging rate, percent per second
	penalty   float64 // rate loss fraction at sustained full load
	threshold float64 // sustained utilization where the penalty starts
	tau       float64 // thermal averaging time constant, seconds

	percent float64 // residual charge, 0..100
	avgUtil float64 // thermally averaged utilization (EWMA)
}

// NewPlant builds a plant from a device battery spec, starting at 0%.
func NewPlant(spec device.Battery) *Plant {
	return &Plant{
		pctPerSec: 100 / (spec.FullChargeMin * 60),
		penalty:   spec.LoadPenalty,
		threshold: spec.SustainThreshold,
		tau:       60,
	}
}

// SetPercent sets the residual charge (clamped to [0,100]).
func (p *Plant) SetPercent(pct float64) {
	p.percent = math.Min(100, math.Max(0, pct))
}

// Percent returns the exact residual charge.
func (p *Plant) Percent() float64 { return p.percent }

// ReportedPercent returns the charge as the OS reports it: a whole
// percentage point. The throttler only sees this value.
func (p *Plant) ReportedPercent() int { return int(p.percent) }

// Full reports whether the battery has reached 100%.
func (p *Plant) Full() bool { return p.percent >= 100 }

// Rate returns the current charging rate in percent/second given the
// present thermal state.
func (p *Plant) Rate() float64 {
	over := p.avgUtil - p.threshold
	if over <= 0 {
		return p.pctPerSec
	}
	frac := over / (1 - p.threshold)
	if frac > 1 {
		frac = 1
	}
	return p.pctPerSec * (1 - p.penalty*frac)
}

// Step advances the plant by dt seconds with the CPU at the given
// utilization (0..1).
func (p *Plant) Step(dt, util float64) {
	if util < 0 {
		util = 0
	} else if util > 1 {
		util = 1
	}
	// EWMA with time constant tau.
	alpha := dt / p.tau
	if alpha > 1 {
		alpha = 1
	}
	p.avgUtil += (util - p.avgUtil) * alpha
	p.percent += p.Rate() * dt
	if p.percent > 100 {
		p.percent = 100
	}
}

// Policy decides the CPU utilization demanded from the phone at each
// simulation step while charging.
type Policy interface {
	// Util returns the utilization in [0,1] for the step beginning at
	// simulated time now (seconds) given the OS-reported battery percent.
	Util(now float64, reportedPct int) float64
}

// Idle is the no-job policy: the phone just charges.
type Idle struct{}

// Util implements Policy.
func (Idle) Util(float64, int) float64 { return 0 }

// Heavy runs a CPU-intensive task continuously — the paper's
// "heavily utilized" scenario.
type Heavy struct{}

// Util implements Policy.
func (Heavy) Util(float64, int) float64 { return 1 }

// Throttler is the MIMD duty-cycle controller.
type Throttler struct {
	// IncreaseFactor multiplies the sleep time when charging falls behind
	// (β > δ); the paper uses 2.
	IncreaseFactor float64
	// DecreaseFactor multiplies the sleep time when charging is on target
	// (β == δ); the paper uses 0.75.
	DecreaseFactor float64
	// Tolerance is the relative slack for deciding β == δ; the OS reports
	// integer percentages, so exact equality is meaningless.
	Tolerance float64

	delta float64 // target charging parameter: seconds per +1%, idle
	run   float64 // run interval, fixed at δ/2
	sleep float64 // current sleep interval (adapted by MIMD)

	state        throttleState
	started      bool
	phaseRunning bool
	phaseLeft    float64
	windowStart  float64 // sim time when the current 1% window began
	lastPct      int
	measureStart float64

	workSeconds float64 // accumulated full-speed CPU seconds delivered
	adjustments []Adjustment
}

type throttleState int

const (
	measuringDelta throttleState = iota
	dutyCycling
)

// Adjustment records one MIMD decision, for the Figure 10 inset.
type Adjustment struct {
	Time     float64 // seconds
	Beta     float64
	Delta    float64
	NewSleep float64
	Raised   bool // true when sleep was increased (β > δ)
}

// NewThrottler returns a throttler with the paper's constants.
func NewThrottler() *Throttler {
	return &Throttler{
		IncreaseFactor: 2,
		DecreaseFactor: 0.75,
		Tolerance:      0.05,
	}
}

// WorkSeconds returns the cumulative CPU-seconds of task execution the
// throttler has allowed.
func (t *Throttler) WorkSeconds() float64 { return t.workSeconds }

// Delta returns the current target charging parameter (0 until measured).
func (t *Throttler) Delta() float64 { return t.delta }

// Adjustments returns the MIMD decision log.
func (t *Throttler) Adjustments() []Adjustment { return t.adjustments }

// Util implements Policy. It runs the δ measurement first (task paused),
// then the adaptive duty cycle.
func (t *Throttler) Util(now float64, reportedPct int) float64 {
	switch t.state {
	case measuringDelta:
		if !t.started {
			// First call: anchor the measurement at the current percent.
			t.started = true
			t.lastPct = reportedPct
			t.measureStart = now
			return 0
		}
		if reportedPct > t.lastPct {
			t.delta = (now - t.measureStart) / float64(reportedPct-t.lastPct)
			t.run = t.delta / 2
			t.sleep = t.delta / 2
			t.state = dutyCycling
			t.phaseRunning = true
			t.phaseLeft = t.run
			t.windowStart = now
			t.lastPct = reportedPct
			return 1
		}
		return 0
	case dutyCycling:
		// Close a 1% window whenever the OS ticks a percent.
		if reportedPct > t.lastPct {
			beta := (now - t.windowStart) / float64(reportedPct-t.lastPct)
			t.adapt(now, beta)
			t.windowStart = now
			t.lastPct = reportedPct
		}
		return t.step()
	}
	return 0
}

// adapt applies the MIMD rule for an observed β.
func (t *Throttler) adapt(now, beta float64) {
	raised := false
	if beta > t.delta*(1+t.Tolerance) {
		t.sleep *= t.IncreaseFactor
		raised = true
	} else {
		t.sleep *= t.DecreaseFactor
	}
	// Keep the duty cycle physical: never sleep less than 1/64 of δ nor
	// more than 4δ.
	if min := t.delta / 64; t.sleep < min {
		t.sleep = min
	}
	if max := t.delta * 4; t.sleep > max {
		t.sleep = max
	}
	t.adjustments = append(t.adjustments, Adjustment{
		Time: now, Beta: beta, Delta: t.delta, NewSleep: t.sleep, Raised: raised,
	})
}

// step advances the run/sleep alternation by one simulation tick and
// returns the utilization for that tick. The tick length is applied by
// the simulation via Tick.
func (t *Throttler) step() float64 {
	if t.phaseRunning {
		return 1
	}
	return 0
}

// Tick informs the throttler that dt seconds elapsed, so it can advance
// its run/sleep phases and account for the work performed at the
// utilization it last returned.
func (t *Throttler) Tick(dt, util float64) {
	t.workSeconds += dt * util
	if t.state != dutyCycling {
		return
	}
	t.phaseLeft -= dt
	for t.phaseLeft <= 0 {
		if t.phaseRunning {
			t.phaseRunning = false
			t.phaseLeft += t.sleep
		} else {
			t.phaseRunning = true
			t.phaseLeft += t.run
		}
	}
}

// ChargePoint is one sample of a charging curve.
type ChargePoint struct {
	Seconds float64
	Percent float64
}

// RunResult summarizes a charging simulation.
type RunResult struct {
	ChargeSeconds float64       // time to reach 100%
	WorkSeconds   float64       // full-speed CPU seconds delivered to the task
	Curve         []ChargePoint // sampled every sampleEvery seconds
	Adjustments   []Adjustment  // non-nil only for throttled runs
}

// Simulate charges the plant from its current level to 100% under the
// given policy, stepping dt seconds, sampling the curve every sampleEvery
// seconds. It returns an error if the battery fails to fill within
// maxSeconds (a stuck controller).
func Simulate(p *Plant, pol Policy, dt, sampleEvery, maxSeconds float64) (*RunResult, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("battery: non-positive step %v", dt)
	}
	res := &RunResult{}
	throttler, _ := pol.(*Throttler)
	now := 0.0
	nextSample := 0.0
	work := 0.0
	for !p.Full() {
		if now > maxSeconds {
			return nil, fmt.Errorf("battery: not full after %.0fs (%.1f%%)", maxSeconds, p.Percent())
		}
		if now >= nextSample {
			res.Curve = append(res.Curve, ChargePoint{Seconds: now, Percent: p.Percent()})
			nextSample += sampleEvery
		}
		util := pol.Util(now, p.ReportedPercent())
		p.Step(dt, util)
		if throttler != nil {
			throttler.Tick(dt, util)
		} else {
			work += dt * util
		}
		now += dt
	}
	res.Curve = append(res.Curve, ChargePoint{Seconds: now, Percent: p.Percent()})
	res.ChargeSeconds = now
	if throttler != nil {
		res.WorkSeconds = throttler.WorkSeconds()
		res.Adjustments = throttler.Adjustments()
	} else {
		res.WorkSeconds = work
	}
	return res, nil
}
