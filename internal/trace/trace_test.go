package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func mkEvent(user int, t string, st State, tx, rx int64) Event {
	ts, err := time.Parse(time.RFC3339, t)
	if err != nil {
		panic(err)
	}
	return Event{Time: ts, User: user, State: st, TXBytes: tx, RXBytes: rx}
}

func TestStateRoundTrip(t *testing.T) {
	for _, s := range []State{Plugged, Unplugged, Shutdown} {
		got, err := ParseState(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v -> %v (%v)", s, got, err)
		}
	}
	if _, err := ParseState("rebooting"); err == nil {
		t.Error("unknown state should error")
	}
	if !strings.HasPrefix(State(9).String(), "state(") {
		t.Error("unknown state String")
	}
}

func TestLogRoundTrip(t *testing.T) {
	events := []Event{
		mkEvent(1, "2012-09-01T22:30:00Z", Plugged, 0, 0),
		mkEvent(1, "2012-09-02T06:45:00Z", Unplugged, 100000, 900000),
		mkEvent(2, "2012-09-01T23:00:00Z", Plugged, 0, 0),
		mkEvent(2, "2012-09-02T07:00:00Z", Shutdown, 5, 10),
	}
	var buf bytes.Buffer
	if err := WriteLog(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ParseLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("parsed %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if !got[i].Time.Equal(events[i].Time) || got[i] != (Event{
			Time: got[i].Time, User: events[i].User, State: events[i].State,
			TXBytes: events[i].TXBytes, RXBytes: events[i].RXBytes,
		}) {
			t.Errorf("event %d mismatch: %+v vs %+v", i, got[i], events[i])
		}
	}
}

func TestParseLogSkipsCommentsAndBlanks(t *testing.T) {
	in := "# profiler log\n\n2012-09-01T22:30:00Z 1 plugged 0 0\n"
	events, err := ParseLog(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("got %d events", len(events))
	}
}

func TestParseLogErrors(t *testing.T) {
	cases := []string{
		"2012-09-01T22:30:00Z 1 plugged 0",      // missing field
		"not-a-time 1 plugged 0 0",              // bad time
		"2012-09-01T22:30:00Z x plugged 0 0",    // bad user
		"2012-09-01T22:30:00Z 1 exploded 0 0",   // bad state
		"2012-09-01T22:30:00Z 1 plugged nope 0", // bad tx
		"2012-09-01T22:30:00Z 1 plugged 0 nada", // bad rx
	}
	for _, in := range cases {
		if _, err := ParseLog(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail to parse", in)
		}
	}
}

func TestIntervalsReconstruction(t *testing.T) {
	events := []Event{
		mkEvent(1, "2012-09-01T22:30:00Z", Plugged, 0, 0),
		mkEvent(1, "2012-09-02T06:30:00Z", Unplugged, 300000, 700000),
		mkEvent(1, "2012-09-02T12:00:00Z", Plugged, 0, 0),
		mkEvent(1, "2012-09-02T12:30:00Z", Shutdown, 10, 20),
		// Dangling open: dropped.
		mkEvent(1, "2012-09-02T22:00:00Z", Plugged, 0, 0),
		// Unplug with no open: dropped.
		mkEvent(2, "2012-09-02T08:00:00Z", Unplugged, 1, 1),
	}
	ivs := Intervals(events)
	if len(ivs) != 2 {
		t.Fatalf("got %d intervals, want 2", len(ivs))
	}
	night := ivs[0]
	if night.User != 1 || !night.Night() {
		t.Errorf("first interval = %+v, want user 1 night", night)
	}
	if night.Duration() != 8*time.Hour {
		t.Errorf("night duration = %v, want 8h", night.Duration())
	}
	if night.TotalBytes() != 1000000 {
		t.Errorf("night bytes = %d", night.TotalBytes())
	}
	day := ivs[1]
	if day.Night() {
		t.Error("noon interval classified as night")
	}
	if day.EndState != Shutdown {
		t.Errorf("day end state = %v", day.EndState)
	}
}

func TestIntervalsHandleUnsortedInput(t *testing.T) {
	events := []Event{
		mkEvent(1, "2012-09-02T06:30:00Z", Unplugged, 0, 0),
		mkEvent(1, "2012-09-01T22:30:00Z", Plugged, 0, 0),
	}
	ivs := Intervals(events)
	if len(ivs) != 1 {
		t.Fatalf("got %d intervals, want 1", len(ivs))
	}
}

func TestNightClassificationBoundaries(t *testing.T) {
	mk := func(hhmm string) Interval {
		start, _ := time.Parse(time.RFC3339, "2012-09-01T"+hhmm+":00Z")
		return Interval{Start: start, End: start.Add(time.Hour)}
	}
	// Paper rule: plugged between 10 p.m. and 5 a.m. is night.
	for _, tc := range []struct {
		hhmm  string
		night bool
	}{
		{"22:00", true}, {"23:59", true}, {"00:00", true},
		{"04:59", true}, {"05:00", false}, {"12:00", false}, {"21:59", false},
	} {
		if got := mk(tc.hhmm).Night(); got != tc.night {
			t.Errorf("Night(%s) = %v, want %v", tc.hhmm, got, tc.night)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	h := DefaultUsers()[0]
	a := Generate(h, 10, rand.New(rand.NewSource(5)))
	b := Generate(h, 10, rand.New(rand.NewSource(5)))
	if len(a) != len(b) {
		t.Fatal("same seed, different event counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestGenerateEventShape(t *testing.T) {
	h := DefaultUsers()[2] // user 3, regular charger
	events := Generate(h, 30, rand.New(rand.NewSource(1)))
	if len(events) == 0 {
		t.Fatal("no events generated")
	}
	plugged, closed := 0, 0
	for _, e := range events {
		switch e.State {
		case Plugged:
			plugged++
			if e.TXBytes != 0 || e.RXBytes != 0 {
				t.Error("plugged event should carry zero byte counters")
			}
		default:
			closed++
			if e.TXBytes < 0 || e.RXBytes < 0 {
				t.Error("negative byte counters")
			}
		}
		if e.User != 3 {
			t.Errorf("event for user %d, want 3", e.User)
		}
	}
	if plugged != closed {
		t.Errorf("%d plugged vs %d closing events", plugged, closed)
	}
}

func TestGenerateStudyMergesSorted(t *testing.T) {
	events := GenerateStudy(DefaultUsers(), 7, rand.New(rand.NewSource(2)))
	for i := 1; i < len(events); i++ {
		if events[i].Time.Before(events[i-1].Time) {
			t.Fatalf("events out of order at %d", i)
		}
	}
	users := map[int]bool{}
	for _, e := range events {
		users[e.User] = true
	}
	if len(users) != 15 {
		t.Errorf("study covers %d users, want 15", len(users))
	}
}

func TestDefaultUsersCount(t *testing.T) {
	users := DefaultUsers()
	if len(users) != 15 {
		t.Fatalf("%d users, want 15 (as in the paper)", len(users))
	}
	for i, u := range users {
		if u.User != i+1 {
			t.Errorf("user id %d at index %d", u.User, i)
		}
	}
}
