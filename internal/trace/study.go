package trace

import (
	"sort"
	"time"

	"cwc/internal/stats"
)

// IdleThresholdBytes is the paper's idle cutoff: a night charging interval
// with less than 2 MB of total transfer counts as idle, i.e. usable for
// CWC computation.
const IdleThresholdBytes = 2 * 1000 * 1000

// Study holds the derived statistics of a profiling campaign — everything
// needed to regenerate the paper's Figures 2 and 3.
type Study struct {
	Intervals []Interval
}

// NewStudy wraps reconstructed intervals for analysis.
func NewStudy(intervals []Interval) *Study {
	return &Study{Intervals: intervals}
}

// Split returns the night and day interval subsets (paper's Figure 2a
// classification).
func (s *Study) Split() (night, day []Interval) {
	for _, iv := range s.Intervals {
		if iv.Night() {
			night = append(night, iv)
		} else {
			day = append(day, iv)
		}
	}
	return night, day
}

// DurationCDFs returns empirical CDFs of charging-interval durations in
// hours, for night and day intervals (Figure 2a).
func (s *Study) DurationCDFs() (night, day *stats.CDF) {
	n, d := s.Split()
	toHours := func(ivs []Interval) []float64 {
		out := make([]float64, len(ivs))
		for i, iv := range ivs {
			out[i] = iv.Duration().Hours()
		}
		return out
	}
	return stats.NewCDF(toHours(n)), stats.NewCDF(toHours(d))
}

// NightTransferCDF returns the CDF of total MB transferred during night
// charging intervals (Figure 2b).
func (s *Study) NightTransferCDF() *stats.CDF {
	night, _ := s.Split()
	mb := make([]float64, len(night))
	for i, iv := range night {
		mb[i] = float64(iv.TotalBytes()) / 1e6
	}
	return stats.NewCDF(mb)
}

// UserIdle summarizes one user's usable night charging (Figure 2c).
type UserIdle struct {
	User      int
	MeanHours float64
	StdHours  float64
	Nights    int
}

// NightIdlePerUser returns, per user, the mean and standard deviation of
// idle night charging hours. A night interval contributes its duration
// when its transfer is below IdleThresholdBytes, and zero otherwise
// (the phone was busy, so CWC would not use it).
func (s *Study) NightIdlePerUser() []UserIdle {
	night, _ := s.Split()
	perUser := map[int][]float64{}
	for _, iv := range night {
		h := 0.0
		if iv.TotalBytes() < IdleThresholdBytes {
			h = iv.Duration().Hours()
		}
		perUser[iv.User] = append(perUser[iv.User], h)
	}
	users := make([]int, 0, len(perUser))
	for u := range perUser {
		users = append(users, u)
	}
	sort.Ints(users)
	out := make([]UserIdle, 0, len(users))
	for _, u := range users {
		hs := perUser[u]
		out = append(out, UserIdle{
			User:      u,
			MeanHours: stats.Mean(hs),
			StdHours:  stats.StdDev(hs),
			Nights:    len(hs),
		})
	}
	return out
}

// UnplugHistogram counts unplug (failure) events by hour of day, over all
// users or a single user (user == 0 means all). Shutdown events count as
// failures too: either way the phone leaves the pool.
func (s *Study) UnplugHistogram(user int) stats.HourHistogram {
	var h stats.HourHistogram
	for _, iv := range s.Intervals {
		if user != 0 && iv.User != user {
			continue
		}
		h.Add(iv.End.Hour())
	}
	return h
}

// FailureCDFByHour returns the cumulative fraction of unplug events by
// hour, starting at midnight (Figure 3a). Element [h] is the fraction of
// failures occurring in hours [0, h].
func (s *Study) FailureCDFByHour() [24]float64 {
	h := s.UnplugHistogram(0)
	return h.CumulativeByHour(0)
}

// ShutdownFraction returns the fraction of interval-closing events that
// are shutdowns (the paper reports only 3% of logs in the shutdown state).
func (s *Study) ShutdownFraction() float64 {
	if len(s.Intervals) == 0 {
		return 0
	}
	n := 0
	for _, iv := range s.Intervals {
		if iv.EndState == Shutdown {
			n++
		}
	}
	return float64(n) / float64(len(s.Intervals))
}

// Overlap computes, for each minute of the night window [22:00, 08:00),
// how many users are plugged in and idle, averaged over study days — the
// paper's speculation that long idle windows overlap across users. The
// returned slice has one entry per minute of the window.
func (s *Study) Overlap() []float64 {
	const windowMin = 10 * 60 // 22:00 .. 08:00
	counts := make([]float64, windowMin)
	days := map[string]bool{}
	for _, iv := range s.Intervals {
		if !iv.Night() || iv.TotalBytes() >= IdleThresholdBytes {
			continue
		}
		days[iv.Start.Format("2006-01-02")] = true
		// Walk the interval in minutes, mapping to window offsets.
		for t := iv.Start; t.Before(iv.End); t = t.Add(time.Minute) {
			h, m := t.Hour(), t.Minute()
			var off int
			switch {
			case h >= 22:
				off = (h-22)*60 + m
			case h < 8:
				off = (h+2)*60 + m
			default:
				continue
			}
			counts[off]++
		}
	}
	if len(days) == 0 {
		return counts
	}
	for i := range counts {
		counts[i] /= float64(len(days))
	}
	return counts
}
