package trace

import (
	"math/rand"
	"sort"
	"time"

	"cwc/internal/stats"
)

// Habit is a per-user charging-behaviour model. All hours are local clock
// hours (fractional); durations are in minutes; transfers in MB.
type Habit struct {
	User int

	// Night charging: the user plugs in around NightPlugHour in the
	// evening (values >= 24 wrap past midnight) and unplugs around
	// MorningUnplugHour, on NightPlugProb of nights.
	NightPlugHour     stats.Dist
	MorningUnplugHour stats.Dist
	NightPlugProb     float64

	// Day charging: short opportunistic top-ups.
	DayIntervalsPerDay stats.Dist // how many per day (rounded, >= 0)
	DayIntervalMin     stats.Dist // duration of each, minutes

	// Background transfer while charging at night (email, push
	// notifications), MB per interval; day charges accrue at DayMBPerHour.
	NightTransferMB stats.Dist
	DayMBPerHour    stats.Dist

	// ShutdownProb is the chance a given charging interval ends with the
	// phone being powered off rather than unplugged.
	ShutdownProb float64
}

// DefaultUsers returns the 15-user population used to reproduce the
// paper's study. Users 3, 4 and 8 are the "regular chargers" with 8–9 h
// nights and low variability; the rest are average users.
func DefaultUsers() []Habit {
	users := make([]Habit, 0, 15)
	for u := 1; u <= 15; u++ {
		h := Habit{
			User:               u,
			NightPlugHour:      stats.TruncNormal{Mean: 23.0, Sigma: 1.0, Lo: 20.5, Hi: 27.5},
			MorningUnplugHour:  stats.TruncNormal{Mean: 6.8, Sigma: 1.0, Lo: 4.5, Hi: 10.5},
			NightPlugProb:      0.82,
			DayIntervalsPerDay: stats.TruncNormal{Mean: 2.4, Sigma: 1.2, Lo: 0, Hi: 6},
			DayIntervalMin:     stats.Exponential{Mean: 43}, // median ≈ 30 min
			NightTransferMB:    stats.LogNormalFromMedian(0.7, 1.25),
			DayMBPerHour:       stats.LogNormalFromMedian(3, 0.8),
			ShutdownProb:       0.03,
		}
		switch u {
		case 3, 4, 8:
			// Regular chargers: long, consistent nights and little
			// background traffic, so almost every night is usable.
			h.NightPlugHour = stats.TruncNormal{Mean: 22.2, Sigma: 0.3, Lo: 21.5, Hi: 23.5}
			h.MorningUnplugHour = stats.TruncNormal{Mean: 7.1, Sigma: 0.3, Lo: 6.2, Hi: 8.2}
			h.NightPlugProb = 0.97
			h.NightTransferMB = stats.LogNormalFromMedian(0.35, 0.85)
		case 6, 11:
			// Lighter chargers: later plug-in, earlier unplug.
			h.NightPlugHour = stats.TruncNormal{Mean: 24.3, Sigma: 1.1, Lo: 22.0, Hi: 28.0}
			h.MorningUnplugHour = stats.TruncNormal{Mean: 6.3, Sigma: 1.0, Lo: 4.5, Hi: 9.0}
			h.NightPlugProb = 0.74
		}
		users = append(users, h)
	}
	return users
}

// StudyBase is the first day of the generated study period.
var StudyBase = time.Date(2012, time.September, 1, 0, 0, 0, 0, time.UTC)

// Generate produces a user's profiler log over the given number of days.
// Events come out in time order.
func Generate(h Habit, days int, rng *rand.Rand) []Event {
	var events []Event
	day := func(d int) time.Time { return StudyBase.AddDate(0, 0, d) }

	addInterval := func(start time.Time, dur time.Duration, mb float64) {
		if dur <= 0 {
			return
		}
		endState := Unplugged
		if stats.Bernoulli(rng, h.ShutdownProb) {
			endState = Shutdown
		}
		bytes := int64(mb * 1e6)
		// Split roughly 30/70 between TX and RX, like background sync.
		tx := bytes * 3 / 10
		events = append(events,
			Event{Time: start, User: h.User, State: Plugged},
			Event{Time: start.Add(dur), User: h.User, State: endState,
				TXBytes: tx, RXBytes: bytes - tx},
		)
	}

	for d := 0; d < days; d++ {
		// Daytime top-ups between ~9:00 and ~20:00.
		n := int(h.DayIntervalsPerDay.Sample(rng) + 0.5)
		for k := 0; k < n; k++ {
			startHour := 9 + rng.Float64()*11
			durMin := h.DayIntervalMin.Sample(rng)
			if durMin < 2 {
				durMin = 2
			}
			start := day(d).Add(time.Duration(startHour * float64(time.Hour)))
			dur := time.Duration(durMin * float64(time.Minute))
			mb := h.DayMBPerHour.Sample(rng) * dur.Hours()
			addInterval(start, dur, mb)
		}
		// Overnight charge.
		if !stats.Bernoulli(rng, h.NightPlugProb) {
			continue
		}
		plugHour := h.NightPlugHour.Sample(rng)       // may be >= 24 (past midnight)
		unplugHour := h.MorningUnplugHour.Sample(rng) // next morning
		start := day(d).Add(time.Duration(plugHour * float64(time.Hour)))
		end := day(d + 1).Add(time.Duration(unplugHour * float64(time.Hour)))
		addInterval(start, end.Sub(start), h.NightTransferMB.Sample(rng))
	}
	return events
}

// GenerateStudy runs Generate for every habit and merges the logs in time
// order, as the central profiling server would record them.
func GenerateStudy(habits []Habit, days int, rng *rand.Rand) []Event {
	var all []Event
	for _, h := range habits {
		all = append(all, Generate(h, days, rng)...)
	}
	sortEvents(all)
	return all
}

func sortEvents(events []Event) {
	// Stable order: time, then user, so merged logs are deterministic.
	sort.Slice(events, func(i, j int) bool {
		if !events[i].Time.Equal(events[j].Time) {
			return events[i].Time.Before(events[j].Time)
		}
		return events[i].User < events[j].User
	})
}
