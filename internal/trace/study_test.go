package trace

import (
	"math/rand"
	"testing"
)

// studyFixture generates the full 15-user, 8-week study once per test run.
func studyFixture(t *testing.T) *Study {
	t.Helper()
	events := GenerateStudy(DefaultUsers(), 56, rand.New(rand.NewSource(2012)))
	return NewStudy(Intervals(events))
}

func TestFig2aMedianIntervalDurations(t *testing.T) {
	s := studyFixture(t)
	nightCDF, dayCDF := s.DurationCDFs()
	nightMed, err := nightCDF.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	dayMed, err := dayCDF.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: median ~7 h at night, ~30 min during the day.
	if nightMed < 6 || nightMed > 8.5 {
		t.Errorf("median night interval = %.2f h, want ~7", nightMed)
	}
	if dayMed < 0.3 || dayMed > 0.8 {
		t.Errorf("median day interval = %.2f h, want ~0.5", dayMed)
	}
}

func TestFig2aFewerNightIntervals(t *testing.T) {
	s := studyFixture(t)
	night, day := s.Split()
	if len(night) >= len(day) {
		t.Errorf("night intervals (%d) should be fewer than day (%d)", len(night), len(day))
	}
	if len(night) == 0 || len(day) == 0 {
		t.Fatal("study produced empty interval classes")
	}
}

func TestFig2bNightTransferMostlyUnder2MB(t *testing.T) {
	s := studyFixture(t)
	cdf := s.NightTransferCDF()
	frac := cdf.At(2.0)
	// Paper: total network activity < ~2 MB for 80% of night intervals.
	if frac < 0.70 || frac > 0.92 {
		t.Errorf("P(night transfer <= 2MB) = %.2f, want ~0.80", frac)
	}
}

func TestFig2cIdleHoursPerUser(t *testing.T) {
	s := studyFixture(t)
	idle := s.NightIdlePerUser()
	if len(idle) != 15 {
		t.Fatalf("idle stats for %d users, want 15", len(idle))
	}
	var regulars, others []UserIdle
	for _, u := range idle {
		// Paper: on average at least 3 hours of idle charging at night.
		if u.MeanHours < 3 {
			t.Errorf("user %d mean idle = %.2f h, want >= 3", u.User, u.MeanHours)
		}
		switch u.User {
		case 3, 4, 8:
			regulars = append(regulars, u)
		default:
			others = append(others, u)
		}
	}
	// Users 3, 4, 8: highest idle durations (8-9 h) with low variability.
	for _, r := range regulars {
		if r.MeanHours < 7 {
			t.Errorf("regular user %d mean idle = %.2f h, want 8-9", r.User, r.MeanHours)
		}
		meanOtherStd := 0.0
		for _, o := range others {
			meanOtherStd += o.StdHours
		}
		meanOtherStd /= float64(len(others))
		if r.StdHours >= meanOtherStd {
			t.Errorf("regular user %d std %.2f not below average other std %.2f",
				r.User, r.StdHours, meanOtherStd)
		}
	}
}

func TestFig3aFailuresRareBeforeEight(t *testing.T) {
	s := studyFixture(t)
	cdf := s.FailureCDFByHour()
	// Paper: likelihood of failure between 12 AM and 8 AM is < 30%.
	if cdf[7] >= 0.30 {
		t.Errorf("failure CDF through 8 AM = %.2f, want < 0.30", cdf[7])
	}
	if cdf[23] < 0.999 {
		t.Errorf("failure CDF must end at 1, got %v", cdf[23])
	}
}

func TestFig3bPerUserUnplugShape(t *testing.T) {
	s := studyFixture(t)
	for _, user := range []int{3, 7} {
		h := s.UnplugHistogram(user)
		if h.Total() == 0 {
			t.Fatalf("user %d has no unplug events", user)
		}
		fr := h.Fractions()
		// Very low failure likelihood 12 AM - 6 AM...
		early := fr[0] + fr[1] + fr[2] + fr[3] + fr[4] + fr[5]
		// ...rising in the morning when people start using their phones.
		morning := fr[6] + fr[7] + fr[8] + fr[9]
		if early >= morning {
			t.Errorf("user %d: early-night failures %.2f not below morning %.2f",
				user, early, morning)
		}
	}
}

func TestShutdownFractionAround3Percent(t *testing.T) {
	s := studyFixture(t)
	frac := s.ShutdownFraction()
	if frac < 0.01 || frac > 0.06 {
		t.Errorf("shutdown fraction = %.3f, want ~0.03 (paper)", frac)
	}
}

func TestShutdownFractionEmptyStudy(t *testing.T) {
	if frac := NewStudy(nil).ShutdownFraction(); frac != 0 {
		t.Errorf("empty study shutdown fraction = %v", frac)
	}
}

func TestOverlapSeveralUsersAtThreeAM(t *testing.T) {
	s := studyFixture(t)
	overlap := s.Overlap()
	if len(overlap) != 600 {
		t.Fatalf("overlap window length = %d minutes", len(overlap))
	}
	// 3 AM is minute (3+2)*60 into the 22:00-based window.
	at3am := overlap[(3+2)*60]
	// With 15 users mostly charging overnight, the overlap should offer a
	// sizeable cluster — the paper speculates "several operational hours
	// for computing".
	if at3am < 8 {
		t.Errorf("average phones idle+plugged at 3 AM = %.1f, want >= 8 of 15", at3am)
	}
	// And far fewer at the window edges.
	if overlap[0] >= at3am {
		t.Errorf("overlap at 22:00 (%.1f) should be below 3 AM (%.1f)", overlap[0], at3am)
	}
}

func TestOverlapEmptyStudy(t *testing.T) {
	overlap := NewStudy(nil).Overlap()
	for _, v := range overlap {
		if v != 0 {
			t.Fatal("empty study should have zero overlap")
		}
	}
}
