package trace

import (
	"math/rand"
	"testing"
)

func BenchmarkGenerateStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		events := GenerateStudy(DefaultUsers(), 56, rng)
		if len(Intervals(events)) == 0 {
			b.Fatal("no intervals")
		}
	}
}
