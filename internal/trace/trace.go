// Package trace reproduces CWC's charging-behaviour feasibility study
// (paper §3.1, Figures 2 and 3).
//
// The paper instruments 15 volunteers' phones with a profiler app that
// logs three states — plugged, unplugged, shutdown — with timestamps, plus
// the bytes transferred over all wireless interfaces during each plugged
// interval. This package defines that log format, a parser for it, the
// interval statistics the paper computes from it, and (since the original
// volunteers' logs are private) a behaviour-model generator that produces
// logs with the same distributional properties the paper reports: ~7 h
// median night charging intervals, ~30 min median day intervals, <2 MB of
// background transfer on 80% of night charges, ~3% shutdown entries, and
// <30% of unplug events between midnight and 8 AM.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// State is the phone state recorded by the profiler app.
type State int

// Profiler states.
const (
	Plugged State = iota
	Unplugged
	Shutdown
)

var stateNames = map[State]string{
	Plugged:   "plugged",
	Unplugged: "unplugged",
	Shutdown:  "shutdown",
}

func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ParseState converts a state name back to a State.
func ParseState(s string) (State, error) {
	for st, name := range stateNames {
		if name == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown state %q", s)
}

// Event is one profiler log entry: a state transition on a user's phone.
// TXBytes/RXBytes are the cumulative bytes transferred during the plugged
// interval that this event closes (zero on Plugged events — the counter
// resets when the phone newly enters the plugged state).
type Event struct {
	Time    time.Time
	User    int // 1-based user id
	State   State
	TXBytes int64
	RXBytes int64
}

// Interval is a reconstructed charging interval: the span between a
// Plugged event and the next Unplugged/Shutdown event for the same user.
type Interval struct {
	User       int
	Start, End time.Time
	EndState   State // Unplugged or Shutdown
	TXBytes    int64
	RXBytes    int64
}

// Duration returns the interval length.
func (iv Interval) Duration() time.Duration { return iv.End.Sub(iv.Start) }

// TotalBytes returns transmit + receive bytes during the interval.
func (iv Interval) TotalBytes() int64 { return iv.TXBytes + iv.RXBytes }

// Night reports whether the interval is a night interval under the paper's
// rule: the plugged state occurs between 10 p.m. and 5 a.m. local time.
func (iv Interval) Night() bool {
	h := iv.Start.Hour()
	return h >= 22 || h < 5
}

// WriteLog writes events in the profiler's line format:
//
//	<RFC3339 time> <user> <state> <tx_bytes> <rx_bytes>
func WriteLog(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if _, err := fmt.Fprintf(bw, "%s %d %s %d %d\n",
			e.Time.Format(time.RFC3339), e.User, e.State, e.TXBytes, e.RXBytes); err != nil {
			return fmt.Errorf("trace: writing log: %w", err)
		}
	}
	return bw.Flush()
}

// ParseLog reads events from the profiler line format. Blank lines and
// lines starting with '#' are ignored.
func ParseLog(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 5 {
			return nil, fmt.Errorf("trace: line %d: want 5 fields, got %d", lineNo, len(fields))
		}
		ts, err := time.Parse(time.RFC3339, fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad timestamp: %w", lineNo, err)
		}
		user, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad user: %w", lineNo, err)
		}
		st, err := ParseState(fields[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		tx, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad tx bytes: %w", lineNo, err)
		}
		rx, err := strconv.ParseInt(fields[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad rx bytes: %w", lineNo, err)
		}
		events = append(events, Event{Time: ts, User: user, State: st, TXBytes: tx, RXBytes: rx})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading log: %w", err)
	}
	return events, nil
}

// Intervals reconstructs charging intervals from a user-mixed event
// stream. Events are processed per user in time order; a charging interval
// opens at a Plugged event and closes at the next Unplugged or Shutdown
// event. Dangling opens (trace ends while plugged) are dropped, mirroring
// the paper's server-side parser which only scores completed intervals.
func Intervals(events []Event) []Interval {
	byUser := map[int][]Event{}
	for _, e := range events {
		byUser[e.User] = append(byUser[e.User], e)
	}
	var out []Interval
	users := make([]int, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Ints(users)
	for _, u := range users {
		evs := byUser[u]
		sort.Slice(evs, func(i, j int) bool { return evs[i].Time.Before(evs[j].Time) })
		var open *Event
		for i := range evs {
			e := evs[i]
			switch e.State {
			case Plugged:
				open = &evs[i]
			case Unplugged, Shutdown:
				if open != nil {
					out = append(out, Interval{
						User:     u,
						Start:    open.Time,
						End:      e.Time,
						EndState: e.State,
						TXBytes:  e.TXBytes,
						RXBytes:  e.RXBytes,
					})
					open = nil
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}
