package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseLog checks the profiler-log parser never panics and that every
// successfully parsed log re-serializes and re-parses to the same events.
func FuzzParseLog(f *testing.F) {
	f.Add("2012-09-01T22:30:00Z 1 plugged 0 0\n2012-09-02T06:45:00Z 1 unplugged 10 20\n")
	f.Add("# comment\n\n2012-09-01T22:30:00Z 3 shutdown 5 5\n")
	f.Add("garbage line\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		events, err := ParseLog(strings.NewReader(input))
		if err != nil {
			return // malformed input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteLog(&buf, events); err != nil {
			t.Fatalf("re-serializing parsed events: %v", err)
		}
		again, err := ParseLog(&buf)
		if err != nil {
			t.Fatalf("re-parsing serialized events: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(events), len(again))
		}
		for i := range events {
			if !events[i].Time.Equal(again[i].Time) ||
				events[i].User != again[i].User ||
				events[i].State != again[i].State ||
				events[i].TXBytes != again[i].TXBytes ||
				events[i].RXBytes != again[i].RXBytes {
				t.Fatalf("event %d changed in round trip", i)
			}
		}
	})
}
