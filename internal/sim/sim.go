// Package sim implements a small deterministic discrete-event simulation
// kernel. The CWC experiments (file-dispatch timelines, charging curves,
// scheduler runs with failures) are driven on simulated clocks so that an
// "overnight" of phone activity replays in microseconds of wall time.
//
// The kernel is single-threaded by design: events fire in strictly
// non-decreasing time order, ties broken by scheduling order, which keeps
// every experiment reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a callback scheduled to fire at a simulated time.
type Event struct {
	when     time.Duration
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 when popped
}

// Cancel prevents a pending event from firing. Canceling an event that has
// already fired (or was already canceled) is a no-op.
func (e *Event) Cancel() {
	e.canceled = true
}

// When returns the simulated time at which the event is scheduled.
func (e *Event) When() time.Duration { return e.when }

// eventQueue is a min-heap ordered by (when, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now    time.Duration
	queue  eventQueue
	seq    uint64
	fired  uint64
	maxEvt uint64 // safety valve against runaway simulations; 0 = unlimited
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// SetEventLimit installs a safety limit on the total number of events the
// engine will fire; Run panics past the limit. Zero means unlimited.
func (e *Engine) SetEventLimit(n uint64) { e.maxEvt = n }

// Now returns the current simulated time.
func (e *Engine) Now() time.Duration { return e.now }

// Fired returns the number of events fired so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting in the queue, including
// canceled events that have not been discarded yet.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at the absolute simulated time t. Scheduling in
// the past (t < Now) panics: it is always a bug in the caller.
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{when: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current simulated time. Negative
// durations panic.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Step fires the next pending event, advancing the clock to its time.
// It reports whether an event was fired (false when the queue is empty).
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.when
		e.fired++
		if e.maxEvt > 0 && e.fired > e.maxEvt {
			panic(fmt.Sprintf("sim: event limit %d exceeded", e.maxEvt))
		}
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time <= deadline; the clock is left at the
// later of its current value and the deadline.
func (e *Engine) RunUntil(deadline time.Duration) {
	for {
		next, ok := e.peek()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// peek returns the time of the next non-canceled event.
func (e *Engine) peek() (time.Duration, bool) {
	for len(e.queue) > 0 {
		if e.queue[0].canceled {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0].when, true
	}
	return 0, false
}

// NextEventTime returns the time of the next pending event, if any.
func (e *Engine) NextEventTime() (time.Duration, bool) { return e.peek() }

// Ticker invokes fn every period until canceled, starting one period from
// the time of creation. fn receives the fire time.
type Ticker struct {
	engine *Engine
	period time.Duration
	fn     func(time.Duration)
	ev     *Event
	stop   bool
}

// NewTicker creates and starts a ticker on the engine. Period must be
// positive.
func (e *Engine) NewTicker(period time.Duration, fn func(time.Duration)) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: ticker period %v must be positive", period))
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.engine.After(t.period, func() {
		if t.stop {
			return
		}
		t.fn(t.engine.Now())
		if !t.stop {
			t.arm()
		}
	})
}

// Stop cancels the ticker; pending fire is suppressed.
func (t *Ticker) Stop() {
	t.stop = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}
