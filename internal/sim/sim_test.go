package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineFiresInOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30*time.Millisecond, func() { order = append(order, 3) })
	e.At(10*time.Millisecond, func() { order = append(order, 1) })
	e.At(20*time.Millisecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("fire order = %v", order)
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("final clock = %v", e.Now())
	}
	if e.Fired() != 3 {
		t.Errorf("fired = %d", e.Fired())
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(5*time.Millisecond, func() { order = append(order, "a") })
	e.At(5*time.Millisecond, func() { order = append(order, "b") })
	e.At(5*time.Millisecond, func() { order = append(order, "c") })
	e.Run()
	if got := order[0] + order[1] + order[2]; got != "abc" {
		t.Errorf("tie order = %q, want abc", got)
	}
}

func TestEngineAfter(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.At(time.Second, func() {
		e.After(500*time.Millisecond, func() { at = e.Now() })
	})
	e.Run()
	if at != 1500*time.Millisecond {
		t.Errorf("After fired at %v, want 1.5s", at)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.At(500*time.Millisecond, func() {})
	})
	e.Run()
}

func TestEngineNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative After should panic")
		}
	}()
	e.After(-time.Second, func() {})
}

func TestEventCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(time.Second, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if e.Fired() != 0 {
		t.Errorf("fired count = %d", e.Fired())
	}
}

func TestEventWhen(t *testing.T) {
	e := NewEngine()
	ev := e.At(42*time.Millisecond, func() {})
	if ev.When() != 42*time.Millisecond {
		t.Errorf("When = %v", ev.When())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Second
		e.At(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(3 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if e.Now() != 3*time.Second {
		t.Errorf("clock = %v, want 3s", e.Now())
	}
	// Clock advances to deadline even with no events.
	e2 := NewEngine()
	e2.RunUntil(time.Minute)
	if e2.Now() != time.Minute {
		t.Errorf("idle RunUntil clock = %v", e2.Now())
	}
}

func TestNextEventTime(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextEventTime(); ok {
		t.Error("empty engine should have no next event")
	}
	ev := e.At(7*time.Second, func() {})
	if next, ok := e.NextEventTime(); !ok || next != 7*time.Second {
		t.Errorf("next = %v %v", next, ok)
	}
	ev.Cancel()
	if _, ok := e.NextEventTime(); ok {
		t.Error("canceled event should not be reported as next")
	}
}

func TestEventLimit(t *testing.T) {
	e := NewEngine()
	e.SetEventLimit(10)
	var reschedule func()
	reschedule = func() { e.After(time.Millisecond, reschedule) }
	e.After(time.Millisecond, reschedule)
	defer func() {
		if recover() == nil {
			t.Error("runaway simulation should hit the event limit")
		}
	}()
	e.Run()
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var fires []time.Duration
	tk := e.NewTicker(10*time.Second, func(now time.Duration) {
		fires = append(fires, now)
		if len(fires) == 3 {
			// Stop from within the callback.
			// (Declared below; closure capture is fine.)
		}
	})
	e.At(35*time.Second, func() { tk.Stop() })
	e.Run()
	if len(fires) != 3 {
		t.Fatalf("ticker fired %d times, want 3: %v", len(fires), fires)
	}
	want := []time.Duration{10 * time.Second, 20 * time.Second, 30 * time.Second}
	for i := range want {
		if fires[i] != want[i] {
			t.Errorf("fire %d at %v, want %v", i, fires[i], want[i])
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = e.NewTicker(time.Second, func(time.Duration) {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 2 {
		t.Errorf("ticker fired %d times after in-callback stop, want 2", count)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("zero ticker period should panic")
		}
	}()
	e.NewTicker(0, func(time.Duration) {})
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty engine should return false")
	}
}

// Property: for any set of non-negative delays, events fire in sorted
// order and the final clock equals the max delay.
func TestEngineOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		var fired []time.Duration
		var maxT time.Duration
		for _, r := range raw {
			d := time.Duration(r) * time.Millisecond
			if d > maxT {
				maxT = d
			}
			e.At(d, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(raw) == 0 || e.Now() == maxT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPendingCount(t *testing.T) {
	e := NewEngine()
	e.At(1*time.Second, func() {})
	e.At(2*time.Second, func() {})
	if e.Pending() != 2 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.Step()
	if e.Pending() != 1 {
		t.Errorf("Pending after step = %d", e.Pending())
	}
}
