package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoggerLevelsAndFields(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Debugf("dropped")
	l.Infof("kept %d", 1)
	l.With("phone", 3, "round", 2).Warnf("slow")
	l.Errorf("bad thing")

	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Error("debug line survived an info-level logger")
	}
	for _, want := range []string{
		`level=info msg="kept 1"`,
		`level=warn phone=3 round=2 msg="slow"`,
		`level=error msg="bad thing"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q\n---\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "ts=") {
			t.Errorf("line missing timestamp field: %s", line)
		}
	}
}

func TestLoggerSetLevelSharedAcrossChildren(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn)
	child := l.With("phone", 7)
	child.Infof("dropped")
	l.SetLevel(LevelDebug)
	child.Debugf("kept")
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Errorf("SetLevel did not propagate to children:\n%s", out)
	}
}

func TestLoggerValueQuoting(t *testing.T) {
	var buf bytes.Buffer
	NewLogger(&buf, LevelInfo).With("model", "HTC Desire HD", "n", 4).Infof("hi")
	if !strings.Contains(buf.String(), `model="HTC Desire HD" n=4`) {
		t.Errorf("fields with spaces not quoted: %s", buf.String())
	}
}

func TestLoggerPrintfIsInfo(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Printf("compat %s", "line")
	if !strings.Contains(buf.String(), `level=info msg="compat line"`) {
		t.Errorf("Printf did not log at info: %s", buf.String())
	}
}

func TestLoggerStdBridge(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	std := l.Std()
	std.Printf("wal: torn tail dropped")
	if !strings.Contains(buf.String(), `msg="wal: torn tail dropped"`) {
		t.Errorf("std bridge lost the line: %s", buf.String())
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Infof("no panic")
	l.With("k", "v").Errorf("still none")
	if l.Enabled(LevelError) {
		t.Error("nil logger claims to be enabled")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "": LevelInfo,
		"warn": LevelWarn, "warning": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestDiscardDropsEverything(t *testing.T) {
	l := Discard()
	if l.Enabled(LevelError) {
		t.Error("Discard logger enabled at error level")
	}
	l.Errorf("into the void") // must not panic
}
