package obs

import (
	"testing"
	"time"
)

// fakeClock lets SLO tests steer the rolling window deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func withClock(s *SLO, c *fakeClock) *SLO    { s.now = c.now; return s }

func TestSLOVerdicts(t *testing.T) {
	c := newFakeClock()
	s := withClock(NewSLO("requeue", 0.10, time.Minute, 12), c)

	for i := 0; i < 100; i++ {
		s.Observe(true)
	}
	st := s.Status()
	if st.Good != 100 || st.Bad != 0 || st.Verdict != VerdictOK || st.Burn != 0 {
		t.Fatalf("all-good status = %+v", st)
	}

	// 10 bad out of 110: error rate ~0.09, burn ~0.9 → still ok.
	for i := 0; i < 10; i++ {
		s.Observe(false)
	}
	if st := s.Status(); st.Verdict != VerdictOK {
		t.Fatalf("burn %.2f verdict = %s, want ok", st.Burn, st.Verdict)
	}

	// Push the error rate past the target but under 2x → warn.
	for i := 0; i < 8; i++ {
		s.Observe(false)
	}
	if st := s.Status(); st.Verdict != VerdictWarn {
		t.Fatalf("burn %.2f verdict = %s, want warn", st.Burn, st.Verdict)
	}

	// Past 2x → critical.
	for i := 0; i < 30; i++ {
		s.Observe(false)
	}
	if st := s.Status(); st.Verdict != VerdictCritical {
		t.Fatalf("burn %.2f verdict = %s, want critical", st.Burn, st.Verdict)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	c := newFakeClock()
	s := withClock(NewSLO("keepalive", 0.05, time.Minute, 12), c)
	for i := 0; i < 50; i++ {
		s.Observe(false)
	}
	if st := s.Status(); st.Verdict != VerdictCritical {
		t.Fatalf("fresh failures verdict = %s, want critical", st.Verdict)
	}
	// A full window later the failures have aged out entirely.
	c.advance(2 * time.Minute)
	st := s.Status()
	if st.Good != 0 || st.Bad != 0 || st.Verdict != VerdictOK {
		t.Fatalf("post-window status = %+v, want empty/ok", st)
	}
	// And new observations land in recycled buckets.
	s.Observe(true)
	if st := s.Status(); st.Good != 1 || st.Bad != 0 {
		t.Fatalf("post-recycle status = %+v", st)
	}
}

func TestSLOZeroTargetStaysFinite(t *testing.T) {
	c := newFakeClock()
	s := withClock(NewSLO("strict", 0, time.Minute, 4), c)
	s.Observe(false)
	st := s.Status()
	if st.Burn <= 0 || st.Burn != st.Burn /* NaN check */ {
		t.Fatalf("zero-target burn = %v, want finite positive", st.Burn)
	}
	if st.Verdict != VerdictCritical {
		t.Fatalf("zero-target verdict = %s, want critical", st.Verdict)
	}
}

func TestSLOSetHealthWorstOf(t *testing.T) {
	ss := NewSLOSet()
	c := newFakeClock()
	withClock(ss.Register("a", 0.5, time.Minute, 4), c)
	withClock(ss.Register("b", 0.01, time.Minute, 4), c)
	if got := ss.Health(); got != VerdictOK {
		t.Fatalf("empty set health = %s, want ok", got)
	}
	ss.Observe("a", true)
	ss.Observe("b", false) // burn 100 → critical
	if got := ss.Health(); got != VerdictCritical {
		t.Fatalf("health = %s, want critical", got)
	}
	sts := ss.Statuses()
	if len(sts) != 2 || sts[0].Name != "a" || sts[1].Name != "b" {
		t.Fatalf("statuses = %+v, want sorted [a b]", sts)
	}
	// Unknown names drop silently.
	ss.Observe("nope", false)
}

func TestSLONilSafe(t *testing.T) {
	var s *SLO
	s.Observe(true)
	if st := s.Status(); st.Verdict != VerdictOK {
		t.Fatalf("nil SLO status = %+v", st)
	}
	var ss *SLOSet
	ss.Observe("x", false)
	if ss.Register("x", 0.1, time.Minute, 4) != nil {
		t.Fatal("nil set Register should return nil")
	}
	if ss.Statuses() != nil {
		t.Fatal("nil set Statuses should return nil")
	}
	if ss.Health() != VerdictOK {
		t.Fatal("nil set health should be ok")
	}
}
